(* Schema validator for the harness's machine-readable outputs, run from
   the test suite against freshly generated files. Understands two
   document kinds and picks by shape:

   - distal-bench/v1: headline rows, figure series or metric lists
     (Figure.to_json, Headline.to_json, the simperf section);
   - Chrome trace_event files (Chrome_trace).

   Exits nonzero with a diagnostic on the first violation.

   With [--baseline FILE] (plus optional [--tolerance X], default 2.0),
   every [*.wall_s] metric in the baseline document is also compared
   against the same metric in the validated files: the run fails with a
   per-metric diff if any wall-clock metric exceeds baseline * tolerance —
   the regression guard for the simulator's own performance. The
   [DISTAL_BENCH_TOLERANCE] environment variable overrides the flag, so a
   noisy CI host can relax the gate without editing build files. Metrics
   other than [*.wall_s] are informational and never gate — except
   [*.coalesce_speedup], which must never fall below 1.0 (communication
   planning losing to not planning is a planner regression regardless of
   the host), [*.hot_cache_speedup], which must reach at least 5.0
   (a hot serving-cache request that is not clearly cheaper than a cold
   compile-and-run means the serving layer has stopped paying for
   itself), [*.native_speedup], which must be at least 1.0 (the tiled
   leaf microkernels may never lose to the staged scalar nest they
   replace), and the auto-scheduler invariants: [*.candidates_pruned]
   must be positive (the dedup/bound machinery must reject something on
   any non-trivial search), [*.pool_identical] must be exactly 1 (the
   chosen ranking may not depend on the domain-pool size) and
   [*.vs_hand_min_ratio] must be at least 1.0 (the search may never lose
   to a hand schedule inside its own space). *)

module Json = Distal_support.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("validate_bench: " ^ s); exit 1) fmt

let read_file file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let expect_string ~file ~what = function
  | Some (Json.String s) -> s
  | _ -> fail "%s: %s must be a string" file what

let expect_list ~file ~what = function
  | Some (Json.List l) -> l
  | _ -> fail "%s: %s must be an array" file what

let check_measured ~file = function
  | Some (Json.Float _ | Json.Int _ | Json.Null) -> ()
  | _ -> fail "%s: measured must be a number or null" file

let check_headline ~file j =
  let rows = expect_list ~file ~what:"rows" (Json.member "rows" j) in
  if rows = [] then fail "%s: no headline rows" file;
  List.iter
    (fun row ->
      ignore (expect_string ~file ~what:"comparison" (Json.member "comparison" row));
      ignore (expect_string ~file ~what:"paper" (Json.member "paper" row));
      check_measured ~file (Json.member "measured" row))
    rows;
  Printf.printf "%s: ok (headline, %d rows)\n" file (List.length rows)

let check_figure ~file j =
  let series = expect_list ~file ~what:"series" (Json.member "series" j) in
  let nodes = expect_list ~file ~what:"nodes" (Json.member "nodes" j) in
  if series = [] then fail "%s: no series" file;
  List.iter
    (fun s ->
      ignore (expect_string ~file ~what:"series name" (Json.member "name" s));
      let cells = expect_list ~file ~what:"cells" (Json.member "cells" s) in
      if List.length cells <> List.length nodes then
        fail "%s: series has %d cells for %d node counts" file (List.length cells)
          (List.length nodes);
      List.iter
        (fun c ->
          (match Json.member "nodes" c with
          | Some (Json.Int _) -> ()
          | _ -> fail "%s: cell nodes must be an integer" file);
          match Json.member "value" c with
          | Some (Json.Float _ | Json.Int _ | Json.Null | Json.String "oom") -> ()
          | _ -> fail "%s: cell value must be a number, null or \"oom\"" file)
        cells)
    series;
  Printf.printf "%s: ok (figure, %d series)\n" file (List.length series)

(* Metric values of every validated metrics document, for the optional
   baseline comparison. *)
let seen_metrics : (string * float) list ref = ref []

let check_metrics ~file j =
  let metrics = expect_list ~file ~what:"metrics" (Json.member "metrics" j) in
  if metrics = [] then fail "%s: no metrics" file;
  List.iter
    (fun m ->
      let name = expect_string ~file ~what:"metric name" (Json.member "name" m) in
      ignore (expect_string ~file ~what:"metric unit" (Json.member "unit" m));
      match Json.member "value" m with
      | Some (Json.Float v) -> seen_metrics := (name, v) :: !seen_metrics
      | Some (Json.Int v) -> seen_metrics := (name, float_of_int v) :: !seen_metrics
      | Some Json.Null -> ()
      | _ -> fail "%s: metric value must be a number or null" file)
    metrics;
  Printf.printf "%s: ok (metrics, %d entries)\n" file (List.length metrics)

let check_bench ~file j =
  (match Json.member "schema" j with
  | Some (Json.String "distal-bench/v1") -> ()
  | _ -> fail "%s: schema must be \"distal-bench/v1\"" file);
  if Json.member "rows" j <> None then check_headline ~file j
  else if Json.member "metrics" j <> None then check_metrics ~file j
  else check_figure ~file j

let check_trace ~file j events =
  if events = [] then fail "%s: empty traceEvents" file;
  List.iter
    (fun e ->
      ignore (expect_string ~file ~what:"event name" (Json.member "name" e));
      (match expect_string ~file ~what:"ph" (Json.member "ph" e) with
      | "X" | "i" | "C" | "M" -> ()
      | ph -> fail "%s: unexpected phase %S" file ph);
      match (Json.member "pid" e, Json.member "tid" e) with
      | Some (Json.Int _), Some (Json.Int _) -> ()
      | _ -> fail "%s: pid/tid must be integers" file)
    events;
  ignore j;
  Printf.printf "%s: ok (trace, %d events)\n" file (List.length events)

(* Communication planning must never lose to not planning, on any
   workload: a [*.coalesce_speedup] below 1.0 means the planner spent
   more time merging fragments than the merged plan saved. Similarly a
   fault-free run with checkpointing off must be indistinguishable from
   the plain executor — a nonzero [*.nocheckpoint_overhead] means the
   fault machinery leaked simulated time into runs that opted out. *)
let check_speedups () =
  List.iter
    (fun (name, v) ->
      if String.ends_with ~suffix:".coalesce_speedup" name && v < 1.0 then
        fail "%s is %.3fx: communication planning slower than no planning" name v;
      if String.ends_with ~suffix:".nocheckpoint_overhead" name && v <> 0.0 then
        fail "%s is %g s: fault-free run without checkpointing must cost exactly 0"
          name v;
      if String.ends_with ~suffix:".hot_cache_speedup" name && v < 5.0 then
        fail "%s is %.1fx: hot serving-cache requests must be at least 5x cold" name v;
      if String.ends_with ~suffix:".candidates_pruned" name && v <= 0.0 then
        fail
          "%s is %g: the auto-scheduler's canonicalization/stat bounds pruned nothing"
          name v;
      if String.ends_with ~suffix:".pool_identical" name && v <> 1.0 then
        fail
          "%s is %g: auto-scheduler search must be byte-identical at every pool size"
          name v;
      if String.ends_with ~suffix:".vs_hand_min_ratio" name && v < 1.0 then
        fail
          "%s is %.3fx: the auto-scheduler lost to a hand schedule it should match or \
           beat"
          name v;
      if String.ends_with ~suffix:".native_speedup" name && v < 1.0 then
        fail
          "%s is %.3fx: the tiled leaf kernels lost to the staged scalar nest they \
           replace"
          name v;
      if String.ends_with ~suffix:".plan_reuse_speedup" name && v < 1.0 then
        fail
          "%s is %.3fx: replaying a compiled executable plan lost to replanning every \
           run"
          name v)
    !seen_metrics

let check file =
  match Json.parse (read_file file) with
  | Error e -> fail "%s: invalid JSON: %s" file e
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List events) -> check_trace ~file j events
      | Some _ -> fail "%s: traceEvents must be an array" file
      | None -> check_bench ~file j)

(* Compare every [*.wall_s] metric the baseline records against the
   freshly validated files; fail with a readable diff when any regresses
   beyond the tolerance factor. A wall metric present in the baseline but
   absent from the fresh output also fails — renaming a benchmark must
   update the baseline. *)
let check_baseline ~baseline ~tolerance =
  let j =
    match Json.parse (read_file baseline) with
    | Error e -> fail "%s: invalid JSON: %s" baseline e
    | Ok j -> j
  in
  let metrics = expect_list ~file:baseline ~what:"metrics" (Json.member "metrics" j) in
  let is_wall name =
    String.length name > 7 && String.sub name (String.length name - 7) 7 = ".wall_s"
  in
  let compared = ref 0 and diffs = ref [] in
  List.iter
    (fun m ->
      let name = expect_string ~file:baseline ~what:"metric name" (Json.member "name" m) in
      let base =
        match Json.member "value" m with
        | Some (Json.Float v) -> Some v
        | Some (Json.Int v) -> Some (float_of_int v)
        | _ -> None
      in
      match base with
      | Some base when is_wall name -> (
          incr compared;
          match List.assoc_opt name !seen_metrics with
          | None ->
              diffs := Printf.sprintf "  %-28s missing from fresh output" name :: !diffs
          | Some v ->
              if v > base *. tolerance then
                diffs :=
                  Printf.sprintf "  %-28s %8.3f ms -> %8.3f ms  (%.1fx, limit %.1fx)"
                    name (base *. 1e3) (v *. 1e3) (v /. base) tolerance
                  :: !diffs)
      | _ -> ())
    metrics;
  if !diffs <> [] then begin
    Printf.eprintf "validate_bench: wall-clock regression vs %s (tolerance %.1fx):\n%s\n"
      baseline tolerance
      (String.concat "\n" (List.rev !diffs));
    exit 1
  end;
  Printf.printf "%s: ok (baseline, %d wall metrics within %.1fx)\n" baseline !compared
    tolerance

let () =
  let rec parse baseline tolerance files = function
    | [] -> (baseline, tolerance, List.rev files)
    | "--baseline" :: file :: rest -> parse (Some file) tolerance files rest
    | "--tolerance" :: x :: rest -> (
        match float_of_string_opt x with
        | Some t when t > 0.0 -> parse baseline t files rest
        | _ -> fail "--tolerance wants a positive number, got %S" x)
    | f :: rest -> parse baseline tolerance (f :: files) rest
  in
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as args) ->
      let baseline, tolerance, files = parse None 2.0 [] args in
      let tolerance =
        match Distal_support.Env.float_var "DISTAL_BENCH_TOLERANCE" with
        | Some t when t > 0.0 -> t
        | Some t -> fail "DISTAL_BENCH_TOLERANCE must be positive, got %g" t
        | None -> tolerance
      in
      if files = [] then fail "no files to validate";
      List.iter check files;
      check_speedups ();
      Option.iter (fun b -> check_baseline ~baseline:b ~tolerance) baseline
  | _ ->
      prerr_endline
        "usage: validate_bench [--baseline FILE] [--tolerance X] FILE.json ...";
      exit 1
