(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7) on the simulated machine, plus real wall-clock
   micro-benchmarks (Bechamel) of the local leaf kernels and of the
   compiler itself.

   Usage: main.exe [section ...]
   Sections: leaf compile fig15a fig15b fig16a fig16b fig16c fig16d
             headline simperf ablation. No arguments runs everything.

   simperf measures the simulator itself (wall-clock throughput over a
   fig16-sized kernel and a cyclic GEMM) and writes BENCH_simperf.json;
   simperf-small is the quick configuration the test suite runs.

   main.exe profile [target] [-o out.json] runs a target under the
   observability subsystem (lib/obs), writes a Chrome trace_event JSON
   loadable in Perfetto, prints per-run step/critical-path reports and
   checks that the critical-path end time reproduces the simulator's
   total for every run. *)

module Fig15 = Distal_harness.Fig15
module Fig16 = Distal_harness.Fig16
module Figure = Distal_harness.Figure
module Headline = Distal_harness.Headline
module Kernels = Distal_tensor.Kernels
module Dense = Distal_tensor.Dense
module Rng = Distal_support.Rng
module Api = Distal.Api
module Machine = Api.Machine
module Profile = Distal_obs.Profile
module Metrics = Distal_obs.Metrics
module Cp = Distal_obs.Critical_path
module Report = Distal_obs.Report
module Chrome_trace = Distal_obs.Chrome_trace
module Json = Distal_support.Json

(* {2 Bechamel micro-benchmarks} *)

let run_bechamel ~name tests =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name tests) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Distal_support.Table.create ~header:[ "benchmark"; "time/run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun key ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
      in
      rows := (key, ns) :: !rows)
    results;
  List.iter
    (fun (key, ns) ->
      let human =
        if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else Printf.sprintf "%.1f us" (ns /. 1e3)
      in
      Distal_support.Table.add_row table [ key; human ])
    (List.sort compare !rows);
  Distal_support.Table.print table;
  print_newline ()

let leaf_benches () =
  print_endline "== leaf: local kernel micro-benchmarks (real wall clock) ==";
  let open Bechamel in
  let rng = Rng.create 1 in
  let n = 96 in
  let b2 = Dense.random rng [| n; n |] and c2 = Dense.random rng [| n; n |] in
  let b3 = Dense.random rng [| 48; 48; 48 |] in
  let c3 = Dense.random rng [| 48; 48; 48 |] in
  let v = Dense.random rng [| 48 |] in
  let cm = Dense.random rng [| 48; 32 |] and dm = Dense.random rng [| 48; 32 |] in
  let tests =
    [
      Test.make ~name:"gemm-96" (Staged.stage (fun () ->
          Kernels.gemm ~a:(Dense.create [| n; n |]) ~b:b2 ~c:c2));
      Test.make ~name:"ttv-48" (Staged.stage (fun () ->
          Kernels.ttv ~a:(Dense.create [| 48; 48 |]) ~b:b3 ~c:v));
      Test.make ~name:"ttm-48" (Staged.stage (fun () ->
          Kernels.ttm ~a:(Dense.create [| 48; 48; 32 |]) ~b:b3 ~c:cm));
      Test.make ~name:"mttkrp-48" (Staged.stage (fun () ->
          Kernels.mttkrp ~a:(Dense.create [| 48; 32 |]) ~b:b3 ~c:cm ~d:dm));
      Test.make ~name:"innerprod-48" (Staged.stage (fun () ->
          ignore (Kernels.inner_product b3 c3)));
    ]
  in
  run_bechamel ~name:"leaf" tests

let compile_benches () =
  print_endline "== compile: compiler pipeline micro-benchmarks (real wall clock) ==";
  let open Bechamel in
  let machine = Machine.grid [| 4; 4 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| 1024; 1024 |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "B" [| 1024; 1024 |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "C" [| 1024; 1024 |] ~dist:"[x,y] -> [x,y]";
        ] ()
  in
  let summa =
    "distribute_onto({i,j}, {io,jo}, {ii,ji}, [4,4]); split(k, ko, ki, 64);\n\
     reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko);\n\
     substitute({ii,ji,ki}, gemm)"
  in
  let plan = Api.compile_script_exn p ~schedule:summa in
  let tests =
    [
      Test.make ~name:"parse-einsum" (Staged.stage (fun () ->
          ignore (Distal_ir.Einsum_parser.parse_exn "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)")));
      Test.make ~name:"parse-schedule" (Staged.stage (fun () ->
          ignore (Result.get_ok (Distal_ir.Schedule.parse summa))));
      Test.make ~name:"compile-summa" (Staged.stage (fun () ->
          ignore (Api.compile_script_exn p ~schedule:summa)));
      Test.make ~name:"estimate-summa-4x4" (Staged.stage (fun () ->
          ignore (Api.estimate plan)));
    ]
  in
  run_bechamel ~name:"compile" tests

(* {2 Figures} *)

let strong () =
  Figure.print (Distal_harness.Strong.gemm ~kind:Machine.Gpu ());
  Figure.print
    { (Distal_harness.Strong.gemm ~kind:Machine.Cpu ()) with Figure.id = "strong-cpu" }

let csv () =
  let dir = "results" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun f ->
      Printf.printf "wrote %s\n" (Figure.save_csv ~dir f);
      Printf.printf "wrote %s\n" (Figure.save_json ~dir f))
    [
      Fig15.cpu (); Fig15.gpu (); Fig16.ttv (); Fig16.innerprod (); Fig16.ttm ();
      Fig16.mttkrp ();
      Distal_harness.Strong.gemm ~kind:Machine.Gpu ();
    ]

let fig15a () = Figure.print (Fig15.cpu ())
let fig15b () = Figure.print (Fig15.gpu ())
let fig16a () = Figure.print (Fig16.ttv ())
let fig16b () = Figure.print (Fig16.innerprod ())
let fig16c () = Figure.print (Fig16.ttm ())
let fig16d () = Figure.print (Fig16.mttkrp ())

let headline () =
  let fig15a = Fig15.cpu () in
  let f16 = (Fig16.ttv (), Fig16.innerprod (), Fig16.ttm (), Fig16.mttkrp ()) in
  let rows = Headline.compute ~fig15a ~fig16:f16 ~nodes:256 in
  Headline.print rows;
  let file = "BENCH_headline.json" in
  Headline.save_json ~file ~nodes:256 rows;
  Printf.printf "wrote %s\n" file

(* {2 simperf: wall-clock throughput of the simulator itself}

   Unlike every other section, this measures the simulator as a program,
   not the machine it models: tasks simulated per second, copy groups
   formed per second, and wall-clock per execution, on a fig16-sized
   tensor kernel and on cyclically-distributed workloads whose huge tile
   sets exercise the executor's spatial index. *)

(* SUMMA-style GEMM over cyclically distributed operands: every
   communicate point intersects its footprint with a per-element tile set,
   the hot path the per-tensor spatial index serves. *)
let simperf_gemm ~n ~grid ~chunks =
  let machine = Machine.grid [| grid; grid |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| n; n |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "B" [| n; n |] ~dist:"[x,y] -> [x%1,y%1]";
          Api.tensor "C" [| n; n |] ~dist:"[x,y] -> [x%1,y%1]";
        ]
      ()
  in
  let schedule =
    Printf.sprintf
      "distribute_onto({i,j}, {io,jo}, {ii,ji}, [%d,%d]); split(k, ko, ki, %d);\n\
       reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko)"
      grid grid chunks
  in
  Api.compile_script_exn p ~schedule

(* Fig16-sized TTV, cyclic over i and over-decomposed onto a virtual
   grid: thousands of tasks each resolve a distinct footprint against a
   tile-per-row layout, so piece lookup — not event processing — is the
   bottleneck. *)
let simperf_cyclic_ttv ~i ~jk ~procs ~vprocs =
  let machine = Machine.grid ~kind:Machine.Cpu ~mem_per_proc:256e9 [| procs |] in
  let p =
    Api.problem_exn ~machine ~virtual_grid:[| vprocs |] ~stmt:"A(i,j) = B(i,j,k) * c(k)"
      ~tensors:
        [
          Api.tensor "A" [| i; jk |] ~dist:"[x,y] -> [x%1]";
          Api.tensor "B" [| i; jk; jk |] ~dist:"[x,y,z] -> [x%1]";
          Api.tensor "c" [| jk |] ~dist:"[x] -> [*]";
        ]
      ()
  in
  Api.compile_script_exn p
    ~schedule:
      (Printf.sprintf "divide(i, io, ii, %d); distribute(io); communicate({A,B,c}, io)"
         vprocs)

let now () = Distal_support.Pool.now ()

(* One profiled run for the event counts (which doubles as warmup), then
   [reps] timed runs, keeping the best: the minimum over repetitions is
   the standard de-noising for wall-clock measurement — scheduler and GC
   interference only ever add time. *)
let simperf_measure ?(coalesce = true) ?domains plan ~reps =
  let profile = Profile.create () in
  (match Api.run ~mode:Api.Exec.Model ~coalesce ?domains ~profile plan ~data:[] with
  | Ok _ -> ()
  | Error e -> failwith ("simperf run failed: " ^ e));
  let metric name run =
    match Metrics.value run.Profile.metrics name with Some v -> v | None -> 0.0
  in
  let run = List.hd (Profile.runs profile) in
  let tasks = metric "exec.tasks" run in
  let groups = metric "exec.copy_groups" run in
  let ratio = metric "exec.coalesce_ratio" run in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = now () in
    (match Api.run ~mode:Api.Exec.Model ~coalesce ?domains plan ~data:[] with
    | Ok _ -> ()
    | Error e -> failwith ("simperf run failed: " ^ e));
    let w = now () -. t0 in
    if w < !best then best := w
  done;
  (tasks, groups, ratio, !best)

(* The planner's before/after comparison wants a noise-immune ratio:
   runtest executes this next to the whole alcotest suite on however
   many cores the host has, and whole-run timing under that contention
   says more about the scheduler and the GC than about the planner —
   planning is a percent or two of a run that is otherwise identical on
   both sides. So the ratio comes from the executor's own
   [exec.plan_wall_s] metric, which times exactly the stage the
   [~coalesce] switch controls (fragment coalescing, broadcast grouping,
   message pricing): best-of-[reps] per side over interleaved runs —
   the minimum discards samples where a GC pause landed inside the
   stage's timing window. *)
let planner_speedup plan ~reps =
  let run coalesce =
    let profile = Profile.create () in
    (match Api.run ~mode:Api.Exec.Model ~coalesce ~domains:1 ~profile plan ~data:[] with
    | Ok _ -> ()
    | Error e -> failwith ("simperf run failed: " ^ e));
    let run = List.hd (Profile.runs profile) in
    match Metrics.value run.Profile.metrics "exec.plan_wall_s" with
    | Some v -> v
    | None -> 0.0
  in
  ignore (run true);
  ignore (run false);
  let plan_on = ref infinity and plan_off = ref infinity in
  for _ = 1 to reps do
    let on = run true in
    if on < !plan_on then plan_on := on;
    let off = run false in
    if off < !plan_off then plan_off := off
  done;
  if !plan_on > 0.0 then !plan_off /. !plan_on else 1.0

(* Wall clock of a Full (real arithmetic) run on one domain, best of
   [reps] — the staged-vs-generic leaf comparison below pins the domain
   count so it measures the evaluator, not the pool. [kernels] selects
   the leaf kernel registry mode (pinned explicitly so the rows don't
   depend on DISTAL_KERNELS). *)
let full_wall ?staged ?kernels plan ~data ~reps =
  let warm () =
    match Api.run ~mode:Api.Exec.Full ?staged ?kernels ~domains:1 plan ~data with
    | Ok _ -> ()
    | Error e -> failwith ("simperf leaf run failed: " ^ e)
  in
  warm ();
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = now () in
    warm ();
    let w = now () -. t0 in
    if w < !best then best := w
  done;
  !best

(* An unsubstituted GEMM: the leaf is the generic scalar loop nest over
   (ii, ji, k), the workload the staged evaluator exists for. *)
let simperf_leaf ~n ~grid =
  let machine = Machine.grid [| grid; grid |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| n; n |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "B" [| n; n |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "C" [| n; n |] ~dist:"[x,y] -> [x,y]";
        ]
      ()
  in
  Api.compile_script_exn p
    ~schedule:
      (Printf.sprintf
         "distribute_onto({i,j}, {io,jo}, {ii,ji}, [%d,%d]); communicate(A, jo);\n\
          communicate({B,C}, jo)"
         grid grid)

let simperf_run ~small () =
  Printf.printf "== simperf: simulator throughput (real wall clock%s) ==\n"
    (if small then ", small config" else "");
  let module H = Distal_algorithms.Higher_order in
  (* The last component marks workloads whose fragment counts make
     communication planning matter: those are also run with [~coalesce:false]
     for a before/after comparison of the planner itself. *)
  let specs =
    if small then
      [
        ("cyclic-gemm", simperf_gemm ~n:64 ~grid:4 ~chunks:8, 3, true);
        ("cyclic-ttv", simperf_cyclic_ttv ~i:512 ~jk:32 ~procs:4 ~vprocs:128, 3, true);
        ( "ttv",
          (Result.get_ok
             (H.ttv ~i:256 ~j:64 ~k:64
                ~machine:(Machine.grid ~kind:Machine.Cpu ~mem_per_proc:256e9 [| 4 |])))
            .H.plan,
          3,
          false );
      ]
    else
      [
        ("cyclic-gemm", simperf_gemm ~n:256 ~grid:4 ~chunks:64, 1, true);
        ("cyclic-ttv", simperf_cyclic_ttv ~i:8192 ~jk:512 ~procs:16 ~vprocs:2048, 3, true);
        ( "ttv",
          (Result.get_ok
             (H.ttv ~i:8192 ~j:512 ~k:512
                ~machine:(Machine.grid ~kind:Machine.Cpu ~mem_per_proc:256e9 [| 16 |])))
            .H.plan,
          3,
          false );
      ]
  in
  let table =
    Distal_support.Table.create
      ~header:
        [ "workload"; "wall/run"; "uncoalesced"; "speedup"; "wall@2dom"; "wall@4dom";
          "frag/msg"; "tasks/s"; "copy groups/s" ]
  in
  let metrics = ref [] in
  List.iter
    (fun (name, plan, reps, compare) ->
      let tasks, groups, ratio, wall = simperf_measure plan ~reps in
      let per v = if wall > 0.0 then v /. wall else 0.0 in
      let raw_wall =
        if compare then begin
          let _, _, _, w = simperf_measure ~coalesce:false plan ~reps in
          Some w
        end
        else None
      in
      let speedup =
        if compare then Some (planner_speedup plan ~reps:(max reps 9)) else None
      in
      (* Host-domain scaling of the same run. Informational: on a
         single-core container these show the pool's overhead, on real
         multi-core hosts its benefit — the [_d] names keep them outside
         the [*.wall_s] baseline gate for exactly that reason. *)
      let _, _, _, wall_d2 = simperf_measure ~domains:2 plan ~reps in
      let _, _, _, wall_d4 = simperf_measure ~domains:4 plan ~reps in
      Distal_support.Table.add_row table
        [
          name;
          Printf.sprintf "%.3f ms" (wall *. 1e3);
          (match raw_wall with
          | Some w -> Printf.sprintf "%.3f ms" (w *. 1e3)
          | None -> "-");
          (match speedup with Some s -> Printf.sprintf "%.1fx" s | None -> "-");
          Printf.sprintf "%.3f ms" (wall_d2 *. 1e3);
          Printf.sprintf "%.3f ms" (wall_d4 *. 1e3);
          Printf.sprintf "%.1f" ratio;
          Printf.sprintf "%.0f" (per tasks);
          Printf.sprintf "%.0f" (per groups);
        ];
      metrics :=
        !metrics
        @ [
            (name ^ ".wall_s", wall, "s");
            (name ^ ".wall_d2_s", wall_d2, "s");
            (name ^ ".wall_d4_s", wall_d4, "s");
            (name ^ ".tasks_per_s", per tasks, "tasks/s");
            (name ^ ".copy_groups_per_s", per groups, "groups/s");
            (name ^ ".coalesce_ratio", ratio, "fragments/msg");
          ]
        @ (match raw_wall with
          | Some w -> [ (name ^ ".nocoalesce_wall_s", w, "s") ]
          | None -> [])
        @
        match speedup with
        | Some s -> [ (name ^ ".coalesce_speedup", s, "x") ]
        | None -> [])
    specs;
  (* The staged leaf evaluator against the generic [Expr.eval] loop, on
     real arithmetic (Full mode), one domain. *)
  let leaf_plan = if small then simperf_leaf ~n:48 ~grid:2 else simperf_leaf ~n:128 ~grid:2 in
  let leaf_data = Api.random_inputs leaf_plan in
  let leaf_reps = if small then 3 else 5 in
  let off = Api.Kernel_registry.Off in
  let leaf_wall =
    full_wall ~staged:true ~kernels:off leaf_plan ~data:leaf_data ~reps:leaf_reps
  in
  let leaf_generic =
    full_wall ~staged:false ~kernels:off leaf_plan ~data:leaf_data ~reps:leaf_reps
  in
  let leaf_speedup = if leaf_wall > 0.0 then leaf_generic /. leaf_wall else 0.0 in
  (* The registry microkernels against the staged scalar nest, same plan
     (the staged leaf matches the gemm pattern and dispatches under
     [Tiled]); [leaf.gflops] reports the calibrated gemm rate the cost
     model prices substituted leaves with. *)
  let leaf_native =
    full_wall ~staged:true ~kernels:Api.Kernel_registry.Tiled leaf_plan
      ~data:leaf_data ~reps:leaf_reps
  in
  let leaf_native_speedup = if leaf_native > 0.0 then leaf_wall /. leaf_native else 0.0 in
  let leaf_gflops = Distal_machine.Calibrate.kernel_rate "gemm" /. 1e9 in
  Distal_support.Table.add_row table
    [
      "leaf (staged vs generic)";
      Printf.sprintf "%.3f ms" (leaf_wall *. 1e3);
      Printf.sprintf "%.3f ms" (leaf_generic *. 1e3);
      Printf.sprintf "%.1fx" leaf_speedup;
      "-"; "-"; "-"; "-"; "-";
    ];
  Distal_support.Table.add_row table
    [
      "leaf (tiled vs staged)";
      Printf.sprintf "%.3f ms" (leaf_native *. 1e3);
      Printf.sprintf "%.3f ms" (leaf_wall *. 1e3);
      Printf.sprintf "%.1fx" leaf_native_speedup;
      "-"; "-"; "-";
      Printf.sprintf "%.2f GF/s" leaf_gflops;
      "-";
    ];
  metrics :=
    !metrics
    @ [
        ("leaf.wall_s", leaf_wall, "s");
        ("leaf.unstaged_wall_s", leaf_generic, "s");
        ("leaf.stage_speedup", leaf_speedup, "x");
        ("leaf.native_wall_s", leaf_native, "s");
        ("leaf.native_speedup", leaf_native_speedup, "x");
        ("leaf.gflops", leaf_gflops, "GF/s");
      ];
  (* Resilience (lib/fault), on simulated time so the row is
     config-independent: an empty fault plan with checkpointing off must
     charge exactly zero extra simulated seconds (validate_bench gates
     [fault.nocheckpoint_overhead] on literal 0.0 — the fault machinery
     may not perturb fault-free runs), while a mid-run kill with
     checkpointing prices one detect + restore + replay episode whose
     slowdown factor is the reported recovery overhead. *)
  let fplan = simperf_gemm ~n:64 ~grid:4 ~chunks:8 in
  let base_stats = Api.estimate fplan in
  let empty_stats =
    match
      Api.run ~mode:Api.Exec.Model ~faults:(Api.Fault.plan ()) fplan ~data:[]
    with
    | Ok r -> r.Api.Exec.stats
    | Error e -> failwith ("simperf fault run failed: " ^ e)
  in
  let nocheckpoint_overhead =
    empty_stats.Api.Stats.time -. base_stats.Api.Stats.time
  in
  let faults =
    Api.Fault.plan ~checkpoint:true
      ~kills:[ Api.Fault.kill ~proc:1 ~step:4 () ]
      ()
  in
  let _, faulted_stats, _ = Api.resilience_exn ~faults fplan in
  let recovery_overhead =
    if base_stats.Api.Stats.time > 0.0 then
      faulted_stats.Api.Stats.time /. base_stats.Api.Stats.time
    else 0.0
  in
  Distal_support.Table.add_row table
    [
      "fault (kill+ckpt vs clean)";
      Printf.sprintf "%.3f ms" (faulted_stats.Api.Stats.time *. 1e3);
      Printf.sprintf "%.3f ms" (base_stats.Api.Stats.time *. 1e3);
      Printf.sprintf "%.1fx" recovery_overhead;
      "-"; "-"; "-"; "-"; "-";
    ];
  metrics :=
    !metrics
    @ [
        ("fault.nocheckpoint_overhead", nocheckpoint_overhead, "s");
        ("fault.recovery_overhead", recovery_overhead, "x");
      ];
  (* The auto-scheduler (lib/algorithms/auto): cold search wall time,
     pruning/memoization counters, byte-identity of the chosen ranking
     across pool sizes, and the match-or-beat gate against the harness's
     hand schedules. [auto.candidates_pruned] (> 0), [auto.pool_identical]
     (= 1) and [auto.vs_hand_min_ratio] (>= 1) are gated by
     validate_bench; [auto.search_wall_s] joins the baseline guard. *)
  let module Auto = Distal_algorithms.Auto in
  let module Auto_compare = Distal_harness.Auto_compare in
  let auto_n, auto_procs = if small then (512, 8) else (8192, 16) in
  let machine_of grid = Machine.grid ~kind:Machine.Cpu ~mem_per_proc:256e9 grid in
  let auto_stmt = "A(i,j) = B(i,k) * C(k,j)" in
  let auto_shapes =
    [ ("A", [| auto_n; auto_n |]); ("B", [| auto_n; auto_n |]); ("C", [| auto_n; auto_n |]) ]
  in
  let auto_search ~domains () =
    match
      Auto.search_report ~domains ~machine_of ~procs:auto_procs ~stmt:auto_stmt
        ~shapes:auto_shapes ()
    with
    | Ok r -> r
    | Error e -> failwith ("simperf auto search failed: " ^ e)
  in
  Auto.clear_cache ();
  let cold_cs, cold = auto_search ~domains:1 () in
  let warm_cs, warm = auto_search ~domains:3 () in
  let rendering (cs, (r : Auto.report)) =
    ( List.map Auto.describe cs,
      (r.Auto.enumerated, r.Auto.deduped, r.Auto.pruned, r.Auto.probed) )
  in
  let pool_identical =
    if rendering (cold_cs, cold) = rendering (warm_cs, warm) then 1.0 else 0.0
  in
  let memo_speedup =
    if warm.Auto.wall_s > 0.0 then cold.Auto.wall_s /. warm.Auto.wall_s else 0.0
  in
  let vs_hand =
    let rows =
      if small then Auto_compare.rows ~procs:4 ~n:256 ~jk:64 ~i1:128 ()
      else Auto_compare.rows ~procs:16 ~n:4096 ~jk:256 ~i1:1024 ()
    in
    Auto_compare.min_ratio rows
  in
  Distal_support.Table.add_row table
    [
      "auto (cold vs memoized)";
      Printf.sprintf "%.3f ms" (cold.Auto.wall_s *. 1e3);
      Printf.sprintf "%.3f ms" (warm.Auto.wall_s *. 1e3);
      Printf.sprintf "%.1fx" memo_speedup;
      "-"; "-"; "-"; "-"; "-";
    ];
  metrics :=
    !metrics
    @ [
        ("auto.search_wall_s", cold.Auto.wall_s, "s");
        ("auto.candidates_enumerated", float_of_int cold.Auto.enumerated, "candidates");
        ( "auto.candidates_pruned",
          float_of_int (cold.Auto.deduped + cold.Auto.pruned),
          "candidates" );
        ("auto.candidates_probed", float_of_int cold.Auto.probed, "candidates");
        ("auto.memo_hits", float_of_int warm.Auto.memo_hits, "probes");
        ("auto.memo_speedup", memo_speedup, "x");
        ("auto.pool_identical", pool_identical, "bool");
        ("auto.vs_hand_min_ratio", vs_hand, "x");
      ];
  (* Compiled executable plans (Exec.plan / Exec.run_plan): a Full run
     that replans everything on each call against a warm run replaying
     the compiled plan with pooled buffers, on the cyclic GEMM. The
     speedup is gated >= 1.0 by validate_bench — reusing a plan must
     never lose to replanning. The alloc rows report the OCaml-heap
     words each path allocates per run (Gc.quick_stat deltas; bigarray
     payloads are off-heap): the reuse path's near-zero column is the
     "no per-fragment allocation on the data path" contract in numbers.
     [cyclic-gemm.parallel_efficiency] is informational: (t1/t4)/4 of
     the reuse path under 4 host domains — near 0.25 on a single-core
     container, climbing toward 1 with real cores. *)
  let rp_plan =
    if small then simperf_gemm ~n:64 ~grid:4 ~chunks:8
    else simperf_gemm ~n:128 ~grid:4 ~chunks:16
  in
  let rp_data = Api.random_inputs rp_plan in
  let rp_reps = if small then 3 else 5 in
  let replan () =
    match Api.run ~reuse:false ~domains:1 rp_plan ~data:rp_data with
    | Ok _ -> ()
    | Error e -> failwith ("simperf replan run failed: " ^ e)
  in
  let ep = Api.eplan_exn rp_plan in
  let reuse ~domains () =
    match Api.Exec.run_plan ~domains ep ~data:rp_data with
    | Ok _ -> ()
    | Error e -> failwith ("simperf reuse run failed: " ^ e)
  in
  let best_of f =
    let best = ref infinity in
    for _ = 1 to rp_reps do
      let t0 = now () in
      f ();
      let w = now () -. t0 in
      if w < !best then best := w
    done;
    !best
  in
  let alloc_words f =
    (* Gc.minor_words reads the live allocation pointer (quick_stat's
       copy only advances at minor collections); major words stay on
       quick_stat. *)
    let m0 = Gc.minor_words () in
    let g0 = Gc.quick_stat () in
    f ();
    let g1 = Gc.quick_stat () in
    Gc.minor_words () -. m0 +. (g1.Gc.major_words -. g0.Gc.major_words)
  in
  replan ();
  reuse ~domains:1 ();
  let replan_wall = best_of replan in
  let reuse_wall = best_of (reuse ~domains:1) in
  let reuse_wall_d4 = best_of (reuse ~domains:4) in
  let plan_reuse_speedup = if reuse_wall > 0.0 then replan_wall /. reuse_wall else 0.0 in
  let parallel_efficiency =
    if reuse_wall_d4 > 0.0 then reuse_wall /. reuse_wall_d4 /. 4.0 else 0.0
  in
  let replan_alloc = alloc_words replan in
  let reuse_alloc = alloc_words (reuse ~domains:1) in
  Distal_support.Table.add_row table
    [
      "plan reuse (warm vs replan)";
      Printf.sprintf "%.3f ms" (reuse_wall *. 1e3);
      Printf.sprintf "%.3f ms" (replan_wall *. 1e3);
      Printf.sprintf "%.1fx" plan_reuse_speedup;
      "-";
      Printf.sprintf "%.3f ms" (reuse_wall_d4 *. 1e3);
      "-";
      Printf.sprintf "%.2f/%.2f Mw" (reuse_alloc /. 1e6) (replan_alloc /. 1e6);
      "-";
    ];
  metrics :=
    !metrics
    @ [
        ("exec.plan_reuse_speedup", plan_reuse_speedup, "x");
        ("exec.replan_alloc_mwords", replan_alloc /. 1e6, "Mwords");
        ("exec.reuse_alloc_mwords", reuse_alloc /. 1e6, "Mwords");
        ("cyclic-gemm.parallel_efficiency", parallel_efficiency, "ratio");
      ];
  Distal_support.Table.print table;
  let json =
    Json.Obj
      [
        ("schema", Json.String "distal-bench/v1");
        ("id", Json.String "simperf");
        ( "metrics",
          Json.List
            (List.map
               (fun (name, value, unit_) ->
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ( "value",
                       if Float.is_finite value then Json.Float value else Json.Null );
                     ("unit", Json.String unit_);
                   ])
               !metrics) );
      ]
  in
  let file = "BENCH_simperf.json" in
  let oc = open_out file in
  output_string oc (Json.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n\n" file

let simperf () = simperf_run ~small:false ()
let simperf_small () = simperf_run ~small:true ()

(* {2 serve: compile-and-serve throughput (lib/serve)}

   Measures the serving session's three tiers on the cyclic GEMM, real
   wall clock: cold (caching off — every request parses, typechecks,
   schedules, lowers and runs), plan-cached (compile amortized, every
   request still executes) and hot (plan + result cache — repeated
   identical requests replay the finished run). The headline ratio
   serve.hot_cache_speedup is gated by validate_bench: a hot request
   must be at least 5x a cold one, or the serving layer has stopped
   paying for itself. *)

module Serve_session = Distal_serve.Session

let serve_request ~n ~grid ~chunks =
  Api.request
    ~machine:(Machine.grid [| grid; grid |])
    ~stmt:"A(i,j) = B(i,k) * C(k,j)"
    ~tensors:
      [
        Api.tensor "A" [| n; n |] ~dist:"[x,y] -> [x,y]";
        Api.tensor "B" [| n; n |] ~dist:"[x,y] -> [x%1,y%1]";
        Api.tensor "C" [| n; n |] ~dist:"[x,y] -> [x%1,y%1]";
      ]
    ~schedule:
      (Printf.sprintf
         "distribute_onto({i,j}, {io,jo}, {ii,ji}, [%d,%d]); split(k, ko, ki, %d);\n\
          reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko)"
         grid grid chunks)
    ()

(* Best-of wall clock per served request: identical requests against one
   session, so whatever tier the session's caches put it on is what gets
   timed. *)
let serve_measure session req ~reps =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = now () in
    ignore (Serve_session.run_exn ~mode:Api.Exec.Full ~seed:42 session req);
    let w = now () -. t0 in
    if w < !best then best := w
  done;
  !best

let serve_run ~small () =
  Printf.printf "== serve: compile-and-serve throughput (real wall clock%s) ==\n"
    (if small then ", small config" else "");
  let req =
    if small then serve_request ~n:64 ~grid:4 ~chunks:8
    else serve_request ~n:128 ~grid:4 ~chunks:16
  in
  let cold_reps = 3 in
  let hot_reps = if small then 200 else 1000 in
  (* Cold: caching disabled, so every request is the full pipeline. *)
  let cold_session = Serve_session.create ~plan_cache:0 () in
  let cold = serve_measure cold_session req ~reps:cold_reps in
  (* Plan tier only: compile amortized, execution still happens. *)
  let plan_session = Serve_session.create ~plan_cache:128 ~result_cache:0 () in
  ignore (serve_measure plan_session req ~reps:1) (* warm the plan cache *);
  let plan_only = serve_measure plan_session req ~reps:cold_reps in
  (* Hot: both tiers; after one warming request everything replays. *)
  let hot_session = Serve_session.create () in
  ignore (serve_measure hot_session req ~reps:1);
  let hot = serve_measure hot_session req ~reps:hot_reps in
  let c = Serve_session.counters hot_session in
  if c.Serve_session.result_hits < hot_reps then
    failwith "serve bench: hot requests missed the result cache";
  let per w = if w > 0.0 then 1.0 /. w else 0.0 in
  let hot_speedup = if hot > 0.0 then cold /. hot else 0.0 in
  let plan_speedup = if plan_only > 0.0 then cold /. plan_only else 0.0 in
  let table =
    Distal_support.Table.create ~header:[ "tier"; "wall/req"; "reqs/s"; "vs cold" ]
  in
  List.iter
    (fun (tier, wall, speedup) ->
      Distal_support.Table.add_row table
        [
          tier;
          Printf.sprintf "%.3f ms" (wall *. 1e3);
          Printf.sprintf "%.0f" (per wall);
          (match speedup with Some s -> Printf.sprintf "%.1fx" s | None -> "-");
        ])
    [
      ("cold (no cache)", cold, None);
      ("plan cache", plan_only, Some plan_speedup);
      ("hot (plan+result)", hot, Some hot_speedup);
    ];
  Distal_support.Table.print table;
  let json =
    Json.Obj
      [
        ("schema", Json.String "distal-bench/v1");
        ("id", Json.String "serve");
        ( "metrics",
          Json.List
            (List.map
               (fun (name, value, unit_) ->
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ( "value",
                       if Float.is_finite value then Json.Float value else Json.Null );
                     ("unit", Json.String unit_);
                   ])
               [
                 ("serve.cold_reqs_per_s", per cold, "req/s");
                 ("serve.plan_cache_reqs_per_s", per plan_only, "req/s");
                 ("serve.reqs_per_s", per hot, "req/s");
                 ("serve.plan_cache_speedup", plan_speedup, "x");
                 ("serve.hot_cache_speedup", hot_speedup, "x");
               ]) );
      ]
  in
  let file = "BENCH_serve.json" in
  let oc = open_out file in
  output_string oc (Json.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n\n" file

let serve_bench () = serve_run ~small:false ()
let serve_bench_small () = serve_run ~small:true ()

(* {2 Ablations: the design choices DESIGN.md calls out} *)

let ablation () =
  print_endline "== ablation: scheduling choices for GEMM on 256 GPUs (64 nodes) ==";
  let module M = Distal_algorithms.Matmul in
  let n = Fig15.weak_n ~base:20000 ~nodes:64 in
  let machine = Machine.with_ppn ~kind:Machine.Gpu ~mem_per_proc:16e9 [| 16; 16 |] ~ppn:4 in
  let table =
    Distal_support.Table.create ~header:[ "variant"; "time (s)"; "GB moved"; "note" ]
  in
  let add name (alg : (M.t, string) result) note =
    match alg with
    | Error e -> Distal_support.Table.add_row table [ name; "-"; "-"; e ]
    | Ok alg ->
        let s = Api.estimate alg.M.plan in
        Distal_support.Table.add_row table
          [
            name;
            Printf.sprintf "%.3f" s.Api.Stats.time;
            Printf.sprintf "%.1f"
              ((s.Api.Stats.bytes_inter +. s.Api.Stats.bytes_intra) /. 1e9);
            note;
          ]
  in
  add "summa (broadcasts)" (M.summa ~n ~machine ()) "baseline";
  add "cannon (rotate)" (M.cannon ~n ~machine) "systolic: no broadcasts";
  add "pumma (1 rotate)" (M.pumma ~n ~machine) "hybrid";
  add "summa chunk=tile" (M.summa ~chunks_per_tile:1 ~n ~machine ()) "coarse communicate";
  add "summa chunk=tile/16" (M.summa ~chunks_per_tile:16 ~n ~machine ())
    "fine communicate: more msgs, less memory";
  Distal_support.Table.print table;
  print_newline ()

(* Figure 9 itself: the six algorithms as (machine, distribution,
   schedule) triples, each validated against the serial reference. *)
let fig9 () =
  print_endline "== fig9: matrix-multiplication algorithms expressible in DISTAL ==";
  let module M = Distal_algorithms.Matmul in
  let n = 24 in
  let m2 = Machine.grid [| 2; 2 |] in
  let m3 = Machine.grid [| 2; 2; 2 |] in
  let table =
    Distal_support.Table.create
      ~header:[ "algorithm"; "year"; "machine"; "data distribution"; "validated" ]
  in
  List.iter
    (fun alg ->
      match alg with
      | Error e -> Distal_support.Table.add_row table [ "?"; "?"; "?"; e; "-" ]
      | Ok (a : M.t) ->
          Distal_support.Table.add_row table
            [
              a.M.name;
              string_of_int a.M.year;
              Machine.to_string a.M.plan.Api.problem.Api.machine;
              String.concat "  " (List.map (fun (t, d) -> t ^ d) a.M.dists);
              (match Api.validate a.M.plan with Ok () -> "OK" | Error _ -> "FAIL");
            ])
    [
      M.cannon ~n ~machine:m2;
      M.pumma ~n ~machine:m2;
      M.summa ~n ~machine:m2 ();
      M.johnson ~n ~machine:m3 ();
      M.solomonik ~n ~machine:m3;
      M.cosma ~n ~machine:m3 ();
    ];
  Distal_support.Table.print table;
  print_endline "(schedules printed by examples/algorithms_tour.exe)";
  print_newline ()

(* The auto-scheduler (§9) against the hand schedules of Fig. 9 / §7.2. *)
let auto () =
  print_endline "== auto: automatic schedule/format selection vs hand schedules ==";
  let module Auto = Distal_algorithms.Auto in
  let module M = Distal_algorithms.Matmul in
  let module Cost = Distal_machine.Cost_model in
  let n = 8192 in
  let procs = 16 in
  let machine_of grid = Machine.grid ~kind:Machine.Cpu ~mem_per_proc:256e9 grid in
  let shapes = [ ("A", [| n; n |]); ("B", [| n; n |]); ("C", [| n; n |]) ] in
  (match
     Auto.search_report ~machine_of ~procs ~stmt:"A(i,j) = B(i,k) * C(k,j)" ~shapes ()
   with
  | Error e -> Printf.printf "search failed: %s\n" e
  | Ok (cs, report) ->
      Printf.printf "GEMM n=%d on %d CPUs: %s\n" n procs (Auto.describe_report report);
      List.iteri
        (fun i c -> if i < 3 then Printf.printf "  %d. %s\n" (i + 1) (Auto.describe c))
        cs;
      let summa =
        Result.get_ok (M.summa ~n ~machine:(machine_of [| 4; 4 |]) ())
      in
      let ts = (Api.estimate ~cost:Cost.cpu_distal summa.M.plan).Api.Stats.time in
      Printf.printf "  hand-written SUMMA on [4,4]: %.3g s\n" ts);
  (match
     Auto.best ~machine_of ~procs ~stmt:"A(i,j) = B(i,j,k) * c(k)"
       ~shapes:[ ("A", [| 4096; 512 |]); ("B", [| 4096; 512; 512 |]); ("c", [| 512 |]) ]
       ()
   with
  | Error e -> Printf.printf "search failed: %s\n" e
  | Ok best ->
      Printf.printf "TTV on %d CPUs: auto picks %s\n" procs (Auto.describe best));
  let hits, misses, evictions = Auto.cache_stats () in
  Printf.printf "probe cache: %d hits, %d misses, %d evictions; pack_overhead %.3g ns\n"
    hits misses evictions
    (Distal_machine.Calibrate.pack_overhead () *. 1e9);
  print_newline ();
  print_endline "-- auto vs hand schedules (modeled time, same cost model) --";
  Distal_harness.Auto_compare.print
    (Distal_harness.Auto_compare.rows ~procs:16 ~n:4096 ~jk:256 ~i1:1024 ());
  print_newline ()

(* {2 The profile subcommand} *)

(* Run every Fig. 9 algorithm (Model mode) under one profile, so all six
   appear as separate processes in the exported trace. *)
let profile_fig9 profile =
  let module M = Distal_algorithms.Matmul in
  let n = 24 in
  let m2 = Machine.grid [| 2; 2 |] in
  let m3 = Machine.grid [| 2; 2; 2 |] in
  List.iter
    (fun alg ->
      match alg with
      | Error e -> Printf.printf "  skipped: %s\n" e
      | Ok (a : M.t) -> (
          Profile.set_next_run_name profile ("fig9/" ^ a.M.name);
          match Api.run ~mode:Api.Exec.Model ~profile a.M.plan ~data:[] with
          | Ok _ -> ()
          | Error e -> Printf.printf "  %s failed: %s\n" a.M.name e))
    [
      M.cannon ~n ~machine:m2;
      M.pumma ~n ~machine:m2;
      M.summa ~n ~machine:m2 ();
      M.johnson ~n ~machine:m3 ();
      M.solomonik ~n ~machine:m3;
      M.cosma ~n ~machine:m3 ();
    ]

let profile_targets profile =
  [
    ("fig9", fun () -> profile_fig9 profile);
    ("fig15a", fun () -> ignore (Fig15.cpu ~profile ~nodes:[ 1; 2; 4; 8 ] ~base_n:64 ()));
    ("fig15b", fun () -> ignore (Fig15.gpu ~profile ~nodes:[ 1; 2; 4 ] ~base_n:64 ()));
    ("fig16a", fun () -> ignore (Fig16.ttv ~profile ~nodes:[ 1; 2; 4 ] ~base_i:64 ~jk:32 ()));
    ( "fig16b",
      fun () -> ignore (Fig16.innerprod ~profile ~nodes:[ 1; 2; 4 ] ~base_i:64 ~jk:32 ()) );
    ( "fig16c",
      fun () -> ignore (Fig16.ttm ~profile ~nodes:[ 1; 2; 4 ] ~base_i:32 ~jk:32 ~l:16 ()) );
    ( "fig16d",
      fun () -> ignore (Fig16.mttkrp ~profile ~nodes:[ 1; 2; 4 ] ~base_ij:32 ~k:32 ~l:8 ()) );
  ]

(* The invariant the subsystem is built around: replaying the exported
   step timeline through the critical-path analysis reproduces the
   simulator's total time exactly, for every run. *)
let check_critical_paths profile =
  let failures = ref 0 in
  List.iter
    (fun (run : Profile.run) ->
      match run.Profile.timeline with
      | None -> Printf.printf "  %-24s (no execution timeline)\n" run.Profile.name
      | Some tl ->
          let cp = Cp.analyse tl in
          let time =
            match Metrics.value run.Profile.metrics "exec.time" with
            | Some t -> t
            | None -> nan
          in
          let ok = cp.Cp.end_time = time in
          if not ok then incr failures;
          Printf.printf "  %-24s critical path %.9e s  simulator %.9e s  %s\n"
            run.Profile.name cp.Cp.end_time time
            (if ok then "ok" else "MISMATCH"))
    (Profile.runs profile);
  !failures

let profile_cmd args =
  let rec parse target out = function
    | [] -> (target, out)
    | "-o" :: file :: rest -> parse target file rest
    | t :: rest -> parse t out rest
  in
  let target, out = parse "fig9" "profile.json" args in
  let profile = Profile.create () in
  (match List.assoc_opt target (profile_targets profile) with
  | Some f ->
      Printf.printf "== profile: %s under the observability subsystem ==\n" target;
      f ()
  | None ->
      Printf.eprintf "unknown profile target %s (known: %s)\n" target
        (String.concat ", " (List.map fst (profile_targets profile)));
      exit 1);
  List.iter
    (fun (run : Profile.run) ->
      if run.Profile.timeline <> None then print_string (Report.run_report run))
    (Profile.runs profile);
  print_endline "critical path vs simulator:";
  let failures = check_critical_paths profile in
  let trace = Chrome_trace.of_profile profile in
  (match Json.parse trace with
  | Ok _ -> ()
  | Error e ->
      Printf.eprintf "exported trace is not valid JSON: %s\n" e;
      exit 1);
  let oc = open_out out in
  output_string oc trace;
  close_out oc;
  Printf.printf "wrote %s (%d events; load it at https://ui.perfetto.dev)\n" out
    (List.length (Profile.events profile));
  if failures > 0 then (
    Printf.eprintf "%d run(s) with critical-path mismatch\n" failures;
    exit 1)

let sections =
  [
    ("leaf", leaf_benches);
    ("compile", compile_benches);
    ("fig9", fig9);
    ("fig15a", fig15a);
    ("fig15b", fig15b);
    ("fig16a", fig16a);
    ("fig16b", fig16b);
    ("fig16c", fig16c);
    ("fig16d", fig16d);
    ("headline", headline);
    ("simperf", simperf);
    ("simperf-small", simperf_small);
    ("serve", serve_bench);
    ("serve-small", serve_bench_small);
    ("ablation", ablation);
    ("auto", auto);
    ("strong", strong);
    ("csv", csv);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: "profile" :: rest ->
        profile_cmd rest;
        []
    | _ :: (_ :: _ as args) -> args
    | _ ->
        List.filter
          (fun s -> s <> "csv" && s <> "simperf-small" && s <> "serve-small")
          (List.map fst sections)
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %s (known: %s)\n" name
            (String.concat ", " (List.map fst sections));
          exit 1)
    requested
