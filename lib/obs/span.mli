(** Emission helpers: build {!Event.t} values with less ceremony.

    Two producers exist. The runtime simulator knows exact simulated
    start/duration pairs after its timing assembly and uses {!complete} /
    {!instant} / {!counter}; the compiler measures its own phases with the
    process clock and wraps them with {!wall}. *)

val complete :
  Event.sink ->
  name:string ->
  cat:string ->
  pid:int ->
  tid:int ->
  ts:float ->
  dur:float ->
  ?attrs:(string * Event.value) list ->
  unit ->
  unit
(** A completed interval [ts, ts + dur) in simulated seconds. *)

val instant :
  Event.sink ->
  name:string ->
  cat:string ->
  pid:int ->
  tid:int ->
  ts:float ->
  ?attrs:(string * Event.value) list ->
  unit ->
  unit

val counter :
  Event.sink -> name:string -> pid:int -> tid:int -> ts:float -> float -> unit

val process_name : Event.sink -> pid:int -> string -> unit
val thread_name : Event.sink -> pid:int -> tid:int -> string -> unit

val wall :
  Event.sink option ->
  name:string ->
  ?cat:string ->
  ?pid:int ->
  ?attrs:(string * Event.value) list ->
  (unit -> 'a) ->
  'a
(** [wall sink ~name f] runs [f] and, when [sink] is [Some _], records a
    span of its process-clock duration (compiler phases). With [None] it
    just runs [f] — call sites stay a single line whether or not a profile
    is attached. *)
