(** Human- and machine-readable renderings of a profiled run.

    Generalizes the old [Gantt.summary] (copies and bytes per step) into a
    full per-step breakdown: utilization, compute vs. exposed
    communication, traffic, and the step's bottleneck resource — plus a
    critical-path summary and JSON forms for the bench trajectory. *)

val step_table : Critical_path.timeline -> string
(** One row per bulk-synchronous step: charged cost, number of active
    processors, mean utilization (busy/cost averaged over all processors),
    bottleneck compute and exposed-comm split, bytes moved, message count,
    and the bottleneck resource. *)

val critical_path_summary : Critical_path.t -> string
(** Total/compute/comm/overhead/reduction split, the dominating resource,
    and the three laziest processors (most slack). *)

val traffic_by_tensor : Metrics.registry -> string
(** Per-tensor traffic breakdown read off the [exec.bytes_by_tensor.*]
    counters, largest mover first with its share of all traffic; empty
    when the run moved nothing. *)

val run_report : Profile.run -> string
(** [step_table] + [critical_path_summary] + [traffic_by_tensor] + metric
    snapshot for one run. *)

val resilience_report : baseline:Profile.run -> faulty:Profile.run -> string
(** Side-by-side of the same schedule fault-free vs. under a fault plan
    ([lib/fault]): simulated times and the slowdown factor, the faulted
    run's recovery breakdown ([exec.faults_injected], [exec.replayed_steps],
    [exec.recovery_time]) and the checkpoint traffic
    ([exec.checkpoint_bytes] / [exec.restore_bytes]). *)

val timeline_to_json : Critical_path.timeline -> Json.t
val run_to_json : Profile.run -> Json.t
val profile_to_json : Profile.t -> Json.t
(** Every run's timeline, critical path and metrics (no raw events — those
    are {!Chrome_trace}'s job). *)
