type counter = float ref

type gauge = float ref

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : float array;  (* upper bounds, ascending *)
  bucket_counts : int array;  (* one extra slot for +inf *)
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type registry = (string, instrument) Hashtbl.t

let create () : registry = Hashtbl.create 32

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let get_or_create reg name make match_ =
  match Hashtbl.find_opt reg name with
  | Some i -> (
      match match_ i with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name
               (kind_name i)))
  | None ->
      let x = make () in
      x

let counter reg name =
  get_or_create reg name
    (fun () ->
      let c = ref 0.0 in
      Hashtbl.replace reg name (Counter c);
      c)
    (function Counter c -> Some c | _ -> None)

let inc c v = c := !c +. v
let inc_int c v = c := !c +. float_of_int v
let counter_value c = !c

let gauge reg name =
  get_or_create reg name
    (fun () ->
      let g = ref 0.0 in
      Hashtbl.replace reg name (Gauge g);
      g)
    (function Gauge g -> Some g | _ -> None)

let set g v = g := v
let set_max g v = if v > !g then g := v
let gauge_value g = !g

let default_buckets =
  Array.init 13 (fun i -> Float.pow 10.0 (float_of_int i))

let histogram ?(buckets = default_buckets) reg name =
  get_or_create reg name
    (fun () ->
      let h =
        {
          count = 0;
          sum = 0.0;
          min_v = infinity;
          max_v = neg_infinity;
          buckets;
          bucket_counts = Array.make (Array.length buckets + 1) 0;
        }
      in
      Hashtbl.replace reg name (Histogram h);
      h)
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let rec slot i =
    if i >= Array.length h.buckets then i
    else if v <= h.buckets.(i) then i
    else slot (i + 1)
  in
  let i = slot 0 in
  h.bucket_counts.(i) <- h.bucket_counts.(i) + 1

let histogram_count h = h.count
let histogram_sum h = h.sum

let value reg name =
  match Hashtbl.find_opt reg name with
  | Some (Counter c) -> Some !c
  | Some (Gauge g) -> Some !g
  | Some (Histogram h) -> Some h.sum
  | None -> None

let names reg =
  Hashtbl.fold (fun k _ acc -> k :: acc) reg [] |> List.sort compare

let instrument_to_json = function
  | Counter c -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Float !c) ]
  | Gauge g -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float !g) ]
  | Histogram h ->
      Json.Obj
        [
          ("type", Json.String "histogram");
          ("count", Json.Int h.count);
          ("sum", Json.Float h.sum);
          ("min", if h.count = 0 then Json.Null else Json.Float h.min_v);
          ("max", if h.count = 0 then Json.Null else Json.Float h.max_v);
          ( "buckets",
            Json.List
              (Array.to_list
                 (Array.mapi
                    (fun i le ->
                      Json.Obj
                        [
                          ("le", Json.Float le);
                          ("count", Json.Int h.bucket_counts.(i));
                        ])
                    h.buckets)
              @ [
                  Json.Obj
                    [
                      ("le", Json.Null);
                      ( "count",
                        Json.Int h.bucket_counts.(Array.length h.buckets) );
                    ];
                ]) );
        ]

let to_json reg =
  Json.Obj
    (List.map (fun n -> (n, instrument_to_json (Hashtbl.find reg n))) (names reg))

let render reg =
  String.concat "\n"
    (List.map
       (fun n ->
         match Hashtbl.find reg n with
         | Counter c -> Printf.sprintf "%-24s counter  %.6g" n !c
         | Gauge g -> Printf.sprintf "%-24s gauge    %.6g" n !g
         | Histogram h ->
             Printf.sprintf "%-24s hist     n=%d sum=%.6g min=%.6g max=%.6g" n
               h.count h.sum
               (if h.count = 0 then 0.0 else h.min_v)
               (if h.count = 0 then 0.0 else h.max_v))
       (names reg))
