(** Structured trace events.

    An event is one timed fact about an execution, placed on a (pid, tid)
    track pair: [pid] groups a whole run (one simulated execution, or the
    compiler), [tid] is a resource within it (a processor, or the runtime
    itself). Timestamps are seconds — simulated seconds for runtime events,
    process time for compiler spans — and are converted to the consumer's
    unit at export time ({!Chrome_trace}). *)

type value = Bool of bool | Int of int | Float of float | Str of string

type kind =
  | Span of float  (** an interval; the payload is its duration *)
  | Instant  (** a point in time *)
  | Counter of float  (** a sampled counter value *)
  | Meta  (** naming metadata; [ts] is ignored *)

type t = {
  name : string;
  cat : string;  (** e.g. "compute", "comm", "compile", "runtime" *)
  pid : int;
  tid : int;
  ts : float;  (** seconds *)
  kind : kind;
  attrs : (string * value) list;
}

(** An append-only event sink. Emission order is preserved; the simulator
    emits in a deterministic order so traces are reproducible. *)
type sink

val sink : unit -> sink
val emit : sink -> t -> unit
val events : sink -> t list
(** In emission order. *)

val count : sink -> int
val value_to_json : value -> Json.t
