let complete sink ~name ~cat ~pid ~tid ~ts ~dur ?(attrs = []) () =
  Event.emit sink { Event.name; cat; pid; tid; ts; kind = Event.Span dur; attrs }

let instant sink ~name ~cat ~pid ~tid ~ts ?(attrs = []) () =
  Event.emit sink { Event.name; cat; pid; tid; ts; kind = Event.Instant; attrs }

let counter sink ~name ~pid ~tid ~ts v =
  Event.emit sink
    { Event.name; cat = "counter"; pid; tid; ts; kind = Event.Counter v; attrs = [] }

let process_name sink ~pid name =
  Event.emit sink
    {
      Event.name = "process_name";
      cat = "__metadata";
      pid;
      tid = 0;
      ts = 0.0;
      kind = Event.Meta;
      attrs = [ ("name", Event.Str name) ];
    }

let thread_name sink ~pid ~tid name =
  Event.emit sink
    {
      Event.name = "thread_name";
      cat = "__metadata";
      pid;
      tid;
      ts = 0.0;
      kind = Event.Meta;
      attrs = [ ("name", Event.Str name) ];
    }

(* The compiler track: pid 0, everything on one thread. *)
let compiler_pid = 0

let wall sink ~name ?(cat = "compile") ?(pid = compiler_pid) ?(attrs = []) f =
  match sink with
  | None -> f ()
  | Some sink ->
      let t0 = Sys.time () in
      let finish () =
        complete sink ~name ~cat ~pid ~tid:0 ~ts:t0 ~dur:(Sys.time () -. t0) ~attrs ()
      in
      let r = try f () with e -> finish (); raise e in
      finish ();
      r
