module Table = Distal_support.Table
module Cp = Critical_path

let fsec t = Printf.sprintf "%.3g" t

let bytes_human b =
  if b >= 1e9 then Printf.sprintf "%.2f GB" (b /. 1e9)
  else if b >= 1e6 then Printf.sprintf "%.2f MB" (b /. 1e6)
  else if b >= 1e3 then Printf.sprintf "%.2f kB" (b /. 1e3)
  else Printf.sprintf "%.0f B" b

let step_table (tl : Cp.timeline) =
  let table =
    Table.create
      ~header:
        [
          "step"; "cost (s)"; "procs"; "util"; "compute (s)"; "comm (s)"; "moved";
          "msgs"; "bound by";
        ]
  in
  List.iter
    (fun (s : Cp.step) ->
      let node = Cp.step_bottleneck s in
      let util =
        if s.Cp.cost <= 0.0 || tl.Cp.nprocs = 0 then 1.0
        else
          List.fold_left
            (fun acc (sl : Cp.slot) -> acc +. Float.min sl.Cp.busy s.Cp.cost)
            0.0 s.Cp.slots
          /. (s.Cp.cost *. float_of_int tl.Cp.nprocs)
      in
      Table.add_row table
        [
          string_of_int s.Cp.index;
          fsec s.Cp.cost;
          string_of_int (List.length s.Cp.slots);
          Printf.sprintf "%.0f%%" (100.0 *. util);
          fsec node.Cp.compute;
          fsec node.Cp.comm;
          bytes_human s.Cp.bytes;
          string_of_int s.Cp.messages;
          node.Cp.resource;
        ])
    tl.Cp.steps;
  Table.to_string table

let critical_path_summary (cp : Cp.t) =
  let total = cp.Cp.end_time in
  let pct x = if total <= 0.0 then 0.0 else 100.0 *. x /. total in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "critical path: %.6g s end-to-end over %d links; bound by %s\n" total
       (List.length cp.Cp.nodes) cp.Cp.bottleneck);
  Buffer.add_string buf
    (Printf.sprintf
       "  compute %.6g s (%.0f%%)  exposed comm %.6g s (%.0f%%)  launch overhead \
        %.6g s (%.0f%%)  reduction %.6g s (%.0f%%)\n"
       cp.Cp.compute_time (pct cp.Cp.compute_time) cp.Cp.comm_time
       (pct cp.Cp.comm_time) cp.Cp.overhead (pct cp.Cp.overhead) cp.Cp.reduction
       (pct cp.Cp.reduction));
  if cp.Cp.recovery > 0.0 then
    Buffer.add_string buf
      (Printf.sprintf "  fault recovery %.6g s (%.0f%%)\n" cp.Cp.recovery
         (pct cp.Cp.recovery));
  let laziest =
    List.sort (fun (_, a) (_, b) -> compare b a) cp.Cp.slack |> fun l ->
    List.filteri (fun i _ -> i < 3) l
  in
  if laziest <> [] then
    Buffer.add_string buf
      ("  most slack: "
      ^ String.concat ", "
          (List.map
             (fun (p, s) -> Printf.sprintf "proc %d (%.3g s idle)" p s)
             laziest)
      ^ "\n");
  Buffer.contents buf

(* Compares the same schedule fault-free vs. under a fault plan: total
   simulated time, the recovery breakdown, and what the checkpoint
   machinery moved. Both runs come from the same [Profile.t] so the bench
   harness and [distalc --faults] can export one trace holding both. *)
let resilience_report ~(baseline : Profile.run) ~(faulty : Profile.run) =
  let v (run : Profile.run) name =
    Option.value (Metrics.value run.Profile.metrics name) ~default:0.0
  in
  let t0 = v baseline "exec.time" and t1 = v faulty "exec.time" in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "== resilience report ==\n";
  let table = Table.create ~header:[ "run"; "time (s)"; "slowdown" ] in
  Table.add_row table [ baseline.Profile.name; fsec t0; "1.00x" ];
  Table.add_row table
    [
      faulty.Profile.name; fsec t1;
      (if t0 > 0.0 then Printf.sprintf "%.2fx" (t1 /. t0) else "-");
    ];
  Buffer.add_string buf (Table.to_string table);
  Buffer.add_string buf
    (Printf.sprintf
       "faults injected: %.0f; steps replayed: %.0f; recovery %.6g s (%.1f%% \
        of faulted run)\n"
       (v faulty "exec.faults_injected")
       (v faulty "exec.replayed_steps")
       (v faulty "exec.recovery_time")
       (if t1 > 0.0 then 100.0 *. v faulty "exec.recovery_time" /. t1 else 0.0));
  let ckpt = v faulty "exec.checkpoint_bytes" in
  if ckpt > 0.0 then
    Buffer.add_string buf
      (Printf.sprintf
         "checkpoints: %s written (%.6g s overlapped); %s restored\n"
         (bytes_human ckpt)
         (v faulty "exec.checkpoint_time")
         (bytes_human (v faulty "exec.restore_bytes")))
  else
    Buffer.add_string buf
      "checkpoints: off (recovery replays from the start of the run)\n";
  Buffer.contents buf

let by_tensor_prefix = "exec.bytes_by_tensor."

let traffic_by_tensor reg =
  let rows =
    List.filter_map
      (fun name ->
        if String.length name > String.length by_tensor_prefix
           && String.sub name 0 (String.length by_tensor_prefix) = by_tensor_prefix
        then
          let tensor =
            String.sub name (String.length by_tensor_prefix)
              (String.length name - String.length by_tensor_prefix)
          in
          match Metrics.value reg name with
          | Some b when b > 0.0 -> Some (tensor, b)
          | _ -> None
        else None)
      (Metrics.names reg)
  in
  if rows = [] then ""
  else begin
    let total = List.fold_left (fun acc (_, b) -> acc +. b) 0.0 rows in
    let table = Table.create ~header:[ "tensor"; "moved"; "share" ] in
    List.iter
      (fun (tensor, b) ->
        Table.add_row table
          [
            tensor; bytes_human b;
            Printf.sprintf "%.0f%%" (if total > 0.0 then 100.0 *. b /. total else 0.0);
          ])
      (List.sort (fun (ta, a) (tb, b) -> if a = b then compare ta tb else compare b a) rows);
    "traffic by tensor:\n" ^ Table.to_string table
  end

(* Host-side execution line: the simulated times above never depend on
   host parallelism, but the probe's own wall clock and how well it kept
   the domain pool busy are worth a glance when tuning
   DISTAL_NUM_DOMAINS. *)
let host_execution reg =
  match Metrics.value reg "exec.compute_wall_s" with
  | None -> ""
  | Some wall ->
      let v name = Option.value (Metrics.value reg name) ~default:0.0 in
      let alloc =
        (* OCaml-heap allocation of the run itself (Gc.quick_stat deltas);
           bigarray payloads live off-heap, so this tracks planning and
           bookkeeping churn — the words a reused executable plan avoids. *)
        match Metrics.value reg "exec.alloc_minor_words" with
        | None -> ""
        | Some minor ->
            Printf.sprintf ", %.3g M minor / %.3g M major words"
              (minor /. 1e6)
              (v "exec.alloc_major_words" /. 1e6)
      in
      Printf.sprintf "host: probe %.3g s wall on %.0f domain(s), %.0f%% pool utilization%s\n"
        wall (v "exec.pool_domains")
        (100.0 *. v "exec.pool_utilization")
        alloc

let run_report (run : Profile.run) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "== profile: %s ==\n" run.Profile.name);
  (match run.Profile.timeline with
  | Some tl ->
      Buffer.add_string buf (step_table tl);
      Buffer.add_string buf (critical_path_summary (Cp.analyse tl))
  | None -> Buffer.add_string buf "(no timeline recorded)\n");
  Buffer.add_string buf (host_execution run.Profile.metrics);
  Buffer.add_string buf (traffic_by_tensor run.Profile.metrics);
  Buffer.add_string buf (Metrics.render run.Profile.metrics);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let slot_to_json (sl : Cp.slot) =
  Json.Obj
    [
      ("proc", Json.Int sl.Cp.proc);
      ("compute", Json.Float sl.Cp.compute);
      ("comm", Json.Float sl.Cp.comm);
      ("busy", Json.Float sl.Cp.busy);
    ]

let step_to_json (s : Cp.step) =
  Json.Obj
    [
      ("index", Json.Int s.Cp.index);
      ("start", Json.Float s.Cp.start);
      ("cost", Json.Float s.Cp.cost);
      ("bytes", Json.Float s.Cp.bytes);
      ("messages", Json.Int s.Cp.messages);
      ("fabric", Json.Float s.Cp.fabric);
      ("slots", Json.List (List.map slot_to_json s.Cp.slots));
    ]

let timeline_to_json (tl : Cp.timeline) =
  Json.Obj
    [
      ("nprocs", Json.Int tl.Cp.nprocs);
      ("overhead", Json.Float tl.Cp.overhead);
      ("reduction", Json.Float tl.Cp.reduction);
      ("recovery", Json.Float tl.Cp.recovery);
      ("total", Json.Float tl.Cp.total);
      ("steps", Json.List (List.map step_to_json tl.Cp.steps));
    ]

let node_to_json (n : Cp.node) =
  Json.Obj
    [
      ("step", Json.Int n.Cp.step);
      ("resource", Json.String n.Cp.resource);
      ("compute", Json.Float n.Cp.compute);
      ("comm", Json.Float n.Cp.comm);
      ("cost", Json.Float n.Cp.cost);
    ]

let critical_path_to_json (cp : Cp.t) =
  Json.Obj
    [
      ("end_time", Json.Float cp.Cp.end_time);
      ("compute_time", Json.Float cp.Cp.compute_time);
      ("comm_time", Json.Float cp.Cp.comm_time);
      ("overhead", Json.Float cp.Cp.overhead);
      ("reduction", Json.Float cp.Cp.reduction);
      ("recovery", Json.Float cp.Cp.recovery);
      ("bottleneck", Json.String cp.Cp.bottleneck);
      ("nodes", Json.List (List.map node_to_json cp.Cp.nodes));
      ( "slack",
        Json.List
          (List.map
             (fun (p, s) ->
               Json.Obj [ ("proc", Json.Int p); ("idle", Json.Float s) ])
             cp.Cp.slack) );
    ]

let run_to_json (run : Profile.run) =
  Json.Obj
    ([ ("pid", Json.Int run.Profile.pid); ("name", Json.String run.Profile.name) ]
    @ (match run.Profile.timeline with
      | Some tl ->
          [
            ("timeline", timeline_to_json tl);
            ("critical_path", critical_path_to_json (Cp.analyse tl));
          ]
      | None -> [])
    @ [ ("metrics", Metrics.to_json run.Profile.metrics) ])

let profile_to_json p =
  Json.Obj
    [
      ("schema", Json.String "distal-profile/v1");
      ("runs", Json.List (List.map run_to_json (Profile.runs p)));
    ]
