(** Export an event stream in Chrome's [trace_event] JSON format.

    The output loads directly in Perfetto (https://ui.perfetto.dev) or
    [chrome://tracing]: runs appear as processes, simulated processors as
    threads, compute/communication as nested slices, per-step traffic as
    counter tracks. Timestamps are exported in microseconds as the format
    requires (simulated seconds × 1e6). *)

val json_of_events : Event.t list -> Json.t
(** The [{"traceEvents": [...], ...}] object form. *)

val to_string : Event.t list -> string
val of_profile : Profile.t -> string
val save : file:string -> Profile.t -> unit
