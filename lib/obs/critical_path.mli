(** Critical-path analysis over the simulator's step DAG.

    The runtime executes in bulk-synchronous steps: within a step every
    processor's compute and communication overlap per the cost model, and
    the step ends when its slowest resource does (a processor, or the
    tapered rack fabric). Steps chain sequentially, followed by the
    reduction epilogue; per-task launch overhead front-loads the run. The
    critical path is therefore one bottleneck resource per step plus the
    fixed prologue/epilogue — [end_time] reconstructs exactly the
    simulator's total time, and the per-node compute/comm attribution is
    the number future optimizations move. *)

(** One processor's occupancy within one step. *)
type slot = {
  proc : int;
  compute : float;  (** compute occupancy, seconds *)
  comm : float;  (** communication occupancy (after duplex combining) *)
  busy : float;  (** combined occupancy under the overlap model *)
}

type step = {
  index : int;  (** bulk-synchronous step number *)
  start : float;  (** offset within the run, seconds *)
  cost : float;  (** charged step duration: max busy, or fabric *)
  slots : slot list;  (** ascending by [proc]; only active processors *)
  bytes : float;  (** payload moved this step *)
  messages : int;
  fabric : float;  (** rack-uplink occupancy this step *)
}

(** The per-run schedule skeleton the simulator hands to analysis. *)
type timeline = {
  nprocs : int;
  overhead : float;  (** per-task launch overhead, charged up front *)
  reduction : float;  (** distributed-reduction epilogue *)
  recovery : float;
      (** fault detection + checkpoint restore + replay after injected
          kills (see [lib/fault]); 0 on a fault-free run *)
  steps : step list;  (** ascending by [index] *)
  total : float;
      (** overhead + step costs + reduction + recovery = [Stats.time] *)
}

(** One link of the critical path. *)
type node = {
  step : int;  (** step index; -1 for the overhead/reduction/recovery links *)
  resource : string;
      (** ["proc N"], ["fabric"], ["runtime"], ["reduction"], ["recovery"] *)
  compute : float;  (** compute share of this link *)
  comm : float;  (** exposed communication share *)
  cost : float;  (** link duration = the step's charged cost *)
}

type t = {
  end_time : float;  (** finish time of the whole run; equals [timeline.total] *)
  nodes : node list;
  compute_time : float;  (** sum of compute shares along the path *)
  comm_time : float;  (** sum of exposed-communication shares *)
  overhead : float;
  reduction : float;
  recovery : float;  (** fault-recovery share of the path; 0 when fault-free *)
  slack : (int * float) list;
      (** per processor: idle seconds across all steps (step cost minus the
          processor's busy time); ascending by processor, every processor
          present *)
  bottleneck : string;  (** the resource holding the most path time *)
}

val analyse : timeline -> t

val step_bottleneck : step -> node
(** The slowest resource of one step and its compute/comm attribution. *)

val bound_steps : timeline -> string -> int
(** [bound_steps tl resource] counts steps whose bottleneck is
    [resource]. *)
