type run = {
  pid : int;
  name : string;
  metrics : Metrics.registry;
  mutable timeline : Critical_path.timeline option;
}

type t = {
  sink : Event.sink;
  mutable rev_runs : run list;
  mutable next_pid : int;
  mutable pending_name : string option;
}

let create () =
  { sink = Event.sink (); rev_runs = []; next_pid = 1; pending_name = None }

let sink t = t.sink

let set_next_run_name t name = t.pending_name <- Some name

let begin_run ?name ?fallback t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let name =
    match (name, t.pending_name, fallback) with
    | Some n, _, _ -> n
    | None, Some n, _ ->
        t.pending_name <- None;
        n
    | None, None, Some n -> Printf.sprintf "%s%d" n pid
    | None, None, None -> Printf.sprintf "run%d" pid
  in
  let run = { pid; name; metrics = Metrics.create (); timeline = None } in
  t.rev_runs <- run :: t.rev_runs;
  Span.process_name t.sink ~pid name;
  run

let runs t = List.rev t.rev_runs
let find_run t name = List.find_opt (fun r -> r.name = name) (runs t)
let events t = Event.events t.sink
