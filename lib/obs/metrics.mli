(** A metrics registry: named counters, gauges and histograms.

    The runtime simulator used to accumulate its statistics in ad-hoc
    mutable record fields; this registry replaces those with named,
    queryable instruments. Instruments are get-or-created by name, so
    independent layers can contribute to the same registry. Handles are
    plain refs under the hood — updating a metric on the simulator's hot
    path costs one float store. *)

type counter
(** Monotonically increasing sum. *)

type gauge
(** Last- or max-set value. *)

type histogram
(** Count/sum/min/max plus fixed bucket counts. *)

type registry

val create : unit -> registry

val counter : registry -> string -> counter
(** Get or create. @raise Invalid_argument if the name exists with a
    different instrument kind. *)

val inc : counter -> float -> unit
val inc_int : counter -> int -> unit
val counter_value : counter -> float

val gauge : registry -> string -> gauge
val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Keep the larger of the current and given values (peaks). *)

val gauge_value : gauge -> float

val default_buckets : float array
(** Decade buckets 1, 10, ..., 1e12 (suits both bytes and flops). *)

val histogram : ?buckets:float array -> registry -> string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val value : registry -> string -> float option
(** Counter value, gauge value, or histogram sum, by name. *)

val names : registry -> string list
(** Sorted. *)

val to_json : registry -> Json.t
(** Deterministic (name-sorted) snapshot of every instrument. *)

val render : registry -> string
(** Human-readable one-instrument-per-line snapshot, name-sorted. *)
