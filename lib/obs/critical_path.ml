type slot = { proc : int; compute : float; comm : float; busy : float }

type step = {
  index : int;
  start : float;
  cost : float;
  slots : slot list;
  bytes : float;
  messages : int;
  fabric : float;
}

type timeline = {
  nprocs : int;
  overhead : float;
  reduction : float;
  recovery : float;
  steps : step list;
  total : float;
}

type node = {
  step : int;
  resource : string;
  compute : float;
  comm : float;
  cost : float;
}

type t = {
  end_time : float;
  nodes : node list;
  compute_time : float;
  comm_time : float;
  overhead : float;
  reduction : float;
  recovery : float;
  slack : (int * float) list;
  bottleneck : string;
}

let step_bottleneck s =
  let worst =
    List.fold_left
      (fun acc slot ->
        match acc with
        | Some best when best.busy >= slot.busy -> acc
        | _ -> Some slot)
      None s.slots
  in
  match worst with
  | Some slot when s.fabric <= slot.busy ->
      let compute = Float.min slot.compute s.cost in
      {
        step = s.index;
        resource = Printf.sprintf "proc %d" slot.proc;
        compute;
        comm = Float.max 0.0 (s.cost -. compute);
        cost = s.cost;
      }
  | Some _ | None ->
      (* No processor reaches the charged cost: the step is fabric-bound
         (or, with no slots at all, pure fabric traffic). *)
      { step = s.index; resource = "fabric"; compute = 0.0; comm = s.cost; cost = s.cost }

let bound_steps tl resource =
  List.length
    (List.filter (fun s -> (step_bottleneck s).resource = resource) tl.steps)

let analyse tl =
  let step_nodes = List.map step_bottleneck tl.steps in
  let nodes =
    (if tl.overhead > 0.0 then
       [
         {
           step = -1;
           resource = "runtime";
           compute = 0.0;
           comm = 0.0;
           cost = tl.overhead;
         };
       ]
     else [])
    @ step_nodes
    @ (if tl.reduction > 0.0 then
         [
           {
             step = -1;
             resource = "reduction";
             compute = 0.0;
             comm = tl.reduction;
             cost = tl.reduction;
           };
         ]
       else [])
    @
    if tl.recovery > 0.0 then
      [
        {
          step = -1;
          resource = "recovery";
          compute = 0.0;
          comm = 0.0;
          cost = tl.recovery;
        };
      ]
    else []
  in
  let compute_time = List.fold_left (fun acc n -> acc +. n.compute) 0.0 nodes in
  let comm_time = List.fold_left (fun acc n -> acc +. n.comm) 0.0 nodes in
  let slack =
    List.init tl.nprocs (fun p ->
        let idle =
          List.fold_left
            (fun acc s ->
              let busy =
                match List.find_opt (fun sl -> sl.proc = p) s.slots with
                | Some sl -> Float.min sl.busy s.cost
                | None -> 0.0
              in
              acc +. (s.cost -. busy))
            0.0 tl.steps
        in
        (p, idle))
  in
  let bottleneck =
    let totals = Hashtbl.create 8 in
    List.iter
      (fun n ->
        let t = try Hashtbl.find totals n.resource with Not_found -> 0.0 in
        Hashtbl.replace totals n.resource (t +. n.cost))
      nodes;
    let best =
      Hashtbl.fold
        (fun r t acc ->
          match acc with
          | Some (_, t0) when t0 >= t -> acc
          | _ -> Some (r, t))
        totals None
    in
    match best with Some (r, _) -> r | None -> "idle"
  in
  {
    end_time = tl.total;
    nodes;
    compute_time;
    comm_time;
    overhead = tl.overhead;
    reduction = tl.reduction;
    recovery = tl.recovery;
    slack;
    bottleneck;
  }
