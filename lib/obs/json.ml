(* JSON lives in lib/support (Distal_support.Json) so the trace exporter
   and the distald wire protocol share one writer; this alias keeps the
   historical [Distal_obs.Json] path working for existing users. *)

include Distal_support.Json
