type value = Bool of bool | Int of int | Float of float | Str of string

type kind = Span of float | Instant | Counter of float | Meta

type t = {
  name : string;
  cat : string;
  pid : int;
  tid : int;
  ts : float;
  kind : kind;
  attrs : (string * value) list;
}

type sink = { mutable rev_events : t list; mutable n : int }

let sink () = { rev_events = []; n = 0 }

let emit s e =
  s.rev_events <- e :: s.rev_events;
  s.n <- s.n + 1

let events s = List.rev s.rev_events
let count s = s.n

let value_to_json = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.String s
