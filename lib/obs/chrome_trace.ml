let us s = s *. 1e6

let event_to_json (e : Event.t) =
  let args = List.map (fun (k, v) -> (k, Event.value_to_json v)) e.attrs in
  let base ph extra =
    Json.Obj
      ([
         ("name", Json.String e.name);
         ("cat", Json.String e.cat);
         ("ph", Json.String ph);
         ("pid", Json.Int e.pid);
         ("tid", Json.Int e.tid);
       ]
      @ extra)
  in
  match e.kind with
  | Event.Span dur ->
      base "X"
        [
          ("ts", Json.Float (us e.ts));
          ("dur", Json.Float (us dur));
          ("args", Json.Obj args);
        ]
  | Event.Instant ->
      base "i"
        [
          ("ts", Json.Float (us e.ts));
          ("s", Json.String "t");
          ("args", Json.Obj args);
        ]
  | Event.Counter v ->
      base "C"
        [
          ("ts", Json.Float (us e.ts));
          ("args", Json.Obj [ (e.name, Json.Float v) ]);
        ]
  | Event.Meta -> base "M" [ ("ts", Json.Float 0.0); ("args", Json.Obj args) ]

let json_of_events events =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json events));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj [ ("producer", Json.String "distal simulator") ] );
    ]

let to_string events = Json.to_string (json_of_events events)

let of_profile p = to_string (Profile.events p)

let save ~file p =
  let oc = open_out file in
  output_string oc (of_profile p);
  output_char oc '\n';
  close_out oc
