(** A profile: one event stream plus per-run metrics and timelines.

    A profile is created once and threaded through any number of compiled
    runs ([Exec.execute ?profile], [Api.run ?profile], a whole harness
    figure). Each simulated execution registers itself as a {e run} — it
    gets a fresh pid for its events, its own metrics registry, and a slot
    for its step timeline — so several executions coexist in one exported
    trace. Pid 0 is reserved for the compiler's wall-clock spans. *)

type run = {
  pid : int;
  name : string;
  metrics : Metrics.registry;
  mutable timeline : Critical_path.timeline option;
}

type t

val create : unit -> t
val sink : t -> Event.sink

val set_next_run_name : t -> string -> unit
(** Name the next run registered by a layer that cannot name it itself
    (e.g. the harness labelling the simulator's runs). Consumed by the next
    {!begin_run} without an explicit [name]. *)

val begin_run : ?name:string -> ?fallback:string -> t -> run
(** Register a run: allocates the next pid, emits its process-name
    metadata. Precedence for the name: explicit [name], then a pending
    {!set_next_run_name}, then ["<fallback><pid>"], then ["run<pid>"]. *)

val runs : t -> run list
(** In registration order. *)

val find_run : t -> string -> run option
val events : t -> Event.t list
(** The full stream, in emission order. *)
