(** Type-equal re-export of {!Distal_support.Json}, where the tree's one
    JSON writer/parser now lives (shared with the [distald] wire
    protocol). *)

include module type of struct
  include Distal_support.Json
end
