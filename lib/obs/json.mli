(** A minimal JSON tree, printer and parser.

    The container has no JSON package, so the observability exporters
    (Chrome traces, bench trajectories, metric snapshots) carry their own
    small implementation. The printer always emits valid JSON (non-finite
    floats become [null]); the parser accepts exactly the JSON grammar and
    exists so tests can check that what we emit round-trips. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering (for files meant to be diffed). *)

val parse : string -> (t, string) result

val member : string -> t -> t option
(** [member k (Obj ...)] looks up key [k]; [None] on missing key or
    non-object. *)

val to_float : t -> float option
(** Numeric value of an [Int] or [Float] node. *)
