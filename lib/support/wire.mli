(** Length-prefixed JSONL framing for the [distald] wire protocol.

    A frame is [%08d\n] (payload byte length), the payload (one JSON
    document on a single line), and a trailing newline. See
    [lib/serve/protocol.mli] for the message vocabulary carried inside
    frames. *)

val max_frame : int
(** Hard bound on payload size (64 MiB); both ends reject beyond it. *)

val encode : string -> string
(** The full frame for a payload.
    @raise Invalid_argument beyond {!max_frame}. *)

val send : Unix.file_descr -> string -> unit
(** Write one frame, handling short writes and [EINTR].
    @raise Unix.Unix_error as [Unix.write] does (e.g. [EPIPE] when the
    peer is gone and [SIGPIPE] is ignored). *)

val recv : Unix.file_descr -> (string option, string) result
(** Read one frame. [Ok None] is a clean EOF on a frame boundary;
    [Error] reports a malformed header or a peer that died mid-frame. *)

(** {2 Incremental decoding}

    For select-driven loops that read whatever bytes are available and
    extract any complete frames. *)

type decoder

val decoder : unit -> decoder
val feed : decoder -> bytes -> int -> int -> unit

val next : decoder -> (string option, string) result
(** The next complete payload, [Ok None] when more bytes are needed,
    [Error] on a malformed header (the connection should be dropped). *)

val pending : decoder -> bool
(** Whether undecoded bytes are buffered (a partial frame at EOF means
    the peer died mid-request). *)
