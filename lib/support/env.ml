(* Centralized parsing of DISTAL_* environment variables.

   Every knob the runtime reads from the environment goes through here so
   that malformed values fail loudly and uniformly instead of being
   silently ignored at each call site. An unset or empty variable always
   means "use the default"; a set-but-malformed one is a configuration
   error and raises. *)

let lookup name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s ->
      let s = String.trim s in
      if s = "" then None else Some s

let malformed name s expect =
  invalid_arg (Printf.sprintf "%s must be %s, got %S" name expect s)

let string_var name = lookup name

let int_var name =
  match lookup name with
  | None -> None
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> Some n
      | None -> malformed name s "an integer")

let positive_int_var name =
  match lookup name with
  | None -> None
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> malformed name s "a positive integer")

let float_var name =
  match lookup name with
  | None -> None
  | Some s -> (
      match float_of_string_opt s with
      | Some f when Float.is_finite f -> Some f
      | Some _ | None -> malformed name s "a finite number")

let bool_var ~default name =
  match lookup name with
  | None -> default
  | Some s -> (
      match String.lowercase_ascii s with
      | "1" | "true" | "yes" | "on" -> true
      | "0" | "false" | "no" | "off" -> false
      | _ -> malformed name s "a boolean (0/1/true/false/yes/no/on/off)")

let non_negative_int_var name =
  match lookup name with
  | None -> None
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> Some n
      | Some _ | None -> malformed name s "a non-negative integer")

let non_negative_float_var name =
  match lookup name with
  | None -> None
  | Some s -> (
      match float_of_string_opt s with
      | Some f when Float.is_finite f && f >= 0.0 -> Some f
      | Some _ | None -> malformed name s "a non-negative finite number")

(* The serving knobs (lib/serve, bin/distald). Parsed here so distald,
   the session layer and the tests agree on the validation rules. *)

let serve_queue () = positive_int_var "DISTAL_SERVE_QUEUE"

let serve_batch_window () = non_negative_float_var "DISTAL_SERVE_BATCH_WINDOW"

let serve_cache () = non_negative_int_var "DISTAL_SERVE_CACHE"

(* Leaf-kernel knobs (lib/tensor/kernel_registry, lib/machine/calibrate).
   The registry's mode type lives in distal_tensor, which depends on this
   library, so the parsed value is a polymorphic variant. *)

let kernels () =
  match lookup "DISTAL_KERNELS" with
  | None -> None
  | Some s -> (
      match String.lowercase_ascii s with
      | "off" -> Some `Off
      | "naive" -> Some `Naive
      | "tiled" -> Some `Tiled
      | _ -> malformed "DISTAL_KERNELS" s "one of off/naive/tiled")

let kernel_rate () =
  match non_negative_float_var "DISTAL_KERNEL_RATE" with
  | Some f when f > 0.0 -> Some f
  | Some _ -> malformed "DISTAL_KERNEL_RATE" "0" "a positive flop/s rate"
  | None -> None

(* Executable-plan knobs (lib/runtime/exec, lib/distal/api,
   lib/support/buf_pool). *)

let plan_reuse () = bool_var ~default:true "DISTAL_PLAN_REUSE"

(* Auto-scheduler knobs (lib/algorithms/auto, lib/machine/calibrate). *)

let auto_cache () = non_negative_int_var "DISTAL_AUTO_CACHE"

let pack_overhead () =
  match non_negative_float_var "DISTAL_PACK_OVERHEAD" with
  | Some f when f > 0.0 -> Some f
  | Some _ -> malformed "DISTAL_PACK_OVERHEAD" "0" "a positive number of seconds"
  | None -> None
