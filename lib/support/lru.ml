(* A mutex-protected LRU cache with hit/miss/eviction counters.

   This is the substrate of the serving layer's plan and result caches
   (lib/serve): lookups promote to most-recently-used, inserts beyond
   capacity evict the least-recently-used entry, and every operation is
   serialized by an internal mutex so sessions can be driven concurrently
   from the domains of {!Pool} without external locking.

   Recency is a doubly-linked list threaded through the entries; the
   hashtable maps keys to their list node, so find/put/remove are O(1).
   [find_or_add] holds the mutex across the compute function, which makes
   the computation single-flight: two domains racing on the same missing
   key compute it once. Compute functions must therefore be quick (plan
   compilation is) and must never re-enter the same cache. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards MRU *)
  mutable next : ('k, 'v) node option;  (* towards LRU *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  m : Mutex.t;
  mutable head : ('k, 'v) node option;  (* MRU *)
  mutable tail : ('k, 'v) node option;  (* LRU *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: capacity must be >= 0";
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    m = Mutex.create ();
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.m;
  match f () with
  | v ->
      Mutex.unlock t.m;
      v
  | exception e ->
      Mutex.unlock t.m;
      raise e

(* {2 List surgery — caller holds the mutex} *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  (* Compare the node itself: [t.head != Some n] would allocate a fresh
     [Some] block and always be physically unequal, making the fast path
     dead and every MRU hit pay an unlink/re-push. *)
  match t.head with
  | Some h when h == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let evict_lru t =
  match t.tail with
  | None -> None
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.evictions <- t.evictions + 1;
      Some (n.key, n.value)

let insert t key value =
  (* Caller holds the mutex; key known absent. Returns the evicted
     binding, if inserting overflowed the capacity. *)
  if t.capacity = 0 then None
  else begin
    let n = { key; value; prev = None; next = None } in
    Hashtbl.replace t.table key n;
    push_front t n;
    if Hashtbl.length t.table > t.capacity then evict_lru t else None
  end

(* {2 Public operations} *)

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
          promote t n;
          t.hits <- t.hits + 1;
          Some n.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let mem t key = locked t (fun () -> Hashtbl.mem t.table key)

let put t key value =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
          n.value <- value;
          promote t n;
          None
      | None -> insert t key value)

let find_or_add t key compute =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
          promote t n;
          t.hits <- t.hits + 1;
          Ok (n.value, `Hit)
      | None -> (
          t.misses <- t.misses + 1;
          match compute () with
          | Error _ as e -> e
          | Ok v ->
              let evicted = insert t key v in
              Ok (v, `Miss evicted)))

let remove t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None -> false
      | Some n ->
          unlink t n;
          Hashtbl.remove t.table key;
          true)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)

let length t = locked t (fun () -> Hashtbl.length t.table)
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)

let keys_mru t =
  locked t (fun () ->
      let rec go acc = function
        | None -> List.rev acc
        | Some n -> go (n.key :: acc) n.next
      in
      go [] t.head)
