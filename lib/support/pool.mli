(** A reusable pool of OCaml 5 domains for data-parallel sections.

    The executor partitions each index launch's grid points across the
    pool's lanes. Workers are spawned on first use and parked between
    jobs; the calling domain always participates as lane 0, so a pool of
    size [n] runs [n] lanes on [n] domains total.

    Pools are driven from the main domain and are not reentrant ([run]
    must not be called from inside a lane body). *)

type t

val default_size : unit -> int
(** [DISTAL_NUM_DOMAINS] when set and non-empty (clamped to [1, 64]),
    otherwise {!Domain.recommended_domain_count} — the available cores.
    Parsed via {!Env.positive_int_var}.
    @raise Invalid_argument when the variable is set but not a positive
    integer. *)

val create : int -> t
(** A fresh pool with the given number of lanes (>= 1). Prefer {!get},
    which shares pools and shuts them down at exit. *)

val get : ?size:int -> unit -> t
(** The shared pool of the given size (default {!default_size}), created
    on first request. Shared pools are joined automatically at process
    exit. *)

val size : t -> int

val run : t -> lanes:int -> (int -> unit) -> unit
(** [run t ~lanes f] invokes [f lane] for every [lane] in
    [0 .. min lanes (size t) - 1], concurrently on the pool's domains;
    lane 0 runs on the caller. Returns when every lane has finished. If
    any lane raised, the first exception is re-raised in the caller
    (after all lanes finished). With [lanes <= 1] this is just [f 0]. *)

val shutdown : t -> unit
(** Join the pool's worker domains. The pool can be reused afterwards
    (workers respawn on the next multi-lane {!run}). *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]) — the pool's clock for
    utilization accounting. *)
