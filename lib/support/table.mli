(** Plain-text aligned tables for the benchmark harness output. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
val print : ?oc:out_channel -> t -> unit
(** Print with columns padded to the widest cell, header underlined. *)

val to_string : t -> string
(** The same rendering as {!print}, as a string. *)
