(** Size-classed pool of float64 bigarray buffers with per-lane arenas.

    Backs the executor's run phase: fragment, reduction and slice buffers
    are acquired here instead of allocated fresh, so a steady-state run
    against a compiled plan performs no bigarray allocation at all.
    Capacities round up to powers of two (one free list per class); each
    pool lane owns an arena it alone touches during the parallel probe
    (lock-free acquire/release), with a mutex-guarded shared tier as the
    backstop so buffers migrate when the lane count changes between runs.

    Total parked bytes are capped ([max_bytes], default [DISTAL_POOL_MB]
    megabytes, 64 when unset): a release that would exceed the cap drops
    the block to the GC. The cap check is advisory (read without the
    lock), so the ceiling is approximate by design. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Same backing type as [Distal_tensor.Dense.buf]; this library sits
    below the tensor layer, so the pool deals in raw blocks. *)

type t
type arena

type stats = {
  allocs : int;  (** fresh bigarray allocations since [create] *)
  alloc_bytes : float;  (** bytes of those allocations *)
  hits : int;  (** acquisitions served from an arena or the shared tier *)
  cached_bytes : float;  (** bytes currently parked in free lists *)
  dropped : int;  (** releases discarded because [max_bytes] was reached *)
}

val create : ?max_bytes:int -> unit -> t
(** A fresh pool. [max_bytes] caps the total bytes parked across every
    free list; default [DISTAL_POOL_MB] (megabytes) when set, else 64 MB.
    @raise Invalid_argument when [DISTAL_POOL_MB] is set but malformed. *)

val arena : t -> int -> arena
(** The arena of the given pool lane (0-based, below
    {!Distal_support.Pool}'s 64-domain cap). Stable across calls and
    allocation-free, so lanes may call it concurrently — but each arena
    must only ever be used by one domain at a time.
    @raise Invalid_argument on a lane outside [0, 64). *)

val acquire : t -> arena -> int -> buf
(** [acquire t a n] returns a block of capacity at least [n] elements
    (the smallest power-of-two class), preferring the arena's free list,
    then the shared tier, then a fresh allocation. Contents are
    unspecified — callers overwrite or zero-fill. *)

val release : t -> arena -> buf -> unit
(** Park a block on the arena's free list (or drop it when the pool is
    at its byte cap). Only blocks that came from {!acquire} should be
    released; the block must not be used after release. *)

val release_shared : t -> buf -> unit
(** Like {!release} but parks on the shared tier — for releases that
    happen outside any lane (the serial merge phase). *)

val stats : t -> stats
