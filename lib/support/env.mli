(** Centralized parsing of [DISTAL_*] environment variables.

    All runtime knobs read from the environment go through this module so
    malformed values fail loudly and uniformly ([Invalid_argument] naming
    the variable and the offending value) rather than being silently
    ignored at individual call sites. An unset variable, or one set to
    whitespace only, always means "use the default" and returns [None]
    (or [default] for {!bool_var}). *)

val string_var : string -> string option
(** The trimmed value, [None] when unset or blank. *)

val int_var : string -> int option
(** @raise Invalid_argument when set but not an integer. *)

val positive_int_var : string -> int option
(** @raise Invalid_argument when set but not an integer [>= 1]. *)

val float_var : string -> float option
(** @raise Invalid_argument when set but not a finite number. *)

val bool_var : default:bool -> string -> bool
(** Accepts [0/1/true/false/yes/no/on/off] (case-insensitive).
    @raise Invalid_argument on anything else. *)

val non_negative_int_var : string -> int option
(** @raise Invalid_argument when set but not an integer [>= 0]. *)

val non_negative_float_var : string -> float option
(** @raise Invalid_argument when set but not a finite number [>= 0]. *)

(** {2 Serving knobs}

    The [distald]/[lib/serve] configuration variables, validated here so
    every consumer rejects malformed values identically. See the README's
    environment-variable table for semantics and defaults. *)

val serve_queue : unit -> int option
(** [DISTAL_SERVE_QUEUE]: admission-control queue bound (positive). *)

val serve_batch_window : unit -> float option
(** [DISTAL_SERVE_BATCH_WINDOW]: batching window in seconds
    (non-negative; [0] serves every request immediately). *)

val serve_cache : unit -> int option
(** [DISTAL_SERVE_CACHE]: plan-cache capacity in entries ([0] disables
    caching). *)

(** {2 Leaf-kernel knobs} *)

val kernels : unit -> [ `Off | `Naive | `Tiled ] option
(** [DISTAL_KERNELS]: leaf kernel registry mode — [off] (reference loops
    on substituted leaves, staged plans elsewhere), [naive] (registry
    dispatch to the reference implementations) or [tiled] (registry
    dispatch to the cache-blocked microkernels, the default). The
    registry's own mode type lives above this library, hence the
    polymorphic variant. *)

val kernel_rate : unit -> float option
(** [DISTAL_KERNEL_RATE]: flop/s rate (positive) pinned for every leaf
    kernel, overriding the calibration microbenchmarks — reproducible CI
    and what-if modelling of a different host. *)

(** {2 Executable-plan knobs} *)

val plan_reuse : unit -> bool
(** [DISTAL_PLAN_REUSE] (default on): route Full-mode [Api.run] calls
    through a cached executable plan ({!val-bool_var} semantics) — plan
    once per (program x schedule x machine x options) and run against new
    data with pooled buffers. [DISTAL_POOL_MB] (parsed by
    {!Buf_pool.create}) caps the bytes each plan's buffer pool parks. *)

(** {2 Auto-scheduler knobs} *)

val auto_cache : unit -> int option
(** [DISTAL_AUTO_CACHE]: probe-memoization LRU capacity for the
    auto-scheduler ([0] disables memoization). *)

val pack_overhead : unit -> float option
(** [DISTAL_PACK_OVERHEAD]: per-fragment packing cost in seconds,
    overriding the strided-copy calibration microbenchmark (positive). *)
