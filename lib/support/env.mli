(** Centralized parsing of [DISTAL_*] environment variables.

    All runtime knobs read from the environment go through this module so
    malformed values fail loudly and uniformly ([Invalid_argument] naming
    the variable and the offending value) rather than being silently
    ignored at individual call sites. An unset variable, or one set to
    whitespace only, always means "use the default" and returns [None]
    (or [default] for {!bool_var}). *)

val string_var : string -> string option
(** The trimmed value, [None] when unset or blank. *)

val int_var : string -> int option
(** @raise Invalid_argument when set but not an integer. *)

val positive_int_var : string -> int option
(** @raise Invalid_argument when set but not an integer [>= 1]. *)

val float_var : string -> float option
(** @raise Invalid_argument when set but not a finite number. *)

val bool_var : default:bool -> string -> bool
(** Accepts [0/1/true/false/yes/no/on/off] (case-insensitive).
    @raise Invalid_argument on anything else. *)
