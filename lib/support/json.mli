(** A minimal JSON tree, printer and parser.

    The container has no JSON package, so every producer and consumer of
    JSON in the tree — the observability exporters (Chrome traces, bench
    trajectories, metric snapshots) and the [distald] wire protocol —
    shares this one small implementation; in particular string escaping
    is fixed here and nowhere else. The printer always emits valid JSON
    (non-finite floats become [null]); finite floats are printed with the
    shortest representation that round-trips through [float_of_string],
    so a parse of our own output reproduces the bits. The parser accepts
    exactly the JSON grammar. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering (for files meant to be diffed). *)

val parse : string -> (t, string) result

val member : string -> t -> t option
(** [member k (Obj ...)] looks up key [k]; [None] on missing key or
    non-object. *)

val to_float : t -> float option
(** Numeric value of an [Int] or [Float] node. *)
