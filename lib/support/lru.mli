(** A mutex-protected LRU cache with hit/miss/eviction counters.

    The substrate of the serving layer's plan and result caches
    (lib/serve). All operations are serialized internally, so a cache may
    be shared by the domains of {!Pool} without external locking. A
    capacity of [0] is a valid always-miss cache (caching disabled). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument when [capacity < 0]. *)

val capacity : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit promotes the entry to most-recently-used. Counts
    towards {!hits} / {!misses}. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without promotion or counter updates. *)

val put : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Insert or overwrite (either way the entry becomes MRU); returns the
    evicted least-recently-used binding when the insert overflowed the
    capacity. A capacity-0 cache drops the value and returns [None]. *)

val find_or_add :
  ('k, 'v) t ->
  'k ->
  (unit -> ('v, 'e) result) ->
  ('v * [ `Hit | `Miss of ('k * 'v) option ], 'e) result
(** Atomic lookup-or-compute: on a miss, [compute] runs under the cache
    mutex (single-flight — concurrent misses on one key compute once) and
    the result is inserted; [`Miss evicted] carries the binding the
    insert displaced. [compute] must be quick and must not touch this
    cache. A computation returning [Error] caches nothing. *)

val remove : ('k, 'v) t -> 'k -> bool

val clear : ('k, 'v) t -> unit

val length : ('k, 'v) t -> int

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val evictions : ('k, 'v) t -> int

val keys_mru : ('k, 'v) t -> 'k list
(** Keys most-recently-used first (the eviction order reversed). *)
