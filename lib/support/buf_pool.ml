(* Size-classed pool of float64 bigarray buffers with per-lane arenas.

   The executor's run phase (lib/runtime/exec) materializes a fragment
   buffer per communicate point per task; allocating those fresh on every
   run is what made allocation-heavy lanes fight the OCaml 5 shared major
   GC (and, for Bigarray payloads, malloc) instead of scaling. This pool
   keeps the backing blocks alive across runs:

   - capacities are rounded up to powers of two, so a buffer freed by a
     fragment of one shape is reusable by any fragment whose volume lands
     in the same class — the fragmentation-proof policy of classic slab
     allocators;

   - each pool lane owns an arena of free lists and touches only it
     during the parallel probe, so acquire/release on the hot path is a
     list cons with no lock and no cross-domain traffic;

   - a mutex-guarded shared tier backstops the arenas: an arena miss
     pulls from it before allocating fresh, so buffers migrate between
     lanes when the lane count changes between runs.

   The pool hands out raw [Bigarray.Array1] blocks (this library sits
   below [Distal_tensor]); callers wrap them into tensor views. Blocks
   live outside the OCaml heap, so parked buffers cost address space and
   RSS but no GC work; [max_bytes] caps the total bytes parked across
   arenas and the shared tier — a release that would exceed the cap drops
   the buffer to the GC instead of parking it. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* 2^0 .. 2^47 element classes: class [c] holds blocks of exactly [2^c]
   elements. 2^47 * 8 bytes is far beyond any addressable tensor. *)
let nclasses = 48

(* Lane indices come from Distal_support.Pool, whose pools are capped at
   64 domains; preallocating every arena keeps [arena] allocation-free
   and safe to call concurrently from the lanes themselves. *)
let max_lanes = 64

type stats = {
  allocs : int;  (** fresh bigarray allocations since [create] *)
  alloc_bytes : float;  (** bytes of those allocations *)
  hits : int;  (** acquisitions served from an arena or the shared tier *)
  cached_bytes : float;  (** bytes currently parked in free lists *)
  dropped : int;  (** releases discarded because [max_bytes] was reached *)
}

type arena = {
  free : buf list array;  (* per class, owner-lane access only *)
  owner : int;  (* lane index, for diagnostics *)
}

type t = {
  arenas : arena array;
  shared : buf list array;  (* per class, guarded by [m] *)
  m : Mutex.t;
  max_bytes : int;
  (* Counters cross domains (lanes release concurrently), so they are
     atomics, not plain ints. [cached] is advisory: the cap check reads
     it without the lock, so the cap is approximate by design. *)
  cached : int Atomic.t;
  allocs : int Atomic.t;
  alloc_bytes : int Atomic.t;
  hits : int Atomic.t;
  dropped : int Atomic.t;
}

let default_max_mb = 64

let default_max_bytes () =
  let mb =
    match Env.non_negative_int_var "DISTAL_POOL_MB" with
    | Some mb -> mb
    | None -> default_max_mb
  in
  mb * 1024 * 1024

let create ?max_bytes () =
  let max_bytes =
    match max_bytes with Some b -> max 0 b | None -> default_max_bytes ()
  in
  {
    arenas =
      Array.init max_lanes (fun owner ->
          { free = Array.make nclasses []; owner });
    shared = Array.make nclasses [];
    m = Mutex.create ();
    max_bytes;
    cached = Atomic.make 0;
    allocs = Atomic.make 0;
    alloc_bytes = Atomic.make 0;
    hits = Atomic.make 0;
    dropped = Atomic.make 0;
  }

let arena t lane =
  if lane < 0 || lane >= max_lanes then
    invalid_arg
      (Printf.sprintf "Buf_pool.arena: lane %d outside [0, %d)" lane max_lanes);
  t.arenas.(lane)

(* Smallest class whose capacity [2^c] holds [n] elements. *)
let class_of n =
  let c = ref 0 in
  while 1 lsl !c < n do
    incr c
  done;
  !c

let class_bytes c = 8 * (1 lsl c)

let alloc_class t c =
  Atomic.incr t.allocs;
  ignore (Atomic.fetch_and_add t.alloc_bytes (class_bytes c));
  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (1 lsl c)

let acquire t arena n =
  let c = class_of (max 1 n) in
  match arena.free.(c) with
  | b :: rest ->
      arena.free.(c) <- rest;
      ignore (Atomic.fetch_and_add t.cached (-class_bytes c));
      Atomic.incr t.hits;
      b
  | [] -> (
      Mutex.lock t.m;
      match t.shared.(c) with
      | b :: rest ->
          t.shared.(c) <- rest;
          Mutex.unlock t.m;
          ignore (Atomic.fetch_and_add t.cached (-class_bytes c));
          Atomic.incr t.hits;
          b
      | [] ->
          Mutex.unlock t.m;
          alloc_class t c)

let release t arena b =
  let n = Bigarray.Array1.dim b in
  let c = class_of n in
  (* Only blocks the pool itself sized (exact class capacities) are
     parked; anything else would lie about its capacity on reuse. *)
  if 1 lsl c <> n || Atomic.get t.cached + class_bytes c > t.max_bytes then
    Atomic.incr t.dropped
  else begin
    arena.free.(c) <- b :: arena.free.(c);
    ignore (Atomic.fetch_and_add t.cached (class_bytes c))
  end

let release_shared t b =
  let n = Bigarray.Array1.dim b in
  let c = class_of n in
  if 1 lsl c <> n || Atomic.get t.cached + class_bytes c > t.max_bytes then
    Atomic.incr t.dropped
  else begin
    Mutex.lock t.m;
    t.shared.(c) <- b :: t.shared.(c);
    Mutex.unlock t.m;
    ignore (Atomic.fetch_and_add t.cached (class_bytes c))
  end

let stats t =
  {
    allocs = Atomic.get t.allocs;
    alloc_bytes = float_of_int (Atomic.get t.alloc_bytes);
    hits = Atomic.get t.hits;
    cached_bytes = float_of_int (max 0 (Atomic.get t.cached));
    dropped = Atomic.get t.dropped;
  }
