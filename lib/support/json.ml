type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write ~indent ~level buf t =
  let nl pad =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * pad) ' ')
    end
  in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          write ~indent ~level:(level + 1) buf x)
        xs;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          write ~indent ~level:(level + 1) buf v)
        kvs;
      nl level;
      Buffer.add_char buf '}'

let render ~indent t =
  let buf = Buffer.create 1024 in
  write ~indent ~level:0 buf t;
  Buffer.contents buf

let to_string t = render ~indent:false t
let to_string_pretty t = render ~indent:true t

(* {2 Parser} *)

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "at %d: expected %c, got %c" !pos c c'
    | None -> fail "at %d: expected %c, got end of input" !pos c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "at %d: bad literal" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* Only BMP code points below 0x80 render as a char; others
                 become UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape at %d" !pos)
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let str = String.sub s start (!pos - start) in
    match int_of_string_opt str with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt str with
        | Some f -> Float f
        | None -> fail "at %d: bad number %S" start str)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "at %d: expected , or ] in array" !pos
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec pairs acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                pairs ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "at %d: expected , or } in object" !pos
          in
          Obj (pairs [])
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at %d" !pos;
    v
  with
  | v -> Ok v
  | exception Fail m -> Error m

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
