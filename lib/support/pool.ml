(* A reusable pool of OCaml 5 domains for data-parallel sections.

   Workers are spawned lazily on first use and then parked on a condition
   variable between jobs, so repeated [run] calls (one per executed plan)
   pay no spawn cost. The caller participates as lane 0; workers take
   lanes 1..n-1. Exceptions raised by any lane are re-raised in the
   caller after every lane has finished (first one wins).

   Pools are not reentrant: [run] must not be called from inside a lane
   body, and pools are meant to be driven from the main domain. *)

type t = {
  size : int;
  m : Mutex.t;
  work : Condition.t;
  donec : Condition.t;
  mutable epoch : int;
  mutable job : int -> unit;
  mutable lanes : int;  (* lanes participating in the current epoch *)
  mutable pending : int;  (* workers still running the current epoch *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;  (* spawned on first multi-lane run *)
}

let max_domains = 64

let default_size () =
  match Env.positive_int_var "DISTAL_NUM_DOMAINS" with
  | Some n -> min n max_domains
  | None -> min max_domains (Domain.recommended_domain_count ())

let create size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  {
    size;
    m = Mutex.create ();
    work = Condition.create ();
    donec = Condition.create ();
    epoch = 0;
    job = ignore;
    lanes = 0;
    pending = 0;
    failed = None;
    stop = false;
    workers = [];
  }

let size t = t.size

let record_failure t e =
  let bt = Printexc.get_raw_backtrace () in
  Mutex.lock t.m;
  if t.failed = None then t.failed <- Some (e, bt);
  Mutex.unlock t.m

let worker t slot epoch0 =
  let last = ref epoch0 in
  Mutex.lock t.m;
  let rec loop () =
    if t.stop then Mutex.unlock t.m
    else if t.epoch = !last then begin
      Condition.wait t.work t.m;
      loop ()
    end
    else begin
      last := t.epoch;
      let f = t.job and lanes = t.lanes in
      let mine = slot < lanes in
      Mutex.unlock t.m;
      if mine then (try f slot with e -> record_failure t e);
      Mutex.lock t.m;
      if mine then begin
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.donec
      end;
      loop ()
    end
  in
  loop ()

let ensure_started t =
  if t.workers = [] && t.size > 1 then begin
    (* Capture the epoch before spawning: a worker must not mistake the
       last finished job for fresh work, nor skip the next one. Only the
       caller advances [epoch], so reading it here is race-free. *)
    let epoch0 = t.epoch in
    t.workers <-
      List.init (t.size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1) epoch0))
  end

let shutdown t =
  if t.workers <> [] then begin
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers;
    t.workers <- [];
    (* Re-arm so a later [run] can respawn workers. *)
    t.stop <- false
  end

let run t ~lanes f =
  let lanes = max 1 (min lanes t.size) in
  if lanes = 1 then f 0
  else begin
    ensure_started t;
    Mutex.lock t.m;
    t.job <- f;
    t.lanes <- lanes;
    t.pending <- lanes - 1;
    t.failed <- None;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    (try f 0 with e -> record_failure t e);
    Mutex.lock t.m;
    while t.pending > 0 do
      Condition.wait t.donec t.m
    done;
    let fl = t.failed in
    t.failed <- None;
    t.job <- ignore;
    Mutex.unlock t.m;
    match fl with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(* One shared pool per size, shut down at exit so idle worker domains
   never outlive the main domain. *)
let pools : (int, t) Hashtbl.t = Hashtbl.create 4
let exit_hooked = ref false

let get ?size () =
  let n =
    match size with Some n -> max 1 (min n max_domains) | None -> default_size ()
  in
  match Hashtbl.find_opt pools n with
  | Some p -> p
  | None ->
      let p = create n in
      Hashtbl.add pools n p;
      if not !exit_hooked then begin
        exit_hooked := true;
        at_exit (fun () -> Hashtbl.iter (fun _ p -> shutdown p) pools)
      end;
      p

let now () = Unix.gettimeofday ()
