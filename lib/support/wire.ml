(* Length-prefixed JSONL framing for the distald wire protocol.

   A frame is an 8-digit zero-padded decimal byte length, a newline, the
   payload (one JSON document, by convention on a single line), and a
   trailing newline:

     00000042\n{"type":"submit","id":1,...}\n

   The fixed-width prefix keeps framing trivial to parse incrementally
   (no escaping questions — the payload length is known before the
   payload is read) while `socat`/`nc` transcripts stay human-readable
   JSONL. Reads distinguish a clean EOF on a frame boundary (None) from
   a connection dying mid-frame (Error), which is how the server detects
   clients killed mid-request. *)

let max_frame = 64 * 1024 * 1024
let header_len = 9 (* 8 digits + '\n' *)

let encode payload =
  let n = String.length payload in
  if n > max_frame then
    invalid_arg (Printf.sprintf "Wire.encode: frame of %d bytes exceeds %d" n max_frame);
  Printf.sprintf "%08d\n%s\n" n payload

(* {2 Blocking fd transport} *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = try Unix.write_substring fd s off len with Unix.Unix_error (Unix.EINTR, _, _) -> 0 in
    write_all fd s (off + n) (len - n)
  end

let send fd payload =
  let frame = encode payload in
  write_all fd frame 0 (String.length frame)

let rec read_exact fd buf off len =
  if len = 0 then `Done
  else
    match Unix.read fd buf off len with
    | 0 -> `Eof off
    | n -> read_exact fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact fd buf off len
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Eof off

let parse_header bytes =
  let s = Bytes.sub_string bytes 0 (header_len - 1) in
  if Bytes.get bytes (header_len - 1) <> '\n' then
    Error (Printf.sprintf "bad frame header %S" s)
  else
    match int_of_string_opt s with
    | Some n when n >= 0 && n <= max_frame -> Ok n
    | Some n -> Error (Printf.sprintf "frame length %d out of range" n)
    | None -> Error (Printf.sprintf "bad frame header %S" s)

let recv fd =
  let hdr = Bytes.create header_len in
  match read_exact fd hdr 0 header_len with
  | `Eof 0 -> Ok None (* clean close on a frame boundary *)
  | `Eof _ -> Error "connection closed inside a frame header"
  | `Done -> (
      match parse_header hdr with
      | Error _ as e -> e
      | Ok n -> (
          let payload = Bytes.create (n + 1) in
          match read_exact fd payload 0 (n + 1) with
          | `Eof _ -> Error "connection closed inside a frame payload"
          | `Done ->
              if Bytes.get payload n <> '\n' then Error "frame missing trailing newline"
              else Ok (Some (Bytes.sub_string payload 0 n))))

(* {2 Incremental decoding (for select-driven loops)} *)

type decoder = { buf : Buffer.t }

let decoder () = { buf = Buffer.create 256 }
let feed d s off len = Buffer.add_subbytes d.buf s off len
let pending d = Buffer.length d.buf > 0

let next d =
  let len = Buffer.length d.buf in
  if len < header_len then Ok None
  else begin
    let hdr = Bytes.of_string (Buffer.sub d.buf 0 header_len) in
    match parse_header hdr with
    | Error _ as e -> e
    | Ok n ->
        let total = header_len + n + 1 in
        if len < total then Ok None
        else begin
          let payload = Buffer.sub d.buf header_len n in
          if Buffer.nth d.buf (total - 1) <> '\n' then
            Error "frame missing trailing newline"
          else begin
            let rest = Buffer.sub d.buf total (len - total) in
            Buffer.clear d.buf;
            Buffer.add_string d.buf rest;
            Ok (Some payload)
          end
        end
  end
