type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let to_string t =
  let buf = Buffer.create 256 in
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> width.(i) <- max width.(i) (String.length cell)))
    all;
  let pad i cell = cell ^ String.make (width.(i) - String.length cell) ' ' in
  let add_row r =
    Buffer.add_string buf ("  " ^ String.concat "  " (List.mapi pad r) ^ "\n")
  in
  add_row t.header;
  let rule = List.mapi (fun i _ -> String.make width.(i) '-') t.header in
  add_row rule;
  List.iter add_row rows;
  Buffer.contents buf

let print ?(oc = stdout) t = output_string oc (to_string t)
