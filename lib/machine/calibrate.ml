(* Microbenchmark calibration of Cost_model.pack_overhead.

   The cost model prices a coalesced strided transfer as one message plus
   a per-fragment packing charge (Cost_model.pack_time). The presets
   guess that charge; here we measure it on the host the search actually
   runs on, so Auto trades strided packing against redistribution on
   measured numbers rather than folklore.

   The measurement mirrors what Comm_plan's packing loop does: gather F
   fixed-size strips scattered through a large source array into one
   contiguous wire buffer, versus one contiguous blit of the same byte
   count. The difference, divided by the F-1 extra fragments, is the
   per-fragment overhead — strip-loop setup plus the cache-unfriendly
   source walk. Best-of-N repetitions reject scheduler noise; the result
   is clamped to a sane window so a preempted CI host can never poison
   the model with an absurd constant. *)

let clamp lo hi x = Float.max lo (Float.min hi x)

(* One strip of [strip] floats copied [fragments] times, strided vs
   contiguous; returns measured seconds-per-extra-fragment. *)
let measure_once ~fragments ~strip =
  let stride = strip * 7 in
  let src = Array.make (fragments * stride) 1.0 in
  let dst = Array.make (fragments * strip) 0.0 in
  let t0 = Unix.gettimeofday () in
  for f = 0 to fragments - 1 do
    Array.blit src (f * stride) dst (f * strip) strip
  done;
  let t1 = Unix.gettimeofday () in
  Array.blit src 0 dst 0 (fragments * strip);
  let t2 = Unix.gettimeofday () in
  let strided = t1 -. t0 and contiguous = t2 -. t1 in
  Float.max 0.0 (strided -. contiguous) /. float_of_int (fragments - 1)

let floor_s = 1e-9

and ceil_s = 1e-5

let measure_pack_overhead () =
  (* 256 strips of 64 doubles: big enough that the strip loop dominates
     timer resolution, small enough to stay cache-resident and quick. *)
  let fragments = 256 and strip = 64 in
  ignore (measure_once ~fragments ~strip) (* warm up the allocator/cache *);
  let best = ref infinity in
  for _ = 1 to 5 do
    let m = measure_once ~fragments ~strip in
    if m > 0.0 && m < !best then best := m
  done;
  let measured = if Float.is_finite !best then !best else floor_s in
  clamp floor_s ceil_s measured

(* Calibration is process-wide and deterministic after the first call:
   every later caller sees the same constant, so repeated searches in one
   process rank candidates identically. *)
let cached : float option ref = ref None

let m = Mutex.create ()

let pack_overhead () =
  Mutex.lock m;
  let v =
    match !cached with
    | Some v -> v
    | None ->
        let v =
          match Distal_support.Env.pack_overhead () with
          | Some v -> clamp floor_s ceil_s v
          | None -> measure_pack_overhead ()
        in
        cached := Some v;
        v
  in
  Mutex.unlock m;
  v

(* {2 Leaf kernel rates}

   The cost model prices substituted leaves at the rate the registry's
   tiled kernels actually achieve on this host (Cost_model.leaf_rate),
   not the machine's abstract peak. One mid-sized problem per kernel —
   big enough that the timer resolution vanishes, small enough to stay
   quick and mostly cache-resident — timed best-of-3 after a warmup run.
   Rates are clamped to a sane window so a preempted CI host cannot
   poison the model, and cached process-wide like pack_overhead so every
   search prices candidates identically. *)

module Kreg = Distal_tensor.Kernel_registry
module Dense = Distal_tensor.Dense

let rate_floor = 1e7

and rate_ceil = 1e13

(* Operand shapes (output first) and canonical iteration extents of the
   calibration problem for each kernel. *)
let kernel_problem = function
  | "gemm" ->
      ([ [| 128; 128 |]; [| 128; 128 |]; [| 128; 128 |] ], [| 128; 128; 128 |])
  | "gemv" -> ([ [| 768 |]; [| 768; 768 |]; [| 768 |] ], [| 768; 768 |])
  | "ttv" -> ([ [| 64; 64 |]; [| 64; 64; 256 |]; [| 256 |] ], [| 64; 64; 256 |])
  | "ttm" ->
      ([ [| 32; 48; 48 |]; [| 32; 48; 48 |]; [| 48; 48 |] ], [| 32; 48; 48; 48 |])
  | "mttkrp" ->
      ( [ [| 48; 32 |]; [| 48; 48; 48 |]; [| 48; 32 |]; [| 48; 32 |] ],
        [| 48; 32; 48; 48 |] )
  | "innerprod" ->
      ([ [||]; [| 64; 64; 64 |]; [| 64; 64; 64 |] ], [| 64; 64; 64 |])
  | k -> invalid_arg ("Calibrate.kernel_problem: unknown kernel " ^ k)

let measure_kernel_rate kernel =
  let shapes, dims = kernel_problem kernel in
  let flops = Kreg.flops ~kernel ~dims in
  let ops =
    List.mapi
      (fun i shape ->
        let t = Dense.create shape in
        if i > 0 then
          for p = 0 to Dense.size t - 1 do
            Dense.set_lin t p (1.0 +. (0.001 *. float_of_int (p land 7)))
          done;
        t)
      shapes
  in
  let time_once () =
    let t0 = Unix.gettimeofday () in
    Kreg.run_named Kreg.Tiled ~kernel ops;
    Unix.gettimeofday () -. t0
  in
  ignore (time_once ());
  let best = ref infinity in
  for _ = 1 to 3 do
    let t = time_once () in
    if t > 0.0 && t < !best then best := t
  done;
  let rate =
    if Float.is_finite !best && !best > 0.0 then flops /. !best else rate_floor
  in
  clamp rate_floor rate_ceil rate

let rates : (string, float) Hashtbl.t = Hashtbl.create 8

let kernel_rate name =
  Mutex.lock m;
  let v =
    match Hashtbl.find_opt rates name with
    | Some v -> v
    | None ->
        let v =
          match Distal_support.Env.kernel_rate () with
          | Some r -> clamp rate_floor rate_ceil r
          | None -> measure_kernel_rate name
        in
        Hashtbl.replace rates name v;
        v
  in
  Mutex.unlock m;
  v

let kernel_rates () = List.map (fun n -> (n, kernel_rate n)) Kreg.kernel_names

let calibrated cost =
  {
    cost with
    Cost_model.pack_overhead = pack_overhead ();
    kernel_rates = kernel_rates ();
  }
