(* Microbenchmark calibration of Cost_model.pack_overhead.

   The cost model prices a coalesced strided transfer as one message plus
   a per-fragment packing charge (Cost_model.pack_time). The presets
   guess that charge; here we measure it on the host the search actually
   runs on, so Auto trades strided packing against redistribution on
   measured numbers rather than folklore.

   The measurement mirrors what Comm_plan's packing loop does: gather F
   fixed-size strips scattered through a large source array into one
   contiguous wire buffer, versus one contiguous blit of the same byte
   count. The difference, divided by the F-1 extra fragments, is the
   per-fragment overhead — strip-loop setup plus the cache-unfriendly
   source walk. Best-of-N repetitions reject scheduler noise; the result
   is clamped to a sane window so a preempted CI host can never poison
   the model with an absurd constant. *)

let clamp lo hi x = Float.max lo (Float.min hi x)

(* One strip of [strip] floats copied [fragments] times, strided vs
   contiguous; returns measured seconds-per-extra-fragment. *)
let measure_once ~fragments ~strip =
  let stride = strip * 7 in
  let src = Array.make (fragments * stride) 1.0 in
  let dst = Array.make (fragments * strip) 0.0 in
  let t0 = Unix.gettimeofday () in
  for f = 0 to fragments - 1 do
    Array.blit src (f * stride) dst (f * strip) strip
  done;
  let t1 = Unix.gettimeofday () in
  Array.blit src 0 dst 0 (fragments * strip);
  let t2 = Unix.gettimeofday () in
  let strided = t1 -. t0 and contiguous = t2 -. t1 in
  Float.max 0.0 (strided -. contiguous) /. float_of_int (fragments - 1)

let floor_s = 1e-9

and ceil_s = 1e-5

let measure_pack_overhead () =
  (* 256 strips of 64 doubles: big enough that the strip loop dominates
     timer resolution, small enough to stay cache-resident and quick. *)
  let fragments = 256 and strip = 64 in
  ignore (measure_once ~fragments ~strip) (* warm up the allocator/cache *);
  let best = ref infinity in
  for _ = 1 to 5 do
    let m = measure_once ~fragments ~strip in
    if m > 0.0 && m < !best then best := m
  done;
  let measured = if Float.is_finite !best then !best else floor_s in
  clamp floor_s ceil_s measured

(* Calibration is process-wide and deterministic after the first call:
   every later caller sees the same constant, so repeated searches in one
   process rank candidates identically. *)
let cached : float option ref = ref None

let m = Mutex.create ()

let pack_overhead () =
  Mutex.lock m;
  let v =
    match !cached with
    | Some v -> v
    | None ->
        let v =
          match Distal_support.Env.pack_overhead () with
          | Some v -> clamp floor_s ceil_s v
          | None -> measure_pack_overhead ()
        in
        cached := Some v;
        v
  in
  Mutex.unlock m;
  v

let calibrated cost = { cost with Cost_model.pack_overhead = pack_overhead () }
