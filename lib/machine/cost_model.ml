type link = Intra | Inter

type duplex = Full | Half

type t = {
  name : string;
  alpha_intra : float;
  alpha_inter : float;
  beta_intra : float;
  beta_inter : float;
  compute_rate : float;
  mem_bw : float;
  overlap : float;
  task_overhead : float;
  rack_nodes : int;
  rack_uplink : float;
  duplex : duplex;
  pack_overhead : float;
  kernel_rates : (string * float) list;
}

(* Every field that influences a predicted time, in declaration order, so
   two models that could rank candidates differently never share a digest.
   Floats are rendered with %h (hex, exact) — no rounding collisions. *)
let digest t =
  let b = Buffer.create 128 in
  let str s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  let flt f = str (Printf.sprintf "%h" f) in
  str t.name;
  flt t.alpha_intra;
  flt t.alpha_inter;
  flt t.beta_intra;
  flt t.beta_inter;
  flt t.compute_rate;
  flt t.mem_bw;
  flt t.overlap;
  flt t.task_overhead;
  str (string_of_int t.rack_nodes);
  flt t.rack_uplink;
  str (match t.duplex with Full -> "full" | Half -> "half");
  flt t.pack_overhead;
  List.iter
    (fun (k, r) ->
      str k;
      flt r)
    t.kernel_rates;
  Digest.to_hex (Digest.string (Buffer.contents b))

let combine_sr t ~send ~recv =
  match t.duplex with Full -> max send recv | Half -> send +. recv

let fabric_time t ~cross_rack_bytes ~racks =
  if racks <= 1 then 0.0 else cross_rack_bytes /. (t.rack_uplink *. float_of_int racks)

let alpha t = function Intra -> t.alpha_intra | Inter -> t.alpha_inter
let beta t = function Intra -> t.beta_intra | Inter -> t.beta_inter
let copy_time t link ~bytes = alpha t link +. (bytes /. beta t link)

(* A coalesced strided run travels as one message: one alpha, the summed
   bandwidth term, plus a small per-fragment cost for packing the strips
   into (and out of) a contiguous wire buffer. A single-fragment transfer
   pays nothing extra, so blocked layouts are priced exactly as before. *)
let pack_time t ~fragments =
  if fragments <= 1 then 0.0 else float_of_int (fragments - 1) *. t.pack_overhead

let strided_copy_time t link ~bytes ~fragments =
  copy_time t link ~bytes +. pack_time t ~fragments

let collective_factor k =
  if k <= 1 then 0.0 else ceil (log (float_of_int k) /. log 2.0)

(* Large-message collectives are bandwidth-optimal (scatter/allgather style,
   van de Geijn): the latency term grows with the tree depth but the
   bandwidth term is ~2x a point-to-point transfer regardless of fan-out.
   This matters for reproducing the paper's GPU results: Cannon's systolic
   shifts (pure point-to-point) beat SUMMA's broadcasts by a constant
   factor, not by log p (§7.1.2). *)

(* In a scatter/allgather broadcast every participant forwards data, so
   receivers carry a send occupancy of ~bytes as well — harmless on
   full-duplex links, costly on the half-duplex framebuffer path (this is
   why systolic schedules beat broadcast schedules at scale, §7.1.2). *)
let broadcast_participant_send t link ~bytes ~receivers =
  if receivers <= 1 then 0.0
  else
    let k = float_of_int receivers in
    (k -. 1.0) /. k *. bytes /. beta t link

let broadcast_time t link ~bytes ~receivers =
  if receivers <= 0 then 0.0
  else
    let k = float_of_int receivers in
    (collective_factor (receivers + 1) *. alpha t link)
    +. (2.0 *. k /. (k +. 1.0) *. bytes /. beta t link)

let reduce_time t link ~bytes ~contributors =
  if contributors <= 1 then 0.0
  else
    let k = float_of_int contributors in
    (collective_factor contributors *. alpha t link)
    +. (2.0 *. (k -. 1.0) /. k *. bytes /. beta t link)
    +. (bytes /. t.mem_bw)

(* {2 Fault tolerance}

   Checkpoints are replica copies: a processor streams its step snapshot
   to a buddy over the given link as one message, and a rollback streams
   it back, so both are plain alpha-beta transfers. Failure detection is
   a missed-heartbeat timeout — a couple of orders of magnitude above the
   network latency, far below a step. A dropped message costs the sender
   a retransmission timeout plus the full resend of the (possibly
   strided) transfer. *)

let checkpoint_time t link ~bytes = copy_time t link ~bytes
let restore_time t link ~bytes = copy_time t link ~bytes
let detect_time t = 100.0 *. t.alpha_inter

let retransmit_time t link ~bytes ~fragments =
  (10.0 *. alpha t link) +. strided_copy_time t link ~bytes ~fragments

let compute_time t ~flops ~bytes_touched =
  max (flops /. t.compute_rate) (bytes_touched /. t.mem_bw)

(* A substituted leaf runs a registry microkernel, not the abstract
   processor's peak-rate loop: when calibration has measured that
   kernel's achieved flop rate, price the leaf with it. The memory-bound
   arm keeps the machine's bandwidth — the measured rate already folds
   the kernel's own cache behaviour into its compute arm. *)
let leaf_rate t ~kernel =
  match List.assoc_opt kernel t.kernel_rates with
  | Some r -> r
  | None -> t.compute_rate

let leaf_compute_time t ~kernel ~flops ~bytes_touched =
  max (flops /. leaf_rate t ~kernel) (bytes_touched /. t.mem_bw)

let step_time t ~compute ~comm =
  compute +. max 0.0 (comm -. (t.overlap *. min compute comm))

(* Calibration anchors (see DESIGN.md):
   - Power9 node dgemm: ~20 GF/s per core; 36 work cores -> 720 GF/s,
     40 cores -> 800 GF/s.
   - V100 dgemm: 7.0 TF/s.
   - IB EDR: 25 GB/s peak; 23 GB/s effective from CPU memory, 18 GB/s from
     GPU framebuffer through Legion's DMA system (§7.1.2).
   - NVLink 2.0: 60 GB/s effective per GPU pair.
   - Node memory bandwidth ~135 GB/s (shared); V100 HBM2 ~800 GB/s. *)

let cpu_base =
  {
    name = "cpu";
    alpha_intra = 1e-6;
    alpha_inter = 5e-6;
    beta_intra = 30e9;
    beta_inter = 23e9;
    compute_rate = 720e9;
    mem_bw = 135e9;
    overlap = 1.0;
    task_overhead = 50e-6;
    rack_nodes = 16;
    rack_uplink = 16.0 *. 23e9 /. 2.0;
    duplex = Full;
    (* memcpy of a cache-line-sized strip plus loop overhead. *)
    pack_overhead = 100e-9;
    kernel_rates = [];
  }

let cpu_distal = { cpu_base with name = "cpu-distal" }
let cpu_full_node = { cpu_base with name = "cpu-full"; compute_rate = 800e9; task_overhead = 0.0 }

(* ScaLAPACK and CTF run 4 MPI ranks per node (§7.1): the rank
   decomposition costs ~20% of single-node BLAS throughput in panel
   copies and smaller local GEMMs, on top of their weaker
   communication/computation overlap. Node-level models below; the
   [cpu_rank_*] variants describe one of the four ranks (quarter of the
   node's compute, memory bandwidth and NIC). *)
let cpu_no_overlap =
  { cpu_base with name = "cpu-no-overlap"; compute_rate = 640e9; overlap = 0.0; task_overhead = 0.0 }

let cpu_ctf =
  { cpu_base with name = "cpu-ctf"; compute_rate = 640e9; overlap = 0.5; task_overhead = 100e-6 }

let cpu_rank_no_overlap =
  {
    cpu_no_overlap with
    name = "cpu-rank-no-overlap";
    compute_rate = 160e9;
    mem_bw = 34e9;
    beta_inter = 23e9 /. 4.0;
  }

let cpu_rank_ctf =
  {
    cpu_ctf with
    name = "cpu-rank-ctf";
    (* CTF's tensor-blocking layer costs a little more of the local BLAS
       throughput than ScaLAPACK's panels. *)
    compute_rate = 150e9;
    mem_bw = 34e9;
    beta_inter = 23e9 /. 4.0;
  }

let gpu_distal =
  {
    name = "gpu-distal";
    alpha_intra = 2e-6;
    alpha_inter = 5e-6;
    beta_intra = 60e9;
    (* Four GPUs share the node's NIC; per-GPU share of the 18 GB/s the
       Legion DMA system reaches from framebuffer memory (§7.1.2). *)
    beta_inter = 18e9 /. 4.0;
    compute_rate = 7e12;
    mem_bw = 800e9;
    overlap = 1.0;
    task_overhead = 50e-6;
    rack_nodes = 16;
    (* 2:1 tapered uplinks; Legion's DMA path reaches 18 of 25 GB/s per
       node out of framebuffer memory, and its send and receive engines
       contend for the same PCIe/NIC path. *)
    rack_uplink = 16.0 *. 18e9 /. 2.0;
    duplex = Half;
    (* Strided gathers out of framebuffer memory go through the DMA
       engines; per-strip setup is costlier than a CPU memcpy loop. *)
    pack_overhead = 200e-9;
    kernel_rates = [];
  }

let gpu_cosma =
  {
    gpu_distal with
    name = "gpu-cosma";
    beta_inter = 23e9 /. 4.0;
    (* Out-of-core GEMM staged through CPU memory: host-device transfers
       halve effective single-node throughput, but the full 23 GB/s NIC
       rate is available since data is CPU-resident (§7.1.2). *)
    compute_rate = 3.5e12;
    task_overhead = 0.0;
    rack_uplink = 16.0 *. 23e9 /. 2.0;
    duplex = Full;
  }
