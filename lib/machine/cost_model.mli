(** Performance model for the simulated machine.

    The runtime charges communication with a classic alpha-beta model per
    link class, binomial trees for collectives, and charges leaf kernels at
    the larger of their compute time and memory-traffic time (so
    bandwidth-bound kernels such as TTV behave correctly, §7.2).

    Presets are anchored to the Lassen configuration in §7: Power9 nodes
    (40 cores, 4 reserved for the Legion runtime by DISTAL), V100 GPUs with
    NVLink 2.0 inside a node and Infiniband EDR between nodes. Absolute
    rates are published peaks scaled by typical efficiencies; the
    evaluation's claims are about *relative* behaviour, which this model is
    built to reproduce. *)

type link = Intra  (** same node: NVLink / shared memory *) | Inter  (** network *)

type duplex =
  | Full  (** send and receive overlap (CPU-resident data) *)
  | Half
      (** send and receive serialize — Legion's DMA engines moving
          framebuffer-resident data share the PCIe/NIC path (§7.1.2) *)

type t = {
  name : string;
  alpha_intra : float;  (** message latency, seconds *)
  alpha_inter : float;
  beta_intra : float;  (** bandwidth, bytes/second *)
  beta_inter : float;
  compute_rate : float;  (** flops/second per abstract processor *)
  mem_bw : float;  (** local memory bandwidth, bytes/second *)
  overlap : float;  (** fraction of communication hidden under compute, 0..1 *)
  task_overhead : float;  (** per-task runtime overhead, seconds *)
  rack_nodes : int;  (** nodes per rack (footnote 1: the network itself is
      hierarchical — communication within a rack is faster than between
      racks) *)
  rack_uplink : float;  (** bytes/second of a rack's tapered uplink; traffic
      between racks shares it *)
  duplex : duplex;
  pack_overhead : float;
      (** seconds per extra fragment when a coalesced strided transfer is
          packed into one wire message (see {!strided_copy_time}) *)
  kernel_rates : (string * float) list;
      (** measured achieved flop/s per leaf kernel name (see
          {!leaf_rate}); empty in every preset — filled in by
          [Calibrate.calibrated] *)
}

val digest : t -> string
(** Hex digest over every field that influences a predicted time —
    injective up to hash collisions, so it is safe as a component of
    memoization keys that must distinguish cost models (e.g. the
    auto-scheduler's probe cache across calibration changes). *)

val combine_sr : t -> send:float -> recv:float -> float
(** A processor's communication occupancy in one step given its send and
    receive occupancies, per the model's duplex mode. *)

val fabric_time : t -> cross_rack_bytes:float -> racks:int -> float
(** Occupancy of the rack uplinks when [cross_rack_bytes] of uniformly
    spread traffic crosses racks in one step. *)

val copy_time : t -> link -> bytes:float -> float
(** Point-to-point: alpha + bytes / beta. *)

val pack_time : t -> fragments:int -> float
(** Packing cost of gathering [fragments] strips into one wire buffer:
    [(fragments - 1) * pack_overhead]; zero for a contiguous transfer. *)

val strided_copy_time : t -> link -> bytes:float -> fragments:int -> float
(** A coalesced strided run priced as a single message — one latency term,
    the summed bandwidth term, plus {!pack_time}. With [fragments = 1] this
    is exactly {!copy_time}. *)

val collective_factor : int -> float
(** [collective_factor k] is the binomial-tree depth for [k] participants,
    i.e. [ceil (log2 k)], at least 1 for [k >= 2]; 0 for [k <= 1]. *)

val broadcast_participant_send : t -> link -> bytes:float -> receivers:int -> float
(** Send occupancy of a non-root participant in a scatter/allgather
    broadcast (participants forward data to each other). *)

val broadcast_time : t -> link -> bytes:float -> receivers:int -> float
(** One owner sending the same bytes to [receivers] other processors.
    Bandwidth-optimal large-message broadcast: tree-depth latency plus
    twice the point-to-point bandwidth term. *)

val reduce_time : t -> link -> bytes:float -> contributors:int -> float
(** Tree-reduction of same-shaped buffers from [contributors] processors
    (same large-message model, plus the local accumulation traffic). *)

val compute_time : t -> flops:float -> bytes_touched:float -> float
(** max(flops / compute_rate, bytes_touched / mem_bw). *)

val leaf_rate : t -> kernel:string -> float
(** The flop rate a substituted leaf running [kernel] achieves: the
    measured entry of [kernel_rates] when present, else [compute_rate]. *)

val leaf_compute_time : t -> kernel:string -> flops:float -> bytes_touched:float -> float
(** {!compute_time} with the compute arm priced at {!leaf_rate} — how the
    executor charges substituted leaves. *)

(** {2 Fault tolerance}

    Pricing for the executor's checkpoint/replay recovery (see
    [lib/fault]): checkpoints stream a processor's step snapshot to a
    buddy replica as one message and rollbacks stream it back, so both
    are alpha-beta copies over the buddy link. *)

val checkpoint_time : t -> link -> bytes:float -> float
(** Writing one processor's step snapshot to its replica. *)

val restore_time : t -> link -> bytes:float -> float
(** Reading a snapshot back from the replica during rollback. *)

val detect_time : t -> float
(** Noticing a dead processor: a missed-heartbeat timeout, modelled as
    100x the inter-node message latency. *)

val retransmit_time : t -> link -> bytes:float -> fragments:int -> float
(** Recovering a dropped message: the sender's retransmission timeout
    (10x the link latency) plus a full {!strided_copy_time} resend. *)

val step_time : t -> compute:float -> comm:float -> float
(** Combine one bulk-synchronous step's compute and communication time with
    the model's overlap factor: compute + max(0, comm - overlap * compute). *)

(** {2 Presets} *)

val cpu_distal : t
(** DISTAL on Lassen CPUs: one abstract processor per node, 36 of 40 cores
    doing work (4 go to the runtime, §7.1.1), Legion overlaps
    communication with computation. *)

val cpu_full_node : t
(** All 40 cores computing — what COSMA uses (§7.1.1's "restricted CPUs"
    line is COSMA on 36 cores, i.e. {!cpu_distal}'s rate). *)

val cpu_no_overlap : t
(** ScaLAPACK-style: no communication/computation overlap (node level). *)

val cpu_ctf : t
(** CTF: partial overlap and per-rank orchestration overhead (node
    level). *)

val cpu_rank_no_overlap : t
(** One of ScaLAPACK's four MPI ranks on a node: a quarter of the node's
    compute, memory bandwidth and NIC. *)

val cpu_rank_ctf : t
(** One of CTF's four ranks per node. *)

val gpu_distal : t
(** One abstract processor per V100. Data lives in framebuffer memory;
    Legion's DMA path reaches 18 of the 25 GB/s node bandwidth (§7.1.2). *)

val gpu_cosma : t
(** COSMA's GPU configuration: data staged in CPU memory (full 23 GB/s
    effective network bandwidth) but an out-of-core GEMM path that halves
    single-node efficiency (§7.1.2: DISTAL is 2x COSMA on one node). *)
