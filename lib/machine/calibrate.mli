(** Host calibration of {!Cost_model} constants.

    Two families of constants are measured on the host the search
    actually runs on: [pack_overhead] — the per-fragment cost of
    gathering a strided transfer into one contiguous wire buffer, which
    the auto-scheduler needs to trade strided packing against
    redistribution honestly — and [kernel_rates], the flop/s each leaf
    kernel of {!Distal_tensor.Kernel_registry} achieves, which prices
    substituted leaves ({!Cost_model.leaf_compute_time}). See DESIGN.md,
    "Search policy" and "Leaf kernel registry".

    Measurements run once per process and are cached, so every search in
    a process prices candidates with the same constants and stays
    deterministic. [DISTAL_PACK_OVERHEAD] and [DISTAL_KERNEL_RATE]
    override the microbenchmarks entirely (useful for reproducible CI and
    for modelling a different host). Results are clamped to sane windows
    so a noisy host cannot poison the model. *)

val pack_overhead : unit -> float
(** The calibrated per-fragment packing cost in seconds: the
    [DISTAL_PACK_OVERHEAD] override if set, else a strided-vs-contiguous
    copy microbenchmark (best of 5), cached after the first call. *)

val calibrated : Cost_model.t -> Cost_model.t
(** [calibrated cost] is [cost] with its [pack_overhead] and
    [kernel_rates] replaced by the measured values. *)

val measure_pack_overhead : unit -> float
(** Run the microbenchmark unconditionally (no cache, no env override) —
    exposed for the calibration report in [bench]. *)

val kernel_rate : string -> float
(** The calibrated achieved flop/s of a registry leaf kernel: the
    [DISTAL_KERNEL_RATE] override if set, else a timed run of the tiled
    implementation on a fixed mid-sized problem (best of 3 after a
    warmup), clamped to [1e7 .. 1e13] flop/s and cached after the first
    call. @raise Invalid_argument on unknown kernels. *)

val kernel_rates : unit -> (string * float) list
(** {!kernel_rate} for every registry kernel, in registry order. *)

val measure_kernel_rate : string -> float
(** Run the kernel-rate microbenchmark unconditionally (no cache, no env
    override) — exposed for the calibration report in [bench]. *)
