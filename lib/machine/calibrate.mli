(** Host calibration of {!Cost_model} constants.

    The only measured constant today is [pack_overhead] — the
    per-fragment cost of gathering a strided transfer into one contiguous
    wire buffer — which the auto-scheduler needs to trade strided packing
    against redistribution honestly (see DESIGN.md, "Search policy").

    The measurement runs once per process and is cached, so every search
    in a process prices candidates with the same constant and stays
    deterministic. [DISTAL_PACK_OVERHEAD] overrides the microbenchmark
    entirely (useful for reproducible CI and for modelling a different
    host). Results are clamped to [1e-9 .. 1e-5] seconds per fragment so
    a noisy host cannot poison the model. *)

val pack_overhead : unit -> float
(** The calibrated per-fragment packing cost in seconds: the
    [DISTAL_PACK_OVERHEAD] override if set, else a strided-vs-contiguous
    copy microbenchmark (best of 5), cached after the first call. *)

val calibrated : Cost_model.t -> Cost_model.t
(** [calibrated cost] is [cost] with its [pack_overhead] replaced by the
    measured value. *)

val measure_pack_overhead : unit -> float
(** Run the microbenchmark unconditionally (no cache, no env override) —
    exposed for the calibration report in [bench]. *)
