module Rect = Distal_tensor.Rect

type t = {
  merge : Rect.t list -> Rect.t list;
  raw : (int * int, Rect.t list ref) Hashtbl.t;  (* (step, proc) -> written rects *)
  memo : (int * int, float) Hashtbl.t;  (* merged bytes per (step, proc) *)
}

let create ~merge = { merge; raw = Hashtbl.create 64; memo = Hashtbl.create 64 }

let record t ~step ~proc r =
  (match Hashtbl.find_opt t.raw (step, proc) with
  | Some l -> l := r :: !l
  | None -> Hashtbl.add t.raw (step, proc) (ref [ r ]));
  Hashtbl.remove t.memo (step, proc)

let bytes t ~step ~proc =
  match Hashtbl.find_opt t.memo (step, proc) with
  | Some b -> b
  | None ->
      let b =
        match Hashtbl.find_opt t.raw (step, proc) with
        | None -> 0.0
        | Some l ->
            List.fold_left
              (fun acc r -> acc +. (8.0 *. float_of_int (Rect.volume r)))
              0.0 (t.merge !l)
      in
      Hashtbl.add t.memo (step, proc) b;
      b

let range_bytes t ~from_step ~to_step ~proc =
  let acc = ref 0.0 in
  for s = from_step to to_step do
    acc := !acc +. bytes t ~step:s ~proc
  done;
  !acc

let total_bytes t =
  Hashtbl.fold (fun (step, proc) _ acc -> acc +. bytes t ~step ~proc) t.raw 0.0

let write_steps t =
  Hashtbl.fold (fun (step, _) _ acc -> step :: acc) t.raw []
  |> List.sort_uniq compare
