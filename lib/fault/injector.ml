type t = {
  plan : Fault.t;
  nsteps : int;
  strikes : (int * int) list;  (* (proc, at_step), at_step < nsteps, sorted *)
  dead_spans : (int * int) list array;  (* per proc: [from, until) half-open *)
}

let plan t = t.plan
let checkpointing t = t.plan.Fault.checkpoint
let interval t = t.plan.Fault.interval
let has_kills t = t.strikes <> []
let kills t = t.strikes

let dead t ~step ~proc =
  List.exists (fun (k, r) -> step >= k && step < r) t.dead_spans.(proc)

let ever_dead t ~proc =
  List.exists (fun (k, _) -> k < t.nsteps) t.dead_spans.(proc)

let msg_action t ~step ~tensor ~src ~dst =
  let matches (p : Fault.msg_pred) =
    (match p.Fault.tensor with Some x -> x = tensor | None -> true)
    && (match p.Fault.src with Some x -> x = src | None -> true)
    && (match p.Fault.dst with Some x -> x = dst | None -> true)
    && match p.Fault.at_step with Some x -> x = step | None -> true
  in
  List.find_map
    (fun (p, a) -> if matches p then Some a else None)
    t.plan.Fault.messages

let last_boundary t ~step =
  if t.plan.Fault.checkpoint then step / t.plan.Fault.interval * t.plan.Fault.interval
  else 0

let create plan ~nprocs ~nsteps =
  let ( let* ) = Result.bind in
  let* () = Fault.validate plan ~nprocs in
  let dead_spans = Array.make nprocs [] in
  List.iter
    (fun (k : Fault.kill) ->
      let until = match k.Fault.revive_at with Some r -> r | None -> max_int in
      dead_spans.(k.Fault.proc) <- (k.Fault.at_step, until) :: dead_spans.(k.Fault.proc))
    plan.Fault.kills;
  let strikes =
    List.filter_map
      (fun (k : Fault.kill) ->
        if k.Fault.at_step < nsteps then Some (k.Fault.proc, k.Fault.at_step) else None)
      plan.Fault.kills
    |> List.sort_uniq (fun (p1, s1) (p2, s2) ->
           match compare s1 s2 with 0 -> compare p1 p2 | c -> c)
  in
  let t = { plan; nsteps; strikes; dead_spans } in
  (* The dead set only grows at kill steps, so its maximum is attained at
     one of them: checking each strike step suffices to guarantee a live
     failover target at every step. *)
  let* () =
    List.fold_left
      (fun acc (_, s) ->
        let* () = acc in
        let ndead = ref 0 in
        for p = 0 to nprocs - 1 do
          if dead t ~step:s ~proc:p then incr ndead
        done;
        if !ndead >= nprocs then
          Error
            (Printf.sprintf
               "fault plan kills every processor at step %d: nowhere to fail over" s)
        else Ok ())
      (Ok ()) strikes
  in
  Ok t
