(** Checkpoint size accounting for the recovering executor.

    Recovery only needs the state a replay would otherwise lack: the
    region rectangles each processor {e writes} during a step (outputs
    and reduction partials — inputs are immutable and survive with their
    owners). The executor records those footprints here as it merges task
    effects; rectangles are coalesced with the communication planner's
    rectangle merger before being priced, so contiguous writes checkpoint
    as one block and the checkpoint traffic stays proportional to live
    state, not to fragment count.

    This module only accounts {e bytes}; what the bytes cost is the cost
    model's business ({!Distal_machine.Cost_model.checkpoint_time}). *)

type t

val create : merge:(Distal_tensor.Rect.t list -> Distal_tensor.Rect.t list) -> t
(** [merge] coalesces recorded rectangles before volumes are taken
    (the executor passes {!Distal_runtime.Comm_plan.merge_rects}). *)

val record : t -> step:int -> proc:int -> Distal_tensor.Rect.t -> unit
(** Add one written rectangle to the processor's snapshot for the step. *)

val bytes : t -> step:int -> proc:int -> float
(** Merged bytes of one processor's snapshot for one step (8 bytes per
    element); 0 when the processor wrote nothing that step. *)

val range_bytes : t -> from_step:int -> to_step:int -> proc:int -> float
(** Sum of {!bytes} over [from_step .. to_step] inclusive: what a rollback
    to [from_step] must restore for this processor before replaying. *)

val total_bytes : t -> float
(** All checkpoint traffic of the run, across every step and processor. *)

val write_steps : t -> int list
(** The steps with at least one non-empty snapshot, ascending. *)
