(** The executor's runtime view of a fault plan.

    An injector resolves a {!Fault.t} against a concrete run — [nprocs]
    physical processors, [nsteps] bulk-synchronous steps — into the
    queries the executor asks while simulating: is this processor dead at
    this step, which kills actually strike, what happens to this message,
    and where is the last checkpoint boundary before a step. All answers
    are pure functions of the plan, so the injected execution is exactly
    as deterministic as a fault-free one. *)

type t

val create : Fault.t -> nprocs:int -> nsteps:int -> (t, string) result
(** Validates the plan against the run ({!Fault.validate} plus: the plan
    must leave at least one live processor at every step, or there is
    nowhere to fail over to). Kills and message faults aimed at steps
    [>= nsteps] are allowed and simply never strike. *)

val plan : t -> Fault.t
val checkpointing : t -> bool
val interval : t -> int

val has_kills : t -> bool
(** Whether any kill strikes within the run ([at_step < nsteps]). *)

val kills : t -> (int * int) list
(** The kills that strike, as [(proc, at_step)] pairs sorted by step then
    processor. *)

val dead : t -> step:int -> proc:int -> bool
(** Whether [proc] is dead during [step]: some kill struck at or before
    the step and any revival is still in the future. *)

val ever_dead : t -> proc:int -> bool
(** Whether [proc] dies at any step of the run. *)

val msg_action : t -> step:int -> tensor:string -> src:int -> dst:int ->
  Fault.msg_action option
(** The first message fault of the plan matching this transfer, if any. *)

val last_boundary : t -> step:int -> int
(** The most recent checkpoint boundary at or before [step]: the replay
    start after a kill at that step. Without checkpointing this is 0 —
    recovery replays the whole run. *)
