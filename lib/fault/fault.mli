(** Deterministic fault plans for the runtime simulator.

    A fault plan is data: which processors die at which bulk-synchronous
    step (and optionally when they rejoin), which messages are dropped or
    delayed, and whether the executor checkpoints for recovery. The
    executor ({!Distal_runtime.Exec.execute}'s [?faults] argument)
    interprets the plan deterministically — the same plan on the same
    schedule always produces the same simulated timings and the same
    (bit-identical) results, so recovery schedules can be compared like
    any other schedule.

    Processors are named by their {e physical linear} index on the
    machine grid ([0 .. num_procs - 1]); with over-decomposition
    ([virtual_grid]) a kill takes out every virtual point folded onto
    that physical processor. Steps are the executor's bulk-synchronous
    step numbers (one per sequential-loop iteration), starting at 0. *)

(** What happens to a matched message. *)
type msg_action =
  | Drop  (** lost once: priced as a detection timeout plus a retransmit *)
  | Delay of float  (** delivered late by the given number of seconds *)

(** Which messages a {!msg_action} applies to. [None] fields match
    anything; messages are the coalesced transfer groups of the
    communication plan, identified by tensor name, physical source and
    destination processor, and step. *)
type msg_pred = {
  tensor : string option;
  src : int option;
  dst : int option;
  at_step : int option;
}

type kill = {
  proc : int;  (** physical linear processor index *)
  at_step : int;  (** dies at the start of this step *)
  revive_at : int option;  (** rejoins at the start of this step, if any *)
}

type t = {
  kills : kill list;
  messages : (msg_pred * msg_action) list;
  checkpoint : bool;
      (** snapshot live region state at step boundaries so recovery can
          replay from the last boundary instead of from scratch *)
  interval : int;  (** boundary spacing in steps (>= 1, default 1) *)
}

val empty : t
(** No faults, no checkpointing: the executor behaves exactly as if no
    plan was given. *)

val is_empty : t -> bool

val has_events : t -> bool
(** Whether the plan contains any kill or message fault. *)

val plan :
  ?checkpoint:bool ->
  ?interval:int ->
  ?kills:kill list ->
  ?messages:(msg_pred * msg_action) list ->
  unit ->
  t
(** @raise Invalid_argument when [interval < 1]. *)

val kill : ?revive_at:int -> proc:int -> step:int -> unit -> kill

val drop :
  ?tensor:string -> ?src:int -> ?dst:int -> ?step:int -> unit -> msg_pred * msg_action

val delay :
  float -> ?tensor:string -> ?src:int -> ?dst:int -> ?step:int -> unit ->
  msg_pred * msg_action
(** [delay by ...] holds matched messages back by [by] seconds. *)

val random_kill : seed:int -> nprocs:int -> nsteps:int -> t
(** A deterministic seed-driven plan killing one processor at one step
    (uniform over [nprocs] x [nsteps] via {!Distal_support.Rng}), with
    checkpointing on. Equal seeds produce equal plans. *)

val validate : t -> nprocs:int -> (unit, string) result
(** Structural checks: processor indices in range, steps non-negative,
    revival strictly after the kill, delays non-negative and finite.
    (Whether the plan leaves a live processor to fail over to is checked
    by the executor, which also knows the step count.) *)

val to_string : t -> string
(** Canonical plan syntax; [to_string] output always re-{!parse}s to an
    equal plan. *)

val parse : string -> (t, string) result
(** Parse the [--faults] plan syntax: semicolon-separated clauses

    {v
    checkpoint | checkpoint=INTERVAL
    kill(proc=P, step=K [, revive=R])
    drop([tensor=NAME] [, src=P] [, dst=P] [, step=K])
    delay(by=SECONDS [, tensor=NAME] [, src=P] [, dst=P] [, step=K])
    v}

    Whitespace around tokens is ignored; omitted [drop]/[delay] fields
    match every message. *)
