module Rng = Distal_support.Rng

type msg_action = Drop | Delay of float

type msg_pred = {
  tensor : string option;
  src : int option;
  dst : int option;
  at_step : int option;
}

type kill = { proc : int; at_step : int; revive_at : int option }

type t = {
  kills : kill list;
  messages : (msg_pred * msg_action) list;
  checkpoint : bool;
  interval : int;
}

let empty = { kills = []; messages = []; checkpoint = false; interval = 1 }
let has_events t = t.kills <> [] || t.messages <> []
let is_empty t = (not (has_events t)) && not t.checkpoint

let plan ?(checkpoint = false) ?(interval = 1) ?(kills = []) ?(messages = []) () =
  if interval < 1 then invalid_arg "Fault.plan: interval must be >= 1";
  { kills; messages; checkpoint; interval }

let kill ?revive_at ~proc ~step () = { proc; at_step = step; revive_at }

let drop ?tensor ?src ?dst ?step () =
  ({ tensor; src; dst; at_step = step }, Drop)

let delay by ?tensor ?src ?dst ?step () =
  ({ tensor; src; dst; at_step = step }, Delay by)

let random_kill ~seed ~nprocs ~nsteps =
  let rng = Rng.create seed in
  let proc = Rng.int rng (max 1 nprocs) in
  let step = Rng.int rng (max 1 nsteps) in
  plan ~checkpoint:true ~kills:[ kill ~proc ~step () ] ()

let validate t ~nprocs =
  let ( let* ) = Result.bind in
  let errf fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let* () =
    if t.interval >= 1 then Ok ()
    else errf "checkpoint interval must be >= 1, got %d" t.interval
  in
  let* () =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        if k.proc < 0 || k.proc >= nprocs then
          errf "kill: proc %d out of range [0, %d)" k.proc nprocs
        else if k.at_step < 0 then errf "kill: step %d must be >= 0" k.at_step
        else
          match k.revive_at with
          | Some r when r <= k.at_step ->
              errf "kill(proc=%d): revive step %d must be after kill step %d"
                k.proc r k.at_step
          | _ -> Ok ())
      (Ok ()) t.kills
  in
  List.fold_left
    (fun acc (p, a) ->
      let* () = acc in
      let check_proc what = function
        | Some q when q < 0 || q >= nprocs ->
            errf "message fault: %s %d out of range [0, %d)" what q nprocs
        | _ -> Ok ()
      in
      let* () = check_proc "src" p.src in
      let* () = check_proc "dst" p.dst in
      let* () =
        match p.at_step with
        | Some s when s < 0 -> errf "message fault: step %d must be >= 0" s
        | _ -> Ok ()
      in
      match a with
      | Delay d when (not (Float.is_finite d)) || d < 0.0 ->
          errf "delay: %g seconds must be finite and >= 0" d
      | _ -> Ok ())
    (Ok ()) t.messages

(* {2 Plan syntax} *)

let pred_fields p =
  List.filter_map
    (fun x -> x)
    [
      Option.map (Printf.sprintf "tensor=%s") p.tensor;
      Option.map (Printf.sprintf "src=%d") p.src;
      Option.map (Printf.sprintf "dst=%d") p.dst;
      Option.map (Printf.sprintf "step=%d") p.at_step;
    ]

let to_string t =
  let clauses =
    (if t.checkpoint then
       [ (if t.interval = 1 then "checkpoint"
          else Printf.sprintf "checkpoint=%d" t.interval) ]
     else [])
    @ List.map
        (fun k ->
          match k.revive_at with
          | Some r ->
              Printf.sprintf "kill(proc=%d, step=%d, revive=%d)" k.proc k.at_step r
          | None -> Printf.sprintf "kill(proc=%d, step=%d)" k.proc k.at_step)
        t.kills
    @ List.map
        (fun (p, a) ->
          match a with
          | Drop -> Printf.sprintf "drop(%s)" (String.concat ", " (pred_fields p))
          | Delay d ->
              Printf.sprintf "delay(%s)"
                (String.concat ", " (Printf.sprintf "by=%g" d :: pred_fields p)))
        t.messages
  in
  String.concat "; " clauses

let parse s =
  let ( let* ) = Result.bind in
  let errf fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let int_field clause k v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> errf "%s: %s wants an integer, got %S" clause k v
  in
  let float_field clause k v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> errf "%s: %s wants a number, got %S" clause k v
  in
  (* "name(k=v, ...)" -> (name, [(k, v); ...]); "name" / "name=v" pass
     through with zero / one anonymous binding. *)
  let split_clause c =
    match String.index_opt c '(' with
    | None -> (
        match String.index_opt c '=' with
        | None -> Ok (String.trim c, [])
        | Some i ->
            Ok
              ( String.trim (String.sub c 0 i),
                [ ("", String.trim (String.sub c (i + 1) (String.length c - i - 1))) ]
              ))
    | Some i ->
        let name = String.trim (String.sub c 0 i) in
        let rest = String.trim (String.sub c (i + 1) (String.length c - i - 1)) in
        if String.length rest = 0 || rest.[String.length rest - 1] <> ')' then
          errf "%S: missing closing parenthesis" c
        else
          let body = String.sub rest 0 (String.length rest - 1) in
          let args = String.split_on_char ',' body |> List.map String.trim in
          let args = List.filter (fun a -> a <> "") args in
          let* fields =
            List.fold_left
              (fun acc a ->
                let* fields = acc in
                match String.index_opt a '=' with
                | None -> errf "%S: expected key=value, got %S" c a
                | Some j ->
                    let k = String.trim (String.sub a 0 j) in
                    let v = String.trim (String.sub a (j + 1) (String.length a - j - 1)) in
                    Ok ((k, v) :: fields))
              (Ok []) args
          in
          Ok (name, List.rev fields)
  in
  let msg_pred clause ~extra fields =
    List.fold_left
      (fun acc (k, v) ->
        let* p = acc in
        match k with
        | "tensor" -> Ok { p with tensor = Some v }
        | "src" ->
            let* n = int_field clause k v in
            Ok { p with src = Some n }
        | "dst" ->
            let* n = int_field clause k v in
            Ok { p with dst = Some n }
        | "step" ->
            let* n = int_field clause k v in
            Ok { p with at_step = Some n }
        | k when List.mem k extra -> Ok p
        | k -> errf "%s: unknown field %S" clause k)
      (Ok { tensor = None; src = None; dst = None; at_step = None })
      (List.filter (fun (k, _) -> not (List.mem k extra)) fields)
  in
  let field fields k = List.assoc_opt k fields in
  let clauses =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let* parsed =
    List.fold_left
      (fun acc c ->
        let* t = acc in
        let* name, fields = split_clause c in
        match name with
        | "checkpoint" -> (
            match fields with
            | [] -> Ok { t with checkpoint = true }
            | [ ("", v) ] ->
                let* n = int_field "checkpoint" "interval" v in
                if n < 1 then errf "checkpoint: interval must be >= 1, got %d" n
                else Ok { t with checkpoint = true; interval = n }
            | _ -> errf "checkpoint takes at most one interval, got %S" c)
        | "kill" -> (
            match (field fields "proc", field fields "step") with
            | Some p, Some k ->
                let* proc = int_field "kill" "proc" p in
                let* at_step = int_field "kill" "step" k in
                let* revive_at =
                  match field fields "revive" with
                  | None -> Ok None
                  | Some r ->
                      let* r = int_field "kill" "revive" r in
                      Ok (Some r)
                in
                let* () =
                  List.fold_left
                    (fun acc (k, _) ->
                      let* () = acc in
                      if List.mem k [ "proc"; "step"; "revive" ] then Ok ()
                      else errf "kill: unknown field %S" k)
                    (Ok ()) fields
                in
                Ok { t with kills = t.kills @ [ { proc; at_step; revive_at } ] }
            | _ -> errf "kill wants proc= and step=, got %S" c)
        | "drop" ->
            let* p = msg_pred "drop" ~extra:[] fields in
            Ok { t with messages = t.messages @ [ (p, Drop) ] }
        | "delay" -> (
            match field fields "by" with
            | None -> errf "delay wants by=SECONDS, got %S" c
            | Some v ->
                let* d = float_field "delay" "by" v in
                let* p = msg_pred "delay" ~extra:[ "by" ] fields in
                Ok { t with messages = t.messages @ [ (p, Delay d) ] })
        | name -> errf "unknown fault clause %S (in %S)" name c)
      (Ok empty) clauses
  in
  if is_empty parsed && clauses = [] then errf "empty fault plan %S" s else Ok parsed
