module Api = Distal.Api
module Machine = Distal_machine.Machine
module Cost = Distal_machine.Cost_model
module Stats = Distal_runtime.Stats
module H = Distal_algorithms.Higher_order
module Cs = Distal_algorithms.Cosma_scheduler
module Ctf = Distal_baselines.Ctf
module Profile = Distal_obs.Profile

let default_nodes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let cell ~per ~nodes (r : (Stats.t, string) result) =
  match r with
  | Error _ -> Figure.Unavailable
  | Ok stats ->
      if stats.Stats.oom then Figure.Oom
      else Figure.Value (per stats /. float_of_int nodes)

let run_h ?profile ?label ~cost (h : (H.t, string) result) =
  match h with
  | Error e -> Error e
  | Ok h -> (
      (match (profile, label) with
      | Some p, Some l -> Profile.set_next_run_name p l
      | _ -> ());
      match Api.run ~mode:Api.Exec.Model ~cost ?profile h.H.plan ~data:[] with
      | Ok r -> Ok r.Api.Exec.stats
      | Error e -> Error e)

let gbs_of ~bytes stats = Stats.gbs stats ~bytes
let gflops_of ~flops (stats : Stats.t) =
  if stats.Stats.time <= 0.0 then 0.0 else flops /. stats.Stats.time /. 1e9

let cpu_machine1 p = Machine.grid ~kind:Machine.Cpu ~mem_per_proc:256e9 [| p |]

let gpu_machine1 p =
  Machine.with_ppn ~kind:Machine.Gpu ~mem_per_proc:16e9 [| p |] ~ppn:4

let make_figure ~id ~title ~unit_ ~nodes ~series =
  { Figure.id; title; unit_; nodes; series }

let three_series ~nodes ~cpu ~gpu ~ctf =
  [
    { Figure.name = "distal-cpu"; cells = List.map (fun nd -> (nd, cpu nd)) nodes };
    { Figure.name = "distal-gpu"; cells = List.map (fun nd -> (nd, gpu nd)) nodes };
    { Figure.name = "ctf-cpu"; cells = List.map (fun nd -> (nd, ctf nd)) nodes };
  ]

let f = float_of_int

let label fig series nd = Printf.sprintf "%s/%s@%d" fig series nd

let ttv ?profile ?(nodes = default_nodes) ?(base_i = 1024) ?(jk = 512) () =
  let bytes ~i = 8.0 *. ((f i *. f jk *. f jk) +. (f i *. f jk) +. f jk) in
  let cpu nd =
    let i = base_i * nd in
    cell ~per:(gbs_of ~bytes:(bytes ~i)) ~nodes:nd
      (run_h ?profile ~label:(label "fig16a" "distal-cpu" nd) ~cost:Cost.cpu_distal
         (H.ttv ~i ~j:jk ~k:jk ~machine:(cpu_machine1 nd)))
  in
  let gpu nd =
    let i = base_i / 2 * 4 * nd in
    cell ~per:(gbs_of ~bytes:(bytes ~i)) ~nodes:nd
      (run_h ?profile ~label:(label "fig16a" "distal-gpu" nd) ~cost:Cost.gpu_distal
         (H.ttv ~i ~j:jk ~k:jk ~machine:(gpu_machine1 (4 * nd))))
  in
  let ctf nd =
    let i = base_i * nd in
    cell ~per:(gbs_of ~bytes:(bytes ~i)) ~nodes:nd (Ctf.ttv ~nodes:nd ~i ~j:jk ~k:jk)
  in
  make_figure ~id:"fig16a" ~title:"TTV  A(i,j) = B(i,j,k) * c(k)" ~unit_:"GB/s/node"
    ~nodes ~series:(three_series ~nodes ~cpu ~gpu ~ctf)

let innerprod ?profile ?(nodes = default_nodes) ?(base_i = 1024) ?(jk = 512) () =
  let bytes ~i = 2.0 *. 8.0 *. f i *. f jk *. f jk in
  let cpu nd =
    let i = base_i * nd in
    cell ~per:(gbs_of ~bytes:(bytes ~i)) ~nodes:nd
      (run_h ?profile ~label:(label "fig16b" "distal-cpu" nd) ~cost:Cost.cpu_distal
         (H.innerprod ~i ~j:jk ~k:jk ~machine:(cpu_machine1 nd)))
  in
  let gpu nd =
    let i = base_i / 2 * 4 * nd in
    cell ~per:(gbs_of ~bytes:(bytes ~i)) ~nodes:nd
      (run_h ?profile ~label:(label "fig16b" "distal-gpu" nd) ~cost:Cost.gpu_distal
         (H.innerprod ~i ~j:jk ~k:jk ~machine:(gpu_machine1 (4 * nd))))
  in
  let ctf nd =
    let i = base_i * nd in
    cell ~per:(gbs_of ~bytes:(bytes ~i)) ~nodes:nd (Ctf.innerprod ~nodes:nd ~i ~j:jk ~k:jk)
  in
  make_figure ~id:"fig16b" ~title:"Innerprod  a = B(i,j,k) * C(i,j,k)" ~unit_:"GB/s/node"
    ~nodes ~series:(three_series ~nodes ~cpu ~gpu ~ctf)

let ttm ?profile ?(nodes = default_nodes) ?(base_i = 256) ?(jk = 512) ?(l = 64) () =
  let flops ~i = 2.0 *. f i *. f jk *. f jk *. f l in
  let cpu nd =
    let i = base_i * nd in
    cell ~per:(gflops_of ~flops:(flops ~i)) ~nodes:nd
      (run_h ?profile ~label:(label "fig16c" "distal-cpu" nd) ~cost:Cost.cpu_distal
         (H.ttm ~i ~j:jk ~k:jk ~l ~machine:(cpu_machine1 nd)))
  in
  let gpu nd =
    let i = base_i / 2 * 4 * nd in
    cell ~per:(gflops_of ~flops:(flops ~i)) ~nodes:nd
      (run_h ?profile ~label:(label "fig16c" "distal-gpu" nd) ~cost:Cost.gpu_distal
         (H.ttm ~i ~j:jk ~k:jk ~l ~machine:(gpu_machine1 (4 * nd))))
  in
  let ctf nd =
    let i = base_i * nd in
    cell ~per:(gflops_of ~flops:(flops ~i)) ~nodes:nd
      (Ctf.ttm ~nodes:nd ~i ~j:jk ~k:jk ~l)
  in
  make_figure ~id:"fig16c" ~title:"TTM  A(i,j,l) = B(i,j,k) * C(k,l)"
    ~unit_:"GFLOP/s/node" ~nodes ~series:(three_series ~nodes ~cpu ~gpu ~ctf)

let mttkrp ?profile ?(nodes = default_nodes) ?(base_ij = 512) ?(k = 512) ?(l = 32) () =
  let flops ~i ~j = 3.0 *. f i *. f j *. f k *. f l in
  let sizes procs =
    let gx, gy = Cs.best_pair procs in
    (base_ij * gx, base_ij * gy, Machine.grid [| gx; gy |])
  in
  let cpu nd =
    let i, j, machine = sizes nd in
    let machine = Machine.grid ~kind:Machine.Cpu ~mem_per_proc:256e9 machine.Machine.dims in
    cell ~per:(gflops_of ~flops:(flops ~i ~j)) ~nodes:nd
      (run_h ?profile ~label:(label "fig16d" "distal-cpu" nd) ~cost:Cost.cpu_distal
         (H.mttkrp ~i ~j ~k ~l ~machine))
  in
  let gpu nd =
    let gx, gy = Cs.best_pair (4 * nd) in
    let i = base_ij / 2 * gx and j = base_ij / 2 * gy in
    let machine = Machine.with_ppn ~kind:Machine.Gpu ~mem_per_proc:16e9 [| gx; gy |] ~ppn:4 in
    cell ~per:(gflops_of ~flops:(flops ~i ~j)) ~nodes:nd
      (run_h ?profile ~label:(label "fig16d" "distal-gpu" nd) ~cost:Cost.gpu_distal
         (H.mttkrp ~i ~j ~k ~l ~machine))
  in
  let ctf nd =
    let i, j, _ = sizes nd in
    cell ~per:(gflops_of ~flops:(flops ~i ~j)) ~nodes:nd
      (Ctf.mttkrp ~nodes:nd ~i ~j ~k ~l)
  in
  make_figure ~id:"fig16d" ~title:"MTTKRP  A(i,l) = B(i,j,k) * C(j,l) * D(k,l)"
    ~unit_:"GFLOP/s/node" ~nodes ~series:(three_series ~nodes ~cpu ~gpu ~ctf)
