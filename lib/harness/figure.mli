(** Shared representation of a reproduced figure: one series per system,
    one cell per node count. *)

type cell =
  | Value of float
  | Oom  (** ran out of simulated memory (§7.1.2's 3-D algorithms) *)
  | Unavailable  (** configuration inexpressible at this node count *)

type series = { name : string; cells : (int * cell) list }

type t = {
  id : string;  (** e.g. "fig15a" *)
  title : string;
  unit_ : string;  (** "GFLOP/s/node" or "GB/s/node" *)
  nodes : int list;
  series : series list;
}

val cell : t -> series_name:string -> nodes:int -> cell
val value_exn : t -> series_name:string -> nodes:int -> float
val print : t -> unit
(** Render as an aligned table, one row per node count. *)

val to_csv : t -> string
(** Comma-separated rendering (header row, then one row per node count;
    OOM and unavailable cells are rendered as empty). *)

val save_csv : dir:string -> t -> string
(** Write [to_csv] to [dir/<id>.csv]; returns the path. *)

val to_json : t -> Distal_obs.Json.t
(** Machine-readable rendering ([distal-bench/v1] schema): the figure's
    identity plus one object per series with its per-node-count cells
    (OOM cells read ["oom"], unavailable cells read [null]). *)

val save_json : dir:string -> t -> string
(** Write [to_json] (pretty-printed) to [dir/<id>.json]; returns the
    path. *)

val cell_to_string : cell -> string
