(* Auto-scheduler vs the hand schedules of the harness figures.

   One row per workload: the hand-written schedule's modeled time (the
   best of the Fig. 9 2-D family for GEMM, the §7.2 schedule for the
   higher-order kernels), the auto-scheduler's chosen candidate on the
   same statement / shapes / processor budget, and their ratio. The whole
   point of the search is that ratio never dropping below 1 — the search
   optimizes the exact objective the hand schedules are judged by, over a
   space that contains (or models identically to) each of them. *)

module Api = Distal.Api
module Machine = Distal_machine.Machine
module Cost = Distal_machine.Cost_model
module Stats = Distal_runtime.Stats
module Auto = Distal_algorithms.Auto
module H = Distal_algorithms.Higher_order
module Matmul = Distal_algorithms.Matmul
module Cs = Distal_algorithms.Cosma_scheduler

type row = {
  workload : string;
  hand : string;  (** name of the best hand schedule *)
  hand_time : float;
  auto : string;  (** Auto.describe of the chosen candidate *)
  auto_time : float;
  ratio : float;  (** hand_time / auto_time; >= 1 means auto matches or wins *)
  report : Auto.report;
}

let model ~cost plan =
  match Api.run ~mode:Api.Exec.Model ~cost plan ~data:[] with
  | Ok r -> Ok r.Api.Exec.stats
  | Error e -> Error e

let cpu_grid dims = Machine.grid ~kind:Machine.Cpu ~mem_per_proc:256e9 dims

(* The best hand schedule for a workload: candidates are (name, plan)
   results; infeasible ones are skipped. *)
let best_hand ~cost plans =
  List.filter_map
    (fun (name, p) ->
      match p with
      | Error _ -> None
      | Ok plan -> (
          match model ~cost plan with
          | Ok (stats : Stats.t) when not stats.Stats.oom -> Some (name, stats.Stats.time)
          | _ -> None))
    plans
  |> function
  | [] -> None
  | xs -> Some (List.fold_left (fun (bn, bt) (n, t) -> if t < bt then (n, t) else (bn, bt))
                  (List.hd xs) (List.tl xs))

let row ?domains ~cost ~workload ~stmt ~shapes ~procs hand_plans =
  match best_hand ~cost hand_plans with
  | None -> Error (workload ^ ": no feasible hand schedule")
  | Some (hand, hand_time) -> (
      match
        Auto.search_report ~cost ?domains ~machine_of:cpu_grid ~procs ~stmt ~shapes ()
      with
      | Error e -> Error (workload ^ ": " ^ e)
      | Ok (cs, report) ->
          let c = List.hd cs in
          let auto_time = c.Auto.stats.Stats.time in
          Ok
            {
              workload;
              hand;
              hand_time;
              auto = Auto.describe c;
              auto_time;
              ratio = (if auto_time > 0.0 then hand_time /. auto_time else infinity);
              report;
            })

(* The standard comparison set: GEMM against the whole 2-D Fig. 9 family
   on a square grid, and the three 1-D higher-order kernels of §7.2
   against their paper schedules. [procs] must be a perfect square for
   the GEMM grid. *)
let rows ?domains ?(procs = 16) ?(n = 4096) ?(jk = 256) ?(i1 = 1024) () =
  let cost = Cost.cpu_distal in
  let gx, gy = Cs.best_pair procs in
  let gemm =
    row ?domains ~cost ~workload:(Printf.sprintf "gemm n=%d" n)
      ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~shapes:[ ("A", [| n; n |]); ("B", [| n; n |]); ("C", [| n; n |]) ]
      ~procs
      (List.map
         (fun (name, mk) -> (name, Result.map (fun (m : Matmul.t) -> m.Matmul.plan)
                                     (mk ~n ~machine:(cpu_grid [| gx; gy |]))))
         Matmul.all_2d)
  in
  let machine1 = cpu_grid [| procs |] in
  let h name r = (name, Result.map (fun (h : H.t) -> h.H.plan) r) in
  let ttv =
    row ?domains ~cost ~workload:(Printf.sprintf "ttv i=%d jk=%d" i1 jk)
      ~stmt:"A(i,j) = B(i,j,k) * c(k)"
      ~shapes:[ ("A", [| i1; jk |]); ("B", [| i1; jk; jk |]); ("c", [| jk |]) ]
      ~procs
      [ h "ttv-elementwise" (H.ttv ~i:i1 ~j:jk ~k:jk ~machine:machine1) ]
  in
  let innerprod =
    row ?domains ~cost ~workload:(Printf.sprintf "innerprod i=%d jk=%d" i1 jk)
      ~stmt:"a = B(i,j,k) * C(i,j,k)"
      ~shapes:[ ("a", [||]); ("B", [| i1; jk; jk |]); ("C", [| i1; jk; jk |]) ]
      ~procs
      [ h "innerprod-reduction" (H.innerprod ~i:i1 ~j:jk ~k:jk ~machine:machine1) ]
  in
  let l = 64 in
  let ttm =
    row ?domains ~cost ~workload:(Printf.sprintf "ttm i=%d jk=%d l=%d" i1 jk l)
      ~stmt:"A(i,j,l) = B(i,j,k) * C(k,l)"
      ~shapes:
        [ ("A", [| i1; jk; l |]); ("B", [| i1; jk; jk |]); ("C", [| jk; l |]) ]
      ~procs
      [ h "ttm-local-gemm" (H.ttm ~i:i1 ~j:jk ~k:jk ~l ~machine:machine1) ]
  in
  List.filter_map Result.to_option [ gemm; ttv; innerprod; ttm ]

let print rows =
  Printf.printf "%-24s %-18s %12s %12s %8s\n" "workload" "best hand schedule"
    "hand (s)" "auto (s)" "ratio";
  List.iter
    (fun r ->
      Printf.printf "%-24s %-18s %12.4g %12.4g %7.2fx\n" r.workload r.hand r.hand_time
        r.auto_time r.ratio;
      Printf.printf "    auto: %s\n    search: %s\n" r.auto
        (Auto.describe_report r.report))
    rows

let min_ratio rows =
  List.fold_left (fun acc r -> Float.min acc r.ratio) infinity rows
