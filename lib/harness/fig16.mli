(** Reproduction of Figure 16: weak-scaling higher-order tensor kernels.

    Each sub-figure compares DISTAL on CPUs and GPUs against CTF (CPUs
    only — the paper could not build CTF's GPU backend). Bandwidth-bound
    kernels (TTV, Innerprod) report GB/s per node; TTM and MTTKRP report
    GFLOP/s per node. Sizes weak-scale the mode the schedule distributes,
    keeping memory per node constant, with per-node baselines chosen like
    the paper's (just large enough to saturate a node). *)

val default_nodes : int list

val ttv :
  ?profile:Distal_obs.Profile.t ->
  ?nodes:int list -> ?base_i:int -> ?jk:int -> unit -> Figure.t
(** With [profile], every DISTAL execution registers as a run named
    ["fig16a/<series>@<nodes>"]; CTF baselines (analytic) do not. The
    other kernels follow the same convention with their figure ids. *)

val innerprod :
  ?profile:Distal_obs.Profile.t ->
  ?nodes:int list -> ?base_i:int -> ?jk:int -> unit -> Figure.t

val ttm :
  ?profile:Distal_obs.Profile.t ->
  ?nodes:int list -> ?base_i:int -> ?jk:int -> ?l:int -> unit -> Figure.t

val mttkrp :
  ?profile:Distal_obs.Profile.t ->
  ?nodes:int list -> ?base_ij:int -> ?k:int -> ?l:int -> unit -> Figure.t
