(** The paper's headline comparisons (§1, §7):

    - dense matrix multiply: DISTAL's best schedule vs ScaLAPACK / CTF
      (claimed at least 1.25x faster) and vs COSMA (claimed within 0.95x);
    - higher-order kernels: DISTAL vs CTF speedups (claimed 1.8x-3.7x with
      a 45.7x outlier).

    Derives every ratio from the Fig. 15a / Fig. 16 reproductions at the
    largest common node count and prints a table of paper-claim vs
    measured. *)

type row = {
  comparison : string;
  paper : string;  (** the paper's claimed factor *)
  measured : float;  (** our simulated factor (DISTAL time / other time)⁻¹ *)
}

val compute :
  fig15a:Figure.t ->
  fig16:(Figure.t * Figure.t * Figure.t * Figure.t) ->
  nodes:int ->
  row list

val print : row list -> unit

val to_json : nodes:int -> row list -> Distal_obs.Json.t
(** Machine-readable rendering ([distal-bench/v1] schema, id ["headline"]):
    one object per comparison with the paper's claim and the measured
    factor (non-finite factors read [null]). *)

val save_json : file:string -> nodes:int -> row list -> unit
(** Write [to_json] (pretty-printed) to [file]. *)
