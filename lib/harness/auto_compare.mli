(** The auto-scheduler judged against the harness's hand schedules.

    Each row pits {!Distal_algorithms.Auto} against the best hand-written
    schedule for the same statement, shapes and processor budget — the
    Fig. 9 2-D matrix-multiply family for GEMM, the §7.2 schedules for
    the higher-order kernels — under the same cost model. A [ratio]
    of at least 1.0 means the search matched or beat the hand schedule;
    the bench gate holds the minimum ratio over all rows to that bar. *)

type row = {
  workload : string;
  hand : string;  (** name of the best hand schedule *)
  hand_time : float;  (** its modeled seconds *)
  auto : string;  (** description of the chosen candidate *)
  auto_time : float;  (** the candidate's modeled seconds *)
  ratio : float;  (** [hand_time /. auto_time]; >= 1 means auto matched *)
  report : Distal_algorithms.Auto.report;
}

val rows :
  ?domains:int -> ?procs:int -> ?n:int -> ?jk:int -> ?i1:int -> unit -> row list
(** The standard comparison set (GEMM, TTV, inner product, TTM) at the
    given sizes. Workloads whose hand schedule or search fails are
    skipped. *)

val print : row list -> unit

val min_ratio : row list -> float
(** Minimum ratio over the rows; [infinity] when empty. *)
