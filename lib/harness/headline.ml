type row = { comparison : string; paper : string; measured : float }

let distal_best fig ~nodes =
  List.fold_left
    (fun acc (s : Figure.series) ->
      if String.length s.name >= 4 && String.sub s.name 0 4 = "our-" then
        match List.assoc_opt nodes s.cells with
        | Some (Figure.Value v) -> max acc v
        | _ -> acc
      else acc)
    0.0 fig.Figure.series

let value fig name ~nodes =
  match Figure.cell fig ~series_name:name ~nodes with
  | Figure.Value v -> v
  | _ -> nan

let compute ~fig15a ~fig16 ~nodes =
  let f16a, f16b, f16c, f16d = fig16 in
  let best15 = distal_best fig15a ~nodes in
  let gemm name paper =
    { comparison = "gemm vs " ^ name; paper; measured = best15 /. value fig15a name ~nodes }
  in
  let ho fig kernel paper =
    {
      comparison = kernel ^ " vs ctf";
      paper;
      measured = value fig "distal-cpu" ~nodes /. value fig "ctf-cpu" ~nodes;
    }
  in
  [
    gemm "scalapack" ">= 1.25x";
    gemm "ctf" ">= 1.25x";
    gemm "cosma" ">= 0.95x";
    ho f16a "ttv" "1.8x-3.7x band";
    ho f16b "innerprod" "1.8x-3.7x band";
    ho f16c "ttm" "45.7x outlier";
    ho f16d "mttkrp" "1.8x-3.7x band";
  ]

module Json = Distal_obs.Json

let to_json ~nodes rows =
  Json.Obj
    [
      ("schema", Json.String "distal-bench/v1");
      ("id", Json.String "headline");
      ("nodes", Json.Int nodes);
      ( "rows",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("comparison", Json.String r.comparison);
                   ("paper", Json.String r.paper);
                   ( "measured",
                     if Float.is_finite r.measured then Json.Float r.measured
                     else Json.Null );
                 ])
             rows) );
    ]

let save_json ~file ~nodes rows =
  let oc = open_out file in
  output_string oc (Json.to_string_pretty (to_json ~nodes rows));
  output_char oc '\n';
  close_out oc

let print rows =
  print_endline "== headline: paper-claimed vs measured speedups ==";
  let table = Distal_support.Table.create ~header:[ "comparison"; "paper"; "measured" ] in
  List.iter
    (fun r ->
      Distal_support.Table.add_row table
        [ r.comparison; r.paper; Printf.sprintf "%.2fx" r.measured ])
    rows;
  Distal_support.Table.print table;
  print_newline ()
