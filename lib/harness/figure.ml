type cell = Value of float | Oom | Unavailable

type series = { name : string; cells : (int * cell) list }

type t = {
  id : string;
  title : string;
  unit_ : string;
  nodes : int list;
  series : series list;
}

let cell t ~series_name ~nodes =
  match List.find_opt (fun s -> s.name = series_name) t.series with
  | None -> Unavailable
  | Some s -> ( match List.assoc_opt nodes s.cells with Some c -> c | None -> Unavailable)

let value_exn t ~series_name ~nodes =
  match cell t ~series_name ~nodes with
  | Value v -> v
  | Oom -> invalid_arg (Printf.sprintf "%s@%d: OOM" series_name nodes)
  | Unavailable -> invalid_arg (Printf.sprintf "%s@%d: unavailable" series_name nodes)

let cell_to_string = function
  | Value v -> if v >= 100.0 then Printf.sprintf "%.0f" v else Printf.sprintf "%.1f" v
  | Oom -> "OOM"
  | Unavailable -> "-"

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    ("nodes," ^ String.concat "," (List.map (fun s -> s.name) t.series) ^ "\n");
  List.iter
    (fun n ->
      let cells =
        List.map
          (fun s ->
            match cell t ~series_name:s.name ~nodes:n with
            | Value v -> Printf.sprintf "%.6g" v
            | Oom | Unavailable -> "")
          t.series
      in
      Buffer.add_string buf (string_of_int n ^ "," ^ String.concat "," cells ^ "\n"))
    t.nodes;
  Buffer.contents buf

let save_csv ~dir t =
  let path = Filename.concat dir (t.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc;
  path

module Json = Distal_obs.Json

let cell_to_json = function
  | Value v -> Json.Float v
  | Oom -> Json.String "oom"
  | Unavailable -> Json.Null

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "distal-bench/v1");
      ("id", Json.String t.id);
      ("title", Json.String t.title);
      ("unit", Json.String t.unit_);
      ("nodes", Json.List (List.map (fun n -> Json.Int n) t.nodes));
      ( "series",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.String s.name);
                   ( "cells",
                     Json.List
                       (List.map
                          (fun (n, c) ->
                            Json.Obj [ ("nodes", Json.Int n); ("value", cell_to_json c) ])
                          s.cells) );
                 ])
             t.series) );
    ]

let save_json ~dir t =
  let path = Filename.concat dir (t.id ^ ".json") in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (to_json t));
  output_char oc '\n';
  close_out oc;
  path

let print t =
  Printf.printf "== %s: %s (%s; higher is better) ==\n" t.id t.title t.unit_;
  let table =
    Distal_support.Table.create ~header:("nodes" :: List.map (fun s -> s.name) t.series)
  in
  List.iter
    (fun n ->
      Distal_support.Table.add_row table
        (string_of_int n
        :: List.map (fun s -> cell_to_string (cell t ~series_name:s.name ~nodes:n)) t.series))
    t.nodes;
  Distal_support.Table.print table;
  print_newline ()
