module Api = Distal.Api
module Machine = Distal_machine.Machine
module Cost = Distal_machine.Cost_model
module Stats = Distal_runtime.Stats
module M = Distal_algorithms.Matmul
module Cs = Distal_algorithms.Cosma_scheduler
module Ctf = Distal_baselines.Ctf
module Scalapack = Distal_baselines.Scalapack
module Cosma_ref = Distal_baselines.Cosma_ref
module Profile = Distal_obs.Profile

let default_nodes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let weak_n ~base ~nodes =
  let n = float_of_int base *. sqrt (float_of_int nodes) in
  max 1 (int_of_float (Float.round (n /. 16.0))) * 16

let gemm_flops n = 2.0 *. Float.pow (float_of_int n) 3.0

let cell_of_stats ~n ~nodes (stats : Stats.t) =
  if stats.Stats.oom then Figure.Oom
  else Figure.Value (gemm_flops n /. stats.Stats.time /. 1e9 /. float_of_int nodes)

let cell_of_run ?profile ?label ~n ~nodes ~cost (alg : (M.t, string) result) =
  match alg with
  | Error _ -> Figure.Unavailable
  | Ok alg -> (
      (match (profile, label) with
      | Some p, Some l -> Profile.set_next_run_name p l
      | _ -> ());
      match Api.run ~mode:Api.Exec.Model ~cost ?profile alg.M.plan ~data:[] with
      | Error _ -> Figure.Unavailable
      | Ok r -> cell_of_stats ~n ~nodes r.Api.Exec.stats)

let cube_side procs =
  let rec go q = if (q + 1) * (q + 1) * (q + 1) <= procs then go (q + 1) else q in
  go 1

(* Build the machines each algorithm targets for a [procs]-processor
   run. [make] turns a grid into a machine (CPU: one processor per node;
   GPU: node_factors blocks of four). *)
let distal_series ?profile ?fig ~make ~mem ~cost ~procs ~norm_nodes ~n () =
  let m2 =
    let gx, gy = Cs.best_pair procs in
    make [| gx; gy |]
  in
  (* Johnson always targets a cube; off cube counts it over-decomposes a
     virtual ceil-cube onto the machine (§7.1.2's over-decomposition). *)
  let johnson_cube =
    let q = cube_side procs in
    if q * q * q = procs then None
    else Some [| q + 1; q + 1; q + 1 |]
  in
  let johnson_machine =
    match johnson_cube with Some _ -> m2 | None -> let q = cube_side procs in make [| q; q; q |]
  in
  let solomonik_machine =
    let g, _, c = Ctf.grid25 procs in
    make [| g; g; c |]
  in
  let cosma_machine =
    let d = Cs.find ~procs ~m:n ~n ~k:n ~mem_per_proc:mem in
    let g1, g2, g3 = d.Cs.grid in
    make [| g1; g2; g3 |]
  in
  [
    ("our-summa", fun () -> M.summa ~n ~machine:m2 ());
    ("our-cannon", fun () -> M.cannon ~n ~machine:m2);
    ("our-pumma", fun () -> M.pumma ~n ~machine:m2);
    ("our-johnson", fun () -> M.johnson ?virtual_cube:johnson_cube ~n ~machine:johnson_machine ());
    ("our-solomonik", fun () -> M.solomonik ~n ~machine:solomonik_machine);
    ("our-cosma", fun () -> M.cosma ~n ~machine:cosma_machine ());
  ]
  |> List.map (fun (name, f) ->
         let label =
           Option.map
             (fun fig -> Printf.sprintf "%s/%s@%d" fig name norm_nodes)
             fig
         in
         (name, cell_of_run ?profile ?label ~n ~nodes:norm_nodes ~cost (f ())))

let collect ~nodes ~series_names ~cells_of_nodes =
  let per_node = List.map (fun nd -> (nd, cells_of_nodes nd)) nodes in
  List.map
    (fun name ->
      {
        Figure.name;
        cells = List.map (fun (nd, cells) -> (nd, List.assoc name cells)) per_node;
      })
    series_names

let cpu ?profile ?(nodes = default_nodes) ?(base_n = 8192) () =
  let series_names =
    [
      "our-summa"; "our-cannon"; "our-pumma"; "our-johnson"; "our-solomonik";
      "our-cosma"; "cosma"; "cosma-restricted"; "ctf"; "scalapack";
    ]
  in
  let cells_of_nodes nd =
    let n = weak_n ~base:base_n ~nodes:nd in
    let mem = 256e9 in
    let make dims = Machine.grid ~kind:Machine.Cpu ~mem_per_proc:mem dims in
    let baseline name f =
      ( name,
        match f () with
        | Ok stats -> cell_of_stats ~n ~nodes:nd stats
        | Error _ -> Figure.Unavailable )
    in
    (* GFLOP/s is normalized per NODE: divide by the node count even for
       algorithms that cannot use every node (Johnson off-cubes). *)
    distal_series ?profile ~fig:"fig15a" ~make ~mem ~cost:Cost.cpu_distal ~procs:nd
      ~norm_nodes:nd ~n ()
    @ [
        baseline "cosma" (fun () -> Cosma_ref.gemm_cpu ~nodes:nd ~n ());
        baseline "cosma-restricted" (fun () ->
            Cosma_ref.gemm_cpu ~restricted:true ~nodes:nd ~n ());
        baseline "ctf" (fun () -> Ctf.gemm ~nodes:nd ~n);
        baseline "scalapack" (fun () -> Scalapack.gemm ~nodes:nd ~n ());
      ]
  in
  {
    Figure.id = "fig15a";
    title = "CPU weak-scaling GEMM (initial " ^ string_of_int base_n ^ "^2 per node)";
    unit_ = "GFLOP/s/node";
    nodes;
    series = collect ~nodes ~series_names ~cells_of_nodes;
  }

let gpu ?profile ?(nodes = default_nodes) ?(base_n = 20000) () =
  let series_names =
    [
      "our-summa"; "our-cannon"; "our-pumma"; "our-johnson"; "our-solomonik";
      "our-cosma"; "cosma";
    ]
  in
  let cells_of_nodes nd =
    let n = weak_n ~base:base_n ~nodes:nd in
    let procs = 4 * nd in
    let mem = 16e9 in
    let make dims = Machine.with_ppn ~kind:Machine.Gpu ~mem_per_proc:mem dims ~ppn:4 in
    distal_series ?profile ~fig:"fig15b" ~make ~mem ~cost:Cost.gpu_distal ~procs
      ~norm_nodes:nd ~n ()
    @ [
        ( "cosma",
          match Cosma_ref.gemm_gpu ~nodes:nd ~n with
          | Ok stats -> cell_of_stats ~n ~nodes:nd stats
          | Error _ -> Figure.Unavailable );
      ]
  in
  {
    Figure.id = "fig15b";
    title = "GPU weak-scaling GEMM (initial " ^ string_of_int base_n ^ "^2 per node, 4 V100s/node)";
    unit_ = "GFLOP/s/node";
    nodes;
    series = collect ~nodes ~series_names ~cells_of_nodes;
  }
