(** Reproduction of Figure 15: weak-scaling distributed matrix multiply.

    15a (CPUs): DISTAL's six algorithms vs COSMA (full node and restricted
    to DISTAL's 36 work cores), CTF and ScaLAPACK. One abstract processor
    per node, initial problem 8192 x 8192 per node.

    15b (GPUs): the same algorithms on four V100s per node vs COSMA's GPU
    backend; initial problem 20000 x 20000 per node. 3-D algorithms
    (Johnson, our COSMA) run out of the 16 GB framebuffer at high node
    counts, as in §7.1.2.

    Both report GFLOP/s per node; weak scaling keeps memory per node
    constant, so flat lines are perfect scaling. Small [base_n] values let
    tests run the full sweep quickly. *)

val default_nodes : int list
(** 1, 2, 4, ..., 256. *)

val cpu :
  ?profile:Distal_obs.Profile.t -> ?nodes:int list -> ?base_n:int -> unit -> Figure.t
(** With [profile], every DISTAL algorithm execution registers as a run
    named ["fig15a/<series>@<nodes>"] with its spans, metrics and step
    timeline. Baseline (analytic) series do not produce runs. *)

val gpu :
  ?profile:Distal_obs.Profile.t -> ?nodes:int list -> ?base_n:int -> unit -> Figure.t

val weak_n : base:int -> nodes:int -> int
(** Problem side for weak scaling: area grows with the node count. *)
