let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

(* The patterns are the registry's kernel table: the lhs arity and a
   right-hand spine of accesses whose indices are letters; matching
   unifies letters with the statement's index variables bijectively.
   Keeping [Kernel_registry.entries] the single source of truth means a
   kernel added to the registry is automatically substitutable. *)
type pattern = { lhs : string; factors : string list }

let patterns =
  List.map
    (fun (e : Distal_tensor.Kernel_registry.entry) ->
      (e.name, { lhs = e.lhs; factors = e.factors }))
    Distal_tensor.Kernel_registry.entries

let rec mul_spine = function
  | Expr.Mul (a, b) -> Option.bind (mul_spine a) (fun xs ->
        Option.bind (mul_spine b) (fun ys -> Some (xs @ ys)))
  | Expr.Access a -> Some [ a ]
  | _ -> None

(* Whether the rhs is a left-associated product of accesses,
   [Mul (Mul (x1, x2), x3)]: the association the evaluator's float
   operations follow, which leaf-kernel dispatch must reproduce. *)
let rec left_assoc_spine = function
  | Expr.Access _ -> true
  | Expr.Mul (a, Expr.Access _) -> left_assoc_spine a
  | _ -> false

let letters s = List.init (String.length s) (fun i -> s.[i])

let match_access subst (a : Expr.access) letter_str =
  let ls = letters letter_str in
  if List.length ls <> List.length a.indices then None
  else
    List.fold_left2
      (fun subst l v ->
        Option.bind subst (fun subst ->
            match List.assoc_opt l subst with
            | Some v' -> if Ident.equal v v' then Some subst else None
            | None ->
                if List.exists (fun (_, w) -> Ident.equal w v) subst then None
                else Some ((l, v) :: subst)))
      (Some subst) ls a.indices

let try_match_subst stmt pat =
  match mul_spine stmt.Expr.rhs with
  | None -> None
  | Some factors ->
      if List.length factors <> List.length pat.factors then None
      else
        let accesses = stmt.Expr.lhs :: factors in
        let strs = pat.lhs :: pat.factors in
        let subst =
          List.fold_left2
            (fun subst a s -> Option.bind subst (fun subst -> match_access subst a s))
            (Some []) accesses strs
        in
        Option.map (fun subst -> (accesses, subst)) subst

let try_match stmt pat =
  Option.map
    (fun (accesses, _) -> List.map (fun (a : Expr.access) -> a.tensor) accesses)
    (try_match_subst stmt pat)

let check stmt ~kernel =
  match List.assoc_opt kernel patterns with
  | None -> errf "unknown leaf kernel %s" kernel
  | Some pat -> (
      match try_match stmt pat with
      | Some tensors -> Ok tensors
      | None ->
          errf "statement %s does not match the %s kernel pattern"
            (Expr.to_string stmt) kernel)

let infer stmt =
  List.find_map
    (fun (name, pat) -> Option.map (fun _ -> name) (try_match stmt pat))
    patterns

type binding = {
  kernel : string;
  subst : (char * Ident.t) list;
  left_assoc : bool;
}

let infer_binding stmt =
  List.find_map
    (fun (name, pat) ->
      Option.map
        (fun (_, subst) ->
          { kernel = name; subst; left_assoc = left_assoc_spine stmt.Expr.rhs })
        (try_match_subst stmt pat))
    patterns
