module Ints = Distal_support.Ints
module Machine = Distal_machine.Machine
module Rect = Distal_tensor.Rect

type axis = Part of Ident.t | Cyclic of Ident.t * int | Fix of int | Bcast

type level = { tensor_axes : Ident.t list; machine_axes : axis list }

type t = level list

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

(* {2 Parsing} *)

let parse_level lx =
  let skip_name () =
    match Lexer.peek lx with
    | Lexer.Ident _ -> ignore (Lexer.next lx)
    | _ -> ()
  in
  let parse_bracketed parse_axis =
    let* () = Lexer.expect lx Lexer.Lbracket in
    (* Empty brackets describe a scalar ([a[] -> M[0]]). *)
    match Lexer.peek lx with
    | Lexer.Rbracket ->
        ignore (Lexer.next lx);
        Ok []
    | _ ->
        let rec go acc =
          let* a = parse_axis () in
          match Lexer.next lx with
          | Lexer.Comma -> go (a :: acc)
          | Lexer.Rbracket -> Ok (List.rev (a :: acc))
          | t -> Error ("expected ',' or ']', found " ^ Lexer.describe t)
        in
        go []
  in
  skip_name ();
  let* tensor_axes =
    parse_bracketed (fun () ->
        match Lexer.next lx with
        | Lexer.Ident v -> Ok v
        | t -> Error ("expected a tensor dimension name, found " ^ Lexer.describe t))
  in
  let* () = Lexer.expect lx Lexer.Arrow in
  skip_name ();
  let* machine_axes =
    parse_bracketed (fun () ->
        match Lexer.next lx with
        | Lexer.Ident v -> (
            match Lexer.peek lx with
            | Lexer.Percent -> (
                ignore (Lexer.next lx);
                match Lexer.next lx with
                | Lexer.Int b when b > 0 -> Ok (Cyclic (v, b))
                | t -> Error ("expected a positive block size after '%', found "
                              ^ Lexer.describe t))
            | _ -> Ok (Part v))
        | Lexer.Int c -> Ok (Fix c)
        | Lexer.Star -> Ok Bcast
        | t -> Error ("expected a name, constant or '*', found " ^ Lexer.describe t))
  in
  Ok { tensor_axes; machine_axes }

let parse s =
  let* lx = Lexer.of_string s in
  let rec go acc =
    let* lvl = parse_level lx in
    match Lexer.next lx with
    | Lexer.Semi -> go (lvl :: acc)
    | Lexer.Eof -> Ok (List.rev (lvl :: acc))
    | t -> Error ("expected ';' or end of input, found " ^ Lexer.describe t)
  in
  go []

let parse_exn s =
  match parse s with
  | Ok d -> d
  | Error e -> invalid_arg (Printf.sprintf "distribution parse error in %S: %s" s e)

let axis_to_string = function
  | Part v -> v
  | Cyclic (v, b) -> Printf.sprintf "%s%%%d" v b
  | Fix c -> string_of_int c
  | Bcast -> "*"

let level_to_string lvl =
  Printf.sprintf "[%s] -> [%s]"
    (String.concat "," lvl.tensor_axes)
    (String.concat "," (List.map axis_to_string lvl.machine_axes))

let to_string t = String.concat "; " (List.map level_to_string t)

(* {2 Validation} *)

let dup_free names = List.length (List.sort_uniq compare names) = List.length names

let validate_level lvl ~tensor_rank ~mdims =
  let part_names =
    List.filter_map
      (function Part v | Cyclic (v, _) -> Some v | _ -> None)
      lvl.machine_axes
  in
  if List.length lvl.tensor_axes <> tensor_rank then
    errf "distribution names %d tensor dimensions but the tensor has rank %d"
      (List.length lvl.tensor_axes) tensor_rank
  else if not (dup_free lvl.tensor_axes) then errf "duplicate tensor dimension names"
  else if not (dup_free part_names) then errf "duplicate machine dimension names"
  else if List.exists (fun v -> not (List.mem v lvl.tensor_axes)) part_names then
    errf "machine-side name not present among the tensor dimensions"
  else
    let rec check_fixes m = function
      | [] -> Ok ()
      | Fix c :: rest ->
          if c < 0 || c >= mdims.(m) then
            errf "fixed coordinate %d out of range for machine dimension of extent %d" c
              mdims.(m)
          else check_fixes (m + 1) rest
      | _ :: rest -> check_fixes (m + 1) rest
    in
    check_fixes 0 lvl.machine_axes

let validate t ~tensor_rank ~machine =
  let mdims = (machine : Machine.t).dims in
  let total = List.fold_left (fun acc l -> acc + List.length l.machine_axes) 0 t in
  if t = [] then errf "a distribution needs at least one level"
  else if total <> Array.length mdims then
    errf "distribution levels name %d machine dimensions but the machine has %d" total
      (Array.length mdims)
  else
    let rec go off = function
      | [] -> Ok ()
      | lvl :: rest ->
          let k = List.length lvl.machine_axes in
          let* () = validate_level lvl ~tensor_rank ~mdims:(Array.sub mdims off k) in
          go (off + k) rest
    in
    go 0 t

(* {2 Semantics} *)

(* For machine axis [m] of a level: the tensor dimension it partitions and
   how ([`Block] or [`Cyclic block]). *)
let partition_map lvl =
  let idx v =
    let rec go d = function
      | [] -> invalid_arg "partition_map: unvalidated distribution"
      | x :: _ when Ident.equal x v -> d
      | _ :: rest -> go (d + 1) rest
    in
    go 0 lvl.tensor_axes
  in
  List.mapi
    (fun m axis ->
      match axis with
      | Part v -> (m, Some (idx v, `Block))
      | Cyclic (v, b) -> (m, Some (idx v, `Cyclic b))
      | _ -> (m, None))
    lvl.machine_axes

let color_of_point lvl ~shape ~mdims point =
  assert (Array.length point = Array.length shape);
  List.filter_map
    (fun (m, d) ->
      match d with
      | None -> None
      | Some (d, `Block) ->
          let bs = Ints.ceil_div shape.(d) mdims.(m) in
          Some (point.(d) / bs)
      | Some (d, `Cyclic b) -> Some (point.(d) / b mod mdims.(m)))
    (partition_map lvl)
  |> Array.of_list

let procs_of_color lvl ~mdims color =
  let parts = List.filter_map (fun (m, d) -> Option.map (fun _ -> m) d) (partition_map lvl) in
  assert (List.length parts = Array.length color);
  let matches coord =
    List.for_all2 (fun m c -> coord.(m) = c) parts (Array.to_list color)
    && List.for_all
         (fun ok -> ok)
         (List.mapi
            (fun m axis -> match axis with Fix c -> coord.(m) = c | _ -> true)
            lvl.machine_axes)
  in
  Ints.fold_box mdims ~init:[] ~f:(fun acc coord ->
      if matches coord then coord :: acc else acc)
  |> List.rev

(* Tiles of [seg] (a processor coordinate in this level's machine dims)
   within the sub-box [rect] of the tensor; empty if a fixed dimension
   excludes the processor. Blocked axes keep one segment per dimension;
   cyclic axes produce one segment per strip, so the result is the
   cartesian product of the per-dimension segment lists. *)
let level_tiles lvl ~mdims ~(rect : Rect.t) seg =
  let ok_fix =
    List.for_all
      (fun ok -> ok)
      (List.mapi
         (fun m axis -> match axis with Fix c -> seg.(m) = c | _ -> true)
         lvl.machine_axes)
  in
  if not ok_fix then []
  else begin
    (* Per tensor dimension: the list of [lo, hi) segments this processor
       owns within [rect]. *)
    let rank = Rect.dim rect in
    let segments = Array.init rank (fun d -> [ (rect.lo.(d), rect.hi.(d)) ]) in
    List.iter
      (fun (m, d) ->
        match d with
        | None -> ()
        | Some (d, `Block) ->
            let ext = rect.hi.(d) - rect.lo.(d) in
            let bs = Ints.ceil_div (max ext 1) mdims.(m) in
            let lo = min rect.hi.(d) (rect.lo.(d) + (seg.(m) * bs)) in
            let hi = min rect.hi.(d) (rect.lo.(d) + ((seg.(m) + 1) * bs)) in
            segments.(d) <- (if hi > lo then [ (lo, hi) ] else [])
        | Some (d, `Cyclic b) ->
            let g = mdims.(m) in
            let acc = ref [] in
            let strip = ref (rect.lo.(d) + (seg.(m) * b)) in
            while !strip < rect.hi.(d) do
              let hi = min rect.hi.(d) (!strip + b) in
              if hi > !strip then acc := (!strip, hi) :: !acc;
              strip := !strip + (b * g)
            done;
            segments.(d) <- List.rev !acc)
      (partition_map lvl);
    (* Cartesian product of the segment choices. *)
    let rec product d =
      if d = rank then [ [] ]
      else
        List.concat_map
          (fun rest -> List.map (fun s -> s :: rest) segments.(d))
          (product (d + 1))
    in
    List.map
      (fun segs ->
        let segs = Array.of_list segs in
        Rect.make
          ~lo:(Array.map fst segs)
          ~hi:(Array.map snd segs))
      (product 0)
  end

let rects_of_proc t ~shape ~machine proc =
  let mdims = (machine : Machine.t).dims in
  let rec go levels off rects =
    match levels with
    | [] -> rects
    | lvl :: rest ->
        let k = List.length lvl.machine_axes in
        let seg = Array.sub proc off k in
        let rects =
          List.concat_map
            (fun rect -> level_tiles lvl ~mdims:(Array.sub mdims off k) ~rect seg)
            rects
        in
        go rest (off + k) rects
  in
  List.filter (fun r -> not (Rect.is_empty r)) (go t 0 [ Rect.full shape ])

let rect_of_proc t ~shape ~machine proc =
  match rects_of_proc t ~shape ~machine proc with [ r ] -> Some r | _ -> None

let tiles t ~shape ~machine =
  (* Tiles are keyed structurally on their bounds — this loop runs once per
     (processor, tile) pair and cyclic distributions produce tens of
     thousands of tiles, so no string keys on the hot path. *)
  let table : (int array * int array, int array list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun proc ->
      List.iter
        (fun (r : Rect.t) ->
          match Hashtbl.find_opt table (r.lo, r.hi) with
          | None ->
              let owners = ref [ proc ] in
              Hashtbl.add table (r.lo, r.hi) owners;
              order := (r, owners) :: !order
          | Some owners -> owners := proc :: !owners)
        (rects_of_proc t ~shape ~machine proc))
    (Machine.proc_coords machine);
  List.rev_map (fun (r, owners) -> (r, List.rev !owners)) !order

let replication_factor t ~machine =
  let mdims = (machine : Machine.t).dims in
  let rec go levels off acc =
    match levels with
    | [] -> acc
    | lvl :: rest ->
        let acc =
          List.fold_left ( * ) acc
            (List.mapi
               (fun m axis -> match axis with Bcast -> mdims.(off + m) | _ -> 1)
               lvl.machine_axes)
        in
        go rest (off + List.length lvl.machine_axes) acc
  in
  go t 0 1

let bytes_per_proc t ~shape ~machine =
  List.fold_left
    (fun acc proc ->
      let owned =
        List.fold_left
          (fun b r -> b +. (8.0 *. float_of_int (Rect.volume r)))
          0.0
          (rects_of_proc t ~shape ~machine proc)
      in
      max acc owned)
    0.0
    (Machine.proc_coords machine)

(* {2 Lowering to concrete index notation (§5.3)} *)

let lower_to_cin lvl ~tensor ~shape ~machine =
  let mdims = (machine : Machine.t).dims in
  let* () = validate_level lvl ~tensor_rank:(Array.length shape) ~mdims in
  (* Step 1-2: an iteration space over the tensor plus broadcast machine
     dimensions, accessing the tensor at the innermost point. *)
  let bcast_vars =
    List.concat
      (List.mapi
         (fun m axis ->
           match axis with Bcast -> [ (Ident.fresh "b", mdims.(m)) ] | _ -> [])
         lvl.machine_axes)
  in
  let roots =
    List.mapi (fun d v -> (v, shape.(d))) lvl.tensor_axes @ bcast_vars
  in
  let stmt =
    {
      Expr.lhs = { Expr.tensor = "_placed"; indices = lvl.tensor_axes };
      rhs = Expr.Access { Expr.tensor; indices = lvl.tensor_axes };
      accum = false;
    }
  in
  let cin =
    {
      Cin.stmt;
      loops = List.map (fun (v, _) -> { Cin.var = v; annots = [] }) roots;
      prov = Provenance.create roots;
      substituted = None;
    }
  in
  (* Step 4: divide every partitioned tensor dimension by its machine
     dimension; collect the distributed (outer / broadcast) variables in
     machine-dimension order. *)
  let pm = partition_map lvl in
  let bq = Queue.create () in
  List.iter (fun (v, _) -> Queue.add v bq) bcast_vars;
  let* cin, dist_vars =
    List.fold_left
      (fun acc (m, d) ->
        let* cin, dist_vars = acc in
        match (d, List.nth lvl.machine_axes m) with
        | Some (_, `Cyclic _), _ ->
            Error
              "cyclic distributions are placed directly by the runtime; §5.3 \
               lowering covers blocked partitions"
        | Some (d, `Block), _ ->
            let x = List.nth lvl.tensor_axes d in
            let xo = Ident.fresh (x ^ "o") and xi = Ident.fresh (x ^ "i") in
            let* cin = Schedule.apply cin (Schedule.Divide (x, xo, xi, mdims.(m))) in
            Ok (cin, dist_vars @ [ xo ])
        | None, Bcast -> Ok (cin, dist_vars @ [ Queue.pop bq ])
        | None, _ -> Ok (cin, dist_vars) (* fixed: no loop *))
      (Ok (cin, []))
      pm
  in
  (* Step 3 + 4: distributed variables shallowest, then distribute them,
     then (step 5) communicate the tensor underneath them. *)
  let inner = List.filter (fun v -> not (List.mem v dist_vars)) (Cin.loop_vars cin) in
  let* cin = Schedule.apply cin (Schedule.Reorder (dist_vars @ inner)) in
  let* cin = Schedule.apply cin (Schedule.Distribute dist_vars) in
  match List.rev dist_vars with
  | [] -> Ok cin
  | last :: _ -> Schedule.apply cin (Schedule.Communicate ([ tensor ], last))
