(** Derivation graph of index variables.

    Scheduling transformations replace loop variables with derived ones
    (divide and split produce an outer/inner pair, collapse fuses two loops,
    rotate substitutes a time-shifted variable). This graph records every
    derivation so that later passes can recover, for any partial assignment
    of the *currently live* loop variables, the interval of values each
    original (root) variable can take. That interval analysis is the bounds
    analysis of §6.2: it yields the hyper-rectangle of tensor coordinates a
    loop iteration touches, from which the runtime derives partitions and
    communication.

    Conventions:
    - divide/split: [parent = outer * inner_size + inner], where divide
      fixes the number of outer iterations ([parts]) and split fixes the
      inner chunk size; iterations where a reconstructed variable reaches
      its parent's extent are guard-excluded (boundary tiles).
    - collapse: [fused = first * extent second + second].
    - rotate (§3.3): [target = (result + sum by) mod extent target]. *)

type t

type consumption =
  | Divided_into of { outer : Ident.t; inner : Ident.t; inner_size : int }
  | Fused_into of { fused : Ident.t; pos : [ `First | `Second ] }
  | Rotated_into of { result : Ident.t; by : Ident.t list }
      (** How a consumed variable is reconstructed from its replacements
          (see the conventions above). Exposed so staging passes can
          compile the reconstruction instead of re-interpreting it per
          iteration-space point. *)

val create : (Ident.t * int) list -> t
(** Fresh graph with the given root variables and extents. *)

val consumption : t -> Ident.t -> consumption option
(** How [v] was transformed away, or [None] while it is live (or unknown). *)

val consumed : t -> Ident.t list
(** Every consumed variable, in unspecified order. These are exactly the
    variables {!guards_ok} can reject. *)

val copy : t -> t
val mem : t -> Ident.t -> bool
val extent : t -> Ident.t -> int
val roots : t -> Ident.t list

val divide :
  t -> Ident.t -> outer:Ident.t -> inner:Ident.t -> parts:int -> (unit, string) result

val split :
  t -> Ident.t -> outer:Ident.t -> inner:Ident.t -> chunk:int -> (unit, string) result

val fuse : t -> first:Ident.t -> second:Ident.t -> fused:Ident.t -> (unit, string) result

val rotate :
  t -> target:Ident.t -> by:Ident.t list -> result:Ident.t -> (unit, string) result

val is_live : t -> Ident.t -> bool
(** A variable is live when it has been introduced and not yet consumed by a
    later transformation — i.e. it is an actual loop variable. *)

val interval : t -> env:(Ident.t -> int option) -> Ident.t -> int * int
(** Possible values of a variable (half-open, clipped to its extent) given
    values for some live variables. Unbound live variables range over their
    full extent. *)

val raw_point : t -> env:(Ident.t -> int option) -> Ident.t -> int option
(** Exact unclipped reconstruction of a variable's value when the
    environment determines it ([None] otherwise). Values at or above the
    variable's extent indicate guard-excluded boundary iterations. *)

val guards_ok : t -> env:(Ident.t -> int option) -> bool
(** Whether every reconstructible variable value is within its extent — the
    boundary guard of one iteration-space point. Requires an environment
    binding all live variables. *)

val deps : t -> Ident.t -> Ident.t list
(** The live variables whose environment binding can affect {!interval} or
    {!raw_point} of [v] — its derivation chain followed through every
    consumption, including rotate [by] shifts (which {!roots_of} ignores).
    Sound only for environments that bind live variables, i.e. actual loop
    variables, which is what the runtime's task walk maintains. *)

val roots_of : t -> Ident.t -> Ident.t list
(** Root variables a variable's value contributes to (rotate [by] variables
    only shift time, so they do not count as contributing). *)

val derives_from : t -> Ident.t -> root:Ident.t -> bool
