module Rect = Distal_tensor.Rect

let access_rect prov ~env ~shape (a : Expr.access) =
  assert (List.length a.indices = Array.length shape);
  let lo = Array.make (Array.length shape) 0 in
  let hi = Array.make (Array.length shape) 0 in
  List.iteri
    (fun d v ->
      let l, h = Provenance.interval prov ~env v in
      lo.(d) <- min l shape.(d);
      hi.(d) <- min h shape.(d);
      hi.(d) <- max hi.(d) lo.(d))
    a.indices;
  Rect.make ~lo ~hi

let tensor_footprint prov ~env ~stmt ~shape tensor =
  let rects =
    List.filter_map
      (fun (a : Expr.access) ->
        if String.equal a.tensor tensor then Some (access_rect prov ~env ~shape a)
        else None)
      (Expr.stmt_accesses stmt)
  in
  match rects with
  | [] -> invalid_arg (Printf.sprintf "tensor %s is not accessed by the statement" tensor)
  | r :: rest -> List.fold_left Rect.hull r rest

type memo = {
  prov : Provenance.t;
  stmt : Expr.stmt;
  deps : (string, Ident.t array) Hashtbl.t;  (* tensor -> live vars keying its rect *)
  cache : (string, (int list, Rect.t) Hashtbl.t) Hashtbl.t;
}

let memo prov ~stmt =
  let deps = Hashtbl.create 8 and cache = Hashtbl.create 8 in
  List.iter
    (fun tn ->
      let vars =
        List.concat_map
          (fun (a : Expr.access) ->
            if String.equal a.tensor tn then a.indices else [])
          (Expr.stmt_accesses stmt)
        |> List.sort_uniq compare
      in
      let dv =
        List.concat_map (Provenance.deps prov) vars |> List.sort_uniq compare
      in
      Hashtbl.replace deps tn (Array.of_list dv);
      Hashtbl.replace cache tn (Hashtbl.create 64))
    (Expr.tensors stmt);
  { prov; stmt; deps; cache }

let footprint m ~env ~shape tensor =
  match Hashtbl.find_opt m.deps tensor with
  | None -> tensor_footprint m.prov ~env ~stmt:m.stmt ~shape tensor
  | Some dv ->
      let key =
        Array.fold_right
          (fun v acc -> (match env v with Some x -> x | None -> -1) :: acc)
          dv []
      in
      let tbl = Hashtbl.find m.cache tensor in
      (match Hashtbl.find_opt tbl key with
      | Some r -> r
      | None ->
          let r = tensor_footprint m.prov ~env ~stmt:m.stmt ~shape tensor in
          Hashtbl.add tbl key r;
          r)
