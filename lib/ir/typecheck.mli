(** Validation of tensor index notation against tensor shapes.

    Checks performed:
    - every tensor is used with a single arity matching its declared shape;
    - each index variable has one consistent extent across all its uses;
    - no index variable appears twice in one access (diagonal accesses such
      as [A(i,i)] are out of scope for DISTAL's dense lowering).

    The output tensor may also appear on the right-hand side
    (e.g. [A(i,j) = A(i,j) + B(i,j)]); such reads observe the output's
    value from before the statement runs.

    On success, returns the extent of every index variable — the iteration
    space (§3.3) is their Cartesian product. *)

val check :
  Expr.stmt -> shapes:(string * int array) list -> ((Ident.t * int) list, string) result

val check_exn : Expr.stmt -> shapes:(string * int array) list -> (Ident.t * int) list
