let check stmt ~shapes =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let exception Fail of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt in
  try
    let extents : (Ident.t, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (a : Expr.access) ->
        let shape =
          match List.assoc_opt a.tensor shapes with
          | Some s -> s
          | None -> fail "tensor %s has no declared shape" a.tensor
        in
        if List.length a.indices <> Array.length shape then
          fail "tensor %s has rank %d but is accessed with %d indices" a.tensor
            (Array.length shape) (List.length a.indices);
        let seen = Hashtbl.create 4 in
        List.iteri
          (fun d v ->
            if Hashtbl.mem seen v then
              fail "index variable %s appears twice in access %s" v
                (Expr.access_to_string a);
            Hashtbl.add seen v ();
            match Hashtbl.find_opt extents v with
            | None -> Hashtbl.add extents v shape.(d)
            | Some e ->
                if e <> shape.(d) then
                  fail "index variable %s has conflicting extents %d and %d" v e
                    shape.(d))
          a.indices)
      (Expr.stmt_accesses stmt);
    Ok (List.map (fun v -> (v, Hashtbl.find extents v)) (Expr.index_vars stmt))
  with Fail msg -> err "%s" msg

let check_exn stmt ~shapes =
  match check stmt ~shapes with
  | Ok env -> env
  | Error e -> invalid_arg ("typecheck: " ^ e)
