type def =
  | Root of int
  | Outer_of of { parent : Ident.t; count : int }
  | Inner_of of { parent : Ident.t; inner_size : int }
  | Fused_of of { first : Ident.t; second : Ident.t }
  | Rotation_of of { target : Ident.t }

type consumption =
  | Divided_into of { outer : Ident.t; inner : Ident.t; inner_size : int }
  | Fused_into of { fused : Ident.t; pos : [ `First | `Second ] }
  | Rotated_into of { result : Ident.t; by : Ident.t list }

type t = {
  defs : (Ident.t, def) Hashtbl.t;
  cons : (Ident.t, consumption) Hashtbl.t;
  root_order : Ident.t list;
}

let create roots =
  let defs = Hashtbl.create 16 in
  List.iter (fun (v, n) -> Hashtbl.replace defs v (Root n)) roots;
  { defs; cons = Hashtbl.create 16; root_order = List.map fst roots }

let copy t =
  { t with defs = Hashtbl.copy t.defs; cons = Hashtbl.copy t.cons }

let mem t v = Hashtbl.mem t.defs v
let roots t = t.root_order
let consumption t v = Hashtbl.find_opt t.cons v
let consumed t = Hashtbl.fold (fun v _ acc -> v :: acc) t.cons []

let rec extent t v =
  match Hashtbl.find_opt t.defs v with
  | None -> invalid_arg (Printf.sprintf "Provenance.extent: unknown variable %s" v)
  | Some (Root n) -> n
  | Some (Outer_of { count; _ }) -> count
  | Some (Inner_of { inner_size; _ }) -> inner_size
  | Some (Fused_of { first; second }) -> extent t first * extent t second
  | Some (Rotation_of { target }) -> extent t target

let is_live t v = Hashtbl.mem t.defs v && not (Hashtbl.mem t.cons v)

let check_consumable t v =
  if not (Hashtbl.mem t.defs v) then Error (Printf.sprintf "unknown index variable %s" v)
  else if Hashtbl.mem t.cons v then
    Error (Printf.sprintf "index variable %s was already transformed away" v)
  else Ok ()

let check_new t v =
  if Hashtbl.mem t.defs v then
    Error (Printf.sprintf "index variable %s already exists" v)
  else Ok ()

let ( let* ) = Result.bind

let subdivide t parent ~outer ~inner ~inner_size ~count =
  let* () = check_consumable t parent in
  let* () = check_new t outer in
  let* () = if outer = inner then Error "outer and inner must differ" else check_new t inner in
  Hashtbl.replace t.defs outer (Outer_of { parent; count });
  Hashtbl.replace t.defs inner (Inner_of { parent; inner_size });
  Hashtbl.replace t.cons parent (Divided_into { outer; inner; inner_size });
  Ok ()

let divide t parent ~outer ~inner ~parts =
  if parts <= 0 then Error "divide: parts must be positive"
  else
    let* () = check_consumable t parent in
    let n = extent t parent in
    let inner_size = Distal_support.Ints.ceil_div n parts in
    subdivide t parent ~outer ~inner ~inner_size ~count:parts

let split t parent ~outer ~inner ~chunk =
  if chunk <= 0 then Error "split: chunk must be positive"
  else
    let* () = check_consumable t parent in
    let n = extent t parent in
    let count = Distal_support.Ints.ceil_div n chunk in
    subdivide t parent ~outer ~inner ~inner_size:chunk ~count

let fuse t ~first ~second ~fused =
  let* () = check_consumable t first in
  let* () = check_consumable t second in
  let* () = check_new t fused in
  Hashtbl.replace t.defs fused (Fused_of { first; second });
  Hashtbl.replace t.cons first (Fused_into { fused; pos = `First });
  Hashtbl.replace t.cons second (Fused_into { fused; pos = `Second });
  Ok ()

let rotate t ~target ~by ~result =
  let* () = check_consumable t target in
  let* () = check_new t result in
  let* () =
    List.fold_left
      (fun acc v ->
        let* () = acc in
        if is_live t v then Ok ()
        else Error (Printf.sprintf "rotate: %s is not a live index variable" v))
      (Ok ()) by
  in
  Hashtbl.replace t.defs result (Rotation_of { target });
  Hashtbl.replace t.cons target (Rotated_into { result; by });
  Ok ()

(* Interval analysis. [raw_interval] performs no clipping so that exact
   point reconstruction can detect guard-excluded boundary iterations;
   [interval] clips each consumed variable to its extent, which keeps the
   result a sound (superset) footprint. *)

let rec raw_interval t ~env ~clipped v =
  match env v with
  | Some x -> (x, x + 1)
  | None -> (
      let res =
        match Hashtbl.find_opt t.cons v with
        | None -> (0, extent t v)
        | Some (Divided_into { outer; inner; inner_size }) ->
            let lo_o, hi_o = raw_interval t ~env ~clipped outer in
            let lo_i, hi_i = raw_interval t ~env ~clipped inner in
            ((lo_o * inner_size) + lo_i, ((hi_o - 1) * inner_size) + hi_i)
        | Some (Fused_into { fused; pos }) ->
            let lo_f, hi_f = raw_interval t ~env ~clipped fused in
            let eb =
              match Hashtbl.find_opt t.defs fused with
              | Some (Fused_of { second; _ }) -> extent t second
              | _ -> assert false
            in
            (match pos with
            | `First -> (lo_f / eb, ((hi_f - 1) / eb) + 1)
            | `Second ->
                if hi_f - lo_f >= eb || (hi_f - 1) / eb <> lo_f / eb then (0, eb)
                else (lo_f mod eb, ((hi_f - 1) mod eb) + 1))
        | Some (Rotated_into { result; by }) ->
            let e = extent t v in
            let pieces = List.map (fun w -> raw_interval t ~env ~clipped w) (result :: by) in
            if List.for_all (fun (lo, hi) -> hi = lo + 1) pieces then
              let s = List.fold_left (fun acc (lo, _) -> acc + lo) 0 pieces in
              let x = ((s mod e) + e) mod e in
              (x, x + 1)
            else (0, e)
      in
      if clipped then
        let e = extent t v in
        let lo = max 0 (fst res) and hi = min e (snd res) in
        (lo, max lo hi)
      else res)

let interval t ~env v = raw_interval t ~env ~clipped:true v

let raw_point t ~env v =
  let lo, hi = raw_interval t ~env ~clipped:false v in
  if hi = lo + 1 then Some lo else None

let guards_ok t ~env =
  Hashtbl.fold
    (fun v _ acc ->
      acc
      &&
      match raw_point t ~env v with
      | None -> true
      | Some x -> 0 <= x && x < extent t v)
    t.defs true

let deps t v =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      if is_live t v then acc := v :: !acc
      else
        match Hashtbl.find_opt t.cons v with
        | None -> ()
        | Some (Divided_into { outer; inner; _ }) ->
            go outer;
            go inner
        | Some (Fused_into { fused; _ }) -> go fused
        | Some (Rotated_into { result; by }) ->
            go result;
            List.iter go by
    end
  in
  go v;
  List.rev !acc

let rec roots_of t v =
  match Hashtbl.find_opt t.defs v with
  | None -> []
  | Some (Root _) -> [ v ]
  | Some (Outer_of { parent; _ }) | Some (Inner_of { parent; _ }) -> roots_of t parent
  | Some (Fused_of { first; second }) -> roots_of t first @ roots_of t second
  | Some (Rotation_of { target }) -> roots_of t target

let derives_from t v ~root = List.mem root (roots_of t v)
