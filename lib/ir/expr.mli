(** Tensor index notation (§2).

    Statements are assignments whose left side is a tensor access and whose
    right side is built from addition, subtraction and multiplication of
    accesses and constants; variables used only on the right denote sum
    reductions over their domain. A scalar is an access with no indices. *)

type access = { tensor : string; indices : Ident.t list }

type t =
  | Access of access
  | Const of float
  | Add of t * t
  | Sub of t * t
  | Mul of t * t

type stmt = {
  lhs : access;
  rhs : t;
  accum : bool;  (** [true] for [+=], [false] for [=] *)
}

val accesses : t -> access list
(** Left-to-right order, with duplicates. *)

val stmt_accesses : stmt -> access list
(** The lhs access followed by the rhs accesses. *)

val tensors : stmt -> string list
(** Distinct tensor names in order of first appearance (lhs first). *)

val index_vars : stmt -> Ident.t list
(** Distinct index variables in order of first appearance, lhs first — the
    default loop order ("left-to-right traversal", §5.1). *)

val reduction_vars : stmt -> Ident.t list
(** Variables appearing in the rhs but not the lhs. *)

val reads_output : stmt -> bool
(** Whether the output tensor also appears on the right-hand side
    (e.g. [A(i,j) = A(i,j) + B(i,j)]). Such statements read the caller's
    value of the output even when they do not accumulate. *)

val free_vars : stmt -> Ident.t list
(** Variables of the lhs. *)

val eval : stmt -> lookup:(access -> int array -> float) -> point:(Ident.t -> int) -> float
(** Evaluate the rhs at one iteration-space point. [lookup] resolves tensor
    reads; [point] gives each index variable's value. *)

val to_string : stmt -> string
val access_to_string : access -> string
val pp_stmt : Stdlib.Format.formatter -> stmt -> unit
