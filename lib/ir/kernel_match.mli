(** Structural matching of statements against substitutable leaf kernels.

    [substitute({ii,ji,ki}, gemm)] is only sound when the statement really
    is a matrix multiply; this module checks the shape of the expression
    and the index-variable sharing pattern, mirroring how Fig. 2 can hand
    the [ii, ji, ki] leaf to [CuBLAS::GeMM]. On success it returns the
    tensors in the order the local kernel expects (output first). *)

val check : Expr.stmt -> kernel:string -> (string list, string) result

val infer : Expr.stmt -> string option
(** The leaf kernel this statement matches, if any — used to substitute
    automatically when the user did not. *)

type binding = {
  kernel : string;  (** the matched {!Distal_tensor.Kernel_registry} entry *)
  subst : (char * Ident.t) list;
      (** pattern letter to statement index variable, bijective *)
  left_assoc : bool;
      (** the rhs product is left-associated, so the registry's operation
          order matches the evaluator's *)
}

val infer_binding : Expr.stmt -> binding option
(** Like {!infer}, but also exposes the letter unification — what the
    staged-plan layer needs to dispatch a scalar leaf to the registry. *)
