(** Bounds analysis (§6.2).

    Given the provenance graph and a partial assignment of live loop
    variables, computes the hyper-rectangle of coordinates a tensor access
    can touch. These rects drive partition creation and the communication
    the runtime performs at each communicate point. The result is a sound
    superset: guard-excluded boundary iterations may be included. *)

val access_rect :
  Provenance.t ->
  env:(Ident.t -> int option) ->
  shape:int array ->
  Expr.access ->
  Distal_tensor.Rect.t
(** Footprint of one access: per index variable, its interval clipped to
    the tensor's extent in that dimension. *)

val tensor_footprint :
  Provenance.t ->
  env:(Ident.t -> int option) ->
  stmt:Expr.stmt ->
  shape:int array ->
  string ->
  Distal_tensor.Rect.t
(** Hull of the footprints of every access of the named tensor in the
    statement. *)

(** {2 Memoized footprints}

    The runtime recomputes the same footprints for every iteration of its
    sequential loops (and for every launch point, when a tensor's accesses
    do not depend on the distributed variables). A memo keys each tensor's
    footprint by the values of only the live variables its accesses can
    depend on ({!Provenance.deps}), so identical rects are computed once
    per execution rather than once per task step. *)

type memo

val memo : Provenance.t -> stmt:Expr.stmt -> memo
(** A fresh memo for one execution of [stmt]. The environments later passed
    to {!footprint} must bind live loop variables only (which is what the
    runtime maintains), and the provenance graph must not change while the
    memo is in use. *)

val footprint :
  memo ->
  env:(Ident.t -> int option) ->
  shape:int array ->
  string ->
  Distal_tensor.Rect.t
(** Same result as {!tensor_footprint}, cached. [shape] must be the same on
    every call for a given tensor. *)
