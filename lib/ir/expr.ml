type access = { tensor : string; indices : Ident.t list }

type t =
  | Access of access
  | Const of float
  | Add of t * t
  | Sub of t * t
  | Mul of t * t

type stmt = { lhs : access; rhs : t; accum : bool }

let rec accesses = function
  | Access a -> [ a ]
  | Const _ -> []
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> accesses a @ accesses b

let stmt_accesses s = s.lhs :: accesses s.rhs

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs
  |> List.rev

let tensors s = dedup (List.map (fun a -> a.tensor) (stmt_accesses s))
let index_vars s = dedup (List.concat_map (fun a -> a.indices) (stmt_accesses s))
let free_vars s = s.lhs.indices

let reduction_vars s =
  List.filter (fun v -> not (List.mem v s.lhs.indices)) (index_vars s)

let reads_output s =
  List.exists (fun a -> String.equal a.tensor s.lhs.tensor) (accesses s.rhs)

let eval s ~lookup ~point =
  let coords a = Array.of_list (List.map point a.indices) in
  let rec go = function
    | Access a -> lookup a (coords a)
    | Const c -> c
    | Add (a, b) -> go a +. go b
    | Sub (a, b) -> go a -. go b
    | Mul (a, b) -> go a *. go b
  in
  go s.rhs

let access_to_string a =
  if a.indices = [] then a.tensor
  else a.tensor ^ "(" ^ String.concat "," a.indices ^ ")"

let rec expr_to_string ?(parent_mul = false) e =
  match e with
  | Access a -> access_to_string a
  | Const c -> Printf.sprintf "%g" c
  | Mul (a, b) ->
      expr_to_string ~parent_mul:true a ^ " * " ^ expr_to_string ~parent_mul:true b
  | Add (a, b) ->
      let s = expr_to_string a ^ " + " ^ expr_to_string b in
      if parent_mul then "(" ^ s ^ ")" else s
  | Sub (a, b) ->
      let s = expr_to_string a ^ " - " ^ expr_to_string ~parent_mul:true b in
      if parent_mul then "(" ^ s ^ ")" else s

let to_string s =
  Printf.sprintf "%s %s %s" (access_to_string s.lhs)
    (if s.accum then "+=" else "=")
    (expr_to_string s.rhs)

let pp_stmt fmt s = Stdlib.Format.pp_print_string fmt (to_string s)
