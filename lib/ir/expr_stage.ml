module Ints = Distal_support.Ints
module Rect = Distal_tensor.Rect
module Dense = Distal_tensor.Dense
module Kreg = Distal_tensor.Kernel_registry
module A1 = Bigarray.Array1

(* Staged leaf evaluation.

   The generic leaf loop walks every point of the leaf box, re-resolves
   each index variable through [Provenance.raw_point], re-checks
   [Provenance.guards_ok], and evaluates the statement tree with a
   hashtable-backed environment — per element. All of that is loop
   structure, not data: for a fixed statement and leaf-variable nest,
   every access coordinate is an affine function of the leaf variables
   (integer base plus nonnegative per-variable coefficients), and every
   guard is either constant across the leaf or the same kind of affine
   form, whose passing set along the innermost contributing variable is a
   prefix [0, hi).

   [plan] runs that analysis once per (provenance, statement, leaf nest):
   it classifies every access index and every consumed (guarded) variable
   as constant / affine / neither, compiles the statement into a closure
   over the instances' bigarray buffers and precomputed slot offsets, and
   turns affine guards into per-level upper clamps. [bind] then
   specializes a plan to one leaf execution — concrete outer environment
   and buffer instances — producing flat loops whose executed points,
   order, and float operations match the generic path exactly;
   non-affine shapes fall back to the caller's oracle ([Expr.eval]).

   On top of the nest, [plan] also asks [Kernel_match] whether the
   statement is one of the registry's leaf kernels with the nest mapping
   one-to-one onto the kernel's iteration space ([kdisp_of] below). When
   it is and the bound leaf is guard-free, [bind] dispatches the whole
   leaf to [Kernel_registry] instead of running the nest — the
   cache-blocked tiled kernels preserve the nest's per-output-element
   operation order, so the dispatch is bit-identical (see DESIGN.md).

   Nothing here mutates shared state: plans are immutable and [bind]'s
   scratch is per-call, so staged execution is safe from concurrent
   domains. *)

type cls = C | A of int array  (* per-leaf-var coefficients, all >= 0 *)

type aguard = { g_coeffs : int array; g_ext : int; g_dmax : int }

type slot = { s_access : Expr.access; s_coeffs : int array array (* dim -> coeffs *) }

(* Registry dispatch decided at plan time: the statement matched a
   kernel pattern and every canonical kernel letter is exactly one nest
   variable (unit coefficient), bijectively. *)
type kdisp = {
  kd_name : string;
  kd_lv : int array;  (* canonical letter index -> leaf var index *)
  kd_slot_lv : int array array;  (* slot -> operand dim -> leaf var index *)
}

type plan = {
  prov : Provenance.t;
  leaf_vars : Ident.t array;
  extents : int array;  (* per leaf var *)
  leaf_index : (Ident.t, int) Hashtbl.t;
  slots : slot array;  (* rhs accesses left-to-right, then lhs last *)
  c_guards : (Ident.t * int) list;  (* consumed vars constant across the leaf *)
  a_guards : (Ident.t * aguard) list;
  kdisp : kdisp option;
  rhs : Dense.buf array -> int array -> float;
}

let slots p = Array.map (fun s -> s.s_access) p.slots

(* Classify a variable's raw point value as a function of the leaf
   variables. [None] = not representable (affine composed through a
   fuse or rotation of a leaf-dependent value). *)
let classify prov ~leaf_index ~nv =
  let memo : (Ident.t, cls option) Hashtbl.t = Hashtbl.create 16 in
  let zeros () = Array.make nv 0 in
  let norm a = if Array.for_all (fun c -> c = 0) a then C else A a in
  let rec go v =
    match Hashtbl.find_opt memo v with
    | Some c -> c
    | None ->
        let c =
          match Hashtbl.find_opt leaf_index v with
          | Some l ->
              let a = zeros () in
              a.(l) <- 1;
              Some (A a)
          | None -> (
              if Provenance.is_live prov v then Some C
              else
                match Provenance.consumption prov v with
                | None -> Some C  (* unknown or unconsumed: resolved at bind *)
                | Some (Provenance.Divided_into { outer; inner; inner_size }) -> (
                    match (go outer, go inner) with
                    | Some C, Some C -> Some C
                    | Some co, Some ci ->
                        let arr = function C -> zeros () | A a -> a in
                        let ao = arr co and ai = arr ci in
                        Some
                          (norm
                             (Array.init nv (fun l ->
                                  (ao.(l) * inner_size) + ai.(l))))
                    | _ -> None)
                | Some (Provenance.Fused_into { fused; _ }) -> (
                    match go fused with Some C -> Some C | _ -> None)
                | Some (Provenance.Rotated_into { result; by }) ->
                    if List.for_all (fun w -> go w = Some C) (result :: by) then
                      Some C
                    else None)
        in
        Hashtbl.replace memo v c;
        c
  in
  go

(* Compile the statement tree into a closure over (per-slot buffers,
   per-slot current offsets). Traversal order matches [Expr.accesses], so
   slot [i] is the i-th access left-to-right; float operations mirror
   [Expr.eval]'s recursion exactly. *)
let compile_rhs e =
  let next =
    let n = ref (-1) in
    fun () ->
      incr n;
      !n
  in
  let rec comp e =
    match e with
    | Expr.Access _ ->
        let i = next () in
        fun (data : Dense.buf array) (offs : int array) ->
          A1.unsafe_get data.(i) offs.(i)
    | Expr.Const c -> fun _ _ -> c
    | Expr.Add (a, b) ->
        let fa = comp a and fb = comp b in
        fun data offs -> fa data offs +. fb data offs
    | Expr.Sub (a, b) ->
        let fa = comp a and fb = comp b in
        fun data offs -> fa data offs -. fb data offs
    | Expr.Mul (a, b) ->
        let fa = comp a and fb = comp b in
        fun data offs -> fa data offs *. fb data offs
  in
  comp e

(* Can this staged leaf be handed to the kernel registry? Required:

   - the statement matches a registry pattern as a left-associated
     product, so the kernel's multiply chain is the evaluator's;
   - every canonical letter's statement variable is affine in exactly
     one nest variable with coefficient 1 (a base offset is fine — it
     folds into the slot offsets at bind), bijectively onto the nest, so
     the kernel's iteration space is the leaf box;
   - the reduction letters appear in the nest in canonical order, so the
     per-output-element accumulation visits reduction points in the
     order the kernel replays.

   Output letters may permute freely (different output elements' chains
   are independent), which is what lets one registry kernel serve many
   schedules of the same statement. *)
let kdisp_of (stmt : Expr.stmt) ~cls ~nv =
  match Kernel_match.infer_binding stmt with
  | None -> None
  | Some b ->
      if not b.Kernel_match.left_assoc then None
      else
        let e =
          List.find
            (fun (e : Kreg.entry) -> String.equal e.name b.kernel)
            Kreg.entries
        in
        let canon = Kreg.canonical_letters e in
        let nl = String.length canon in
        if nl <> nv then None
        else
          let lv_of v =
            match cls v with
            | Some (A coeffs) ->
                let l = ref (-1) and ok = ref true in
                Array.iteri
                  (fun i c ->
                    if c <> 0 then
                      if c = 1 && !l < 0 then l := i else ok := false)
                  coeffs;
                if !ok && !l >= 0 then Some !l else None
            | _ -> None
          in
          let letter_lv = Array.make nl (-1) in
          let ok = ref true in
          String.iteri
            (fun ci ch ->
              match List.assoc_opt ch b.subst with
              | None -> ok := false
              | Some v -> (
                  match lv_of v with
                  | Some l -> letter_lv.(ci) <- l
                  | None -> ok := false))
            canon;
          if !ok then begin
            let seen = Array.make nv false in
            Array.iter
              (fun l ->
                if l < 0 || seen.(l) then ok := false else seen.(l) <- true)
              letter_lv
          end;
          if !ok then begin
            let last = ref (-1) in
            String.iteri
              (fun ci ch ->
                if not (String.contains e.lhs ch) then begin
                  if letter_lv.(ci) <= !last then ok := false;
                  last := letter_lv.(ci)
                end)
              canon
          end;
          if not !ok then None
          else
            let lv_of_letter ch = letter_lv.(String.index canon ch) in
            let slot_lv s =
              Array.init (String.length s) (fun d -> lv_of_letter s.[d])
            in
            let kd_slot_lv =
              Array.of_list (List.map slot_lv (e.factors @ [ e.lhs ]))
            in
            Some { kd_name = b.kernel; kd_lv = letter_lv; kd_slot_lv }

let plan prov ~(stmt : Expr.stmt) ~leaf_vars =
  let leaf_vars = Array.of_list leaf_vars in
  let nv = Array.length leaf_vars in
  let leaf_index = Hashtbl.create (max 1 nv) in
  Array.iteri (fun i v -> Hashtbl.replace leaf_index v i) leaf_vars;
  let cls = classify prov ~leaf_index ~nv in
  let exception Bail in
  try
    let slot_of (a : Expr.access) =
      {
        s_access = a;
        s_coeffs =
          Array.of_list
            (List.map
               (fun v ->
                 match cls v with
                 | Some C -> Array.make nv 0
                 | Some (A c) -> c
                 | None -> raise Bail)
               a.indices);
      }
    in
    let slots =
      Array.of_list (List.map slot_of (Expr.accesses stmt.rhs @ [ stmt.lhs ]))
    in
    (* Guard set: exactly the consumed variables ([Provenance.guards_ok]
       auto-passes live ones). Sorted for a deterministic plan layout. *)
    let c_guards = ref [] and a_guards = ref [] in
    List.iter
      (fun v ->
        let ext = Provenance.extent prov v in
        match cls v with
        | Some C -> c_guards := (v, ext) :: !c_guards
        | Some (A coeffs) ->
            let dmax = ref (-1) in
            Array.iteri (fun l c -> if c > 0 then dmax := l) coeffs;
            a_guards :=
              (v, { g_coeffs = coeffs; g_ext = ext; g_dmax = !dmax })
              :: !a_guards
        | None -> raise Bail)
      (List.sort compare (Provenance.consumed prov));
    Some
      {
        prov;
        leaf_vars;
        extents = Array.map (Provenance.extent prov) leaf_vars;
        leaf_index;
        slots;
        c_guards = !c_guards;
        a_guards = !a_guards;
        kdisp = kdisp_of stmt ~cls ~nv;
        rhs = compile_rhs stmt.rhs;
      }
  with Bail -> None

type bound_guard = { coeffs : int array; ext : int; mutable curr : int }

let bind ?(kernels = Kreg.Off) p ~env ~(insts : (Rect.t * Dense.t) array) =
  let nv = Array.length p.leaf_vars in
  let naccs = Array.length p.slots in
  if Array.length insts <> naccs then invalid_arg "Expr_stage.bind: bad insts";
  let env0 v = if Hashtbl.mem p.leaf_index v then Some 0 else env v in
  let point0 v = Provenance.raw_point p.prov ~env:env0 v in
  let exception Bail in
  try
    (* Leaf-constant guards: decided here, once. A failing one excludes
       every point, so the bound closure is a no-op (not a bail: the
       generic path would execute nothing too). *)
    let c_pass =
      List.for_all
        (fun (v, ext) ->
          match point0 v with None -> true | Some x -> 0 <= x && x < ext)
        p.c_guards
    in
    (* Affine guards: value over the leaf is base + sum(coeff * x). Bases
       must be known, nonnegative points here. *)
    let guards =
      List.map
        (fun (v, g) ->
          match point0 v with
          | Some base when base >= 0 ->
              (g, { coeffs = g.g_coeffs; ext = g.g_ext; curr = base })
          | _ -> raise Bail)
        p.a_guards
    in
    let select f =
      Array.init nv (fun l ->
          Array.of_list
            (List.filter_map
               (fun (g, b) -> if f g l then Some b else None)
               guards))
    in
    let clamps = select (fun g l -> g.g_dmax = l) in
    let bumps = select (fun g l -> g.g_coeffs.(l) > 0 && g.g_dmax > l) in
    (* Per-slot buffers, base offsets, and per-level linear strides. *)
    let data = Array.map (fun (_, b) -> Dense.unsafe_data b) insts in
    let offs = Array.make naccs 0 in
    let str = Array.make_matrix naccs nv 0 in
    Array.iteri
      (fun i s ->
        let r = fst insts.(i) in
        let dstr = Ints.row_major_strides (Dense.shape (snd insts.(i))) in
        let off = ref 0 in
        List.iteri
          (fun d v ->
            let x0 = match point0 v with Some x -> x | None -> raise Bail in
            let local = x0 - (r : Rect.t).lo.(d) in
            if local < 0 then raise Bail;
            off := !off + (local * dstr.(d));
            for l = 0 to nv - 1 do
              str.(i).(l) <- str.(i).(l) + (s.s_coeffs.(d).(l) * dstr.(d))
            done)
          s.s_access.indices;
        offs.(i) <- !off)
      p.slots;
    let oslot = naccs - 1 in
    (* Registry dispatch: only when the whole leaf box executes — no
       empty extents and every affine guard vacuously true over the box,
       so the nest's clamps never bind. The clamp bound at a guard's
       innermost level is >= the extent exactly when the guard's worst
       point stays below its bound, which is the check below. *)
    let dispatch =
      match (p.kdisp, kernels) with
      | Some kd, (Kreg.Naive | Kreg.Tiled) ->
          let nonempty = Array.for_all (fun e -> e > 0) p.extents in
          let vacuous =
            List.for_all
              (fun (_, (b : bound_guard)) ->
                let worst = ref b.curr in
                Array.iteri
                  (fun l c -> worst := !worst + (c * (p.extents.(l) - 1)))
                  b.coeffs;
                !worst <= b.ext - 1)
              guards
          in
          if nonempty && vacuous then Some kd else None
      | _ -> None
    in
    match dispatch with
    | Some kd ->
        let dims = Array.map (fun l -> p.extents.(l)) kd.kd_lv in
        let view slot lvs =
          {
            Kreg.buf = data.(slot);
            off = offs.(slot);
            st = Array.map (fun l -> str.(slot).(l)) lvs;
          }
        in
        let views =
          Array.init naccs (fun i ->
              if i = 0 then view oslot kd.kd_slot_lv.(oslot)
              else view (i - 1) kd.kd_slot_lv.(i - 1))
        in
        Some
          (fun () ->
            if c_pass then
              Kreg.run_views kernels ~kernel:kd.kd_name ~dims views)
    | None ->
        let rhs = p.rhs in
        let body () =
          let v = rhs data offs in
          let od = data.(oslot) in
          let o = offs.(oslot) in
          A1.unsafe_set od o (A1.unsafe_get od o +. v)
        in
        let rec nest l =
          let hi = ref p.extents.(l) in
          Array.iter
            (fun g ->
              let room = g.ext - 1 - g.curr in
              let h = if room < 0 then 0 else (room / g.coeffs.(l)) + 1 in
              if h < !hi then hi := h)
            clamps.(l);
          let hi = !hi in
          if l = nv - 1 then begin
            for _ = 1 to hi do
              body ();
              for a = 0 to naccs - 1 do
                offs.(a) <- offs.(a) + str.(a).(l)
              done
            done;
            for a = 0 to naccs - 1 do
              offs.(a) <- offs.(a) - (hi * str.(a).(l))
            done
          end
          else begin
            for _ = 1 to hi do
              nest (l + 1);
              for a = 0 to naccs - 1 do
                offs.(a) <- offs.(a) + str.(a).(l)
              done;
              Array.iter (fun g -> g.curr <- g.curr + g.coeffs.(l)) bumps.(l)
            done;
            for a = 0 to naccs - 1 do
              offs.(a) <- offs.(a) - (hi * str.(a).(l))
            done;
            Array.iter (fun g -> g.curr <- g.curr - (hi * g.coeffs.(l))) bumps.(l)
          end
        in
        Some
          (fun () ->
            if c_pass then if nv = 0 then body () else nest 0)
  with Bail -> None

let dispatches p = Option.map (fun kd -> kd.kd_name) p.kdisp

let run ?kernels p ~env ~insts =
  match bind ?kernels p ~env ~insts with
  | Some f ->
      f ();
      true
  | None -> false
