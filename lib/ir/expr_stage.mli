(** Staged leaf evaluation: compile a statement's leaf loop nest once,
    run it as flat loops over precomputed linear strides.

    The generic leaf path ([Ints.iter_box] + {!Expr.eval}) re-derives
    every access coordinate through {!Provenance.raw_point} and re-checks
    {!Provenance.guards_ok} for each iteration-space point. For a fixed
    statement and leaf-variable nest those are affine functions of the
    leaf variables, so a plan precomputes per-access linear strides and
    turns boundary guards into loop-bound clamps. The staged nest
    executes exactly the points the generic path executes, in the same
    order, with the same float-operation tree — results are bit-identical
    — and falls back to the generic oracle whenever a shape it cannot
    stage appears (fuses or rotations of leaf-dependent variables).

    When the statement matches a registry kernel pattern with the nest
    mapping one-to-one onto the kernel's iteration space, a plan also
    records a registry dispatch; a [kernels] mode of
    {!Distal_tensor.Kernel_registry.Naive} or [Tiled] then hands
    guard-free leaves to the registry instead of running the nest. The
    tiled kernels preserve the nest's per-output-element accumulation
    order, so tiled dispatch is bit-identical to the staged nest (see
    DESIGN.md "Leaf kernel registry").

    Plans are immutable and runs use only per-call scratch, so one plan
    may be used from several domains concurrently. *)

type plan

val plan : Provenance.t -> stmt:Expr.stmt -> leaf_vars:Ident.t list -> plan option
(** Stage [stmt] for a leaf nest over [leaf_vars] (outermost first, the
    [Taskir.Scalar_loops] order). [None] when some access index or guard
    variable is not an affine function of the leaf variables — the caller
    must keep using the generic path. *)

val slots : plan -> Expr.access array
(** The buffer slots a run expects: the statement's right-hand-side
    accesses left-to-right, then the left-hand side last. *)

val dispatches : plan -> string option
(** The registry kernel this plan's leaves dispatch to when a [kernels]
    mode enables the registry and the bound leaf is guard-free. *)

val run :
  ?kernels:Distal_tensor.Kernel_registry.mode ->
  plan ->
  env:(Ident.t -> int option) ->
  insts:(Distal_tensor.Rect.t * Distal_tensor.Dense.t) array ->
  bool
(** Execute one leaf: [insts.(i)] is the (footprint rect, local buffer)
    instance backing {!slots}[(i)]; [env] binds the launch and sequential
    variables (leaf variables must be unbound). Accumulates into the last
    slot like the generic path ([Dense.add_at] per point). [kernels]
    (default [Off]) enables registry dispatch for leaves that qualify.
    Returns [false] without touching any buffer when the concrete binding
    cannot be staged (the caller runs the oracle); [true] otherwise —
    including when a leaf-constant guard excludes every point. *)
