module Machine = Distal_machine.Machine
module Cost_model = Distal_machine.Cost_model
module Dense = Distal_tensor.Dense
module Kernel_registry = Distal_tensor.Kernel_registry
module Rect = Distal_tensor.Rect
module Expr = Distal_ir.Expr
module Distnot = Distal_ir.Distnot
module Schedule = Distal_ir.Schedule
module Cin = Distal_ir.Cin
module Lower = Distal_ir.Lower
module Taskir = Distal_ir.Taskir
module Einsum_parser = Distal_ir.Einsum_parser
module Stats = Distal_runtime.Stats
module Exec = Distal_runtime.Exec
module Rng = Distal_support.Rng
module Obs = Distal_obs
module Fault = Distal_fault.Fault

(* Wall-clock span around one compiler phase, when a profile is given. *)
let phase profile name f =
  Obs.Span.wall (Option.map Obs.Profile.sink profile) ~name ~cat:"compile" f

type tensor = { name : string; shape : int array; dist : Distnot.t }

let tensor name shape ~dist = { name; shape; dist = Distnot.parse_exn dist }
let tensor_d name shape dist = { name; shape; dist }

type problem = {
  machine : Machine.t;
  stmt : Expr.stmt;
  tensors : tensor list;
  virtual_grid : int array option;
}

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let shapes_of tensors = List.map (fun t -> (t.name, t.shape)) tensors

let problem ?profile ?virtual_grid ~machine ~stmt ~tensors () =
  let dist_machine =
    match virtual_grid with
    | None -> machine
    | Some dims ->
        Machine.grid ~kind:(Machine.kind machine)
          ~mem_per_proc:(Machine.mem_per_proc_bytes machine) dims
  in
  let* stmt = phase profile "parse" (fun () -> Einsum_parser.parse stmt) in
  let* _ =
    phase profile "typecheck" (fun () ->
        Distal_ir.Typecheck.check stmt ~shapes:(shapes_of tensors))
  in
  let* () =
    List.fold_left
      (fun acc tn ->
        let* () = acc in
        if List.exists (fun t -> String.equal t.name tn) tensors then Ok ()
        else errf "statement uses tensor %s but it was not declared" tn)
      (Ok ()) (Expr.tensors stmt)
  in
  let* () =
    List.fold_left
      (fun acc t ->
        let* () = acc in
        match
          Distnot.validate t.dist ~tensor_rank:(Array.length t.shape)
            ~machine:dist_machine
        with
        | Ok () -> Ok ()
        | Error e -> errf "tensor %s: %s" t.name e)
      (Ok ()) tensors
  in
  Ok { machine; stmt; tensors; virtual_grid }

let or_invalid = function Ok x -> x | Error e -> invalid_arg e

let problem_exn ?profile ?virtual_grid ~machine ~stmt ~tensors () =
  or_invalid (problem ?profile ?virtual_grid ~machine ~stmt ~tensors ())

(* Lazily compiled executable plans, keyed on everything that changes the
   compiled artefact (coalesce setting, cost-model digest, fault plan).
   Lives on the plan itself so every consumer of the same [plan] value —
   repeated [run] calls, the serving layer's plan cache — shares the
   compiled artefacts. Compilation is single-flight under the mutex. *)
type exec_cache = {
  ec_m : Mutex.t;
  mutable ec_entries : (string * Exec.eplan) list;
}

let new_exec_cache () = { ec_m = Mutex.create (); ec_entries = [] }

type plan = {
  problem : problem;
  cin : Cin.t;
  program : Taskir.program;
  exec_cache : exec_cache;
}

let compile ?profile problem ~schedule =
  let shapes = shapes_of problem.tensors in
  let* cin = phase profile "cin" (fun () -> Cin.of_stmt problem.stmt ~shapes) in
  let* cin =
    phase profile "schedule rewrites" (fun () -> Schedule.apply_all cin schedule)
  in
  let* program = phase profile "lower" (fun () -> Lower.lower cin ~shapes) in
  Ok { problem; cin; program; exec_cache = new_exec_cache () }

let compile_exn ?profile problem ~schedule = or_invalid (compile ?profile problem ~schedule)

let compile_script ?profile problem ~schedule =
  let* cmds = phase profile "parse schedule" (fun () -> Schedule.parse schedule) in
  compile ?profile problem ~schedule:cmds

let compile_script_exn ?profile problem ~schedule =
  or_invalid (compile_script ?profile problem ~schedule)

let default_cost machine =
  match Machine.kind machine with
  | Machine.Cpu -> Cost_model.cpu_distal
  | Machine.Gpu -> Cost_model.gpu_distal

let spec ?cost plan =
  let machine = plan.problem.machine in
  {
    Exec.machine;
    cost = (match cost with Some c -> c | None -> default_cost machine);
    program = plan.program;
    dists = List.map (fun t -> (t.name, t.dist)) plan.problem.tensors;
    virtual_grid = plan.problem.virtual_grid;
  }

let eplan ?(coalesce = true) ?cost ?faults plan =
  let sp = spec ?cost plan in
  let key =
    Printf.sprintf "%b|%s|%s" coalesce
      (Cost_model.digest sp.Exec.cost)
      (match faults with Some f -> Fault.to_string f | None -> "-")
  in
  let c = plan.exec_cache in
  Mutex.lock c.ec_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.ec_m) @@ fun () ->
  match List.assoc_opt key c.ec_entries with
  | Some ep -> Ok ep
  | None ->
      let* ep = Exec.plan ~coalesce ?faults sp in
      c.ec_entries <- (key, ep) :: c.ec_entries;
      Ok ep

let eplan_exn ?coalesce ?cost ?faults plan =
  or_invalid (eplan ?coalesce ?cost ?faults plan)

let run ?mode ?coalesce ?domains ?staged ?kernels ?cost ?trace ?profile ?faults
    ?reuse plan ~data =
  let want_reuse =
    match reuse with
    | Some b -> b
    | None -> Distal_support.Env.plan_reuse ()
  in
  let full = match mode with None | Some Exec.Full -> true | _ -> false in
  (* The reuse path serves exactly the calls a compiled plan can satisfy:
     Full-mode data runs with no tracing or profiling. Everything else —
     Model mode, copy traces, per-run profiles — re-derives the
     simulation, which is the thing being asked for. *)
  if full && want_reuse && Option.is_none trace && Option.is_none profile then
    let* ep = eplan ?coalesce ?cost ?faults plan in
    Exec.run_plan ?domains ?staged ?kernels ep ~data
  else
    Exec.execute ?mode ?coalesce ?domains ?staged ?kernels ?trace ?profile
      ?faults (spec ?cost plan) ~data

let run_exn ?mode ?coalesce ?domains ?staged ?kernels ?cost ?trace ?profile
    ?faults ?reuse plan ~data =
  or_invalid
    (run ?mode ?coalesce ?domains ?staged ?kernels ?cost ?trace ?profile
       ?faults ?reuse plan ~data)

let estimate ?cost ?profile plan =
  match Exec.execute ~mode:Exec.Model ?profile (spec ?cost plan) ~data:[] with
  | Ok r -> r.Exec.stats
  | Error e -> invalid_arg ("Api.estimate: " ^ e)

let resilience ?cost ~faults plan =
  let profile = Obs.Profile.create () in
  Obs.Profile.set_next_run_name profile "fault-free";
  let* baseline =
    Exec.execute ~mode:Exec.Model ~profile (spec ?cost plan) ~data:[]
  in
  Obs.Profile.set_next_run_name profile "faulted";
  let* faulted =
    Exec.execute ~mode:Exec.Model ~profile ~faults (spec ?cost plan) ~data:[]
  in
  match Obs.Profile.runs profile with
  | [ b; f ] ->
      Ok
        ( baseline.Exec.stats,
          faulted.Exec.stats,
          Obs.Report.resilience_report ~baseline:b ~faulty:f )
  | runs -> errf "Api.resilience: expected 2 profile runs, got %d" (List.length runs)

let resilience_exn ?cost ~faults plan = or_invalid (resilience ?cost ~faults plan)

let random_inputs ?(seed = 42) plan =
  let rng = Rng.create seed in
  let stmt = plan.problem.stmt in
  let out_name = stmt.lhs.tensor in
  (* The output needs input data when it is accumulated into, or when it is
     read on the right-hand side (self-referencing statements). *)
  let out_needs_data = stmt.accum || Expr.reads_output stmt in
  List.filter_map
    (fun t ->
      if String.equal t.name out_name && not out_needs_data then None
      else Some (t.name, Dense.random rng t.shape))
    plan.problem.tensors

let validate ?(seed = 42) ?(tol = 1e-7) plan =
  let data = random_inputs ~seed plan in
  let* result = run plan ~data in
  let expected =
    Exec.serial_reference plan.problem.stmt ~shapes:(shapes_of plan.problem.tensors)
      ~data
  in
  match result.Exec.output with
  | None -> Error "validate: execution produced no output"
  | Some got ->
      if Dense.approx_equal ~tol got expected then Ok ()
      else
        errf "distributed result differs from serial reference (max |diff| = %g)"
          (Dense.max_abs_diff got expected)

let describe plan =
  Printf.sprintf "concrete index notation:\n  %s\n\ngenerated program:\n%s"
    (Cin.to_string plan.cin)
    (Taskir.to_string plan.program)

let input_bytes plan =
  List.fold_left
    (fun acc t ->
      if List.mem t.name (Expr.tensors plan.problem.stmt) then
        acc +. (8.0 *. float_of_int (Distal_support.Ints.prod t.shape))
      else acc)
    0.0 plan.problem.tensors


(* {2 Requests: the serving layer's unit of work}

   A request is the whole compilation question in one immutable value —
   statement, schedule script, machine, virtual grid and tensor
   declarations — so a session layer (lib/serve) can key a plan cache on
   it without parsing anything first. *)

type request = {
  req_machine : Machine.t;
  req_virtual_grid : int array option;
  req_tensors : tensor list;
  req_stmt : string;
  req_schedule : string;
}

let request ?virtual_grid ~machine ~stmt ~schedule ~tensors () =
  {
    req_machine = machine;
    req_virtual_grid = virtual_grid;
    req_tensors = tensors;
    req_stmt = stmt;
    req_schedule = schedule;
  }

(* The canonical fingerprint. Built purely from the declarative request
   fields — never from compiler output — so a cache lookup costs a few
   string writes and an MD5, not a parse. Fields are length-delimited
   (every string is preceded by its byte length), which makes the
   encoding injective: no two distinct requests render to the same
   canonical string. *)
let request_fingerprint r =
  let buf = Buffer.create 256 in
  let str s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  let ints label a =
    str label;
    Buffer.add_string buf (String.concat "," (Array.to_list (Array.map string_of_int a)));
    Buffer.add_char buf ';'
  in
  let m = r.req_machine in
  ints "dims" m.Machine.dims;
  ints "nodes" m.Machine.node_factors;
  str (match m.Machine.kind with Machine.Cpu -> "cpu" | Machine.Gpu -> "gpu");
  str (Printf.sprintf "%h" m.Machine.mem_per_proc);
  (match r.req_virtual_grid with None -> str "none" | Some g -> ints "vgrid" g);
  str r.req_stmt;
  str r.req_schedule;
  List.iter
    (fun t ->
      str t.name;
      ints "shape" t.shape;
      str (Distnot.to_string t.dist))
    r.req_tensors;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let compile_request ?profile r =
  let* p =
    problem ?profile ?virtual_grid:r.req_virtual_grid ~machine:r.req_machine
      ~stmt:r.req_stmt ~tensors:r.req_tensors ()
  in
  compile_script ?profile p ~schedule:r.req_schedule

let compile_request_exn ?profile r = or_invalid (compile_request ?profile r)

type pipeline = { machine : Machine.t; tensors : tensor list; stages : plan list }

let pipeline ~machine ~tensors ~stages =
  let* stages =
    List.fold_left
      (fun acc (stmt, schedule) ->
        let* acc = acc in
        let* p = problem ~machine ~stmt ~tensors () in
        let* plan = compile p ~schedule in
        Ok (plan :: acc))
      (Ok []) stages
  in
  Ok { machine; tensors; stages = List.rev stages }

let pipeline_script ~machine ~tensors ~stages =
  let* stages =
    List.fold_left
      (fun acc (stmt, script) ->
        let* acc = acc in
        let* cmds = Schedule.parse script in
        Ok ((stmt, cmds) :: acc))
      (Ok []) stages
  in
  pipeline ~machine ~tensors ~stages:(List.rev stages)

let stage_output (plan : plan) = plan.problem.stmt.Expr.lhs.tensor

let run_pipeline ?cost pl ~data =
  let* outputs, stats =
    List.fold_left
      (fun acc plan ->
        let* outputs, stats = acc in
        let data = outputs @ data in
        let* r = run ?cost plan ~data in
        match r.Exec.output with
        | None -> Error "pipeline stage produced no output"
        | Some out ->
            Ok
              ( (stage_output plan, out) :: outputs,
                Stats.add stats r.Exec.stats ))
      (Ok ([], Stats.create ()))
      pl.stages
  in
  Ok (List.rev outputs, stats)

let estimate_pipeline ?cost pl =
  List.fold_left (fun acc plan -> Stats.add acc (estimate ?cost plan)) (Stats.create ())
    pl.stages

let validate_pipeline ?(seed = 42) ?(tol = 1e-7) pl =
  (* Random data for every tensor no stage produces. *)
  let produced = List.map stage_output pl.stages in
  let rng = Rng.create seed in
  let data =
    List.filter_map
      (fun t ->
        if List.mem t.name produced then None
        else Some (t.name, Dense.random rng t.shape))
      pl.tensors
  in
  let* outputs, _ = run_pipeline pl ~data in
  let shapes = shapes_of pl.tensors in
  let* _ =
    List.fold_left
      (fun acc plan ->
        let* expected_env = acc in
        let stmt = plan.problem.stmt in
        let expected = Exec.serial_reference stmt ~shapes ~data:(expected_env @ data) in
        let name = stage_output plan in
        let got = List.assoc name outputs in
        if Dense.approx_equal ~tol got expected then
          Ok ((name, expected) :: expected_env)
        else
          errf "pipeline stage %s differs from serial reference (max |diff| = %g)"
            name
            (Dense.max_abs_diff got expected))
      (Ok []) pl.stages
  in
  Ok ()

let redistribute ~machine ?cost ?profile ~shape ~src ~dst () =
  let cost = match cost with Some c -> c | None -> default_cost machine in
  Exec.redistribute ?profile machine cost ~shape ~src ~dst
