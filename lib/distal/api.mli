(** DISTAL's user-facing API.

    Mirrors the C++ surface of Fig. 2: declare a machine, declare tensors
    with a format that includes their distribution, write the computation
    in tensor index notation, schedule it, and run — here on the simulated
    runtime (see DESIGN.md).

    {[
      let m = Machine.grid [| 2; 2 |] in
      let a = Api.tensor "A" [| n; n |] ~dist:"[x,y] -> [x,y]" in
      let b = Api.tensor "B" [| n; n |] ~dist:"[x,y] -> [x,y]" in
      let c = Api.tensor "C" [| n; n |] ~dist:"[x,y] -> [x,y]" in
      let p = Api.problem_exn ~machine:m ~stmt:"A(i,j) = B(i,k) * C(k,j)"
                ~tensors:[ a; b; c ] in
      let plan = Api.compile_script_exn p ~schedule:"
        distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]);
        split(k, ko, ki, 4); reorder(ko, ii, ji, ki);
        communicate(A, jo); communicate({B,C}, ko);
        substitute({ii,ji,ki}, gemm)" in
      let result = Api.run_exn plan ~data
    ]} *)

module Machine = Distal_machine.Machine
module Cost_model = Distal_machine.Cost_model
module Dense = Distal_tensor.Dense
module Kernel_registry = Distal_tensor.Kernel_registry
module Rect = Distal_tensor.Rect
module Expr = Distal_ir.Expr
module Distnot = Distal_ir.Distnot
module Schedule = Distal_ir.Schedule
module Stats = Distal_runtime.Stats
module Exec = Distal_runtime.Exec
module Obs = Distal_obs
module Fault = Distal_fault.Fault

type tensor = { name : string; shape : int array; dist : Distnot.t }

val tensor : string -> int array -> dist:string -> tensor
(** Declare a tensor with a distribution in tensor distribution notation
    (the format language of §3.2). @raise Invalid_argument on a parse
    error. *)

val tensor_d : string -> int array -> Distnot.t -> tensor

type problem = {
  machine : Machine.t;
  stmt : Expr.stmt;
  tensors : tensor list;
  virtual_grid : int array option;
      (** over-decomposition: distributions/launches target this grid and
          fold onto the machine (see {!Exec.spec}) *)
}

val problem :
  ?profile:Obs.Profile.t ->
  ?virtual_grid:int array ->
  machine:Machine.t ->
  stmt:string ->
  tensors:tensor list ->
  unit ->
  (problem, string) result
(** Parse and typecheck a tensor index notation statement against the
    declared tensors. With [profile], the parse and typecheck phases are
    recorded as wall-clock spans on the profile's compiler track. *)

val problem_exn :
  ?profile:Obs.Profile.t -> ?virtual_grid:int array -> machine:Machine.t ->
  stmt:string -> tensors:tensor list -> unit -> problem

type exec_cache
(** Per-plan cache of compiled executable plans ({!Exec.eplan}), keyed on
    the (coalesce, cost model, fault plan) options. Created empty by
    {!compile}; filled lazily by {!eplan} / the {!run} reuse path. *)

val new_exec_cache : unit -> exec_cache

type plan = {
  problem : problem;
  cin : Distal_ir.Cin.t;  (** the scheduled concrete index notation *)
  program : Distal_ir.Taskir.program;  (** the lowered task IR *)
  exec_cache : exec_cache;
}

val compile :
  ?profile:Obs.Profile.t -> problem -> schedule:Schedule.t list -> (plan, string) result
(** With [profile], each compiler phase (concrete index notation
    construction, schedule rewrites, lowering) is recorded as a wall-clock
    span on the profile's compiler track. *)

val compile_exn : ?profile:Obs.Profile.t -> problem -> schedule:Schedule.t list -> plan

val compile_script :
  ?profile:Obs.Profile.t -> problem -> schedule:string -> (plan, string) result
(** Schedule given as a script (see {!Schedule.parse}). *)

val compile_script_exn : ?profile:Obs.Profile.t -> problem -> schedule:string -> plan

val default_cost : Machine.t -> Cost_model.t
(** {!Cost_model.cpu_distal} or {!Cost_model.gpu_distal} by processor
    kind. *)

val eplan :
  ?coalesce:bool ->
  ?cost:Cost_model.t ->
  ?faults:Fault.t ->
  plan ->
  (Exec.eplan, string) result
(** The compiled executable plan for the given options, compiled on
    first use and cached on the plan's {!exec_cache} (single-flight).
    Repeated {!run} calls on one plan — and serving-layer hits on a
    cached plan — replan nothing. *)

val eplan_exn :
  ?coalesce:bool -> ?cost:Cost_model.t -> ?faults:Fault.t -> plan -> Exec.eplan

val run :
  ?mode:Exec.mode ->
  ?coalesce:bool ->
  ?domains:int ->
  ?staged:bool ->
  ?kernels:Kernel_registry.mode ->
  ?cost:Cost_model.t ->
  ?trace:Exec.trace_event list ref ->
  ?profile:Obs.Profile.t ->
  ?faults:Fault.t ->
  ?reuse:bool ->
  plan ->
  data:(string * Dense.t) list ->
  (Exec.result, string) result
(** With [profile], the execution registers as a run of the profile and
    emits spans, copy events, metrics and a step timeline; [coalesce]
    (default [true]) controls the communication-planning pass; [domains]
    the host domain-pool size, [staged] the compiled-leaf fast path and
    [kernels] the leaf kernel registry mode (default [DISTAL_KERNELS],
    else tiled) — none affects traces, stats or event streams; [faults]
    injects a deterministic fault plan whose kills are recovered by
    checkpoint/replay, bit-identically (see {!Exec.execute}).

    [reuse] (default [DISTAL_PLAN_REUSE], on unless set to 0) routes
    Full-mode calls with no [trace]/[profile] through the plan's cached
    executable plan ({!eplan} + {!Exec.run_plan}): plan once, then run
    each call against its data with pooled buffers. Outputs are
    byte-identical to the replanning path; the returned stats are the
    plan-time modeled stats. Model mode, traced and profiled runs always
    take the replanning path. *)

val run_exn :
  ?mode:Exec.mode -> ?coalesce:bool -> ?domains:int -> ?staged:bool ->
  ?kernels:Kernel_registry.mode ->
  ?cost:Cost_model.t -> ?trace:Exec.trace_event list ref ->
  ?profile:Obs.Profile.t -> ?faults:Fault.t -> ?reuse:bool -> plan ->
  data:(string * Dense.t) list -> Exec.result

val estimate : ?cost:Cost_model.t -> ?profile:Obs.Profile.t -> plan -> Stats.t
(** Performance-model-only execution ({!Exec.Model} mode). *)

val resilience :
  ?cost:Cost_model.t ->
  faults:Fault.t ->
  plan ->
  (Stats.t * Stats.t * string, string) result
(** Model-mode the plan twice — fault-free, then under [faults] — and
    return both stats plus {!Obs.Report.resilience_report}'s side-by-side
    rendering of the recovery overhead. *)

val resilience_exn :
  ?cost:Cost_model.t -> faults:Fault.t -> plan -> Stats.t * Stats.t * string

val random_inputs : ?seed:int -> plan -> (string * Dense.t) list
(** Deterministic random data for every tensor of the plan (including the
    output, for [+=] statements). *)

val validate : ?seed:int -> ?tol:float -> plan -> (unit, string) result
(** Run the plan on random data and compare against the serial reference
    interpreter — the end-to-end check that scheduling only affects
    performance, never results (§3.3). *)

val describe : plan -> string
(** The scheduled concrete index notation and the generated task-IR
    pseudo-code. *)

val input_bytes : plan -> float
(** Total payload bytes of the statement's tensors (for GB/s reporting). *)


(** {2 Requests: the serving layer's unit of work}

    A request bundles everything that determines a compiled plan —
    statement, schedule script, machine, virtual grid, tensor
    declarations — as one immutable value, so a session layer
    (lib/serve) can cache compilation keyed on {!request_fingerprint}
    without re-parsing anything on a hit. *)

type request = {
  req_machine : Machine.t;
  req_virtual_grid : int array option;
  req_tensors : tensor list;
  req_stmt : string;  (** tensor index notation, unparsed *)
  req_schedule : string;  (** schedule script, unparsed *)
}

val request :
  ?virtual_grid:int array ->
  machine:Machine.t ->
  stmt:string ->
  schedule:string ->
  tensors:tensor list ->
  unit ->
  request

val request_fingerprint : request -> string
(** Canonical fingerprint of expr x schedule x machine x virtual grid x
    tensor distributions: an MD5 hex digest of an injective
    length-delimited encoding of the declarative request fields. Equal
    requests always collide; distinct requests differ (up to MD5).
    Computed without parsing, so cache hits cost no compiler work. *)

val compile_request : ?profile:Obs.Profile.t -> request -> (plan, string) result
(** [problem] + [compile_script] in one step: parse, typecheck and
    compile the request. The session layer's miss path. *)

val compile_request_exn : ?profile:Obs.Profile.t -> request -> plan

(** {2 Multi-statement pipelines}

    Kernels run in the context of larger programs (§1): a pipeline chains
    statements over a shared set of declared tensors, each stage with its
    own schedule, with earlier stages' outputs feeding later stages. The
    workspace split of {!Distal_ir.Precompute} produces exactly such
    pipelines. *)

type pipeline = { machine : Machine.t; tensors : tensor list; stages : plan list }

val pipeline :
  machine:Machine.t ->
  tensors:tensor list ->
  stages:(string * Schedule.t list) list ->
  (pipeline, string) result
(** Each stage is a statement and its schedule. A stage may read tensors
    produced by earlier stages. *)

val pipeline_script :
  machine:Machine.t ->
  tensors:tensor list ->
  stages:(string * string) list ->
  (pipeline, string) result

val run_pipeline :
  ?cost:Cost_model.t ->
  pipeline ->
  data:(string * Dense.t) list ->
  ((string * Dense.t) list * Stats.t, string) result
(** Execute all stages in order; returns every stage's output (by tensor
    name) and the summed statistics. *)

val estimate_pipeline : ?cost:Cost_model.t -> pipeline -> Stats.t

val validate_pipeline : ?seed:int -> ?tol:float -> pipeline -> (unit, string) result
(** Run the pipeline on random data and compare every stage output against
    the serial reference chain. *)

val redistribute :
  machine:Machine.t ->
  ?cost:Cost_model.t ->
  ?profile:Obs.Profile.t ->
  shape:int array ->
  src:Distnot.t ->
  dst:Distnot.t ->
  unit ->
  Stats.t
(** Re-exported {!Exec.redistribute} with a default cost model. *)
