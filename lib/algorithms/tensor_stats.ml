(* Galley-style per-tensor statistics for search pruning.

   For every access of a candidate's statement we derive, without
   compiling anything, the shape of the tile a processor would hold under
   the candidate's induced distribution, and from the tiles three sound
   bounds on what the simulator will report:

   - [resident_bytes]: memory the busiest processor certainly holds —
     its output tile plus every replicated input's tile. If this exceeds
     the machine's per-processor memory the candidate is certainly OOM.
   - [moved_bytes]: bytes some processor certainly receives — one tile
     for every tensor whose distribution pins it to a machine face the
     processor is not on (a fetch), including output tiles that must be
     combined across a distributed reduction.
   - [time_lb]: a lower bound on the modeled execution time: per-task
     overhead plus the larger of the compute floor (evenly divided flops
     at full rate) and the communication floor ([moved_bytes] at the
     fastest link bandwidth, which matches the model's overlap semantics
     where a step costs max(compute, comm)).

   Soundness direction matters: every quantity here is a lower bound on
   what the cost model will charge, so pruning "lower bound beats the
   current best" can never discard the true winner. *)

module Expr = Distal_ir.Expr
module Cost = Distal_machine.Cost_model
module Ident = Distal_ir.Ident

type t = {
  tensor : string;
  tile_bytes : float;  (** bytes of one tile under the induced distribution *)
  fetched : bool;  (** some distributed machine axis does not index it *)
  replicated : bool;  (** stored on every processor instead of a face *)
}

type bounds = {
  per_tensor : t list;
  resident_bytes : float;
  moved_bytes : float;
  compute_lb : float;
  comm_lb : float;
  time_lb : float;
  mem_ok : bool;  (** certainly-resident bytes fit in a processor's memory *)
}

let elem_bytes = 8.0

(* Mirrors the executor's flop accounting (Exec.ops_per_point): arithmetic
   nodes of the right-hand side, plus the reduction accumulate. *)
let ops_per_point (stmt : Expr.stmt) =
  let rec count = function
    | Expr.Access _ | Expr.Const _ -> 0
    | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) -> 1 + count a + count b
  in
  max 1 (count stmt.rhs + if Expr.reduction_vars stmt <> [] then 1 else 0)

(* The tile of [access] under a blocked distribution of [dist_vars] over
   [grid]: each tensor dimension indexed by a distributed variable shrinks
   to its ceil-divided block; other dimensions stay whole. *)
let tile_bytes ~dist_vars ~grid ~shape (access : Expr.access) =
  let factor_of v =
    let rec go i = function
      | [] -> 1
      | w :: _ when Ident.equal w v -> grid.(i)
      | _ :: rest -> go (i + 1) rest
    in
    go 0 dist_vars
  in
  List.fold_left
    (fun (acc, d) v ->
      let extent = float_of_int shape.(d) in
      let f = float_of_int (factor_of v) in
      (acc *. ceil (extent /. f), d + 1))
    (elem_bytes, 0) access.indices
  |> fst

let of_stmt ~stmt ~shapes ~dist_vars ~grid ~replicate =
  let accesses = Expr.stmt_accesses stmt in
  let out = stmt.Expr.lhs.tensor in
  List.map
    (fun tn ->
      let access = List.find (fun (a : Expr.access) -> String.equal a.tensor tn) accesses in
      let shape = List.assoc tn shapes in
      let off_face =
        List.exists (fun v -> not (List.mem v access.indices)) dist_vars
      in
      let replicated = replicate && off_face && not (String.equal tn out) in
      {
        tensor = tn;
        tile_bytes = tile_bytes ~dist_vars ~grid ~shape access;
        (* The output is never replicated; when a distributed axis does
           not index it, partial tiles must be combined — also a fetch. *)
        fetched = off_face && not replicated;
        replicated;
      })
    (Expr.tensors stmt)

let bounds ~cost ~mem_per_proc ~stmt ~extents ~shapes ~dist_vars ~grid ~replicate =
  let per_tensor = of_stmt ~stmt ~shapes ~dist_vars ~grid ~replicate in
  let out = stmt.Expr.lhs.tensor in
  let resident_bytes =
    List.fold_left
      (fun acc t ->
        if String.equal t.tensor out || t.replicated then acc +. t.tile_bytes else acc)
      0.0 per_tensor
  in
  let moved_bytes =
    List.fold_left (fun acc t -> if t.fetched then acc +. t.tile_bytes else acc) 0.0 per_tensor
  in
  let procs = Array.fold_left ( * ) 1 grid in
  let total_points =
    List.fold_left
      (fun acc v ->
        match List.assoc_opt v extents with
        | Some e -> acc *. float_of_int e
        | None -> acc)
      1.0 (Expr.index_vars stmt)
  in
  let flops = float_of_int (ops_per_point stmt) *. total_points in
  (* Match the executor's leaf pricing: a statement that structurally
     matches a registry kernel is charged at that kernel's calibrated
     rate whether or not the schedule substitutes it, so the bound stays
     a true lower bound on every candidate's modeled time. *)
  let rate =
    match Distal_ir.Kernel_match.infer stmt with
    | Some kernel -> Cost.leaf_rate cost ~kernel
    | None -> cost.Cost.compute_rate
  in
  let compute_lb = flops /. float_of_int (max 1 procs) /. rate in
  let comm_lb = moved_bytes /. Float.max cost.Cost.beta_intra cost.Cost.beta_inter in
  {
    per_tensor;
    resident_bytes;
    moved_bytes;
    compute_lb;
    comm_lb;
    time_lb = cost.Cost.task_overhead +. Float.max compute_lb comm_lb;
    mem_ok = resident_bytes <= mem_per_proc;
  }
