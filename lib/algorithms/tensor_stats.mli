(** Per-tensor statistics for pruning the auto-scheduler's search,
    in the style of Galley's physical-plan optimizer: every access of a
    candidate statement gets cheap size/movement estimates derived from
    the induced distribution alone, so infeasible or dominated candidates
    are rejected before any compilation or simulation.

    All derived quantities are {e lower bounds} on what the simulator's
    cost model will charge the candidate, so pruning against them never
    discards the true optimum (see DESIGN.md, "Search policy"). *)

type t = {
  tensor : string;
  tile_bytes : float;
      (** bytes of one tile under the induced blocked distribution *)
  fetched : bool;
      (** some distributed machine axis does not index the tensor, so a
          processor off that axis's face must fetch its tile (or, for the
          output of a distributed reduction, combine partial tiles) *)
  replicated : bool;
      (** stored on every processor (the candidate's replicate choice) *)
}

type bounds = {
  per_tensor : t list;
  resident_bytes : float;
      (** memory the busiest processor certainly holds: its output tile
          plus every replicated input tile *)
  moved_bytes : float;  (** bytes some processor certainly receives *)
  compute_lb : float;  (** evenly-divided flops at full compute rate *)
  comm_lb : float;  (** [moved_bytes] at the fastest link bandwidth *)
  time_lb : float;
      (** task overhead + max(compute_lb, comm_lb) — a lower bound on
          the modeled time under the model's overlap semantics *)
  mem_ok : bool;  (** [resident_bytes <= mem_per_proc] *)
}

val ops_per_point : Distal_ir.Expr.stmt -> int
(** Arithmetic operations per iteration-space point, mirroring the
    executor's flop accounting. *)

val of_stmt :
  stmt:Distal_ir.Expr.stmt ->
  shapes:(string * int array) list ->
  dist_vars:Distal_ir.Ident.t list ->
  grid:int array ->
  replicate:bool ->
  t list

val bounds :
  cost:Distal_machine.Cost_model.t ->
  mem_per_proc:float ->
  stmt:Distal_ir.Expr.stmt ->
  extents:(Distal_ir.Ident.t * int) list ->
  shapes:(string * int array) list ->
  dist_vars:Distal_ir.Ident.t list ->
  grid:int array ->
  replicate:bool ->
  bounds
