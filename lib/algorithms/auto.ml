(* Cost-guided automatic scheduling: a staged, pruned, memoized, parallel
   search over the space the paper defines (distribution notation x
   schedule transforms), with the simulator's cost model as objective.

   Stages (each lazily expanding the previous one):
     dist-var subset -> grid factorization -> canonicalize + dedup ->
     communicate placement per tensor -> replicate -> probe
   where a probe compiles the candidate schedule and model-runs it
   (kernel substitution is applied to every probe that matches a known
   leaf kernel: it never changes the modeled cost, only the executed
   one, so enumerating the unsubstituted twin would be probing a
   dominated duplicate).

   Before any compilation a candidate gets Tensor_stats bounds — certain
   residency vs the machine's memory, a lower bound on its modeled time —
   and is dropped when it provably cannot beat the best candidate found
   so far. Probes are memoized in a process-wide Lru keyed on the
   candidate's Api.request_fingerprint (which already encodes machine,
   statement, schedule script and tensor distributions) extended with the
   cost model's digest, so repeated searches — the serving layer's
   steady state — skip straight to the stats.

   Probing runs in fixed-size waves fanned out on the Pool domain pool.
   Determinism at every pool size comes from three invariants: the wave
   size is a constant (not the pool size), lanes stripe statically over a
   results array indexed by candidate, and the reduction folds that array
   in enumeration order. Each probe model-runs with [~domains:1], which
   short-circuits the executor's own pool use to a direct call — pools
   are not reentrant, probes already occupy the lanes. *)

module Api = Distal.Api
module Machine = Distal_machine.Machine
module Cost = Distal_machine.Cost_model
module Calibrate = Distal_machine.Calibrate
module Stats = Distal_runtime.Stats
module S = Distal_ir.Schedule
module D = Distal_ir.Distnot
module Expr = Distal_ir.Expr
module Kernel_match = Distal_ir.Kernel_match
module Ident = Distal_ir.Ident
module Ints = Distal_support.Ints
module Lru = Distal_support.Lru
module Pool = Distal_support.Pool
module Env = Distal_support.Env

type candidate = {
  dist_vars : Distal_ir.Ident.t list;
  grid : int array;
  plan : Distal.Api.plan;
  stats : Distal_runtime.Stats.t;
}

type report = {
  enumerated : int;
  deduped : int;
  pruned : int;
  probed : int;
  memo_hits : int;
  infeasible : int;
  last_error : string option;
  wall_s : float;
}

let ( let* ) = Result.bind

(* {2 Probe memoization}

   One process-wide cache: searches from different sessions (or repeated
   searches over the same workload) share compiled plans and their
   modeled stats. The key is total — machine, statement, schedule,
   tensor distributions, cost model — so a hit is exactly the value the
   probe would recompute. *)

let cache : (string, Api.plan * Stats.t) Lru.t Lazy.t =
  lazy (Lru.create ~capacity:(Option.value (Env.auto_cache ()) ~default:512))

let cache_stats () =
  let c = Lazy.force cache in
  (Lru.hits c, Lru.misses c, Lru.evictions c)

let clear_cache () = Lru.clear (Lazy.force cache)

(* {2 Enumeration} *)

let rec subsets_of_size k = function
  | _ when k = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
      List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest) @ subsets_of_size k rest

let rec factorizations p k =
  if k = 1 then [ [ p ] ]
  else
    List.concat_map
      (fun (a, rest) -> List.map (fun f -> a :: f) (factorizations rest (k - 1)))
      (Cosma_scheduler.factor_pairs p)

(* Grid dimensions of size 1 distribute nothing: [{i,j} over [4,1]] is
   the same plan as [{i} over [4]], re-probed. Canonical form drops them
   (with their variable); a fully degenerate grid becomes the serial
   candidate on the statement's first variable, so every all-ones grid
   collapses to one spec. *)
let canonicalize ~vars ~dist_vars ~grid =
  let kept =
    List.concat
      (List.mapi (fun i v -> if grid.(i) > 1 then [ (v, grid.(i)) ] else []) dist_vars)
  in
  match kept with
  | [] -> ([ List.hd vars ], [| 1 |])
  | ps -> (List.map fst ps, Array.of_list (List.map snd ps))

(* Communicate-placement options for one tensor: the innermost
   distributed loop (maximal aggregation of everything, the classic
   choice) and, when different, the innermost distributed loop that
   indexes the tensor (hoists the fetch of tensors invariant to the
   deeper loops, trading message count against staging memory). *)
let placement_options ~dist_vars (access : Expr.access) =
  let innermost = List.nth dist_vars (List.length dist_vars - 1) in
  let indexed = List.filter (fun v -> List.mem v access.indices) dist_vars in
  match List.rev indexed with
  | deepest :: _ when not (Ident.equal deepest innermost) -> [ innermost; deepest ]
  | _ -> [ innermost ]

let rec cartesian = function
  | [] -> [ [] ]
  | opts :: rest ->
      List.concat_map (fun choice -> List.map (fun c -> choice :: c) (cartesian rest)) opts

(* The induced format: each tensor partitioned by the distributed
   variables that index it; machine dimensions that do not index it
   either pin the tensor to their 0-face (stored once) or replicate it
   ([replicate] — trades memory for communication, the 3-D-algorithm
   tradeoff of §4). Outputs are never replicated. *)
let induced_dist ~replicate dist_vars (access : Expr.access) =
  let tensor_axes = List.mapi (fun d _ -> Printf.sprintf "x%d" d) access.indices in
  let machine_axes =
    List.map
      (fun v ->
        let rec pos d = function
          | [] -> None
          | w :: _ when Ident.equal w v -> Some d
          | _ :: rest -> pos (d + 1) rest
        in
        match pos 0 access.indices with
        | Some d -> D.Part (Printf.sprintf "x%d" d)
        | None -> if replicate then D.Bcast else D.Fix 0)
      dist_vars
  in
  [ { D.tensor_axes; machine_axes } ]

(* One fully staged candidate, ready to probe. *)
type spec = {
  s_idx : int;  (* enumeration order: the deterministic tiebreaker *)
  s_dist_vars : Ident.t list;
  s_grid : int array;
  s_replicate : bool;
  s_placements : (string * Ident.t) list;  (* tensor -> distributed var *)
  s_machine : Machine.t;
  s_cost : Cost.t;
  s_tensors : Api.tensor list;
  s_schedule : S.t list;
  s_fp : string;
  s_bounds : Tensor_stats.bounds;
}

let outer v = v ^ "_o"

let schedule_of ~dist_vars ~grid ~placements parsed =
  S.Distribute_onto
    {
      targets = dist_vars;
      dist = List.map outer dist_vars;
      local = List.map (fun v -> v ^ "_i") dist_vars;
      grid;
    }
  :: List.map
       (fun tn -> S.Communicate ([ tn ], outer (List.assoc tn placements)))
       (Expr.tensors parsed)

let fingerprint ~machine ~cost ~stmt ~tensors ~schedule =
  let script = String.concat "; " (List.map S.to_string schedule) in
  let req = Api.request ~machine ~stmt ~schedule:script ~tensors () in
  Api.request_fingerprint req ^ "+" ^ Cost.digest cost

(* Expand every stage, canonicalize, dedup by grid form and then by full
   fingerprint, and attach stat bounds. Returns specs in enumeration
   order plus the [enumerated]/[deduped] counts. *)
let enumerate ~max_dist_vars ~cost ~machine_of ~procs ~stmt ~shapes ~parsed ~extents =
  let vars = Expr.index_vars parsed in
  let accesses = Expr.stmt_accesses parsed in
  let first_access tn =
    List.find (fun (a : Expr.access) -> String.equal a.tensor tn) accesses
  in
  let out_name = parsed.Expr.lhs.tensor in
  let enumerated = ref 0 and deduped = ref 0 in
  let seen_grid : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let seen_fp : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let specs = ref [] and idx = ref 0 in
  (* Number of specs a canonical pair expands to, for honest accounting
     of duplicates skipped before expansion. *)
  let expansion_size dist_vars =
    let placements =
      List.fold_left
        (fun acc tn -> acc * List.length (placement_options ~dist_vars (first_access tn)))
        1 (Expr.tensors parsed)
    in
    2 * placements
  in
  for k = 1 to min max_dist_vars (List.length vars) do
    List.iter
      (fun dist_vars ->
        List.iter
          (fun factors ->
            let grid = Array.of_list factors in
            let cvars, cgrid = canonicalize ~vars ~dist_vars ~grid in
            let gkey = String.concat "," cvars ^ "|" ^ Ints.to_string cgrid in
            if Hashtbl.mem seen_grid gkey then begin
              let n = expansion_size cvars in
              enumerated := !enumerated + n;
              deduped := !deduped + n
            end
            else begin
              Hashtbl.add seen_grid gkey ();
              let machine = machine_of cgrid in
              let cost =
                match cost with
                | Some c -> c
                | None -> Calibrate.calibrated (Api.default_cost machine)
              in
              let placement_combos =
                cartesian
                  (List.map
                     (fun tn -> placement_options ~dist_vars:cvars (first_access tn))
                     (Expr.tensors parsed))
              in
              List.iter
                (fun replicate ->
                  List.iter
                    (fun choices ->
                      incr enumerated;
                      let placements = List.combine (Expr.tensors parsed) choices in
                      let tensors =
                        List.map
                          (fun (tn, shape) ->
                            let replicate =
                              replicate && not (String.equal tn out_name)
                            in
                            Api.tensor_d tn shape
                              (induced_dist ~replicate cvars (first_access tn)))
                          shapes
                      in
                      let schedule =
                        schedule_of ~dist_vars:cvars ~grid:cgrid ~placements parsed
                      in
                      let fp = fingerprint ~machine ~cost ~stmt ~tensors ~schedule in
                      if Hashtbl.mem seen_fp fp then incr deduped
                      else begin
                        Hashtbl.add seen_fp fp ();
                        let bounds =
                          Tensor_stats.bounds ~cost
                            ~mem_per_proc:(Machine.mem_per_proc_bytes machine)
                            ~stmt:parsed ~extents ~shapes ~dist_vars:cvars
                            ~grid:cgrid ~replicate
                        in
                        specs :=
                          {
                            s_idx = !idx;
                            s_dist_vars = cvars;
                            s_grid = cgrid;
                            s_replicate = replicate;
                            s_placements = placements;
                            s_machine = machine;
                            s_cost = cost;
                            s_tensors = tensors;
                            s_schedule = schedule;
                            s_fp = fp;
                            s_bounds = bounds;
                          }
                          :: !specs;
                        incr idx
                      end)
                    placement_combos)
                [ false; true ]
            end)
          (factorizations procs k))
      (subsets_of_size k vars)
  done;
  (List.rev !specs, !enumerated, !deduped)

(* {2 Probing} *)

(* Compile the spec's schedule and model-run it; substitute the matched
   leaf kernel when the statement has one (falling back silently — the
   executor prices leaf compute by the statement's matched kernel whether
   or not the tree substitutes it, so the modeled cost is identical either
   way; only executed plans differ). *)
let compile_spec ~stmt ~parsed spec =
  let* problem =
    Api.problem ~machine:spec.s_machine ~stmt ~tensors:spec.s_tensors ()
  in
  let* plan = Api.compile problem ~schedule:spec.s_schedule in
  match Kernel_match.infer parsed with
  | None -> Ok plan
  | Some kernel -> (
      let outers = List.map outer spec.s_dist_vars in
      let inner =
        List.filter
          (fun v -> not (List.mem v outers))
          (Distal_ir.Cin.loop_vars plan.Api.cin)
      in
      match
        Api.compile problem ~schedule:(spec.s_schedule @ [ S.Substitute (inner, kernel) ])
      with
      | Ok plan -> Ok plan
      | Error _ -> Ok plan)

let probe ~stmt ~parsed spec =
  let c = Lazy.force cache in
  match Lru.find c spec.s_fp with
  | Some (plan, stats) -> Ok (plan, stats, true)
  | None -> (
      let* plan = compile_spec ~stmt ~parsed spec in
      (* [~domains:1] short-circuits the executor's pool use: probes may
         themselves be running inside pool lanes. *)
      match
        Api.run ~mode:Api.Exec.Model ~domains:1 ~cost:spec.s_cost plan ~data:[]
      with
      | Error e -> Error e
      | Ok r ->
          ignore (Lru.put c spec.s_fp (plan, r.Api.Exec.stats));
          Ok (plan, r.Api.Exec.stats, false))

(* {2 The search driver} *)

(* Fixed wave width: determinism requires the wave boundaries (and hence
   the evolution of the pruning threshold) to be independent of how many
   domains happen to probe a wave. *)
let wave_size = 16

type state = {
  mutable found : (candidate * int) list;  (* with enumeration index *)
  mutable best : float option;  (* best non-OOM modeled time so far *)
  mutable pruned : int;
  mutable probed : int;
  mutable memo_hits : int;
  mutable infeasible : int;
  mutable last_error : string option;
}

(* A spec provably unable to beat the current best non-OOM candidate:
   either its certain residency overflows processor memory (it would be
   ranked behind every non-OOM candidate), or its modeled-time lower
   bound already meets the best time — such a candidate can at most tie
   the best, and ties rank behind it (earlier enumeration index wins), so
   probing it cannot change the winner. The tie case matters on
   compute-bound problems: with leaf-rate pricing and full
   compute/communication overlap the bound is exact for every candidate
   whose communication hides under the leaf compute, so entire families
   of equivalent grids collapse onto the best and are dropped without
   compilation. Without a non-OOM best nothing is pruned — the bounds
   alone never reject a candidate. *)
let prunable st spec =
  match st.best with
  | None -> false
  | Some bt -> (not spec.s_bounds.Tensor_stats.mem_ok) || spec.s_bounds.Tensor_stats.time_lb >= bt

let run_search ?(max_dist_vars = 3) ?cost ?domains ~machine_of ~procs ~stmt ~shapes () =
  let t0 = Pool.now () in
  let* parsed = Distal_ir.Einsum_parser.parse stmt in
  let* extents = Distal_ir.Typecheck.check parsed ~shapes in
  let vars = Expr.index_vars parsed in
  let* () = if vars = [] then Error "statement has no index variables" else Ok () in
  let specs, enumerated, deduped =
    enumerate ~max_dist_vars ~cost ~machine_of ~procs ~stmt ~shapes ~parsed ~extents
  in
  (* Probe promising candidates first — the sooner the best tightens, the
     more the bounds prune. Lower bound then enumeration order: total and
     deterministic. *)
  let specs =
    List.sort
      (fun a b ->
        compare
          (a.s_bounds.Tensor_stats.time_lb, a.s_idx)
          (b.s_bounds.Tensor_stats.time_lb, b.s_idx))
      specs
  in
  let pool = Pool.get ?size:domains () in
  let st =
    {
      found = [];
      best = None;
      pruned = 0;
      probed = 0;
      memo_hits = 0;
      infeasible = 0;
      last_error = None;
    }
  in
  let rec waves = function
    | [] -> ()
    | specs ->
        (* Collect the next wave, dropping prunable specs against the
           current best as we go. *)
        let rec take acc n = function
          | [] -> (List.rev acc, [])
          | _ :: _ as rest when n = 0 -> (List.rev acc, rest)
          | s :: rest ->
              if prunable st s then begin
                st.pruned <- st.pruned + 1;
                take acc n rest
              end
              else take (s :: acc) (n - 1) rest
        in
        let wave, rest = take [] wave_size specs in
        let wave = Array.of_list wave in
        let n = Array.length wave in
        if n > 0 then begin
          let results = Array.make n (Error "unprobed") in
          let lanes = max 1 (min n (Pool.size pool)) in
          Pool.run pool ~lanes (fun lane ->
              let i = ref lane in
              while !i < n do
                results.(!i) <- probe ~stmt ~parsed wave.(!i);
                i := !i + lanes
              done);
          (* Deterministic reduction: fold the wave in candidate order,
             whatever the lane striping was. *)
          Array.iteri
            (fun i r ->
              let spec = wave.(i) in
              match r with
              | Ok (plan, stats, hit) ->
                  st.probed <- st.probed + 1;
                  if hit then st.memo_hits <- st.memo_hits + 1;
                  st.found <-
                    ( {
                        dist_vars = spec.s_dist_vars;
                        grid = spec.s_grid;
                        plan;
                        stats;
                      },
                      spec.s_idx )
                    :: st.found;
                  if not stats.Stats.oom then
                    st.best <-
                      Some
                        (match st.best with
                        | None -> stats.Stats.time
                        | Some bt -> Float.min bt stats.Stats.time)
              | Error e ->
                  st.infeasible <- st.infeasible + 1;
                  st.last_error <- Some e)
            results
        end;
        waves rest
  in
  waves specs;
  let report =
    {
      enumerated;
      deduped;
      pruned = st.pruned;
      probed = st.probed;
      memo_hits = st.memo_hits;
      infeasible = st.infeasible;
      last_error = st.last_error;
      wall_s = Pool.now () -. t0;
    }
  in
  match st.found with
  | [] ->
      Error
        (Printf.sprintf
           "no feasible candidate found: %d enumerated, %d deduplicated, %d pruned, \
            %d probed, %d infeasible%s"
           report.enumerated report.deduped report.pruned report.probed
           report.infeasible
           (match report.last_error with
           | Some e -> "; last error: " ^ e
           | None -> ""))
  | found ->
      let sorted =
        List.sort
          (fun ((a : candidate), ai) ((b : candidate), bi) ->
            compare
              (a.stats.Stats.oom, a.stats.Stats.time, ai)
              (b.stats.Stats.oom, b.stats.Stats.time, bi))
          found
      in
      Ok (List.map fst sorted, report)

let search_report = run_search

let search ?max_dist_vars ?cost ?domains ~machine_of ~procs ~stmt ~shapes () =
  let* cs, _ = run_search ?max_dist_vars ?cost ?domains ~machine_of ~procs ~stmt ~shapes () in
  Ok cs

let best ?max_dist_vars ?cost ?domains ~machine_of ~procs ~stmt ~shapes () =
  let* cs = search ?max_dist_vars ?cost ?domains ~machine_of ~procs ~stmt ~shapes () in
  Ok (List.hd cs)

let describe c =
  Printf.sprintf "distribute {%s} over %s: %.3g s%s (%d msgs, %.3g GB moved)"
    (String.concat ", " c.dist_vars)
    (Ints.to_string c.grid) c.stats.Stats.time
    (if c.stats.Stats.oom then " OOM" else "")
    c.stats.Stats.messages
    ((c.stats.Stats.bytes_inter +. c.stats.Stats.bytes_intra) /. 1e9)

let describe_report r =
  Printf.sprintf
    "%d candidates enumerated, %d deduplicated, %d pruned, %d probed (%d memoized, \
     %d infeasible) in %.3g s"
    r.enumerated r.deduped r.pruned r.probed r.memo_hits r.infeasible r.wall_s
