(** Automatic schedule and format selection (§9's first future-work
    avenue, built on the observation that DISTAL's scheduling primitives
    "provide a mechanism for future work to target when automatically
    scheduling computations for distribution", §7.2).

    A staged, cost-guided search with the simulator's own cost model as
    the objective. Candidates are enumerated lazily by stage —

    - which index variables to distribute (including reduction variables,
      which induces distributed reductions);
    - how to factor the processors into a machine grid over them
      (grids canonicalized: size-1 dimensions drop with their variable,
      so equivalent candidates are probed once and counted as dedups);
    - where to aggregate each tensor's communication (per-tensor
      placement: the innermost distributed loop, or the innermost
      distributed loop indexing the tensor);
    - whether to replicate unpartitioned inputs (the 3-D-algorithm
      memory/communication tradeoff of §4);

    — then pruned with {!Tensor_stats} bounds (certain residency vs
    processor memory, modeled-time lower bound vs the best candidate so
    far) before anything is compiled. Surviving candidates are compiled
    and model-run in fixed-size waves on the {!Distal_support.Pool}
    domain pool, with probes memoized process-wide in an
    {!Distal_support.Lru} keyed on the candidate's request fingerprint
    plus the cost model digest ([DISTAL_AUTO_CACHE] sets the capacity).
    The chosen plan is byte-identical at every pool size: waves have a
    constant width, lanes stripe into a results array by candidate
    index, and the reduction folds that array in enumeration order.

    When no [?cost] is given, the machine's default cost model is used
    with its [pack_overhead] replaced by the measured value from
    {!Distal_machine.Calibrate}, so the search trades strided packing
    against redistribution on calibrated numbers.

    Candidates that exceed processor memory and are probed anyway (they
    can still be pruned only once a feasible best exists) are kept but
    ranked last. *)

type candidate = {
  dist_vars : Distal_ir.Ident.t list;
  grid : int array;
  plan : Distal.Api.plan;
  stats : Distal_runtime.Stats.t;
}

type report = {
  enumerated : int;  (** staged expansions considered, duplicates included *)
  deduped : int;  (** skipped as canonical/fingerprint duplicates *)
  pruned : int;  (** rejected by stat bounds before compilation *)
  probed : int;  (** compiled and model-run (memoized hits included) *)
  memo_hits : int;  (** probes answered from the process-wide cache *)
  infeasible : int;  (** probes that failed to compile or run *)
  last_error : string option;  (** the most recent probe failure *)
  wall_s : float;  (** search wall-clock seconds *)
}

val search :
  ?max_dist_vars:int ->
  ?cost:Distal_machine.Cost_model.t ->
  ?domains:int ->
  machine_of:(int array -> Distal_machine.Machine.t) ->
  procs:int ->
  stmt:string ->
  shapes:(string * int array) list ->
  unit ->
  (candidate list, string) result
(** Candidates sorted by modeled time (non-OOM first; enumeration order
    breaks exact ties, so the ranking is deterministic). [machine_of]
    builds the target machine from a grid (so callers control processor
    kind, memory and node grouping); [domains] sizes the probe pool
    (default [DISTAL_NUM_DOMAINS]) and never affects the result. On
    failure the message carries the search diagnostics: enumerated,
    deduplicated, pruned and infeasible counts plus the last probe
    error. *)

val search_report :
  ?max_dist_vars:int ->
  ?cost:Distal_machine.Cost_model.t ->
  ?domains:int ->
  machine_of:(int array -> Distal_machine.Machine.t) ->
  procs:int ->
  stmt:string ->
  shapes:(string * int array) list ->
  unit ->
  (candidate list * report, string) result
(** {!search} plus the search's counters and wall time. *)

val best :
  ?max_dist_vars:int ->
  ?cost:Distal_machine.Cost_model.t ->
  ?domains:int ->
  machine_of:(int array -> Distal_machine.Machine.t) ->
  procs:int ->
  stmt:string ->
  shapes:(string * int array) list ->
  unit ->
  (candidate, string) result

val describe : candidate -> string

val describe_report : report -> string

val cache_stats : unit -> int * int * int
(** Hits, misses and evictions of the process-wide probe cache. *)

val clear_cache : unit -> unit
(** Drop every memoized probe (for cold-search measurements). *)
