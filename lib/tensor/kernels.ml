(* Shape mismatches raise [Invalid_argument] naming the kernel and the
   offending shapes: a bad [substitute] binding must be diagnosable from
   the message alone, not a bare [Assert_failure]. *)
let shape_str t =
  "["
  ^ String.concat "x" (List.map string_of_int (Array.to_list (Dense.shape t)))
  ^ "]"

let bad_shapes kernel ts =
  invalid_arg
    (Printf.sprintf "Kernels.%s: incompatible shapes %s" kernel
       (String.concat " " (List.map shape_str ts)))

let require kernel ts ok = if not ok then bad_shapes kernel ts

let dims2 ~kernel ~all t =
  require kernel all (Dense.dims t = 2);
  ((Dense.shape t).(0), (Dense.shape t).(1))

let gemm ~a ~b ~c =
  let all = [ a; b; c ] in
  let m, n = dims2 ~kernel:"gemm" ~all a in
  let mb, kk = dims2 ~kernel:"gemm" ~all b in
  let kc, nc = dims2 ~kernel:"gemm" ~all c in
  require "gemm" all (m = mb && n = nc && kk = kc);
  (* i-k-j loop order keeps the inner loop unit-stride on both A and C. *)
  for i = 0 to m - 1 do
    for k = 0 to kk - 1 do
      let bik = Dense.get_lin b ((i * kk) + k) in
      if bik <> 0.0 then
        for j = 0 to n - 1 do
          Dense.add_lin a ((i * n) + j) (bik *. Dense.get_lin c ((k * n) + j))
        done
    done
  done

let gemv ~a ~b ~c =
  let all = [ a; b; c ] in
  let m, k = dims2 ~kernel:"gemv" ~all b in
  require "gemv" all (Dense.dims a = 1 && (Dense.shape a).(0) = m);
  require "gemv" all (Dense.dims c = 1 && (Dense.shape c).(0) = k);
  for i = 0 to m - 1 do
    let acc = ref 0.0 in
    for kk = 0 to k - 1 do
      acc := !acc +. (Dense.get_lin b ((i * k) + kk) *. Dense.get_lin c kk)
    done;
    Dense.add_lin a i !acc
  done

let ttv ~a ~b ~c =
  let all = [ a; b; c ] in
  let s = Dense.shape b in
  require "ttv" all (Dense.dims b = 3);
  let i_n = s.(0) and j_n = s.(1) and k_n = s.(2) in
  require "ttv" all (Dense.shape a = [| i_n; j_n |]);
  require "ttv" all (Dense.shape c = [| k_n |]);
  for i = 0 to i_n - 1 do
    for j = 0 to j_n - 1 do
      let acc = ref 0.0 in
      let base = ((i * j_n) + j) * k_n in
      for k = 0 to k_n - 1 do
        acc := !acc +. (Dense.get_lin b (base + k) *. Dense.get_lin c k)
      done;
      Dense.add_lin a ((i * j_n) + j) !acc
    done
  done

let ttm ~a ~b ~c =
  let all = [ a; b; c ] in
  let s = Dense.shape b in
  require "ttm" all (Dense.dims b = 3);
  let i_n = s.(0) and j_n = s.(1) and k_n = s.(2) in
  let kc, l_n = dims2 ~kernel:"ttm" ~all c in
  require "ttm" all (kc = k_n);
  require "ttm" all (Dense.shape a = [| i_n; j_n; l_n |]);
  (* Cast to a loop of GEMMs over i, the strategy of §7.2.1. *)
  for i = 0 to i_n - 1 do
    for j = 0 to j_n - 1 do
      let brow = ((i * j_n) + j) * k_n in
      let arow = ((i * j_n) + j) * l_n in
      for k = 0 to k_n - 1 do
        let bv = Dense.get_lin b (brow + k) in
        if bv <> 0.0 then
          for l = 0 to l_n - 1 do
            Dense.add_lin a (arow + l) (bv *. Dense.get_lin c ((k * l_n) + l))
          done
      done
    done
  done

let mttkrp ~a ~b ~c ~d =
  let all = [ a; b; c; d ] in
  let s = Dense.shape b in
  require "mttkrp" all (Dense.dims b = 3);
  let i_n = s.(0) and j_n = s.(1) and k_n = s.(2) in
  let jc, l_n = dims2 ~kernel:"mttkrp" ~all c in
  let kd, ld = dims2 ~kernel:"mttkrp" ~all d in
  require "mttkrp" all (jc = j_n && kd = k_n && ld = l_n);
  require "mttkrp" all (Dense.shape a = [| i_n; l_n |]);
  for i = 0 to i_n - 1 do
    for j = 0 to j_n - 1 do
      for k = 0 to k_n - 1 do
        let bv = Dense.get_lin b ((((i * j_n) + j) * k_n) + k) in
        if bv <> 0.0 then
          for l = 0 to l_n - 1 do
            Dense.add_lin a ((i * l_n) + l)
              (bv *. Dense.get_lin c ((j * l_n) + l) *. Dense.get_lin d ((k * l_n) + l))
          done
      done
    done
  done

let inner_product x y =
  require "innerprod" [ x; y ] (Dense.shape x = Dense.shape y);
  let acc = ref 0.0 in
  for i = 0 to Dense.size x - 1 do
    acc := !acc +. (Dense.get_lin x i *. Dense.get_lin y i)
  done;
  !acc

let flops name extents =
  let p = float_of_int (Distal_support.Ints.prod extents) in
  match name with
  | "mttkrp" -> 3.0 *. p
  | "gemm" | "gemv" | "ttv" | "ttm" | "innerprod" -> 2.0 *. p
  | _ ->
      (* A silent 2p fallback would let a renamed or mistyped kernel keep
         a plausible price; make cost-model drift loud instead. *)
      invalid_arg ("Kernels.flops: unknown kernel " ^ name)
