(** Local leaf kernels.

    These play the role of CuBLAS/OpenBLAS in the paper: optimized
    single-processor implementations the scheduler can [substitute] at the
    leaves of a distributed loop nest (Fig. 2 binds [CuBLAS::GeMM]). They are
    also the single-node references for the evaluation kernels of §7.2.

    All kernels accumulate into their output ([+=] semantics), matching the
    reduction leaves the compiler produces. A shape mismatch raises
    [Invalid_argument] naming the kernel and every operand shape. *)

val gemm : a:Dense.t -> b:Dense.t -> c:Dense.t -> unit
(** [A(i,j) += B(i,k) * C(k,j)]; shapes [i×j], [i×k], [k×j]. *)

val gemv : a:Dense.t -> b:Dense.t -> c:Dense.t -> unit
(** [a(i) += B(i,k) * c(k)]. *)

val ttv : a:Dense.t -> b:Dense.t -> c:Dense.t -> unit
(** Tensor-times-vector: [A(i,j) += B(i,j,k) * c(k)]. *)

val ttm : a:Dense.t -> b:Dense.t -> c:Dense.t -> unit
(** Tensor-times-matrix: [A(i,j,l) += B(i,j,k) * C(k,l)]. *)

val mttkrp : a:Dense.t -> b:Dense.t -> c:Dense.t -> d:Dense.t -> unit
(** Matricized tensor times Khatri-Rao product:
    [A(i,l) += B(i,j,k) * C(j,l) * D(k,l)]. *)

val inner_product : Dense.t -> Dense.t -> float
(** Sum of the elementwise product of two same-shape tensors. *)

val flops : string -> int array -> float
(** [flops name extents] is the floating point operation count of the named
    kernel over an iteration space with the given per-variable extents
    (2 flops per multiply-add; 3 for mttkrp's two multiplies and one add).
    Unknown kernel names raise [Invalid_argument] — an unpriceable kernel
    must not silently default to 2 flops per point. *)
