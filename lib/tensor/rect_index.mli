(** Spatial index over a set of tiles (rect, payload).

    The runtime's hot lookup is "which tiles of this tensor intersect this
    footprint rect?". A linear scan is fine for blocked distributions (one
    tile per processor) but collapses for block-cyclic layouts, where the
    tile count grows with the tensor size divided by the block size. This
    index keeps, per dimension, the sorted distinct tile boundaries and a
    slab -> tiles bucket table, so a query binary-searches each dimension,
    picks the most selective one, and only touches candidate tiles.

    Queries return results in insertion order, making the index a drop-in
    replacement for a filter over the original tile list. *)

type 'a t

type cursor
(** Mutable per-query scratch (visited stamps). An index carries a default
    cursor, so single-threaded callers never see this type — but that
    default makes plain {!query} unsafe to run concurrently. Code that
    queries one index from several domains must give each domain its own
    cursor. A cursor grows on demand and may be shared across any number
    of indexes (of any size) within one domain. *)

val cursor : unit -> cursor
(** A fresh, empty cursor. *)

val build : (Rect.t * 'a) list -> 'a t
(** Index the given tiles. Tiles may overlap (replicated distributions
    store one entry per distinct tile, so they usually do not). All rects
    must have the same dimensionality. *)

val length : 'a t -> int
(** Number of indexed tiles. *)

val tiles : 'a t -> (Rect.t * 'a) list
(** The indexed tiles, in insertion order. *)

val query : ?cursor:cursor -> 'a t -> Rect.t -> (Rect.t * 'a) list
(** [query t rect] returns [(piece, payload)] for every indexed tile whose
    intersection [piece] with [rect] is non-empty, in insertion order —
    exactly [List.filter_map] of the intersection over {!tiles}, but
    touching only candidate tiles. Uses the index's built-in cursor unless
    [?cursor] is given; concurrent queries against the same index must
    pass distinct cursors. *)
