(* Per-query scratch: visited stamps per tile id. Stamps are monotonic per
   cursor, so one cursor can serve queries against any number of indexes —
   a stale stamp left by another index can never equal a fresh one. *)
type cursor = { mutable seen : int array; mutable stamp : int }

let cursor () = { seen = [||]; stamp = 0 }

type 'a t = {
  entries : (Rect.t * 'a) array;
  dims : int;
  cuts : int array array;  (* per dim: sorted distinct tile boundaries *)
  buckets : int array array array;  (* per dim: slab -> tile ids, ascending *)
  prefix : int array array;  (* per dim: prefix sums of bucket sizes *)
  default_cursor : cursor;  (* used when the caller doesn't pass one *)
}

(* Index of the first element >= x in a sorted array. *)
let lower_bound a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Index of the first element > x in a sorted array. *)
let upper_bound a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let build tile_list =
  let entries = Array.of_list tile_list in
  let n = Array.length entries in
  let dims = if n = 0 then 0 else Rect.dim (fst entries.(0)) in
  let cuts =
    Array.init dims (fun d ->
        let vals = Array.make (2 * n) 0 in
        Array.iteri
          (fun i ((r : Rect.t), _) ->
            vals.(2 * i) <- r.lo.(d);
            vals.((2 * i) + 1) <- r.hi.(d))
          entries;
        Array.sort (fun (a : int) b -> if a < b then -1 else if a > b then 1 else 0) vals;
        (* Dedup the sorted bounds in place. *)
        let m = ref 0 in
        for i = 1 to (2 * n) - 1 do
          if vals.(i) <> vals.(!m) then begin
            incr m;
            vals.(!m) <- vals.(i)
          end
        done;
        if n = 0 then [||] else Array.sub vals 0 (!m + 1))
  in
  let buckets =
    Array.init dims (fun d ->
        let nslabs = max 0 (Array.length cuts.(d) - 1) in
        let acc = Array.make nslabs [] in
        (* Reverse id order so each bucket list ends up ascending. *)
        for id = n - 1 downto 0 do
          let r : Rect.t = fst entries.(id) in
          if not (Rect.is_empty r) then begin
            let a = lower_bound cuts.(d) r.lo.(d) in
            let b = lower_bound cuts.(d) r.hi.(d) in
            for s = a to b - 1 do
              acc.(s) <- id :: acc.(s)
            done
          end
        done;
        Array.map Array.of_list acc)
  in
  let prefix =
    Array.map
      (fun bs ->
        let p = Array.make (Array.length bs + 1) 0 in
        Array.iteri (fun i b -> p.(i + 1) <- p.(i) + Array.length b) bs;
        p)
      buckets
  in
  { entries; dims; cuts; buckets; prefix; default_cursor = cursor () }

let length t = Array.length t.entries
let tiles t = Array.to_list t.entries

(* Slab range [a, b) of a query interval [lo, hi) along dimension [d];
   [None] when the interval clears the indexed tiles entirely. *)
let slab_range t d lo hi =
  let cuts = t.cuts.(d) in
  let nslabs = Array.length cuts - 1 in
  if hi <= lo || nslabs <= 0 then None
  else
    let b = min nslabs (lower_bound cuts hi) in
    let a = max 0 (upper_bound cuts lo - 1) in
    if a >= b then None else Some (a, b)

let query ?cursor:cur t (rect : Rect.t) =
  let n = Array.length t.entries in
  if n = 0 || Rect.is_empty rect then []
  else if t.dims = 0 then
    (* Scalars: every tile intersects. *)
    Array.to_list (Array.map (fun (r, v) -> (Rect.inter rect r, v)) t.entries)
  else begin
    (* Per-dimension candidate slab ranges; pick the most selective
       dimension by total bucket population. *)
    let best = ref None in
    (try
       for d = 0 to t.dims - 1 do
         match slab_range t d rect.lo.(d) rect.hi.(d) with
         | None ->
             best := None;
             raise Exit
         | Some (a, b) ->
             let pop = t.prefix.(d).(b) - t.prefix.(d).(a) in
             (match !best with
             | Some (_, _, _, p) when p <= pop -> ()
             | _ -> best := Some (d, a, b, pop))
       done
     with Exit -> ());
    match !best with
    | None -> []
    | Some (d, a, b, _) ->
        (* Stamp the candidate ids, then sweep the stamped id range in
           ascending order — a sequential scan that restores insertion
           order without sorting the (possibly tens of thousands of)
           candidates. Non-overlapping candidates are rejected with scalar
           compares before allocating the intersection. *)
        let c = match cur with Some c -> c | None -> t.default_cursor in
        if Array.length c.seen < n then begin
          c.seen <- Array.make (max n (2 * Array.length c.seen)) (-1);
          c.stamp <- 0
        end;
        c.stamp <- c.stamp + 1;
        let seen = c.seen and stamp = c.stamp in
        let min_id = ref max_int and max_id = ref (-1) in
        for s = a to b - 1 do
          Array.iter
            (fun id ->
              seen.(id) <- stamp;
              if id < !min_id then min_id := id;
              if id > !max_id then max_id := id)
            t.buckets.(d).(s)
        done;
        let overlaps (r : Rect.t) =
          let rec go i =
            i = t.dims
            || (rect.lo.(i) < r.hi.(i) && r.lo.(i) < rect.hi.(i) && go (i + 1))
          in
          go 0
        in
        let acc = ref [] in
        for id = !max_id downto !min_id do
          if seen.(id) = stamp then begin
            let r, v = t.entries.(id) in
            if overlaps r then begin
              let piece = Rect.inter rect r in
              if not (Rect.is_empty piece) then acc := (piece, v) :: !acc
            end
          end
        done;
        !acc
  end
