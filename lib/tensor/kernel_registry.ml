(* The leaf kernel registry: native-speed implementations of the
   substitutable leaf kernels, dispatched by (kernel name, dtype, shape
   class). This plays the CuBLAS role of the paper's Fig. 2 one level
   deeper than [Kernels]: the same contraction, but cache-blocked and
   register-tiled over the contiguous float64 bigarrays behind [Dense].

   Two implementation tiers sit behind one dispatch surface:

   - [Naive]: the reference loop order of [Kernels] (fresh accumulators,
     zero-skip on the stationary operand), generalized to strided views.
   - [Tiled]: cache-blocked kernels whose per-output-element float
     operations replay the *evaluator's* accumulation order exactly — the
     accumulator is initialized from the current output element, one
     multiply-add is applied per reduction point in ascending canonical
     order, and the value is stored back. Register tiles and KC blocking
     only interleave *different* output elements' chains (and spill a
     correctly-rounded double between K blocks), so a tiled run is
     bit-identical to the staged/generic evaluator on the same leaf. See
     DESIGN.md "Leaf kernel registry" for the full accumulation-order
     policy.

   Every kernel works on [view]s — a base offset plus one linear stride
   per index of that operand's access pattern — so sliced instances and
   transposed layouts dispatch without a copy; the packing routines
   below gather strided panels into contiguous microkernel operands
   (the strided-copy pack discipline). dtype is float64 only, the
   substrate of [Dense]. *)

module A1 = Bigarray.Array1

type mode = Off | Naive | Tiled

let mode_to_string = function Off -> "off" | Naive -> "naive" | Tiled -> "tiled"

let default_mode () =
  match Distal_support.Env.kernels () with
  | Some `Off -> Off
  | Some `Naive -> Naive
  | Some `Tiled | None -> Tiled

(* {2 The kernel table}

   One entry per substitutable kernel: the access letters of the output
   and each factor (the single source of truth [Kernel_match] unifies
   statements against), and the flop count per point of the canonical
   iteration space. Canonical letter order — the order of [dims] arrays
   throughout this module — is first appearance scanning lhs then
   factors. *)

type entry = { name : string; lhs : string; factors : string list; flops_per_point : float }

let entries =
  [
    { name = "gemm"; lhs = "ij"; factors = [ "ik"; "kj" ]; flops_per_point = 2.0 };
    { name = "gemv"; lhs = "i"; factors = [ "ik"; "k" ]; flops_per_point = 2.0 };
    { name = "ttv"; lhs = "ij"; factors = [ "ijk"; "k" ]; flops_per_point = 2.0 };
    { name = "ttm"; lhs = "ijl"; factors = [ "ijk"; "kl" ]; flops_per_point = 2.0 };
    {
      name = "mttkrp";
      lhs = "il";
      factors = [ "ijk"; "jl"; "kl" ];
      flops_per_point = 3.0;
    };
    { name = "innerprod"; lhs = ""; factors = [ "ijk"; "ijk" ]; flops_per_point = 2.0 };
  ]

let entry name =
  match List.find_opt (fun e -> String.equal e.name name) entries with
  | Some e -> e
  | None -> invalid_arg ("Kernel_registry: unknown kernel " ^ name)

let kernel_names = List.map (fun e -> e.name) entries

let letters e =
  let seen = Buffer.create 8 in
  List.iter
    (String.iter (fun ch ->
         if not (String.contains (Buffer.contents seen) ch) then Buffer.add_char seen ch))
    (e.lhs :: e.factors);
  Buffer.contents seen

let canonical_letters = letters

let flops ~kernel ~dims =
  let e = entry kernel in
  if Array.length dims <> String.length (letters e) then
    invalid_arg
      (Printf.sprintf "Kernel_registry.flops: %s wants %d extents, got %d" kernel
         (String.length (letters e))
         (Array.length dims));
  e.flops_per_point *. float_of_int (Distal_support.Ints.prod dims)

(* {2 Views} *)

type view = { buf : Dense.buf; off : int; st : int array }

let bget = A1.unsafe_get
let bset = A1.unsafe_set

(* {2 Simple tier: evaluator-order flat loops}

   Per output element: load, one multiply-add per reduction point in
   canonical ascending order, store. Used directly for small shapes and
   as the edge path of the micro tier (full-K chains and K-blocked
   chains round identically, see the header note). *)

let gemm_s ~m ~n ~k a b c =
  let ab = a.buf and bb = b.buf and cb = c.buf in
  let sai = a.st.(0) and saj = a.st.(1) in
  let sbi = b.st.(0) and sbk = b.st.(1) in
  let sck = c.st.(0) and scj = c.st.(1) in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let ao = a.off + (i * sai) + (j * saj) in
      let acc = ref (bget ab ao) in
      let bo = ref (b.off + (i * sbi)) and co = ref (c.off + (j * scj)) in
      for _p = 0 to k - 1 do
        acc := !acc +. (bget bb !bo *. bget cb !co);
        bo := !bo + sbk;
        co := !co + sck
      done;
      bset ab ao !acc
    done
  done

let gemv_s ~m ~k a b c =
  let ab = a.buf and bb = b.buf and cb = c.buf in
  let sai = a.st.(0) and sbi = b.st.(0) and sbk = b.st.(1) and sck = c.st.(0) in
  for i = 0 to m - 1 do
    let ao = a.off + (i * sai) in
    let acc = ref (bget ab ao) in
    let bo = ref (b.off + (i * sbi)) and co = ref c.off in
    for _p = 0 to k - 1 do
      acc := !acc +. (bget bb !bo *. bget cb !co);
      bo := !bo + sbk;
      co := !co + sck
    done;
    bset ab ao !acc
  done

let ttv_s ~ni ~nj ~nk a b c =
  let ab = a.buf and bb = b.buf and cb = c.buf in
  let sai = a.st.(0) and saj = a.st.(1) in
  let sbi = b.st.(0) and sbj = b.st.(1) and sbk = b.st.(2) in
  let sck = c.st.(0) in
  for i = 0 to ni - 1 do
    for j = 0 to nj - 1 do
      let ao = a.off + (i * sai) + (j * saj) in
      let acc = ref (bget ab ao) in
      let bo = ref (b.off + (i * sbi) + (j * sbj)) and co = ref c.off in
      for _p = 0 to nk - 1 do
        acc := !acc +. (bget bb !bo *. bget cb !co);
        bo := !bo + sbk;
        co := !co + sck
      done;
      bset ab ao !acc
    done
  done

let ttm_s ~ni ~nj ~nl ~nk a b c =
  let sai = a.st.(0) and sbi = b.st.(0) in
  for i = 0 to ni - 1 do
    gemm_s ~m:nj ~n:nl ~k:nk
      { a with off = a.off + (i * sai); st = [| a.st.(1); a.st.(2) |] }
      { b with off = b.off + (i * sbi); st = [| b.st.(1); b.st.(2) |] }
      c
  done

let mttkrp_s ~ni ~nl ~nj ~nk a b c d =
  let ab = a.buf and bb = b.buf and cb = c.buf and db = d.buf in
  let sai = a.st.(0) and sal = a.st.(1) in
  let sbi = b.st.(0) and sbj = b.st.(1) and sbk = b.st.(2) in
  let scj = c.st.(0) and scl = c.st.(1) in
  let sdk = d.st.(0) and sdl = d.st.(1) in
  for i = 0 to ni - 1 do
    for l = 0 to nl - 1 do
      let ao = a.off + (i * sai) + (l * sal) in
      let acc = ref (bget ab ao) in
      for j = 0 to nj - 1 do
        let cv = bget cb (c.off + (j * scj) + (l * scl)) in
        let bo = ref (b.off + (i * sbi) + (j * sbj)) in
        let dof = ref (d.off + (l * sdl)) in
        for _p = 0 to nk - 1 do
          acc := !acc +. (bget bb !bo *. cv *. bget db !dof);
          bo := !bo + sbk;
          dof := !dof + sdk
        done
      done;
      bset ab ao !acc
    done
  done

let innerprod_s ~ni ~nj ~nk a x y =
  let ab = a.buf and xb = x.buf and yb = y.buf in
  let sxi = x.st.(0) and sxj = x.st.(1) and sxk = x.st.(2) in
  let syi = y.st.(0) and syj = y.st.(1) and syk = y.st.(2) in
  let acc = ref (bget ab a.off) in
  for i = 0 to ni - 1 do
    for j = 0 to nj - 1 do
      let xo = ref (x.off + (i * sxi) + (j * sxj)) in
      let yo = ref (y.off + (i * syi) + (j * syj)) in
      for _p = 0 to nk - 1 do
        acc := !acc +. (bget xb !xo *. bget yb !yo);
        xo := !xo + sxk;
        yo := !yo + syk
      done
    done
  done;
  bset ab a.off !acc

(* {2 Micro tier: packed panels and register tiles}

   GotoBLAS/BLIS-shaped GEMM: NC-column outer blocks, KC-deep reduction
   blocks, a packed B panel (4 rows, K-major) and packed C panels (4
   columns per tile, K-major), and a 4x4 register microkernel of explicit
   multiply-add chains. Edge rows/columns route to the simple tier on a
   shifted view — same per-element operation chain, no packing. *)

let kc_block = 256
let nc_block = 128

let gemm_t ~m ~n ~k a b c =
  let m4 = m land lnot 3 and n4 = n land lnot 3 in
  if m4 = 0 || n4 = 0 then gemm_s ~m ~n ~k a b c
  else begin
    let ab = a.buf and bb = b.buf and cb = c.buf in
    let sai = a.st.(0) and saj = a.st.(1) in
    let sbi = b.st.(0) and sbk = b.st.(1) in
    let sck = c.st.(0) and scj = c.st.(1) in
    let nc_w = min n4 nc_block in
    let cp = Array.make (kc_block * nc_w) 0.0 in
    let bp = Array.make (kc_block * 4) 0.0 in
    let jc = ref 0 in
    while !jc < n4 do
      let nc = min nc_block (n4 - !jc) in
      let k0 = ref 0 in
      while !k0 < k do
        let kc = min kc_block (k - !k0) in
        (* Pack the C block: one contiguous K-major panel per 4-column
           tile, gathered through the view's strides. *)
        for t = 0 to (nc / 4) - 1 do
          let j0 = !jc + (t * 4) in
          let base = t * kc * 4 in
          for p = 0 to kc - 1 do
            let o = c.off + ((!k0 + p) * sck) + (j0 * scj) in
            let q = base + (p * 4) in
            Array.unsafe_set cp q (bget cb o);
            Array.unsafe_set cp (q + 1) (bget cb (o + scj));
            Array.unsafe_set cp (q + 2) (bget cb (o + (2 * scj)));
            Array.unsafe_set cp (q + 3) (bget cb (o + (3 * scj)))
          done
        done;
        let i0 = ref 0 in
        while !i0 < m4 do
          let ib = !i0 in
          (* Pack 4 rows of B, K-major. *)
          for p = 0 to kc - 1 do
            let o = b.off + (ib * sbi) + ((!k0 + p) * sbk) in
            let q = p * 4 in
            Array.unsafe_set bp q (bget bb o);
            Array.unsafe_set bp (q + 1) (bget bb (o + sbi));
            Array.unsafe_set bp (q + 2) (bget bb (o + (2 * sbi)));
            Array.unsafe_set bp (q + 3) (bget bb (o + (3 * sbi)))
          done;
          for t = 0 to (nc / 4) - 1 do
            let j0 = !jc + (t * 4) in
            let a0 = a.off + (ib * sai) + (j0 * saj) in
            let a1 = a0 + sai in
            let a2 = a1 + sai in
            let a3 = a2 + sai in
            let r00 = ref (bget ab a0) in
            let r01 = ref (bget ab (a0 + saj)) in
            let r02 = ref (bget ab (a0 + (2 * saj))) in
            let r03 = ref (bget ab (a0 + (3 * saj))) in
            let r10 = ref (bget ab a1) in
            let r11 = ref (bget ab (a1 + saj)) in
            let r12 = ref (bget ab (a1 + (2 * saj))) in
            let r13 = ref (bget ab (a1 + (3 * saj))) in
            let r20 = ref (bget ab a2) in
            let r21 = ref (bget ab (a2 + saj)) in
            let r22 = ref (bget ab (a2 + (2 * saj))) in
            let r23 = ref (bget ab (a2 + (3 * saj))) in
            let r30 = ref (bget ab a3) in
            let r31 = ref (bget ab (a3 + saj)) in
            let r32 = ref (bget ab (a3 + (2 * saj))) in
            let r33 = ref (bget ab (a3 + (3 * saj))) in
            let cbase = t * kc * 4 in
            for p = 0 to kc - 1 do
              let q = p * 4 in
              let b0 = Array.unsafe_get bp q in
              let b1 = Array.unsafe_get bp (q + 1) in
              let b2 = Array.unsafe_get bp (q + 2) in
              let b3 = Array.unsafe_get bp (q + 3) in
              let qc = cbase + q in
              let c0 = Array.unsafe_get cp qc in
              let c1 = Array.unsafe_get cp (qc + 1) in
              let c2 = Array.unsafe_get cp (qc + 2) in
              let c3 = Array.unsafe_get cp (qc + 3) in
              r00 := !r00 +. (b0 *. c0);
              r01 := !r01 +. (b0 *. c1);
              r02 := !r02 +. (b0 *. c2);
              r03 := !r03 +. (b0 *. c3);
              r10 := !r10 +. (b1 *. c0);
              r11 := !r11 +. (b1 *. c1);
              r12 := !r12 +. (b1 *. c2);
              r13 := !r13 +. (b1 *. c3);
              r20 := !r20 +. (b2 *. c0);
              r21 := !r21 +. (b2 *. c1);
              r22 := !r22 +. (b2 *. c2);
              r23 := !r23 +. (b2 *. c3);
              r30 := !r30 +. (b3 *. c0);
              r31 := !r31 +. (b3 *. c1);
              r32 := !r32 +. (b3 *. c2);
              r33 := !r33 +. (b3 *. c3)
            done;
            bset ab a0 !r00;
            bset ab (a0 + saj) !r01;
            bset ab (a0 + (2 * saj)) !r02;
            bset ab (a0 + (3 * saj)) !r03;
            bset ab a1 !r10;
            bset ab (a1 + saj) !r11;
            bset ab (a1 + (2 * saj)) !r12;
            bset ab (a1 + (3 * saj)) !r13;
            bset ab a2 !r20;
            bset ab (a2 + saj) !r21;
            bset ab (a2 + (2 * saj)) !r22;
            bset ab (a2 + (3 * saj)) !r23;
            bset ab a3 !r30;
            bset ab (a3 + saj) !r31;
            bset ab (a3 + (2 * saj)) !r32;
            bset ab (a3 + (3 * saj)) !r33
          done;
          i0 := !i0 + 4
        done;
        k0 := !k0 + kc
      done;
      jc := !jc + nc
    done;
    if m4 < m then
      gemm_s ~m:(m - m4) ~n ~k
        { a with off = a.off + (m4 * sai) }
        { b with off = b.off + (m4 * sbi) }
        c;
    if n4 < n then
      gemm_s ~m:m4 ~n:(n - n4) ~k
        { a with off = a.off + (n4 * saj) }
        b
        { c with off = c.off + (n4 * scj) }
  end

(* Pack a strided vector into a contiguous scratch (reused across every
   row of the output). *)
let pack_vec v ~len =
  let p = Array.make (max 1 len) 0.0 in
  let o = ref v.off and s = v.st.(0) in
  for i = 0 to len - 1 do
    Array.unsafe_set p i (bget v.buf !o);
    o := !o + s
  done;
  p

let gemv_t ~m ~k a b c =
  let m4 = m land lnot 3 in
  if m4 = 0 then gemv_s ~m ~k a b c
  else begin
    let ab = a.buf and bb = b.buf in
    let sai = a.st.(0) and sbi = b.st.(0) and sbk = b.st.(1) in
    let cp = pack_vec c ~len:k in
    let i0 = ref 0 in
    while !i0 < m4 do
      let ib = !i0 in
      let a0 = a.off + (ib * sai) in
      let r0 = ref (bget ab a0) in
      let r1 = ref (bget ab (a0 + sai)) in
      let r2 = ref (bget ab (a0 + (2 * sai))) in
      let r3 = ref (bget ab (a0 + (3 * sai))) in
      let bo = ref (b.off + (ib * sbi)) in
      for p = 0 to k - 1 do
        let cv = Array.unsafe_get cp p in
        let o = !bo in
        r0 := !r0 +. (bget bb o *. cv);
        r1 := !r1 +. (bget bb (o + sbi) *. cv);
        r2 := !r2 +. (bget bb (o + (2 * sbi)) *. cv);
        r3 := !r3 +. (bget bb (o + (3 * sbi)) *. cv);
        bo := !bo + sbk
      done;
      bset ab a0 !r0;
      bset ab (a0 + sai) !r1;
      bset ab (a0 + (2 * sai)) !r2;
      bset ab (a0 + (3 * sai)) !r3;
      i0 := !i0 + 4
    done;
    if m4 < m then
      gemv_s ~m:(m - m4) ~k
        { a with off = a.off + (m4 * sai) }
        { b with off = b.off + (m4 * sbi) }
        c
  end

let ttv_t ~ni ~nj ~nk a b c =
  let j4 = nj land lnot 3 in
  if j4 = 0 then ttv_s ~ni ~nj ~nk a b c
  else begin
    let ab = a.buf and bb = b.buf in
    let sai = a.st.(0) and saj = a.st.(1) in
    let sbi = b.st.(0) and sbj = b.st.(1) and sbk = b.st.(2) in
    let cp = pack_vec c ~len:nk in
    for i = 0 to ni - 1 do
      let jt = ref 0 in
      while !jt < j4 do
        let j0 = !jt in
        let a0 = a.off + (i * sai) + (j0 * saj) in
        let r0 = ref (bget ab a0) in
        let r1 = ref (bget ab (a0 + saj)) in
        let r2 = ref (bget ab (a0 + (2 * saj))) in
        let r3 = ref (bget ab (a0 + (3 * saj))) in
        let bo = ref (b.off + (i * sbi) + (j0 * sbj)) in
        for p = 0 to nk - 1 do
          let cv = Array.unsafe_get cp p in
          let o = !bo in
          r0 := !r0 +. (bget bb o *. cv);
          r1 := !r1 +. (bget bb (o + sbj) *. cv);
          r2 := !r2 +. (bget bb (o + (2 * sbj)) *. cv);
          r3 := !r3 +. (bget bb (o + (3 * sbj)) *. cv);
          bo := !bo + sbk
        done;
        bset ab a0 !r0;
        bset ab (a0 + saj) !r1;
        bset ab (a0 + (2 * saj)) !r2;
        bset ab (a0 + (3 * saj)) !r3;
        jt := !jt + 4
      done
    done;
    if j4 < nj then
      ttv_s ~ni ~nj:(nj - j4) ~nk
        { a with off = a.off + (j4 * saj) }
        { b with off = b.off + (j4 * sbj) }
        c
  end

let ttm_t ~ni ~nj ~nl ~nk a b c =
  let sai = a.st.(0) and sbi = b.st.(0) in
  for i = 0 to ni - 1 do
    gemm_t ~m:nj ~n:nl ~k:nk
      { a with off = a.off + (i * sai); st = [| a.st.(1); a.st.(2) |] }
      { b with off = b.off + (i * sbi); st = [| b.st.(1); b.st.(2) |] }
      c
  done

let mttkrp_t ~ni ~nl ~nj ~nk a b c d =
  let l4 = nl land lnot 3 in
  if l4 = 0 then mttkrp_s ~ni ~nl ~nj ~nk a b c d
  else begin
    let ab = a.buf and bb = b.buf and cb = c.buf and db = d.buf in
    let sai = a.st.(0) and sal = a.st.(1) in
    let sbi = b.st.(0) and sbj = b.st.(1) and sbk = b.st.(2) in
    let scj = c.st.(0) and scl = c.st.(1) in
    let sdk = d.st.(0) and sdl = d.st.(1) in
    for i = 0 to ni - 1 do
      let lt = ref 0 in
      while !lt < l4 do
        let l0 = !lt in
        let a0 = a.off + (i * sai) + (l0 * sal) in
        let r0 = ref (bget ab a0) in
        let r1 = ref (bget ab (a0 + sal)) in
        let r2 = ref (bget ab (a0 + (2 * sal))) in
        let r3 = ref (bget ab (a0 + (3 * sal))) in
        for j = 0 to nj - 1 do
          let co = c.off + (j * scj) + (l0 * scl) in
          let c0 = bget cb co in
          let c1 = bget cb (co + scl) in
          let c2 = bget cb (co + (2 * scl)) in
          let c3 = bget cb (co + (3 * scl)) in
          let bo = ref (b.off + (i * sbi) + (j * sbj)) in
          let dof = ref (d.off + (l0 * sdl)) in
          for _p = 0 to nk - 1 do
            let bv = bget bb !bo in
            let o = !dof in
            r0 := !r0 +. (bv *. c0 *. bget db o);
            r1 := !r1 +. (bv *. c1 *. bget db (o + sdl));
            r2 := !r2 +. (bv *. c2 *. bget db (o + (2 * sdl)));
            r3 := !r3 +. (bv *. c3 *. bget db (o + (3 * sdl)));
            bo := !bo + sbk;
            dof := !dof + sdk
          done
        done;
        bset ab a0 !r0;
        bset ab (a0 + sal) !r1;
        bset ab (a0 + (2 * sal)) !r2;
        bset ab (a0 + (3 * sal)) !r3;
        lt := !lt + 4
      done
    done;
    if l4 < nl then
      mttkrp_s ~ni ~nl:(nl - l4) ~nj ~nk
        { a with off = a.off + (l4 * sal) }
        b
        { c with off = c.off + (l4 * scl) }
        { d with off = d.off + (l4 * sdl) }
  end

(* {2 Naive tier on views: the [Kernels] reference loop order}

   Same loop structure, zero-skip and fresh-accumulator discipline as
   the contiguous reference kernels, but through view strides. *)

let gemm_nv ~m ~n ~k a b c =
  let ab = a.buf and bb = b.buf and cb = c.buf in
  let sai = a.st.(0) and saj = a.st.(1) in
  let sbi = b.st.(0) and sbk = b.st.(1) in
  let sck = c.st.(0) and scj = c.st.(1) in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let bik = bget bb (b.off + (i * sbi) + (p * sbk)) in
      if bik <> 0.0 then begin
        let ao = ref (a.off + (i * sai)) and co = ref (c.off + (p * sck)) in
        for _j = 0 to n - 1 do
          bset ab !ao (bget ab !ao +. (bik *. bget cb !co));
          ao := !ao + saj;
          co := !co + scj
        done
      end
    done
  done

let gemv_nv ~m ~k a b c =
  let ab = a.buf and bb = b.buf and cb = c.buf in
  let sai = a.st.(0) and sbi = b.st.(0) and sbk = b.st.(1) and sck = c.st.(0) in
  for i = 0 to m - 1 do
    let acc = ref 0.0 in
    let bo = ref (b.off + (i * sbi)) and co = ref c.off in
    for _p = 0 to k - 1 do
      acc := !acc +. (bget bb !bo *. bget cb !co);
      bo := !bo + sbk;
      co := !co + sck
    done;
    let ao = a.off + (i * sai) in
    bset ab ao (bget ab ao +. !acc)
  done

let ttv_nv ~ni ~nj ~nk a b c =
  let ab = a.buf and bb = b.buf and cb = c.buf in
  let sai = a.st.(0) and saj = a.st.(1) in
  let sbi = b.st.(0) and sbj = b.st.(1) and sbk = b.st.(2) in
  let sck = c.st.(0) in
  for i = 0 to ni - 1 do
    for j = 0 to nj - 1 do
      let acc = ref 0.0 in
      let bo = ref (b.off + (i * sbi) + (j * sbj)) and co = ref c.off in
      for _p = 0 to nk - 1 do
        acc := !acc +. (bget bb !bo *. bget cb !co);
        bo := !bo + sbk;
        co := !co + sck
      done;
      let ao = a.off + (i * sai) + (j * saj) in
      bset ab ao (bget ab ao +. !acc)
    done
  done

let ttm_nv ~ni ~nj ~nl ~nk a b c =
  let ab = a.buf and bb = b.buf and cb = c.buf in
  let sai = a.st.(0) and saj = a.st.(1) and sal = a.st.(2) in
  let sbi = b.st.(0) and sbj = b.st.(1) and sbk = b.st.(2) in
  let sck = c.st.(0) and scl = c.st.(1) in
  for i = 0 to ni - 1 do
    for j = 0 to nj - 1 do
      for p = 0 to nk - 1 do
        let bv = bget bb (b.off + (i * sbi) + (j * sbj) + (p * sbk)) in
        if bv <> 0.0 then begin
          let ao = ref (a.off + (i * sai) + (j * saj)) in
          let co = ref (c.off + (p * sck)) in
          for _l = 0 to nl - 1 do
            bset ab !ao (bget ab !ao +. (bv *. bget cb !co));
            ao := !ao + sal;
            co := !co + scl
          done
        end
      done
    done
  done

let mttkrp_nv ~ni ~nl ~nj ~nk a b c d =
  let ab = a.buf and bb = b.buf and cb = c.buf and db = d.buf in
  let sai = a.st.(0) and sal = a.st.(1) in
  let sbi = b.st.(0) and sbj = b.st.(1) and sbk = b.st.(2) in
  let scj = c.st.(0) and scl = c.st.(1) in
  let sdk = d.st.(0) and sdl = d.st.(1) in
  for i = 0 to ni - 1 do
    for j = 0 to nj - 1 do
      for p = 0 to nk - 1 do
        let bv = bget bb (b.off + (i * sbi) + (j * sbj) + (p * sbk)) in
        if bv <> 0.0 then begin
          let ao = ref (a.off + (i * sai)) in
          let co = ref (c.off + (j * scj)) in
          let dof = ref (d.off + (p * sdk)) in
          for _l = 0 to nl - 1 do
            bset ab !ao (bget ab !ao +. (bv *. bget cb !co *. bget db !dof));
            ao := !ao + sal;
            co := !co + scl;
            dof := !dof + sdl
          done
        end
      done
    done
  done

let innerprod_nv ~ni ~nj ~nk a x y =
  let ab = a.buf and xb = x.buf and yb = y.buf in
  let sxi = x.st.(0) and sxj = x.st.(1) and sxk = x.st.(2) in
  let syi = y.st.(0) and syj = y.st.(1) and syk = y.st.(2) in
  let acc = ref 0.0 in
  for i = 0 to ni - 1 do
    for j = 0 to nj - 1 do
      let xo = ref (x.off + (i * sxi) + (j * sxj)) in
      let yo = ref (y.off + (i * syi) + (j * syj)) in
      for _p = 0 to nk - 1 do
        acc := !acc +. (bget xb !xo *. bget yb !yo);
        xo := !xo + sxk;
        yo := !yo + syk
      done
    done
  done;
  bset ab a.off (bget ab a.off +. !acc)

(* {2 Dispatch} *)

(* The shape class picks between the packed micro tier and the simple
   flat loops: packing and register tiles only pay for themselves when
   the register-tiled dimensions have full tiles and the reduction is
   deep enough to amortize the panel gather. Both tiers share the same
   per-element accumulation order, so the class is purely a performance
   choice. *)
let shape_class ~kernel ~dims =
  let p = Distal_support.Ints.prod dims in
  match kernel with
  | _ when not (List.mem kernel kernel_names) ->
      invalid_arg ("Kernel_registry.shape_class: unknown kernel " ^ kernel)
  | _ when p < 512 -> `Simple
  | "gemm" -> if dims.(0) >= 4 && dims.(1) >= 4 && dims.(2) >= 4 then `Micro else `Simple
  | "gemv" -> if dims.(0) >= 4 && dims.(1) >= 8 then `Micro else `Simple
  | "ttv" -> if dims.(1) >= 4 && dims.(2) >= 8 then `Micro else `Simple
  | "ttm" -> if dims.(1) >= 4 && dims.(2) >= 4 && dims.(3) >= 4 then `Micro else `Simple
  | "mttkrp" -> if dims.(1) >= 4 then `Micro else `Simple
  | _ -> `Simple

let arity_error kernel views =
  invalid_arg
    (Printf.sprintf "Kernel_registry.%s: %d operands" kernel (Array.length views))

let run_views mode ~kernel ~dims (views : view array) =
  match mode with
  | Off -> invalid_arg "Kernel_registry.run_views: mode is off"
  | Naive -> (
      match (kernel, views) with
      | "gemm", [| a; b; c |] -> gemm_nv ~m:dims.(0) ~n:dims.(1) ~k:dims.(2) a b c
      | "gemv", [| a; b; c |] -> gemv_nv ~m:dims.(0) ~k:dims.(1) a b c
      | "ttv", [| a; b; c |] -> ttv_nv ~ni:dims.(0) ~nj:dims.(1) ~nk:dims.(2) a b c
      | "ttm", [| a; b; c |] ->
          ttm_nv ~ni:dims.(0) ~nj:dims.(1) ~nl:dims.(2) ~nk:dims.(3) a b c
      | "mttkrp", [| a; b; c; d |] ->
          mttkrp_nv ~ni:dims.(0) ~nl:dims.(1) ~nj:dims.(2) ~nk:dims.(3) a b c d
      | "innerprod", [| a; x; y |] ->
          innerprod_nv ~ni:dims.(0) ~nj:dims.(1) ~nk:dims.(2) a x y
      | k, vs -> arity_error k vs)
  | Tiled -> (
      let micro = shape_class ~kernel ~dims = `Micro in
      match (kernel, views) with
      | "gemm", [| a; b; c |] ->
          (if micro then gemm_t else gemm_s) ~m:dims.(0) ~n:dims.(1) ~k:dims.(2) a b c
      | "gemv", [| a; b; c |] ->
          (if micro then gemv_t else gemv_s) ~m:dims.(0) ~k:dims.(1) a b c
      | "ttv", [| a; b; c |] ->
          (if micro then ttv_t else ttv_s) ~ni:dims.(0) ~nj:dims.(1) ~nk:dims.(2) a b c
      | "ttm", [| a; b; c |] ->
          (if micro then ttm_t else ttm_s)
            ~ni:dims.(0) ~nj:dims.(1) ~nl:dims.(2) ~nk:dims.(3) a b c
      | "mttkrp", [| a; b; c; d |] ->
          (if micro then mttkrp_t else mttkrp_s)
            ~ni:dims.(0) ~nl:dims.(1) ~nj:dims.(2) ~nk:dims.(3) a b c d
      | "innerprod", [| a; x; y |] ->
          innerprod_s ~ni:dims.(0) ~nj:dims.(1) ~nk:dims.(2) a x y
      | k, vs -> arity_error k vs)

(* {2 The substitute path: whole [Dense] operands}

   Operands arrive in [Kernel_match.check] order (output first). Shapes
   are unified against the entry's access letters; a mismatch raises
   [Invalid_argument] naming the kernel and every shape, like
   [Kernels]. *)

let dims_of kernel (ops : Dense.t list) =
  let e = entry kernel in
  let accs = e.lhs :: e.factors in
  let shapes = List.map Dense.shape ops in
  let bad () =
    invalid_arg
      (Printf.sprintf "Kernel_registry.%s: incompatible shapes %s" kernel
         (String.concat " "
            (List.map
               (fun s ->
                 "["
                 ^ String.concat "x" (List.map string_of_int (Array.to_list s))
                 ^ "]")
               shapes)))
  in
  if List.length accs <> List.length ops then bad ();
  let ext : (char, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter2
    (fun acc shape ->
      if String.length acc <> Array.length shape then bad ();
      String.iteri
        (fun d ch ->
          match Hashtbl.find_opt ext ch with
          | Some x -> if x <> shape.(d) then bad ()
          | None -> Hashtbl.replace ext ch shape.(d))
        acc)
    accs shapes;
  Array.init
    (String.length (letters e))
    (fun i -> Hashtbl.find ext (letters e).[i])

let view_of_dense t (acc : string) =
  let st = Distal_support.Ints.row_major_strides (Dense.shape t) in
  ignore acc;
  { buf = Dense.unsafe_data t; off = 0; st }

let run_named mode ~kernel (ops : Dense.t list) =
  match mode with
  | Off | Naive -> (
      (* The contiguous reference kernels: on substituted leaves [off]
         and [naive] are the same computation (the registry adds nothing
         over [Kernels] here). *)
      match (kernel, ops) with
      | "gemm", [ a; b; c ] -> Kernels.gemm ~a ~b ~c
      | "gemv", [ a; b; c ] -> Kernels.gemv ~a ~b ~c
      | "ttv", [ a; b; c ] -> Kernels.ttv ~a ~b ~c
      | "ttm", [ a; b; c ] -> Kernels.ttm ~a ~b ~c
      | "mttkrp", [ a; b; c; d ] -> Kernels.mttkrp ~a ~b ~c ~d
      | "innerprod", [ a; x; y ] -> Dense.add_lin a 0 (Kernels.inner_product x y)
      | k, _ -> invalid_arg ("Kernel_registry.run_named: unknown kernel " ^ k))
  | Tiled ->
      let e = entry kernel in
      let dims = dims_of kernel ops in
      let views =
        Array.of_list (List.map2 view_of_dense ops (e.lhs :: e.factors))
      in
      run_views Tiled ~kernel ~dims views
