module Ints = Distal_support.Ints

type t = { shape : int array; strides : int array; data : float array }

let create shape =
  {
    shape = Array.copy shape;
    strides = Ints.row_major_strides shape;
    data = Array.make (Ints.prod shape) 0.0;
  }

let dims t = Array.length t.shape
let shape t = Array.copy t.shape
let size t = Array.length t.data
let bytes t = 8 * size t

let offset t coord =
  assert (Array.length coord = dims t);
  let acc = ref 0 in
  Array.iteri
    (fun d c ->
      assert (0 <= c && c < t.shape.(d));
      acc := !acc + (c * t.strides.(d)))
    coord;
  !acc

let get t coord = t.data.(offset t coord)
let set t coord v = t.data.(offset t coord) <- v
let add_at t coord v = t.data.(offset t coord) <- t.data.(offset t coord) +. v
let fill t v = Array.fill t.data 0 (Array.length t.data) v
let unsafe_data t = t.data
let get_lin t i = t.data.(i)
let set_lin t i v = t.data.(i) <- v
let add_lin t i v = t.data.(i) <- t.data.(i) +. v

let init shape f =
  let t = create shape in
  Ints.iter_box shape (fun c -> set t c (f c));
  t

let copy t = { t with shape = Array.copy t.shape; data = Array.copy t.data }

let random rng shape = init shape (fun _ -> Distal_support.Rng.float rng 1.0)

let extract t r =
  assert (Rect.subset r (Rect.full t.shape));
  let out = create (Rect.extents r) in
  let lo = (r : Rect.t).lo in
  Ints.iter_box (Rect.extents r) (fun off ->
      let src = Array.init (dims t) (fun d -> lo.(d) + off.(d)) in
      set out off (get t src));
  out

let blit_into ~src ~dst r =
  assert (Rect.subset r (Rect.full dst.shape));
  assert (Ints.equal (shape src) (Rect.extents r));
  let lo = (r : Rect.t).lo in
  Ints.iter_box (Rect.extents r) (fun off ->
      let d = Array.init (dims dst) (fun k -> lo.(k) + off.(k)) in
      set dst d (get src off))

let accumulate_into ~src ~dst r =
  assert (Rect.subset r (Rect.full dst.shape));
  assert (Ints.equal (shape src) (Rect.extents r));
  let lo = (r : Rect.t).lo in
  Ints.iter_box (Rect.extents r) (fun off ->
      let d = Array.init (dims dst) (fun k -> lo.(k) + off.(k)) in
      add_at dst d (get src off))

let map2 f a b =
  assert (Ints.equal a.shape b.shape);
  { a with data = Array.map2 f a.data b.data; shape = Array.copy a.shape }

let fold f init t = Array.fold_left f init t.data

let max_abs_diff a b =
  assert (Ints.equal a.shape b.shape);
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := max !m (abs_float (x -. b.data.(i)))) a.data;
  !m

let approx_equal ?(tol = 1e-9) a b =
  Ints.equal a.shape b.shape
  && Array.for_all (fun ok -> ok)
       (Array.init (size a) (fun i ->
            let x = a.data.(i) and y = b.data.(i) in
            abs_float (x -. y) <= tol *. (1.0 +. abs_float x +. abs_float y)))
