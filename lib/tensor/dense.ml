module Ints = Distal_support.Ints
module A1 = Bigarray.Array1

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

(* Backed by a flat C-layout [Bigarray.Array1] of float64: elements live
   unboxed in one contiguous malloc'd block outside the OCaml heap, so
   leaf kernels (Kernels, Kernel_registry, Expr_stage) can walk them with
   [unsafe_get]/[unsafe_set] at native speed and the GC never scans or
   moves the payload. *)
type t = { shape : int array; strides : int array; data : buf }

let alloc n = A1.create Bigarray.float64 Bigarray.c_layout n

let create shape =
  let data = alloc (Ints.prod shape) in
  A1.fill data 0.0;
  { shape = Array.copy shape; strides = Ints.row_major_strides shape; data }

let dims t = Array.length t.shape
let shape t = Array.copy t.shape
let size t = A1.dim t.data
let bytes t = 8 * size t

let offset t coord =
  assert (Array.length coord = dims t);
  let acc = ref 0 in
  Array.iteri
    (fun d c ->
      assert (0 <= c && c < t.shape.(d));
      acc := !acc + (c * t.strides.(d)))
    coord;
  !acc

let get t coord = t.data.{offset t coord}
let set t coord v = t.data.{offset t coord} <- v
let add_at t coord v = t.data.{offset t coord} <- t.data.{offset t coord} +. v
let fill t v = A1.fill t.data v
let unsafe_data t = t.data
let get_lin t i = t.data.{i}
let set_lin t i v = t.data.{i} <- v
let add_lin t i v = t.data.{i} <- t.data.{i} +. v
let unsafe_get t i = A1.unsafe_get t.data i
let unsafe_set t i v = A1.unsafe_set t.data i v

(* Rect-subset and shape preconditions raise [Invalid_argument] naming
   the operation, the rect and the tensor shape (the [Kernels]
   convention): a bad footprint must be diagnosable from the message
   alone, and the checks must survive [-noassert] builds — they guard
   raw [Array1.blit]/[unsafe_set] offset arithmetic. *)
let shape_str shape =
  "[" ^ String.concat "x" (List.map string_of_int (Array.to_list shape)) ^ "]"

let check_subset fn r shape =
  if not (Rect.subset r (Rect.full shape)) then
    invalid_arg
      (Printf.sprintf "Dense.%s: rect %s outside tensor shape %s" fn
         (Rect.to_string r) (shape_str shape))

let check_extents fn ~what got r =
  if not (Ints.equal got (Rect.extents r)) then
    invalid_arg
      (Printf.sprintf "Dense.%s: %s shape %s does not match extents %s of rect %s"
         fn what (shape_str got)
         (shape_str (Rect.extents r))
         (Rect.to_string r))

let of_buf data shape =
  let n = Ints.prod shape in
  if A1.dim data < n then
    invalid_arg
      (Printf.sprintf "Dense.of_buf: buffer of %d elements cannot back shape %s"
         (A1.dim data) (shape_str shape));
  let data = if A1.dim data = n then data else A1.sub data 0 n in
  { shape = Array.copy shape; strides = Ints.row_major_strides shape; data }

let init shape f =
  let t = create shape in
  Ints.iter_box shape (fun c -> set t c (f c));
  t

let copy t =
  let data = alloc (size t) in
  A1.blit t.data data;
  { shape = Array.copy t.shape; strides = Array.copy t.strides; data }

let random rng shape = init shape (fun _ -> Distal_support.Rng.float rng 1.0)

(* Sub-box copies walk whole innermost-dimension rows: the row is
   contiguous in both source and destination, so each one is a single
   [Array1.blit] (extract/blit_into) or a flat unsafe loop
   (accumulate_into) instead of a per-element coordinate walk. This is
   the same strided-copy discipline the registry's kernel packing uses. *)
let rows_iter ~src_shape ~r f =
  let lo = (r : Rect.t).lo in
  let ext = Rect.extents r in
  let nd = Array.length ext in
  if nd = 0 then f 0 0 1
  else begin
    let row = ext.(nd - 1) in
    if row > 0 && Array.for_all (fun e -> e > 0) ext then begin
      let sstr = Ints.row_major_strides src_shape in
      let outer = Array.sub ext 0 (nd - 1) in
      let dstr = Ints.row_major_strides ext in
      Ints.iter_box outer (fun oc ->
          let soff = ref lo.(nd - 1) and doff = ref 0 in
          Array.iteri
            (fun d c ->
              soff := !soff + ((lo.(d) + c) * sstr.(d));
              doff := !doff + (c * dstr.(d)))
            oc;
          f !soff !doff row)
    end
  end

let extract t r =
  check_subset "extract" r t.shape;
  let out = create (Rect.extents r) in
  rows_iter ~src_shape:t.shape ~r (fun soff doff len ->
      A1.blit (A1.sub t.data soff len) (A1.sub out.data doff len));
  out

let extract_into ~src ~dst r =
  check_subset "extract_into" r src.shape;
  check_extents "extract_into" ~what:"destination" dst.shape r;
  rows_iter ~src_shape:src.shape ~r (fun soff doff len ->
      A1.blit (A1.sub src.data soff len) (A1.sub dst.data doff len))

let blit_into ~src ~dst r =
  check_subset "blit_into" r dst.shape;
  check_extents "blit_into" ~what:"source" src.shape r;
  rows_iter ~src_shape:dst.shape ~r (fun doff soff len ->
      A1.blit (A1.sub src.data soff len) (A1.sub dst.data doff len))

let accumulate_into ~src ~dst r =
  check_subset "accumulate_into" r dst.shape;
  check_extents "accumulate_into" ~what:"source" src.shape r;
  let s = src.data and d = dst.data in
  rows_iter ~src_shape:dst.shape ~r (fun doff soff len ->
      for i = 0 to len - 1 do
        A1.unsafe_set d (doff + i)
          (A1.unsafe_get d (doff + i) +. A1.unsafe_get s (soff + i))
      done)

let map2 f a b =
  assert (Ints.equal a.shape b.shape);
  let out = create a.shape in
  for i = 0 to size a - 1 do
    out.data.{i} <- f a.data.{i} b.data.{i}
  done;
  out

let fold f init t =
  let acc = ref init in
  for i = 0 to size t - 1 do
    acc := f !acc t.data.{i}
  done;
  !acc

let max_abs_diff a b =
  assert (Ints.equal a.shape b.shape);
  let m = ref 0.0 in
  for i = 0 to size a - 1 do
    m := max !m (abs_float (a.data.{i} -. b.data.{i}))
  done;
  !m

let approx_equal ?(tol = 1e-9) a b =
  Ints.equal a.shape b.shape
  &&
  let ok = ref true in
  for i = 0 to size a - 1 do
    let x = a.data.{i} and y = b.data.{i} in
    if not (abs_float (x -. y) <= tol *. (1.0 +. abs_float x +. abs_float y)) then
      ok := false
  done;
  !ok
