(** The leaf kernel registry: native-speed microkernels behind [substitute].

    Each substituted leaf is dispatched to the fastest applicable
    implementation keyed by (kernel name, dtype, shape class). dtype is
    always float64 (the substrate of {!Dense}); the shape class picks
    between cache-blocked, register-tiled microkernels and simple flat
    loops.

    {b Accumulation order.} The [Tiled] tier replays the evaluator's
    per-output-element operation sequence exactly: the accumulator is
    initialized from the current output element, one multiply-add is
    applied per reduction point in ascending canonical order, and the
    value is stored back. Register tiles and K-blocking only interleave
    chains of {e different} output elements, so a tiled run of a staged
    leaf is bit-identical to the scalar evaluator. The [Naive] tier
    instead replays the {!Kernels} reference loop order (fresh
    accumulators, zero-skip). See DESIGN.md "Leaf kernel registry". *)

type mode = Off | Naive | Tiled
(** [Off] — the registry is never consulted (substituted leaves run the
    {!Kernels} reference loops, staged leaves run their staged plans).
    [Naive] — registry dispatch to the reference-order implementations.
    [Tiled] — registry dispatch to the blocked microkernels (default). *)

val mode_to_string : mode -> string

val default_mode : unit -> mode
(** The mode selected by [DISTAL_KERNELS] ({!Distal_support.Env.kernels});
    [Tiled] when unset. *)

(** {2 The kernel table} *)

type entry = {
  name : string;
  lhs : string;  (** access letters of the output *)
  factors : string list;  (** access letters of each rhs factor *)
  flops_per_point : float;
}

val entries : entry list
(** One entry per substitutable kernel — the single source of truth the
    statement matcher ([Kernel_match]) unifies against. Canonical letter
    order (the order of every [dims] array below) is first appearance
    scanning [lhs] then [factors]. *)

val kernel_names : string list

val canonical_letters : entry -> string
(** The canonical letter sequence of an entry: first appearance scanning
    [lhs] then [factors]. Its length is the rank of the [dims] arrays. *)

val flops : kernel:string -> dims:int array -> float
(** Declared flop count over the canonical iteration space [dims].
    @raise Invalid_argument on unknown kernels or wrong rank. *)

(** {2 Dispatch} *)

type view = { buf : Dense.buf; off : int; st : int array }
(** A strided window into a dense buffer: element [(i0,...,id)] of the
    operand lives at [off + Σ i_n * st.(n)], with one stride per letter
    of the operand's access pattern. *)

val shape_class : kernel:string -> dims:int array -> [ `Micro | `Simple ]
(** The implementation tier [Tiled] dispatch selects — a performance
    choice only; both tiers share the same accumulation order. *)

val run_views : mode -> kernel:string -> dims:int array -> view array -> unit
(** Run a kernel over strided views, output view first then factors in
    entry order, [dims] in canonical letter order. All kernels accumulate
    into the output ([+=] semantics).
    @raise Invalid_argument on [Off], unknown kernels, or wrong arity. *)

val run_named : mode -> kernel:string -> Dense.t list -> unit
(** The substitute path: whole contiguous operands, output first. Under
    [Off] and [Naive] this runs the {!Kernels} reference implementation
    (identical computations); under [Tiled], the blocked microkernels.
    @raise Invalid_argument on shape mismatch, naming the kernel and
    every operand shape. *)
