(** Dense row-major tensors of 64-bit floats.

    This is the data substrate under both the "global" view of a logical
    region and the per-processor local buffers the runtime materializes at
    communicate points. A rank-0 tensor (empty [dims]) is a scalar. *)

type t

val create : int array -> t
(** Zero-filled tensor of the given shape. *)

val init : int array -> (int array -> float) -> t
val dims : t -> int
val shape : t -> int array
val size : t -> int
(** Number of elements. *)

val bytes : t -> int
(** Size in bytes (8 per element). *)

val get : t -> int array -> float
val set : t -> int array -> float -> unit
val add_at : t -> int array -> float -> unit
val fill : t -> float -> unit

val get_lin : t -> int -> float
(** Access by row-major linear offset (used by leaf kernels). *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The backing storage: a flat C-layout bigarray of unboxed float64. *)

val unsafe_data : t -> buf
(** The backing row-major element block, unguarded. For staged leaf
    evaluators and registry kernels that precompute linear offsets;
    everything else should go through the checked accessors. *)

val set_lin : t -> int -> float -> unit
val add_lin : t -> int -> float -> unit

val unsafe_get : t -> int -> float
(** Unchecked linear read ([Bigarray.Array1.unsafe_get]). Kernel hot
    loops only: the caller owns the bounds proof. *)

val unsafe_set : t -> int -> float -> unit

val offset : t -> int array -> int
(** Row-major linear offset of a coordinate. *)

val copy : t -> t

val random : Distal_support.Rng.t -> int array -> t
(** Uniform entries in [\[0, 1)]. *)

val of_buf : buf -> int array -> t
(** [of_buf b shape] views the first [prod shape] elements of [b] as a
    tensor of that shape, sharing storage — no copy. The bridge from
    {!Distal_support.Buf_pool} blocks (whose power-of-two capacities may
    exceed the shape) to tensor views; contents are whatever the block
    holds. @raise Invalid_argument when [b] is too small. *)

val extract : t -> Rect.t -> t
(** [extract t r] copies the sub-box [r] of [t] into a fresh tensor whose
    shape is [Rect.extents r]. This models a runtime copy into a local
    instance. @raise Invalid_argument when [r] is not inside [t]'s shape
    (message carries the rect and the shape). *)

val extract_into : src:t -> dst:t -> Rect.t -> unit
(** Allocation-free {!extract}: copies the sub-box [r] of [src] into
    [dst], which must be shaped [Rect.extents r]. The run phase's fill
    for pooled instance buffers. @raise Invalid_argument on a rect
    outside [src] or a destination shape mismatch. *)

val blit_into : src:t -> dst:t -> Rect.t -> unit
(** [blit_into ~src ~dst r] writes [src] (shaped [Rect.extents r]) into the
    sub-box [r] of [dst]. @raise Invalid_argument on a rect outside [dst]
    or a source shape mismatch. *)

val accumulate_into : src:t -> dst:t -> Rect.t -> unit
(** Like {!blit_into} but adds into the destination (reduction write-back).
    @raise Invalid_argument on the same precondition violations. *)

val map2 : (float -> float -> float) -> t -> t -> t
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val approx_equal : ?tol:float -> t -> t -> bool
(** Shape equality plus componentwise closeness: |a-b| <= tol * (1 + |a| + |b|). *)

val max_abs_diff : t -> t -> float
