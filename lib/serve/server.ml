(* The distald server engine: a select-driven loop over a Unix-domain
   socket serving concurrent clients from one shared session (one plan
   cache, one result cache, one executor domain pool).

   Requests are not served on arrival. A submit is admitted into a
   bounded queue (or rejected with a retry-after once the bound is hit —
   overload degrades into explicit backpressure instead of piling up),
   and the queue is flushed once its oldest entry has waited out the
   batching window. A flush groups the queue by plan fingerprint, so K
   same-shape requests that arrived within one window cost one compile
   plus K runs (and, for byte-identical requests, one run plus K-1
   result-cache replays). Stats and shutdown messages bypass the queue.

   Clients that die mid-request are detected as EOF (possibly inside a
   frame) or as a failed reply write; either way their queue entries are
   discarded and their admission slots freed — a killed client never
   wedges the server or leaks capacity. The server keeps no durable
   state: a killed-and-restarted distald starts with cold caches and
   recompiles on miss, reproducing identical results (the simulator is
   deterministic), which is the checkpoint-free recovery story the
   robustness tests exercise. *)

module Api = Distal.Api
module Obs = Distal_obs
module Wire = Distal_support.Wire
module Env = Distal_support.Env

type config = {
  socket_path : string;
  queue_limit : int;
  batch_window : float;
  plan_cache : int;
  result_cache : int;
  domains : int option;
  quiet : bool;
}

let default_queue_limit = 64
let default_batch_window = 0.002

let config ?queue_limit ?batch_window ?plan_cache ?result_cache ?domains
    ?(quiet = false) ~socket_path () =
  let pick opt env default = match opt with Some v -> v | None -> Option.value (env ()) ~default in
  let queue_limit = pick queue_limit Env.serve_queue default_queue_limit in
  let batch_window = pick batch_window Env.serve_batch_window default_batch_window in
  let plan_cache = pick plan_cache Env.serve_cache Session.default_plan_capacity in
  let result_cache =
    match result_cache with
    | Some c -> c
    | None -> if plan_cache = 0 then 0 else Session.default_result_capacity
  in
  if queue_limit < 1 then invalid_arg "Server.config: queue_limit must be >= 1";
  if not (Float.is_finite batch_window) || batch_window < 0.0 then
    invalid_arg "Server.config: batch_window must be >= 0";
  { socket_path; queue_limit; batch_window; plan_cache; result_cache; domains; quiet }

type client = {
  fd : Unix.file_descr;
  dec : Wire.decoder;
  buf : Bytes.t;
}

type entry = {
  submit : Protocol.submit;
  request : Api.request;
  fingerprint : string;
  owner : Unix.file_descr;  (* identity of the submitting client *)
  arrived : float;
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  session : Session.t;
  clients : (Unix.file_descr, client) Hashtbl.t;
  queue : entry Queue.t;
  mutable served : int;
  mutable stop : bool;
}

let now () = Unix.gettimeofday ()

let log t fmt =
  if t.cfg.quiet then Printf.ifprintf stdout fmt
  else Printf.fprintf stdout (fmt ^^ "%!")

let metric t name =
  Obs.Metrics.inc (Obs.Metrics.counter (Session.metrics t.session) name) 1.0

let set_gauge t name v =
  Obs.Metrics.set (Obs.Metrics.gauge (Session.metrics t.session) name) v

let observe t name v =
  Obs.Metrics.observe (Obs.Metrics.histogram (Session.metrics t.session) name) v

let queue_depth t = Queue.length t.queue

let create cfg =
  (* A reply to a vanished client must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists cfg.socket_path then Unix.unlink cfg.socket_path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listener 64;
  {
    cfg;
    listener;
    session =
      Session.create ~plan_cache:cfg.plan_cache ~result_cache:cfg.result_cache
        ?domains:cfg.domains ();
    clients = Hashtbl.create 16;
    queue = Queue.create ();
    served = 0;
    stop = false;
  }

let session t = t.session

(* {2 Client lifecycle} *)

let drop_client t fd ~mid_request =
  if Hashtbl.mem t.clients fd then begin
    Hashtbl.remove t.clients fd;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    metric t "serve.disconnects";
    if mid_request then metric t "serve.client_kills";
    (* Free the dead client's admission slots: its queued requests can
       never be answered, so they must not count against the bound (or
       waste a batch's compute). *)
    let keep = Queue.create () in
    Queue.iter (fun e -> if e.owner <> fd then Queue.add e keep) t.queue;
    Queue.clear t.queue;
    Queue.transfer keep t.queue;
    set_gauge t "serve.queue_depth" (float_of_int (queue_depth t))
  end

let send t fd msg =
  match Wire.send fd (Protocol.encode_server msg) with
  | () -> true
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      drop_client t fd ~mid_request:true;
      false

(* {2 Message handling} *)

let stats_reply t =
  set_gauge t "serve.queue_depth" (float_of_int (queue_depth t));
  Protocol.StatsReply
    {
      queue_depth = queue_depth t;
      served = t.served;
      metrics = Obs.Metrics.to_json (Session.metrics t.session);
    }

let admit t fd (s : Protocol.submit) =
  if queue_depth t >= t.cfg.queue_limit then begin
    metric t "serve.rejected";
    (* Overloaded: tell the client when the current backlog will have
       drained a window, rather than letting the queue grow without
       bound. *)
    let retry_after_s = t.cfg.batch_window +. 0.001 in
    ignore
      (send t fd
         (Protocol.Rejected
            {
              rid = s.Protocol.id;
              retry_after_s;
              reason =
                Printf.sprintf "queue full (depth %d, limit %d)" (queue_depth t)
                  t.cfg.queue_limit;
            }))
  end
  else
    match Protocol.to_request s with
    | Error reason ->
        metric t "serve.bad_requests";
        ignore (send t fd (Protocol.Failed { rid = s.Protocol.id; reason }))
    | Ok request ->
        Queue.add
          {
            submit = s;
            request;
            fingerprint = Api.request_fingerprint request;
            owner = fd;
            arrived = now ();
          }
          t.queue;
        metric t "serve.admitted";
        set_gauge t "serve.queue_depth" (float_of_int (queue_depth t))

let handle_message t fd = function
  | Protocol.Submit s -> admit t fd s
  | Protocol.Stats -> ignore (send t fd (stats_reply t))
  | Protocol.Shutdown ->
      log t "distald: shutdown requested\n";
      ignore (send t fd Protocol.ShutdownAck);
      t.stop <- true

let handle_readable t fd =
  match Hashtbl.find_opt t.clients fd with
  | None -> ()
  | Some c -> (
      match Unix.read c.fd c.buf 0 (Bytes.length c.buf) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          drop_client t fd ~mid_request:(Wire.pending c.dec)
      | 0 ->
          (* EOF: clean if on a frame boundary, a mid-request kill if the
             decoder holds a partial frame. *)
          drop_client t fd ~mid_request:(Wire.pending c.dec)
      | n ->
          Wire.feed c.dec c.buf 0 n;
          let rec drain () =
            if Hashtbl.mem t.clients fd && not t.stop then
              match Wire.next c.dec with
              | Ok None -> ()
              | Ok (Some payload) -> (
                  match Protocol.decode_client payload with
                  | Ok msg ->
                      handle_message t fd msg;
                      drain ()
                  | Error e ->
                      metric t "serve.bad_requests";
                      ignore (send t fd (Protocol.Failed { rid = -1; reason = e }));
                      drop_client t fd ~mid_request:false)
              | Error e ->
                  log t "distald: dropping client (%s)\n" e;
                  drop_client t fd ~mid_request:true
          in
          drain ())

let accept t =
  match Unix.accept t.listener with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | fd, _ ->
      Hashtbl.replace t.clients fd { fd; dec = Wire.decoder (); buf = Bytes.create 65536 };
      metric t "serve.connects"

(* {2 Batched execution} *)

(* Group the drained queue by fingerprint, preserving arrival order of
   first occurrence — each group is one compile (plan-cache single
   flight) plus one run per member (byte-identical members collapse onto
   the result cache). *)
let group_by_fingerprint entries =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl e.fingerprint with
      | Some l -> l := e :: !l
      | None ->
          Hashtbl.add tbl e.fingerprint (ref [ e ]);
          order := e.fingerprint :: !order)
    entries;
  List.rev_map (fun fp -> List.rev !(Hashtbl.find tbl fp)) !order

let serve_entry t ~batch e =
  let s = e.submit in
  let faults =
    match s.Protocol.faults with
    | None -> Ok None
    | Some spec -> Result.map Option.some (Api.Fault.parse spec)
  in
  let reply =
    match faults with
    | Error reason -> Protocol.Failed { rid = s.Protocol.id; reason }
    | Ok faults -> (
        match
          Session.run ~mode:s.Protocol.mode ?faults ~seed:s.Protocol.seed t.session
            e.request
        with
        | Error reason -> Protocol.Failed { rid = s.Protocol.id; reason }
        | Ok o ->
            t.served <- t.served + 1;
            Protocol.Result
              {
                rid = s.Protocol.id;
                plan_cached = o.Session.plan_cached;
                result_cached = o.Session.result_cached;
                batch;
                stats = o.Session.result.Api.Exec.stats;
                output = o.Session.result.Api.Exec.output;
              })
  in
  if Hashtbl.mem t.clients e.owner then ignore (send t e.owner reply)

let flush t =
  let entries = List.of_seq (Queue.to_seq t.queue) in
  Queue.clear t.queue;
  set_gauge t "serve.queue_depth" 0.0;
  let groups = group_by_fingerprint entries in
  List.iter
    (fun group ->
      metric t "serve.batches";
      observe t "serve.batch_size" (float_of_int (List.length group));
      let batch = List.length group in
      List.iter (serve_entry t ~batch) group)
    groups

(* {2 The loop} *)

let oldest_arrival t = Queue.peek_opt t.queue |> Option.map (fun e -> e.arrived)

let step t ~idle_timeout =
  let timeout =
    match oldest_arrival t with
    | None -> idle_timeout
    | Some arrived -> Float.max 0.0 (arrived +. t.cfg.batch_window -. now ())
  in
  let fds = t.listener :: Hashtbl.fold (fun fd _ acc -> fd :: acc) t.clients [] in
  (match Unix.select fds [] [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, _, _ ->
      List.iter
        (fun fd -> if fd = t.listener then accept t else handle_readable t fd)
        readable);
  match oldest_arrival t with
  | Some arrived when now () >= arrived +. t.cfg.batch_window -> flush t
  | _ -> ()

let close t =
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) t.clients;
  Hashtbl.reset t.clients;
  if Sys.file_exists t.cfg.socket_path then
    try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ()

let run t =
  log t "distald: listening on %s (queue %d, window %gs, cache %d plans / %d results)\n"
    t.cfg.socket_path t.cfg.queue_limit t.cfg.batch_window t.cfg.plan_cache
    t.cfg.result_cache;
  (try
     while not t.stop do
       step t ~idle_timeout:0.5
     done;
     (* Drain: every admitted request still gets its result before the
        socket disappears. *)
     if not (Queue.is_empty t.queue) then flush t
   with e ->
     close t;
     raise e);
  log t "distald: served %d requests, bye\n" t.served;
  close t

let serve cfg =
  let t = create cfg in
  run t
