(** The [distald] server engine: a select-driven loop over a Unix-domain
    socket serving concurrent clients from one shared {!Session} (one
    plan cache, one result cache, one executor domain pool).

    Submits are admitted into a bounded queue — or explicitly rejected
    with a retry-after once the bound is hit — and flushed once the
    oldest entry has waited out the batching window. A flush groups the
    queue by plan fingerprint, so same-shape requests arriving within
    one window share a single compile (and byte-identical ones share a
    single run via the result cache). Clients that die mid-request are
    detected and their queue slots reclaimed; a killed-and-restarted
    server recompiles on miss and reproduces identical results
    (checkpoint-free recovery — the simulator is deterministic). *)

type config = {
  socket_path : string;
  queue_limit : int;  (** admission bound; >= 1 *)
  batch_window : float;  (** seconds a queued request may wait for batch-mates *)
  plan_cache : int;
  result_cache : int;
  domains : int option;
  quiet : bool;
}

val default_queue_limit : int
val default_batch_window : float

val config :
  ?queue_limit:int ->
  ?batch_window:float ->
  ?plan_cache:int ->
  ?result_cache:int ->
  ?domains:int ->
  ?quiet:bool ->
  socket_path:string ->
  unit ->
  config
(** Omitted fields fall back to [DISTAL_SERVE_QUEUE],
    [DISTAL_SERVE_BATCH_WINDOW] and [DISTAL_SERVE_CACHE], then to
    built-in defaults (queue 64, window 2 ms, caches per {!Session}).
    @raise Invalid_argument on a non-positive queue or negative window. *)

type t

val create : config -> t
(** Bind and listen on [socket_path] (an existing socket file is
    replaced); ignores [SIGPIPE]. *)

val session : t -> Session.t

val queue_depth : t -> int

val step : t -> idle_timeout:float -> unit
(** One iteration of the event loop: wait (at most [idle_timeout]s, or
    until the batch window expires) for connections/messages, admit or
    reject, flush a due batch. Exposed for tests; {!run} loops it. *)

val run : t -> unit
(** Serve until a [Shutdown] message arrives, then drain the queue,
    close every connection and unlink the socket. *)

val close : t -> unit

val serve : config -> unit
(** [create] + [run]. *)
