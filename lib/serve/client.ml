(* The client side of the distald wire protocol: a blocking connection
   that frames Protocol messages over a Unix-domain socket and matches
   results back to submits by id. *)

module Wire = Distal_support.Wire

type t = { fd : Unix.file_descr; mutable next_id : int }

let connect ?(retries = 50) ?(retry_interval = 0.05) path =
  let rec attempt left =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; next_id = 0 }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when left > 0 ->
        (* The server may still be binding its socket: back off briefly. *)
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ignore (Unix.select [] [] [] retry_interval);
        attempt (left - 1)
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))
  in
  attempt retries

let connect_exn ?retries ?retry_interval path =
  match connect ?retries ?retry_interval path with
  | Ok t -> t
  | Error e -> failwith e

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let send t msg =
  match Wire.send t.fd (Protocol.encode_client msg) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "send: %s" (Unix.error_message e))

let recv t =
  match Wire.recv t.fd with
  | Error e -> Error e
  | Ok None -> Error "server closed the connection"
  | Ok (Some payload) -> Protocol.decode_server payload

(* {2 Request/reply} *)

let rpc t msg = match send t msg with Error e -> Error e | Ok () -> recv t

type response =
  | Ok_result of Protocol.reply
  | Rejected of { retry_after_s : float; reason : string }
  | Failed of string

let submit t (s : Protocol.submit) =
  match rpc t (Protocol.Submit s) with
  | Error e -> Error e
  | Ok (Protocol.Result r) when r.Protocol.rid = s.Protocol.id -> Ok (Ok_result r)
  | Ok (Protocol.Rejected { rid; retry_after_s; reason }) when rid = s.Protocol.id ->
      Ok (Rejected { retry_after_s; reason })
  | Ok (Protocol.Failed { rid; reason }) when rid = s.Protocol.id || rid = -1 ->
      Ok (Failed reason)
  | Ok _ -> Error "server reply does not match the request id"

let submit_wait ?(attempts = 20) t s =
  (* Retry admission-control rejections after the server's suggested
     backoff; anything else is final. *)
  let rec go left =
    match submit t s with
    | Error _ as e -> e
    | Ok (Rejected { retry_after_s; _ }) when left > 0 ->
        ignore (Unix.select [] [] [] retry_after_s);
        go (left - 1)
    | Ok r -> Ok r
  in
  go attempts

let stats t =
  match rpc t Protocol.Stats with
  | Error e -> Error e
  | Ok (Protocol.StatsReply { queue_depth; served; metrics }) ->
      Ok (queue_depth, served, metrics)
  | Ok _ -> Error "unexpected reply to stats"

let shutdown t =
  match rpc t Protocol.Shutdown with
  | Error e -> Error e
  | Ok Protocol.ShutdownAck -> Ok ()
  | Ok _ -> Error "unexpected reply to shutdown"
