(* The session layer: Api with compilation (and, for repeated identical
   requests, execution) amortized across calls.

   Two LRU tiers, both keyed on canonical fingerprints
   (Api.request_fingerprint):

   - the plan cache maps a request fingerprint to its compiled plan, so
     parse / typecheck / schedule rewrites / lowering run once per
     distinct request shape. Compilation happens inside the cache's
     single-flight find_or_add, so concurrent misses on one shape compile
     exactly once and plan reuse never re-lowers.

   - the result cache maps fingerprint x run options x input identity to
     the finished Exec.result. The simulator is a deterministic pure
     function of plan x data (the determinism contract of Exec.execute),
     so replaying a cached result is semantically identical to re-running
     — this is what makes a hot serving path orders of magnitude faster
     than compile+execute, since compilation is microseconds while
     execution is milliseconds. Inputs are identified by seed
     (random_inputs requests, the distald path) or by a digest of the
     supplied tensors. Cached outputs are returned as copies so callers
     cannot mutate the cache.

   Both caches are safe under concurrent use from lib/support/pool
   domains (Lru serializes internally; the metrics registry is guarded
   here). Counters surface through lib/obs as serve.* metrics; with a
   profile, each plan-cache lookup is a span on the compiler track. *)

module Api = Distal.Api
module Dense = Distal_tensor.Dense
module Obs = Distal_obs
module Lru = Distal_support.Lru
module Env = Distal_support.Env

type outcome = {
  result : Api.Exec.result;
  fingerprint : string;
  plan_cached : bool;
  result_cached : bool;
}

type t = {
  plans : (string, Api.plan) Lru.t;
  results : (string, Api.Exec.result) Lru.t;
  metrics : Obs.Metrics.registry;
  domains : int option;
  m : Mutex.t;  (* guards the metrics registry *)
}

let default_plan_capacity = 128
let default_result_capacity = 1024

let create ?plan_cache ?result_cache ?domains () =
  let plan_capacity =
    match plan_cache with
    | Some c -> c
    | None -> Option.value (Env.serve_cache ()) ~default:default_plan_capacity
  in
  let result_capacity =
    (* Caching results only makes sense while plans are cached too; a
       plan_cache of 0 (caching off) disables both unless the result
       capacity was given explicitly. *)
    match result_cache with
    | Some c -> c
    | None -> if plan_capacity = 0 then 0 else default_result_capacity
  in
  {
    plans = Lru.create ~capacity:plan_capacity;
    results = Lru.create ~capacity:result_capacity;
    metrics = Obs.Metrics.create ();
    domains;
    m = Mutex.create ();
  }

let metrics t = t.metrics

let count t name v =
  Mutex.lock t.m;
  Obs.Metrics.inc (Obs.Metrics.counter t.metrics name) v;
  Mutex.unlock t.m

let count1 t name = count t name 1.0

let gauge_set t name v =
  Mutex.lock t.m;
  Obs.Metrics.set (Obs.Metrics.gauge t.metrics name) v;
  Mutex.unlock t.m

(* {2 The plan tier} *)

let compile ?profile t req =
  let fp = Api.request_fingerprint req in
  let sink = Option.map Obs.Profile.sink profile in
  let lookup () =
    Lru.find_or_add t.plans fp (fun () -> Api.compile_request ?profile req)
  in
  match Obs.Span.wall sink ~name:"plan cache" ~cat:"compile" lookup with
  | Error e -> Error e
  | Ok (plan, status) ->
      let hit = status = `Hit in
      count1 t (if hit then "serve.plan_hits" else "serve.plan_misses");
      (match status with
      | `Miss (Some _) -> count1 t "serve.plan_evictions"
      | _ -> ());
      gauge_set t "serve.plan_entries" (float_of_int (Lru.length t.plans));
      Ok (plan, hit)

let compile_exn ?profile t req =
  match compile ?profile t req with Ok r -> r | Error e -> invalid_arg e

(* {2 The result tier} *)

let copy_stats (s : Api.Stats.t) = { s with Api.Stats.time = s.Api.Stats.time }

let copy_result (r : Api.Exec.result) =
  {
    Api.Exec.output = Option.map Dense.copy r.Api.Exec.output;
    stats = copy_stats r.Api.Exec.stats;
  }

(* Inputs become part of the result key: a seed names the deterministic
   random_inputs stream; explicit tensors are digested bit-exactly. *)
let data_key = function
  | `Seed seed -> Printf.sprintf "seed:%d" seed
  | `None -> "nodata"
  | `Data data ->
      let buf = Buffer.create 256 in
      List.iter
        (fun (name, d) ->
          Buffer.add_string buf name;
          Buffer.add_char buf ':';
          Array.iter (fun n -> Buffer.add_string buf (string_of_int n ^ ",")) (Dense.shape d);
          for i = 0 to Dense.size d - 1 do
            Buffer.add_int64_le buf (Int64.bits_of_float (Dense.get_lin d i))
          done;
          Buffer.add_char buf ';')
        data;
      "digest:" ^ Digest.to_hex (Digest.string (Buffer.contents buf))

let result_key ~fp ~mode ~faults ~data =
  let mode_s = match mode with Api.Exec.Model -> "model" | Api.Exec.Full -> "full" in
  let faults_s = match faults with None -> "-" | Some f -> Api.Fault.to_string f in
  String.concat "|" [ fp; mode_s; faults_s; data_key data ]

let run ?(mode = Api.Exec.Full) ?faults ?profile ?seed ?data t req =
  count1 t "serve.requests";
  match compile ?profile t req with
  | Error e -> Error e
  | Ok (plan, plan_cached) -> (
      let fp = Api.request_fingerprint req in
      let data_id =
        match (data, seed) with
        | Some d, _ -> `Data d
        | None, Some s -> `Seed s
        | None, None -> `None
      in
      let key = result_key ~fp ~mode ~faults ~data:data_id in
      match Lru.find t.results key with
      | Some r ->
          count1 t "serve.result_hits";
          Ok { result = copy_result r; fingerprint = fp; plan_cached; result_cached = true }
      | None -> (
          count1 t "serve.result_misses";
          let data =
            match data_id with
            | `Data d -> d
            | `Seed s -> Api.random_inputs ~seed:s plan
            | `None -> []
          in
          (* The run happens outside any cache lock: concurrent misses on
             one key may race, but the simulator is deterministic so the
             duplicate results are identical and insertion is idempotent. *)
          match Api.run ~mode ?domains:t.domains ?profile ?faults plan ~data with
          | Error e -> Error e
          | Ok result ->
              (* Full-mode unprofiled runs route through the plan's cached
                 executable plan (Api.run's reuse path) whenever
                 DISTAL_PLAN_REUSE is on: a plan-cache hit re-executes
                 without replanning. Count them so serving metrics show how
                 much of the traffic rode compiled plans. *)
              if mode = Api.Exec.Full && profile = None && Env.plan_reuse () then
                count1 t "serve.plan_reuse_runs";
              (match Lru.put t.results key (copy_result result) with
              | Some _ -> count1 t "serve.result_evictions"
              | None -> ());
              gauge_set t "serve.result_entries" (float_of_int (Lru.length t.results));
              Ok { result; fingerprint = fp; plan_cached; result_cached = false }))

let run_exn ?mode ?faults ?profile ?seed ?data t req =
  match run ?mode ?faults ?profile ?seed ?data t req with
  | Ok o -> o
  | Error e -> invalid_arg e

(* {2 Introspection} *)

type counters = {
  requests : int;
  plan_hits : int;
  plan_misses : int;
  plan_evictions : int;
  result_hits : int;
  result_misses : int;
  result_evictions : int;
  plan_reuse_runs : int;
}

let counters t =
  let c name =
    Mutex.lock t.m;
    let v = match Obs.Metrics.value t.metrics name with Some v -> int_of_float v | None -> 0 in
    Mutex.unlock t.m;
    v
  in
  {
    requests = c "serve.requests";
    plan_hits = Lru.hits t.plans;
    plan_misses = Lru.misses t.plans;
    plan_evictions = Lru.evictions t.plans;
    result_hits = c "serve.result_hits";
    result_misses = c "serve.result_misses";
    result_evictions = c "serve.result_evictions";
    plan_reuse_runs = c "serve.plan_reuse_runs";
  }

let cached_plans t = Lru.length t.plans
let cached_results t = Lru.length t.results

let clear t =
  Lru.clear t.plans;
  Lru.clear t.results
