(* The distald message vocabulary, carried as single-line JSON documents
   inside Wire frames (lib/support/wire.ml).

   Client -> server: submit | stats | shutdown.
   Server -> client: result (ok | rejected | error), stats, shutdown_ack.

   All JSON goes through the shared lib/support writer/parser, so string
   escaping and float round-tripping are fixed in exactly one place.
   Dense outputs are serialized as shortest-round-trip decimal floats,
   which reproduce the bits on parse — the byte-identity guarantee of
   the serving layer survives the wire. *)

module Api = Distal.Api
module Dense = Distal_tensor.Dense
module Json = Distal_support.Json

let errf fmt = Printf.ksprintf (fun s -> Error s) fmt
let ( let* ) = Result.bind

type tensor_decl = { td_name : string; td_shape : int array; td_dist : string }

type submit = {
  id : int;
  machine_dims : int array;
  machine_node_factors : int array option;
  gpu : bool;
  mem_per_proc : float option;
  virtual_grid : int array option;
  tensors : tensor_decl list;
  stmt : string;
  schedule : string;
  mode : Api.Exec.mode;
  seed : int;
  faults : string option;
}

let submit ?node_factors ?(gpu = false) ?mem_per_proc ?virtual_grid
    ?(mode = Api.Exec.Full) ?(seed = 42) ?faults ~id ~machine_dims ~tensors ~stmt
    ~schedule () =
  {
    id;
    machine_dims;
    machine_node_factors = node_factors;
    gpu;
    mem_per_proc;
    virtual_grid;
    tensors;
    stmt;
    schedule;
    mode;
    seed;
    faults;
  }

type client_msg = Submit of submit | Stats | Shutdown

type reply = {
  rid : int;
  plan_cached : bool;
  result_cached : bool;
  batch : int;  (* how many same-fingerprint requests shared the compile *)
  stats : Api.Stats.t;
  output : Dense.t option;
}

type server_msg =
  | Result of reply
  | Rejected of { rid : int; retry_after_s : float; reason : string }
  | Failed of { rid : int; reason : string }
  | StatsReply of { queue_depth : int; served : int; metrics : Json.t }
  | ShutdownAck

(* {2 Conversions to the compiler's types} *)

let to_request (s : submit) =
  let kind = if s.gpu then Api.Machine.Gpu else Api.Machine.Cpu in
  let mem =
    match s.mem_per_proc with Some m -> m | None -> if s.gpu then 16e9 else 256e9
  in
  let* machine =
    try
      Ok
        (Api.Machine.grid ?node_factors:s.machine_node_factors ~kind ~mem_per_proc:mem
           s.machine_dims)
    with Invalid_argument e -> Error e
  in
  let* tensors =
    List.fold_left
      (fun acc td ->
        let* acc = acc in
        let* dist = Distal_ir.Distnot.parse td.td_dist in
        Ok (Api.tensor_d td.td_name td.td_shape dist :: acc))
      (Ok []) s.tensors
  in
  Ok
    (Api.request ?virtual_grid:s.virtual_grid ~machine ~stmt:s.stmt
       ~schedule:s.schedule ~tensors:(List.rev tensors) ())

(* {2 JSON encoding} *)

let json_of_int_array a = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

let int_array_of_json ~what = function
  | Json.List l ->
      let* xs =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match v with
            | Json.Int i -> Ok (i :: acc)
            | _ -> errf "%s must be an array of integers" what)
          (Ok []) l
      in
      Ok (Array.of_list (List.rev xs))
  | _ -> errf "%s must be an array of integers" what

let opt_field k = function None -> [] | Some v -> [ (k, v) ]

let json_of_dense d =
  Json.Obj
    [
      ("shape", json_of_int_array (Dense.shape d));
      ( "values",
        Json.List (List.init (Dense.size d) (fun i -> Json.Float (Dense.get_lin d i)))
      );
    ]

let dense_of_json j =
  let* shape =
    match Json.member "shape" j with
    | Some s -> int_array_of_json ~what:"output shape" s
    | None -> Error "output missing shape"
  in
  let* values =
    match Json.member "values" j with
    | Some (Json.List l) ->
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match Json.to_float v with
            | Some f -> Ok (f :: acc)
            | None -> Error "output values must be numbers")
          (Ok []) l
        |> Result.map List.rev
    | _ -> Error "output missing values"
  in
  let d = Dense.create shape in
  if List.length values <> Dense.size d then
    errf "output carries %d values for shape of %d" (List.length values) (Dense.size d)
  else begin
    List.iteri (fun i v -> Dense.set_lin d i v) values;
    Ok d
  end

let json_of_stats (s : Api.Stats.t) =
  Json.Obj
    [
      ("time", Json.Float s.Api.Stats.time);
      ("flops", Json.Float s.Api.Stats.flops);
      ("bytes_intra", Json.Float s.Api.Stats.bytes_intra);
      ("bytes_inter", Json.Float s.Api.Stats.bytes_inter);
      ("messages", Json.Int s.Api.Stats.messages);
      ("peak_mem", Json.Float s.Api.Stats.peak_mem);
      ("oom", Json.Bool s.Api.Stats.oom);
      ("tasks", Json.Int s.Api.Stats.tasks);
      ("steps", Json.Int s.Api.Stats.steps);
    ]

let stats_of_json j =
  let f k =
    match Json.member k j with
    | Some v -> ( match Json.to_float v with Some x -> Ok x | None -> errf "stats.%s" k)
    | None -> errf "stats missing %s" k
  in
  let i k =
    match Json.member k j with
    | Some (Json.Int v) -> Ok v
    | _ -> errf "stats.%s must be an integer" k
  in
  let b k =
    match Json.member k j with
    | Some (Json.Bool v) -> Ok v
    | _ -> errf "stats.%s must be a boolean" k
  in
  let* time = f "time" in
  let* flops = f "flops" in
  let* bytes_intra = f "bytes_intra" in
  let* bytes_inter = f "bytes_inter" in
  let* messages = i "messages" in
  let* peak_mem = f "peak_mem" in
  let* oom = b "oom" in
  let* tasks = i "tasks" in
  let* steps = i "steps" in
  let s = Api.Stats.create () in
  s.Api.Stats.time <- time;
  s.Api.Stats.flops <- flops;
  s.Api.Stats.bytes_intra <- bytes_intra;
  s.Api.Stats.bytes_inter <- bytes_inter;
  s.Api.Stats.messages <- messages;
  s.Api.Stats.peak_mem <- peak_mem;
  s.Api.Stats.oom <- oom;
  s.Api.Stats.tasks <- tasks;
  s.Api.Stats.steps <- steps;
  Ok s

let json_of_tensor_decl td =
  Json.Obj
    [
      ("name", Json.String td.td_name);
      ("shape", json_of_int_array td.td_shape);
      ("dist", Json.String td.td_dist);
    ]

let tensor_decl_of_json j =
  let* td_name =
    match Json.member "name" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "tensor missing name"
  in
  let* td_shape =
    match Json.member "shape" j with
    | Some s -> int_array_of_json ~what:"tensor shape" s
    | None -> Error "tensor missing shape"
  in
  let* td_dist =
    match Json.member "dist" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "tensor missing dist"
  in
  Ok { td_name; td_shape; td_dist }

let mode_to_string = function Api.Exec.Model -> "model" | Api.Exec.Full -> "full"

let mode_of_string = function
  | "model" -> Ok Api.Exec.Model
  | "full" -> Ok Api.Exec.Full
  | m -> errf "unknown mode %S" m

let client_msg_to_json = function
  | Stats -> Json.Obj [ ("type", Json.String "stats") ]
  | Shutdown -> Json.Obj [ ("type", Json.String "shutdown") ]
  | Submit s ->
      Json.Obj
        ([
           ("type", Json.String "submit");
           ("id", Json.Int s.id);
           ("machine", json_of_int_array s.machine_dims);
         ]
        @ opt_field "node_factors" (Option.map json_of_int_array s.machine_node_factors)
        @ (if s.gpu then [ ("gpu", Json.Bool true) ] else [])
        @ opt_field "mem_per_proc" (Option.map (fun m -> Json.Float m) s.mem_per_proc)
        @ opt_field "virtual_grid" (Option.map json_of_int_array s.virtual_grid)
        @ [
            ("tensors", Json.List (List.map json_of_tensor_decl s.tensors));
            ("stmt", Json.String s.stmt);
            ("schedule", Json.String s.schedule);
            ("mode", Json.String (mode_to_string s.mode));
            ("seed", Json.Int s.seed);
          ]
        @ opt_field "faults" (Option.map (fun f -> Json.String f) s.faults))

let submit_of_json j =
  let* id =
    match Json.member "id" j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error "submit missing integer id"
  in
  let* machine_dims =
    match Json.member "machine" j with
    | Some m -> int_array_of_json ~what:"machine" m
    | None -> Error "submit missing machine"
  in
  let* machine_node_factors =
    match Json.member "node_factors" j with
    | None -> Ok None
    | Some m -> Result.map Option.some (int_array_of_json ~what:"node_factors" m)
  in
  let gpu = match Json.member "gpu" j with Some (Json.Bool b) -> b | _ -> false in
  let mem_per_proc =
    match Json.member "mem_per_proc" j with Some v -> Json.to_float v | None -> None
  in
  let* virtual_grid =
    match Json.member "virtual_grid" j with
    | None | Some Json.Null -> Ok None
    | Some g -> Result.map Option.some (int_array_of_json ~what:"virtual_grid" g)
  in
  let* tensors =
    match Json.member "tensors" j with
    | Some (Json.List l) ->
        List.fold_left
          (fun acc t ->
            let* acc = acc in
            let* td = tensor_decl_of_json t in
            Ok (td :: acc))
          (Ok []) l
        |> Result.map List.rev
    | _ -> Error "submit missing tensors"
  in
  let* stmt =
    match Json.member "stmt" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "submit missing stmt"
  in
  let* schedule =
    match Json.member "schedule" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "submit missing schedule"
  in
  let* mode =
    match Json.member "mode" j with
    | None -> Ok Api.Exec.Full
    | Some (Json.String m) -> mode_of_string m
    | Some _ -> Error "submit mode must be a string"
  in
  let seed = match Json.member "seed" j with Some (Json.Int s) -> s | _ -> 42 in
  let* faults =
    match Json.member "faults" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.String f) -> Ok (Some f)
    | Some _ -> Error "submit faults must be a string"
  in
  Ok
    {
      id;
      machine_dims;
      machine_node_factors;
      gpu;
      mem_per_proc;
      virtual_grid;
      tensors;
      stmt;
      schedule;
      mode;
      seed;
      faults;
    }

let client_msg_of_json j =
  match Json.member "type" j with
  | Some (Json.String "stats") -> Ok Stats
  | Some (Json.String "shutdown") -> Ok Shutdown
  | Some (Json.String "submit") -> Result.map (fun s -> Submit s) (submit_of_json j)
  | Some (Json.String t) -> errf "unknown client message type %S" t
  | _ -> Error "client message missing type"

let server_msg_to_json = function
  | Result r ->
      Json.Obj
        [
          ("type", Json.String "result");
          ("id", Json.Int r.rid);
          ("status", Json.String "ok");
          ("plan_cached", Json.Bool r.plan_cached);
          ("result_cached", Json.Bool r.result_cached);
          ("batch", Json.Int r.batch);
          ("stats", json_of_stats r.stats);
          ("output", match r.output with None -> Json.Null | Some d -> json_of_dense d);
        ]
  | Rejected { rid; retry_after_s; reason } ->
      Json.Obj
        [
          ("type", Json.String "result");
          ("id", Json.Int rid);
          ("status", Json.String "rejected");
          ("retry_after_s", Json.Float retry_after_s);
          ("error", Json.String reason);
        ]
  | Failed { rid; reason } ->
      Json.Obj
        [
          ("type", Json.String "result");
          ("id", Json.Int rid);
          ("status", Json.String "error");
          ("error", Json.String reason);
        ]
  | StatsReply { queue_depth; served; metrics } ->
      Json.Obj
        [
          ("type", Json.String "stats");
          ("queue_depth", Json.Int queue_depth);
          ("served", Json.Int served);
          ("metrics", metrics);
        ]
  | ShutdownAck -> Json.Obj [ ("type", Json.String "shutdown_ack") ]

let server_msg_of_json j =
  match Json.member "type" j with
  | Some (Json.String "shutdown_ack") -> Ok ShutdownAck
  | Some (Json.String "stats") ->
      let* queue_depth =
        match Json.member "queue_depth" j with
        | Some (Json.Int n) -> Ok n
        | _ -> Error "stats missing queue_depth"
      in
      let* served =
        match Json.member "served" j with
        | Some (Json.Int n) -> Ok n
        | _ -> Error "stats missing served"
      in
      let metrics = Option.value (Json.member "metrics" j) ~default:Json.Null in
      Ok (StatsReply { queue_depth; served; metrics })
  | Some (Json.String "result") -> (
      let* rid =
        match Json.member "id" j with
        | Some (Json.Int i) -> Ok i
        | _ -> Error "result missing id"
      in
      match Json.member "status" j with
      | Some (Json.String "ok") ->
          let plan_cached =
            match Json.member "plan_cached" j with Some (Json.Bool b) -> b | _ -> false
          in
          let result_cached =
            match Json.member "result_cached" j with Some (Json.Bool b) -> b | _ -> false
          in
          let batch =
            match Json.member "batch" j with Some (Json.Int b) -> b | _ -> 1
          in
          let* stats =
            match Json.member "stats" j with
            | Some s -> stats_of_json s
            | None -> Error "result missing stats"
          in
          let* output =
            match Json.member "output" j with
            | None | Some Json.Null -> Ok None
            | Some d -> Result.map Option.some (dense_of_json d)
          in
          Ok (Result { rid; plan_cached; result_cached; batch; stats; output })
      | Some (Json.String "rejected") ->
          let* retry_after_s =
            match Option.bind (Json.member "retry_after_s" j) Json.to_float with
            | Some f -> Ok f
            | None -> Error "rejected result missing retry_after_s"
          in
          let reason =
            match Json.member "error" j with Some (Json.String e) -> e | _ -> "rejected"
          in
          Ok (Rejected { rid; retry_after_s; reason })
      | Some (Json.String "error") ->
          let reason =
            match Json.member "error" j with Some (Json.String e) -> e | _ -> "error"
          in
          Ok (Failed { rid; reason })
      | _ -> Error "result missing status")
  | Some (Json.String t) -> errf "unknown server message type %S" t
  | _ -> Error "server message missing type"

(* {2 Wire payloads} *)

let encode_client m = Json.to_string (client_msg_to_json m)
let encode_server m = Json.to_string (server_msg_to_json m)

let decode payload parse =
  match Json.parse payload with Error e -> errf "invalid JSON: %s" e | Ok j -> parse j

let decode_client payload = decode payload client_msg_of_json
let decode_server payload = decode payload server_msg_of_json
