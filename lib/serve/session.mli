(** The session layer of compile-and-serve: {!Distal.Api} with
    compilation — and, for byte-identical repeated requests, execution —
    amortized across calls.

    A session holds two LRU tiers keyed on
    {!Distal.Api.request_fingerprint}: a {e plan cache} (parse /
    typecheck / schedule / lower once per distinct request shape;
    compilation is single-flight, and plan reuse never re-lowers) and a
    {e result cache} (the simulator is a deterministic pure function of
    plan x data, so identical requests replay the finished result).
    Served results are byte-identical to direct [Api.run_exn] — cache
    hits return defensive copies.

    Sessions are safe under concurrent use from {!Distal_support.Pool}
    domains. Counters surface as [serve.*] metrics through the session's
    {!Distal_obs.Metrics} registry; with a [profile], plan-cache lookups
    appear as spans on the profile's compiler track. *)

module Api = Distal.Api

type t

val default_plan_capacity : int
(** 128 *)

val default_result_capacity : int
(** 1024 *)

val create : ?plan_cache:int -> ?result_cache:int -> ?domains:int -> unit -> t
(** [plan_cache] defaults to [DISTAL_SERVE_CACHE] (else 128) entries; [0]
    disables caching (every request compiles and runs). [result_cache]
    defaults to 1024, or [0] whenever the plan cache is disabled.
    [domains] pins the executor's host domain-pool size — pass [~domains:1]
    when sessions are driven from inside pool lanes (the pool is not
    reentrant). *)

val metrics : t -> Distal_obs.Metrics.registry
(** The [serve.*] registry: [serve.requests], [serve.plan_hits]/
    [_misses]/[_evictions], [serve.result_hits]/[_misses]/[_evictions],
    [serve.plan_reuse_runs] (result-cache misses that executed through the
    plan's cached executable plan — Full mode, no profile, with
    [DISTAL_PLAN_REUSE] on), and [serve.plan_entries]/
    [serve.result_entries] gauges. *)

val compile :
  ?profile:Distal_obs.Profile.t -> t -> Api.request -> (Api.plan * bool, string) result
(** The plan tier alone: the compiled plan and whether it was a cache
    hit. *)

val compile_exn : ?profile:Distal_obs.Profile.t -> t -> Api.request -> Api.plan * bool

type outcome = {
  result : Api.Exec.result;
  fingerprint : string;
  plan_cached : bool;
  result_cached : bool;
}

val run :
  ?mode:Api.Exec.mode ->
  ?faults:Api.Fault.t ->
  ?profile:Distal_obs.Profile.t ->
  ?seed:int ->
  ?data:(string * Distal_tensor.Dense.t) list ->
  t ->
  Api.request ->
  (outcome, string) result
(** Serve one request (default mode [Full]). Input data comes from
    [data] when given, else from [Api.random_inputs ~seed] when [seed]
    is given, else the request runs with no data (the [Model] pattern).
    The result-cache key covers mode, fault plan and input identity
    (seed, or a bit-exact digest of [data]), so a hit is only ever
    returned for a run that would have produced identical bytes. *)

val run_exn :
  ?mode:Api.Exec.mode ->
  ?faults:Api.Fault.t ->
  ?profile:Distal_obs.Profile.t ->
  ?seed:int ->
  ?data:(string * Distal_tensor.Dense.t) list ->
  t ->
  Api.request ->
  outcome

type counters = {
  requests : int;
  plan_hits : int;
  plan_misses : int;
  plan_evictions : int;
  result_hits : int;
  result_misses : int;
  result_evictions : int;
  plan_reuse_runs : int;
      (** executions served through a cached executable plan (see
          {!metrics}) *)
}

val counters : t -> counters

val cached_plans : t -> int
val cached_results : t -> int

val clear : t -> unit
(** Drop both tiers (counters are kept). *)
