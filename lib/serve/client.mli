(** The client side of the [distald] wire protocol: a blocking
    connection over a Unix-domain socket. [distalc --connect] and the
    serve tests sit on this. *)

type t

val connect : ?retries:int -> ?retry_interval:float -> string -> (t, string) result
(** Connect to a socket path, retrying [ENOENT]/[ECONNREFUSED] (a server
    still starting up) every [retry_interval] seconds, [retries] times
    (defaults 50 x 0.05 s). *)

val connect_exn : ?retries:int -> ?retry_interval:float -> string -> t
val close : t -> unit

val fresh_id : t -> int
(** Successive distinct request ids for this connection. *)

val send : t -> Protocol.client_msg -> (unit, string) result
val recv : t -> (Protocol.server_msg, string) result
(** Blocking read of one server message; EOF is an [Error]. *)

type response =
  | Ok_result of Protocol.reply
  | Rejected of { retry_after_s : float; reason : string }
  | Failed of string

val submit : t -> Protocol.submit -> (response, string) result
(** Send one submit and wait for its matching reply. *)

val submit_wait : ?attempts:int -> t -> Protocol.submit -> (response, string) result
(** Like {!submit}, but sleeps out admission-control rejections
    ([retry_after_s]) and retries, up to [attempts] times. *)

val stats : t -> (int * int * Distal_support.Json.t, string) result
(** [(queue_depth, served, metrics)]. *)

val shutdown : t -> (unit, string) result
(** Ask the server to drain and exit; waits for the ack. *)
