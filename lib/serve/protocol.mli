(** The [distald] message vocabulary: single-line JSON documents carried
    inside {!Distal_support.Wire} frames.

    Client to server: [submit] (a full compilation/run request), [stats]
    and [shutdown]. Server to client: [result] (status [ok], [rejected]
    by admission control, or [error]), [stats] and [shutdown_ack]. All
    JSON goes through the shared {!Distal_support.Json} writer, whose
    float rendering round-trips bit-exactly — served outputs survive the
    wire byte-identical. *)

module Api = Distal.Api

type tensor_decl = { td_name : string; td_shape : int array; td_dist : string }

type submit = {
  id : int;  (** client-chosen; echoed on the matching result *)
  machine_dims : int array;
  machine_node_factors : int array option;
  gpu : bool;
  mem_per_proc : float option;  (** default: 256 GB CPU / 16 GB GPU *)
  virtual_grid : int array option;
  tensors : tensor_decl list;
  stmt : string;
  schedule : string;
  mode : Api.Exec.mode;
  seed : int;  (** names the deterministic input stream ([random_inputs]) *)
  faults : string option;  (** a {!Api.Fault.parse} plan, if any *)
}

val submit :
  ?node_factors:int array ->
  ?gpu:bool ->
  ?mem_per_proc:float ->
  ?virtual_grid:int array ->
  ?mode:Api.Exec.mode ->
  ?seed:int ->
  ?faults:string ->
  id:int ->
  machine_dims:int array ->
  tensors:tensor_decl list ->
  stmt:string ->
  schedule:string ->
  unit ->
  submit

type client_msg = Submit of submit | Stats | Shutdown

type reply = {
  rid : int;
  plan_cached : bool;
  result_cached : bool;
  batch : int;  (** same-fingerprint requests that shared one compile *)
  stats : Api.Stats.t;
  output : Distal_tensor.Dense.t option;
}

type server_msg =
  | Result of reply
  | Rejected of { rid : int; retry_after_s : float; reason : string }
  | Failed of { rid : int; reason : string }
  | StatsReply of { queue_depth : int; served : int; metrics : Distal_support.Json.t }
  | ShutdownAck

val to_request : submit -> (Api.request, string) result
(** Materialize the machine and tensor declarations; fails on a bad
    distribution or grid. *)

val client_msg_to_json : client_msg -> Distal_support.Json.t
val client_msg_of_json : Distal_support.Json.t -> (client_msg, string) result
val server_msg_to_json : server_msg -> Distal_support.Json.t
val server_msg_of_json : Distal_support.Json.t -> (server_msg, string) result

val encode_client : client_msg -> string
val decode_client : string -> (client_msg, string) result
val encode_server : server_msg -> string
val decode_server : string -> (server_msg, string) result

val json_of_stats : Api.Stats.t -> Distal_support.Json.t
val stats_of_json : Distal_support.Json.t -> (Api.Stats.t, string) result

val json_of_dense : Distal_tensor.Dense.t -> Distal_support.Json.t
val dense_of_json : Distal_support.Json.t -> (Distal_tensor.Dense.t, string) result
