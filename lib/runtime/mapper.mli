(** Task-to-processor mapping (§6.1's mapping interface).

    The default mapper places the points of an index task launch onto the
    machine grid: identically when the launch grid equals the machine grid
    (the common case produced by [distribute_onto] with the machine's
    dimensions), and by linearization modulo the processor count otherwise
    (over-decomposition wraps around). *)

val proc_of_point :
  Distal_machine.Machine.t -> launch_dims:int array -> int array -> int array
(** The processor coordinate that executes a launch point. A
    zero-dimensional launch maps to processor 0. *)

val fallback : nprocs:int -> dead:(int -> bool) -> int -> int
(** The failover policy for fault recovery: work (and replicated state)
    of a dead linear processor moves to the next live linear processor,
    wrapping around the machine — the same neighbour that holds its
    checkpoint replica. Live processors map to themselves.
    @raise Invalid_argument when every processor is dead. *)
