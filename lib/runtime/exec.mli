(** The task-based runtime simulator.

    This module plays Legion's role (§6): it executes the task IR the
    compiler emits. Index task launches become per-point tasks placed by
    the {!Mapper}; [Ensure] nodes materialize bounds-analysis footprints in
    the executing processor's memory, issuing copies from the owner
    partition when the data is not already local (communication in Legion
    is implicit and driven by partitions in exactly this way); leaves run
    real arithmetic on the local instances.

    Execution is deterministic and doubles as a performance simulation:
    every copy and leaf execution is also logged as a timed event in a
    bulk-synchronous step structure (one step per iteration of the
    sequential loops all tasks execute in lockstep). Steps are charged
    max-over-processors of compute combined with communication under the
    cost model's overlap factor; copies of the same data to many
    destinations in one step are charged as tree broadcasts; distributed
    reductions are tree-reduced in an epilogue.

    [Model] mode skips data movement and arithmetic but keeps the event
    simulation exact, so weak-scaling experiments can run at the paper's
    256-node scales where functional execution would be infeasible
    (see DESIGN.md, substitutions). *)

type mode = Full | Model

type spec = {
  machine : Distal_machine.Machine.t;
  cost : Distal_machine.Cost_model.t;
  program : Distal_ir.Taskir.program;
  dists : (string * Distal_ir.Distnot.t) list;  (** one per tensor *)
  virtual_grid : int array option;
      (** Over-decomposition: distributions and launches target this
          virtual processor grid, whose points are folded onto the
          physical machine by linearization modulo the processor count
          (Johnson's algorithm on non-cube machines, §7.1.2). [None] means
          the machine's own grid. *)
}

type result = { output : Distal_tensor.Dense.t option; stats : Stats.t }

(** One copy the runtime issued: which piece of which tensor moved from
    which processor to which, at which bulk-synchronous step. *)
type trace_event = {
  step : int;
  tensor : string;
  piece : Distal_tensor.Rect.t;
  src : int array;
  dst : int array;
  bytes : float;
}

val trace_to_string : trace_event -> string

val execute :
  ?mode:mode ->
  ?coalesce:bool ->
  ?domains:int ->
  ?staged:bool ->
  ?kernels:Distal_tensor.Kernel_registry.mode ->
  ?trace:trace_event list ref ->
  ?profile:Distal_obs.Profile.t ->
  ?faults:Distal_fault.Fault.t ->
  spec ->
  data:(string * Distal_tensor.Dense.t) list ->
  (result, string) Stdlib.result
(** Run the program. [data] supplies the input tensors (and, for [+=]
    statements, the output's initial value); in [Model] mode it is ignored
    and [output] is [None]. With [trace], every copy event is appended to
    the list (in issue order) — the communication pattern of Fig. 8/12.

    [coalesce] (default [true]) runs {!Comm_plan} over each step's raw
    transfers, merging same-source/same-destination fragments into block
    or strided-run messages before they are priced — functional results,
    traces and byte totals are unchanged; message counts, copy-group
    structure and charged times reflect the merged plan. Pass [false] to
    price every fragment as its own message (the pre-planning model).

    [domains] sets the host domain-pool size used to probe the launch's
    independent tasks concurrently (default: [DISTAL_NUM_DOMAINS], else
    the available cores). Determinism contract: results, copy traces,
    stats and Full-mode event streams are byte-identical for every domain
    count — tasks record deferred effects that are merged in launch-point
    order after the pool joins — and simulated time never depends on host
    parallelism. The host-side probe wall clock and pool utilization are
    reported as [exec.compute_wall_s] / [exec.pool_domains] /
    [exec.pool_utilization] gauges.

    [staged] (default: on, unless [DISTAL_STAGE=0]) compiles the
    statement's scalar leaf loop once per execution into flat strided
    loops ({!Distal_ir.Expr_stage}); shapes that cannot be staged fall
    back to the generic [Expr.eval] loop. Staged and generic execution are
    bit-identical.

    [kernels] (default: [DISTAL_KERNELS], else tiled) selects the leaf
    kernel registry mode ({!Distal_tensor.Kernel_registry}). Substituted
    leaves run the reference loops under [Off]/[Naive] and the blocked
    microkernels under [Tiled] (same accumulation per element, different
    rounding order — agreement within a tolerance). Staged scalar leaves
    that match a kernel pattern dispatch to the registry under
    [Naive]/[Tiled]; tiled dispatch preserves the evaluator's per-element
    operation order, so scalar-path results stay bit-identical across all
    three modes. Simulated time never depends on [kernels].

    With [profile], the execution registers itself as a run of the profile
    and emits structured observability data: per-step compute/comm spans
    for every processor, copy/broadcast instants with tensor, piece and
    byte attributes, a per-step timeline for
    {!Distal_obs.Critical_path.analyse}, and an [exec.*] metrics registry.
    The event stream is deterministic — [Full] and [Model] runs of the
    same spec produce identical streams — and the timeline's [total]
    equals the returned [Stats.time] exactly.

    [faults] injects a deterministic fault plan ({!Distal_fault.Fault}).
    Killed processors lose their in-flight tasks: the affected launch
    points are re-probed and their effects land on the failover processor
    ({!Mapper.fallback}); the simulated clock pays one recovery episode
    per kill — failure detection, checkpoint restore from the buddy
    replica (when the plan enables checkpointing; a full restart
    otherwise) and the replay of the steps since the last boundary —
    priced through the cost model and reported via [exec.recovery_time],
    [exec.faults_injected], [exec.replayed_steps], [exec.checkpoint_bytes]
    and [exec.restore_bytes]. Dropped messages cost a retransmission,
    delayed ones hold their receiver back. Recovery is exact: the final
    output of a killed-and-replayed run is bit-identical to the fault-free
    run. An absent or empty plan (no events, checkpointing off) changes
    nothing — results, traces, stats and event streams are byte-identical
    to a run without fault support; a fault-free run with checkpointing
    on additionally reports [exec.checkpoint_bytes] /
    [exec.checkpoint_time] but its results, traces and simulated times
    are likewise untouched (checkpoint writes overlap the run). *)

(** {2 Compiled executable plans}

    {!execute} re-derives the whole simulation — footprints, fetch plans,
    coalesced communication, pricing — on every call, even though all of
    it depends only on the spec, never on tensor contents. A compiled
    executable plan splits that work: {!plan} runs the simulation once
    (Model mode, stats byte-identical to a fresh run) while recording,
    per launch point, the ordered data operations a Full-mode run
    performs; {!run_plan} replays those operations against new tensor
    data. Run-phase buffers — instance fragments, reduction partials,
    kernel slices — come from a size-classed pool with per-lane arenas
    ({!Distal_support.Buf_pool}, capped by [DISTAL_POOL_MB]), so a warm
    run performs no per-fragment buffer allocation at all. *)

type eplan
(** A compiled executable plan for one (spec, coalesce, faults) triple. *)

val plan :
  ?coalesce:bool ->
  ?faults:Distal_fault.Fault.t ->
  spec ->
  (eplan, string) Stdlib.result
(** Compile the spec into an executable plan. [coalesce] and [faults]
    affect only the plan-time stats ({!plan_stats}) — the replayed data
    path is fault-oblivious, which is exact: {!execute}'s recovery
    contract makes a killed-and-replayed run's output bit-identical to
    the fault-free run. Fails exactly when {!execute} would (invalid
    distributions, fault plans or substitutions). *)

val run_plan :
  ?domains:int ->
  ?staged:bool ->
  ?kernels:Distal_tensor.Kernel_registry.mode ->
  eplan ->
  data:(string * Distal_tensor.Dense.t) list ->
  (result, string) Stdlib.result
(** Execute the plan against [data]. The output is byte-identical to
    [execute ~mode:Full] of the plan's spec on the same data, for every
    [domains]/[staged]/[kernels] setting, every pool size and whatever
    fault plan the plan was compiled with; the returned stats are a copy
    of the plan-time stats. Runs of one plan serialize on an internal
    lock (the buffer arenas are per-plan state); distinct plans run
    concurrently. *)

val plan_stats : eplan -> Stats.t
(** Copy of the modeled per-run statistics fixed at plan time. *)

val plan_runs : eplan -> int
(** Completed {!run_plan} calls. *)

val plan_pool_stats : eplan -> Distal_support.Buf_pool.stats
(** Buffer-pool counters — steady state shows hits and no new allocs. *)

val serial_reference :
  Distal_ir.Expr.stmt ->
  shapes:(string * int array) list ->
  data:(string * Distal_tensor.Dense.t) list ->
  Distal_tensor.Dense.t
(** Single-processor interpreter of tensor index notation, used as the
    correctness oracle for every distributed schedule. *)

val redistribute :
  ?profile:Distal_obs.Profile.t ->
  Distal_machine.Machine.t ->
  Distal_machine.Cost_model.t ->
  shape:int array ->
  src:Distal_ir.Distnot.t ->
  dst:Distal_ir.Distnot.t ->
  Stats.t
(** Cost of moving a tensor between two distributed layouts (§1: "easily
    transform data between distributed layouts to match the computation").
    One bulk-synchronous exchange step, planned ({!Comm_plan}), broadcast
    grouped, priced and profiled exactly as one step of {!execute} with no
    compute — per-processor occupancies combine under the cost model's
    duplex rule and cross-rack traffic charges the rack fabric. With
    [profile], every transfer is recorded as a copy event and the exchange
    becomes a one-step timeline. *)
