type t = {
  mutable time : float;
  mutable flops : float;
  mutable bytes_intra : float;
  mutable bytes_inter : float;
  mutable messages : int;
  mutable peak_mem : float;
  mutable oom : bool;
  mutable tasks : int;
  mutable steps : int;
}

let create () =
  {
    time = 0.0;
    flops = 0.0;
    bytes_intra = 0.0;
    bytes_inter = 0.0;
    messages = 0;
    peak_mem = 0.0;
    oom = false;
    tasks = 0;
    steps = 0;
  }

let gflops t = if t.time <= 0.0 then 0.0 else t.flops /. t.time /. 1e9
let gbs t ~bytes = if t.time <= 0.0 then 0.0 else bytes /. t.time /. 1e9

let add a b =
  {
    time = a.time +. b.time;
    flops = a.flops +. b.flops;
    bytes_intra = a.bytes_intra +. b.bytes_intra;
    bytes_inter = a.bytes_inter +. b.bytes_inter;
    messages = a.messages + b.messages;
    peak_mem = max a.peak_mem b.peak_mem;
    oom = a.oom || b.oom;
    tasks = a.tasks + b.tasks;
    steps = a.steps + b.steps;
  }

(* The metric names the executor registers; [of_registry] is the bridge
   that keeps this record a derived view now that the simulator accumulates
   into a [Distal_obs.Metrics] registry. *)
let of_registry reg =
  let v name =
    match Distal_obs.Metrics.value reg name with Some x -> x | None -> 0.0
  in
  {
    time = v "exec.time";
    flops = v "exec.flops";
    bytes_intra = v "exec.bytes_intra";
    bytes_inter = v "exec.bytes_inter";
    messages = int_of_float (v "exec.messages");
    peak_mem = v "exec.peak_mem";
    oom = v "exec.oom" > 0.0;
    tasks = int_of_float (v "exec.tasks");
    steps = int_of_float (v "exec.steps");
  }

let to_string t =
  Printf.sprintf
    "time=%.3gs flops=%.3g intra=%.3gB inter=%.3gB msgs=%d peak=%.3gB tasks=%d steps=%d%s"
    t.time t.flops t.bytes_intra t.bytes_inter t.messages t.peak_mem t.tasks t.steps
    (if t.oom then " OOM" else "")
