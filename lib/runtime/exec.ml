module Ints = Distal_support.Ints
module Pool = Distal_support.Pool
module Env = Distal_support.Env
module Dense = Distal_tensor.Dense
module Rect = Distal_tensor.Rect
module Rect_index = Distal_tensor.Rect_index
module Kernels = Distal_tensor.Kernels
module Kreg = Distal_tensor.Kernel_registry
module Machine = Distal_machine.Machine
module Cost = Distal_machine.Cost_model
module Expr = Distal_ir.Expr
module Expr_stage = Distal_ir.Expr_stage
module Provenance = Distal_ir.Provenance
module Bounds = Distal_ir.Bounds
module Taskir = Distal_ir.Taskir
module Distnot = Distal_ir.Distnot
module Kernel_match = Distal_ir.Kernel_match
module Fault = Distal_fault.Fault
module Injector = Distal_fault.Injector
module Checkpoint = Distal_fault.Checkpoint
module Metrics = Distal_obs.Metrics
module Profile = Distal_obs.Profile
module Span = Distal_obs.Span
module Event = Distal_obs.Event
module Cp = Distal_obs.Critical_path

type mode = Full | Model

type spec = {
  machine : Machine.t;
  cost : Cost.t;
  program : Taskir.program;
  dists : (string * Distnot.t) list;
  virtual_grid : int array option;
}

type result = { output : Dense.t option; stats : Stats.t }

type trace_event = {
  step : int;
  tensor : string;
  piece : Rect.t;
  src : int array;
  dst : int array;
  bytes : float;
}

let trace_to_string e =
  Printf.sprintf "step %d: %s%s %s -> %s (%.0f B)" e.step e.tensor
    (Rect.to_string e.piece)
    (Ints.to_string e.src) (Ints.to_string e.dst) e.bytes

let errf fmt = Printf.ksprintf (fun s -> Error s) fmt
let ( let* ) = Result.bind

(* Everything the simulator moves or stores is 8-byte floats. *)
let bytes_of_rect r = 8.0 *. float_of_int (Rect.volume r)

(* {2 Serial reference interpreter} *)

let serial_reference stmt ~shapes ~data =
  let extents = Distal_ir.Typecheck.check_exn stmt ~shapes in
  let shape_of tn = List.assoc tn shapes in
  let out_name = stmt.Expr.lhs.tensor in
  let out =
    if stmt.accum then
      match List.assoc_opt out_name data with
      | Some d -> Dense.copy d
      | None -> Dense.create (shape_of out_name)
    else Dense.create (shape_of out_name)
  in
  let lookup (a : Expr.access) coord = Dense.get (List.assoc a.tensor data) coord in
  let dims = Array.of_list (List.map snd extents) in
  let vars = Array.of_list (List.map fst extents) in
  Ints.iter_box dims (fun point ->
      let pt v =
        let rec idx k = if vars.(k) = v then k else idx (k + 1) in
        point.(idx 0)
      in
      let v = Expr.eval stmt ~lookup ~point:pt in
      let coord = Array.of_list (List.map pt stmt.lhs.indices) in
      Dense.add_at out coord v);
  out

(* {2 The distributed executor} *)

(* One communication bundle after planning: same payload (one rect, or
   several disjoint rects for a strided run), same source, same step.
   Several receivers make it a broadcast. *)
type group = {
  tensor : string;
  rects : Rect.t list;
  fragments : int;
  src : int;
  bytes : float;
  mutable receivers : (int * Cost.link) list;
}

(* One owner-group of a memoized fetch plan: the pieces of a footprint a
   given owner set holds, pre-merged into block/strided form. Owners are
   physical linear indices, deduped, in discovery order. *)
type fetch_group = {
  fg_owners : int list;
  fg_pieces : Rect.t list;
  fg_merged : Rect.t list;
  fg_nfrag : int;
  fg_volume : int;
}

(* Deferred side effects of one task probe. Index-launch points run
   concurrently on a domain pool, so a task body never touches shared
   state: it records its compute charges, communication batches and (in
   Full mode) its local output contribution as an ordered effect list.
   After the pool joins, the caller replays every task's list in
   launch-point order — metrics, traces, step accumulators, reduction
   bookkeeping and the global output store observe exactly the sequence a
   serial execution produces, whatever the domain count. *)
type fx =
  | Fx_compute of { step : int; flops : float; bytes : float }
  | Fx_batch of {
      step : int;
      tensor : string;
      src : int;
      dst : int;
      pieces : Rect.t list;
      merged : Rect.t list;
      nfrag : int;
      volume : int;
    }
  | Fx_red of { step : int; rect : Rect.t; buf : Dense.t option }
      (* reduction partial: register the contribution, add into the output *)
  | Fx_out of { step : int; rect : Rect.t; buf : Dense.t option }
      (* owner-computes delta: add into the output (instances are
         zero-seeded, so tasks produce deltas and the merge accumulates) *)

type task_result = { tr_proc : int; tr_fxs : fx list; tr_dyn_max : float }

(* {2 Recorded data operations} *)

(* The data path of one task, recorded during a planning probe. A task's
   control flow — instance footprints, communicate points, leaf schedule —
   depends only on the spec, never on tensor contents, so a Model-mode
   probe can record exactly the data operations a Full-mode run performs.
   [run_plan] replays them against fresh tensor data with pooled buffers;
   replaying (instead of re-simulating) is what makes the steady state of
   a compiled plan free of per-fragment allocation. *)
type drole =
  | R_input  (* instance of an input tensor: fill from the caller's data *)
  | R_output  (* zero-seeded output delta (owner-computes write or
                 reduction partial); the base value joins at merge time *)
  | R_read_out
      (* read-only instance of the output for self-referencing statements:
         fill from the caller's output data *)

type dslice = {
  ds_tensor : string;
  ds_local : Rect.t option;
      (* [None]: the leaf uses the whole cached instance. [Some local]: the
         instance covers more than this leaf execution touches — copy the
         [local] sub-box out and, for the output operand, write it back. *)
}

type dop =
  | D_inst of { tensor : string; rect : Rect.t; role : drole }
      (* materialize an instance at a communicate point *)
  | D_leaf of { denv : (string * int) array; slices : dslice list }
      (* run the leaf under the recorded launch/sequential-variable
         bindings; [slices] is the kernel-order slicing plan for
         substituted leaves (empty for scalar nests) *)
  | D_flush  (* the current output instance becomes a merge contribution *)

(* Per-step accumulators, preallocated per physical processor. One record
   per *active* step (a step some copy or compute touched), so the timing
   assembly walks flat arrays instead of hashing (step, proc) pairs and
   sorting the result. Copies are accumulated raw (one record per piece)
   and planned into groups at assembly time by [Comm_plan]. *)
type step_acc = {
  mutable raws : Comm_plan.raw list;
  cflops : float array;
  cbytes : float array;
  ctouch : bool array;
  send : float array;
  recv : float array;
  mtouch : bool array;
  mutable cross : float;  (* cross-rack bytes this step *)
}

(* Bundle planned transfers that carry the same payload from the same
   source into broadcast groups. [Comm_plan] sorts transfers by (tensor,
   src, payload, dst), so grouping is one linear scan and each group's
   receiver list comes out in ascending destination order. Payloads are
   usually shared sublists (the executor memoizes fetch plans), so the
   physical-equality check in [compare_rects] makes the scan cheap. *)
let group_transfers (xfers : Comm_plan.xfer list) =
  let rev =
    List.fold_left
      (fun acc (x : Comm_plan.xfer) ->
        match acc with
        | g :: _
          when g.src = x.Comm_plan.src
               && String.equal g.tensor x.Comm_plan.tensor
               && Comm_plan.compare_rects g.rects x.Comm_plan.rects = 0 ->
            g.receivers <- (x.Comm_plan.dst, x.Comm_plan.link) :: g.receivers;
            acc
        | _ ->
            {
              tensor = x.Comm_plan.tensor;
              rects = x.Comm_plan.rects;
              fragments = x.Comm_plan.fragments;
              src = x.Comm_plan.src;
              bytes = 8.0 *. float_of_int x.Comm_plan.volume;
              receivers = [ (x.Comm_plan.dst, x.Comm_plan.link) ];
            }
            :: acc)
      [] xfers
  in
  List.rev_map
    (fun g ->
      g.receivers <- List.rev g.receivers;
      g)
    rev

(* Post-planning observability: group counts, merged-run counts and
   per-message payload sizes are recorded after coalescing, so
   [exec.messages] counts wire messages, not raw fragments (raw traffic
   totals stay in [exec.bytes_intra]/[exec.bytes_inter], which planning
   never changes). *)
let observe_groups ~m_messages ~m_copy_groups ~m_coalesced ~h_copy_bytes glist =
  List.iter
    (fun g ->
      Metrics.inc_int m_copy_groups 1;
      if g.fragments > 1 then Metrics.inc_int m_coalesced 1;
      let k = List.length g.receivers in
      Metrics.inc_int m_messages k;
      for _ = 1 to k do
        Metrics.observe h_copy_bytes g.bytes
      done)
    glist

(* Charge one step's copy groups into the per-processor send/recv occupancy
   arrays; returns (payload bytes moved, messages). A processor's two
   occupancies are later combined per the cost model's duplex mode.
   Broadcasts use the large-message collective model; a strided run
   additionally pays the packing cost on its endpoints. *)
let price_groups cost ~send ~recv ~mtouch glist =
  let bytes = ref 0.0 and messages = ref 0 in
  List.iter
    (fun g ->
      let k = List.length g.receivers in
      bytes := !bytes +. (g.bytes *. float_of_int k);
      messages := !messages + k;
      let pack = Cost.pack_time cost ~fragments:g.fragments in
      if k = 1 then begin
        let dst, link = List.hd g.receivers in
        let t =
          Cost.strided_copy_time cost link ~bytes:g.bytes ~fragments:g.fragments
        in
        recv.(dst) <- recv.(dst) +. t;
        mtouch.(dst) <- true;
        send.(g.src) <- send.(g.src) +. t;
        mtouch.(g.src) <- true
      end
      else begin
        let worst =
          if List.exists (fun (_, l) -> l = Cost.Inter) g.receivers then Cost.Inter
          else Cost.Intra
        in
        List.iter
          (fun (dst, link) ->
            send.(dst) <-
              send.(dst)
              +. Cost.broadcast_participant_send cost link ~bytes:g.bytes
                   ~receivers:k;
            recv.(dst) <-
              recv.(dst)
              +. Cost.broadcast_time cost link ~bytes:g.bytes ~receivers:k
              +. pack;
            mtouch.(dst) <- true)
          g.receivers;
        send.(g.src) <-
          send.(g.src)
          +. Cost.broadcast_time cost worst ~bytes:g.bytes ~receivers:k
          +. pack;
        mtouch.(g.src) <- true
      end)
    glist;
  (!bytes, !messages)

(* One profile instant per wire message, on the receiver's track. *)
let emit_copy_instants sink ~pid ~ts ?name glist =
  List.iter
    (fun g ->
      let k = List.length g.receivers in
      let ev_name = match name with Some n -> n | None -> g.tensor in
      List.iter
        (fun (dst, link) ->
          Span.instant sink ~name:ev_name ~cat:"copy" ~pid ~tid:dst ~ts
            ~attrs:
              [
                ("tensor", Event.Str g.tensor);
                ("piece", Event.Str (Comm_plan.describe g.rects));
                ("fragments", Event.Int g.fragments);
                ("src", Event.Int g.src);
                ("dst", Event.Int dst);
                ("bytes", Event.Float g.bytes);
                ( "link",
                  Event.Str
                    (match link with Cost.Intra -> "intra" | Cost.Inter -> "inter")
                );
                ("receivers", Event.Int k);
              ]
            ())
        g.receivers)
    glist

(* Per-statement operation count per iteration-space point: one per binary
   operator plus the reduction accumulate. *)
let ops_per_point (stmt : Expr.stmt) =
  let rec count = function
    | Expr.Access _ | Expr.Const _ -> 0
    | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) -> 1 + count a + count b
  in
  let c = count stmt.rhs + if Expr.reduction_vars stmt <> [] then 1 else 0 in
  max 1 c

let execute_impl ?(mode = Full) ?(coalesce = true) ?domains ?staged ?kernels
    ?(record : dop list ref array option) ?trace ?profile ?faults spec ~data =
  (* Register this execution as a run of the profile (its own pid, metrics
     registry and timeline slot). Without a profile the registry is private
     to this call; either way it is the single accumulator the final
     [Stats.t] view derives from. *)
  let prun = Option.map (fun p -> Profile.begin_run ~fallback:"execute" p) profile in
  let reg =
    match prun with Some r -> r.Profile.metrics | None -> Metrics.create ()
  in
  (* Gc.minor_words reads the live allocation pointer; quick_stat's
     minor_words only advances at minor collections and misses short
     runs entirely. *)
  let gc0_minor = Gc.minor_words () in
  let gc0 = Gc.quick_stat () in
  let m_flops = Metrics.counter reg "exec.flops" in
  let m_bytes_intra = Metrics.counter reg "exec.bytes_intra" in
  let m_bytes_inter = Metrics.counter reg "exec.bytes_inter" in
  let m_messages = Metrics.counter reg "exec.messages" in
  let m_tasks = Metrics.counter reg "exec.tasks" in
  let m_copy_groups = Metrics.counter reg "exec.copy_groups" in
  let m_coalesced = Metrics.counter reg "exec.coalesced_groups" in
  (* Host CPU seconds spent planning communication (fragment coalescing,
     broadcast grouping and message pricing). Wall-clock observability
     only: like [exec.compute_wall_s] it lives in the metrics registry
     and never feeds events or simulated time, so determinism across
     pool sizes is untouched. The simperf bench reads it to compare the
     planner against the planner-off path without the noise of timing
     whole runs. *)
  let m_plan_host = Metrics.counter reg "exec.plan_wall_s" in
  let h_copy_bytes = Metrics.histogram reg "exec.copy_bytes" in
  let prog = spec.program in
  let stmt = prog.stmt in
  let prov = prog.prov in
  let machine = spec.machine in
  let cost = spec.cost in
  let out_name = stmt.lhs.tensor in
  (* A statement whose output tensor also appears on the right-hand side
     (e.g. [A(i,j) = A(i,j) + B(i,j)]) reads the caller's value of the
     output, exactly as [serial_reference] does: those reads come from a
     separate, immutable instance, never from the buffer being written. *)
  let reads_out = Expr.reads_output stmt in
  let tensors = Expr.tensors stmt in
  (* Per-operand traffic breakdown for the utilization report. Counters are
     registered up front so zero-traffic operands still show up. *)
  let m_bytes_by_tensor =
    List.map
      (fun tn -> (tn, Metrics.counter reg ("exec.bytes_by_tensor." ^ tn)))
      (List.sort_uniq compare tensors)
  in
  (* Distributions (and index task launches) may target a virtual grid
     larger than the machine; virtual processors fold onto physical ones
     exactly as the mapper folds launch points. *)
  let vmachine =
    match spec.virtual_grid with
    | None -> machine
    | Some dims ->
        Machine.grid ~kind:(Machine.kind machine)
          ~mem_per_proc:(Machine.mem_per_proc_bytes machine) dims
  in
  let nprocs_phys = Machine.num_procs machine in
  (* Validate distributions. *)
  let* dists =
    List.fold_left
      (fun acc tn ->
        let* acc = acc in
        match List.assoc_opt tn spec.dists with
        | None -> errf "no distribution given for tensor %s" tn
        | Some d -> (
            let rank = Array.length (Taskir.shape_of prog tn) in
            match Distnot.validate d ~tensor_rank:rank ~machine:vmachine with
            | Ok () -> Ok ((tn, d) :: acc)
            | Error e -> errf "invalid distribution for %s: %s" tn e))
      (Ok []) tensors
  in
  let* () =
    if mode = Full then
      List.fold_left
        (fun acc tn ->
          let* () = acc in
          if tn = out_name && (not stmt.accum) && not reads_out then Ok ()
          else if List.mem_assoc tn data then Ok ()
          else errf "no data given for tensor %s" tn)
        (Ok ()) tensors
    else Ok ()
  in
  let* named_order =
    let rec find = function
      | Taskir.Launch { body; _ } | Seq_loop { body; _ } | Ensure { body; _ } ->
          find body
      | Leaf (Named { kernel; _ }) -> Some kernel
      | Leaf (Scalar_loops _) -> None
    in
    match find prog.tree with
    | None -> Ok None
    | Some kernel ->
        let* order = Kernel_match.check stmt ~kernel in
        Ok (Some (kernel, order))
  in
  let* () =
    match named_order with
    | Some _ when reads_out ->
        errf "substituted kernels cannot read their output tensor %s" out_name
    | _ -> Ok ()
  in
  (* The kernel leaf compute is priced as: the substituted kernel when the
     tree names one, else the kernel the statement structurally matches.
     The latter covers unsubstituted leaves, which the registry also runs
     at native speed through staged dispatch — and, crucially, it depends
     only on the spec (never on the staged/kernels/domains switches), so
     modeled time keeps the determinism contract. *)
  let priced_kernel =
    match named_order with
    | Some (k, _) -> Some k
    | None -> Kernel_match.infer stmt
  in
  let lvars, ldims = Taskir.launch prog in
  let rec seq_loops = function
    | Taskir.Launch { body; _ } | Ensure { body; _ } -> seq_loops body
    | Seq_loop { var; extent; body } -> (var, extent) :: seq_loops body
    | Leaf _ -> []
  in
  let seqs = seq_loops prog.tree in
  let seq_vars = Array.of_list (List.map fst seqs) in
  let seq_dims = Array.of_list (List.map snd seqs) in
  let seq_strides = Ints.row_major_strides seq_dims in
  let nsteps = max 1 (Ints.prod seq_dims) in
  (* {3 Fault plan resolution} *)
  (* An absent or empty plan (no events, checkpointing off) takes the
     identity path everywhere below: no injector, no checkpoint store, no
     fault metrics — results, traces, stats and event streams are
     byte-identical to an executor without fault support. *)
  let fplan = match faults with Some f -> f | None -> Fault.empty in
  let* inj =
    if Fault.is_empty fplan then Ok None
    else
      match Injector.create fplan ~nprocs:nprocs_phys ~nsteps with
      | Ok i -> Ok (Some i)
      | Error e -> errf "invalid fault plan: %s" e
  in
  let checkpointing =
    match inj with Some i -> Injector.checkpointing i | None -> false
  in
  let have_kills = match inj with Some i -> Injector.has_kills i | None -> false in
  let have_msg_faults = inj <> None && fplan.Fault.messages <> [] in
  (* Fault instruments exist only when a plan is active, so inactive runs
     register nothing new. *)
  let m_faults_injected, m_replayed_steps, m_ckpt_bytes, m_restore_bytes =
    match inj with
    | None -> (None, None, None, None)
    | Some _ ->
        ( Some (Metrics.counter reg "exec.faults_injected"),
          Some (Metrics.counter reg "exec.replayed_steps"),
          Some (Metrics.counter reg "exec.checkpoint_bytes"),
          Some (Metrics.counter reg "exec.restore_bytes") )
  in
  let inc_opt m v = match m with Some m -> Metrics.inc m v | None -> () in
  let inc_opt_int m v = match m with Some m -> Metrics.inc_int m v | None -> () in
  let ckpt =
    if checkpointing then Some (Checkpoint.create ~merge:Comm_plan.merge_rects)
    else None
  in
  (* Global backing stores. In owner-computes mode the output buffer is
     seeded from the global store, so for [=] statements the global output
     starts at zero; for [+=] it starts at the caller-provided value. *)
  let global : (string, Dense.t) Hashtbl.t = Hashtbl.create 8 in
  if mode = Full then begin
    List.iter
      (fun tn ->
        if tn <> out_name then Hashtbl.replace global tn (List.assoc tn data))
      tensors;
    let out0 =
      if stmt.accum then Dense.copy (List.assoc out_name data)
      else Dense.create (Taskir.shape_of prog out_name)
    in
    Hashtbl.replace global out_name out0
  end;
  (* Immutable source for RHS reads of the output tensor: the caller's
     data, never the (zero-seeded or partially flushed) global store. *)
  let out_input =
    if mode = Full && reads_out then Some (List.assoc out_name data) else None
  in
  let nprocs = Machine.num_procs machine in
  (* Per-linear-processor node and rack ids: link and rack decisions in the
     walk are plain array lookups instead of coordinate arithmetic. *)
  let node_of_lin =
    Array.init nprocs (fun p -> Machine.node_of machine (Machine.delinearize machine p))
  in
  let rack_of_lin = Array.map (fun n -> n / cost.Cost.rack_nodes) node_of_lin in
  (* Placement under faults: effects landing on a processor that is dead
     at their step execute on its failover target instead
     ({!Mapper.fallback} — the next live linear processor, which also
     holds the checkpoint replica). Transfers whose endpoints collapse to
     the same processor after remapping become local and disappear.
     Fault-free runs take the identity path. *)
  let remap =
    match inj with
    | Some i when have_kills ->
        fun ~step p ->
          if Injector.dead i ~step ~proc:p then
            Mapper.fallback ~nprocs
              ~dead:(fun q -> Injector.dead i ~step ~proc:q)
              p
          else p
    | _ -> fun ~step:_ p -> p
  in
  (* Folding a virtual owner to a physical linear index needs no coordinate
     round-trip: delinearize and linearize on the same machine cancel. *)
  let lin_of_virtual =
    if spec.virtual_grid = None then Machine.linearize machine
    else fun vc -> Machine.linearize vmachine vc mod nprocs_phys
  in
  let tiles_of : (string, int list Rect_index.t) Hashtbl.t = Hashtbl.create 8 in
  (* Per-tensor: a spatial index over the distribution's tiles (cyclic
     distributions produce many), the tiles each physical processor owns
     (several under over-decomposition), and a memo of needed-rect ->
     (piece, owners) coverings — the hot lookups of the simulation. Owners
     are physical linear indices. *)
  let proc_rects_of : (string, Rect.t list array) Hashtbl.t = Hashtbl.create 8 in
  (* Tensors sharing a distribution and shape (e.g. both GEMM operands
     cyclic over the same grid) share one tile sweep, index and owned-tile
     table — the index is read-only under query interleaving. *)
  let geom_memo : (string, int list Rect_index.t * Rect.t list array) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun tn ->
      let shape = Taskir.shape_of prog tn in
      let dist = List.assoc tn dists in
      let key = Distnot.to_string dist ^ "|" ^ Ints.to_string shape in
      let index, rects =
        match Hashtbl.find_opt geom_memo key with
        | Some g -> g
        | None ->
            let vtiles = Distnot.tiles dist ~shape ~machine:vmachine in
            let dedup owners =
              match owners with
              | [ o ] -> [ lin_of_virtual o ]
              | _ ->
                  List.fold_left
                    (fun acc o ->
                      let l = lin_of_virtual o in
                      if List.mem l acc then acc else l :: acc)
                    [] owners
                  |> List.rev
            in
            let index =
              Rect_index.build (List.map (fun (r, owners) -> (r, dedup owners)) vtiles)
            in
            (* The owned-tile lists fall out of the same tile sweep ([tiles]
               already ran [rects_of_proc] for every virtual processor). *)
            let rects = Array.make nprocs [] in
            List.iter
              (fun (r, owners) ->
                List.iter
                  (fun vc ->
                    let p = lin_of_virtual vc in
                    rects.(p) <- r :: rects.(p))
                  owners)
              vtiles;
            let g = (index, rects) in
            Hashtbl.add geom_memo key g;
            g
      in
      Hashtbl.replace tiles_of tn index;
      Hashtbl.replace proc_rects_of tn rects)
    tensors;
  (* Per-lane working state: every mutable cache a task probe touches.
     Each pool lane builds its own (memo tables, index cursor, bounds
     memo), so concurrent tasks never share mutable state; within a lane,
     tasks hit the same memos a serial run would. [pieces_of] covers a
     needed rect with (piece, owners) from the spatial index; [plan_of]
     groups those pieces by owner set and pre-merges each group
     ([Comm_plan.merge_rects]) — computed once per distinct (tensor,
     footprint) and shared by every task in the lane that needs that
     footprint. For cyclic distributions this is where thousands of
     per-piece decisions collapse into a handful of per-owner batches. *)
  let make_lane_ctx () =
    let cursor = Rect_index.cursor () in
    (* Memo keys are structural (tensor, rect) pairs: rects hash and
       compare directly, so the hot per-task lookups cost no string
       rendering — under multi-domain probes that formatting was a
       measurable source of allocation (and thus shared-GC contention). *)
    let pieces_memo : (string * Rect.t, (Rect.t * int list) list) Hashtbl.t =
      Hashtbl.create 256
    in
    let pieces_of tn rect =
      let key = (tn, rect) in
      match Hashtbl.find_opt pieces_memo key with
      | Some ps -> ps
      | None ->
          let ps = Rect_index.query ~cursor (Hashtbl.find tiles_of tn) rect in
          Hashtbl.add pieces_memo key ps;
          ps
    in
    let plans_memo : (string * Rect.t, fetch_group list) Hashtbl.t =
      Hashtbl.create 64
    in
    let plan_of tn rect =
      let key = (tn, rect) in
      match Hashtbl.find_opt plans_memo key with
      | Some plan -> plan
      | None ->
          let ps = pieces_of tn rect in
          let rec same_owners (a : int list) (b : int list) =
            match (a, b) with
            | [], [] -> true
            | x :: xs, y :: ys -> x = y && same_owners xs ys
            | _ -> false
          in
          let groups : (int list * Rect.t list ref * int ref) list ref = ref [] in
          List.iter
            (fun (piece, owners) ->
              match
                List.find_opt (fun (os, _, _) -> same_owners os owners) !groups
              with
              | Some (_, ps, vol) ->
                  ps := piece :: !ps;
                  vol := !vol + Rect.volume piece
              | None ->
                  groups := (owners, ref [ piece ], ref (Rect.volume piece)) :: !groups)
            ps;
          let plan =
            List.rev_map
              (fun (os, ps, vol) ->
                let pieces = List.rev !ps in
                {
                  fg_owners = os;
                  fg_pieces = pieces;
                  fg_merged = Comm_plan.merge_rects pieces;
                  fg_nfrag = List.length pieces;
                  fg_volume = !vol;
                })
              !groups
          in
          Hashtbl.add plans_memo key plan;
          plan
    in
    (Bounds.memo prov ~stmt, pieces_of, plan_of)
  in
  (* Reduction mode: some distributed loop variable derives from a
     variable summed over (§3.3: "distributing variables used for
     reductions results in distributed reductions into the output"). *)
  let reduction =
    let red_roots = Expr.reduction_vars stmt in
    List.exists
      (fun lv -> List.exists (fun r -> Provenance.derives_from prov lv ~root:r) red_roots)
      lvars
  in
  (* Event log: one preallocated accumulator per active step. *)
  let steps_acc : step_acc option array = Array.make nsteps None in
  let acc_of step =
    match steps_acc.(step) with
    | Some a -> a
    | None ->
        let a =
          {
            raws = [];
            cflops = Array.make nprocs 0.0;
            cbytes = Array.make nprocs 0.0;
            ctouch = Array.make nprocs false;
            send = Array.make nprocs 0.0;
            recv = Array.make nprocs 0.0;
            mtouch = Array.make nprocs false;
            cross = 0.0;
          }
        in
        steps_acc.(step) <- Some a;
        a
  in
  let red_contribs : (Rect.t, float * int list) Hashtbl.t = Hashtbl.create 16 in
  let add_compute ~step ~proc ~flops ~bytes =
    let a = acc_of step in
    a.cflops.(proc) <- a.cflops.(proc) +. flops;
    a.cbytes.(proc) <- a.cbytes.(proc) +. bytes;
    a.ctouch.(proc) <- true;
    Metrics.inc m_flops flops
  in
  let racks = Ints.ceil_div (Machine.num_nodes machine) cost.Cost.rack_nodes in
  (* Record one batch of fragments moving src -> dst: traffic metrics and
     cross-rack accounting see the raw bytes (planning never changes
     totals); the batch itself is planned into wire messages at assembly
     time. Trace consumers still see one event per fragment. *)
  let add_batch ~step ~tensor ~src ~dst ~pieces ~merged ~nfrag ~volume =
    if volume > 0 then begin
      let a = acc_of step in
      let bytes = 8.0 *. float_of_int volume in
      let link =
        if node_of_lin.(src) = node_of_lin.(dst) then Cost.Intra else Cost.Inter
      in
      a.raws <-
        { Comm_plan.tensor; pieces; merged; nfrag; volume; src; dst; link } :: a.raws;
      (match link with
      | Cost.Intra -> Metrics.inc m_bytes_intra bytes
      | Cost.Inter -> Metrics.inc m_bytes_inter bytes);
      (match List.assoc_opt tensor m_bytes_by_tensor with
      | Some c -> Metrics.inc c bytes
      | None -> ());
      if rack_of_lin.(src) <> rack_of_lin.(dst) then a.cross <- a.cross +. bytes;
      match trace with
      | Some log ->
          let src_c = Machine.delinearize machine src in
          let dst_c = Machine.delinearize machine dst in
          List.iter
            (fun piece ->
              log :=
                {
                  step;
                  tensor;
                  piece;
                  src = src_c;
                  dst = dst_c;
                  bytes = bytes_of_rect piece;
                }
                :: !log)
            pieces
      | None -> ()
    end
  in
  (* Static per-processor memory: owned tiles of every tensor. *)
  let static_mem = Array.make nprocs 0.0 in
  List.iter
    (fun tn ->
      let rects = Hashtbl.find proc_rects_of tn in
      Array.iteri
        (fun p rs ->
          List.iter (fun r -> static_mem.(p) <- static_mem.(p) +. bytes_of_rect r) rs)
        rects)
    tensors;
  let dyn_peak = Array.make nprocs 0.0 in
  (* {3 Per-task walk} *)
  let ops = ops_per_point stmt in
  (* Staged leaf evaluation: the statement's scalar loop nest is compiled
     once per execution into flat loops over precomputed strides
     ({!Expr_stage}); [Expr.eval] stays the per-point oracle fallback.
     Plans are immutable, so every lane shares this one. *)
  let use_staged =
    match staged with
    | Some b -> b
    | None -> Env.bool_var ~default:true "DISTAL_STAGE"
  in
  (* Leaf kernel registry mode: explicit argument wins, then the
     DISTAL_KERNELS environment switch (default tiled). Only Full-mode
     leaf execution consults it — modeled time depends on (spec, cost)
     alone, never on which implementation computes the numbers. *)
  let kmode =
    match kernels with Some m -> m | None -> Kreg.default_mode ()
  in
  let staged_plan =
    if mode = Full && use_staged then begin
      let rec leaf_of = function
        | Taskir.Launch { body; _ } | Seq_loop { body; _ } | Ensure { body; _ } ->
            leaf_of body
        | Leaf (Scalar_loops vars) -> Some vars
        | Leaf (Named _) -> None
      in
      match leaf_of prog.tree with
      | Some vars -> Expr_stage.plan prov ~stmt ~leaf_vars:vars
      | None -> None
    end
    else None
  in
  let run_task ~fmemo ~pieces_of ~plan_of ?drec (point : int array) =
    let proc_coord = Mapper.proc_of_point machine ~launch_dims:ldims point in
    let proc = Machine.linearize machine proc_coord in
    let fxs = ref [] in
    let emit e = fxs := e :: !fxs in
    (* Data-op recording (plan compilation). Reset on entry so a kill
       replay of this point rewrites an identical list. *)
    (match drec with Some r -> r := [] | None -> ());
    let demit d = match drec with Some r -> r := d :: !r | None -> () in
    let env_tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.replace env_tbl v point.(i)) lvars;
    let env v = Hashtbl.find_opt env_tbl v in
    let step_of () =
      let s = ref 0 in
      Array.iteri
        (fun i v ->
          match env v with Some x -> s := !s + (x * seq_strides.(i)) | None -> ())
        seq_vars;
      !s
    in
    (* Cached instances record whether they count against dynamic memory
       (instances of locally-owned tiles alias the owned data). *)
    let cache : (string, Rect.t * Dense.t option * bool) Hashtbl.t = Hashtbl.create 8 in
    (* Read-only instance of the output tensor for self-referencing
       statements, kept apart from the write instance in [cache]. *)
    let out_read : (Rect.t * Dense.t option * bool) option ref = ref None in
    let dyn = ref 0.0 and dyn_max = ref 0.0 in
    let grow bytes =
      dyn := !dyn +. bytes;
      if !dyn > !dyn_max then dyn_max := !dyn
    in
    let shrink bytes = dyn := !dyn -. bytes in
    let proc_owns tn rect =
      List.exists (fun r -> Rect.subset rect r) (Hashtbl.find proc_rects_of tn).(proc)
    in
    (* Fetch cost: the footprint's memoized fetch plan gives the pieces
       grouped by owner set; groups the processor itself owns are free,
       the rest become one fragment batch each (same-node owners
       preferred). *)
    let charge_fetch tn rect =
      let step = step_of () in
      List.iter
        (fun g ->
          if not (List.mem proc g.fg_owners) then begin
            let src =
              match
                List.find_opt
                  (fun o -> node_of_lin.(o) = node_of_lin.(proc))
                  g.fg_owners
              with
              | Some o -> o
              | None -> List.hd g.fg_owners
            in
            emit
              (Fx_batch
                 {
                   step;
                   tensor = tn;
                   src;
                   dst = proc;
                   pieces = g.fg_pieces;
                   merged = g.fg_merged;
                   nfrag = g.fg_nfrag;
                   volume = g.fg_volume;
                 })
          end)
        (plan_of tn rect)
    in
    let flush_output ?step rect buf =
      demit D_flush;
      let step = match step with Some s -> s | None -> step_of () in
      if reduction then emit (Fx_red { step; rect; buf })
      else begin
        if not (proc_owns out_name rect) then
          (* Owner-computes with a remote owner: ship the tile home. *)
          List.iter
            (fun (piece, os) ->
              let dst = List.hd os in
              if dst <> proc then
                emit
                  (Fx_batch
                     {
                       step;
                       tensor = out_name;
                       src = proc;
                       dst;
                       pieces = [ piece ];
                       merged = [ piece ];
                       nfrag = 1;
                       volume = Rect.volume piece;
                     }))
            (pieces_of out_name rect);
        emit (Fx_out { step; rect; buf })
      end
    in
    let ensure tn =
      let shape = Taskir.shape_of prog tn in
      let rect = Bounds.footprint fmemo ~env ~shape tn in
      let fresh =
        match Hashtbl.find_opt cache tn with
        | Some (r, _, _) when Rect.equal r rect -> false
        | Some (r, old, counted) ->
            if tn = out_name then flush_output r old;
            if counted then shrink (bytes_of_rect r);
            Hashtbl.remove cache tn;
            true
        | None -> true
      in
      if fresh then begin
        let bytes = bytes_of_rect rect in
        (* An instance of a locally-owned subrect aliases the owned tile;
           reduction partials for the output are fresh allocations. *)
        let counted =
          (tn = out_name && reduction) || not (proc_owns tn rect)
        in
        if counted then grow bytes;
        if tn = out_name then begin
          (* Reduction partials start at zero; stationary/owner-computes
             outputs are seeded with current values (which only costs
             communication when the statement accumulates into — or reads —
             a tensor this processor does not own). *)
          if ((not reduction) && stmt.accum) || reads_out then charge_fetch tn rect
        end
        else charge_fetch tn rect;
        let buf =
          if mode = Model then None
          else if tn = out_name then
            (* Output instances are zero-seeded deltas — reduction partials
               and owner-computes writes alike. Tasks probe concurrently, so
               the base value joins exactly once, at merge time, when the
               delta accumulates into the global store. *)
            Some (Dense.create (Rect.extents rect))
          else Some (Dense.extract (Hashtbl.find global tn) rect)
        in
        Hashtbl.replace cache tn (rect, buf, counted);
        demit
          (D_inst
             {
               tensor = tn;
               rect;
               role = (if tn = out_name then R_output else R_input);
             });
        if tn = out_name && reads_out then begin
          (match !out_read with
          | Some (r0, _, counted0) ->
              if counted0 then shrink (bytes_of_rect r0);
              out_read := None
          | None -> ());
          let counted_r = not (proc_owns tn rect) in
          if counted_r then grow bytes;
          let rbuf =
            match out_input with
            | Some src when mode = Full -> Some (Dense.extract src rect)
            | _ -> None
          in
          out_read := Some (rect, rbuf, counted_r);
          demit (D_inst { tensor = tn; rect; role = R_read_out })
        end
      end
    in
    let leaf_bytes () =
      let base =
        List.fold_left
          (fun acc tn ->
            match Hashtbl.find_opt cache tn with
            | Some (r, _, _) -> acc +. bytes_of_rect r
            | None -> acc)
          0.0 tensors
      in
      match !out_read with Some (r, _, _) -> base +. bytes_of_rect r | None -> base
    in
    let leaf_points () =
      List.fold_left
        (fun acc v ->
          let lo, hi = Provenance.interval prov ~env v in
          acc *. float_of_int (max 0 (hi - lo)))
        1.0 (Expr.index_vars stmt)
    in
    let exec_leaf leaf =
      let step = step_of () in
      emit
        (Fx_compute
           {
             step;
             flops = float_of_int ops *. leaf_points ();
             bytes = leaf_bytes ();
           });
      (* Recording: snapshot the variable bindings the leaf runs under
         (launch + sequential vars — leaf vars are bound inside) and, for
         substituted kernels, the slicing plan relative to the cached
         instances. Both depend only on the spec, so a Model-mode probe
         records exactly what a Full-mode leaf execution does. *)
      (match drec with
      | None -> ()
      | Some _ ->
          let slices =
            match leaf with
            | Taskir.Scalar_loops _ -> []
            | Taskir.Named _ ->
                let _, order =
                  match named_order with Some ko -> ko | None -> assert false
                in
                List.map
                  (fun tn ->
                    let r =
                      match Hashtbl.find_opt cache tn with
                      | Some (r, _, _) -> r
                      | None ->
                          invalid_arg
                            ("leaf recorded without an instance of " ^ tn)
                    in
                    let shape = Taskir.shape_of prog tn in
                    let need = Bounds.footprint fmemo ~env ~shape tn in
                    if Rect.equal need r then { ds_tensor = tn; ds_local = None }
                    else begin
                      assert (Rect.subset need r);
                      let local =
                        Rect.make
                          ~lo:
                            (Array.mapi
                               (fun d x -> x - (r : Rect.t).lo.(d))
                               (need : Rect.t).lo)
                          ~hi:
                            (Array.mapi
                               (fun d x -> x - (r : Rect.t).lo.(d))
                               (need : Rect.t).hi)
                      in
                      { ds_tensor = tn; ds_local = Some local }
                    end)
                  order
          in
          demit
            (D_leaf { denv = Array.of_seq (Hashtbl.to_seq env_tbl); slices }));
      if mode = Full then begin
        let buffer tn =
          match Hashtbl.find_opt cache tn with
          | Some (r, Some b, _) -> (r, b)
          | _ -> invalid_arg ("leaf executed without an instance of " ^ tn)
        in
        match leaf with
        | Taskir.Named _ ->
            let kernel, order =
              match named_order with Some ko -> ko | None -> assert false
            in
            (* A cached instance may cover more than this leaf execution
               touches (a communicate point above further sequential
               loops): slice each buffer down to the leaf's footprint and
               write the output slice back afterwards. *)
            let sliced tn =
              let r, buf = buffer tn in
              let shape = Taskir.shape_of prog tn in
              let need = Bounds.footprint fmemo ~env ~shape tn in
              if Rect.equal need r then (buf, None)
              else begin
                assert (Rect.subset need r);
                let local =
                  Rect.make
                    ~lo:(Array.mapi (fun d x -> x - (r : Rect.t).lo.(d)) (need : Rect.t).lo)
                    ~hi:(Array.mapi (fun d x -> x - (r : Rect.t).lo.(d)) (need : Rect.t).hi)
                in
                (Dense.extract buf local, Some (buf, local))
              end
            in
            let bufs = List.map sliced order in
            let b (buf, _) = buf in
            (* Registry dispatch: [Off] and [Naive] run the reference
               loops, [Tiled] the blocked microkernels. *)
            Kreg.run_named kmode ~kernel (List.map b bufs);
            (* Write back a sliced output. *)
            (match (order, bufs) with
            | out :: _, (slice, Some (buf, local)) :: _ when String.equal out out_name ->
                Dense.blit_into ~src:slice ~dst:buf local
            | _ -> ())
        | Taskir.Scalar_loops vars ->
            (* Fast path: run the compiled nest over the raw instance
               arrays. Same executed points, order and float operations as
               the generic loop below — bit-identical output. Falls through
               to the oracle when this binding cannot be staged. *)
            let staged_done =
              match staged_plan with
              | None -> false
              | Some sp ->
                  let slots = Expr_stage.slots sp in
                  let nslots = Array.length slots in
                  let inst_of i (a : Expr.access) =
                    if i < nslots - 1 && reads_out && String.equal a.tensor out_name
                    then
                      match !out_read with
                      | Some (r, Some b, _) -> Some (r, b)
                      | _ -> None
                    else
                      match Hashtbl.find_opt cache a.tensor with
                      | Some (r, Some b, _) -> Some (r, b)
                      | _ -> None
                  in
                  let insts = Array.mapi inst_of slots in
                  Array.for_all Option.is_some insts
                  && Expr_stage.run ~kernels:kmode sp ~env
                       ~insts:(Array.map Option.get insts)
            in
            if not staged_done then begin
            let extents = Array.of_list (List.map (Provenance.extent prov) vars) in
            let vars_arr = Array.of_list vars in
            let lookup (a : Expr.access) coord =
              (* RHS reads of the output come from the read-only instance:
                 the write buffer is being mutated by this very loop nest
                 (and, for [=] statements, started from zero). *)
              let r, b =
                if reads_out && String.equal a.tensor out_name then
                  match !out_read with
                  | Some (r, Some b, _) -> (r, b)
                  | _ ->
                      invalid_arg
                        ("leaf executed without a read instance of " ^ out_name)
                else buffer a.tensor
              in
              let local = Array.mapi (fun d c -> c - (r : Rect.t).lo.(d)) coord in
              Dense.get b local
            in
            let out_rect, out_buf = buffer out_name in
            Ints.iter_box extents (fun pt ->
                Array.iteri (fun i v -> Hashtbl.replace env_tbl v pt.(i)) vars_arr;
                if Provenance.guards_ok prov ~env then begin
                  let point v =
                    match Provenance.raw_point prov ~env v with
                    | Some x -> x
                    | None -> invalid_arg ("unbound index variable " ^ v)
                  in
                  let v = Expr.eval stmt ~lookup ~point in
                  let coord =
                    Array.of_list (List.map point stmt.lhs.indices)
                  in
                  let local =
                    Array.mapi (fun d c -> c - (out_rect : Rect.t).lo.(d)) coord
                  in
                  Dense.add_at out_buf local v
                end);
            Array.iter (fun v -> Hashtbl.remove env_tbl v) vars_arr
            end
      end
    in
    let rec walk = function
      | Taskir.Launch { body; _ } -> walk body
      | Taskir.Seq_loop { var; extent; body } ->
          for x = 0 to extent - 1 do
            Hashtbl.replace env_tbl var x;
            walk body
          done;
          Hashtbl.remove env_tbl var
      | Taskir.Ensure { tensor; body } ->
          ensure tensor;
          walk body
      | Taskir.Leaf leaf -> exec_leaf leaf
    in
    walk prog.tree;
    (* Flush the cached output instance (write-back or reduction). The
       sequential loop vars are gone by now, so attribute the flush to the
       final step explicitly — it is the step whose end produced this
       state (matters only to fault remapping and checkpoints). *)
    (match Hashtbl.find_opt cache out_name with
    | Some (r, buf, _) -> flush_output ~step:(nsteps - 1) r buf
    | None -> ());
    (match drec with Some r -> r := List.rev !r | None -> ());
    { tr_proc = proc; tr_fxs = List.rev !fxs; tr_dyn_max = !dyn_max }
  in
  let points =
    if Array.length ldims = 0 then [| [||] |]
    else
      Array.of_list
        (List.rev (Ints.fold_box ldims ~init:[] ~f:(fun acc c -> c :: acc)))
  in
  let npoints = Array.length points in
  (* One recording slot per launch point, when a plan compilation asked
     for them ([plan] builds the array from the same launch box). *)
  let drec_of i =
    match record with
    | Some arr when Array.length arr = npoints -> Some arr.(i)
    | _ -> None
  in
  (* {3 Parallel probe, serial merge} *)
  (* Launch points are independent by construction (the distribution
     partitions the output), so lanes probe contiguous point ranges
     concurrently; each result slot is written by exactly one lane, and
     the pool join orders those writes before the merge below. Simulated
     time never depends on the lane count: it is assembled from the
     replayed effects, not from host timing. *)
  let pool = Pool.get ?size:domains () in
  let lanes = max 1 (min (Pool.size pool) npoints) in
  let results : task_result option array = Array.make npoints None in
  let lane_busy = Array.make lanes 0.0 in
  let wall0 = Pool.now () in
  Pool.run pool ~lanes (fun lane ->
      let t0 = Pool.now () in
      let fmemo, pieces_of, plan_of = make_lane_ctx () in
      let lo = lane * npoints / lanes and hi = (lane + 1) * npoints / lanes in
      for i = lo to hi - 1 do
        results.(i) <-
          Some (run_task ~fmemo ~pieces_of ~plan_of ?drec:(drec_of i) points.(i))
      done;
      lane_busy.(lane) <- Pool.now () -. t0);
  let compute_wall = Pool.now () -. wall0 in
  (* Host-side wall clock of the probe phase (not simulated time), plus
     pool shape and utilization. Gauges only: these never enter the event
     stream or the derived [Stats.t], so Full-mode runs stay byte-identical
     across domain counts. *)
  Metrics.set (Metrics.gauge reg "exec.compute_wall_s") compute_wall;
  Metrics.set (Metrics.gauge reg "exec.pool_domains") (float_of_int lanes);
  Metrics.set
    (Metrics.gauge reg "exec.pool_utilization")
    (if compute_wall > 0.0 then
       Array.fold_left ( +. ) 0.0 lane_busy /. (float_of_int lanes *. compute_wall)
     else 1.0);
  (* {3 Replay after kills} *)
  (* A killed processor loses its in-flight task state, so every launch
     point it was executing is re-probed from scratch — [run_task] is
     deterministic, so the replayed effects (and thus the final output)
     are exactly the originals, and the merge below charges them to the
     failover processor via [remap]. The simulated cost of this replay is
     priced in the recovery epilogue. *)
  (match inj with
  | Some i when have_kills ->
      let fmemo, pieces_of, plan_of = make_lane_ctx () in
      Array.iteri
        (fun idx r ->
          let proc = (Option.get r).tr_proc in
          if Injector.ever_dead i ~proc then
            results.(idx) <-
              Some
                (run_task ~fmemo ~pieces_of ~plan_of ?drec:(drec_of idx)
                   points.(idx)))
        results
  | _ -> ());
  (* Replay every task's deferred effects in launch-point order: metrics,
     traces, step accumulators, reduction bookkeeping and the global output
     observe exactly the sequence a serial execution produces. *)
  Array.iter
    (fun r ->
      let { tr_proc = proc; tr_fxs; tr_dyn_max } = Option.get r in
      Metrics.inc_int m_tasks 1;
      List.iter
        (fun e ->
          match e with
          | Fx_compute { step; flops; bytes } ->
              add_compute ~step ~proc:(remap ~step proc) ~flops ~bytes
          | Fx_batch { step; tensor; src; dst; pieces; merged; nfrag; volume } ->
              let src = remap ~step src and dst = remap ~step dst in
              if src <> dst then
                add_batch ~step ~tensor ~src ~dst ~pieces ~merged ~nfrag ~volume
          | Fx_red { step; rect; buf } -> (
              let rproc = remap ~step proc in
              (match ckpt with
              | Some c when not (Rect.is_empty rect) ->
                  Checkpoint.record c ~step ~proc:rproc rect
              | _ -> ());
              (match Hashtbl.find_opt red_contribs rect with
              | Some (b, procs) ->
                  (* Under kills, remapping can fold two contributors onto
                     one survivor; count it once. Fault-free, keep every
                     contribution exactly as before. *)
                  if not (have_kills && List.mem rproc procs) then
                    Hashtbl.replace red_contribs rect (b, rproc :: procs)
              | None ->
                  Hashtbl.add red_contribs rect (bytes_of_rect rect, [ rproc ]));
              match buf with
              | Some b when not (Rect.is_empty rect) ->
                  Dense.accumulate_into ~src:b ~dst:(Hashtbl.find global out_name)
                    rect
              | _ -> ())
          | Fx_out { step; rect; buf } -> (
              (match ckpt with
              | Some c when not (Rect.is_empty rect) ->
                  Checkpoint.record c ~step ~proc:(remap ~step proc) rect
              | _ -> ());
              match buf with
              | Some b when not (Rect.is_empty rect) ->
                  Dense.accumulate_into ~src:b ~dst:(Hashtbl.find global out_name)
                    rect
              | _ -> ()))
        tr_fxs;
      if tr_dyn_max > dyn_peak.(proc) then dyn_peak.(proc) <- tr_dyn_max)
    results;
  (* {3 Timing assembly} *)
  (* Deterministic order throughout this phase: steps ascending, copy
     groups sorted by key within each step, processors ascending — so two
     runs of the same spec (and [Full] vs [Model] of the same spec) produce
     identical event streams and bit-identical times. Everything is read
     off the flat per-step accumulators; no (step, proc) hashing. *)
  let h_step_time = Metrics.histogram reg "exec.step_time" in
  let start = ref 0.0 in
  let tasks_per_proc = Ints.ceil_div npoints nprocs in
  let overhead = float_of_int tasks_per_proc *. cost.Cost.task_overhead in
  start := overhead;
  (* Per-step planned copy groups, kept for profile emission below. *)
  let sorted_groups : (int, group list) Hashtbl.t = Hashtbl.create 64 in
  let total_fragments = ref 0 and total_messages = ref 0 in
  let rev_rows = ref [] in
  (* One set of planner working tables for the whole assembly: the
     intern/bucket hashes are cleared, not reallocated, between steps. *)
  let cscratch = Comm_plan.scratch () in
  for step = 0 to nsteps - 1 do
    match steps_acc.(step) with
    | None -> ()
    | Some a ->
        (* Communication planning: merge this step's raw fragments into
           block transfers (or keep them one-per-piece when coalescing is
           disabled), then bundle identical payloads into broadcasts. *)
        let t_plan = Pool.now () in
        let plan =
          if coalesce then Comm_plan.coalesce ~scratch:cscratch a.raws
          else Comm_plan.uncoalesced a.raws
        in
        let glist = group_transfers plan in
        Hashtbl.replace sorted_groups step glist;
        observe_groups ~m_messages ~m_copy_groups ~m_coalesced ~h_copy_bytes glist;
        (* A processor's communication time in a step combines its send and
           receive occupancies per the cost model's duplex mode (full-duplex
           NICs overlap them; framebuffer DMA serializes them). *)
        let bytes, messages =
          price_groups cost ~send:a.send ~recv:a.recv ~mtouch:a.mtouch glist
        in
        Metrics.inc m_plan_host (Pool.now () -. t_plan);
        (* Message faults: a matched drop costs its endpoints a
           retransmission (timeout + full resend), a matched delay holds
           the receiver back. Payload byte/message counts are untouched —
           the data still arrives, late. Purely plan-driven, so Full and
           Model mode price faults identically. *)
        if have_msg_faults then begin
          let i = Option.get inj in
          List.iter
            (fun g ->
              List.iter
                (fun (dst, link) ->
                  match
                    Injector.msg_action i ~step ~tensor:g.tensor ~src:g.src ~dst
                  with
                  | Some Fault.Drop ->
                      inc_opt_int m_faults_injected 1;
                      let t =
                        Cost.retransmit_time cost link ~bytes:g.bytes
                          ~fragments:g.fragments
                      in
                      a.send.(g.src) <- a.send.(g.src) +. t;
                      a.recv.(dst) <- a.recv.(dst) +. t;
                      a.mtouch.(g.src) <- true;
                      a.mtouch.(dst) <- true
                  | Some (Fault.Delay d) ->
                      inc_opt_int m_faults_injected 1;
                      a.recv.(dst) <- a.recv.(dst) +. d;
                      a.mtouch.(dst) <- true
                  | None -> ())
                g.receivers)
            glist
        end;
        let bytes = ref bytes and messages = ref messages in
        total_fragments :=
          !total_fragments
          + List.fold_left
              (fun acc (r : Comm_plan.raw) -> acc + r.Comm_plan.nfrag)
              0 a.raws;
        total_messages := !total_messages + !messages;
        (* One timeline step per active step: per-processor occupancies,
           the charged cost (max over processors of overlapped
           compute+comm, or the rack fabric), and the traffic that
           moved. *)
        let slots = ref [] in
        for proc = nprocs - 1 downto 0 do
          if a.ctouch.(proc) || a.mtouch.(proc) then begin
            let cmp =
              if a.ctouch.(proc) then
                match priced_kernel with
                | Some k ->
                    Cost.leaf_compute_time cost ~kernel:k
                      ~flops:a.cflops.(proc) ~bytes_touched:a.cbytes.(proc)
                | None ->
                    Cost.compute_time cost ~flops:a.cflops.(proc)
                      ~bytes_touched:a.cbytes.(proc)
              else 0.0
            in
            let cm =
              if a.mtouch.(proc) then
                Cost.combine_sr cost ~send:a.send.(proc) ~recv:a.recv.(proc)
              else 0.0
            in
            slots :=
              {
                Cp.proc;
                compute = cmp;
                comm = cm;
                busy = Cost.step_time cost ~compute:cmp ~comm:cm;
              }
              :: !slots
          end
        done;
        let slots = !slots in
        let fabric =
          if a.cross > 0.0 then Cost.fabric_time cost ~cross_rack_bytes:a.cross ~racks
          else 0.0
        in
        let cost_step =
          List.fold_left (fun acc (sl : Cp.slot) -> Float.max acc sl.Cp.busy) fabric slots
        in
        Metrics.observe h_step_time cost_step;
        let row =
          { Cp.index = step; start = !start; cost = cost_step; slots; bytes = !bytes;
            messages = !messages; fabric }
        in
        start := !start +. cost_step;
        rev_rows := row :: !rev_rows
  done;
  let step_rows = List.rev !rev_rows in
  let time =
    List.fold_left (fun acc (r : Cp.step) -> acc +. r.Cp.cost) 0.0 step_rows
  in
  (* Reduction epilogue: independent tiles reduce in parallel. *)
  let red_time =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) red_contribs []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.fold_left
         (fun acc (_, (bytes, procs)) ->
           let k = List.length procs in
           if k <= 1 then acc
           else begin
             let first = List.hd procs in
             let link =
               if List.for_all (fun p -> node_of_lin.(p) = node_of_lin.(first)) procs
               then Cost.Intra
               else Cost.Inter
             in
             (match link with
             | Cost.Intra ->
                 Metrics.inc m_bytes_intra (bytes *. float_of_int (k - 1))
             | Cost.Inter ->
                 Metrics.inc m_bytes_inter (bytes *. float_of_int (k - 1)));
             Metrics.inc_int m_messages (k - 1);
             max acc (Cost.reduce_time cost link ~bytes ~contributors:k)
           end)
         0.0
  in
  (* {3 Recovery epilogue} *)
  (* Each kill is an independent recovery episode: the failure is
     detected (a heartbeat timeout), every processor rolls back to the
     last checkpoint boundary — restoring from its buddy replica the
     snapshots the replayed steps will rewrite — and the steps from the
     boundary through the kill step are replayed at their assembled cost.
     Without checkpointing the rollback is a restart: replay from step 0
     with nothing to restore. The simulated clock pays for all of it;
     checkpoint *writes* are assumed overlapped with the run (their
     modeled cost is reported as [exec.checkpoint_time], never added to
     [exec.time]), which keeps fault-free runs with checkpointing on
     byte-identical to plain runs. *)
  let buddy_link q =
    let b = (q + 1) mod nprocs in
    if node_of_lin.(q) = node_of_lin.(b) then Cost.Intra else Cost.Inter
  in
  (* (proc, kill step, replay-from, detect, restore, replay) per kill,
     in strike order — the profile emission below walks the same list. *)
  let episodes =
    match inj with
    | Some i when have_kills ->
        let row_cost = Array.make nsteps 0.0 in
        List.iter
          (fun (r : Cp.step) -> row_cost.(r.Cp.index) <- r.Cp.cost)
          step_rows;
        List.map
          (fun (proc, k) ->
            inc_opt_int m_faults_injected 1;
            let b = Injector.last_boundary i ~step:k in
            inc_opt_int m_replayed_steps (k - b + 1);
            let replay = ref 0.0 in
            for s = b to k do
              replay := !replay +. row_cost.(s)
            done;
            let restore =
              match ckpt with
              | Some c ->
                  let worst = ref 0.0 in
                  for q = 0 to nprocs - 1 do
                    let bytes =
                      Checkpoint.range_bytes c ~from_step:b ~to_step:k ~proc:q
                    in
                    if bytes > 0.0 then begin
                      inc_opt m_restore_bytes bytes;
                      let t = Cost.restore_time cost (buddy_link q) ~bytes in
                      if t > !worst then worst := t
                    end
                  done;
                  !worst
              | None -> 0.0
            in
            (proc, k, b, Cost.detect_time cost, restore, !replay))
          (Injector.kills i)
    | _ -> []
  in
  let recovery_time =
    List.fold_left
      (fun acc (_, _, _, detect, restore, replay) ->
        acc +. detect +. restore +. replay)
      0.0 episodes
  in
  (match ckpt with
  | Some c ->
      inc_opt m_ckpt_bytes (Checkpoint.total_bytes c);
      (* Modeled cost of streaming every step snapshot to its buddy:
         informational only (see above). *)
      let wtime =
        List.fold_left
          (fun acc s ->
            let worst = ref 0.0 in
            for q = 0 to nprocs - 1 do
              let bytes = Checkpoint.bytes c ~step:s ~proc:q in
              if bytes > 0.0 then begin
                let t = Cost.checkpoint_time cost (buddy_link q) ~bytes in
                if t > !worst then worst := t
              end
            done;
            acc +. !worst)
          0.0 (Checkpoint.write_steps c)
      in
      Metrics.set (Metrics.gauge reg "exec.checkpoint_time") wtime
  | None -> ());
  if inj <> None then
    Metrics.set (Metrics.gauge reg "exec.recovery_time") recovery_time;
  let total_time = overhead +. time +. red_time +. recovery_time in
  Metrics.set (Metrics.gauge reg "exec.time") total_time;
  Metrics.set (Metrics.gauge reg "exec.steps") (float_of_int nsteps);
  Metrics.set (Metrics.gauge reg "exec.overhead_time") overhead;
  Metrics.set (Metrics.gauge reg "exec.reduction_time") red_time;
  (* Raw fragments per wire message, over the whole run (1.0 when no data
     moved, or when nothing merged). *)
  Metrics.set
    (Metrics.gauge reg "exec.coalesce_ratio")
    (if !total_messages > 0 then
       float_of_int !total_fragments /. float_of_int !total_messages
     else 1.0);
  (* Memory accounting. *)
  let mem_limit = Machine.mem_per_proc_bytes machine in
  let g_peak = Metrics.gauge reg "exec.peak_mem" in
  let g_oom = Metrics.gauge reg "exec.oom" in
  for p = 0 to nprocs - 1 do
    let m = static_mem.(p) +. dyn_peak.(p) in
    Metrics.set_max g_peak m;
    if m > mem_limit then Metrics.set g_oom 1.0
  done;
  (* {3 Profile emission} *)
  (match (profile, prun) with
  | Some p, Some run ->
      let sink = Profile.sink p in
      let pid = run.Profile.pid in
      let rt = nprocs in
      Span.thread_name sink ~pid ~tid:rt "runtime";
      for proc = 0 to nprocs - 1 do
        Span.thread_name sink ~pid ~tid:proc
          (Printf.sprintf "proc %d %s" proc
             (Ints.to_string (Machine.delinearize machine proc)))
      done;
      if overhead > 0.0 then
        Span.complete sink ~name:"task launch overhead" ~cat:"runtime" ~pid ~tid:rt
          ~ts:0.0 ~dur:overhead
          ~attrs:[ ("tasks_per_proc", Event.Int tasks_per_proc) ]
          ();
      let copy_groups_of step =
        match Hashtbl.find_opt sorted_groups step with Some l -> l | None -> []
      in
      List.iter
        (fun (row : Cp.step) ->
          Span.complete sink
            ~name:(Printf.sprintf "step %d" row.Cp.index)
            ~cat:"step" ~pid ~tid:rt ~ts:row.Cp.start ~dur:row.Cp.cost
            ~attrs:
              [
                ("bytes", Event.Float row.Cp.bytes);
                ("messages", Event.Int row.Cp.messages);
                ("fabric", Event.Float row.Cp.fabric);
              ]
            ();
          Span.counter sink ~name:"bytes moved" ~pid ~tid:rt ~ts:row.Cp.start
            row.Cp.bytes;
          List.iter
            (fun (sl : Cp.slot) ->
              if sl.Cp.compute > 0.0 then
                Span.complete sink ~name:"compute" ~cat:"compute" ~pid ~tid:sl.Cp.proc
                  ~ts:row.Cp.start ~dur:sl.Cp.compute
                  ~attrs:
                    (match steps_acc.(row.Cp.index) with
                    | Some a when a.ctouch.(sl.Cp.proc) ->
                        [
                          ("flops", Event.Float a.cflops.(sl.Cp.proc));
                          ("bytes_touched", Event.Float a.cbytes.(sl.Cp.proc));
                        ]
                    | _ -> [])
                  ();
              let exposed = sl.Cp.busy -. sl.Cp.compute in
              if exposed > 0.0 then
                Span.complete sink ~name:"comm" ~cat:"comm" ~pid ~tid:sl.Cp.proc
                  ~ts:(row.Cp.start +. sl.Cp.compute) ~dur:exposed
                  ~attrs:[ ("occupancy", Event.Float sl.Cp.comm) ]
                  ())
            row.Cp.slots;
          emit_copy_instants sink ~pid ~ts:row.Cp.start
            (copy_groups_of row.Cp.index))
        step_rows;
      if red_time > 0.0 then
        Span.complete sink ~name:"distributed reduction" ~cat:"reduction" ~pid ~tid:rt
          ~ts:(overhead +. time) ~dur:red_time ();
      (* Fault lanes: a kill instant on the victim's own track at the step
         it strikes, and one recovery span per episode (detect + restore +
         replay) chained after the reduction epilogue. Only emitted when a
         kill actually strikes, so fault-free event streams are untouched. *)
      if episodes <> [] then begin
        let start_of k =
          match List.find_opt (fun (r : Cp.step) -> r.Cp.index = k) step_rows with
          | Some r -> r.Cp.start
          | None -> overhead
        in
        let cursor = ref (overhead +. time +. red_time) in
        List.iter
          (fun (proc, k, b, detect, restore, replay) ->
            Span.instant sink
              ~name:(Printf.sprintf "kill proc %d" proc)
              ~cat:"fault" ~pid ~tid:proc ~ts:(start_of k)
              ~attrs:[ ("step", Event.Int k) ]
              ();
            let dur = detect +. restore +. replay in
            Span.complete sink
              ~name:(Printf.sprintf "recover proc %d: replay steps %d..%d" proc b k)
              ~cat:"fault" ~pid ~tid:rt ~ts:!cursor ~dur
              ~attrs:
                [
                  ("detect", Event.Float detect);
                  ("restore", Event.Float restore);
                  ("replay", Event.Float replay);
                  ("from_step", Event.Int b);
                  ("kill_step", Event.Int k);
                ]
              ();
            cursor := !cursor +. dur)
          episodes
      end;
      run.Profile.timeline <-
        Some
          {
            Cp.nprocs;
            overhead;
            reduction = red_time;
            recovery = recovery_time;
            steps = step_rows;
            total = total_time;
          }
  | _ -> ());
  (* Host allocation accounting: OCaml words this execution allocated
     (bigarray payloads live outside the heap and are not counted).
     Gauges only — [Stats.of_registry] reads a fixed name set, so the
     derived stats and the determinism contract are untouched. The
     simperf bench compares these between the replan and plan-reuse
     paths; {!Distal_obs.Report.host_execution} prints them. *)
  let gc1 = Gc.quick_stat () in
  Metrics.set
    (Metrics.gauge reg "exec.alloc_minor_words")
    (Gc.minor_words () -. gc0_minor);
  Metrics.set
    (Metrics.gauge reg "exec.alloc_major_words")
    (gc1.Gc.major_words -. gc0.Gc.major_words);
  let stats = Stats.of_registry reg in
  (match trace with Some log -> log := List.rev !log | None -> ());
  let output = if mode = Full then Hashtbl.find_opt global out_name else None in
  Ok { output; stats }

let execute ?mode ?coalesce ?domains ?staged ?kernels ?trace ?profile ?faults
    spec ~data =
  execute_impl ?mode ?coalesce ?domains ?staged ?kernels ?trace ?profile
    ?faults spec ~data

(* {2 Compiled executable plans} *)

module Buf_pool = Distal_support.Buf_pool

(* Plan once per (program x schedule x machine x options), run many times
   against new tensor data. The plan phase is one Model-mode execution
   with data-op recording switched on: it prices the schedule exactly as
   [execute] does (stats are byte-identical to a fresh run's stats) and
   captures, per launch point, the ordered data operations a Full-mode
   run performs. The run phase replays those operations with buffers from
   a size-classed pool ({!Buf_pool}) — per-lane arenas during the
   parallel probe, released back after the serial merge — so a warm run
   allocates no fragment, reduction or slice buffers at all. *)
type eplan = {
  ep_spec : spec;
  ep_stats : Stats.t;  (* modeled per-run stats, fixed at plan time *)
  ep_dops : dop list array;  (* per launch point, launch-point order *)
  ep_named : (string * string list) option;  (* substituted kernel, order *)
  ep_staged : Expr_stage.plan option;
  ep_leaf_vars : string list;  (* Scalar_loops nest, outermost first *)
  ep_reads_out : bool;
  ep_accum : bool;
  ep_out_name : string;
  ep_out_shape : int array;
  ep_tensors : string list;
  ep_pool : Buf_pool.t;
  ep_m : Mutex.t;  (* one run at a time: arenas are per-plan state *)
  mutable ep_runs : int;
}

let plan ?(coalesce = true) ?faults spec =
  let prog = spec.program in
  let stmt = prog.stmt in
  let _, ldims = Taskir.launch prog in
  let points =
    if Array.length ldims = 0 then [| [||] |]
    else
      Array.of_list
        (List.rev (Ints.fold_box ldims ~init:[] ~f:(fun acc c -> c :: acc)))
  in
  let record = Array.map (fun _ -> ref []) points in
  let* r = execute_impl ~mode:Model ~coalesce ?faults ~record spec ~data:[] in
  let rec leaf_of = function
    | Taskir.Launch { body; _ } | Seq_loop { body; _ } | Ensure { body; _ } ->
        leaf_of body
    | Leaf l -> l
  in
  let named, leaf_vars =
    match leaf_of prog.tree with
    | Taskir.Named { kernel; _ } -> (
        match Kernel_match.check stmt ~kernel with
        | Ok order -> (Some (kernel, order), [])
        | Error _ ->
            (* the execution above already validated the substitution *)
            assert false)
    | Taskir.Scalar_loops vars -> (None, vars)
  in
  let staged_plan =
    match leaf_vars with
    | [] -> None
    | vars -> Expr_stage.plan prog.prov ~stmt ~leaf_vars:vars
  in
  Ok
    {
      ep_spec = spec;
      ep_stats = r.stats;
      ep_dops = Array.map (fun r -> !r) record;
      ep_named = named;
      ep_staged = staged_plan;
      ep_leaf_vars = leaf_vars;
      ep_reads_out = Expr.reads_output stmt;
      ep_accum = stmt.accum;
      ep_out_name = stmt.lhs.tensor;
      ep_out_shape = Taskir.shape_of prog stmt.lhs.tensor;
      ep_tensors = List.sort_uniq compare (Expr.tensors stmt);
      ep_pool = Buf_pool.create ();
      ep_m = Mutex.create ();
      ep_runs = 0;
    }

let plan_stats ep = { ep.ep_stats with Stats.time = ep.ep_stats.Stats.time }
let plan_runs ep = ep.ep_runs
let plan_pool_stats ep = Buf_pool.stats ep.ep_pool

let run_plan ?domains ?staged ?kernels ep ~data =
  let spec = ep.ep_spec in
  let prog = spec.program in
  let stmt = prog.stmt in
  let prov = prog.prov in
  let out_name = ep.ep_out_name in
  let reads_out = ep.ep_reads_out in
  (* Same input contract as [execute]. *)
  let* () =
    List.fold_left
      (fun acc tn ->
        let* () = acc in
        if tn = out_name && (not ep.ep_accum) && not reads_out then Ok ()
        else if List.mem_assoc tn data then Ok ()
        else errf "no data given for tensor %s" tn)
      (Ok ()) ep.ep_tensors
  in
  let use_staged =
    match staged with
    | Some b -> b
    | None -> Env.bool_var ~default:true "DISTAL_STAGE"
  in
  let kmode = match kernels with Some m -> m | None -> Kreg.default_mode () in
  (* Runs of one plan serialize: the arenas and the parked free lists are
     per-plan state. Different plans run concurrently without contact. *)
  Mutex.lock ep.ep_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock ep.ep_m) @@ fun () ->
  let pool = ep.ep_pool in
  let out_global =
    if ep.ep_accum then Dense.copy (List.assoc out_name data)
    else Dense.create ep.ep_out_shape
  in
  let out_input = if reads_out then Some (List.assoc out_name data) else None in
  let input_of tn = List.assoc tn data in
  let npoints = Array.length ep.ep_dops in
  (* Per-point merge contributions in flush order: (rect, view, block,
     acquiring lane). Blocks outlive their task — they are released to
     their lane's arena only after the serial merge reads them. *)
  let contribs : (Rect.t * Dense.t * Buf_pool.buf * int) list array =
    Array.make npoints []
  in
  let hpool = Pool.get ?size:domains () in
  let lanes = max 1 (min (Pool.size hpool) npoints) in
  Pool.run hpool ~lanes (fun lane ->
      let arena = Buf_pool.arena pool lane in
      let insts : (string, Rect.t * Dense.t * Buf_pool.buf) Hashtbl.t =
        Hashtbl.create 8
      in
      let read_inst : (Rect.t * Dense.t * Buf_pool.buf) option ref = ref None in
      let env_tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let acquire_view rect =
        let b = Buf_pool.acquire pool arena (Rect.volume rect) in
        (Dense.of_buf b (Rect.extents rect), b)
      in
      let buffer tn =
        match Hashtbl.find_opt insts tn with
        | Some (r, v, _) -> (r, v)
        | None -> invalid_arg ("plan leaf executed without an instance of " ^ tn)
      in
      let run_leaf denv slices =
        match ep.ep_named with
        | Some (kernel, _) ->
            (* Substituted kernel: replay the recorded slicing plan, run
               the registry kernel, write a sliced output back. *)
            let bufs =
              List.map
                (fun { ds_tensor; ds_local } ->
                  let _, v = buffer ds_tensor in
                  match ds_local with
                  | None -> (v, None)
                  | Some local ->
                      let sb = Buf_pool.acquire pool arena (Rect.volume local) in
                      let sv = Dense.of_buf sb (Rect.extents local) in
                      Dense.extract_into ~src:v ~dst:sv local;
                      (sv, Some (v, local, sb)))
                slices
            in
            Kreg.run_named kmode ~kernel (List.map fst bufs);
            (match (slices, bufs) with
            | { ds_tensor; _ } :: _, (sv, Some (v, local, _)) :: _
              when String.equal ds_tensor out_name ->
                Dense.blit_into ~src:sv ~dst:v local
            | _ -> ());
            List.iter
              (function
                | _, Some (_, _, sb) -> Buf_pool.release pool arena sb
                | _, None -> ())
              bufs
        | None ->
            (* Scalar nest: staged fast path, generic oracle fallback —
               the same gate, slot binding and loop as [execute]'s leaf,
               so results stay bit-identical. *)
            Hashtbl.reset env_tbl;
            Array.iter (fun (v, x) -> Hashtbl.replace env_tbl v x) denv;
            let env v = Hashtbl.find_opt env_tbl v in
            let staged_done =
              use_staged
              &&
              match ep.ep_staged with
              | None -> false
              | Some sp ->
                  let slots = Expr_stage.slots sp in
                  let nslots = Array.length slots in
                  let inst_of i (a : Expr.access) =
                    if
                      i < nslots - 1 && reads_out
                      && String.equal a.tensor out_name
                    then
                      match !read_inst with
                      | Some (r, v, _) -> Some (r, v)
                      | None -> None
                    else
                      match Hashtbl.find_opt insts a.tensor with
                      | Some (r, v, _) -> Some (r, v)
                      | None -> None
                  in
                  let sinsts = Array.mapi inst_of slots in
                  Array.for_all Option.is_some sinsts
                  && Expr_stage.run ~kernels:kmode sp ~env
                       ~insts:(Array.map Option.get sinsts)
            in
            if not staged_done then begin
              let vars_arr = Array.of_list ep.ep_leaf_vars in
              let extents = Array.map (Provenance.extent prov) vars_arr in
              let lookup (a : Expr.access) coord =
                let r, v =
                  if reads_out && String.equal a.tensor out_name then
                    match !read_inst with
                    | Some (r, v, _) -> (r, v)
                    | None ->
                        invalid_arg
                          ("plan leaf executed without a read instance of "
                         ^ out_name)
                  else buffer a.tensor
                in
                let local =
                  Array.mapi (fun d c -> c - (r : Rect.t).lo.(d)) coord
                in
                Dense.get v local
              in
              let out_rect, out_buf = buffer out_name in
              Ints.iter_box extents (fun pt ->
                  Array.iteri (fun i v -> Hashtbl.replace env_tbl v pt.(i)) vars_arr;
                  if Provenance.guards_ok prov ~env then begin
                    let point v =
                      match Provenance.raw_point prov ~env v with
                      | Some x -> x
                      | None -> invalid_arg ("unbound index variable " ^ v)
                    in
                    let value = Expr.eval stmt ~lookup ~point in
                    let coord = Array.of_list (List.map point stmt.lhs.indices) in
                    let local =
                      Array.mapi
                        (fun d c -> c - (out_rect : Rect.t).lo.(d))
                        coord
                    in
                    Dense.add_at out_buf local value
                  end)
            end
      in
      let lo = lane * npoints / lanes and hi = (lane + 1) * npoints / lanes in
      for i = lo to hi - 1 do
        let out_contribs = ref [] in
        List.iter
          (fun d ->
            match d with
            | D_inst { tensor; rect; role } -> (
                match role with
                | R_output ->
                    (match Hashtbl.find_opt insts tensor with
                    | Some (_, _, old) -> Buf_pool.release pool arena old
                    | None -> ());
                    let v, b = acquire_view rect in
                    Dense.fill v 0.0;
                    Hashtbl.replace insts tensor (rect, v, b)
                | R_input ->
                    (match Hashtbl.find_opt insts tensor with
                    | Some (_, _, old) -> Buf_pool.release pool arena old
                    | None -> ());
                    let v, b = acquire_view rect in
                    Dense.extract_into ~src:(input_of tensor) ~dst:v rect;
                    Hashtbl.replace insts tensor (rect, v, b)
                | R_read_out ->
                    (match !read_inst with
                    | Some (_, _, old) -> Buf_pool.release pool arena old
                    | None -> ());
                    let v, b = acquire_view rect in
                    (match out_input with
                    | Some src -> Dense.extract_into ~src ~dst:v rect
                    | None -> ());
                    read_inst := Some (rect, v, b))
            | D_leaf { denv; slices } -> run_leaf denv slices
            | D_flush -> (
                match Hashtbl.find_opt insts out_name with
                | Some (rect, v, b) ->
                    Hashtbl.remove insts out_name;
                    out_contribs := (rect, v, b, lane) :: !out_contribs
                | None -> ()))
          ep.ep_dops.(i);
        contribs.(i) <- List.rev !out_contribs;
        (* Input instances die with the task. *)
        Hashtbl.iter (fun _ (_, _, b) -> Buf_pool.release pool arena b) insts;
        Hashtbl.reset insts;
        match !read_inst with
        | Some (_, _, b) ->
            Buf_pool.release pool arena b;
            read_inst := None
        | None -> ()
      done);
  (* Serial merge in launch-point order, flush order within a task — the
     exact accumulation order [execute]'s effect replay uses, so outputs
     are byte-identical. *)
  for i = 0 to npoints - 1 do
    List.iter
      (fun (rect, v, b, lane) ->
        if not (Rect.is_empty rect) then
          Dense.accumulate_into ~src:v ~dst:out_global rect;
        Buf_pool.release pool (Buf_pool.arena pool lane) b)
      contribs.(i)
  done;
  ep.ep_runs <- ep.ep_runs + 1;
  Ok { output = Some out_global; stats = plan_stats ep }

(* {2 Redistribution} *)

let redistribute ?profile machine cost ~shape ~src ~dst =
  let prun = Option.map (fun p -> Profile.begin_run ~fallback:"redistribute" p) profile in
  let reg =
    match prun with Some r -> r.Profile.metrics | None -> Metrics.create ()
  in
  let m_bytes_intra = Metrics.counter reg "exec.bytes_intra" in
  let m_bytes_inter = Metrics.counter reg "exec.bytes_inter" in
  let m_messages = Metrics.counter reg "exec.messages" in
  let m_copy_groups = Metrics.counter reg "exec.copy_groups" in
  let m_coalesced = Metrics.counter reg "exec.coalesced_groups" in
  let h_copy_bytes = Metrics.histogram reg "exec.copy_bytes" in
  let nprocs = Machine.num_procs machine in
  let node_of_lin =
    Array.init nprocs (fun p -> Machine.node_of machine (Machine.delinearize machine p))
  in
  let rack_of_lin = Array.map (fun n -> n / cost.Cost.rack_nodes) node_of_lin in
  let lin_owners (r, os) = (r, List.map (Machine.linearize machine) os) in
  let src_tiles = List.map lin_owners (Distnot.tiles src ~shape ~machine) in
  let dst_tiles = List.map lin_owners (Distnot.tiles dst ~shape ~machine) in
  let racks = Ints.ceil_div (Machine.num_nodes machine) cost.Cost.rack_nodes in
  (* Discover the raw transfer list (same-node owners preferred), then run
     it through the same planning, broadcast grouping and one-step timing
     assembly as [execute]: a redistribution is just a one-step execution
     with no compute. *)
  let raws = ref [] in
  let rev_raw_count = ref 0 in
  let cross = ref 0.0 in
  List.iter
    (fun (dr, downers) ->
      List.iter
        (fun d ->
          List.iter
            (fun (sr, sowners) ->
              let piece = Rect.inter dr sr in
              if (not (Rect.is_empty piece)) && not (List.mem d sowners) then begin
                let s =
                  match
                    List.find_opt
                      (fun o -> node_of_lin.(o) = node_of_lin.(d))
                      sowners
                  with
                  | Some o -> o
                  | None -> List.hd sowners
                in
                let bytes = bytes_of_rect piece in
                let link =
                  if node_of_lin.(s) = node_of_lin.(d) then Cost.Intra
                  else Cost.Inter
                in
                (match link with
                | Cost.Intra -> Metrics.inc m_bytes_intra bytes
                | Cost.Inter -> Metrics.inc m_bytes_inter bytes);
                if rack_of_lin.(s) <> rack_of_lin.(d) then cross := !cross +. bytes;
                incr rev_raw_count;
                raws :=
                  {
                    Comm_plan.tensor = "";
                    pieces = [ piece ];
                    merged = [ piece ];
                    nfrag = 1;
                    volume = Rect.volume piece;
                    src = s;
                    dst = d;
                    link;
                  }
                  :: !raws
              end)
            src_tiles)
        downers)
    dst_tiles;
  let glist = group_transfers (Comm_plan.coalesce !raws) in
  observe_groups ~m_messages ~m_copy_groups ~m_coalesced ~h_copy_bytes glist;
  let send = Array.make nprocs 0.0
  and recv = Array.make nprocs 0.0
  and mtouch = Array.make nprocs false in
  let bytes_moved, messages = price_groups cost ~send ~recv ~mtouch glist in
  Metrics.set
    (Metrics.gauge reg "exec.coalesce_ratio")
    (if messages > 0 then float_of_int !rev_raw_count /. float_of_int messages
     else 1.0);
  (* One exchange step, assembled exactly as [execute] assembles a step:
     send and receive occupancies combine per the cost model's duplex rule,
     and cross-rack traffic charges the tapered fabric. *)
  let slots = ref [] in
  for p = nprocs - 1 downto 0 do
    if mtouch.(p) then begin
      let cm = Cost.combine_sr cost ~send:send.(p) ~recv:recv.(p) in
      slots :=
        {
          Cp.proc = p;
          compute = 0.0;
          comm = cm;
          busy = Cost.step_time cost ~compute:0.0 ~comm:cm;
        }
        :: !slots
    end
  done;
  let slots = !slots in
  let fabric =
    if !cross > 0.0 then Cost.fabric_time cost ~cross_rack_bytes:!cross ~racks
    else 0.0
  in
  let time =
    List.fold_left (fun acc (sl : Cp.slot) -> Float.max acc sl.Cp.busy) fabric slots
  in
  Metrics.set (Metrics.gauge reg "exec.time") time;
  Metrics.set (Metrics.gauge reg "exec.steps") 1.0;
  (match (profile, prun) with
  | Some p, Some run ->
      let sink = Profile.sink p in
      let pid = run.Profile.pid in
      for proc = 0 to nprocs - 1 do
        Span.thread_name sink ~pid ~tid:proc
          (Printf.sprintf "proc %d %s" proc
             (Ints.to_string (Machine.delinearize machine proc)))
      done;
      List.iter
        (fun (sl : Cp.slot) ->
          if sl.Cp.busy > 0.0 then
            Span.complete sink ~name:"redistribute" ~cat:"comm" ~pid ~tid:sl.Cp.proc
              ~ts:0.0 ~dur:sl.Cp.busy
              ~attrs:[ ("occupancy", Event.Float sl.Cp.comm) ]
              ())
        slots;
      emit_copy_instants sink ~pid ~ts:0.0 ~name:"redistribute copy" glist;
      run.Profile.timeline <-
        Some
          {
            Cp.nprocs;
            overhead = 0.0;
            reduction = 0.0;
            recovery = 0.0;
            steps =
              [
                {
                  Cp.index = 0;
                  start = 0.0;
                  cost = time;
                  slots;
                  bytes = bytes_moved;
                  messages;
                  fabric;
                };
              ];
            total = time;
          }
  | _ -> ());
  Stats.of_registry reg
