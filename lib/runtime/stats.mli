(** Execution statistics collected by the runtime simulator. *)

type t = {
  mutable time : float;  (** simulated seconds *)
  mutable flops : float;
  mutable bytes_intra : float;  (** intra-node communication volume *)
  mutable bytes_inter : float;  (** inter-node communication volume *)
  mutable messages : int;
  mutable peak_mem : float;  (** largest per-processor footprint, bytes *)
  mutable oom : bool;  (** peak footprint exceeded a processor's memory *)
  mutable tasks : int;
  mutable steps : int;
}

val create : unit -> t
val gflops : t -> float
(** Achieved GFLOP/s over the simulated execution. *)

val gbs : t -> bytes:float -> float
(** Achieved GB/s when processing [bytes] of payload (for bandwidth-bound
    kernels the paper reports in GB/s, §7.2). *)

val add : t -> t -> t
(** Sequential composition: times and volumes add, peak memory maxes. *)

val of_registry : Distal_obs.Metrics.registry -> t
(** Derive the aggregate view from the simulator's metrics registry (the
    [exec.*] counters and gauges {!Exec.execute} maintains). Missing
    metrics read as zero. *)

val to_string : t -> string
