module Ints = Distal_support.Ints
module Machine = Distal_machine.Machine

let fallback ~nprocs ~dead p =
  if not (dead p) then p
  else
    let rec next k =
      if k > nprocs then
        invalid_arg "Mapper.fallback: every processor is dead"
      else
        let q = (p + k) mod nprocs in
        if dead q then next (k + 1) else q
    in
    next 1

let proc_of_point machine ~launch_dims point =
  let mdims = (machine : Machine.t).dims in
  if Ints.equal launch_dims mdims then point
  else if Array.length point = 0 then Machine.delinearize machine 0
  else
    let lin = Ints.linearize ~dims:launch_dims point in
    Machine.delinearize machine (lin mod Machine.num_procs machine)
