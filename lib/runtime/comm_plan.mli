(** Communication planning: coalesce per-piece transfers into block copies.

    The executor discovers data movement one piece at a time — for an
    over-decomposed cyclic distribution ([A[x%1]]-style notation) that means
    thousands of single-element fragments per step, each of which would be
    priced as its own message. Real runtimes batch these into strided block
    transfers; this pass does the same at planning time. Fragments that
    share a (tensor, source, destination) triple become one transfer:
    adjacent rectangles are unioned into larger rectangles, and whatever
    cannot be unioned (a cyclic pattern that is contiguous in owner-space
    but strided in index-space) stays as an explicit strided run — one
    transfer carrying several disjoint rectangles, priced as one message
    with a per-fragment packing overhead
    ({!Distal_machine.Cost_model.strided_copy_time}).

    Planning never changes which bytes land where: a coalesced plan moves
    exactly the same multiset of (tensor, element, src, dst) as the raw
    fragments. One deliberate modelling choice: transfers are merged per
    destination {e before} broadcast grouping, so two receivers share a
    broadcast group only when their merged payloads are identical. A
    receiver that needs a strict subset of another's data is priced as its
    own (smaller) message rather than riding a broadcast. *)

module Rect = Distal_tensor.Rect
module Cost = Distal_machine.Cost_model

type raw = {
  tensor : string;
  pieces : Rect.t list;  (** disjoint fragments as discovered *)
  merged : Rect.t list;  (** the same elements with adjacent rects unioned *)
  nfrag : int;  (** [List.length pieces] *)
  volume : int;  (** total elements over [pieces] *)
  src : int;  (** linear index of the owning processor *)
  dst : int;  (** linear index of the receiving processor *)
  link : Cost.link;
}
(** One batch of fragments as discovered by the executor: everything one
    fetch pulls from one owner. The executor builds each batch once per
    distinct (tensor, footprint) via {!batch} and shares it across tasks,
    so the per-fragment merging work is not repeated per receiver. *)

val batch :
  tensor:string -> src:int -> dst:int -> link:Cost.link -> Rect.t list -> raw
(** Make a batch from disjoint fragments: computes [merged], [nfrag] and
    [volume]. *)

val merge_rects : Rect.t list -> Rect.t list
(** Union adjacent rects of a disjoint set to a fixed point: rectangles
    that agree on every dimension but one and abut in that dimension are
    hulled together, sweeping dimensions innermost-first until nothing
    shrinks. The result is in canonical (lexicographic lo/hi) order. *)

val compare_rects : Rect.t list -> Rect.t list -> int
(** Lexicographic order on canonical rect lists; [0] iff equal payloads. *)

type xfer = {
  tensor : string;
  src : int;
  dst : int;
  link : Cost.link;
  rects : Rect.t list;
      (** the merged payload, in canonical order; a single-element list is
          a plain contiguous block copy *)
  fragments : int;  (** [List.length rects] *)
  volume : int;  (** total elements over [rects] *)
}
(** One planned transfer: everything [src] sends to [dst] for [tensor] in
    one step, as a single (possibly strided) message. *)

type scratch
(** Reusable working tables for {!coalesce}. A caller that plans many
    times in a row (the executor's per-step timing assembly) allocates one
    scratch and passes it to every call; the tables are cleared — capacity
    kept — on entry. Not safe to share between concurrent callers. *)

val scratch : unit -> scratch

val coalesce : ?scratch:scratch -> raw list -> xfer list
(** Merge raw batches into maximal block transfers, one per (tensor, src,
    dst) triple. Input order is irrelevant; the result is deterministically
    sorted by (tensor, src, payload, dst), so transfers broadcasting the
    same payload from the same source sit adjacent with ascending
    destinations. [scratch] reuses working tables across calls; the result
    is identical with or without it. *)

val uncoalesced : raw list -> xfer list
(** The identity plan: one single-rectangle transfer per raw fragment, in
    the same deterministic order as {!coalesce} uses. Reproduces
    pre-planning behaviour ([~coalesce:false]). *)

val describe : Rect.t list -> string
(** Human-readable payload label for profiles: the rectangle itself for a
    contiguous transfer, or the first rectangle plus a fragment count for a
    strided run. *)
