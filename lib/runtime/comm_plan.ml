module Rect = Distal_tensor.Rect
module Cost = Distal_machine.Cost_model

type raw = {
  tensor : string;
  pieces : Rect.t list;
  merged : Rect.t list;
  nfrag : int;
  volume : int;
  src : int;
  dst : int;
  link : Cost.link;
}

type xfer = {
  tensor : string;
  src : int;
  dst : int;
  link : Cost.link;
  rects : Rect.t list;
  fragments : int;
  volume : int;
}

let icmp (a : int) (b : int) = if a < b then -1 else if a > b then 1 else 0

(* Canonical order on rects of equal rank: lexicographic on the
   interleaved (lo, hi) coordinates. *)
let compare_rect (a : Rect.t) (b : Rect.t) =
  let n = Array.length a.lo in
  let rec go i =
    if i = n then 0
    else
      let c = icmp a.lo.(i) b.lo.(i) in
      if c <> 0 then c
      else
        let c = icmp a.hi.(i) b.hi.(i) in
        if c <> 0 then c else go (i + 1)
  in
  go 0

let rec compare_rects a b =
  if a == b then 0
  else
    match (a, b) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs, y :: ys ->
        let c = compare_rect x y in
        if c <> 0 then c else compare_rects xs ys

let sorted_by cmp a =
  let n = Array.length a in
  let rec go i = i >= n || (cmp a.(i - 1) a.(i) <= 0 && go (i + 1)) in
  go 1

(* One merging pass along dimension [d], in place: sort so that rects
   identical in every other dimension are consecutive and ordered by
   [lo.(d)], then union neighbours that abut ([prev.hi.(d) = next.lo.(d)]).
   The rects of a batch are disjoint, so abutting is the only way to be
   mergeable. This is the planner's hot loop, so it works on arrays, skips
   the sort when the input already has the right order (tile discovery
   order usually does), and compacts merged runs in place. *)
let merge_along d a =
  let cmp (x : Rect.t) (y : Rect.t) =
    let n = Array.length x.lo in
    let rec go i =
      if i = n then icmp x.lo.(d) y.lo.(d)
      else if i = d then go (i + 1)
      else
        let c = icmp x.lo.(i) y.lo.(i) in
        if c <> 0 then c
        else
          let c = icmp x.hi.(i) y.hi.(i) in
          if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let mergeable (x : Rect.t) (y : Rect.t) =
    let n = Array.length x.lo in
    let rec same i =
      i = n
      || ((i = d || (x.lo.(i) = y.lo.(i) && x.hi.(i) = y.hi.(i))) && same (i + 1))
    in
    x.hi.(d) = y.lo.(d) && same 0
  in
  if not (sorted_by cmp a) then Array.sort cmp a;
  let n = Array.length a in
  if n <= 1 then a
  else begin
    let out = ref 0 in
    for i = 1 to n - 1 do
      let r = a.(i) in
      if mergeable a.(!out) r then a.(!out) <- Rect.hull a.(!out) r
      else begin
        incr out;
        a.(!out) <- r
      end
    done;
    if !out = n - 1 then a else Array.sub a 0 (!out + 1)
  end

(* Union adjacent rects to a fixed point: sweep every dimension, and repeat
   while the sweep still shrinks the set — merging along one dimension can
   create alignment that enables a merge along another. The final canonical
   sort is usually free: the last sweep leaves the array ordered by
   (outer dims, innermost lo), which coincides with the canonical order for
   disjoint rects. *)
let merge_rects = function
  | ([] | [ _ ]) as rects -> rects
  | r0 :: _ as rects ->
      let dims = Rect.dim r0 in
      let a = ref (Array.of_list rects) in
      let rec fix () =
        let n = Array.length !a in
        for d = 0 to dims - 1 do
          a := merge_along d !a
        done;
        if Array.length !a < n then fix ()
      in
      fix ();
      let res = !a in
      if not (sorted_by compare_rect res) then Array.sort compare_rect res;
      Array.to_list res

let batch ~tensor ~src ~dst ~link pieces =
  let nfrag = List.length pieces in
  let volume = List.fold_left (fun acc r -> acc + Rect.volume r) 0 pieces in
  { tensor; pieces; merged = merge_rects pieces; nfrag; volume; src; dst; link }

let compare_xfer a b =
  let c = String.compare a.tensor b.tensor in
  if c <> 0 then c
  else
    let c = icmp a.src b.src in
    if c <> 0 then c
    else
      let c = compare_rects a.rects b.rects in
      if c <> 0 then c else icmp a.dst b.dst

let make_xfer tensor src dst link rects volume =
  { tensor; src; dst; link; rects; fragments = List.length rects; volume }

let hull_of = function
  | [] -> None
  | (r : Rect.t) :: rest -> Some (List.fold_left Rect.hull r rest)

(* No rect of a batch with bounding box [a] can ever merge with one of a
   batch with bounding box [b] when some dimension leaves a strict gap
   between the boxes: merging requires abutting coordinates ([hi = lo],
   bounds are exclusive) in one dimension and equal bounds in every
   other, and a gap rules both out — including transitively, since a
   merged rect stays inside its batch's box.

   A strict gap along one {e fixed} dimension chains: if consecutive
   boxes in the list keep a strict gap along dimension [k], every pair
   of boxes does. So one linear pass suffices — track, per dimension, a
   bit for "still strictly ascending with gaps" and one for descending,
   and accept when any dimension survives. Cyclic distributions hit
   this constantly (each task's fetch plan is a distinct stripe of the
   owner's data, discovered in stripe order); anything irregular falls
   back to the full merge, which stays correct, just slower. *)
let chain_separated rs =
  let rec start = function
    | [] -> true
    | (r : raw) :: tl -> (
        match hull_of r.merged with None -> start tl | Some b0 -> walk b0 tl)
  and walk b0 tl =
    let d = Array.length b0.Rect.lo in
    d <= 62
    &&
    let full = (1 lsl d) - 1 in
    let rec go (prev : Rect.t) asc desc = function
      | [] -> true
      | (r : raw) :: tl -> (
          match hull_of r.merged with
          | None -> go prev asc desc tl
          | Some (b : Rect.t) ->
              let asc = ref asc and desc = ref desc in
              for k = 0 to d - 1 do
                let bit = 1 lsl k in
                if prev.hi.(k) >= b.lo.(k) then asc := !asc land lnot bit;
                if b.hi.(k) >= prev.lo.(k) then desc := !desc land lnot bit
              done;
              !asc lor !desc <> 0 && go b !asc !desc tl)
    in
    go b0 full full tl
  in
  start rs

let rec sorted_rect_list = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> compare_rect a b <= 0 && sorted_rect_list rest

(* Reusable working tables for [coalesce]: the executor's timing assembly
   plans one step after another, and reallocating the intern and bucket
   hashes per step is measurable churn on many-step schedules. A scratch
   is cleared (capacity kept) at the start of every planning call; it must
   not be shared between concurrent callers. *)
type scratch = {
  s_tensors : (string, int) Hashtbl.t;
  s_buckets : (int, raw list ref) Hashtbl.t;
}

let scratch () = { s_tensors = Hashtbl.create 8; s_buckets = Hashtbl.create 64 }

let coalesce ?scratch:sc raws =
  (* Bucket by (tensor, src, dst). Tensor names are interned to small ints
     so bucket keys are plain ints; consecutive raws usually name the same
     tensor (the executor emits one task's fetches together), so the
     intern table is consulted only when the name changes. A bucket
     holding a single batch reuses the batch's pre-merged payload
     outright — the common case, since the executor merges each fetch
     plan once and shares it across tasks. *)
  let tensors, buckets =
    match sc with
    | Some s ->
        Hashtbl.clear s.s_tensors;
        Hashtbl.clear s.s_buckets;
        (s.s_tensors, s.s_buckets)
    | None -> (Hashtbl.create 8, Hashtbl.create 64)
  in
  let last_tn = ref "" and last_id = ref 0 in
  let intern tn =
    if tn == !last_tn then !last_id
    else begin
      let id =
        match Hashtbl.find_opt tensors tn with
        | Some id -> id
        | None ->
            let id = Hashtbl.length tensors in
            Hashtbl.add tensors tn id;
            id
      in
      last_tn := tn;
      last_id := id;
      id
    end
  in
  List.iter
    (fun (r : raw) ->
      let key = (intern r.tensor lsl 44) lor (r.src lsl 22) lor r.dst in
      match Hashtbl.find_opt buckets key with
      | Some l -> l := r :: !l
      | None -> Hashtbl.add buckets key (ref [ r ]))
    raws;
  Hashtbl.fold
    (fun _ l acc ->
      match !l with
      | [ (r : raw) ] -> make_xfer r.tensor r.src r.dst r.link r.merged r.volume :: acc
      | rev_rs ->
          (* Buckets cons in reverse discovery order; restoring discovery
             order usually leaves the concatenated payload already in
             canonical order, so the no-merge fast path below pays one
             sortedness sweep instead of a sort. *)
          let rs = List.rev rev_rs in
          let (r0 : raw) = List.hd rs in
          let payload = List.concat_map (fun (r : raw) -> r.merged) rs in
          let rects =
            if chain_separated rs then
              if sorted_rect_list payload then payload
              else List.sort compare_rect payload
            else merge_rects payload
          in
          let volume = List.fold_left (fun acc (r : raw) -> acc + r.volume) 0 rs in
          make_xfer r0.tensor r0.src r0.dst r0.link rects volume :: acc)
    buckets []
  |> List.sort compare_xfer

let uncoalesced raws =
  List.concat_map
    (fun (r : raw) ->
      List.map
        (fun p -> make_xfer r.tensor r.src r.dst r.link [ p ] (Rect.volume p))
        r.pieces)
    raws
  |> List.sort compare_xfer

let describe = function
  | [] -> "(empty)"
  | [ r ] -> Rect.to_string r
  | r :: rest ->
      Printf.sprintf "%s (+%d fragments)" (Rect.to_string r) (List.length rest)
