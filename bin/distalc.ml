(* distalc — command-line driver for the DISTAL compiler pipeline (Fig. 3).

   Takes a tensor index notation statement, tensor declarations with
   distributions, a machine grid and a schedule script; prints the
   scheduled concrete index notation and the generated task-IR program;
   optionally validates the plan against the serial reference and prints
   the modeled execution profile.

   Example:

     distalc \
       --machine 2x2 \
       --tensor 'A:8x8:[x,y] -> [x,y]' \
       --tensor 'B:8x8:[x,y] -> [x,y]' \
       --tensor 'C:8x8:[x,y] -> [x,y]' \
       --stmt 'A(i,j) = B(i,k) * C(k,j)' \
       --schedule 'distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]);
                   split(k, ko, ki, 4); reorder(ko, ii, ji, ki);
                   communicate(A, jo); communicate({B,C}, ko);
                   substitute({ii,ji,ki}, gemm)' \
       --validate --estimate

   With --auto PROCS the distribution and schedule are searched for
   instead (declarations need only name:dims):

     distalc --auto 16 \
       --tensor A:4096x4096 --tensor B:4096x4096 --tensor C:4096x4096 \
       --stmt 'A(i,j) = B(i,k) * C(k,j)' --estimate *)

module Api = Distal.Api
module Machine = Api.Machine
module Stats = Api.Stats
module Obs = Distal_obs

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let parse_dims s =
  let parts = String.split_on_char 'x' s in
  try Ok (Array.of_list (List.map int_of_string parts))
  with _ -> errf "bad dimension list %S (expected e.g. 2x2)" s

let parse_tensor_decl s =
  match String.split_on_char ':' s with
  | [ name; dims; dist ] ->
      let* shape = if dims = "scalar" then Ok [||] else parse_dims dims in
      let* dist = Distal_ir.Distnot.parse dist in
      Ok (Api.tensor_d name shape dist)
  | _ -> errf "bad tensor declaration %S (expected name:dims:dist)" s

(* {2 Auto mode: cost-guided schedule search}

   With --auto PROCS the schedule (and the tensors' distributions) are
   chosen by the Auto search instead of being spelled out: declarations
   need only name:dims, the search enumerates distributions and schedules
   over PROCS processors, and the report shows how many candidates were
   probed, pruned and answered from the memo cache. *)

let parse_auto_shape s =
  match String.split_on_char ':' s with
  | name :: dims :: _ ->
      let* shape = if dims = "scalar" then Ok [||] else parse_dims dims in
      Ok (name, shape)
  | _ -> errf "bad tensor declaration %S (expected name:dims)" s

let run_auto ~procs ~gpu ~tensors ~stmt ~validate ~estimate ~quiet =
  let module Auto = Distal_algorithms.Auto in
  let* stmt =
    match stmt with Some s -> Ok s | None -> Error "missing required option --stmt"
  in
  let* shapes =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* t = parse_auto_shape s in
        Ok (t :: acc))
      (Ok []) tensors
  in
  let shapes = List.rev shapes in
  let kind = if gpu then Machine.Gpu else Machine.Cpu in
  let mem = if gpu then 16e9 else 256e9 in
  let machine_of grid = Machine.grid ~kind ~mem_per_proc:mem grid in
  let* cs, report = Auto.search_report ~machine_of ~procs ~stmt ~shapes () in
  let best = List.hd cs in
  Printf.printf "auto: %s\n" (Auto.describe best);
  Printf.printf "auto: %s\n" (Auto.describe_report report);
  let hits, misses, evictions = Auto.cache_stats () in
  Printf.printf "auto: probe cache %d hits, %d misses, %d evictions\n" hits misses
    evictions;
  if not quiet then print_endline (Api.describe best.Auto.plan);
  let* () =
    if validate then begin
      let* () = Api.validate best.Auto.plan in
      print_endline "validation: OK (distributed result matches serial reference)";
      Ok ()
    end
    else Ok ()
  in
  if estimate then begin
    let s = best.Auto.stats in
    Printf.printf "estimate: %s\n" (Stats.to_string s);
    Printf.printf "estimate: %.2f GFLOP/s across %d processors\n" (Stats.gflops s) procs
  end;
  Ok ()

(* {2 Client mode: ship the request to a running distald}

   The same command line, but instead of compiling locally the request
   is framed over the serve wire protocol; the daemon's plan cache makes
   repeated shapes hot. --estimate maps to a Model-mode run (stats only,
   no output tensor), the default to a Full run on the seeded input
   stream. *)

module Serve = Distal_serve

let parse_remote_tensor s =
  match String.split_on_char ':' s with
  | [ name; dims; dist ] ->
      let* shape = if dims = "scalar" then Ok [||] else parse_dims dims in
      Ok { Serve.Protocol.td_name = name; td_shape = shape; td_dist = dist }
  | _ -> errf "bad tensor declaration %S (expected name:dims:dist)" s

let run_connect ~socket ~serve_stats ~serve_shutdown ~machine_dims ~gpu ~tensors ~stmt
    ~schedule ~estimate ~seed ~faults =
  let* client = Serve.Client.connect socket in
  let finally r = Serve.Client.close client; r in
  finally
  @@
  if serve_shutdown then
    let* () = Serve.Client.shutdown client in
    Ok (print_endline "distald: shutdown acknowledged")
  else if serve_stats then
    let* queue_depth, served, metrics = Serve.Client.stats client in
    Printf.printf "queue depth: %d\nserved: %d\n%s\n" queue_depth served
      (Distal_support.Json.to_string_pretty metrics);
    Ok ()
  else
    let* stmt =
      match stmt with Some s -> Ok s | None -> Error "--connect submit needs --stmt"
    in
    let* machine_dims = parse_dims machine_dims in
    let* tensors =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          let* t = parse_remote_tensor s in
          Ok (t :: acc))
        (Ok []) tensors
    in
    let mode = if estimate then Api.Exec.Model else Api.Exec.Full in
    let submit =
      Serve.Protocol.submit ~gpu ~mode ~seed ?faults
        ~id:(Serve.Client.fresh_id client)
        ~machine_dims ~tensors:(List.rev tensors) ~stmt ~schedule ()
    in
    let* response = Serve.Client.submit_wait client submit in
    match response with
    | Serve.Client.Rejected { retry_after_s; reason } ->
        errf "rejected by admission control: %s (retry after %gs)" reason retry_after_s
    | Serve.Client.Failed reason -> errf "request failed: %s" reason
    | Serve.Client.Ok_result r ->
        Printf.printf "served: plan %s, result %s, batch of %d\n"
          (if r.Serve.Protocol.plan_cached then "cached" else "compiled")
          (if r.Serve.Protocol.result_cached then "replayed" else "executed")
          r.Serve.Protocol.batch;
        Printf.printf "stats: %s\n" (Stats.to_string r.Serve.Protocol.stats);
        (match r.Serve.Protocol.output with
        | None -> ()
        | Some out ->
            let module Dense = Distal_tensor.Dense in
            let sum = Dense.fold ( +. ) 0.0 out in
            Printf.printf "output: %d elements, sum %.17g\n" (Dense.size out) sum);
        Ok ()

let run_pipeline ~machine_dims ~gpu ~tensors ~stmt ~schedule ~validate ~estimate ~quiet
    ~emit_legion ~profile_out ~faults =
  let* stmt =
    match stmt with Some s -> Ok s | None -> Error "missing required option --stmt"
  in
  let profile = Option.map (fun _ -> Obs.Profile.create ()) profile_out in
  let* machine_dims = parse_dims machine_dims in
  let kind = if gpu then Machine.Gpu else Machine.Cpu in
  let mem = if gpu then 16e9 else 256e9 in
  let machine = Machine.grid ~kind ~mem_per_proc:mem machine_dims in
  let* tensors =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* t = parse_tensor_decl s in
        Ok (t :: acc))
      (Ok []) tensors
  in
  let* problem = Api.problem ?profile ~machine ~stmt ~tensors:(List.rev tensors) () in
  let* plan = Api.compile_script ?profile problem ~schedule in
  if not quiet then print_endline (Api.describe plan);
  if emit_legion then
    print_endline (Distal_ir.Codegen_legion.emit plan.Api.program);
  let* () =
    if validate then begin
      let* () = Api.validate plan in
      print_endline "validation: OK (distributed result matches serial reference)";
      Ok ()
    end
    else Ok ()
  in
  if estimate then begin
    let s = Api.estimate ?profile plan in
    Printf.printf "estimate: %s\n" (Stats.to_string s);
    Printf.printf "estimate: %.2f GFLOP/s across %d processors\n" (Stats.gflops s)
      (Machine.num_procs machine)
  end;
  let* () =
    match faults with
    | None -> Ok ()
    | Some spec ->
        let* fplan = Api.Fault.parse spec in
        let* _, _, report = Api.resilience ~faults:fplan plan in
        print_string report;
        Ok ()
  in
  match (profile, profile_out) with
  | Some p, Some file ->
      (* The trace needs a run to be interesting; profile implies a modeled
         execution even without --estimate. *)
      if Obs.Profile.runs p = [] then ignore (Api.estimate ~profile:p plan);
      let* () =
        try Ok (Obs.Chrome_trace.save ~file p)
        with Sys_error e -> errf "cannot write profile: %s" e
      in
      List.iter
        (fun (run : Obs.Profile.run) -> print_string (Obs.Report.run_report run))
        (Obs.Profile.runs p);
      Printf.printf "profile: wrote %s (load it at https://ui.perfetto.dev)\n" file;
      Ok ()
  | _ -> Ok ()

open Cmdliner

let machine_arg =
  Arg.(value & opt string "1" & info [ "machine"; "m" ] ~docv:"DIMS"
         ~doc:"Machine grid, e.g. 2x2 or 4x4x4.")

let gpu_arg = Arg.(value & flag & info [ "gpu" ] ~doc:"GPU processors (16 GB each).")

let tensor_arg =
  Arg.(value & opt_all string [] & info [ "tensor"; "t" ] ~docv:"DECL"
         ~doc:"Tensor declaration name:dims:distribution, e.g. 'A:8x8:[x,y] -> [x,y]'. \
               Use dims 'scalar' for a 0-d tensor. Repeatable.")

let stmt_arg =
  Arg.(value & opt (some string) None & info [ "stmt"; "s" ] ~docv:"STMT"
         ~doc:"Tensor index notation statement, e.g. 'A(i,j) = B(i,k) * C(k,j)'. \
               Required except for --connect with --serve-stats/--serve-shutdown.")

let schedule_arg =
  Arg.(value & opt string "" & info [ "schedule" ] ~docv:"SCRIPT"
         ~doc:"Schedule script (semicolon-separated commands). Empty compiles the \
               default single-task program.")

let validate_arg =
  Arg.(value & flag & info [ "validate" ]
         ~doc:"Execute on random data and compare against the serial reference.")

let estimate_arg =
  Arg.(value & flag & info [ "estimate" ] ~doc:"Print the modeled execution profile.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Do not print the generated program.")

let emit_legion_arg =
  Arg.(value & flag & info [ "emit-legion" ]
         ~doc:"Print the generated Legion C++ translation unit.")

let profile_arg =
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE"
         ~doc:"Profile the compile and the modeled execution; write a Chrome \
               trace_event JSON to $(docv) (loadable at https://ui.perfetto.dev) \
               and print the per-step and critical-path report.")

let faults_arg =
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"PLAN"
         ~doc:"Model the schedule under a fault plan and print the resilience \
               report (fault-free vs. faulted). Semicolon-separated clauses: \
               'checkpoint' or 'checkpoint=N' (rollback boundary every N steps), \
               'kill(proc=P, step=K)' optionally with 'revive=R', \
               'drop(tensor=T, src=S, dst=D, step=K)' and \
               'delay(by=SECONDS, ...)' with the same optional message filters. \
               Example: 'checkpoint=2; kill(proc=1, step=3)'.")

let connect_arg =
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"SOCKET"
         ~doc:"Do not compile locally; submit the request to the distald daemon \
               listening on the Unix-domain socket $(docv). With --estimate the \
               daemon runs in model mode (stats only); otherwise a full run on \
               the seeded input stream, printing the output summary.")

let serve_stats_arg =
  Arg.(value & flag & info [ "serve-stats" ]
         ~doc:"With --connect: print the daemon's queue depth, served count and \
               serve.* metrics, then exit.")

let serve_shutdown_arg =
  Arg.(value & flag & info [ "serve-shutdown" ]
         ~doc:"With --connect: ask the daemon to drain its queue and exit.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
         ~doc:"With --connect: the deterministic input stream the daemon runs on.")

let auto_arg =
  Arg.(value & opt (some int) None & info [ "auto" ] ~docv:"PROCS"
         ~doc:"Choose distributions and a schedule automatically by cost-guided \
               search over $(docv) processors (tensor declarations need only \
               name:dims; --machine and --schedule are ignored). Prints the chosen \
               candidate and the search report: candidates probed, pruned and \
               answered from the memo cache.")

let cmd =
  let doc = "compile tensor index notation to a distributed task program" in
  let run machine_dims gpu tensors stmt schedule validate estimate quiet emit_legion
      profile_out faults connect serve_stats serve_shutdown seed auto =
    let result =
      match (auto, connect) with
      | Some _, Some _ -> Error "--auto cannot be combined with --connect"
      | Some procs, None -> run_auto ~procs ~gpu ~tensors ~stmt ~validate ~estimate ~quiet
      | None, Some socket ->
          run_connect ~socket ~serve_stats ~serve_shutdown ~machine_dims ~gpu ~tensors
            ~stmt ~schedule ~estimate ~seed ~faults
      | None, None ->
          if serve_stats || serve_shutdown then
            Error "--serve-stats/--serve-shutdown need --connect"
          else
            run_pipeline ~machine_dims ~gpu ~tensors ~stmt ~schedule ~validate
              ~estimate ~quiet ~emit_legion ~profile_out ~faults
    in
    match result with Ok () -> `Ok () | Error e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "distalc" ~doc)
    Term.(
      ret
        (const run $ machine_arg $ gpu_arg $ tensor_arg $ stmt_arg $ schedule_arg
       $ validate_arg $ estimate_arg $ quiet_arg $ emit_legion_arg $ profile_arg
       $ faults_arg $ connect_arg $ serve_stats_arg $ serve_shutdown_arg $ seed_arg
       $ auto_arg))

let () = exit (Cmd.eval cmd)
