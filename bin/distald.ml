(* distald — the compile-and-serve daemon.

   Listens on a Unix-domain socket for length-prefixed JSONL requests
   (see lib/serve/protocol.mli), sharing one plan cache, result cache
   and executor domain pool across all clients; batches same-shape
   requests arriving within the batching window into one compile and
   rejects submits beyond the admission bound with a retry-after.

   Example:

     distald --socket /tmp/distald.sock --queue 64 --batch-window 0.002 &
     distalc --connect /tmp/distald.sock \
       --machine 2x2 --tensor 'A:8x8:[x,y] -> [x,y]' ... \
       --stmt 'A(i,j) = B(i,k) * C(k,j)' --schedule '...'
     distalc --connect /tmp/distald.sock --serve-stats
     distalc --connect /tmp/distald.sock --serve-shutdown *)

module Server = Distal_serve.Server

open Cmdliner

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on (an existing socket file is replaced).")

let queue_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission bound: submits beyond $(docv) queued requests are rejected \
           with a retry-after. Defaults to \\$DISTAL_SERVE_QUEUE, else 64.")

let window_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "batch-window" ] ~docv:"SECONDS"
        ~doc:
          "How long a queued request may wait for same-shape batch-mates before \
           the queue is flushed. Defaults to \\$DISTAL_SERVE_BATCH_WINDOW, else 0.002.")

let cache_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache" ] ~docv:"N"
        ~doc:
          "Plan-cache capacity (distinct request shapes); 0 disables caching. \
           Defaults to \\$DISTAL_SERVE_CACHE, else 128.")

let results_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "results" ] ~docv:"N"
        ~doc:
          "Result-cache capacity (finished runs replayed for byte-identical \
           requests). Defaults to 1024, or 0 when the plan cache is disabled.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:"Executor domain-pool size shared by all requests.")

let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No startup/shutdown chatter.")

let cmd =
  let doc = "serve DISTAL compile-and-run requests over a Unix-domain socket" in
  let run socket_path queue_limit batch_window plan_cache result_cache domains quiet =
    match
      Server.config ?queue_limit ?batch_window ?plan_cache ?result_cache ?domains
        ~quiet ~socket_path ()
    with
    | cfg -> (
        match Server.serve cfg with
        | () -> `Ok ()
        | exception Unix.Unix_error (e, fn, arg) ->
            `Error (false, Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e)))
    | exception Invalid_argument e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "distald" ~doc)
    Term.(
      ret
        (const run $ socket_arg $ queue_arg $ window_arg $ cache_arg $ results_arg
       $ domains_arg $ quiet_arg))

let () = exit (Cmd.eval cmd)
