let prod a = Array.fold_left ( * ) 1 a

let ceil_div a b =
  assert (b > 0);
  (a + b - 1) / b

let row_major_strides dims =
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  strides

let linearize ~dims coord =
  assert (Array.length dims = Array.length coord);
  let acc = ref 0 in
  Array.iteri
    (fun i c ->
      assert (0 <= c && c < dims.(i));
      acc := (!acc * dims.(i)) + c)
    coord;
  !acc

let delinearize ~dims idx =
  let n = Array.length dims in
  let coord = Array.make n 0 in
  let rem = ref idx in
  for i = n - 1 downto 0 do
    coord.(i) <- !rem mod dims.(i);
    rem := !rem / dims.(i)
  done;
  assert (!rem = 0);
  coord

let iter_box dims f =
  let n = prod dims in
  for idx = 0 to n - 1 do
    f (delinearize ~dims idx)
  done

let fold_box dims ~init ~f =
  let acc = ref init in
  iter_box dims (fun c -> acc := f !acc c);
  !acc

let equal a b = a = b

let to_string a =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"

let take k a = Array.sub a 0 k
let drop k a = Array.sub a k (Array.length a - k)
