lib/support/rng.mli:
