lib/support/ints.ml: Array String
