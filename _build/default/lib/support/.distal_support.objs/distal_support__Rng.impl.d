lib/support/rng.ml: Int64
