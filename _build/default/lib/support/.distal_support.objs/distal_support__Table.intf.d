lib/support/table.mli:
