lib/support/ints.mli:
