type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let float t bound =
  let x = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float x /. 9007199254740992.0 *. bound

let int t bound =
  assert (bound > 0);
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let split t = { state = next_int64 t }
