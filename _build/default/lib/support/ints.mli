(** Helpers over [int array] used for shapes, strides and grid coordinates. *)

val prod : int array -> int
(** Product of all entries; 1 for the empty array. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is the smallest [q] with [q * b >= a]. Requires [b > 0]. *)

val row_major_strides : int array -> int array
(** Row-major strides of a shape: the last dimension has stride 1. *)

val linearize : dims:int array -> int array -> int
(** Row-major linear index of a coordinate within [dims].
    Requires the coordinate to be inside the box [0, dims). *)

val delinearize : dims:int array -> int -> int array
(** Inverse of {!linearize}. *)

val iter_box : int array -> (int array -> unit) -> unit
(** Iterate all coordinates of the box [0, dims) in row-major order.
    The callback receives a fresh array each time. *)

val fold_box : int array -> init:'a -> f:('a -> int array -> 'a) -> 'a
(** Row-major fold over the box [0, dims). *)

val equal : int array -> int array -> bool

val to_string : int array -> string
(** E.g. [to_string [|2;3|] = "[2,3]"]. *)

val take : int -> 'a array -> 'a array
val drop : int -> 'a array -> 'a array
