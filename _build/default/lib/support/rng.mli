(** Deterministic splitmix64 random number generator.

    Benchmarks and tests need reproducible tensor data independent of the
    OCaml stdlib [Random] state, so we carry our own tiny generator. *)

type t

val create : int -> t
(** Seeded generator. Equal seeds produce equal streams. *)

val next_int64 : t -> int64
val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)]. Requires [bound > 0]. *)

val split : t -> t
(** Derive an independent generator; advances [t]. *)
