module Ints = Distal_support.Ints

type proc_kind = Cpu | Gpu

type t = {
  dims : int array;
  node_factors : int array;
  kind : proc_kind;
  mem_per_proc : float;
}

let grid ?node_factors ?(kind = Cpu) ?(mem_per_proc = 256e9) dims =
  assert (Array.length dims > 0);
  assert (Array.for_all (fun d -> d > 0) dims);
  let node_factors =
    match node_factors with
    | None -> Array.map (fun _ -> 1) dims
    | Some f ->
        assert (Array.length f = Array.length dims);
        Array.iteri (fun d fd -> assert (fd > 0 && dims.(d) mod fd = 0)) f;
        Array.copy f
  in
  { dims = Array.copy dims; node_factors; kind; mem_per_proc }

let hierarchical ~node_dims ~proc_dims ~kind ~mem_per_proc =
  let ones = Array.map (fun _ -> 1) node_dims in
  grid ~kind ~mem_per_proc
    ~node_factors:(Array.append ones proc_dims)
    (Array.append node_dims proc_dims)

let with_ppn ?(kind = Gpu) ?(mem_per_proc = 16e9) dims ~ppn =
  let n = Array.length dims in
  let factors = Array.make n 1 in
  let rem = ref ppn in
  (* Absorb the per-node processor count into trailing dimensions. *)
  for d = n - 1 downto 0 do
    if !rem > 1 then begin
      let f = ref 1 in
      for c = 2 to min dims.(d) !rem do
        if dims.(d) mod c = 0 && !rem mod c = 0 && c > !f then f := c
      done;
      factors.(d) <- !f;
      rem := !rem / !f
    end
  done;
  if !rem > 1 then grid ~kind ~mem_per_proc dims (* no block decomposition *)
  else grid ~kind ~mem_per_proc ~node_factors:factors dims

let num_procs t = Ints.prod t.dims
let dim t = Array.length t.dims

let node_dims t = Array.mapi (fun d n -> n / t.node_factors.(d)) t.dims
let num_nodes t = Ints.prod (node_dims t)

let proc_coords t =
  let acc = ref [] in
  Ints.iter_box t.dims (fun c -> acc := c :: !acc);
  List.rev !acc

let linearize t coord = Ints.linearize ~dims:t.dims coord
let delinearize t idx = Ints.delinearize ~dims:t.dims idx

let node_of t coord =
  Ints.linearize ~dims:(node_dims t)
    (Array.mapi (fun d c -> c / t.node_factors.(d)) coord)

let same_node t a b = node_of t a = node_of t b
let mem_per_proc_bytes t = t.mem_per_proc
let kind t = t.kind

let to_string t =
  let kind = match t.kind with Cpu -> "CPU" | Gpu -> "GPU" in
  Printf.sprintf "Machine(%s grid=%s node_factors=%s)" kind (Ints.to_string t.dims)
    (Ints.to_string t.node_factors)
