(** Machine model (§3.1).

    DISTAL models a distributed machine as a multi-dimensional grid of
    abstract processors, each with a local memory, able to communicate with
    every other processor. Hierarchy (nodes containing several GPUs or
    sockets) is captured by [node_factors]: per dimension, how many
    adjacent grid coordinates share a node. Two processors are node-local
    exactly when every coordinate agrees after division by its factor, so
    e.g. a flat 32x32 grid of GPUs with [node_factors = \[|2;2|\]] has
    2x2 blocks of four GPUs per node — the Lassen arrangement. *)

type proc_kind = Cpu | Gpu

type t = private {
  dims : int array;  (** the abstract-processor grid *)
  node_factors : int array;  (** per-dim block size sharing a node *)
  kind : proc_kind;
  mem_per_proc : float;  (** bytes of local memory per abstract processor *)
}

val grid :
  ?node_factors:int array ->
  ?kind:proc_kind ->
  ?mem_per_proc:float ->
  int array ->
  t
(** A machine organized as the given grid. Defaults: every processor its
    own node, CPU processors, 256 GB per processor. Factors must divide
    their dimensions. *)

val hierarchical :
  node_dims:int array ->
  proc_dims:int array ->
  kind:proc_kind ->
  mem_per_proc:float ->
  t
(** Nodes arranged in [node_dims], each node a [proc_dims] grid of
    processors; the flat grid is their concatenation (§3.2 "Hierarchy"). *)

val with_ppn :
  ?kind:proc_kind -> ?mem_per_proc:float -> int array -> ppn:int -> t
(** Best-effort grouping of [ppn] processors per node as a block of
    trailing dimensions (e.g. a GPU cube [|4;4;4|] with [ppn:4] gets
    [node_factors = \[|1;1;4|\]]). Falls back to one processor per node
    when no block decomposition divides the grid. *)

val num_procs : t -> int
val num_nodes : t -> int
val dim : t -> int

val proc_coords : t -> int array list
(** All processor coordinates in row-major order. *)

val linearize : t -> int array -> int
val delinearize : t -> int -> int array

val node_of : t -> int array -> int
val same_node : t -> int array -> int array -> bool
val mem_per_proc_bytes : t -> float
val kind : t -> proc_kind
val to_string : t -> string
