lib/machine/machine.ml: Array Distal_support List Printf
