lib/machine/machine.mli:
