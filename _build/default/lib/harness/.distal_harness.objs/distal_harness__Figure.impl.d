lib/harness/figure.ml: Buffer Distal_support Filename List Printf String
