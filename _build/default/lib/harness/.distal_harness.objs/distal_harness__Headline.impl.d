lib/harness/headline.ml: Distal_support Figure List Printf String
