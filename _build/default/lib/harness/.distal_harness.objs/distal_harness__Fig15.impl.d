lib/harness/fig15.ml: Distal Distal_algorithms Distal_baselines Distal_machine Distal_runtime Figure Float List
