lib/harness/strong.mli: Distal_machine Figure
