lib/harness/headline.mli: Figure
