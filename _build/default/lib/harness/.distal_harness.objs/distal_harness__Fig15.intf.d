lib/harness/fig15.mli: Figure
