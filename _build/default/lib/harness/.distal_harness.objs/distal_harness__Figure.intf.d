lib/harness/figure.mli:
