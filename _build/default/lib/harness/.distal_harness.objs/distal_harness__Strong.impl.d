lib/harness/strong.ml: Distal Distal_algorithms Distal_baselines Distal_machine Distal_runtime Figure List Option Printf
