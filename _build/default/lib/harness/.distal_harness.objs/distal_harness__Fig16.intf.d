lib/harness/fig16.mli: Figure
