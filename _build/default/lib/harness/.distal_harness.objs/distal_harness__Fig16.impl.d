lib/harness/fig16.ml: Distal Distal_algorithms Distal_baselines Distal_machine Distal_runtime Figure List
