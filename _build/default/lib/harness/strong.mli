(** Strong scaling (extension beyond the paper's weak-scaling evaluation).

    Fixed total problem, growing machine: unlike weak scaling the
    per-processor work shrinks while communication surfaces grow, so every
    algorithm eventually hits a communication wall. The experiment shows
    where each algorithm's wall is and that the 3-D algorithms (which
    trade memory for communication) push it further — the same tradeoff
    §4 develops, viewed along the other axis. *)

val gemm :
  ?nodes:int list -> ?n:int -> kind:Distal_machine.Machine.proc_kind -> unit ->
  Figure.t
(** Speedup relative to one node, per algorithm. *)
