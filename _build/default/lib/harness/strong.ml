module Api = Distal.Api
module Machine = Distal_machine.Machine
module Cost = Distal_machine.Cost_model
module Stats = Distal_runtime.Stats
module M = Distal_algorithms.Matmul
module Cs = Distal_algorithms.Cosma_scheduler
module Ctf = Distal_baselines.Ctf

let series_names = [ "summa"; "cannon"; "johnson"; "solomonik"; "cosma" ]

let time_of (alg : (M.t, string) result) ~cost =
  match alg with
  | Error _ -> None
  | Ok alg -> (
      match Api.run ~mode:Api.Exec.Model ~cost alg.M.plan ~data:[] with
      | Ok r when not r.Api.Exec.stats.Stats.oom -> Some r.Api.Exec.stats.Stats.time
      | Ok _ -> None
      | Error _ -> None)

let default_n = function Machine.Cpu -> 16384 | Machine.Gpu -> 32768

let gemm ?(nodes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]) ?n ~kind () =
  let n = match n with Some n -> n | None -> default_n kind in
  let cost, mem, procs_of, ppn =
    match kind with
    | Machine.Cpu -> (Cost.cpu_distal, 256e9, (fun nd -> nd), 1)
    | Machine.Gpu -> (Cost.gpu_distal, 16e9, (fun nd -> 4 * nd), 4)
  in
  let make dims = Machine.with_ppn ~kind ~mem_per_proc:mem dims ~ppn in
  let times_of_nodes nd =
    let procs = procs_of nd in
    let gx, gy = Cs.best_pair procs in
    let m2 = make [| gx; gy |] in
    let g, _, c = Ctf.grid25 procs in
    let m25 = make [| g; g; c |] in
    let d = Cs.find ~procs ~m:n ~n ~k:n ~mem_per_proc:mem in
    let g1, g2, g3 = d.Cs.grid in
    let mc = make [| g1; g2; g3 |] in
    let q =
      let rec go q = if (q + 1) * (q + 1) * (q + 1) <= procs then go (q + 1) else q in
      go 1
    in
    [
      ("summa", time_of (M.summa ~n ~machine:m2 ()) ~cost);
      ("cannon", time_of (M.cannon ~n ~machine:m2) ~cost);
      ("johnson", time_of (M.johnson ~n ~machine:(make [| q; q; q |]) ()) ~cost);
      ("solomonik", time_of (M.solomonik ~n ~machine:m25) ~cost);
      ("cosma", time_of (M.cosma ~n ~machine:mc ()) ~cost);
    ]
  in
  let per_node = List.map (fun nd -> (nd, times_of_nodes nd)) nodes in
  (* Normalize against the smallest machine where SUMMA fits. *)
  let base =
    match
      List.find_map
        (fun (nd, times) ->
          Option.map (fun t -> float_of_int nd *. t) (List.assoc "summa" times))
        per_node
    with
    | Some nt -> nt
    | None -> 1.0
  in
  let series =
    List.map
      (fun name ->
        {
          Figure.name;
          cells =
            List.map
              (fun (nd, times) ->
                ( nd,
                  match List.assoc name times with
                  | Some t -> Figure.Value (base /. t)
                  | None -> Figure.Oom ))
              per_node;
        })
      series_names
  in
  {
    Figure.id = "strong";
    title =
      Printf.sprintf "strong-scaling GEMM speedup, fixed n=%d (%s; extension)" n
        (match kind with Machine.Cpu -> "CPU" | Machine.Gpu -> "GPU");
    unit_ = "speedup vs 1 node";
    nodes;
    series;
  }
