lib/distal/api.mli: Distal_ir Distal_machine Distal_runtime Distal_tensor
