lib/distal/api.ml: Array Distal_ir Distal_machine Distal_runtime Distal_support Distal_tensor List Printf Result String
