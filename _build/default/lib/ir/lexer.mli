(** Hand-written lexer shared by the DSL front ends (tensor index notation,
    tensor distribution notation and the textual schedule scripts accepted
    by the [distalc] driver). Menhir is not available in this environment,
    so parsing is recursive descent over this token stream. *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Comma
  | Star
  | Percent
  | Plus
  | Minus
  | Equal
  | PlusEqual
  | Arrow  (** ["->"] *)
  | Dot
  | Semi
  | Eof

type t

val of_string : string -> (t, string) result
(** Tokenize; reports the offending character on failure. *)

val peek : t -> token
val next : t -> token
(** Returns the current token and advances. *)

val expect : t -> token -> (unit, string) result
val describe : token -> string
