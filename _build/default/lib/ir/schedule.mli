(** The scheduling language (§2, §3.3, §5.2).

    Commands are rewrites on concrete index notation. They can only change
    how the iteration space maps onto the machine — never the computed
    values; the property tests in [test/test_semantics.ml] enforce this.

    [Distribute_onto] is the compound distribute of §3.3 (divide each
    target by the matching machine-grid dimension, reorder the outer
    variables to the front, distribute them). *)

type t =
  | Divide of Ident.t * Ident.t * Ident.t * int
      (** [Divide (i, io, ii, parts)]: break loop [i] into [parts] outer
          iterations of contiguous inner chunks. *)
  | Split of Ident.t * Ident.t * Ident.t * int
      (** [Split (i, io, ii, chunk)]: like divide, but fixes the inner
          chunk size instead of the outer count. *)
  | Collapse of Ident.t * Ident.t * Ident.t
      (** [Collapse (i, j, f)]: fuse adjacent loops [i] (outer) and [j]
          into a single loop [f]. *)
  | Reorder of Ident.t list
      (** Rearrange the listed loops into the given order, in the position
          slots they currently occupy; other loops keep their places. *)
  | Distribute of Ident.t list
  | Distribute_onto of {
      targets : Ident.t list;
      dist : Ident.t list;
      local : Ident.t list;
      grid : int array;
    }
  | Communicate of string list * Ident.t
      (** Aggregate the named tensors' communication at each iteration of
          the given loop. *)
  | Rotate of { target : Ident.t; by : Ident.t list; result : Ident.t }
      (** Systolic symmetry breaking: iterate [result], with
          [target = (result + sum by) mod extent target]. The [by] loops
          must enclose [target]. *)
  | Parallelize of Ident.t
  | Substitute of Ident.t list * string
      (** Bind the innermost loops to a named local kernel (Fig. 2's
          [.substitute({ii, ji, ki}, CuBLAS::GeMM)]). *)

val apply : Cin.t -> t -> (Cin.t, string) result
val apply_all : Cin.t -> t list -> (Cin.t, string) result

val known_leaf_kernels : string list
(** Kernel names accepted by [Substitute]:
    gemm, gemv, ttv, ttm, mttkrp, innerprod. *)

val to_string : t -> string

val parse : string -> (t list, string) result
(** Parse a schedule script: commands separated by [;] or newlines, e.g.
    {v
      distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]);
      split(k, ko, ki, 256);
      reorder(ko, ii, ji, ki);
      communicate(A, jo); communicate({B, C}, ko);
      substitute({ii, ji, ki}, gemm)
    v} *)
