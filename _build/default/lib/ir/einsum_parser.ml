let ( let* ) = Result.bind

let parse_access lx name =
  match Lexer.peek lx with
  | Lexer.Lparen ->
      ignore (Lexer.next lx);
      let rec indices acc =
        match Lexer.next lx with
        | Lexer.Ident v -> (
            match Lexer.next lx with
            | Lexer.Comma -> indices (v :: acc)
            | Lexer.Rparen -> Ok (List.rev (v :: acc))
            | t -> Error ("expected ',' or ')' in access, found " ^ Lexer.describe t))
        | t -> Error ("expected index variable, found " ^ Lexer.describe t)
      in
      let* idx = indices [] in
      Ok { Expr.tensor = name; indices = idx }
  | _ -> Ok { Expr.tensor = name; indices = [] }

let rec parse_expr lx =
  let* t = parse_term lx in
  let rec loop acc =
    match Lexer.peek lx with
    | Lexer.Plus ->
        ignore (Lexer.next lx);
        let* t = parse_term lx in
        loop (Expr.Add (acc, t))
    | Lexer.Minus ->
        ignore (Lexer.next lx);
        let* t = parse_term lx in
        loop (Expr.Sub (acc, t))
    | _ -> Ok acc
  in
  loop t

and parse_term lx =
  let* f = parse_factor lx in
  let rec loop acc =
    match Lexer.peek lx with
    | Lexer.Star ->
        ignore (Lexer.next lx);
        let* f = parse_factor lx in
        loop (Expr.Mul (acc, f))
    | _ -> Ok acc
  in
  loop f

and parse_factor lx =
  match Lexer.next lx with
  | Lexer.Int n -> Ok (Expr.Const (float_of_int n))
  | Lexer.Float f -> Ok (Expr.Const f)
  | Lexer.Ident name ->
      let* a = parse_access lx name in
      Ok (Expr.Access a)
  | Lexer.Lparen ->
      let* e = parse_expr lx in
      let* () = Lexer.expect lx Lexer.Rparen in
      Ok e
  | t -> Error ("expected a tensor access, number or '(', found " ^ Lexer.describe t)

let parse s =
  let* lx = Lexer.of_string s in
  let* lhs =
    match Lexer.next lx with
    | Lexer.Ident name -> parse_access lx name
    | t -> Error ("expected output tensor, found " ^ Lexer.describe t)
  in
  let* accum =
    match Lexer.next lx with
    | Lexer.Equal -> Ok false
    | Lexer.PlusEqual -> Ok true
    | t -> Error ("expected '=' or '+=', found " ^ Lexer.describe t)
  in
  let* rhs = parse_expr lx in
  let* () = Lexer.expect lx Lexer.Eof in
  Ok { Expr.lhs; rhs; accum }

let parse_exn s =
  match parse s with
  | Ok stmt -> stmt
  | Error e -> invalid_arg (Printf.sprintf "einsum parse error in %S: %s" s e)
