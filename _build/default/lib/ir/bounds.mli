(** Bounds analysis (§6.2).

    Given the provenance graph and a partial assignment of live loop
    variables, computes the hyper-rectangle of coordinates a tensor access
    can touch. These rects drive partition creation and the communication
    the runtime performs at each communicate point. The result is a sound
    superset: guard-excluded boundary iterations may be included. *)

val access_rect :
  Provenance.t ->
  env:(Ident.t -> int option) ->
  shape:int array ->
  Expr.access ->
  Distal_tensor.Rect.t
(** Footprint of one access: per index variable, its interval clipped to
    the tensor's extent in that dimension. *)

val tensor_footprint :
  Provenance.t ->
  env:(Ident.t -> int option) ->
  stmt:Expr.stmt ->
  shape:int array ->
  string ->
  Distal_tensor.Rect.t
(** Hull of the footprints of every access of the named tensor in the
    statement. *)
