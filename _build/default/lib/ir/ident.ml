type t = string

let compare = String.compare
let equal = String.equal
let counter = ref 0

let fresh base =
  incr counter;
  Printf.sprintf "%s'%d" base !counter

let reset_fresh_counter () = counter := 0
