(** Legion C++ code generation.

    The paper's DISTAL emits C++ programs against the Legion runtime
    (Fig. 1, §6). This backend renders a lowered program as that C++:
    region creation for every tensor, partitions whose bounds come from
    the bounds analysis (emitted as closed-form affine expressions in the
    launch/loop variables, recovered from the provenance graph), the index
    task launch over the distributed loops, per-iteration region
    requirements at each communicate point, and a leaf task that calls the
    substituted kernel or the generated scalar loops.

    The simulator executes the same program directly; this printer exists
    so the compiler's output artifact can be inspected, tested and
    compared against the paper's (and because a compiler that never prints
    code is only half a compiler). *)

val emit : Taskir.program -> string
(** The complete generated translation unit. *)
