(** Lowering concrete index notation to the task IR (§6.2).

    - The maximal outermost band of [Distributed] loops becomes one
      multi-dimensional index task launch ("directly nested distributed
      loops are flattened into multi-dimensional index task launches").
      A distributed loop below a sequential loop is rejected.
    - Each tensor gets exactly one communicate point. A [communicate(T,i)]
      annotation puts an [Ensure T] at the top of loop [i]'s body; tensors
      with no annotation default to the innermost position, i.e. an
      [Ensure] immediately around the leaf (§3.3: "if no communicate
      command is given, communication will be nested under the inner-most
      index variable").
    - Sequential loops are emitted down to the deepest communicate point;
      anything deeper folds into the leaf (a substituted kernel when the
      schedule bound one, otherwise interpreted scalar loops). *)

val lower : Cin.t -> shapes:(string * int array) list -> (Taskir.program, string) result
