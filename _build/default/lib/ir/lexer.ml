type token =
  | Ident of string
  | Int of int
  | Float of float
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Comma
  | Star
  | Percent
  | Plus
  | Minus
  | Equal
  | PlusEqual
  | Arrow
  | Dot
  | Semi
  | Eof

type t = { mutable toks : token list }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let of_string s =
  let n = String.length s in
  let toks = ref [] in
  let err = ref None in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n && !err = None do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then begin
      (* comment to end of line *)
      while !i < n && s.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident s.[!i] do incr i done;
      push (Ident (String.sub s start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do incr i done;
      if !i < n && s.[!i] = '.' then begin
        incr i;
        while !i < n && is_digit s.[!i] do incr i done;
        push (Float (float_of_string (String.sub s start (!i - start))))
      end
      else push (Int (int_of_string (String.sub s start (!i - start))))
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "+=" -> push PlusEqual; i := !i + 2
      | "->" -> push Arrow; i := !i + 2
      | _ -> (
          (match c with
          | '(' -> push Lparen
          | ')' -> push Rparen
          | '[' -> push Lbracket
          | ']' -> push Rbracket
          | '{' -> push Lbrace
          | '}' -> push Rbrace
          | ',' -> push Comma
          | '*' -> push Star
          | '%' -> push Percent
          | '+' -> push Plus
          | '-' -> push Minus
          | '=' -> push Equal
          | '.' -> push Dot
          | ';' -> push Semi
          | c -> err := Some (Printf.sprintf "unexpected character %C at offset %d" c !i));
          incr i)
    end
  done;
  match !err with
  | Some e -> Error e
  | None -> Ok { toks = List.rev (Eof :: !toks) }

let peek t = match t.toks with [] -> Eof | tok :: _ -> tok

let next t =
  match t.toks with
  | [] -> Eof
  | tok :: rest ->
      (if tok <> Eof then t.toks <- rest);
      tok

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int n -> Printf.sprintf "integer %d" n
  | Float f -> Printf.sprintf "float %g" f
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Comma -> "','"
  | Star -> "'*'"
  | Percent -> "'%'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Equal -> "'='"
  | PlusEqual -> "'+='"
  | Arrow -> "'->'"
  | Dot -> "'.'"
  | Semi -> "';'"
  | Eof -> "end of input"

let expect t tok =
  let got = next t in
  if got = tok then Ok ()
  else Error (Printf.sprintf "expected %s but found %s" (describe tok) (describe got))
