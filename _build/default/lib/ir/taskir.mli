(** Task IR — the Legion-shaped program the compiler emits (§6.2).

    Distributed loops become an index task launch over a multi-dimensional
    grid of tasks; sequential loops remain loops inside each task; each
    communicate point becomes an [Ensure] that materializes the footprint
    (a bounds-analysis rect) of one tensor in the executing processor's
    memory before the enclosed work runs; the innermost band is a leaf —
    either interpreted scalar loops or a substituted local kernel. *)

type leaf =
  | Scalar_loops of Ident.t list
      (** Remaining loop variables, outermost first, interpreted pointwise
          with boundary guards. *)
  | Named of { kernel : string; vars : Ident.t list }
      (** A substituted kernel over the listed innermost variables. *)

type t =
  | Launch of { vars : Ident.t list; dims : int array; body : t }
  | Seq_loop of { var : Ident.t; extent : int; body : t }
  | Ensure of { tensor : string; body : t }
  | Leaf of leaf

type program = {
  stmt : Expr.stmt;
  prov : Provenance.t;
  tree : t;  (** always rooted at a [Launch] (possibly zero-dimensional) *)
  shapes : (string * int array) list;
  parallel_vars : Ident.t list;
      (** loops marked [parallelize] — intra-processor parallelism (cores
          or thread blocks); backends emit them as parallel loops *)
}

val shape_of : program -> string -> int array
val launch : program -> Ident.t list * int array
val leaf_vars : t -> Ident.t list
(** Variables iterated by the leaf of the tree. *)

val to_string : program -> string
(** Pseudo-code rendering of the generated program, for the [distalc]
    driver and golden tests. *)
