type annot = Distributed | Parallelized | Communicate of string

type loop = { var : Ident.t; annots : annot list }

type t = {
  stmt : Expr.stmt;
  loops : loop list;
  prov : Provenance.t;
  substituted : (Ident.t list * string) option;
}

let of_stmt stmt ~shapes =
  match Typecheck.check stmt ~shapes with
  | Error e -> Error e
  | Ok extents ->
      Ok
        {
          stmt;
          loops = List.map (fun (v, _) -> { var = v; annots = [] }) extents;
          prov = Provenance.create extents;
          substituted = None;
        }

let loop_vars t = List.map (fun l -> l.var) t.loops

let find_loop t v =
  let rec go i = function
    | [] -> None
    | l :: _ when Ident.equal l.var v -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.loops

let has_loop t v = find_loop t v <> None

let communicated_tensors _t loop =
  List.filter_map (function Communicate tn -> Some tn | _ -> None) loop.annots

let is_distributed loop = List.mem Distributed loop.annots

let distributed_vars t =
  List.filter_map (fun l -> if is_distributed l then Some l.var else None) t.loops

let to_string t =
  let quant l =
    let tags =
      List.filter_map
        (function
          | Distributed -> Some "dist"
          | Parallelized -> Some "par"
          | Communicate tn -> Some ("comm " ^ tn))
        l.annots
    in
    match tags with
    | [] -> Printf.sprintf "forall %s" l.var
    | tags -> Printf.sprintf "forall %s[%s]" l.var (String.concat "; " tags)
  in
  let loops = String.concat " " (List.map quant t.loops) in
  let leaf =
    match t.substituted with
    | None -> Expr.to_string t.stmt
    | Some (vars, kernel) ->
        Printf.sprintf "%s s.t. substitute({%s}, %s)" (Expr.to_string t.stmt)
          (String.concat "," vars) kernel
  in
  if t.loops = [] then leaf else loops ^ " . " ^ leaf
