module Rect = Distal_tensor.Rect

let access_rect prov ~env ~shape (a : Expr.access) =
  assert (List.length a.indices = Array.length shape);
  let lo = Array.make (Array.length shape) 0 in
  let hi = Array.make (Array.length shape) 0 in
  List.iteri
    (fun d v ->
      let l, h = Provenance.interval prov ~env v in
      lo.(d) <- min l shape.(d);
      hi.(d) <- min h shape.(d);
      hi.(d) <- max hi.(d) lo.(d))
    a.indices;
  Rect.make ~lo ~hi

let tensor_footprint prov ~env ~stmt ~shape tensor =
  let rects =
    List.filter_map
      (fun (a : Expr.access) ->
        if String.equal a.tensor tensor then Some (access_rect prov ~env ~shape a)
        else None)
      (Expr.stmt_accesses stmt)
  in
  match rects with
  | [] -> invalid_arg (Printf.sprintf "tensor %s is not accessed by the statement" tensor)
  | r :: rest -> List.fold_left Rect.hull r rest
