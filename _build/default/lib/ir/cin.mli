(** Concrete index notation (§5.1, Fig. 14).

    A statement is an ordered nest of forall loops around a tensor
    assignment, together with the provenance graph of its index variables
    and the scheduling relations attached by transformations (the [s.t.]
    clause of Fig. 14). The loop list is outermost-first. *)

type annot =
  | Distributed  (** §5.2: lowered into an index task launch *)
  | Parallelized  (** intra-processor parallel loop (cores / thread blocks) *)
  | Communicate of string  (** tensor aggregated at this loop (§5.2) *)

type loop = { var : Ident.t; annots : annot list }

type t = {
  stmt : Expr.stmt;
  loops : loop list;
  prov : Provenance.t;
  substituted : (Ident.t list * string) option;
      (** leaf kernel binding from the [substitute] command: the listed
          innermost variables are implemented by the named local kernel,
          as Fig. 2 binds [CuBLAS::GeMM] *)
}

val of_stmt : Expr.stmt -> shapes:(string * int array) list -> (t, string) result
(** Lower tensor index notation to concrete index notation: one loop per
    index variable in left-to-right order (§5.1), no annotations. *)

val loop_vars : t -> Ident.t list
val find_loop : t -> Ident.t -> int option
val has_loop : t -> Ident.t -> bool

val communicated_tensors : t -> loop -> string list
val is_distributed : loop -> bool

val distributed_vars : t -> Ident.t list
(** Variables of loops annotated [Distributed], outermost first. *)

val to_string : t -> string
(** Rendering close to the paper's: forall-quantifiers, the statement, and
    the accumulated s.t. relations. *)
