type t =
  | Divide of Ident.t * Ident.t * Ident.t * int
  | Split of Ident.t * Ident.t * Ident.t * int
  | Collapse of Ident.t * Ident.t * Ident.t
  | Reorder of Ident.t list
  | Distribute of Ident.t list
  | Distribute_onto of {
      targets : Ident.t list;
      dist : Ident.t list;
      local : Ident.t list;
      grid : int array;
    }
  | Communicate of string list * Ident.t
  | Rotate of { target : Ident.t; by : Ident.t list; result : Ident.t }
  | Parallelize of Ident.t
  | Substitute of Ident.t list * string

let known_leaf_kernels = [ "gemm"; "gemv"; "ttv"; "ttm"; "mttkrp"; "innerprod" ]

let ( let* ) = Result.bind

let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let require_loop (cin : Cin.t) v =
  match Cin.find_loop cin v with
  | Some i -> Ok i
  | None -> errf "%s is not a loop of the current statement" v

(* Replace the loop at position [pos] with [news] (copying annotations to
   the first replacement, which keeps e.g. a communicate point attached to
   a rotated loop). *)
let splice_loops loops pos news =
  List.concat (List.mapi (fun i l -> if i = pos then news l else [ l ]) loops)

let subdivide cin i io ii ~f =
  let* pos = require_loop cin i in
  let prov = Provenance.copy cin.Cin.prov in
  let* () = f prov in
  let loops =
    splice_loops cin.loops pos (fun (l : Cin.loop) ->
        [ { l with var = io }; { Cin.var = ii; annots = [] } ])
  in
  Ok { cin with Cin.loops; prov }

let apply_reorder (cin : Cin.t) vars =
  let* positions =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        let* p = require_loop cin v in
        if List.mem_assoc v acc then errf "reorder: duplicate variable %s" v
        else Ok ((v, p) :: acc))
      (Ok []) vars
  in
  let slots = List.sort compare (List.map snd positions) in
  let assignment = List.combine slots vars (* slot i gets the i-th listed var *) in
  let arr = Array.of_list cin.loops in
  let by_var v = List.find (fun (l : Cin.loop) -> Ident.equal l.var v) cin.loops in
  List.iter (fun (slot, v) -> arr.(slot) <- by_var v) assignment;
  Ok { cin with Cin.loops = Array.to_list arr }

let add_annot (cin : Cin.t) v annot =
  let* _ = require_loop cin v in
  let loops =
    List.map
      (fun (l : Cin.loop) ->
        if Ident.equal l.var v then { l with Cin.annots = l.annots @ [ annot ] } else l)
      cin.loops
  in
  Ok { cin with Cin.loops }

let rec apply (cin : Cin.t) cmd =
  match cmd with
  | Divide (i, io, ii, parts) ->
      subdivide cin i io ii ~f:(fun p -> Provenance.divide p i ~outer:io ~inner:ii ~parts)
  | Split (i, io, ii, chunk) ->
      subdivide cin i io ii ~f:(fun p -> Provenance.split p i ~outer:io ~inner:ii ~chunk)
  | Collapse (i, j, f) ->
      let* pi = require_loop cin i in
      let* pj = require_loop cin j in
      if pj <> pi + 1 then errf "collapse: %s must be immediately inside %s" j i
      else
        let prov = Provenance.copy cin.prov in
        let* () = Provenance.fuse prov ~first:i ~second:j ~fused:f in
        let loops =
          List.concat
            (List.mapi
               (fun k (l : Cin.loop) ->
                 if k = pi then [ { l with Cin.var = f } ]
                 else if k = pj then []
                 else [ l ])
               cin.loops)
        in
        Ok { cin with Cin.loops; prov }
  | Reorder vars -> apply_reorder cin vars
  | Distribute vars ->
      List.fold_left
        (fun acc v ->
          let* cin = acc in
          add_annot cin v Cin.Distributed)
        (Ok cin) vars
  | Distribute_onto { targets; dist; local; grid } ->
      let n = List.length targets in
      if List.length dist <> n || List.length local <> n || Array.length grid <> n then
        errf "distribute_onto: targets, dist, local and grid must have equal length"
      else
        let* cin =
          List.fold_left
            (fun acc k ->
              let* cin = acc in
              apply cin
                (Divide (List.nth targets k, List.nth dist k, List.nth local k, grid.(k))))
            (Ok cin)
            (List.init n Fun.id)
        in
        (* "Reorder loops so each outer divided variable is on the outside"
           (§3.3): the distributed band moves above every other loop. *)
        let others =
          List.filter (fun v -> not (List.mem v dist)) (Cin.loop_vars cin)
        in
        let* cin = apply cin (Reorder (dist @ others)) in
        apply cin (Distribute dist)
  | Communicate (tensors, v) ->
      let stmt_tensors = Expr.tensors cin.stmt in
      let* () =
        List.fold_left
          (fun acc tn ->
            let* () = acc in
            if List.mem tn stmt_tensors then Ok ()
            else errf "communicate: tensor %s is not used by the statement" tn)
          (Ok ()) tensors
      in
      List.fold_left
        (fun acc tn ->
          let* cin = acc in
          add_annot cin v (Cin.Communicate tn))
        (Ok cin) tensors
  | Rotate { target; by; result } ->
      let* pt = require_loop cin target in
      let* () =
        List.fold_left
          (fun acc v ->
            let* () = acc in
            let* pv = require_loop cin v in
            if pv < pt then Ok ()
            else errf "rotate: %s must enclose the target loop %s" v target)
          (Ok ()) by
      in
      let prov = Provenance.copy cin.prov in
      let* () = Provenance.rotate prov ~target ~by ~result in
      let loops = splice_loops cin.loops pt (fun l -> [ { l with Cin.var = result } ]) in
      Ok { cin with Cin.loops; prov }
  | Parallelize v -> add_annot cin v Cin.Parallelized
  | Substitute (vars, kernel) -> (
      if not (List.mem kernel known_leaf_kernels) then
        errf "substitute: unknown leaf kernel %s (known: %s)" kernel
          (String.concat ", " known_leaf_kernels)
      else
        match Kernel_match.check cin.stmt ~kernel with
        | Error e -> errf "substitute: %s" e
        | Ok _ ->
            let k = List.length vars in
            let nloops = List.length cin.loops in
            if k = 0 || k > nloops then errf "substitute: bad variable list"
            else
              let innermost =
                List.filteri (fun i _ -> i >= nloops - k) (Cin.loop_vars cin)
              in
              if List.sort compare innermost <> List.sort compare vars then
                errf "substitute: {%s} are not the innermost loops (innermost are {%s})"
                  (String.concat "," vars) (String.concat "," innermost)
              else Ok { cin with Cin.substituted = Some (vars, kernel) })

let to_string = function
  | Divide (i, io, ii, p) -> Printf.sprintf "divide(%s, %s, %s, %d)" i io ii p
  | Split (i, io, ii, c) -> Printf.sprintf "split(%s, %s, %s, %d)" i io ii c
  | Collapse (i, j, f) -> Printf.sprintf "collapse(%s, %s, %s)" i j f
  | Reorder vs -> Printf.sprintf "reorder(%s)" (String.concat ", " vs)
  | Distribute vs -> Printf.sprintf "distribute(%s)" (String.concat ", " vs)
  | Distribute_onto { targets; dist; local; grid } ->
      Printf.sprintf "distribute_onto({%s}, {%s}, {%s}, %s)" (String.concat "," targets)
        (String.concat "," dist) (String.concat "," local)
        (Distal_support.Ints.to_string grid)
  | Communicate (ts, v) -> Printf.sprintf "communicate({%s}, %s)" (String.concat "," ts) v
  | Rotate { target; by; result } ->
      Printf.sprintf "rotate(%s, {%s}, %s)" target (String.concat "," by) result
  | Parallelize v -> Printf.sprintf "parallelize(%s)" v
  | Substitute (vs, k) -> Printf.sprintf "substitute({%s}, %s)" (String.concat "," vs) k

let apply_all cin cmds =
  List.fold_left
    (fun acc cmd ->
      let* cin = acc in
      match apply cin cmd with
      | Ok cin -> Ok cin
      | Error e -> errf "%s: %s" (to_string cmd) e)
    (Ok cin) cmds

(* {2 Schedule script parser} *)

let parse_int lx =
  match Lexer.next lx with
  | Lexer.Int n -> Ok n
  | t -> Error ("expected an integer, found " ^ Lexer.describe t)

let parse_ident lx =
  match Lexer.next lx with
  | Lexer.Ident v -> Ok v
  | t -> Error ("expected an identifier, found " ^ Lexer.describe t)

(* Comma-separated identifiers wrapped in braces, or a single identifier. *)
let parse_ident_set lx =
  match Lexer.peek lx with
  | Lexer.Lbrace ->
      ignore (Lexer.next lx);
      let rec go acc =
        let* v = parse_ident lx in
        match Lexer.next lx with
        | Lexer.Comma -> go (v :: acc)
        | Lexer.Rbrace -> Ok (List.rev (v :: acc))
        | t -> Error ("expected ',' or '}', found " ^ Lexer.describe t)
      in
      go []
  | _ ->
      let* v = parse_ident lx in
      Ok [ v ]

let parse_int_list lx =
  let* () = Lexer.expect lx Lexer.Lbracket in
  let rec go acc =
    let* n = parse_int lx in
    match Lexer.next lx with
    | Lexer.Comma -> go (n :: acc)
    | Lexer.Rbracket -> Ok (Array.of_list (List.rev (n :: acc)))
    | t -> Error ("expected ',' or ']', found " ^ Lexer.describe t)
  in
  go []

let comma lx = Lexer.expect lx Lexer.Comma

let parse_command lx name =
  let* () = Lexer.expect lx Lexer.Lparen in
  let* cmd =
    match name with
    | "divide" | "split" ->
        let* i = parse_ident lx in
        let* () = comma lx in
        let* io = parse_ident lx in
        let* () = comma lx in
        let* ii = parse_ident lx in
        let* () = comma lx in
        let* n = parse_int lx in
        Ok (if name = "divide" then Divide (i, io, ii, n) else Split (i, io, ii, n))
    | "collapse" ->
        let* i = parse_ident lx in
        let* () = comma lx in
        let* j = parse_ident lx in
        let* () = comma lx in
        let* f = parse_ident lx in
        Ok (Collapse (i, j, f))
    | "reorder" | "distribute" ->
        let rec go acc =
          let* v = parse_ident lx in
          match Lexer.peek lx with
          | Lexer.Comma ->
              ignore (Lexer.next lx);
              go (v :: acc)
          | _ -> Ok (List.rev (v :: acc))
        in
        let* first = match Lexer.peek lx with
          | Lexer.Lbrace ->
              ignore (Lexer.next lx);
              let rec braced acc =
                let* v = parse_ident lx in
                match Lexer.next lx with
                | Lexer.Comma -> braced (v :: acc)
                | Lexer.Rbrace -> Ok (List.rev (v :: acc))
                | t -> Error ("expected ',' or '}', found " ^ Lexer.describe t)
              in
              braced []
          | _ -> go []
        in
        Ok (if name = "reorder" then Reorder first else Distribute first)
    | "distribute_onto" ->
        let* targets = parse_ident_set lx in
        let* () = comma lx in
        let* dist = parse_ident_set lx in
        let* () = comma lx in
        let* local = parse_ident_set lx in
        let* () = comma lx in
        let* grid = parse_int_list lx in
        Ok (Distribute_onto { targets; dist; local; grid })
    | "communicate" ->
        let* tensors = parse_ident_set lx in
        let* () = comma lx in
        let* v = parse_ident lx in
        Ok (Communicate (tensors, v))
    | "rotate" ->
        let* target = parse_ident lx in
        let* () = comma lx in
        let* by = parse_ident_set lx in
        let* () = comma lx in
        let* result = parse_ident lx in
        Ok (Rotate { target; by; result })
    | "parallelize" ->
        let* v = parse_ident lx in
        Ok (Parallelize v)
    | "substitute" ->
        let* vars = parse_ident_set lx in
        let* () = comma lx in
        let* kernel = parse_ident lx in
        Ok (Substitute (vars, kernel))
    | other -> errf "unknown scheduling command %s" other
  in
  let* () = Lexer.expect lx Lexer.Rparen in
  Ok cmd

let parse s =
  let* lx = Lexer.of_string s in
  let rec go acc =
    match Lexer.next lx with
    | Lexer.Eof -> Ok (List.rev acc)
    | Lexer.Semi -> go acc
    | Lexer.Dot -> go acc (* tolerate the fluent ".divide(...)" style of Fig. 2 *)
    | Lexer.Ident name ->
        let* cmd = parse_command lx name in
        go (cmd :: acc)
    | t -> Error ("expected a scheduling command, found " ^ Lexer.describe t)
  in
  go []
