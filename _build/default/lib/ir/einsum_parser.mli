(** Parser for tensor index notation.

    Grammar (an [access] with no parenthesized list is a scalar):
    {v
      stmt   := access ("=" | "+=") expr
      expr   := term (("+" | "-") term)*
      term   := factor ("*" factor)*
      factor := number | access | "(" expr ")"
      access := IDENT [ "(" IDENT ("," IDENT)* ")" ]
    v}

    Examples: ["A(i,j) = B(i,k) * C(k,j)"], ["a = B(i,j,k) * C(i,j,k)"],
    ["A(i,l) = B(i,j,k) * C(j,l) * D(k,l)"]. *)

val parse : string -> (Expr.stmt, string) result
val parse_exn : string -> Expr.stmt
(** @raise Invalid_argument on parse errors (for tests and examples). *)
