let errf fmt = Printf.ksprintf (fun s -> Error s) fmt
let ( let* ) = Result.bind

let lower (cin : Cin.t) ~shapes =
  let prov = cin.prov in
  let rec split_prefix acc = function
    | l :: rest when Cin.is_distributed l -> split_prefix (l :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let dist, rest = split_prefix [] cin.loops in
  let* () =
    if List.exists Cin.is_distributed rest then
      errf
        "distributed loops must form an outermost band (reorder them above all \
         sequential loops)"
    else Ok ()
  in
  (* One communicate point per tensor. *)
  let* comm_map =
    List.fold_left
      (fun acc (l : Cin.loop) ->
        let* acc = acc in
        List.fold_left
          (fun acc tn ->
            let* acc = acc in
            if List.mem_assoc tn acc then
              errf "tensor %s has more than one communicate point" tn
            else Ok ((tn, l.var) :: acc))
          (Ok acc)
          (Cin.communicated_tensors cin l))
      (Ok []) cin.loops
  in
  let svars, leaf_of_vars =
    match cin.substituted with
    | Some (svars, kernel) ->
        (svars, fun vars ->
          assert (vars = svars);
          Taskir.Leaf (Named { kernel; vars }))
    | None -> ([], fun vars -> Taskir.Leaf (Scalar_loops vars))
  in
  let* () =
    if List.exists (fun (l : Cin.loop) -> List.mem l.var svars) dist then
      errf "cannot substitute a kernel over distributed loops"
    else if List.exists (fun (_, v) -> List.mem v svars) comm_map then
      errf "cannot communicate at a loop inside a substituted kernel"
    else Ok ()
  in
  let rest_not_sub = List.filter (fun (l : Cin.loop) -> not (List.mem l.var svars)) rest in
  (* Sequential loops reach down to the deepest communicate point; deeper
     loops fold into the leaf. With a substituted kernel, every
     non-substituted loop stays sequential. *)
  let seq_loops, leaf_loop_vars =
    match cin.substituted with
    | Some (svars, _) -> (rest_not_sub, svars)
    | None ->
        let deepest =
          List.fold_left max (-1)
            (List.mapi
               (fun i (l : Cin.loop) ->
                 if Cin.communicated_tensors cin l <> [] then i else -1)
               rest_not_sub)
        in
        let seq = List.filteri (fun i _ -> i <= deepest) rest_not_sub in
        let leaf = List.filteri (fun i _ -> i > deepest) rest_not_sub in
        (seq, List.map (fun (l : Cin.loop) -> l.var) leaf)
  in
  let wrap_ensures (l : Cin.loop) body =
    List.fold_right
      (fun tn acc -> Taskir.Ensure { tensor = tn; body = acc })
      (Cin.communicated_tensors cin l)
      body
  in
  (* Tensors with no explicit communicate default to the innermost point:
     an Ensure immediately around the leaf. *)
  let default_tensors =
    List.filter (fun tn -> not (List.mem_assoc tn comm_map)) (Expr.tensors cin.stmt)
  in
  let body = leaf_of_vars leaf_loop_vars in
  let body =
    List.fold_right
      (fun tn acc -> Taskir.Ensure { tensor = tn; body = acc })
      default_tensors body
  in
  let body =
    List.fold_right
      (fun (l : Cin.loop) acc ->
        Taskir.Seq_loop
          { var = l.var; extent = Provenance.extent prov l.var; body = wrap_ensures l acc })
      seq_loops body
  in
  let body = List.fold_right wrap_ensures dist body in
  let vars = List.map (fun (l : Cin.loop) -> l.var) dist in
  let dims = Array.of_list (List.map (Provenance.extent prov) vars) in
  let tree = Taskir.Launch { vars; dims; body } in
  let parallel_vars =
    List.filter_map
      (fun (l : Cin.loop) ->
        if List.mem Cin.Parallelized l.annots then Some l.var else None)
      cin.loops
  in
  Ok { Taskir.stmt = cin.stmt; prov; tree; shapes; parallel_vars }
