let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let rec product_chain = function
  | Expr.Mul (a, b) ->
      Option.bind (product_chain a) (fun xs ->
          Option.bind (product_chain b) (fun ys -> Some (xs @ ys)))
  | Expr.Access a -> Some [ a ]
  | _ -> None

let split (stmt : Expr.stmt) ~factors ~workspace =
  match product_chain stmt.rhs with
  | None -> errf "precompute requires a pure product of accesses"
  | Some chain ->
      let in_factors (a : Expr.access) = List.mem a.tensor factors in
      let hoisted = List.filter in_factors chain in
      let kept = List.filter (fun a -> not (in_factors a)) chain in
      if hoisted = [] then errf "none of the factors appear in the statement"
      else if kept = [] then errf "cannot hoist every factor"
      else if List.length hoisted <> List.length factors then
        errf "a named factor is missing or appears more than once"
      else if
        List.exists
          (fun (a : Expr.access) -> String.equal a.tensor workspace)
          (Expr.stmt_accesses stmt)
      then errf "workspace name %s is already used" workspace
      else begin
        let ws_vars =
          List.fold_left
            (fun acc (a : Expr.access) ->
              acc @ List.filter (fun v -> not (List.mem v acc)) a.indices)
            [] hoisted
        in
        let mul_chain = function
          | [] -> assert false
          | a :: rest ->
              List.fold_left
                (fun e x -> Expr.Mul (e, Expr.Access x))
                (Expr.Access a) rest
        in
        let ws_access = { Expr.tensor = workspace; indices = ws_vars } in
        let ws_stmt = { Expr.lhs = ws_access; rhs = mul_chain hoisted; accum = false } in
        let rewritten =
          { stmt with Expr.rhs = mul_chain (kept @ [ ws_access ]) }
        in
        Ok (ws_stmt, rewritten)
      end

let workspace_shape stmt ~shapes ~workspace_stmt =
  let extents = Typecheck.check_exn stmt ~shapes in
  Array.of_list
    (List.map (fun v -> List.assoc v extents) workspace_stmt.Expr.lhs.indices)
