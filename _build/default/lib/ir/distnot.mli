(** Tensor distribution notation (§3.2, Fig. 4–5).

    A statement [T[x,y] -> M[x,0,*]] maps tensor dimensions onto machine
    dimensions: tensor dimensions whose name reappears on the machine side
    are partitioned (blocked) across that machine dimension; remaining
    machine dimensions either fix the partition to a coordinate ([0]) or
    broadcast it ([*]).

    Distributions are hierarchical (§3.2 "Hierarchy"): a list of levels,
    each consuming a consecutive group of machine dimensions, where level
    [k+1] subdivides the tiles produced by level [k]. A single level is the
    common case. The textual form separates levels with [;]:
    ["T[x,y] -> M[x,y]; T[z,w] -> M[z]"]. *)

type axis =
  | Part of Ident.t  (** blocked partition (the paper's default) *)
  | Cyclic of Ident.t * int
      (** block-cyclic partition with the given block size — the
          alternative partitioning function §3.2 mentions (and the layout
          ScaLAPACK uses). Textual form: [x%2]. *)
  | Fix of int
  | Bcast

type level = { tensor_axes : Ident.t list; machine_axes : axis list }

type t = level list

val parse : string -> (t, string) result
(** Accepts ["[x,y] -> [x,y,*]"] with optional tensor/machine names before
    the brackets. *)

val parse_exn : string -> t
val to_string : t -> string

val validate : t -> tensor_rank:int -> machine:Distal_machine.Machine.t -> (unit, string) result
(** The validity conditions of §3.2: per level, |X| equals the tensor rank,
    names are duplicate-free, every machine-side name appears on the tensor
    side, fixed coordinates are in range; level machine-axis counts sum to
    the machine's dimensionality. *)

(** {2 Formal semantics (single level)}

    [color_of_point] is the paper's partitioning function P (lifted over
    non-partitioned dimensions); [procs_of_color] is F, expanding a color to
    full processor coordinates. Colors are points in the partitioned
    machine dimensions, listed in machine-dimension order. *)

val color_of_point : level -> shape:int array -> mdims:int array -> int array -> int array
val procs_of_color : level -> mdims:int array -> int array -> int array list

(** {2 Tiles} *)

val rects_of_proc :
  t -> shape:int array -> machine:Distal_machine.Machine.t -> int array ->
  Distal_tensor.Rect.t list
(** The (possibly many, for cyclic distributions) non-empty tiles of the
    tensor held by a processor; empty when a fixed dimension excludes the
    processor from owning any data. *)

val rect_of_proc :
  t -> shape:int array -> machine:Distal_machine.Machine.t -> int array -> Distal_tensor.Rect.t option
(** The single tile of a blocked distribution ([None] for excluded
    processors, and for cyclic owners of several tiles). *)

val tiles :
  t -> shape:int array -> machine:Distal_machine.Machine.t -> (Distal_tensor.Rect.t * int array list) list
(** All distinct non-empty tiles with their owner processors. Distinct
    tiles are pairwise disjoint and jointly cover the tensor; replicated
    (broadcast) tiles list several owners. *)

val replication_factor : t -> machine:Distal_machine.Machine.t -> int
(** How many copies of each element the distribution stores (product of the
    broadcast machine-dimension extents) — drives memory accounting. *)

val bytes_per_proc : t -> shape:int array -> machine:Distal_machine.Machine.t -> float
(** Largest per-processor footprint of a tensor stored in this
    distribution. *)

val lower_to_cin :
  level ->
  tensor:string ->
  shape:int array ->
  machine:Distal_machine.Machine.t ->
  (Cin.t, string) result
(** §5.3: translate a (single-level) distribution statement into the
    concrete index notation data-placement statement that reads the tensor
    in the described orientation — nested foralls over the tensor and the
    broadcast machine dimensions, divided, distributed and communicated. *)
