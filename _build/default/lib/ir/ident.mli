(** Index variables.

    Index variables are interned strings. [fresh] derives new names during
    scheduling (e.g. the result variable of a rotate) without colliding with
    user-chosen names. *)

type t = string

val compare : t -> t -> int
val equal : t -> t -> bool
val fresh : string -> t
(** [fresh "k"] returns ["k'1"], ["k'2"], ... (the quote cannot appear in
    parsed source names, so generated names never collide). *)

val reset_fresh_counter : unit -> unit
(** For deterministic tests. *)
