type leaf =
  | Scalar_loops of Ident.t list
  | Named of { kernel : string; vars : Ident.t list }

type t =
  | Launch of { vars : Ident.t list; dims : int array; body : t }
  | Seq_loop of { var : Ident.t; extent : int; body : t }
  | Ensure of { tensor : string; body : t }
  | Leaf of leaf

type program = {
  stmt : Expr.stmt;
  prov : Provenance.t;
  tree : t;
  shapes : (string * int array) list;
  parallel_vars : Ident.t list;
}

let shape_of p tensor =
  match List.assoc_opt tensor p.shapes with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Taskir.shape_of: unknown tensor %s" tensor)

let launch p =
  match p.tree with
  | Launch { vars; dims; _ } -> (vars, dims)
  | _ -> invalid_arg "Taskir.launch: program not rooted at a launch"

let rec leaf_vars = function
  | Launch { body; _ } | Seq_loop { body; _ } | Ensure { body; _ } -> leaf_vars body
  | Leaf (Scalar_loops vars) -> vars
  | Leaf (Named { vars; _ }) -> vars

let to_string p =
  let buf = Buffer.create 256 in
  let pad depth = String.make (2 * depth) ' ' in
  let rec go depth = function
    | Launch { vars; dims; body } ->
        if vars = [] then
          Buffer.add_string buf (pad depth ^ "task() {  // single task\n")
        else
          Buffer.add_string buf
            (Printf.sprintf "%sindex_task_launch (%s) over %s {\n" (pad depth)
               (String.concat ", " vars)
               (Distal_support.Ints.to_string dims));
        go (depth + 1) body;
        Buffer.add_string buf (pad depth ^ "}\n")
    | Seq_loop { var; extent; body } ->
        Buffer.add_string buf
          (Printf.sprintf "%sfor %s in [0, %d) {\n" (pad depth) var extent);
        go (depth + 1) body;
        Buffer.add_string buf (pad depth ^ "}\n")
    | Ensure { tensor; body } ->
        Buffer.add_string buf
          (Printf.sprintf "%sensure %s[footprint]  // copy from owner partition\n"
             (pad depth) tensor);
        go depth body
    | Leaf (Scalar_loops vars) ->
        Buffer.add_string buf
          (Printf.sprintf "%sleaf: forall (%s) { %s }\n" (pad depth)
             (String.concat ", " vars)
             (Expr.to_string p.stmt))
    | Leaf (Named { kernel; vars }) ->
        Buffer.add_string buf
          (Printf.sprintf "%sleaf: %s(%s)  // substituted local kernel\n" (pad depth)
             kernel (String.concat ", " vars))
  in
  Buffer.add_string buf (Printf.sprintf "// %s\n" (Expr.to_string p.stmt));
  go 0 p.tree;
  Buffer.contents buf
