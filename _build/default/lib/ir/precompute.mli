(** The [precompute] scheduling transformation (§2: "hoist the computation
    of a subexpression").

    Our dense setting exposes it at the statement level: a subset of the
    multiplicative factors of a product statement is hoisted into a
    workspace tensor indexed by the union of the factors' index variables,
    and the original statement is rewritten to read the workspace. The two
    statements then schedule independently (Fig. 14's [where]/workspace
    production), e.g. hoisting the Khatri-Rao product out of MTTKRP:

    {v
      A(i,l) = B(i,j,k) * C(j,l) * D(k,l)
      --precompute {C, D} as W-->
      W(j,l,k) = C(j,l) * D(k,l)
      A(i,l)   = B(i,j,k) * W(j,l,k)
    v}

    The transformation is always sound for product statements because the
    workspace keeps every index variable of its factors: no summation is
    moved across the split. *)

val split :
  Expr.stmt ->
  factors:string list ->
  workspace:string ->
  (Expr.stmt * Expr.stmt, string) result
(** [split stmt ~factors ~workspace] hoists the accesses of the named
    tensors. Requirements: the statement's right-hand side is a pure
    product of accesses; [factors] is a non-empty proper subset of its
    tensors; [workspace] is a fresh name. Returns the workspace definition
    and the rewritten statement. *)

val workspace_shape :
  Expr.stmt -> shapes:(string * int array) list -> workspace_stmt:Expr.stmt -> int array
(** Shape of the workspace tensor implied by the split, from the original
    statement's variable extents. *)
