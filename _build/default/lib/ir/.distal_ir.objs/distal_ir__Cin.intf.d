lib/ir/cin.mli: Expr Ident Provenance
