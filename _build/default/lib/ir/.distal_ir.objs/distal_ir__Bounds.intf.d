lib/ir/bounds.mli: Distal_tensor Expr Ident Provenance
