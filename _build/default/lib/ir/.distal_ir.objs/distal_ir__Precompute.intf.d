lib/ir/precompute.mli: Expr
