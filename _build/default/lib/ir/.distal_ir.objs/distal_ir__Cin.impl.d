lib/ir/cin.ml: Expr Ident List Printf Provenance String Typecheck
