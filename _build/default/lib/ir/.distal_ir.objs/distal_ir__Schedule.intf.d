lib/ir/schedule.mli: Cin Ident
