lib/ir/precompute.ml: Array Expr List Option Printf String Typecheck
