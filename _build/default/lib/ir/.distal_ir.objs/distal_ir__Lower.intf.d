lib/ir/lower.mli: Cin Taskir
