lib/ir/einsum_parser.ml: Expr Lexer List Printf Result
