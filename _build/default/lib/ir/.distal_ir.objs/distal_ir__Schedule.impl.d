lib/ir/schedule.ml: Array Cin Distal_support Expr Fun Ident Kernel_match Lexer List Printf Provenance Result String
