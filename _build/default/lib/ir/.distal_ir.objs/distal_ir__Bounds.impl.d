lib/ir/bounds.ml: Array Distal_tensor Expr List Printf Provenance String
