lib/ir/codegen_legion.ml: Array Bounds Buffer Distal_support Distal_tensor Expr Ident List Printf Provenance String Taskir
