lib/ir/typecheck.mli: Expr Ident
