lib/ir/expr.ml: Array Ident List Printf Stdlib String
