lib/ir/kernel_match.mli: Expr
