lib/ir/provenance.mli: Ident
