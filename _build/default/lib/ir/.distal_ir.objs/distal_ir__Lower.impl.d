lib/ir/lower.ml: Array Cin Expr List Printf Provenance Result Taskir
