lib/ir/lexer.mli:
