lib/ir/provenance.ml: Distal_support Hashtbl Ident List Printf Result
