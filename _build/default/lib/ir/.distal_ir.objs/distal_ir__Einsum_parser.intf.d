lib/ir/einsum_parser.mli: Expr
