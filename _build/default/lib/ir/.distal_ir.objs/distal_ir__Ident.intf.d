lib/ir/ident.mli:
