lib/ir/typecheck.ml: Array Expr Hashtbl Ident List Printf
