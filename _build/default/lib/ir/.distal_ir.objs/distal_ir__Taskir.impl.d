lib/ir/taskir.ml: Buffer Distal_support Expr Ident List Printf Provenance String
