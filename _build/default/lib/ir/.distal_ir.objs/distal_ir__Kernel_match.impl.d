lib/ir/kernel_match.ml: Expr Ident List Option Printf String
