lib/ir/expr.mli: Ident Stdlib
