lib/ir/ident.ml: Printf String
