lib/ir/distnot.mli: Cin Distal_machine Distal_tensor Ident
