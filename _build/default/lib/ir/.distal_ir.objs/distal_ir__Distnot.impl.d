lib/ir/distnot.ml: Array Cin Distal_machine Distal_support Distal_tensor Expr Hashtbl Ident Lexer List Option Printf Provenance Queue Result Schedule String
