lib/ir/taskir.mli: Expr Ident Provenance
