lib/ir/codegen_legion.mli: Taskir
