type t = { lo : int array; hi : int array }

let make ~lo ~hi =
  assert (Array.length lo = Array.length hi);
  Array.iteri (fun d l -> assert (l <= hi.(d))) lo;
  { lo; hi }

let full dims = make ~lo:(Array.map (fun _ -> 0) dims) ~hi:(Array.copy dims)
let dim t = Array.length t.lo
let extents t = Array.init (dim t) (fun d -> t.hi.(d) - t.lo.(d))
let volume t = Distal_support.Ints.prod (extents t)
let is_empty t = volume t = 0

let contains t coord =
  Array.length coord = dim t
  && Array.for_all (fun ok -> ok)
       (Array.init (dim t) (fun d -> t.lo.(d) <= coord.(d) && coord.(d) < t.hi.(d)))

let subset a b =
  assert (dim a = dim b);
  is_empty a
  || Array.for_all (fun ok -> ok)
       (Array.init (dim a) (fun d -> b.lo.(d) <= a.lo.(d) && a.hi.(d) <= b.hi.(d)))

let inter a b =
  assert (dim a = dim b);
  let lo = Array.init (dim a) (fun d -> max a.lo.(d) b.lo.(d)) in
  let hi = Array.init (dim a) (fun d -> max lo.(d) (min a.hi.(d) b.hi.(d))) in
  { lo; hi }

let hull a b =
  assert (dim a = dim b);
  if is_empty a then b
  else if is_empty b then a
  else
    {
      lo = Array.init (dim a) (fun d -> min a.lo.(d) b.lo.(d));
      hi = Array.init (dim a) (fun d -> max a.hi.(d) b.hi.(d));
    }

let overlaps a b = not (is_empty (inter a b))
let equal a b = a.lo = b.lo && a.hi = b.hi

let iter t f =
  if not (is_empty t) then
    Distal_support.Ints.iter_box (extents t) (fun off ->
        f (Array.init (dim t) (fun d -> t.lo.(d) + off.(d))))

let to_string t =
  if dim t = 0 then "[scalar]"
  else
    String.concat "x"
      (List.init (dim t) (fun d -> Printf.sprintf "[%d,%d)" t.lo.(d) t.hi.(d)))

let pp fmt t = Stdlib.Format.pp_print_string fmt (to_string t)
