(** Hyper-rectangles over integer coordinates.

    A rect is a half-open box: [lo] inclusive, [hi] exclusive, one entry per
    dimension. Rects are how the compiler describes tensor footprints (the
    data a communicate point must materialize) and how the runtime describes
    partitions, mirroring Legion's bounding-box partitioning API. *)

type t = private { lo : int array; hi : int array }

val make : lo:int array -> hi:int array -> t
(** Requires [lo] and [hi] of equal length and [lo.(d) <= hi.(d)] for all [d]
    (empty rects are allowed). *)

val full : int array -> t
(** The rect covering a whole shape: [0, dims). *)

val dim : t -> int
val volume : t -> int
val is_empty : t -> bool
val contains : t -> int array -> bool
val subset : t -> t -> bool
(** [subset a b] holds when every point of [a] lies in [b]. An empty [a] is a
    subset of anything. *)

val inter : t -> t -> t
(** Intersection (possibly empty). *)

val hull : t -> t -> t
(** Smallest rect containing both. *)

val overlaps : t -> t -> bool
val equal : t -> t -> bool

val iter : t -> (int array -> unit) -> unit
(** Iterate the points of the rect in row-major order; the callback receives a
    fresh coordinate array each time. *)

val extents : t -> int array
(** Per-dimension side lengths. *)

val to_string : t -> string
(** E.g. ["[0,4)x[2,6)"]. *)

val pp : Stdlib.Format.formatter -> t -> unit
