lib/tensor/kernels.ml: Array Dense Distal_support
