lib/tensor/rect.ml: Array Distal_support List Printf Stdlib String
