lib/tensor/dense.mli: Distal_support Rect
