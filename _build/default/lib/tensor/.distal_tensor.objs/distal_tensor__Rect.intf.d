lib/tensor/rect.mli: Stdlib
