lib/tensor/kernels.mli: Dense
