lib/tensor/dense.ml: Array Distal_support Rect
