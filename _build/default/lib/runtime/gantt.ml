module Machine = Distal_machine.Machine
module Rect = Distal_tensor.Rect

let tile_label (e : Exec.trace_event) =
  (* Label the piece by its block coordinates: lo divided by extent. *)
  let r = e.piece in
  let coords =
    List.init (Rect.dim r) (fun d ->
        let w = max 1 ((r : Rect.t).hi.(d) - (r : Rect.t).lo.(d)) in
        string_of_int ((r : Rect.t).lo.(d) / w))
  in
  Printf.sprintf "%s(%s)" e.tensor (String.concat "," coords)

let grid_view ~machine ~tensor events =
  let dims = (machine : Machine.t).dims in
  if Array.length dims <> 2 then invalid_arg "Gantt.grid_view: 2-D machines only";
  let gx = dims.(0) and gy = dims.(1) in
  let events = List.filter (fun (e : Exec.trace_event) -> e.tensor = tensor) events in
  let steps =
    List.sort_uniq compare (List.map (fun (e : Exec.trace_event) -> e.step) events)
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun step ->
      Buffer.add_string buf (Printf.sprintf "step %d:\n" step);
      for x = 0 to gx - 1 do
        Buffer.add_string buf "  ";
        for y = 0 to gy - 1 do
          let cell =
            match
              List.find_opt
                (fun (e : Exec.trace_event) ->
                  e.step = step && e.dst = [| x; y |])
                events
            with
            | Some e -> Printf.sprintf "%-8s" (tile_label e)
            | None -> Printf.sprintf "%-8s" "."
          in
          Buffer.add_string buf cell
        done;
        Buffer.add_char buf '\n'
      done)
    steps;
  Buffer.contents buf

let summary ~machine:_ events =
  let table : (int, (int * float) ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Exec.trace_event) ->
      match Hashtbl.find_opt table e.step with
      | Some r ->
          let n, b = !r in
          r := (n + 1, b +. e.bytes)
      | None -> Hashtbl.add table e.step (ref (1, e.bytes)))
    events;
  let steps = List.sort compare (Hashtbl.fold (fun s _ acc -> s :: acc) table []) in
  String.concat "\n"
    (List.map
       (fun s ->
         let n, b = !(Hashtbl.find table s) in
         Printf.sprintf "step %d: %d copies, %.0f bytes" s n b)
       steps)
