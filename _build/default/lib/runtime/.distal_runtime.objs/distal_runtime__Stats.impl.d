lib/runtime/stats.ml: Printf
