lib/runtime/gantt.ml: Array Buffer Distal_machine Distal_tensor Exec Hashtbl List Printf String
