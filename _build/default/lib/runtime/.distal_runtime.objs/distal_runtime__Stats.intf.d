lib/runtime/stats.mli:
