lib/runtime/mapper.ml: Array Distal_machine Distal_support
