lib/runtime/exec.ml: Array Distal_ir Distal_machine Distal_support Distal_tensor Hashtbl List Mapper Printf Result Stats String
