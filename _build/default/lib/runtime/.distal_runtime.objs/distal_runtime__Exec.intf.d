lib/runtime/exec.mli: Distal_ir Distal_machine Distal_tensor Stats Stdlib
