lib/runtime/mapper.mli: Distal_machine
