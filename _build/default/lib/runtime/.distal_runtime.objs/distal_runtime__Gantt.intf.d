lib/runtime/gantt.mli: Distal_machine Exec
