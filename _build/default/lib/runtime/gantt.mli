(** Text rendering of execution traces.

    [grid_view] reproduces the style of the paper's Fig. 12: for a 2-D
    machine, one grid per bulk-synchronous step showing which tile of a
    tensor each processor received (or [.] when it used local data). Tiles
    are labeled by their block coordinates within the tensor. *)

val grid_view :
  machine:Distal_machine.Machine.t ->
  tensor:string ->
  Exec.trace_event list ->
  string

val summary :
  machine:Distal_machine.Machine.t -> Exec.trace_event list -> string
(** Per-step digest: how many copies and bytes moved, and between how many
    distinct processor pairs. *)
