module Ints = Distal_support.Ints
module Machine = Distal_machine.Machine

let proc_of_point machine ~launch_dims point =
  let mdims = (machine : Machine.t).dims in
  if Ints.equal launch_dims mdims then point
  else if Array.length point = 0 then Machine.delinearize machine 0
  else
    let lin = Ints.linearize ~dims:launch_dims point in
    Machine.delinearize machine (lin mod Machine.num_procs machine)
