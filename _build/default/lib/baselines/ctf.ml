module Api = Distal.Api
module Machine = Distal_machine.Machine
module Cost = Distal_machine.Cost_model
module Stats = Distal_runtime.Stats
module M = Distal_algorithms.Matmul
module Cs = Distal_algorithms.Cosma_scheduler
module S = Distal_ir.Schedule

let ( let* ) = Result.bind

(* CTF trades single-node utilization for scalability (§7.2.1). *)
let elementwise_efficiency = 0.5
let mttkrp_efficiency = 0.5

let grid25 p =
  let rec go g = if g * g <= p && p mod (g * g) = 0 then (g, g, p / (g * g)) else go (g - 1) in
  go (int_of_float (sqrt (float_of_int p)))

let gemm ~nodes ~n =
  (* CTF's 2.5D algorithm over its 4 ranks per node. *)
  let g, _, c = grid25 (4 * nodes) in
  let machine = Machine.with_ppn ~kind:Machine.Cpu ~mem_per_proc:64e9 [| g; g; c |] ~ppn:4 in
  let* alg = M.solomonik ~n ~machine in
  let* r = Api.run ~mode:Api.Exec.Model ~cost:Cost.cpu_rank_ctf alg.M.plan ~data:[] in
  Ok r.Api.Exec.stats

(* A rectangular distributed GEMM (m x k) * (k x n) the way CTF's core
   performs it: SUMMA-style on a balanced 2-D grid, with CTF's cost
   model. *)
let rect_gemm ?grid ~procs ~m ~k ~n () =
  let gx, gy = match grid with Some g -> g | None -> Cs.best_pair procs in
  let machine = Machine.grid [| gx; gy |] in
  let* problem =
    Api.problem ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| m; n |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "B" [| m; k |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "C" [| k; n |] ~dist:"[x,y] -> [x,y]";
        ] ()
  in
  let chunk = max 1 (k / (gx * 4)) in
  let* plan =
    Api.compile problem
      ~schedule:
        [
          S.Distribute_onto
            { targets = [ "i"; "j" ]; dist = [ "io"; "jo" ]; local = [ "ii"; "ji" ];
              grid = [| gx; gy |] };
          S.Split ("k", "ko", "ki", chunk);
          S.Reorder [ "ko"; "ii"; "ji"; "ki" ];
          S.Communicate ([ "A" ], "jo");
          S.Communicate ([ "B"; "C" ], "ko");
          S.Substitute ([ "ii"; "ji"; "ki" ], "gemm");
        ]
  in
  let* r = Api.run ~mode:Api.Exec.Model ~cost:Cost.cpu_ctf plan ~data:[] in
  Ok r.Api.Exec.stats

(* Redistribution performed when CTF reshapes a 3-tensor into its matrix
   layouts: an all-to-all between a mode-0 and a mode-1 partition. *)
let matricize_cost ~procs ~shape =
  let machine = Machine.grid [| procs |] in
  let src = Api.Distnot.parse_exn "[x,y,z] -> [x]" in
  let dst = Api.Distnot.parse_exn "[x,y,z] -> [y]" in
  Api.redistribute ~machine ~cost:Cost.cpu_ctf ~shape ~src ~dst ()

(* A local pass over [bytes] of data at a degraded fraction of the node's
   memory bandwidth, plus [flops] of arithmetic. *)
let local_pass ~procs ~bytes ~flops ~efficiency =
  let c = Cost.cpu_ctf in
  let per_proc_bytes = bytes /. float_of_int procs in
  let per_proc_flops = flops /. float_of_int procs in
  let t =
    max
      (per_proc_bytes /. (efficiency *. c.Cost.mem_bw))
      (per_proc_flops /. (efficiency *. c.Cost.compute_rate))
  in
  let s = Stats.create () in
  s.Stats.time <- t;
  s.Stats.flops <- flops;
  s.Stats.steps <- 1;
  s

(* Matricizing in place is a full pass over the tensor even on one node. *)
let reshape_pass ~procs ~bytes =
  local_pass ~procs ~bytes:(2.0 *. bytes) ~flops:0.0 ~efficiency:1.0

let ttv ~nodes ~i ~j ~k =
  let f = float_of_int in
  let shuffle = matricize_cost ~procs:nodes ~shape:[| i; j; k |] in
  let compute =
    local_pass ~procs:nodes
      ~bytes:(8.0 *. f i *. f j *. f k)
      ~flops:(2.0 *. f i *. f j *. f k)
      ~efficiency:elementwise_efficiency
  in
  Ok (Stats.add shuffle compute)

let innerprod ~nodes ~i ~j ~k =
  let f = float_of_int in
  let compute =
    local_pass ~procs:nodes
      ~bytes:(2.0 *. 8.0 *. f i *. f j *. f k)
      ~flops:(2.0 *. f i *. f j *. f k)
      ~efficiency:elementwise_efficiency
  in
  let c = Cost.cpu_ctf in
  compute.Stats.time <-
    compute.Stats.time +. Cost.reduce_time c Cost.Inter ~bytes:8.0 ~contributors:nodes;
  Ok compute

let ttm ~nodes ~i ~j ~k ~l =
  let shuffle = matricize_cost ~procs:nodes ~shape:[| i; j; k |] in
  let* mm = rect_gemm ~procs:nodes ~m:(i * j) ~k ~n:l () in
  Ok (Stats.add shuffle mm)

let mttkrp ~nodes ~i ~j ~k ~l =
  let f = float_of_int in
  let c = Cost.cpu_ctf in
  (* Form the Khatri-Rao product (j*k) x l. *)
  let krp =
    local_pass ~procs:nodes
      ~bytes:(8.0 *. 2.0 *. f j *. f k *. f l)
      ~flops:(f j *. f k *. f l)
      ~efficiency:mttkrp_efficiency
  in
  (* Matricize B in place (a local reshaping pass over the big tensor). *)
  let reshape = reshape_pass ~procs:nodes ~bytes:(8.0 *. f i *. f j *. f k) in
  (* The matricized product keeps B stationary: each rank multiplies its
     B rows by the KRP block matching its columns, fetched once, and the
     i x l partials reduce across the grid — flat but inefficient weak
     scaling (§7.2.2). *)
  let gx, gy = Cs.best_pair nodes in
  let gemm =
    local_pass ~procs:nodes
      ~bytes:(8.0 *. f i *. f j *. f k)
      ~flops:(2.0 *. f i *. f j *. f k *. f l)
      ~efficiency:1.0
  in
  let krp_fetch_bytes = 8.0 *. f j *. f k *. f l /. float_of_int (max 1 gy) in
  let reduce_partials =
    Cost.reduce_time c Cost.Inter ~bytes:(8.0 *. f i *. f l /. float_of_int gx)
      ~contributors:gy
  in
  let comm = Stats.create () in
  comm.Stats.time <-
    Cost.copy_time c Cost.Inter ~bytes:krp_fetch_bytes +. reduce_partials;
  comm.Stats.bytes_inter <-
    (krp_fetch_bytes *. float_of_int nodes)
    +. (8.0 *. f i *. f l *. float_of_int (gy - 1) /. float_of_int gx);
  (* The element-wise reduction pass casting MTTKRP to GEMM requires
     (§7.2.1). *)
  let reduce =
    local_pass ~procs:nodes
      ~bytes:(8.0 *. 2.0 *. f i *. f l)
      ~flops:(f i *. f l)
      ~efficiency:mttkrp_efficiency
  in
  Ok (Stats.add (Stats.add krp reshape) (Stats.add (Stats.add gemm comm) reduce))
