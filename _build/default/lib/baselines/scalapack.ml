module Api = Distal.Api
module Machine = Distal_machine.Machine
module Cost = Distal_machine.Cost_model
module Stats = Distal_runtime.Stats
module M = Distal_algorithms.Matmul
module Cs = Distal_algorithms.Cosma_scheduler

let ( let* ) = Result.bind

let grid_of = Cs.best_pair

let gemm ?(redistribute_inputs = false) ~nodes ~n () =
  (* Four MPI ranks per node (§7.1), arranged in the most balanced 2-D
     process grid. *)
  let gx, gy = grid_of (4 * nodes) in
  let machine = Machine.with_ppn ~kind:Machine.Cpu ~mem_per_proc:64e9 [| gx; gy |] ~ppn:4 in
  let* alg = M.summa ~n ~machine () in
  let* r = Api.run ~mode:Api.Exec.Model ~cost:Cost.cpu_rank_no_overlap alg.M.plan ~data:[] in
  let stats = r.Api.Exec.stats in
  if redistribute_inputs then begin
    (* The caller's row-major data must enter ScaLAPACK's 2-D layout
       first: one exchange per input matrix. *)
    let rows = Api.Distnot.parse_exn "[x,y] -> [x,*]" in
    let tiles = Api.Distnot.parse_exn "[x,y] -> [x,y]" in
    let re =
      Api.redistribute ~machine ~cost:Cost.cpu_rank_no_overlap ~shape:[| n; n |] ~src:rows
        ~dst:tiles ()
    in
    Ok (Stats.add stats (Stats.add re re))
  end
  else Ok stats
