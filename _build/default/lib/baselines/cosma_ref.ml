module Api = Distal.Api
module Machine = Distal_machine.Machine
module Cost = Distal_machine.Cost_model
module M = Distal_algorithms.Matmul
module Cs = Distal_algorithms.Cosma_scheduler

let ( let* ) = Result.bind

let run_decomposition ~machine ~cost ~n =
  let* alg = M.cosma ~n ~machine () in
  let* r = Api.run ~mode:Api.Exec.Model ~cost alg.M.plan ~data:[] in
  Ok r.Api.Exec.stats

let gemm_cpu ?(restricted = false) ~nodes ~n () =
  let mem = 256e9 in
  let d = Cs.find ~procs:nodes ~m:n ~n ~k:n ~mem_per_proc:mem in
  let g1, g2, g3 = d.Cs.grid in
  let machine = Machine.grid ~mem_per_proc:mem [| g1; g2; g3 |] in
  let cost =
    if restricted then { Cost.cpu_distal with task_overhead = 0.0 } else Cost.cpu_full_node
  in
  run_decomposition ~machine ~cost ~n

let gemm_gpu ~nodes ~n =
  let procs = 4 * nodes in
  (* Matrices live in the node's CPU memory (64 GB per GPU share), so the
     3-D decompositions never exhaust the 16 GB framebuffer. *)
  let mem = 64e9 in
  let d = Cs.find ~procs ~m:n ~n ~k:n ~mem_per_proc:mem in
  let g1, g2, g3 = d.Cs.grid in
  let machine = Machine.with_ppn ~kind:Machine.Gpu ~mem_per_proc:mem [| g1; g2; g3 |] ~ppn:4 in
  run_decomposition ~machine ~cost:Cost.gpu_cosma ~n
