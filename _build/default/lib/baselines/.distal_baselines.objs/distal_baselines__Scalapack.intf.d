lib/baselines/scalapack.mli: Distal_runtime
