lib/baselines/ctf.ml: Distal Distal_algorithms Distal_ir Distal_machine Distal_runtime Result
