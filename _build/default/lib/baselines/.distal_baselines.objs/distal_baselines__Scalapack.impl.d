lib/baselines/scalapack.ml: Distal Distal_algorithms Distal_machine Distal_runtime Result
