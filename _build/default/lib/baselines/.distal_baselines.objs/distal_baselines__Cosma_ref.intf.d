lib/baselines/cosma_ref.mli: Distal_runtime
