lib/baselines/cosma_ref.ml: Distal Distal_algorithms Distal_machine Result
