lib/baselines/ctf.mli: Distal_runtime
