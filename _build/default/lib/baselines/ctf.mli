(** Cyclops Tensor Framework baseline (§7).

    CTF supports any tensor contraction by slicing/reshaping tensors into
    matrices and calling a hand-written 2.5D distributed matrix multiply
    (§8). This module reproduces that strategy concretely, on our machine
    and cost models:

    - GEMM: the 2.5D algorithm on CTF's (g, g, c) process grid.
    - TTV: matricize B to (i*j) x k and run a distributed mat-vec; the
      matricization costs a redistribution of B (the "unnecessary
      communication" of §7.2.2).
    - Innerprod: local dot products plus a global reduction.
    - TTM: matricize B to (i*j) x k and run a distributed GEMM against C.
    - MTTKRP: form the Khatri-Rao product C (.) D of shape (j*k) x l, then
      a distributed GEMM B_(i x jk) x KRP, then the element-wise reduction
      pass §7.2.1 mentions.

    Single-node inefficiencies the paper measures (CTF "aims at
    scalability to large core counts rather than fully utilizing the
    resources on a single node", §7.2.1) appear as efficiency factors on
    the bandwidth-bound kernels. CPU only, as in the paper. *)

val gemm : nodes:int -> n:int -> (Distal_runtime.Stats.t, string) result

val ttv : nodes:int -> i:int -> j:int -> k:int -> (Distal_runtime.Stats.t, string) result

val innerprod :
  nodes:int -> i:int -> j:int -> k:int -> (Distal_runtime.Stats.t, string) result

val ttm :
  nodes:int -> i:int -> j:int -> k:int -> l:int ->
  (Distal_runtime.Stats.t, string) result

val mttkrp :
  nodes:int -> i:int -> j:int -> k:int -> l:int ->
  (Distal_runtime.Stats.t, string) result

val grid25 : int -> int * int * int
(** CTF's (g, g, c) processor grid: the largest square dividing the
    processor count, with the remainder as replication depth. *)
