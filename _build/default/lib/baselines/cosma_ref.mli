(** The COSMA authors' implementation, as a baseline (§7.1).

    COSMA computes its own near-optimal decomposition (reproduced in
    {!Distal_algorithms.Cosma_scheduler}) and overlaps communication with
    computation aggressively. On CPUs it uses all 40 cores of a Lassen
    node (DISTAL reserves 4 for the Legion runtime, §7.1.1); the
    "restricted CPUs" variant pins COSMA to the same 36 work cores as
    DISTAL. On GPUs, COSMA stages data in the larger CPU memory and runs
    an out-of-core GEMM — reaching the network's full bandwidth but only
    half of DISTAL's single-node throughput (§7.1.2), and never running
    out of GPU memory. *)

val gemm_cpu :
  ?restricted:bool -> nodes:int -> n:int -> unit ->
  (Distal_runtime.Stats.t, string) result

val gemm_gpu : nodes:int -> n:int -> (Distal_runtime.Stats.t, string) result
