(** ScaLAPACK baseline (§7.1).

    ScaLAPACK's PDGEMM implements SUMMA on a 2-D process grid. The model
    runs exactly our SUMMA plan, but with a cost model that does not
    overlap communication with computation (ScaLAPACK's synchronous
    broadcasts) and, optionally, with the block-cyclic input
    redistribution ScaLAPACK requires when the caller's data is not
    already in its layout (§1). CPU only, as in the paper. *)

val gemm :
  ?redistribute_inputs:bool ->
  nodes:int ->
  n:int ->
  unit ->
  (Distal_runtime.Stats.t, string) result

val grid_of : int -> int * int
(** The most balanced 2-D process grid for a node count (the source of the
    paper's "performance variability due to non-square machine grids"). *)
