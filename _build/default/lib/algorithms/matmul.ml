module Api = Distal.Api
module Machine = Distal_machine.Machine
module S = Distal_ir.Schedule
module Ints = Distal_support.Ints

type t = {
  name : string;
  year : int;
  dists : (string * string) list;
  schedule : S.t list;
  plan : Distal.Api.plan;
}

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let gemm_problem ?virtual_grid ~machine ~n dists =
  Api.problem ?virtual_grid ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
    ~tensors:(List.map (fun (name, d) -> Api.tensor name [| n; n |] ~dist:d) dists)
    ()

let require_dims machine k name =
  if Machine.dim machine <> k then
    errf "%s needs a %d-dimensional machine, got %s" name k (Machine.to_string machine)
  else Ok ()

let make ?virtual_grid ~name ~year ~machine ~n ~dists ~schedule () =
  let* problem = gemm_problem ?virtual_grid ~machine ~n dists in
  let* plan = Api.compile problem ~schedule in
  Ok { name; year; dists; schedule; plan }

let tiled2 = [ ("A", "[x,y] -> [x,y]"); ("B", "[x,y] -> [x,y]"); ("C", "[x,y] -> [x,y]") ]

let dist2 gx gy =
  S.Distribute_onto
    { targets = [ "i"; "j" ]; dist = [ "io"; "jo" ]; local = [ "ii"; "ji" ];
      grid = [| gx; gy |] }

let summa ?(chunks_per_tile = 4) ~n ~machine () =
  let* () = require_dims machine 2 "SUMMA" in
  let gx = machine.Machine.dims.(0) and gy = machine.Machine.dims.(1) in
  let chunk = max 1 (Ints.ceil_div n (gx * chunks_per_tile)) in
  make ~name:"summa" ~year:1995 ~machine ~n ~dists:tiled2
    ~schedule:
      [
        dist2 gx gy;
        S.Split ("k", "ko", "ki", chunk);
        S.Reorder [ "ko"; "ii"; "ji"; "ki" ];
        S.Communicate ([ "A" ], "jo");
        S.Communicate ([ "B"; "C" ], "ko");
        S.Substitute ([ "ii"; "ji"; "ki" ], "gemm");
      ]
    ()


let systolic2 ~name ~year ~rotate_by ~n ~machine =
  let* () = require_dims machine 2 name in
  let gx = machine.Machine.dims.(0) and gy = machine.Machine.dims.(1) in
  make ~name ~year ~machine ~n ~dists:tiled2
    ~schedule:
      [
        dist2 gx gy;
        S.Divide ("k", "ko", "ki", gx);
        S.Reorder [ "ko"; "ii"; "ji"; "ki" ];
        S.Rotate { target = "ko"; by = rotate_by; result = "kos" };
        S.Communicate ([ "A" ], "jo");
        S.Communicate ([ "B"; "C" ], "kos");
        S.Substitute ([ "ii"; "ji"; "ki" ], "gemm");
      ]
    ()

let cannon ~n ~machine =
  systolic2 ~name:"cannon" ~year:1969 ~rotate_by:[ "io"; "jo" ] ~n ~machine

let pumma ~n ~machine =
  systolic2 ~name:"pumma" ~year:1994 ~rotate_by:[ "io" ] ~n ~machine

let faces3 =
  [ ("A", "[x,y] -> [x,y,0]"); ("B", "[x,z] -> [x,0,z]"); ("C", "[z,y] -> [0,y,z]") ]

let dist3 g =
  S.Distribute_onto
    { targets = [ "i"; "j"; "k" ]; dist = [ "io"; "jo"; "ko" ];
      local = [ "ii"; "ji"; "ki" ]; grid = g }

let johnson ?virtual_cube ~n ~machine () =
  let* grid, virtual_grid =
    match virtual_cube with
    | Some g ->
        if Array.length g <> 3 then Error "johnson: virtual cube must be 3-D"
        else Ok (g, Some g)
    | None ->
        let* () = require_dims machine 3 "Johnson's algorithm" in
        Ok (machine.Machine.dims, None)
  in
  make ?virtual_grid ~name:"johnson" ~year:1995 ~machine ~n ~dists:faces3
    ~schedule:
      [
        dist3 grid;
        S.Communicate ([ "A"; "B"; "C" ], "ko");
        S.Substitute ([ "ii"; "ji"; "ki" ], "gemm");
      ]
    ()

let solomonik ~n ~machine =
  let* () = require_dims machine 3 "Solomonik's 2.5D algorithm" in
  let g = machine.Machine.dims.(0) in
  let tiled_face = List.map (fun (t, _) -> (t, "[x,y] -> [x,y,0]")) faces3 in
  make ~name:"solomonik" ~year:2011 ~machine ~n ~dists:tiled_face
    ~schedule:
      [
        dist3 machine.Machine.dims;
        S.Divide ("ki", "kio", "kii", g);
        S.Reorder [ "kio"; "ii"; "ji"; "kii" ];
        S.Rotate { target = "kio"; by = [ "io"; "jo" ]; result = "kios" };
        S.Communicate ([ "A" ], "ko");
        S.Communicate ([ "B"; "C" ], "kios");
        S.Substitute ([ "ii"; "ji"; "kii" ], "gemm");
      ]
    ()

let cosma ?(steps = 4) ~n ~machine () =
  let* () = require_dims machine 3 "COSMA" in
  let g3 = machine.Machine.dims.(2) in
  let chunk = max 1 (Ints.ceil_div (Ints.ceil_div n g3) steps) in
  make ~name:"cosma" ~year:2019 ~machine ~n ~dists:faces3
    ~schedule:
      [
        dist3 machine.Machine.dims;
        S.Split ("ki", "kio", "kii", chunk);
        S.Reorder [ "kio"; "ii"; "ji"; "kii" ];
        S.Communicate ([ "A" ], "ko");
        S.Communicate ([ "B"; "C" ], "kio");
        S.Substitute ([ "ii"; "ji"; "kii" ], "gemm");
      ]
    ()

let all_2d =
  [
    ("summa", fun ~n ~machine -> summa ~n ~machine ());
    ("cannon", cannon);
    ("pumma", pumma);
  ]
