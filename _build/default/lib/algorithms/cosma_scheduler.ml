type decomposition = {
  grid : int * int * int;
  steps : int;
  comm_per_proc : float;
}

let factor_pairs p =
  let rec go a acc = if a > p then acc else if p mod a = 0 then go (a + 1) ((a, p / a) :: acc) else go (a + 1) acc in
  List.rev (go 1 [])

let best_pair p =
  List.fold_left
    (fun (ba, bb) (a, b) -> if abs (a - b) < abs (ba - bb) then (a, b) else (ba, bb))
    (1, p) (factor_pairs p)

let factor_triples p =
  List.concat_map
    (fun (a, rest) -> List.map (fun (b, c) -> (a, b, c)) (factor_pairs rest))
    (factor_pairs p)

(* Per-processor communication volume of the (g1,g2,g3) decomposition:
   every processor receives its tiles of A and B, and a g3-way k-split
   adds a reduction of the C tile. *)
let comm_bytes ~m ~n ~k (g1, g2, g3) =
  let f = float_of_int in
  let a_tile = f m /. f g1 *. (f k /. f g3) in
  let b_tile = f k /. f g3 *. (f n /. f g2) in
  let c_tile = f m /. f g1 *. (f n /. f g2) in
  8.0 *. (a_tile +. b_tile +. (if g3 > 1 then 2.0 *. c_tile else 0.0))

let mem_bytes ~m ~n ~k (g1, g2, g3) =
  let f = float_of_int in
  8.0
  *. ((f m /. f g1 *. (f k /. f g3))
     +. (f k /. f g3 *. (f n /. f g2))
     +. (f m /. f g1 *. (f n /. f g2)))

let find ~procs ~m ~n ~k ~mem_per_proc =
  let candidates = factor_triples procs in
  let fits g = mem_bytes ~m ~n ~k g <= 0.7 *. mem_per_proc in
  let pick best g =
    let c = comm_bytes ~m ~n ~k g in
    match best with
    | Some (bc, _) when bc <= c -> best
    | _ -> Some (c, g)
  in
  let best = List.fold_left (fun b g -> if fits g then pick b g else b) None candidates in
  let (g1, g2, g3), comm =
    match best with
    | Some (c, g) -> (g, c)
    | None ->
        let a, b = best_pair procs in
        ((a, b, 1), comm_bytes ~m ~n ~k (a, b, 1))
  in
  (* Chunk the local k range so communication pipelines with compute; four
     chunks per local range matches COSMA's default pipelining depth. *)
  let local_k = k / max 1 g3 in
  let steps = max 1 (min 4 local_k) in
  { grid = (g1, g2, g3); steps; comm_per_proc = comm }
