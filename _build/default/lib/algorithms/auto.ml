module Api = Distal.Api
module Machine = Distal_machine.Machine
module Stats = Distal_runtime.Stats
module S = Distal_ir.Schedule
module D = Distal_ir.Distnot
module Expr = Distal_ir.Expr
module Kernel_match = Distal_ir.Kernel_match
module Ints = Distal_support.Ints

type candidate = {
  dist_vars : Distal_ir.Ident.t list;
  grid : int array;
  plan : Distal.Api.plan;
  stats : Distal_runtime.Stats.t;
}

let ( let* ) = Result.bind

let rec subsets_of_size k = function
  | _ when k = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
      List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest) @ subsets_of_size k rest

let rec factorizations p k =
  if k = 1 then [ [ p ] ]
  else
    List.concat_map
      (fun (a, rest) -> List.map (fun f -> a :: f) (factorizations rest (k - 1)))
      (Cosma_scheduler.factor_pairs p)

(* The induced format: each tensor partitioned by the distributed
   variables that index it; machine dimensions that do not index it
   either pin the tensor to their 0-face (stored once) or replicate it
   ([replicate] — trades memory for communication, the 3-D-algorithm
   tradeoff of §4). Outputs are never replicated. *)
let induced_dist ~replicate dist_vars (access : Expr.access) =
  let tensor_axes = List.mapi (fun d _ -> Printf.sprintf "x%d" d) access.indices in
  let machine_axes =
    List.map
      (fun v ->
        let rec pos d = function
          | [] -> None
          | w :: _ when Distal_ir.Ident.equal w v -> Some d
          | _ :: rest -> pos (d + 1) rest
        in
        match pos 0 access.indices with
        | Some d -> D.Part (Printf.sprintf "x%d" d)
        | None -> if replicate then D.Bcast else D.Fix 0)
      dist_vars
  in
  [ { D.tensor_axes; machine_axes } ]

let candidate_plan ~machine ~grid ~dist_vars ~replicate ~stmt ~shapes =
  let parsed = Distal_ir.Einsum_parser.parse_exn stmt in
  let first_access tn =
    List.find (fun (a : Expr.access) -> String.equal a.tensor tn)
      (Expr.stmt_accesses parsed)
  in
  let out_name = parsed.Expr.lhs.tensor in
  let tensors =
    List.map
      (fun (tn, shape) ->
        let replicate = replicate && not (String.equal tn out_name) in
        Api.tensor_d tn shape (induced_dist ~replicate dist_vars (first_access tn)))
      shapes
  in
  let* problem = Api.problem ~machine ~stmt ~tensors () in
  let outer = List.map (fun v -> v ^ "_o") dist_vars in
  let schedule =
    [
      S.Distribute_onto
        {
          targets = dist_vars;
          dist = outer;
          local = List.map (fun v -> v ^ "_i") dist_vars;
          grid;
        };
      S.Communicate (Expr.tensors parsed, List.nth outer (List.length outer - 1));
    ]
  in
  let* plan = Api.compile problem ~schedule in
  (* Hand the leaf to a substituted kernel when the statement matches. *)
  match Kernel_match.infer parsed with
  | None -> Ok plan
  | Some kernel -> (
      let inner =
        List.filter
          (fun v -> not (List.mem v outer))
          (Distal_ir.Cin.loop_vars plan.Api.cin)
      in
      match Api.compile problem ~schedule:(schedule @ [ S.Substitute (inner, kernel) ]) with
      | Ok plan -> Ok plan
      | Error _ -> Ok plan)

let search ?(max_dist_vars = 3) ?cost ~machine_of ~procs ~stmt ~shapes () =
  let* parsed = Distal_ir.Einsum_parser.parse stmt in
  let* _ = Distal_ir.Typecheck.check parsed ~shapes in
  let vars = Expr.index_vars parsed in
  let* () = if vars = [] then Error "statement has no index variables" else Ok () in
  let candidates = ref [] in
  for k = 1 to min max_dist_vars (List.length vars) do
    List.iter
      (fun dist_vars ->
        List.iter
          (fun factors ->
            let grid = Array.of_list factors in
            let machine = machine_of grid in
            List.iter
              (fun replicate ->
                match candidate_plan ~machine ~grid ~dist_vars ~replicate ~stmt ~shapes with
                | Error _ -> ()
                | Ok plan -> (
                    match Api.run ?cost ~mode:Api.Exec.Model plan ~data:[] with
                    | Error _ -> ()
                    | Ok r ->
                        candidates :=
                          { dist_vars; grid; plan; stats = r.Api.Exec.stats }
                          :: !candidates))
              [ false; true ])
          (factorizations procs k))
      (subsets_of_size k vars)
  done;
  match !candidates with
  | [] -> Error "no feasible candidate found"
  | cs ->
      Ok
        (List.sort
           (fun a b ->
             compare
               (a.stats.Stats.oom, a.stats.Stats.time)
               (b.stats.Stats.oom, b.stats.Stats.time))
           cs)

let best ?max_dist_vars ?cost ~machine_of ~procs ~stmt ~shapes () =
  let* cs = search ?max_dist_vars ?cost ~machine_of ~procs ~stmt ~shapes () in
  Ok (List.hd cs)

let describe c =
  Printf.sprintf "distribute {%s} over %s: %.3g s%s (%d msgs, %.3g GB moved)"
    (String.concat ", " c.dist_vars)
    (Ints.to_string c.grid) c.stats.Stats.time
    (if c.stats.Stats.oom then " OOM" else "")
    c.stats.Stats.messages
    ((c.stats.Stats.bytes_inter +. c.stats.Stats.bytes_intra) /. 1e9)
