lib/algorithms/matmul.ml: Array Distal Distal_ir Distal_machine Distal_support List Printf Result
