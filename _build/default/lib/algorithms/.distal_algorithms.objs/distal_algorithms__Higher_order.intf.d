lib/algorithms/higher_order.mli: Distal Distal_machine
