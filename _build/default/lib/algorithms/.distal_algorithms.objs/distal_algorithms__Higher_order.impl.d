lib/algorithms/higher_order.ml: Array Distal Distal_ir Distal_machine Printf Result
