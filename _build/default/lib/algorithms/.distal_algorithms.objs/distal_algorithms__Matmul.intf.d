lib/algorithms/matmul.mli: Distal Distal_ir Distal_machine
