lib/algorithms/cosma_scheduler.mli:
