lib/algorithms/cosma_scheduler.ml: List
