lib/algorithms/auto.ml: Array Cosma_scheduler Distal Distal_ir Distal_machine Distal_runtime Distal_support List Printf Result String
