lib/algorithms/auto.mli: Distal Distal_ir Distal_machine Distal_runtime
