(** The distributed matrix-multiplication case studies of §4 / Fig. 9.

    Each algorithm is expressed exactly as the paper does: a target machine
    organization, initial data distributions in tensor distribution
    notation, and a schedule of the statement
    [A(i,j) = B(i,k) * C(k,j)]. The returned plan is compiled and ready to
    validate ({!Distal.Api.validate}) or cost ({!Distal.Api.estimate}).

    2-D algorithms (SUMMA, Cannon, PUMMA) expect a 2-D machine; Johnson,
    Solomonik's 2.5D and COSMA expect a 3-D machine. GPU experiments pass
    machines whose node_factors group four processors per node. *)

type t = {
  name : string;
  year : int;
  dists : (string * string) list;
      (** tensor name -> distribution notation, as displayed in Fig. 9 *)
  schedule : Distal_ir.Schedule.t list;
  plan : Distal.Api.plan;
}

val summa :
  ?chunks_per_tile:int -> n:int -> machine:Distal_machine.Machine.t -> unit ->
  (t, string) result
val cannon : n:int -> machine:Distal_machine.Machine.t -> (t, string) result
val pumma : n:int -> machine:Distal_machine.Machine.t -> (t, string) result
val johnson :
  ?virtual_cube:int array -> n:int -> machine:Distal_machine.Machine.t -> unit ->
  (t, string) result
(** With [virtual_cube], the cube grid is decoupled from the physical
    machine: the launch and distributions over-decompose onto it and fold
    back onto the machine — the paper's Johnson behaviour on non-cube
    processor counts (§7.1.2). *)

val solomonik : n:int -> machine:Distal_machine.Machine.t -> (t, string) result
(** 2.5D: machine dims [| g; g; c |]; the third dimension is the
    replication depth c. *)

val cosma :
  ?steps:int -> n:int -> machine:Distal_machine.Machine.t -> unit -> (t, string) result
(** The machine should come from {!Cosma_scheduler.find}'s grid. *)

val all_2d : (string * (n:int -> machine:Distal_machine.Machine.t -> (t, string) result)) list
(** Name -> constructor for the 2-D family. *)
