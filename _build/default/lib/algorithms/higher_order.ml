module Api = Distal.Api
module Machine = Distal_machine.Machine
module S = Distal_ir.Schedule

type t = { name : string; plan : Distal.Api.plan; bandwidth_bound : bool }

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let require_dims machine k name =
  if Machine.dim machine <> k then
    errf "%s needs a %d-dimensional machine, got %s" name k (Machine.to_string machine)
  else Ok ()

let dist1 p =
  [
    S.Divide ("i", "io", "ii", p);
    S.Distribute [ "io" ];
  ]

let ttv ~i ~j ~k ~machine =
  let* () = require_dims machine 1 "TTV" in
  let p = machine.Machine.dims.(0) in
  let* problem =
    Api.problem ~machine ~stmt:"A(i,j) = B(i,j,k) * c(k)"
      ~tensors:
        [
          Api.tensor "A" [| i; j |] ~dist:"[x,y] -> [x]";
          Api.tensor "B" [| i; j; k |] ~dist:"[x,y,z] -> [x]";
          Api.tensor "c" [| k |] ~dist:"[x] -> [*]";
        ] ()
  in
  let* plan =
    Api.compile problem
      ~schedule:
        (dist1 p
        @ [ S.Communicate ([ "A"; "B"; "c" ], "io");
            S.Substitute ([ "ii"; "j"; "k" ], "ttv") ])
  in
  Ok { name = "ttv"; plan; bandwidth_bound = true }

let innerprod ~i ~j ~k ~machine =
  let* () = require_dims machine 1 "Innerprod" in
  let p = machine.Machine.dims.(0) in
  let* problem =
    Api.problem ~machine ~stmt:"a = B(i,j,k) * C(i,j,k)"
      ~tensors:
        [
          Api.tensor "a" [||] ~dist:"[] -> [0]";
          Api.tensor "B" [| i; j; k |] ~dist:"[x,y,z] -> [x]";
          Api.tensor "C" [| i; j; k |] ~dist:"[x,y,z] -> [x]";
        ] ()
  in
  let* plan =
    Api.compile problem
      ~schedule:
        (dist1 p
        @ [ S.Communicate ([ "a"; "B"; "C" ], "io");
            S.Substitute ([ "ii"; "j"; "k" ], "innerprod") ])
  in
  Ok { name = "innerprod"; plan; bandwidth_bound = true }

let ttm ~i ~j ~k ~l ~machine =
  let* () = require_dims machine 1 "TTM" in
  let p = machine.Machine.dims.(0) in
  let* problem =
    Api.problem ~machine ~stmt:"A(i,j,l) = B(i,j,k) * C(k,l)"
      ~tensors:
        [
          Api.tensor "A" [| i; j; l |] ~dist:"[x,y,z] -> [x]";
          Api.tensor "B" [| i; j; k |] ~dist:"[x,y,z] -> [x]";
          Api.tensor "C" [| k; l |] ~dist:"[x,y] -> [*]";
        ] ()
  in
  let* plan =
    Api.compile problem
      ~schedule:
        (dist1 p
        @ [ S.Communicate ([ "A"; "B"; "C" ], "io");
            S.Substitute ([ "ii"; "j"; "k"; "l" ], "ttm") ])
  in
  Ok { name = "ttm"; plan; bandwidth_bound = false }

let mttkrp ~i ~j ~k ~l ~machine =
  let* () = require_dims machine 2 "MTTKRP" in
  let gx = machine.Machine.dims.(0) and gy = machine.Machine.dims.(1) in
  let* problem =
    Api.problem ~machine ~stmt:"A(i,l) = B(i,j,k) * C(j,l) * D(k,l)"
      ~tensors:
        [
          (* Ballard et al.: B stationary in 2-D tiles; the output and the
             factor matrices are replicated along one machine dimension. *)
          Api.tensor "A" [| i; l |] ~dist:"[x,y] -> [x,*]";
          Api.tensor "B" [| i; j; k |] ~dist:"[x,y,z] -> [x,y]";
          Api.tensor "C" [| j; l |] ~dist:"[x,y] -> [*,x]";
          Api.tensor "D" [| k; l |] ~dist:"[x,y] -> [*,*]";
        ] ()
  in
  let* plan =
    Api.compile problem
      ~schedule:
        [
          S.Distribute_onto
            { targets = [ "i"; "j" ]; dist = [ "io"; "jo" ]; local = [ "ii"; "ji" ];
              grid = [| gx; gy |] };
          S.Communicate ([ "A"; "B"; "C"; "D" ], "jo");
          S.Substitute ([ "ii"; "ji"; "k"; "l" ], "mttkrp");
        ]
  in
  Ok { name = "mttkrp"; plan; bandwidth_bound = false }
