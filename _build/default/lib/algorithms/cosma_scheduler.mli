(** The COSMA decomposition scheduler (§4.5).

    COSMA [Kwasniewski et al. 2019] computes a near-communication-optimal
    processor grid and parallelization strategy from the matrix dimensions,
    processor count and per-processor memory. This module reproduces that
    decision procedure: it searches the factorizations of [procs] into a
    3-D grid (g1, g2, g3) minimizing the per-processor communication volume
    of C = A*B with m x k, k x n inputs, subject to the tiles (plus the
    replication that a k-split implies) fitting in memory. *)

type decomposition = {
  grid : int * int * int;  (** (g1, g2, g3): i, j and k splits *)
  steps : int;  (** sequential chunks of the local k range *)
  comm_per_proc : float;  (** modeled bytes communicated per processor *)
}

val find :
  procs:int -> m:int -> n:int -> k:int -> mem_per_proc:float -> decomposition
(** Best decomposition; falls back to the most balanced 2-D grid when no
    3-D split fits in memory. *)

val factor_pairs : int -> (int * int) list
(** All ordered factorizations p = a * b (used for the 2-D algorithms'
    grids at non-square processor counts). *)

val best_pair : int -> int * int
(** The most balanced factor pair (a <= b). *)
