(** Automatic schedule and format selection (§9's first future-work
    avenue, built on the observation that DISTAL's scheduling primitives
    "provide a mechanism for future work to target when automatically
    scheduling computations for distribution", §7.2).

    The search enumerates, for a statement and a processor count:
    - which index variables to distribute (including reduction variables,
      which induces distributed reductions);
    - how to factor the processors into a machine grid over them;
    - the induced data distributions (each tensor partitioned by the
      distributed variables that index it, fixed to the face of the
      machine dimensions that do not — the generalized-Johnson layout);
    - communication aggregated at the innermost distributed loop, and the
      leaf handed to a substituted kernel when the statement matches one.

    Every candidate is compiled and costed on the simulator; candidates
    that exceed processor memory are kept but ranked last. *)

type candidate = {
  dist_vars : Distal_ir.Ident.t list;
  grid : int array;
  plan : Distal.Api.plan;
  stats : Distal_runtime.Stats.t;
}

val search :
  ?max_dist_vars:int ->
  ?cost:Distal_machine.Cost_model.t ->
  machine_of:(int array -> Distal_machine.Machine.t) ->
  procs:int ->
  stmt:string ->
  shapes:(string * int array) list ->
  unit ->
  (candidate list, string) result
(** Candidates sorted by modeled time (non-OOM first). [machine_of] builds
    the target machine from a grid (so callers control processor kind,
    memory and node grouping). *)

val best :
  ?max_dist_vars:int ->
  ?cost:Distal_machine.Cost_model.t ->
  machine_of:(int array -> Distal_machine.Machine.t) ->
  procs:int ->
  stmt:string ->
  shapes:(string * int array) list ->
  unit ->
  (candidate, string) result

val describe : candidate -> string
