(** The higher-order tensor kernels of §7.2, with the schedules the paper
    reports: communication-free element-wise TTV, node-then-global
    reduction inner product, TTM as independent local matrix multiplies,
    and Ballard et al.'s MTTKRP (3-tensor stationary, factors replicated,
    reduction into the output).

    Sizes are the per-statement global extents; machines are 1-D grids of
    [procs] abstract processors except MTTKRP, which uses a 2-D grid. *)

type t = {
  name : string;
  plan : Distal.Api.plan;
  bandwidth_bound : bool;  (** report GB/s rather than GFLOP/s (§7.2) *)
}

val ttv :
  i:int -> j:int -> k:int -> machine:Distal_machine.Machine.t -> (t, string) result
(** [A(i,j) = B(i,j,k) * c(k)] on a 1-D machine. *)

val innerprod :
  i:int -> j:int -> k:int -> machine:Distal_machine.Machine.t -> (t, string) result
(** [a = B(i,j,k) * C(i,j,k)] on a 1-D machine. *)

val ttm :
  i:int -> j:int -> k:int -> l:int -> machine:Distal_machine.Machine.t ->
  (t, string) result
(** [A(i,j,l) = B(i,j,k) * C(k,l)] on a 1-D machine. *)

val mttkrp :
  i:int -> j:int -> k:int -> l:int -> machine:Distal_machine.Machine.t ->
  (t, string) result
(** [A(i,l) = B(i,j,k) * C(j,l) * D(k,l)] on a 2-D machine. *)
