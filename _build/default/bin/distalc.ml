(* distalc — command-line driver for the DISTAL compiler pipeline (Fig. 3).

   Takes a tensor index notation statement, tensor declarations with
   distributions, a machine grid and a schedule script; prints the
   scheduled concrete index notation and the generated task-IR program;
   optionally validates the plan against the serial reference and prints
   the modeled execution profile.

   Example:

     distalc \
       --machine 2x2 \
       --tensor 'A:8x8:[x,y] -> [x,y]' \
       --tensor 'B:8x8:[x,y] -> [x,y]' \
       --tensor 'C:8x8:[x,y] -> [x,y]' \
       --stmt 'A(i,j) = B(i,k) * C(k,j)' \
       --schedule 'distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]);
                   split(k, ko, ki, 4); reorder(ko, ii, ji, ki);
                   communicate(A, jo); communicate({B,C}, ko);
                   substitute({ii,ji,ki}, gemm)' \
       --validate --estimate *)

module Api = Distal.Api
module Machine = Api.Machine
module Stats = Api.Stats

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let parse_dims s =
  let parts = String.split_on_char 'x' s in
  try Ok (Array.of_list (List.map int_of_string parts))
  with _ -> errf "bad dimension list %S (expected e.g. 2x2)" s

let parse_tensor_decl s =
  match String.split_on_char ':' s with
  | [ name; dims; dist ] ->
      let* shape = if dims = "scalar" then Ok [||] else parse_dims dims in
      let* dist = Distal_ir.Distnot.parse dist in
      Ok (Api.tensor_d name shape dist)
  | _ -> errf "bad tensor declaration %S (expected name:dims:dist)" s

let run_pipeline ~machine_dims ~gpu ~tensors ~stmt ~schedule ~validate ~estimate ~quiet
    ~emit_legion =
  let* machine_dims = parse_dims machine_dims in
  let kind = if gpu then Machine.Gpu else Machine.Cpu in
  let mem = if gpu then 16e9 else 256e9 in
  let machine = Machine.grid ~kind ~mem_per_proc:mem machine_dims in
  let* tensors =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* t = parse_tensor_decl s in
        Ok (t :: acc))
      (Ok []) tensors
  in
  let* problem = Api.problem ~machine ~stmt ~tensors:(List.rev tensors) () in
  let* plan = Api.compile_script problem ~schedule in
  if not quiet then print_endline (Api.describe plan);
  if emit_legion then
    print_endline (Distal_ir.Codegen_legion.emit plan.Api.program);
  let* () =
    if validate then begin
      let* () = Api.validate plan in
      print_endline "validation: OK (distributed result matches serial reference)";
      Ok ()
    end
    else Ok ()
  in
  if estimate then begin
    let s = Api.estimate plan in
    Printf.printf "estimate: %s\n" (Stats.to_string s);
    Printf.printf "estimate: %.2f GFLOP/s across %d processors\n" (Stats.gflops s)
      (Machine.num_procs machine)
  end;
  Ok ()

open Cmdliner

let machine_arg =
  Arg.(value & opt string "1" & info [ "machine"; "m" ] ~docv:"DIMS"
         ~doc:"Machine grid, e.g. 2x2 or 4x4x4.")

let gpu_arg = Arg.(value & flag & info [ "gpu" ] ~doc:"GPU processors (16 GB each).")

let tensor_arg =
  Arg.(value & opt_all string [] & info [ "tensor"; "t" ] ~docv:"DECL"
         ~doc:"Tensor declaration name:dims:distribution, e.g. 'A:8x8:[x,y] -> [x,y]'. \
               Use dims 'scalar' for a 0-d tensor. Repeatable.")

let stmt_arg =
  Arg.(required & opt (some string) None & info [ "stmt"; "s" ] ~docv:"STMT"
         ~doc:"Tensor index notation statement, e.g. 'A(i,j) = B(i,k) * C(k,j)'.")

let schedule_arg =
  Arg.(value & opt string "" & info [ "schedule" ] ~docv:"SCRIPT"
         ~doc:"Schedule script (semicolon-separated commands). Empty compiles the \
               default single-task program.")

let validate_arg =
  Arg.(value & flag & info [ "validate" ]
         ~doc:"Execute on random data and compare against the serial reference.")

let estimate_arg =
  Arg.(value & flag & info [ "estimate" ] ~doc:"Print the modeled execution profile.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Do not print the generated program.")

let emit_legion_arg =
  Arg.(value & flag & info [ "emit-legion" ]
         ~doc:"Print the generated Legion C++ translation unit.")

let cmd =
  let doc = "compile tensor index notation to a distributed task program" in
  let run machine_dims gpu tensors stmt schedule validate estimate quiet emit_legion =
    match
      run_pipeline ~machine_dims ~gpu ~tensors ~stmt ~schedule ~validate ~estimate
        ~quiet ~emit_legion
    with
    | Ok () -> `Ok ()
    | Error e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "distalc" ~doc)
    Term.(
      ret
        (const run $ machine_arg $ gpu_arg $ tensor_arg $ stmt_arg $ schedule_arg
       $ validate_arg $ estimate_arg $ quiet_arg $ emit_legion_arg))

let () = exit (Cmd.eval cmd)
