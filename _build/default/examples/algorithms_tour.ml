(* The matrix-multiplication case studies of §4 / Fig. 9.

   For each algorithm — Cannon (1969), PUMMA (1994), SUMMA (1995),
   Johnson (1995), Solomonik 2.5D (2011) and COSMA (2019) — this prints
   the target machine, the tensor distribution notation for A, B and C,
   and the schedule; validates the compiled plan against a serial
   reference; and reports the modeled execution profile so the
   communication patterns can be compared (broadcast volume vs. the
   systolic shifts enabled by rotate).

   Run with: dune exec examples/algorithms_tour.exe *)

module Api = Distal.Api
module Machine = Api.Machine
module Stats = Api.Stats
module M = Distal_algorithms.Matmul
module Cs = Distal_algorithms.Cosma_scheduler
module S = Api.Schedule

let n = 48

let show (alg : M.t) =
  Printf.printf "--- %s (%d) ---\n" alg.M.name alg.M.year;
  Printf.printf "machine:  %s\n" (Machine.to_string alg.M.plan.Api.problem.Api.machine);
  List.iter (fun (t, d) -> Printf.printf "data:     %s %s\n" t d) alg.M.dists;
  List.iter (fun c -> Printf.printf "schedule: .%s\n" (S.to_string c)) alg.M.schedule;
  (match Api.validate alg.M.plan with
  | Ok () -> print_endline "validate: OK (matches serial reference)"
  | Error e -> Printf.printf "validate: FAILED %s\n" e);
  let s = Api.estimate alg.M.plan in
  Printf.printf
    "model:    %d tasks, %d steps, %d messages, %.0f KB moved, peak %.0f KB/proc\n\n"
    s.Stats.tasks s.Stats.steps s.Stats.messages
    ((s.Stats.bytes_inter +. s.Stats.bytes_intra) /. 1e3)
    (s.Stats.peak_mem /. 1e3)

let () =
  let m2 = Machine.grid [| 2; 2 |] in
  let m3 = Machine.grid [| 2; 2; 2 |] in
  let cosma_machine =
    let d = Cs.find ~procs:8 ~m:n ~n ~k:n ~mem_per_proc:256e9 in
    let g1, g2, g3 = d.Cs.grid in
    Printf.printf
      "COSMA's scheduler decomposes 8 processors for %dx%d as (%d, %d, %d).\n\n" n n g1
      g2 g3;
    Machine.grid [| g1; g2; g3 |]
  in
  List.iter show
    [
      Result.get_ok (M.cannon ~n ~machine:m2);
      Result.get_ok (M.pumma ~n ~machine:m2);
      Result.get_ok (M.summa ~n ~machine:m2 ());
      Result.get_ok (M.johnson ~n ~machine:m3 ());
      Result.get_ok (M.solomonik ~n ~machine:m3);
      Result.get_ok (M.cosma ~n ~machine:cosma_machine ());
    ];
  (* The systolic-vs-broadcast contrast the paper draws (§7.1.2): same
     communication volume, different pattern. *)
  let machine = Machine.grid ~kind:Machine.Gpu ~mem_per_proc:16e9 [| 4; 4 |] in
  let summa = Result.get_ok (M.summa ~n:256 ~machine ()) in
  let cannon = Result.get_ok (M.cannon ~n:256 ~machine) in
  let ts = (Api.estimate summa.M.plan).Stats.time in
  let tc = (Api.estimate cannon.M.plan).Stats.time in
  Printf.printf
    "On a 4x4 grid of GPUs, rotate turns SUMMA's broadcasts into\n\
     nearest-neighbour shifts: modeled time %.2g s -> %.2g s (%.2fx).\n"
    ts tc (ts /. tc)
