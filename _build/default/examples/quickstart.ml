(* Quickstart: the multi-GPU matrix multiply of the paper's Fig. 2.

   A machine is a grid of abstract processors; tensors carry their
   distribution as part of their format; the computation is tensor index
   notation; the schedule maps it onto the machine (SUMMA). We compile,
   print the generated program, execute it on the simulated runtime,
   check the distributed result against a serial reference, and report
   the modeled performance.

   Run with: dune exec examples/quickstart.exe *)

module Api = Distal.Api
module Machine = Api.Machine
module Stats = Api.Stats

let () =
  let n = 64 in
  (* A node's four GPUs in a 2x2 grid — GPU framebuffer memory, NVLink
     between them (Fig. 2's Machine m(Grid(gx, gy)) with GPU_MEM). *)
  let machine =
    Machine.hierarchical ~node_dims:[| 1 |] ~proc_dims:[| 2; 2 |] ~kind:Machine.Gpu
      ~mem_per_proc:16e9
  in
  (* Formats: each matrix is tiled over both machine dimensions
     ("Distribution tiles(m, {0,1}, Memory::GPU_MEM)"); the leading [0]
     pins them to the single node. *)
  let tiled = "[x,y] -> [0]; [x,y] -> [x,y]" in
  let problem =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| n; n |] ~dist:tiled;
          Api.tensor "B" [| n; n |] ~dist:tiled;
          Api.tensor "C" [| n; n |] ~dist:tiled;
        ]
      ()
  in
  (* The schedule of Fig. 2, lines 23-40: tile i and j over the GPUs,
     chunk k, communicate A once per task and B, C per chunk, and hand
     the leaf to an optimized local kernel (CuBLAS::GeMM there, our
     [gemm] here). The node-level machine dimension is divided by 1. *)
  let plan =
    Api.compile_script_exn problem
      ~schedule:
        "divide(i, ino, im, 1); divide(j, jno, jm, 1);\n\
         reorder(ino, jno, im, jm, k);\n\
         distribute(ino, jno);\n\
         divide(im, io, ii, 2); divide(jm, jo, ji, 2);\n\
         reorder(ino, jno, io, jo, ii, ji, k);\n\
         distribute(io, jo);\n\
         split(k, ko, ki, 16);\n\
         reorder(ino, jno, io, jo, ko, ii, ji, ki);\n\
         communicate(A, jo); communicate({B, C}, ko);\n\
         substitute({ii, ji, ki}, gemm)"
  in
  print_endline "Generated program:";
  print_endline (Api.describe plan);
  (match Api.validate plan with
  | Ok () -> print_endline "validation: distributed result matches the serial reference"
  | Error e -> failwith e);
  let stats = Api.estimate plan in
  Printf.printf
    "simulated: %d tasks, %d pipeline steps, %.1f KB moved over NVLink, %.2f GFLOP/s\n"
    stats.Stats.tasks stats.Stats.steps
    (stats.Stats.bytes_intra /. 1e3)
    (Stats.gflops stats)
