(* Data at rest vs. data movement (§1, §8).

   Distributed kernels run inside applications that already chose a data
   layout. Libraries like ScaLAPACK force the application to reorganize
   data into the library's layout; DISTAL instead lets the computation
   shape itself to the data, or makes the redistribution explicit and
   schedulable. This example multiplies matrices whose B is stored
   row-partitioned (as an application might keep it for a preceding
   stencil step, held once per processor row on the row's first
   processor), three ways:

     1. redistribute B into tiles, then run tiled SUMMA;
     2. leave B in rows and run SUMMA against the row layout;
     3. leave B in rows and use a schedule that prefers row-locality.

   Run with: dune exec examples/data_at_rest.exe *)

module Api = Distal.Api
module Machine = Api.Machine
module Stats = Api.Stats

let n = 64
let machine = Machine.grid [| 2; 2 |]

let problem ~db =
  Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
    ~tensors:
      [
        Api.tensor "A" [| n; n |] ~dist:"[x,y] -> [x,y]";
        Api.tensor "B" [| n; n |] ~dist:db;
        Api.tensor "C" [| n; n |] ~dist:"[x,y] -> [x,y]";
      ]
    ()

let summa =
  "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, 16);\n\
   reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko);\n\
   substitute({ii,ji,ki}, gemm)"

let row_friendly =
  (* Communicate B once per task instead of per chunk: with B in rows,
     each processor row already holds the full k extent it needs. *)
  "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, 16);\n\
   reorder(ko, ii, ji, ki); communicate({A,B}, jo); communicate(C, ko);\n\
   substitute({ii,ji,ki}, gemm)"

let show name stats =
  Printf.printf "  %-28s %.0f KB moved, modeled %.3g ms\n" name
    ((stats.Stats.bytes_inter +. stats.Stats.bytes_intra) /. 1e3)
    (stats.Stats.time *. 1e3)

let () =
  Printf.printf "B starts row-partitioned ([x,y] -> [x,0]) on a 2x2 machine, n = %d.\n\n" n;
  (* Option 1: reorganize first (the ScaLAPACK way). *)
  let rows = Api.Distnot.parse_exn "[x,y] -> [x,0]" in
  let tiles = Api.Distnot.parse_exn "[x,y] -> [x,y]" in
  let re = Api.redistribute ~machine ~shape:[| n; n |] ~src:rows ~dst:tiles () in
  let tiled_plan = Api.compile_script_exn (problem ~db:"[x,y] -> [x,y]") ~schedule:summa in
  (match Api.validate tiled_plan with Ok () -> () | Error e -> failwith e);
  let tiled = Api.estimate tiled_plan in
  show "redistribute + tiled SUMMA" (Stats.add re tiled);
  Printf.printf "    (of which redistribution: %.0f KB, %.3g ms)\n"
    ((re.Stats.bytes_inter +. re.Stats.bytes_intra) /. 1e3)
    (re.Stats.time *. 1e3);
  (* Option 2: same schedule, data left in place. *)
  let inplace_plan = Api.compile_script_exn (problem ~db:"[x,y] -> [x,0]") ~schedule:summa in
  (match Api.validate inplace_plan with Ok () -> () | Error e -> failwith e);
  show "SUMMA over rows in place" (Api.estimate inplace_plan);
  (* Option 3: schedule adapted to the layout. *)
  let adapted_plan =
    Api.compile_script_exn (problem ~db:"[x,y] -> [x,0]") ~schedule:row_friendly
  in
  (match Api.validate adapted_plan with Ok () -> () | Error e -> failwith e);
  show "schedule shaped to rows" (Api.estimate adapted_plan);
  print_newline ();
  print_endline "All three compute identical results (validated); only the";
  print_endline "movement of B differs. Separating data distribution from";
  print_endline "computation distribution makes the choice explicit (§8)."
