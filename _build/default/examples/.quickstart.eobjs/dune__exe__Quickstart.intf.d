examples/quickstart.mli:
