examples/algorithms_tour.ml: Distal Distal_algorithms List Printf Result
