examples/quickstart.ml: Distal Printf
