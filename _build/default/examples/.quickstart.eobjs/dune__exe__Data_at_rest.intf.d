examples/data_at_rest.mli:
