examples/tensor_decomposition.mli:
