examples/tensor_decomposition.ml: Distal Distal_algorithms Distal_ir Printf Result
