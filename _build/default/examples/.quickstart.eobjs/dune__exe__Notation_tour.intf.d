examples/notation_tour.mli:
