examples/data_at_rest.ml: Distal Printf
