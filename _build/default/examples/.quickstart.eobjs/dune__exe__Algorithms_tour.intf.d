examples/algorithms_tour.mli:
