examples/notation_tour.ml: Distal Distal_algorithms Distal_ir Distal_runtime Distal_support List Printf Result String
