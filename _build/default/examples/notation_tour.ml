(* A tour of DISTAL's two mapping languages.

   Part 1 walks through tensor distribution notation (§3.2, Fig. 4-5):
   partitioning, fixing and broadcasting, the formal P and F functions of
   the paper's running example, and hierarchical distributions.

   Part 2 walks through computation mapping (§3.3, Fig. 6-8): the
   execution-space view of distribute/communicate and how rotate turns a
   broadcast pattern into a systolic one, on the paper's running example
   forall_i forall_j a(i) += b(j).

   Run with: dune exec examples/notation_tour.exe *)

module Api = Distal.Api
module Machine = Api.Machine
module D = Api.Distnot
module Rect = Api.Rect
module Stats = Api.Stats

let show_tiles label dist shape machine =
  Printf.printf "%-24s (tensor %s on %s)\n" label
    (Distal_support.Ints.to_string shape)
    (Machine.to_string machine);
  List.iter
    (fun (r, owners) ->
      Printf.printf "  tile %-14s -> processors %s\n" (Rect.to_string r)
        (String.concat ", " (List.map Distal_support.Ints.to_string owners)))
    (D.tiles (D.parse_exn dist) ~shape ~machine);
  print_newline ()

let part1 () =
  print_endline "== Part 1: tensor distribution notation (Fig. 5) ==\n";
  let m1 = Machine.grid [| 4 |] in
  let m2 = Machine.grid [| 2; 2 |] in
  let m3 = Machine.grid [| 2; 2; 2 |] in
  show_tiles "rows:    [x,y] -> [x]" "[x,y] -> [x]" [| 8; 8 |] m1;
  show_tiles "columns: [x,y] -> [y]" "[x,y] -> [y]" [| 8; 8 |] m1;
  show_tiles "tiles:   [x,y] -> [x,y]" "[x,y] -> [x,y]" [| 8; 8 |] m2;
  show_tiles "face:    [x,y] -> [x,y,0]" "[x,y] -> [x,y,0]" [| 8; 8 |] m3;
  show_tiles "bcast:   [x,y] -> [x,y,*]" "[x,y] -> [x,y,*]" [| 8; 8 |] m3;
  (* The paper's running example of P and F: T 2x2 onto M 2x2x2. *)
  print_endline "P and F for [x,y] -> [x,y,*] with a 2x2 tensor on a 2x2x2 machine:";
  let lvl = List.hd (D.parse_exn "[x,y] -> [x,y,*]") in
  Distal_support.Ints.iter_box [| 2; 2 |] (fun pt ->
      let color = D.color_of_point lvl ~shape:[| 2; 2 |] ~mdims:[| 2; 2; 2 |] pt in
      let procs = D.procs_of_color lvl ~mdims:[| 2; 2; 2 |] color in
      Printf.printf "  P%s = %s;  F%s = {%s}\n"
        (Distal_support.Ints.to_string pt)
        (Distal_support.Ints.to_string color)
        (Distal_support.Ints.to_string color)
        (String.concat ", " (List.map Distal_support.Ints.to_string procs)));
  print_newline ();
  (* Hierarchy: 2-D tiling over nodes, row split over each node's GPUs. *)
  let mh =
    Machine.hierarchical ~node_dims:[| 2; 2 |] ~proc_dims:[| 2 |] ~kind:Machine.Gpu
      ~mem_per_proc:16e9
  in
  show_tiles "hierarchical" "[x,y] -> [x,y]; [z,w] -> [z]" [| 8; 8 |] mh;
  (* §5.3: lowering a distribution statement to concrete index notation. *)
  print_endline "Lowering T[x,y] -> M[x] to concrete index notation (§5.3):";
  Distal_ir.Ident.reset_fresh_counter ();
  let cin =
    Result.get_ok
      (D.lower_to_cin
         (List.hd (D.parse_exn "[x,y] -> [x]"))
         ~tensor:"T" ~shape:[| 8; 8 |] ~machine:m1)
  in
  Printf.printf "  %s\n\n" (Distal_ir.Cin.to_string cin)

let part2 () =
  print_endline "== Part 2: execution spaces and rotate (Fig. 6-8) ==\n";
  let machine = Machine.grid [| 3 |] in
  let problem schedule =
    let p =
      Api.problem_exn ~machine ~stmt:"a(i) = b(j)"
        ~tensors:
          [
            Api.tensor "a" [| 3 |] ~dist:"[x] -> [x]";
            Api.tensor "b" [| 3 |] ~dist:"[x] -> [x]";
          ]
        ()
    in
    Api.compile_script_exn p ~schedule
  in
  let broadcast = problem "distribute(i); communicate(a, i); communicate(b, j)" in
  let systolic =
    problem "distribute(i); rotate(j, {i}, js); communicate(a, i); communicate(b, js)"
  in
  print_endline "Distributed over i, each processor needs every b(j) (Fig. 7b).";
  print_endline "Without rotate, all processors want the same b(j) at the same";
  print_endline "time - the owner broadcasts (Fig. 8a). With rotate(j, {i}, js),";
  print_endline "processor i starts at j = i and the pattern becomes systolic";
  print_endline "(Fig. 8b): same volume, no broadcasts.\n";
  List.iter
    (fun (name, plan) ->
      (match Api.validate plan with
      | Ok () -> ()
      | Error e -> failwith (name ^ ": " ^ e));
      let s = Api.estimate plan in
      Printf.printf "%-10s %d steps, %d messages, %.0f B moved, modeled %.3g us\n" name
        s.Stats.steps s.Stats.messages
        (s.Stats.bytes_inter +. s.Stats.bytes_intra)
        (s.Stats.time *. 1e6))
    [ ("broadcast", broadcast); ("systolic", systolic) ];
  print_newline ();
  print_endline "Generated program for the systolic version:";
  print_endline (Api.describe systolic);
  (* Fig. 12: the communication pattern of B in Cannon's algorithm on a
     3x3 grid, rendered from the runtime's trace. Each cell shows the tile
     of B the processor received at that step ('.' = already local). *)
  print_endline "== Fig. 12: Cannon's B tiles per step on a 3x3 grid ==\n";
  let machine3 = Machine.grid [| 3; 3 |] in
  let cannon =
    Result.get_ok (Distal_algorithms.Matmul.cannon ~n:9 ~machine:machine3)
  in
  let trace = ref [] in
  let _ =
    Api.run_exn ~trace cannon.Distal_algorithms.Matmul.plan
      ~data:(Api.random_inputs cannon.Distal_algorithms.Matmul.plan)
  in
  print_endline (Distal_runtime.Gantt.grid_view ~machine:machine3 ~tensor:"B" !trace)

let () =
  part1 ();
  part2 ()
