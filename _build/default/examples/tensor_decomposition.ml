(* Tensor decomposition building blocks (§7.2's motivating application).

   The TTM and MTTKRP kernels are the workhorses of Tucker and canonical
   polyadic (CP) tensor decompositions. This example runs one sweep of a
   CP-ALS-like iteration on a distributed 3-tensor: an MTTKRP against the
   current factor matrices for each mode, with the 3-tensor kept in place
   (the algorithm of Ballard et al. the paper implements), plus the TTV
   and inner-product kernels used to evaluate the fit. Every distributed
   result is checked against the serial reference.

   Run with: dune exec examples/tensor_decomposition.exe *)

module Api = Distal.Api
module Machine = Api.Machine
module Stats = Api.Stats
module H = Distal_algorithms.Higher_order

let check name plan =
  match Api.validate plan with
  | Ok () -> Printf.printf "  %-22s OK\n" name
  | Error e -> Printf.printf "  %-22s FAILED: %s\n" name e

let report name plan =
  let s = Api.estimate plan in
  Printf.printf "  %-22s %d tasks, %.0f KB communicated, %.3g ms modeled\n" name
    s.Stats.tasks
    ((s.Stats.bytes_inter +. s.Stats.bytes_intra) /. 1e3)
    (s.Stats.time *. 1e3)

let () =
  let i, j, k, rank = 24, 18, 12, 8 in
  print_endline "One CP-ALS sweep over a distributed 24x18x12 tensor, rank 8,";
  print_endline "on a 2x2 grid of processors (3-tensor stationary, Ballard et al.):\n";
  let machine2 = Machine.grid [| 2; 2 |] in
  (* Mode-1 MTTKRP: A1(i,r) = X(i,j,k) * C2(j,r) * C3(k,r). *)
  let mode1 = Result.get_ok (H.mttkrp ~i ~j ~k ~l:rank ~machine:machine2) in
  check "mode-1 mttkrp" mode1.H.plan;
  report "mode-1 mttkrp" mode1.H.plan;
  (* Mode-2: the 3-tensor is accessed with j leading. DISTAL compiles the
     bespoke statement directly instead of transposing the data. *)
  let mode2_problem =
    Api.problem_exn ~machine:machine2 ~stmt:"A(j,l) = B(j,i,k) * C(i,l) * D(k,l)"
      ~tensors:
        [
          Api.tensor "A" [| j; rank |] ~dist:"[x,y] -> [x,*]";
          Api.tensor "B" [| j; i; k |] ~dist:"[x,y,z] -> [x,y]";
          Api.tensor "C" [| i; rank |] ~dist:"[x,y] -> [*,x]";
          Api.tensor "D" [| k; rank |] ~dist:"[x,y] -> [*,*]";
        ]
      ()
  in
  let mode2 =
    Api.compile_script_exn mode2_problem
      ~schedule:
        "distribute_onto({j,i}, {jo,io}, {ji,ii}, [2,2]);\n\
         communicate({A,B,C,D}, io); substitute({ji,ii,k,l}, mttkrp)"
  in
  check "mode-2 mttkrp" mode2;
  report "mode-2 mttkrp" mode2;
  (* Fit evaluation pieces: norm of X via inner product, and a TTV
     contraction against the first factor column. *)
  let machine1 = Machine.grid [| 4 |] in
  let norm = Result.get_ok (H.innerprod ~i ~j ~k ~machine:machine1) in
  check "norm (innerprod)" norm.H.plan;
  report "norm (innerprod)" norm.H.plan;
  let ttv = Result.get_ok (H.ttv ~i ~j ~k ~machine:machine1) in
  check "fit term (ttv)" ttv.H.plan;
  report "fit term (ttv)" ttv.H.plan;
  (* A Tucker-style mode product for comparison: TTM against a rank-8
     factor. *)
  let ttm = Result.get_ok (H.ttm ~i ~j ~k ~l:rank ~machine:machine1) in
  check "tucker ttm" ttm.H.plan;
  report "tucker ttm" ttm.H.plan;
  print_newline ();
  (* Fused vs workspace: the precompute command can materialize the
     Khatri-Rao product in a workspace (CTF's strategy, §7.2 / §8) as a
     two-stage pipeline; both must agree with the serial reference, and
     the profile shows what the materialization costs. *)
  print_endline "Fused MTTKRP vs precomputed Khatri-Rao workspace:";
  let stmt =
    Distal_ir.Einsum_parser.parse_exn "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)"
  in
  let ws, rewritten =
    Result.get_ok (Distal_ir.Precompute.split stmt ~factors:[ "C"; "D" ] ~workspace:"W")
  in
  let shapes =
    [ ("A", [| i; rank |]); ("B", [| i; j; k |]); ("C", [| j; rank |]);
      ("D", [| k; rank |]) ]
  in
  let wshape = Distal_ir.Precompute.workspace_shape stmt ~shapes ~workspace_stmt:ws in
  let pl =
    Result.get_ok
      (Api.pipeline_script ~machine:machine2
         ~tensors:
           [
             Api.tensor "A" [| i; rank |] ~dist:"[x,y] -> [x,*]";
             Api.tensor "B" [| i; j; k |] ~dist:"[x,y,z] -> [x,y]";
             Api.tensor "C" [| j; rank |] ~dist:"[x,y] -> [*,*]";
             Api.tensor "D" [| k; rank |] ~dist:"[x,y] -> [*,*]";
             Api.tensor "W" wshape ~dist:"[x,y,z] -> [*,*]";
           ]
         ~stages:
           [
             ( Distal_ir.Expr.to_string ws,
               "divide(j, jo, ji, 2); distribute(jo); communicate({W,C,D}, jo)" );
             ( Distal_ir.Expr.to_string rewritten,
               "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); communicate({A,B,W}, jo)"
             );
           ])
  in
  (match Api.validate_pipeline pl with
  | Ok () -> print_endline "  workspace pipeline      OK (same values as fused)"
  | Error e -> Printf.printf "  workspace pipeline      FAILED: %s\n" e);
  let sp = Api.estimate_pipeline pl in
  Printf.printf "  workspace pipeline      %.0f KB communicated, %.3g ms modeled\n"
    ((sp.Stats.bytes_inter +. sp.Stats.bytes_intra) /. 1e3)
    (sp.Stats.time *. 1e3);
  let sf = Api.estimate mode1.H.plan in
  Printf.printf "  fused mttkrp            %.0f KB communicated, %.3g ms modeled\n"
    ((sf.Stats.bytes_inter +. sf.Stats.bytes_intra) /. 1e3)
    (sf.Stats.time *. 1e3);
  print_newline ();
  print_endline "All kernels compiled from tensor index notation with bespoke";
  print_endline "schedules; no kernel was cast to distributed matrix multiplies";
  print_endline "(the CTF strategy the paper compares against, §7.2)."
