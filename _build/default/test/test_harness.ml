(* Shape regression tests for the reproduced evaluation: the qualitative
   claims of §7 (who wins, where the crossovers and OOMs fall) are pinned
   here so model changes cannot silently break the reproduction. Small
   node lists keep these fast; EXPERIMENTS.md records the full sweeps. *)

module Fig15 = Distal_harness.Fig15
module Fig16 = Distal_harness.Fig16
module Figure = Distal_harness.Figure
module Headline = Distal_harness.Headline

let value fig name nodes =
  match Figure.cell fig ~series_name:name ~nodes with
  | Figure.Value v -> v
  | Figure.Oom -> Alcotest.failf "%s@%d unexpectedly OOM" name nodes
  | Figure.Unavailable -> Alcotest.failf "%s@%d unavailable" name nodes

let is_oom fig name nodes = Figure.cell fig ~series_name:name ~nodes = Figure.Oom

let ge name a b = Alcotest.(check bool) name true (a >= b)

(* Small problem sizes: the model is scale-free enough for shapes. *)
let fig15a = lazy (Fig15.cpu ~nodes:[ 1; 16; 64 ] ~base_n:2048 ())
let fig15b = lazy (Fig15.gpu ~nodes:[ 1; 16; 64 ] ~base_n:20000 ())

let test_cpu_distal_close_to_cosma () =
  let f = Lazy.force fig15a in
  List.iter
    (fun nd ->
      let ours = value f "our-summa" nd and cosma = value f "cosma" nd in
      ge (Printf.sprintf "within 15%% at %d nodes" nd) ours (0.85 *. cosma);
      ge "cosma ahead" cosma ours)
    [ 1; 16; 64 ]

let test_cpu_restricted_cosma_equals_distal () =
  let f = Lazy.force fig15a in
  let r = value f "cosma-restricted" 16 and ours = value f "our-summa" 16 in
  Alcotest.(check bool) "equal within 2%" true (abs_float (r -. ours) /. ours < 0.02)

let test_cpu_baselines_below_distal () =
  let f = Lazy.force fig15a in
  List.iter
    (fun name ->
      ge (name ^ " below DISTAL at 64") (value f "our-summa" 64) (value f name 64);
      ge (name ^ " above 60% of DISTAL") (value f name 64)
        (0.6 *. value f "our-summa" 64))
    [ "ctf"; "scalapack" ]

let test_gpu_single_node_2x_cosma () =
  let f = Lazy.force fig15b in
  let ours = value f "our-summa" 1 and cosma = value f "cosma" 1 in
  Alcotest.(check bool) "~2x at one node" true (ours > 1.8 *. cosma && ours < 2.2 *. cosma)

let test_gpu_cosma_wins_at_scale () =
  let f = Lazy.force fig15b in
  let best =
    List.fold_left max 0.0
      (List.map (fun s -> value f s 64) [ "our-summa"; "our-cannon"; "our-pumma" ])
  in
  ge "cosma ahead at 64 nodes" (value f "cosma" 64) best

let test_gpu_systolic_ordering () =
  let f = Lazy.force fig15b in
  ge "cannon >= pumma at 64" (value f "our-cannon" 64) (value f "our-pumma" 64);
  ge "pumma >= summa at 64" (value f "our-pumma" 64) (value f "our-summa" 64)

let test_gpu_3d_oom_at_scale () =
  let f = Lazy.force fig15b in
  Alcotest.(check bool) "johnson oom at 64 nodes" true (is_oom f "our-johnson" 64);
  Alcotest.(check bool) "our cosma oom at 64 nodes" true (is_oom f "our-cosma" 64);
  Alcotest.(check bool) "authors' cosma never oom (CPU memory)" false
    (is_oom f "cosma" 64)

let fig16_nodes = [ 1; 16 ]

let test_ttv_shapes () =
  let f = Fig16.ttv ~nodes:fig16_nodes () in
  (* DISTAL flat (no communication); CTF drops past one node. *)
  let d1 = value f "distal-cpu" 1 and d16 = value f "distal-cpu" 16 in
  Alcotest.(check bool) "distal flat" true (abs_float (d1 -. d16) /. d1 < 0.05);
  ge "ctf drops" (value f "ctf-cpu" 1) (1.5 *. value f "ctf-cpu" 16);
  ge "distal above ctf" d1 (value f "ctf-cpu" 1)

let test_innerprod_shapes () =
  let f = Fig16.innerprod ~nodes:fig16_nodes () in
  let c1 = value f "ctf-cpu" 1 and c16 = value f "ctf-cpu" 16 in
  Alcotest.(check bool) "ctf flat" true (abs_float (c1 -. c16) /. c1 < 0.05);
  ge "distal 2x ctf" (value f "distal-cpu" 16) (1.8 *. c16)

let test_ttm_shapes () =
  let f = Fig16.ttm ~nodes:fig16_nodes () in
  let d1 = value f "distal-cpu" 1 and d16 = value f "distal-cpu" 16 in
  Alcotest.(check bool) "distal flat" true (abs_float (d1 -. d16) /. d1 < 0.05);
  ge "ctf collapses" (value f "ctf-cpu" 1) (2.0 *. value f "ctf-cpu" 16)

let test_mttkrp_shapes () =
  let f = Fig16.mttkrp ~nodes:fig16_nodes () in
  let c1 = value f "ctf-cpu" 1 and c16 = value f "ctf-cpu" 16 in
  Alcotest.(check bool) "ctf flat but slow" true (abs_float (c1 -. c16) /. c1 < 0.15);
  ge "distal above ctf at 16" (value f "distal-cpu" 16) (1.5 *. c16)

let test_headline_rows () =
  let f15 = Lazy.force fig15a in
  let f16 =
    ( Fig16.ttv ~nodes:fig16_nodes (),
      Fig16.innerprod ~nodes:fig16_nodes (),
      Fig16.ttm ~nodes:fig16_nodes (),
      Fig16.mttkrp ~nodes:fig16_nodes () )
  in
  let rows = Headline.compute ~fig15a:f15 ~fig16:f16 ~nodes:16 in
  Alcotest.(check int) "seven comparisons" 7 (List.length rows);
  List.iter
    (fun (r : Headline.row) ->
      Alcotest.(check bool) (r.comparison ^ " finite") true
        (Float.is_finite r.measured && r.measured > 0.0))
    rows

let test_weak_n () =
  Alcotest.(check int) "base" 8192 (Fig15.weak_n ~base:8192 ~nodes:1);
  Alcotest.(check int) "x4 nodes doubles n" 16384 (Fig15.weak_n ~base:8192 ~nodes:4);
  Alcotest.(check bool) "multiple of 16" true (Fig15.weak_n ~base:8192 ~nodes:2 mod 16 = 0)

let test_figure_printing () =
  let f = Fig16.ttv ~nodes:[ 1 ] ~base_i:16 ~jk:16 () in
  Alcotest.(check string) "cell format" "OOM" (Figure.cell_to_string Figure.Oom);
  Alcotest.(check string) "dash" "-" (Figure.cell_to_string Figure.Unavailable);
  Alcotest.(check bool) "value present" true
    (match Figure.cell f ~series_name:"distal-cpu" ~nodes:1 with
    | Figure.Value _ -> true
    | _ -> false)

let test_csv_export () =
  let f = Fig16.ttv ~nodes:[ 1; 2 ] ~base_i:16 ~jk:16 () in
  let csv = Figure.to_csv f in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "nodes,distal-cpu,distal-gpu,ctf-cpu" (List.hd lines);
  let dir = Filename.temp_file "distal" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Figure.save_csv ~dir f in
  Alcotest.(check bool) "file written" true (Sys.file_exists path);
  Sys.remove path;
  Sys.rmdir dir

let test_strong_scaling_shapes () =
  let module Machine = Distal_machine.Machine in
  let f = Distal_harness.Strong.gemm ~nodes:[ 1; 4; 64 ] ~kind:Machine.Cpu () in
  (* CPU strong scaling is near-linear while compute dominates. *)
  let s64 = Figure.value_exn f ~series_name:"summa" ~nodes:64 in
  Alcotest.(check bool) "near-linear on CPUs" true (s64 > 40.0);
  let g = Distal_harness.Strong.gemm ~nodes:[ 1; 4; 64 ] ~kind:Machine.Gpu () in
  let gs = Figure.value_exn g ~series_name:"summa" ~nodes:64 in
  Alcotest.(check bool) "communication wall on GPUs" true (gs < 32.0)

let suites =
  [
    ( "harness shapes",
      [
        Alcotest.test_case "cpu distal ~cosma" `Quick test_cpu_distal_close_to_cosma;
        Alcotest.test_case "cpu restricted cosma" `Quick test_cpu_restricted_cosma_equals_distal;
        Alcotest.test_case "cpu baselines below" `Quick test_cpu_baselines_below_distal;
        Alcotest.test_case "gpu 2x at one node" `Quick test_gpu_single_node_2x_cosma;
        Alcotest.test_case "gpu cosma at scale" `Quick test_gpu_cosma_wins_at_scale;
        Alcotest.test_case "gpu systolic ordering" `Quick test_gpu_systolic_ordering;
        Alcotest.test_case "gpu 3d oom" `Quick test_gpu_3d_oom_at_scale;
        Alcotest.test_case "ttv shapes" `Quick test_ttv_shapes;
        Alcotest.test_case "innerprod shapes" `Quick test_innerprod_shapes;
        Alcotest.test_case "ttm shapes" `Quick test_ttm_shapes;
        Alcotest.test_case "mttkrp shapes" `Quick test_mttkrp_shapes;
        Alcotest.test_case "headline rows" `Quick test_headline_rows;
        Alcotest.test_case "weak_n" `Quick test_weak_n;
        Alcotest.test_case "figure printing" `Quick test_figure_printing;
        Alcotest.test_case "csv export" `Quick test_csv_export;
        Alcotest.test_case "strong scaling shapes" `Quick test_strong_scaling_shapes;
      ] );
  ]
