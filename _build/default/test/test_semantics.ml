(* End-to-end checks that schedules only affect performance, never results
   (§3.3): every distributed execution is compared against the serial
   reference interpreter. *)

module Api = Distal.Api
module Machine = Api.Machine
module S = Api.Schedule

let validate_or_fail plan =
  match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e

let gemm_problem ~machine ~n ~dists =
  let a, b, c = dists in
  Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
    ~tensors:
      [
        Api.tensor "A" [| n; n |] ~dist:a;
        Api.tensor "B" [| n; n |] ~dist:b;
        Api.tensor "C" [| n; n |] ~dist:c;
      ] ()

let tiled = ("[x,y] -> [x,y]", "[x,y] -> [x,y]", "[x,y] -> [x,y]")

let test_cannon () =
  (* Fig. 9 row 1 on a 3x3 grid with uneven tiles (n=10). *)
  let machine = Machine.grid [| 3; 3 |] in
  let p = gemm_problem ~machine ~n:10 ~dists:tiled in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "distribute_onto({i,j}, {io,jo}, {ii,ji}, [3,3]);\n\
         divide(k, ko, ki, 3); reorder(ko, ii, ji, ki);\n\
         rotate(ko, {io,jo}, kos);\n\
         communicate(A, jo); communicate({B,C}, kos);\n\
         substitute({ii,ji,ki}, gemm)"
  in
  validate_or_fail plan

let test_pumma () =
  let machine = Machine.grid [| 2; 2 |] in
  let p = gemm_problem ~machine ~n:8 ~dists:tiled in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]);\n\
         divide(k, ko, ki, 2); reorder(ko, ii, ji, ki);\n\
         rotate(ko, {io}, kos);\n\
         communicate(A, jo); communicate({B,C}, kos);\n\
         substitute({ii,ji,ki}, gemm)"
  in
  validate_or_fail plan

let test_johnson () =
  (* 3-D algorithm on a 2x2x2 cube: inputs fixed to faces, distributed
     reduction into A. *)
  let machine = Machine.grid [| 2; 2; 2 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| 8; 8 |] ~dist:"[x,y] -> [x,y,0]";
          Api.tensor "B" [| 8; 8 |] ~dist:"[x,z] -> [x,0,z]";
          Api.tensor "C" [| 8; 8 |] ~dist:"[z,y] -> [0,y,z]";
        ] ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "distribute_onto({i,j,k}, {io,jo,ko}, {ii,ji,ki}, [2,2,2]);\n\
         communicate({A,B,C}, ko); substitute({ii,ji,ki}, gemm)"
  in
  validate_or_fail plan

let test_summa_rectangular_grid () =
  let machine = Machine.grid [| 2; 4 |] in
  let p = gemm_problem ~machine ~n:8 ~dists:tiled in
  (* Distributions use the machine's own grid; schedule must agree. *)
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,4]); split(k, ko, ki, 4);\n\
         reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko);\n\
         substitute({ii,ji,ki}, gemm)"
  in
  validate_or_fail plan

let test_summa_scalar_leaf () =
  (* Same SUMMA schedule without substitute: the interpreted scalar leaf
     must agree with the substituted kernel. *)
  let machine = Machine.grid [| 2; 2 |] in
  let p = gemm_problem ~machine ~n:6 ~dists:tiled in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, 3);\n\
         reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko)"
  in
  validate_or_fail plan

let test_mismatched_data_distribution () =
  (* Computation tiled 2x2 but B stored by rows: still correct, just more
     communication ("code can shape to data", §8). *)
  let machine = Machine.grid [| 2; 2 |] in
  let p =
    gemm_problem ~machine ~n:8
      ~dists:("[x,y] -> [x,y]", "[x,y] -> [x,*]", "[x,y] -> [x,y]")
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, 4);\n\
         reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko);\n\
         substitute({ii,ji,ki}, gemm)"
  in
  validate_or_fail plan

let test_running_example_rotate () =
  (* §3.3's running example forall_i forall_j a(i) += b(j), distributed
     over i, with and without rotate (Fig. 8). *)
  let machine = Machine.grid [| 3 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"a(i) = b(j)"
      ~tensors:
        [
          Api.tensor "a" [| 3 |] ~dist:"[x] -> [x]";
          Api.tensor "b" [| 3 |] ~dist:"[x] -> [x]";
        ] ()
  in
  let broadcast = Api.compile_script_exn p ~schedule:"distribute(i); communicate(a, i); communicate(b, j)" in
  validate_or_fail broadcast;
  let systolic =
    Api.compile_script_exn p
      ~schedule:"distribute(i); rotate(j, {i}, js); communicate(a, i); communicate(b, js)"
  in
  validate_or_fail systolic;
  (* The rotated version must avoid the broadcast: same bytes, but no step
     has one owner serving several receivers. *)
  let sb = Api.estimate broadcast and ss = Api.estimate systolic in
  Alcotest.(check bool) "same volume" true
    (abs_float (sb.Api.Stats.bytes_inter -. ss.Api.Stats.bytes_inter) < 1.0);
  Alcotest.(check bool) "systolic no slower" true
    (ss.Api.Stats.time <= sb.Api.Stats.time +. 1e-12)

let test_ttm_distributed () =
  let machine = Machine.grid [| 4 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j,l) = B(i,j,k) * C(k,l)"
      ~tensors:
        [
          Api.tensor "A" [| 8; 3; 5 |] ~dist:"[x,y,z] -> [x]";
          Api.tensor "B" [| 8; 3; 4 |] ~dist:"[x,y,z] -> [x]";
          Api.tensor "C" [| 4; 5 |] ~dist:"[x,y] -> [*]";
        ] ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "divide(i, io, ii, 4); distribute(io); communicate({A,B,C}, io);\n\
         substitute({ii,j,k,l}, ttm)"
  in
  validate_or_fail plan;
  Alcotest.(check (float 0.0)) "no communication" 0.0
    (let s = Api.estimate plan in
     s.Api.Stats.bytes_inter +. s.Api.Stats.bytes_intra)

let test_mttkrp_ballard () =
  (* Ballard et al.: keep the 3-tensor in place, replicate the factors,
     reduce into the output. *)
  let machine = Machine.grid [| 2; 2 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,l) = B(i,j,k) * C(j,l) * D(k,l)"
      ~tensors:
        [
          Api.tensor "A" [| 8; 4 |] ~dist:"[x,y] -> [x,*]";
          Api.tensor "B" [| 8; 6; 6 |] ~dist:"[x,y,z] -> [x,y]";
          Api.tensor "C" [| 6; 4 |] ~dist:"[x,y] -> [*,x]";
          Api.tensor "D" [| 6; 4 |] ~dist:"[x,y] -> [*,*]";
        ] ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]);\n\
         communicate({A,B,C,D}, jo); substitute({ii,ji,k,l}, mttkrp)"
  in
  validate_or_fail plan

let test_accumulate_statement () =
  let machine = Machine.grid [| 2; 2 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) += B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| 6; 6 |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "B" [| 6; 6 |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "C" [| 6; 6 |] ~dist:"[x,y] -> [x,y]";
        ] ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, 3);\n\
         reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko);\n\
         substitute({ii,ji,ki}, gemm)"
  in
  validate_or_fail plan

let test_elementwise_add () =
  let machine = Machine.grid [| 3 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,j) + C(i,j) + 1"
      ~tensors:
        [
          Api.tensor "A" [| 7; 4 |] ~dist:"[x,y] -> [x]";
          Api.tensor "B" [| 7; 4 |] ~dist:"[x,y] -> [x]";
          Api.tensor "C" [| 7; 4 |] ~dist:"[x,y] -> [x]";
        ] ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:"divide(i, io, ii, 3); distribute(io); communicate({A,B,C}, io)"
  in
  validate_or_fail plan

let test_hierarchical_machine_gemm () =
  (* Node grid 2x2, 2 GPUs per node; hierarchical distribution and a
     two-level distribute. *)
  let machine =
    Machine.hierarchical ~node_dims:[| 2; 2 |] ~proc_dims:[| 2 |] ~kind:Machine.Gpu
      ~mem_per_proc:16e9
  in
  let d2 = "[x,y] -> [x,y]; [z,w] -> [z]" in
  let p = gemm_problem ~machine ~n:8 ~dists:(d2, d2, d2) in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "distribute_onto({i,j}, {io,jo}, {im,ji}, [2,2]);\n\
         divide(im, ig, ii, 2); reorder(io, jo, ig, ii, ji, k); distribute(ig);\n\
         communicate({A,B,C}, ig); substitute({ii,ji,k}, gemm)"
  in
  validate_or_fail plan

(* Property: random small gemm-like schedules all agree with the serial
   reference. *)
let qcheck_random_schedules =
  QCheck.Test.make ~name:"random schedules preserve semantics" ~count:40
    QCheck.(
      quad (int_range 1 3) (int_range 1 3) (int_range 1 4) (int_range 1 8))
    (fun (gx, gy, chunk, seed) ->
      let n = 4 + (seed mod 5) in
      let machine = Machine.grid [| gx; gy |] in
      let p = gemm_problem ~machine ~n ~dists:tiled in
      let schedule =
        [
          S.Distribute_onto
            {
              targets = [ "i"; "j" ];
              dist = [ "io"; "jo" ];
              local = [ "ii"; "ji" ];
              grid = [| gx; gy |];
            };
          S.Split ("k", "ko", "ki", chunk);
          S.Reorder [ "ko"; "ii"; "ji"; "ki" ];
          S.Communicate ([ "A" ], "jo");
          S.Communicate ([ "B"; "C" ], "ko");
        ]
      in
      let plan = Api.compile_exn p ~schedule in
      Result.is_ok (Api.validate ~seed plan))

let qcheck_rotate_preserves =
  QCheck.Test.make ~name:"rotate preserves semantics" ~count:20
    QCheck.(pair (int_range 1 3) (int_range 1 20))
    (fun (g, seed) ->
      let n = 4 + (seed mod 4) in
      let machine = Machine.grid [| g; g |] in
      let p = gemm_problem ~machine ~n ~dists:tiled in
      let plan =
        Api.compile_script_exn p
          ~schedule:
            (Printf.sprintf
               "distribute_onto({i,j}, {io,jo}, {ii,ji}, [%d,%d]);\n\
                divide(k, ko, ki, %d); reorder(ko, ii, ji, ki);\n\
                rotate(ko, {io,jo}, kos); communicate(A, jo);\n\
                communicate({B,C}, kos); substitute({ii,ji,ki}, gemm)"
               g g g)
      in
      Result.is_ok (Api.validate ~seed plan))

let suites =
  [
    ( "semantics",
      [
        Alcotest.test_case "cannon 3x3 uneven" `Quick test_cannon;
        Alcotest.test_case "pumma" `Quick test_pumma;
        Alcotest.test_case "johnson 3d" `Quick test_johnson;
        Alcotest.test_case "summa rectangular" `Quick test_summa_rectangular_grid;
        Alcotest.test_case "summa scalar leaf" `Quick test_summa_scalar_leaf;
        Alcotest.test_case "mismatched distribution" `Quick test_mismatched_data_distribution;
        Alcotest.test_case "rotate running example" `Quick test_running_example_rotate;
        Alcotest.test_case "ttm distributed" `Quick test_ttm_distributed;
        Alcotest.test_case "mttkrp ballard" `Quick test_mttkrp_ballard;
        Alcotest.test_case "accumulate" `Quick test_accumulate_statement;
        Alcotest.test_case "elementwise add" `Quick test_elementwise_add;
        Alcotest.test_case "hierarchical machine" `Quick test_hierarchical_machine_gemm;
        QCheck_alcotest.to_alcotest qcheck_random_schedules;
        QCheck_alcotest.to_alcotest qcheck_rotate_preserves;
      ] );
  ]
