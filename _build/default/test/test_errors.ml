(* Error-path coverage: every user-facing entry point must reject invalid
   input with a Result error (never an exception or a wrong answer). *)

module Api = Distal.Api
module Machine = Api.Machine
module S = Api.Schedule

let machine = Machine.grid [| 2; 2 |]

let tensors =
  [
    Api.tensor "A" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
    Api.tensor "B" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
    Api.tensor "C" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
  ]

let gemm = "A(i,j) = B(i,k) * C(k,j)"

let expect_problem_error ?(tensors = tensors) stmt name =
  match Api.problem ~machine ~stmt ~tensors () with
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error e -> Alcotest.(check bool) (name ^ " has message") true (String.length e > 0)

let test_problem_errors () =
  expect_problem_error "A(i,j) = " "truncated statement";
  expect_problem_error "A(i,j) = Z(i,j)" "undeclared tensor";
  expect_problem_error "A(i,j,k) = B(i,k) * C(k,j)" "arity mismatch";
  (* conflicting extents need unequal shapes: *)
  (match
     Api.problem ~machine ~stmt:"A(i,j) = B(j,i)"
       ~tensors:
         [
           Api.tensor "A" [| 8; 4 |] ~dist:"[x,y] -> [x,y]";
           Api.tensor "B" [| 8; 4 |] ~dist:"[x,y] -> [x,y]";
         ]
       ()
   with
  | Ok _ -> Alcotest.fail "transposed extents must conflict"
  | Error _ -> ());
  match
    Api.problem ~machine ~stmt:gemm
      ~tensors:
        [
          Api.tensor "A" [| 8; 8 |] ~dist:"[x,y] -> [x]" (* machine is 2-D *);
          Api.tensor "B" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "C" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
        ]
      ()
  with
  | Ok _ -> Alcotest.fail "distribution/machine dimensionality mismatch"
  | Error _ -> ()

let compile_err schedule name =
  let p = Api.problem_exn ~machine ~stmt:gemm ~tensors () in
  match Api.compile_script p ~schedule with
  | Ok _ -> Alcotest.failf "%s: expected a compile error" name
  | Error e -> Alcotest.(check bool) (name ^ " has message") true (String.length e > 0)

let test_compile_errors () =
  compile_err "divide(q, qo, qi, 2)" "unknown variable";
  compile_err "divide(i, io, ii, 0)" "non-positive divisor";
  compile_err "divide(i, io, ii, 2); divide(i, a, b, 2)" "re-dividing a consumed variable";
  compile_err "distribute(j)" "distributed loop below sequential i";
  compile_err "communicate(A, i); communicate(A, j)" "two communicate points for A";
  compile_err "substitute({i,j,k}, ttv)" "wrong kernel pattern";
  compile_err "substitute({i,j}, gemm)" "not the innermost loops";
  compile_err "rotate(i, {k}, is)" "rotate by a non-enclosing loop";
  compile_err "collapse(i, k, f)" "collapse of non-adjacent loops";
  compile_err
    "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); substitute({ii,ji,k}, gemm);\n\
     communicate(B, k)"
    "communicate inside a substituted leaf"

let test_run_errors () =
  let p = Api.problem_exn ~machine ~stmt:gemm ~tensors () in
  let plan =
    Api.compile_script_exn p
      ~schedule:"distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2])"
  in
  (match Api.run plan ~data:[] with
  | Ok _ -> Alcotest.fail "missing input data must be rejected"
  | Error _ -> ());
  (* Model mode needs no data. *)
  match Api.run ~mode:Api.Exec.Model plan ~data:[] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_distribution_parse_errors () =
  List.iter
    (fun s ->
      match Api.Distnot.parse s with
      | Ok _ -> Alcotest.failf "expected %S to fail" s
      | Error _ -> ())
    [ ""; "[x,y]"; "[x,y] ->"; "[x,y] -> [x y]"; "[x;y] -> [x]" ]

let test_validate_catches_bad_distribution_pairing () =
  (* A distribution that is valid for the machine but places B's tiles
     differently than the schedule assumes must still compute correctly —
     the runtime fetches from wherever the data is. This guards against
     the executor taking locality shortcuts. *)
  let p =
    Api.problem_exn ~machine ~stmt:gemm
      ~tensors:
        [
          Api.tensor "A" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "B" [| 8; 8 |] ~dist:"[x,y] -> [y,x]" (* transposed placement *);
          Api.tensor "C" [| 8; 8 |] ~dist:"[x,y] -> [0,0]" (* all on one proc *);
        ]
      ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, 4);\n\
         reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko);\n\
         substitute({ii,ji,ki}, gemm)"
  in
  match Api.validate plan with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_pipeline_errors () =
  (match
     Api.pipeline_script ~machine ~tensors
       ~stages:[ (gemm, "divide(i, io, ii, 0)") ]
   with
  | Ok _ -> Alcotest.fail "bad stage schedule must be rejected"
  | Error _ -> ());
  match Api.pipeline_script ~machine ~tensors ~stages:[ ("A(i,j) = ", "") ] with
  | Ok _ -> Alcotest.fail "bad stage statement must be rejected"
  | Error _ -> ()

let suites =
  [
    ( "error paths",
      [
        Alcotest.test_case "problem errors" `Quick test_problem_errors;
        Alcotest.test_case "compile errors" `Quick test_compile_errors;
        Alcotest.test_case "run errors" `Quick test_run_errors;
        Alcotest.test_case "distribution parse errors" `Quick test_distribution_parse_errors;
        Alcotest.test_case "adversarial distributions" `Quick
          test_validate_catches_bad_distribution_pairing;
        Alcotest.test_case "pipeline errors" `Quick test_pipeline_errors;
      ] );
  ]
