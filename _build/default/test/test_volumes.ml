(* Analytic cross-checks of the simulator's communication accounting: for
   the classic algorithms the total volume moved has a closed form, and
   the event simulation must reproduce it exactly. *)

module Api = Distal.Api
module Machine = Api.Machine
module Stats = Api.Stats
module M = Distal_algorithms.Matmul

let total (s : Stats.t) = s.Stats.bytes_inter +. s.Stats.bytes_intra

let check_close name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.0f, got %.0f" name expected actual)
    true
    (abs_float (expected -. actual) <= 1e-6 *. (1.0 +. expected))

(* SUMMA on a g x g grid of an n x n problem: every processor receives
   its whole row-block of B ((n/g) x n elements) and column-block of C,
   minus the locally owned 1/g of each. Summed over the g^2 processors:
   2 * 8 * n^2 * (g-1). *)
let test_summa_volume () =
  List.iter
    (fun (g, n) ->
      let machine = Machine.grid [| g; g |] in
      let alg = Result.get_ok (M.summa ~n ~machine ()) in
      let s = Api.estimate alg.M.plan in
      let gf = float_of_int g and nf = float_of_int n in
      check_close
        (Printf.sprintf "summa %dx%d n=%d" g g n)
        (2.0 *. 8.0 *. nf *. nf *. (gf -. 1.0))
        (total s))
    [ (2, 8); (2, 16); (4, 16); (3, 9) ]

(* Cannon moves exactly the same total volume as SUMMA (each processor
   still sees its whole row of B and column of C), just in a different
   pattern. *)
let test_cannon_volume_equals_summa () =
  let machine = Machine.grid [| 4; 4 |] in
  let summa = Result.get_ok (M.summa ~n:16 ~machine ()) in
  let cannon = Result.get_ok (M.cannon ~n:16 ~machine) in
  check_close "cannon = summa volume"
    (total (Api.estimate summa.M.plan))
    (total (Api.estimate cannon.M.plan))

(* Johnson on a g^3 cube: B and C tiles are broadcast from their faces to
   the g-1 other layers, and A partials reduce g-fold. Input volume:
   each of the g^3 tasks fetches one B tile (n/g x n/g) and one C tile,
   except the g^2 face-resident owners of each. Reduction volume:
   (g-1) * n^2 elements of A partials. *)
let test_johnson_volume () =
  let g = 2 and n = 8 in
  let machine = Machine.grid [| g; g; g |] in
  let alg = Result.get_ok (M.johnson ~n ~machine ()) in
  let s = Api.estimate alg.M.plan in
  let gf = float_of_int g and nf = float_of_int n in
  let tile = nf *. nf /. (gf *. gf) in
  let inputs = 2.0 *. 8.0 *. tile *. ((gf *. gf *. gf) -. (gf *. gf)) in
  let reduction = 8.0 *. nf *. nf *. (gf -. 1.0) in
  check_close "johnson volume" (inputs +. reduction) (total s)

(* A fully replicated input never moves; a fully local schedule moves
   nothing at all (already covered for TTV/TTM; pinned here for the
   element-wise case). *)
let test_elementwise_zero_volume () =
  let machine = Machine.grid [| 4 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,j) + C(i,j)"
      ~tensors:
        [
          Api.tensor "A" [| 8; 8 |] ~dist:"[x,y] -> [x]";
          Api.tensor "B" [| 8; 8 |] ~dist:"[x,y] -> [x]";
          Api.tensor "C" [| 8; 8 |] ~dist:"[x,y] -> [x]";
        ]
      ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:"divide(i, io, ii, 4); distribute(io); communicate({A,B,C}, io)"
  in
  check_close "zero volume" 0.0 (total (Api.estimate plan))

(* Redistribution volume between rows and columns on p processors: every
   processor keeps the 1/p^2 diagonal block and receives the rest. *)
let test_redistribute_volume () =
  let p = 4 and n = 16 in
  let machine = Machine.grid [| p |] in
  let rows = Api.Distnot.parse_exn "[x,y] -> [x]" in
  let cols = Api.Distnot.parse_exn "[x,y] -> [y]" in
  let s = Api.redistribute ~machine ~shape:[| n; n |] ~src:rows ~dst:cols () in
  let nf = float_of_int n and pf = float_of_int p in
  check_close "all-to-all volume"
    (8.0 *. nf *. nf *. (pf -. 1.0) /. pf)
    (total s)

(* Message counts: Cannon on g x g sends exactly 2 point-to-point messages
   per processor per shifted step (B and C), minus the local first hits. *)
let test_cannon_message_count () =
  let g = 3 and n = 9 in
  let machine = Machine.grid [| g; g |] in
  let alg = Result.get_ok (M.cannon ~n ~machine) in
  let s = Api.estimate alg.M.plan in
  (* Each of g^2 processors receives g-1 remote B tiles and g-1 remote C
     tiles over the g steps (one step hits the local tile). *)
  Alcotest.(check int) "cannon messages" (2 * g * g * (g - 1)) s.Stats.messages

let suites =
  [
    ( "communication volumes",
      [
        Alcotest.test_case "summa closed form" `Quick test_summa_volume;
        Alcotest.test_case "cannon = summa" `Quick test_cannon_volume_equals_summa;
        Alcotest.test_case "johnson closed form" `Quick test_johnson_volume;
        Alcotest.test_case "elementwise zero" `Quick test_elementwise_zero_volume;
        Alcotest.test_case "redistribute closed form" `Quick test_redistribute_volume;
        Alcotest.test_case "cannon message count" `Quick test_cannon_message_count;
      ] );
  ]
