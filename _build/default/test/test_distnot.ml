module D = Distal_ir.Distnot
module Machine = Distal_machine.Machine
module Rect = Distal_tensor.Rect
module Ints = Distal_support.Ints

let parse = D.parse_exn

let test_parse_roundtrip () =
  List.iter
    (fun (s, expected) ->
      Alcotest.(check string) s expected (D.to_string (parse s)))
    [
      ("[x,y] -> [x,y]", "[x,y] -> [x,y]");
      ("T[x,y] -> M[x,0,*]", "[x,y] -> [x,0,*]");
      ("[x,y] -> [x]", "[x,y] -> [x]");
      ("[x,y] -> [x,y]; [z,w] -> [z]", "[x,y] -> [x,y]; [z,w] -> [z]");
      ("a[] -> [0]", "[] -> [0]");
    ]

let test_parse_errors () =
  List.iter
    (fun s ->
      match D.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [ "[x,y]"; "[x,y] -> "; "[x y] -> [x]"; "x,y -> x" ]

let test_validate () =
  let m = Machine.grid [| 2; 2 |] in
  let ok d = Alcotest.(check bool) d true (Result.is_ok (D.validate (parse d) ~tensor_rank:2 ~machine:m)) in
  let err ?(rank = 2) ?(machine = m) d =
    match D.validate (parse d) ~tensor_rank:rank ~machine with
    | Ok () -> Alcotest.failf "expected %s to be invalid" d
    | Error _ -> ()
  in
  ok "[x,y] -> [x,y]";
  ok "[x,y] -> [y,x]";
  ok "[x,y] -> [x,*]";
  ok "[x,y] -> [0,x]";
  err "[x] -> [x,y]" (* |X| != rank *);
  err "[x,y] -> [x]" (* level dims don't cover the machine *);
  err "[x,y] -> [z,x]" (* z not a tensor dim *);
  err "[x,x] -> [x,y]" (* duplicate names *);
  err "[x,y] -> [x,5]" (* fixed coordinate out of range *)

(* The paper's running example (§3.2): T 2x2, M 2x2x2, T[x,y] -> M[x,y,*]. *)
let test_paper_running_example () =
  let lvl = List.hd (parse "[x,y] -> [x,y,*]") in
  let shape = [| 2; 2 |] and mdims = [| 2; 2; 2 |] in
  (* P maps each coordinate to its own color. *)
  List.iter
    (fun (pt, color) ->
      Alcotest.(check (array int))
        (Printf.sprintf "P(%d,%d)" pt.(0) pt.(1))
        color
        (D.color_of_point lvl ~shape ~mdims pt))
    [
      ([| 0; 0 |], [| 0; 0 |]);
      ([| 0; 1 |], [| 0; 1 |]);
      ([| 1; 0 |], [| 1; 0 |]);
      ([| 1; 1 |], [| 1; 1 |]);
    ];
  (* F expands each color across the broadcast third dimension. *)
  let procs = D.procs_of_color lvl ~mdims [| 0; 1 |] in
  Alcotest.(check int) "two owners" 2 (List.length procs);
  Alcotest.(check bool) "owners expanded" true
    (List.mem [| 0; 1; 0 |] procs && List.mem [| 0; 1; 1 |] procs)

let test_fix_restricts_owners () =
  let lvl = List.hd (parse "[x,y] -> [x,y,0]") in
  let procs = D.procs_of_color lvl ~mdims:[| 2; 2; 2 |] [| 1; 1 |] in
  Alcotest.(check (list (array int))) "single owner on the face" [ [| 1; 1; 0 |] ] procs

(* Fig. 5 examples on a 100x100 matrix. *)
let test_fig5_row_partition () =
  let m = Machine.grid [| 4 |] in
  let d = parse "[x,y] -> [x]" in
  let r = Option.get (D.rect_of_proc d ~shape:[| 100; 100 |] ~machine:m [| 1 |]) in
  Alcotest.(check string) "row block spans columns" "[25,50)x[0,100)" (Rect.to_string r)

let test_fig5_col_partition () =
  let m = Machine.grid [| 4 |] in
  let d = parse "[x,y] -> [y]" in
  let r = Option.get (D.rect_of_proc d ~shape:[| 100; 100 |] ~machine:m [| 3 |]) in
  Alcotest.(check string) "column block spans rows" "[0,100)x[75,100)" (Rect.to_string r)

let test_fig5_tile_partition () =
  let m = Machine.grid [| 2; 2 |] in
  let d = parse "[x,y] -> [x,y]" in
  let r = Option.get (D.rect_of_proc d ~shape:[| 100; 100 |] ~machine:m [| 1; 0 |]) in
  Alcotest.(check string) "tile" "[50,100)x[0,50)" (Rect.to_string r)

let test_fig5_fixed_face () =
  let m = Machine.grid [| 2; 2; 2 |] in
  let d = parse "[x,y] -> [x,y,0]" in
  Alcotest.(check bool) "off-face proc owns nothing" true
    (D.rect_of_proc d ~shape:[| 8; 8 |] ~machine:m [| 0; 0; 1 |] = None);
  Alcotest.(check bool) "on-face proc owns a tile" true
    (D.rect_of_proc d ~shape:[| 8; 8 |] ~machine:m [| 0; 0; 0 |] <> None)

let test_fig5_broadcast_replicates () =
  let m = Machine.grid [| 2; 2; 2 |] in
  let d = parse "[x,y] -> [x,y,*]" in
  let r0 = Option.get (D.rect_of_proc d ~shape:[| 8; 8 |] ~machine:m [| 0; 1; 0 |]) in
  let r1 = Option.get (D.rect_of_proc d ~shape:[| 8; 8 |] ~machine:m [| 0; 1; 1 |]) in
  Alcotest.(check bool) "same tile on both" true (Rect.equal r0 r1);
  Alcotest.(check int) "replication factor" 2 (D.replication_factor d ~machine:m)

let check_tiles_cover_and_disjoint d shape machine =
  let tiles = D.tiles d ~shape ~machine in
  let total = List.fold_left (fun acc (r, _) -> acc + Rect.volume r) 0 tiles in
  Alcotest.(check int) "tiles cover the tensor" (Ints.prod shape) total;
  List.iteri
    (fun i (r1, _) ->
      List.iteri
        (fun j (r2, _) ->
          if i < j then
            Alcotest.(check bool) "tiles disjoint" false (Rect.overlaps r1 r2))
        tiles)
    tiles

let test_tiles_properties () =
  check_tiles_cover_and_disjoint (parse "[x,y] -> [x,y]") [| 7; 9 |] (Machine.grid [| 2; 3 |]);
  check_tiles_cover_and_disjoint (parse "[x,y] -> [y,x]") [| 8; 8 |] (Machine.grid [| 2; 2 |]);
  check_tiles_cover_and_disjoint (parse "[x,y] -> [x,*]") [| 10; 4 |] (Machine.grid [| 3; 2 |]);
  check_tiles_cover_and_disjoint (parse "[x,y,z] -> [y]") [| 4; 5; 6 |] (Machine.grid [| 2 |])

let test_transposed_mapping () =
  (* [x,y] -> [y,x]: the SECOND machine dim partitions rows. *)
  let m = Machine.grid [| 2; 2 |] in
  let d = parse "[x,y] -> [y,x]" in
  let r = Option.get (D.rect_of_proc d ~shape:[| 8; 8 |] ~machine:m [| 1; 0 |]) in
  Alcotest.(check string) "transposed tile" "[0,4)x[4,8)" (Rect.to_string r)

let test_hierarchical_tiles () =
  (* 2x2 node grid, 2 GPUs per node: outer 2-D tiling, inner row split. *)
  let m = Machine.hierarchical ~node_dims:[| 2; 2 |] ~proc_dims:[| 2 |] ~kind:Machine.Gpu ~mem_per_proc:16e9 in
  let d = parse "[x,y] -> [x,y]; [z,w] -> [z]" in
  Alcotest.(check bool) "valid" true
    (Result.is_ok (D.validate d ~tensor_rank:2 ~machine:m));
  let r = Option.get (D.rect_of_proc d ~shape:[| 8; 8 |] ~machine:m [| 1; 0; 1 |]) in
  Alcotest.(check string) "inner row half of outer tile" "[6,8)x[0,4)" (Rect.to_string r);
  check_tiles_cover_and_disjoint d [| 8; 8 |] m

let test_scalar_distribution () =
  let m = Machine.grid [| 4 |] in
  let d = parse "[] -> [0]" in
  let tiles = D.tiles d ~shape:[||] ~machine:m in
  Alcotest.(check int) "one scalar tile" 1 (List.length tiles);
  let _, owners = List.hd tiles in
  Alcotest.(check (list (array int))) "owner proc 0" [ [| 0 |] ] owners

let test_uneven_blocks () =
  (* 10 elements over 4 processors: blocks of 3,3,3,1. *)
  let m = Machine.grid [| 4 |] in
  let d = parse "[x] -> [x]" in
  let widths =
    List.map
      (fun p ->
        match D.rect_of_proc d ~shape:[| 10 |] ~machine:m [| p |] with
        | Some r -> Rect.volume r
        | None -> 0)
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "block sizes" [ 3; 3; 3; 1 ] widths;
  check_tiles_cover_and_disjoint d [| 10 |] m

let test_bytes_per_proc () =
  let m = Machine.grid [| 2; 2 |] in
  let d = parse "[x,y] -> [x,y]" in
  Alcotest.(check (float 0.0)) "quarter tile bytes" (8.0 *. 16.0)
    (D.bytes_per_proc d ~shape:[| 8; 8 |] ~machine:m)

let test_lower_to_cin_example () =
  (* §5.3's worked example: T[x,y] -> M[x] gives
     forall xo forall xi forall y ... divide(x,...), distribute(xo),
     communicate(T, xo). *)
  Distal_ir.Ident.reset_fresh_counter ();
  let m = Machine.grid [| 4 |] in
  let lvl = List.hd (parse "[x,y] -> [x]") in
  let cin =
    Result.get_ok (D.lower_to_cin lvl ~tensor:"T" ~shape:[| 8; 8 |] ~machine:m)
  in
  let s = Distal_ir.Cin.to_string cin in
  Alcotest.(check bool) "distributed xo first" true
    (Astring_contains.contains s "forall xo'1[dist; comm T]");
  Alcotest.(check bool) "accesses T" true (Astring_contains.contains s "T(x,y)")

let qcheck_tiles_cover =
  QCheck.Test.make ~name:"tiles cover and are disjoint" ~count:60
    QCheck.(
      quad (int_range 1 3) (int_range 1 3) (int_range 1 12) (int_range 1 12))
    (fun (g1, g2, s1, s2) ->
      let machine = Machine.grid [| g1; g2 |] in
      let shape = [| s1; s2 |] in
      let d = parse "[x,y] -> [x,y]" in
      let tiles = D.tiles d ~shape ~machine in
      let total = List.fold_left (fun acc (r, _) -> acc + Rect.volume r) 0 tiles in
      total = s1 * s2)

let suites =
  [
    ( "distribution notation",
      [
        Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "validate" `Quick test_validate;
        Alcotest.test_case "paper running example (P and F)" `Quick test_paper_running_example;
        Alcotest.test_case "fix restricts owners" `Quick test_fix_restricts_owners;
        Alcotest.test_case "fig5 rows" `Quick test_fig5_row_partition;
        Alcotest.test_case "fig5 columns" `Quick test_fig5_col_partition;
        Alcotest.test_case "fig5 tiles" `Quick test_fig5_tile_partition;
        Alcotest.test_case "fig5 fixed face" `Quick test_fig5_fixed_face;
        Alcotest.test_case "fig5 broadcast" `Quick test_fig5_broadcast_replicates;
        Alcotest.test_case "tiles cover/disjoint" `Quick test_tiles_properties;
        Alcotest.test_case "transposed mapping" `Quick test_transposed_mapping;
        Alcotest.test_case "hierarchical" `Quick test_hierarchical_tiles;
        Alcotest.test_case "scalar" `Quick test_scalar_distribution;
        Alcotest.test_case "uneven blocks" `Quick test_uneven_blocks;
        Alcotest.test_case "bytes per proc" `Quick test_bytes_per_proc;
        Alcotest.test_case "lower to cin (§5.3)" `Quick test_lower_to_cin_example;
        QCheck_alcotest.to_alcotest qcheck_tiles_cover;
      ] );
  ]
