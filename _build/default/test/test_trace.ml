(* Communication-pattern tests through the runtime's trace: Fig. 12's
   picture of Cannon's algorithm, made executable. *)

module Api = Distal.Api
module Machine = Api.Machine
module Exec = Api.Exec
module M = Distal_algorithms.Matmul
module Rect = Api.Rect

let cannon_trace () =
  let machine = Machine.grid [| 3; 3 |] in
  let alg = Result.get_ok (M.cannon ~n:9 ~machine) in
  let trace = ref [] in
  let _ = Api.run_exn ~trace alg.M.plan ~data:(Api.random_inputs alg.M.plan) in
  !trace

(* Fig. 12: on a 3x3 grid, at each iteration ko every processor (io, jo)
   performs the rotated iteration kos = (ko + io + jo) mod 3 and accesses
   the tile B(io, kos). *)
let test_fig12_cannon_b_pattern () =
  let events = cannon_trace () in
  let b_events =
    List.filter (fun (e : Exec.trace_event) -> e.tensor = "B") events
  in
  Alcotest.(check bool) "B moves" true (b_events <> []);
  List.iter
    (fun (e : Exec.trace_event) ->
      let io = e.dst.(0) and jo = e.dst.(1) in
      let ko = e.step in
      let kos = (ko + io + jo) mod 3 in
      (* The piece received is exactly tile B(io, kos)... *)
      let expected =
        Rect.make ~lo:[| 3 * io; 3 * kos |] ~hi:[| (3 * io) + 3; (3 * kos) + 3 |]
      in
      Alcotest.(check string)
        (Printf.sprintf "B piece at proc (%d,%d) step %d" io jo ko)
        (Rect.to_string expected) (Rect.to_string e.piece);
      (* ... and it comes from the tile's owner (io, kos). *)
      Alcotest.(check (array int)) "sent by the owner" [| io; kos |] e.src)
    b_events

(* Systolic property: at any step, no tile of B has two receivers (the
   broadcast of Fig. 8a is gone). *)
let test_cannon_no_broadcasts () =
  let events = cannon_trace () in
  let keys = Hashtbl.create 16 in
  List.iter
    (fun (e : Exec.trace_event) ->
      let key = (e.step, e.tensor, Rect.to_string e.piece) in
      Alcotest.(check bool)
        (Printf.sprintf "unique receiver for %s at step %d" e.tensor e.step)
        false (Hashtbl.mem keys key);
      Hashtbl.add keys key ())
    events

(* Each processor receives at most one B piece and one C piece per step. *)
let test_cannon_per_step_degree () =
  let events = cannon_trace () in
  let per = Hashtbl.create 16 in
  List.iter
    (fun (e : Exec.trace_event) ->
      let key = (e.step, e.tensor, e.dst) in
      let n = try Hashtbl.find per key with Not_found -> 0 in
      Hashtbl.replace per key (n + 1))
    events;
  Hashtbl.iter
    (fun _ n -> Alcotest.(check int) "one piece per tensor per step" 1 n)
    per

(* SUMMA's broadcast, by contrast, has the row/column fan-out of Fig. 8a. *)
let test_summa_broadcast_fanout () =
  let machine = Machine.grid [| 3; 3 |] in
  let alg = Result.get_ok (M.summa ~chunks_per_tile:1 ~n:9 ~machine ()) in
  let trace = ref [] in
  let _ = Api.run_exn ~trace alg.M.plan ~data:(Api.random_inputs alg.M.plan) in
  let fanout = Hashtbl.create 16 in
  List.iter
    (fun (e : Exec.trace_event) ->
      if e.tensor = "B" then begin
        let key = (e.step, Rect.to_string e.piece) in
        let n = try Hashtbl.find fanout key with Not_found -> 0 in
        Hashtbl.replace fanout key (n + 1)
      end)
    !trace;
  let max_fanout = Hashtbl.fold (fun _ n acc -> max acc n) fanout 0 in
  Alcotest.(check int) "B chunk broadcast to the row (2 remote receivers)" 2 max_fanout

let test_trace_matches_messages () =
  let machine = Machine.grid [| 2; 2 |] in
  let alg = Result.get_ok (M.summa ~n:8 ~machine ()) in
  let trace = ref [] in
  let r = Api.run_exn ~trace alg.M.plan ~data:(Api.random_inputs alg.M.plan) in
  Alcotest.(check int) "trace length = message count" r.Exec.stats.Api.Stats.messages
    (List.length !trace);
  match !trace with
  | [] -> Alcotest.fail "expected events"
  | e :: _ ->
      Alcotest.(check bool) "printable" true
        (String.length (Exec.trace_to_string e) > 10)

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "fig12 cannon pattern" `Quick test_fig12_cannon_b_pattern;
        Alcotest.test_case "cannon has no broadcasts" `Quick test_cannon_no_broadcasts;
        Alcotest.test_case "cannon per-step degree" `Quick test_cannon_per_step_degree;
        Alcotest.test_case "summa broadcast fanout" `Quick test_summa_broadcast_fanout;
        Alcotest.test_case "trace = messages" `Quick test_trace_matches_messages;
      ] );
  ]
