module L = Distal_ir.Lexer

let tok = Alcotest.testable (fun fmt t -> Fmt.string fmt (L.describe t)) ( = )

let all s =
  match L.of_string s with
  | Error e -> Alcotest.failf "lex error: %s" e
  | Ok lx ->
      let rec go acc =
        match L.next lx with L.Eof -> List.rev acc | t -> go (t :: acc)
      in
      go []

let test_tokens () =
  Alcotest.(check (list tok)) "mixed"
    [
      L.Ident "A"; L.Lparen; L.Ident "i"; L.Comma; L.Ident "j"; L.Rparen; L.Equal;
      L.Ident "B"; L.Star; L.Int 42; L.Plus; L.Float 2.5;
    ]
    (all "A(i, j) = B * 42 + 2.5")

let test_two_char_tokens () =
  Alcotest.(check (list tok)) "arrow and pluseq" [ L.Arrow; L.PlusEqual ] (all "-> +=");
  Alcotest.(check (list tok)) "minus then gt is not arrow" [ L.Minus; L.Minus ] (all "- -")

let test_comments_and_whitespace () =
  Alcotest.(check (list tok)) "comment skipped" [ L.Ident "x"; L.Semi; L.Ident "y" ]
    (all "x; # everything here is ignored -> ( \n y")

let test_brackets_braces () =
  Alcotest.(check (list tok)) "all brackets"
    [ L.Lbracket; L.Rbracket; L.Lbrace; L.Rbrace; L.Dot ]
    (all "[]{}.")

let test_identifiers () =
  Alcotest.(check (list tok)) "underscores and digits"
    [ L.Ident "_x1"; L.Ident "Ab_2" ]
    (all "_x1 Ab_2")

let test_lex_error () =
  match L.of_string "a ? b" with
  | Ok _ -> Alcotest.fail "expected a lex error"
  | Error e -> Alcotest.(check bool) "mentions offset" true (Astring_contains.contains e "offset")

let test_peek_does_not_consume () =
  let lx = Result.get_ok (L.of_string "a b") in
  Alcotest.(check tok) "peek" (L.Ident "a") (L.peek lx);
  Alcotest.(check tok) "peek again" (L.Ident "a") (L.peek lx);
  Alcotest.(check tok) "next" (L.Ident "a") (L.next lx);
  Alcotest.(check tok) "advanced" (L.Ident "b") (L.next lx);
  Alcotest.(check tok) "eof is sticky" L.Eof (L.next lx);
  Alcotest.(check tok) "still eof" L.Eof (L.next lx)

let test_expect () =
  let lx = Result.get_ok (L.of_string "( x") in
  Alcotest.(check bool) "expect ok" true (L.expect lx L.Lparen = Ok ());
  match L.expect lx L.Rparen with
  | Ok () -> Alcotest.fail "expected mismatch"
  | Error e -> Alcotest.(check bool) "describes both" true (Astring_contains.contains e "')'")

(* Task-IR pretty printing golden. *)
let test_taskir_to_string () =
  let machine = Distal.Api.Machine.grid [| 2 |] in
  let p =
    Distal.Api.problem_exn ~machine ~stmt:"A(i) = B(i)"
      ~tensors:
        [
          Distal.Api.tensor "A" [| 4 |] ~dist:"[x] -> [x]";
          Distal.Api.tensor "B" [| 4 |] ~dist:"[x] -> [x]";
        ]
      ()
  in
  let plan =
    Distal.Api.compile_script_exn p
      ~schedule:"divide(i, io, ii, 2); distribute(io); communicate({A,B}, io)"
  in
  let expected =
    "// A(i) = B(i)\n\
     index_task_launch (io) over [2] {\n\
    \  ensure A[footprint]  // copy from owner partition\n\
    \  ensure B[footprint]  // copy from owner partition\n\
    \  leaf: forall (ii) { A(i) = B(i) }\n\
     }\n"
  in
  Alcotest.(check string) "pretty task ir" expected
    (Distal_ir.Taskir.to_string plan.Distal.Api.program)

let suites =
  [
    ( "lexer",
      [
        Alcotest.test_case "tokens" `Quick test_tokens;
        Alcotest.test_case "two-char tokens" `Quick test_two_char_tokens;
        Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
        Alcotest.test_case "brackets" `Quick test_brackets_braces;
        Alcotest.test_case "identifiers" `Quick test_identifiers;
        Alcotest.test_case "lex error" `Quick test_lex_error;
        Alcotest.test_case "peek/next" `Quick test_peek_does_not_consume;
        Alcotest.test_case "expect" `Quick test_expect;
        Alcotest.test_case "taskir golden" `Quick test_taskir_to_string;
      ] );
  ]
