(* Cyclic distributions — the alternative partitioning function §3.2
   mentions ("a cyclic distribution that maps adjacent coordinates to
   different colors"), and the layout ScaLAPACK actually uses. *)

module Api = Distal.Api
module Machine = Api.Machine
module D = Api.Distnot
module Rect = Api.Rect
module Ints = Distal_support.Ints
module Stats = Api.Stats

let test_parse_roundtrip () =
  List.iter
    (fun (s, expected) -> Alcotest.(check string) s expected (D.to_string (D.parse_exn s)))
    [
      ("[x,y] -> [x%2,y]", "[x,y] -> [x%2,y]");
      ("[x] -> [x%1]", "[x] -> [x%1]");
      ("[x,y] -> [x%4,y%2]", "[x,y] -> [x%4,y%2]");
    ];
  match D.parse "[x] -> [x%0]" with
  | Ok _ -> Alcotest.fail "zero block size must be rejected"
  | Error _ -> ()

let test_cyclic_strips () =
  (* 12 elements, 3 processors, block 2: processor 1 owns [2,4) and [8,10). *)
  let machine = Machine.grid [| 3 |] in
  let d = D.parse_exn "[x] -> [x%2]" in
  let rects = D.rects_of_proc d ~shape:[| 12 |] ~machine [| 1 |] in
  Alcotest.(check (list string)) "strips" [ "[2,4)"; "[8,10)" ]
    (List.map Rect.to_string rects);
  (* The blocked accessor reports None for multi-tile owners. *)
  Alcotest.(check bool) "rect_of_proc is None" true
    (D.rect_of_proc d ~shape:[| 12 |] ~machine [| 1 |] = None)

let test_cyclic_color_of_point () =
  let lvl = List.hd (D.parse_exn "[x] -> [x%2]") in
  List.iter
    (fun (pt, c) ->
      Alcotest.(check (array int))
        (Printf.sprintf "color of %d" pt)
        [| c |]
        (D.color_of_point lvl ~shape:[| 12 |] ~mdims:[| 3 |] [| pt |]))
    [ (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (6, 0); (11, 2) ]

let check_cover d shape machine =
  let tiles = D.tiles d ~shape ~machine in
  let total = List.fold_left (fun acc (r, _) -> acc + Rect.volume r) 0 tiles in
  Alcotest.(check int) "covers" (Ints.prod shape) total;
  List.iteri
    (fun i (r1, _) ->
      List.iteri
        (fun j (r2, _) ->
          if i < j then Alcotest.(check bool) "disjoint" false (Rect.overlaps r1 r2))
        tiles)
    tiles

let test_cyclic_tiles_cover () =
  check_cover (D.parse_exn "[x] -> [x%2]") [| 13 |] (Machine.grid [| 3 |]);
  check_cover (D.parse_exn "[x,y] -> [x%2,y]") [| 10; 6 |] (Machine.grid [| 2; 3 |]);
  check_cover (D.parse_exn "[x,y] -> [x%3,y%2]") [| 9; 8 |] (Machine.grid [| 3; 2 |]);
  (* Mixed with broadcast: each replica covers the tensor. *)
  let d = D.parse_exn "[x,y] -> [x%2,*]" in
  let machine = Machine.grid [| 2; 2 |] in
  let tiles = D.tiles d ~shape:[| 8; 4 |] ~machine in
  let total = List.fold_left (fun acc (r, _) -> acc + Rect.volume r) 0 tiles in
  Alcotest.(check int) "covers once (tiles are shared by replicas)" 32 total;
  List.iter
    (fun (_, owners) -> Alcotest.(check int) "two replicas" 2 (List.length owners))
    tiles

let gemm_with_cyclic_b db =
  let machine = Machine.grid [| 2; 2 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "B" [| 8; 8 |] ~dist:db;
          Api.tensor "C" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
        ]
      ()
  in
  Api.compile_script_exn p
    ~schedule:
      "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, 4);\n\
       reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko);\n\
       substitute({ii,ji,ki}, gemm)"

let test_cyclic_gemm_validates () =
  (* SUMMA where B is stored block-cyclically (1-wide and 2-wide blocks):
     the computation is unchanged, the runtime just fetches more, smaller
     pieces. *)
  List.iter
    (fun db ->
      match Api.validate (gemm_with_cyclic_b db) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" db e)
    [ "[x,y] -> [x%1,y]"; "[x,y] -> [x%2,y%2]"; "[x,y] -> [x%3,y]" ]

let test_cyclic_costs_more_messages () =
  let blocked = Api.estimate (gemm_with_cyclic_b "[x,y] -> [x,y]") in
  let cyclic = Api.estimate (gemm_with_cyclic_b "[x,y] -> [x%1,y%1]") in
  Alcotest.(check bool) "more, smaller pieces" true
    (cyclic.Stats.messages > blocked.Stats.messages);
  (* Schedules and volumes stay comparable; layout only changes the
     message structure. *)
  Alcotest.(check bool) "volume within 2x" true
    (cyclic.Stats.bytes_inter +. cyclic.Stats.bytes_intra
    < 2.0 *. (blocked.Stats.bytes_inter +. blocked.Stats.bytes_intra) +. 1.0)

let test_cyclic_redistribute () =
  (* Moving between blocked and cyclic layouts is a real shuffle. *)
  let machine = Machine.grid [| 4 |] in
  let s =
    Api.redistribute ~machine ~shape:[| 16; 4 |]
      ~src:(D.parse_exn "[x,y] -> [x]")
      ~dst:(D.parse_exn "[x,y] -> [x%1]")
      ()
  in
  Alcotest.(check bool) "bytes move" true (s.Stats.bytes_inter > 0.0)

let test_cyclic_fuzzed_semantics () =
  (* A cyclic layout for every tensor of a 3-tensor contraction. *)
  let machine = Machine.grid [| 3 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,l) = B(i,j,k) * C(j,l) * D(k,l)"
      ~tensors:
        [
          Api.tensor "A" [| 7; 4 |] ~dist:"[x,y] -> [x%2]";
          Api.tensor "B" [| 7; 5; 6 |] ~dist:"[x,y,z] -> [y%1]";
          Api.tensor "C" [| 5; 4 |] ~dist:"[x,y] -> [x%2]";
          Api.tensor "D" [| 6; 4 |] ~dist:"[x,y] -> [*]";
        ]
      ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:"divide(i, io, ii, 3); distribute(io); communicate({A,B,C,D}, io)"
  in
  match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e

let suites =
  [
    ( "cyclic distributions",
      [
        Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
        Alcotest.test_case "strips" `Quick test_cyclic_strips;
        Alcotest.test_case "color of point" `Quick test_cyclic_color_of_point;
        Alcotest.test_case "tiles cover/disjoint" `Quick test_cyclic_tiles_cover;
        Alcotest.test_case "cyclic gemm validates" `Quick test_cyclic_gemm_validates;
        Alcotest.test_case "message granularity" `Quick test_cyclic_costs_more_messages;
        Alcotest.test_case "redistribute" `Quick test_cyclic_redistribute;
        Alcotest.test_case "3-tensor contraction" `Quick test_cyclic_fuzzed_semantics;
      ] );
  ]
