test/test_algorithms.ml: Alcotest Distal Distal_algorithms List Printf QCheck QCheck_alcotest Result
