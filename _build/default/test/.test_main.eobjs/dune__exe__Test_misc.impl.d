test/test_misc.ml: Alcotest Astring_contains Distal Distal_ir List Option Result
