test/test_support.ml: Alcotest Array Distal_support Filename Fun Gen List QCheck QCheck_alcotest Sys
