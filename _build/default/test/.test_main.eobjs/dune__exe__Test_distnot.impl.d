test/test_distnot.ml: Alcotest Array Astring_contains Distal_ir Distal_machine Distal_support Distal_tensor List Option Printf QCheck QCheck_alcotest Result
