test/test_machine.ml: Alcotest Distal_machine List
