test/test_gantt.ml: Alcotest Astring_contains Distal Distal_algorithms Distal_ir Distal_runtime List Result String
