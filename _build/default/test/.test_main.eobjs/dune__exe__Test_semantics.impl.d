test/test_semantics.ml: Alcotest Distal Printf QCheck QCheck_alcotest Result
