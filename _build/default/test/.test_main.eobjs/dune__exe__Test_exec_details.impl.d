test/test_exec_details.ml: Alcotest Distal
