test/test_cyclic.ml: Alcotest Distal Distal_support List Printf
