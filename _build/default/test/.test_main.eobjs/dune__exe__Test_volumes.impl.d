test/test_volumes.ml: Alcotest Distal Distal_algorithms List Printf Result
