test/test_tensor.ml: Alcotest Array Distal_support Distal_tensor List QCheck QCheck_alcotest
