test/test_harness.ml: Alcotest Distal_harness Distal_machine Filename Float Lazy List Printf String Sys
