test/test_fuzz.ml: Array Distal Distal_ir Distal_support List Printf QCheck QCheck_alcotest String
