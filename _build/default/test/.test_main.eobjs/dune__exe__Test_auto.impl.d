test/test_auto.ml: Alcotest Astring_contains Distal Distal_algorithms List
