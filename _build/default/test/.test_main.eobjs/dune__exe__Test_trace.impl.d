test/test_trace.ml: Alcotest Array Distal Distal_algorithms Hashtbl List Printf Result String
