test/test_pipeline.ml: Alcotest Distal Distal_ir Result
