test/test_schedule.ml: Alcotest Astring_contains Distal_ir List Result
