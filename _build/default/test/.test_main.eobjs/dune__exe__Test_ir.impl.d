test/test_ir.ml: Alcotest Array Astring_contains Distal_ir Fun List Result
