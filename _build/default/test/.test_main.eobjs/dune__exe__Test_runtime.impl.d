test/test_runtime.ml: Alcotest Astring_contains Distal Distal_ir Distal_support Distal_tensor Result
