test/test_lexer.ml: Alcotest Astring_contains Distal Distal_ir Fmt List Result
