test/test_errors.ml: Alcotest Distal List String
