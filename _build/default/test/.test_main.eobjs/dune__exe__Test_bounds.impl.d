test/test_bounds.ml: Alcotest Array Distal_ir Distal_support Distal_tensor List Option QCheck QCheck_alcotest Result
