test/test_codegen.ml: Alcotest Astring_contains Distal Distal_algorithms Distal_ir List Result
