(* Odds and ends: statistics arithmetic, schedule-application purity, and
   API conveniences. *)

module Api = Distal.Api
module Stats = Api.Stats
module S = Api.Schedule
module Cin = Distal_ir.Cin
module P = Distal_ir.Einsum_parser

let test_stats_arithmetic () =
  let a = Stats.create () and b = Stats.create () in
  a.Stats.time <- 2.0;
  a.Stats.flops <- 4e9;
  a.Stats.peak_mem <- 10.0;
  a.Stats.messages <- 3;
  b.Stats.time <- 1.0;
  b.Stats.peak_mem <- 20.0;
  b.Stats.oom <- true;
  let c = Stats.add a b in
  Alcotest.(check (float 0.0)) "times add" 3.0 c.Stats.time;
  Alcotest.(check (float 0.0)) "peak maxes" 20.0 c.Stats.peak_mem;
  Alcotest.(check bool) "oom sticky" true c.Stats.oom;
  Alcotest.(check int) "messages add" 3 c.Stats.messages;
  Alcotest.(check (float 1e-9)) "gflops" 2.0 (Stats.gflops a);
  Alcotest.(check (float 1e-9)) "gbs" 5.0 (Stats.gbs a ~bytes:10e9);
  Alcotest.(check (float 0.0)) "gflops of zero time" 0.0 (Stats.gflops (Stats.create ()));
  Alcotest.(check bool) "to_string mentions OOM" true
    (Astring_contains.contains (Stats.to_string c) "OOM")

(* Schedule application is pure: a failing command must not mutate the
   input CIN (the provenance graph is copied before mutation). *)
let test_schedule_purity_on_failure () =
  let shapes = [ ("A", [| 8; 8 |]); ("B", [| 8; 8 |]); ("C", [| 8; 8 |]) ] in
  let cin =
    Result.get_ok (Cin.of_stmt (P.parse_exn "A(i,j) = B(i,k) * C(k,j)") ~shapes)
  in
  let before = Cin.to_string cin in
  (* divide succeeds then a later command fails: the original cin must be
     unchanged and still schedulable. *)
  (match S.apply_all cin [ S.Divide ("i", "io", "ii", 2); S.Reorder [ "io"; "nope" ] ] with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ());
  Alcotest.(check string) "cin unchanged" before (Cin.to_string cin);
  match S.apply_all cin [ S.Divide ("i", "io", "ii", 2) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "original cin unusable after failed schedule: %s" e

let test_input_bytes () =
  let machine = Api.Machine.grid [| 2 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i) = B(i)"
      ~tensors:
        [
          Api.tensor "A" [| 10 |] ~dist:"[x] -> [x]";
          Api.tensor "B" [| 10 |] ~dist:"[x] -> [x]";
        ]
      ()
  in
  let plan = Api.compile_script_exn p ~schedule:"" in
  Alcotest.(check (float 0.0)) "A and B bytes" 160.0 (Api.input_bytes plan)

let test_default_cost_by_kind () =
  let cpu = Api.Machine.grid [| 2 |] in
  let gpu = Api.Machine.grid ~kind:Api.Machine.Gpu [| 2 |] in
  Alcotest.(check string) "cpu" "cpu-distal" (Api.default_cost cpu).Api.Cost_model.name;
  Alcotest.(check string) "gpu" "gpu-distal" (Api.default_cost gpu).Api.Cost_model.name

let test_random_inputs_deterministic () =
  let machine = Api.Machine.grid [| 2 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i) = B(i)"
      ~tensors:
        [
          Api.tensor "A" [| 6 |] ~dist:"[x] -> [x]";
          Api.tensor "B" [| 6 |] ~dist:"[x] -> [x]";
        ]
      ()
  in
  let plan = Api.compile_script_exn p ~schedule:"" in
  let d1 = Api.random_inputs ~seed:7 plan and d2 = Api.random_inputs ~seed:7 plan in
  Alcotest.(check bool) "same seed, same data" true
    (Api.Dense.approx_equal (List.assoc "B" d1) (List.assoc "B" d2));
  (* '=' statements do not get output data. *)
  Alcotest.(check bool) "no output in inputs" false (List.mem_assoc "A" d1)

(* The whole simulation is deterministic: identical inputs give identical
   results and identical statistics, run to run. *)
let test_simulation_deterministic () =
  let machine = Api.Machine.grid [| 2; 2 |] in
  let plan () =
    let p =
      Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
        ~tensors:
          [
            Api.tensor "A" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
            Api.tensor "B" [| 8; 8 |] ~dist:"[x,y] -> [x%2,y]";
            Api.tensor "C" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
          ]
        ()
    in
    Api.compile_script_exn p
      ~schedule:
        "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, 4);\n\
         reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko);\n\
         substitute({ii,ji,ki}, gemm)"
  in
  let run () =
    let p = plan () in
    let r = Api.run_exn p ~data:(Api.random_inputs ~seed:5 p) in
    (Option.get r.Api.Exec.output, r.Api.Exec.stats)
  in
  let o1, s1 = run () and o2, s2 = run () in
  Alcotest.(check bool) "same values" true (Api.Dense.approx_equal ~tol:0.0 o1 o2);
  Alcotest.(check (float 0.0)) "same time" s1.Stats.time s2.Stats.time;
  Alcotest.(check int) "same messages" s1.Stats.messages s2.Stats.messages

let test_ident_fresh () =
  Distal_ir.Ident.reset_fresh_counter ();
  let a = Distal_ir.Ident.fresh "k" in
  let b = Distal_ir.Ident.fresh "k" in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check bool) "derived from base" true (Astring_contains.contains a "k'")

let suites =
  [
    ( "misc",
      [
        Alcotest.test_case "stats arithmetic" `Quick test_stats_arithmetic;
        Alcotest.test_case "schedule purity" `Quick test_schedule_purity_on_failure;
        Alcotest.test_case "input bytes" `Quick test_input_bytes;
        Alcotest.test_case "default cost" `Quick test_default_cost_by_kind;
        Alcotest.test_case "random inputs" `Quick test_random_inputs_deterministic;
        Alcotest.test_case "deterministic simulation" `Quick test_simulation_deterministic;
        Alcotest.test_case "fresh idents" `Quick test_ident_fresh;
      ] );
  ]
