(* Soundness of the bounds analysis (§6.2): the footprint rect computed at
   any communicate point must contain every coordinate the enclosed
   iterations actually access. The executor would crash on a violation
   (local-buffer indexing out of range), but these tests check the
   property directly and tightly. *)

module P = Distal_ir.Einsum_parser
module Cin = Distal_ir.Cin
module S = Distal_ir.Schedule
module Bounds = Distal_ir.Bounds
module Provenance = Distal_ir.Provenance
module Rect = Distal_tensor.Rect
module Ints = Distal_support.Ints

let shapes = [ ("A", [| 10; 10 |]); ("B", [| 10; 10 |]); ("C", [| 10; 10 |]) ]

let scheduled cmds =
  let cin = Result.get_ok (Cin.of_stmt (P.parse_exn "A(i,j) = B(i,k) * C(k,j)") ~shapes) in
  Result.get_ok (S.apply_all cin cmds)

(* Enumerate all guard-passing points below a partial assignment and check
   each access coordinate lies inside the claimed footprint. *)
let check_soundness (cin : Cin.t) ~bound_prefix =
  let prov = cin.Cin.prov in
  let loops = Cin.loop_vars cin in
  let bound = List.filteri (fun i _ -> i < bound_prefix) loops in
  let free = List.filteri (fun i _ -> i >= bound_prefix) loops in
  let bound_dims = Array.of_list (List.map (Provenance.extent prov) bound) in
  let free_dims = Array.of_list (List.map (Provenance.extent prov) free) in
  Ints.iter_box bound_dims (fun outer ->
      let outer_env = List.mapi (fun i v -> (v, outer.(i))) bound in
      let env v = List.assoc_opt v outer_env in
      let rects =
        List.map
          (fun tn ->
            ( tn,
              Bounds.tensor_footprint prov ~env ~stmt:cin.Cin.stmt
                ~shape:(List.assoc tn shapes) tn ))
          [ "A"; "B"; "C" ]
      in
      Ints.iter_box free_dims (fun inner ->
          let full_env_list = outer_env @ List.mapi (fun i v -> (v, inner.(i))) free in
          let fenv v = List.assoc_opt v full_env_list in
          if Provenance.guards_ok prov ~env:fenv then
            List.iter
              (fun (a : Distal_ir.Expr.access) ->
                let coord =
                  Array.of_list
                    (List.map
                       (fun v -> Option.get (Provenance.raw_point prov ~env:fenv v))
                       a.indices)
                in
                let rect = List.assoc a.tensor rects in
                if not (Rect.contains rect coord) then
                  Alcotest.failf "access %s%s escapes footprint %s (env prefix %d)"
                    a.tensor (Ints.to_string coord) (Rect.to_string rect) bound_prefix)
              (Distal_ir.Expr.stmt_accesses cin.Cin.stmt)))

let summa_cmds =
  [
    S.Distribute_onto
      { targets = [ "i"; "j" ]; dist = [ "io"; "jo" ]; local = [ "ii"; "ji" ];
        grid = [| 3; 2 |] };
    S.Split ("k", "ko", "ki", 4);
    S.Reorder [ "ko"; "ii"; "ji"; "ki" ];
  ]

let test_summa_sound () =
  let cin = scheduled summa_cmds in
  (* At every aggregation depth. *)
  for prefix = 0 to 3 do
    check_soundness cin ~bound_prefix:prefix
  done

let test_rotated_sound () =
  let cin =
    scheduled
      [
        S.Distribute_onto
          { targets = [ "i"; "j" ]; dist = [ "io"; "jo" ]; local = [ "ii"; "ji" ];
            grid = [| 3; 3 |] };
        S.Divide ("k", "ko", "ki", 3);
        S.Reorder [ "ko"; "ii"; "ji"; "ki" ];
        S.Rotate { target = "ko"; by = [ "io"; "jo" ]; result = "kos" };
      ]
  in
  for prefix = 0 to 3 do
    check_soundness cin ~bound_prefix:prefix
  done

let test_collapsed_sound () =
  let cin = scheduled [ S.Collapse ("i", "j", "f") ] in
  for prefix = 0 to 2 do
    check_soundness cin ~bound_prefix:prefix
  done

let test_tightness_interior () =
  (* For an interior block the footprint is exact: the SUMMA B footprint
     under (io=1, ko=0) is rows [4,8) x k [0,4) with grid 3x2 over 10:
     block size ceil(10/3) = 4. *)
  let cin = scheduled summa_cmds in
  let env v = List.assoc_opt v [ ("io", 1); ("jo", 0); ("ko", 0) ] in
  let r =
    Bounds.tensor_footprint cin.Cin.prov ~env ~stmt:cin.Cin.stmt ~shape:[| 10; 10 |] "B"
  in
  Alcotest.(check string) "exact interior footprint" "[4,8)x[0,4)" (Rect.to_string r)

let test_boundary_clipping () =
  (* The last row block of a 10-row tensor over 3 parts is [8,10). *)
  let cin = scheduled summa_cmds in
  let env v = List.assoc_opt v [ ("io", 2) ] in
  let r =
    Bounds.tensor_footprint cin.Cin.prov ~env ~stmt:cin.Cin.stmt ~shape:[| 10; 10 |] "B"
  in
  Alcotest.(check string) "clipped to the tensor" "[8,10)x[0,10)" (Rect.to_string r)

let qcheck_random_divide_split_sound =
  QCheck.Test.make ~name:"bounds sound under random divide/split" ~count:60
    QCheck.(quad (int_range 1 4) (int_range 1 4) (int_range 1 5) (int_range 0 2))
    (fun (gi, gj, chunk, prefix) ->
      let cin =
        scheduled
          [
            S.Distribute_onto
              { targets = [ "i"; "j" ]; dist = [ "io"; "jo" ]; local = [ "ii"; "ji" ];
                grid = [| gi; gj |] };
            S.Split ("k", "ko", "ki", chunk);
            S.Reorder [ "ko"; "ii"; "ji"; "ki" ];
          ]
      in
      check_soundness cin ~bound_prefix:prefix;
      true)

let suites =
  [
    ( "bounds",
      [
        Alcotest.test_case "summa sound at all depths" `Quick test_summa_sound;
        Alcotest.test_case "rotation sound" `Quick test_rotated_sound;
        Alcotest.test_case "collapse sound" `Quick test_collapsed_sound;
        Alcotest.test_case "interior tightness" `Quick test_tightness_interior;
        Alcotest.test_case "boundary clipping" `Quick test_boundary_clipping;
        QCheck_alcotest.to_alcotest qcheck_random_divide_split_sound;
      ] );
  ]
