module Api = Distal.Api
module Machine = Api.Machine
module Gantt = Distal_runtime.Gantt
module M = Distal_algorithms.Matmul

let contains = Astring_contains.contains

let trace_of plan =
  let trace = ref [] in
  let _ = Api.run_exn ~trace plan ~data:(Api.random_inputs plan) in
  !trace

let test_grid_view_fig12 () =
  (* The rendered grid of B tiles for Cannon on 3x3 should show, at step 0,
     row io holding tiles B(io, (io+jo) mod 3) — Fig. 12's left panel. *)
  let machine = Machine.grid [| 3; 3 |] in
  let alg = Result.get_ok (M.cannon ~n:9 ~machine) in
  let view = Gantt.grid_view ~machine ~tensor:"B" (trace_of alg.M.plan) in
  Alcotest.(check bool) "has steps" true (contains view "step 0:");
  Alcotest.(check bool) "labels tiles" true (contains view "B(");
  (* Processor (0,1) at step 0 receives B(0, (0+0+1) mod 3) = B(0,1)?
     No: (0,1) owns B(0,1), needs B(0, kos=1) = its own tile -> '.'.
     Processor (0,2) needs B(0,2) (local too). (1,0) needs B(1,1). *)
  Alcotest.(check bool) "remote tile shown" true (contains view "B(1,1)")

let test_grid_view_requires_2d () =
  let machine = Machine.grid [| 3 |] in
  match Gantt.grid_view ~machine ~tensor:"B" [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "1-D machine must be rejected"

let test_summary () =
  let machine = Machine.grid [| 2; 2 |] in
  let alg = Result.get_ok (M.summa ~n:8 ~machine ()) in
  let trace = trace_of alg.M.plan in
  let s = Gantt.summary ~machine trace in
  Alcotest.(check bool) "mentions copies" true (contains s "copies");
  Alcotest.(check bool) "one line per step" true
    (List.length (String.split_on_char '\n' s) >= 2)

let test_parallelize_openmp () =
  let machine = Machine.grid [| 2 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,j) + C(i,j)"
      ~tensors:
        [
          Api.tensor "A" [| 4; 4 |] ~dist:"[x,y] -> [x]";
          Api.tensor "B" [| 4; 4 |] ~dist:"[x,y] -> [x]";
          Api.tensor "C" [| 4; 4 |] ~dist:"[x,y] -> [x]";
        ]
      ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "divide(i, io, ii, 2); distribute(io); communicate({A,B,C}, io);\n\
         parallelize(ii)"
  in
  (match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  let cpp = Distal_ir.Codegen_legion.emit plan.Api.program in
  Alcotest.(check bool) "OpenMP pragma on ii" true
    (contains cpp "#pragma omp parallel for  // parallelize(ii)")

let suites =
  [
    ( "gantt",
      [
        Alcotest.test_case "grid view fig12" `Quick test_grid_view_fig12;
        Alcotest.test_case "grid view 2d only" `Quick test_grid_view_requires_2d;
        Alcotest.test_case "summary" `Quick test_summary;
        Alcotest.test_case "parallelize -> openmp" `Quick test_parallelize_openmp;
      ] );
  ]
