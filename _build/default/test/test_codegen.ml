module Api = Distal.Api
module Machine = Api.Machine
module Cg = Distal_ir.Codegen_legion
module M = Distal_algorithms.Matmul

let contains = Astring_contains.contains

let summa_plan () =
  let alg =
    Result.get_ok (M.summa ~chunks_per_tile:1 ~n:8 ~machine:(Machine.grid [| 2; 2 |]) ())
  in
  alg.M.plan

let test_summa_codegen () =
  let cpp = Cg.emit (summa_plan ()).Api.program in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains cpp needle))
    [
      "// statement: A(i,j) = B(i,k) * C(k,j)";
      "#include \"legion.h\"";
      "IndexTaskLauncher leaf(TID_LEAF";
      "runtime->execute_index_space(ctx, leaf);";
      "create_partition_by_restriction";
      "gemm(regions[0], regions[1], regions[2]);";
      "LogicalRegion lr_A";
      "Runtime::start(argc, argv);";
    ]

let test_affine_bounds_recovered () =
  (* SUMMA on a 2x2 grid over 8x8 matrices: tiles are 4-wide and offset by
     4*io / 4*jo; the chunked k loop offsets B and C by the step. *)
  let cpp = Cg.emit (summa_plan ()).Api.program in
  Alcotest.(check bool) "A dim0 affine in io" true (contains cpp "lo = 4*io, extent 4");
  Alcotest.(check bool) "B dim1 affine in ko" true (contains cpp "4*ko");
  (* SUMMA does not distribute k: the output is read-write, not a
     reduction. *)
  Alcotest.(check bool) "A is READ_WRITE" true (contains cpp "A (READ_WRITE)");
  Alcotest.(check bool) "no reduction privileges" false (contains cpp "REDOP")

let test_reduction_privilege () =
  let alg = Result.get_ok (M.johnson ~n:8 ~machine:(Machine.grid [| 2; 2; 2 |]) ()) in
  let cpp = Cg.emit alg.M.plan.Api.program in
  Alcotest.(check bool) "johnson reduces into A" true (contains cpp "LEGION_REDOP_SUM");
  Alcotest.(check bool) "reduce requirement" true (contains cpp "REDUCE, EXCLUSIVE, lr_A")

let test_rotation_is_dynamic () =
  let alg = Result.get_ok (M.cannon ~n:8 ~machine:(Machine.grid [| 2; 2 |])) in
  let cpp = Cg.emit alg.M.plan.Api.program in
  Alcotest.(check bool) "rotated bounds flagged dynamic" true
    (contains cpp "recomputed per iteration")

let test_scalar_leaf_codegen () =
  let machine = Machine.grid [| 2 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,j) + C(i,j)"
      ~tensors:
        [
          Api.tensor "A" [| 4; 4 |] ~dist:"[x,y] -> [x]";
          Api.tensor "B" [| 4; 4 |] ~dist:"[x,y] -> [x]";
          Api.tensor "C" [| 4; 4 |] ~dist:"[x,y] -> [x]";
        ]
      ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:"divide(i, io, ii, 2); distribute(io); communicate({A,B,C}, io)"
  in
  let cpp = Cg.emit plan.Api.program in
  Alcotest.(check bool) "scalar loops emitted" true
    (contains cpp "for (coord_t ii = 0; ii < 2; ++ii)");
  Alcotest.(check bool) "field accessors" true (contains cpp "FieldAccessor");
  Alcotest.(check bool) "no substituted kernel" false (contains cpp "substituted local kernel")

let suites =
  [
    ( "legion codegen",
      [
        Alcotest.test_case "summa translation unit" `Quick test_summa_codegen;
        Alcotest.test_case "affine bounds" `Quick test_affine_bounds_recovered;
        Alcotest.test_case "reduction privilege" `Quick test_reduction_privilege;
        Alcotest.test_case "rotation dynamic" `Quick test_rotation_is_dynamic;
        Alcotest.test_case "scalar leaf" `Quick test_scalar_leaf_codegen;
      ] );
  ]
