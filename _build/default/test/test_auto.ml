module Api = Distal.Api
module Machine = Api.Machine
module Auto = Distal_algorithms.Auto
module Stats = Api.Stats

let machine_of grid = Machine.grid grid

let gemm_shapes n = [ ("A", [| n; n |]); ("B", [| n; n |]); ("C", [| n; n |]) ]

let test_auto_gemm_finds_candidates () =
  match
    Auto.search ~machine_of ~procs:4 ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~shapes:(gemm_shapes 16) ()
  with
  | Error e -> Alcotest.fail e
  | Ok cs ->
      Alcotest.(check bool) "several candidates" true (List.length cs > 5);
      let best = List.hd cs in
      Alcotest.(check bool) "best is not OOM" false best.Auto.stats.Stats.oom;
      (* The sort puts the cheapest first. *)
      List.iter
        (fun c ->
          Alcotest.(check bool) "sorted" true
            (best.Auto.stats.Stats.time <= c.Auto.stats.Stats.time
            || best.Auto.stats.Stats.oom = false))
        cs

let test_auto_best_validates () =
  match
    Auto.best ~machine_of ~procs:4 ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~shapes:(gemm_shapes 12) ()
  with
  | Error e -> Alcotest.fail e
  | Ok best -> (
      match Api.validate best.Auto.plan with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("auto-scheduled plan is wrong: " ^ e))

let test_auto_ttv_no_communication () =
  (* The search must discover the element-wise strategy of §7.2.2:
     distributing i with induced row formats moves nothing. *)
  match
    Auto.best ~machine_of ~procs:4 ~stmt:"A(i,j) = B(i,j,k) * c(k)"
      ~shapes:[ ("A", [| 16; 4 |]); ("B", [| 16; 4; 4 |]); ("c", [| 4 |]) ]
      ()
  with
  | Error e -> Alcotest.fail e
  | Ok best ->
      Alcotest.(check (float 0.0)) "no communication" 0.0
        (best.Auto.stats.Stats.bytes_inter +. best.Auto.stats.Stats.bytes_intra);
      Alcotest.(check bool) "distributes i" true (List.mem "i" best.Auto.dist_vars);
      (match Api.validate best.Auto.plan with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_auto_ttm_distributes_i () =
  match
    Auto.best ~machine_of ~procs:4 ~stmt:"A(i,j,l) = B(i,j,k) * C(k,l)"
      ~shapes:
        [ ("A", [| 16; 3; 5 |]); ("B", [| 16; 3; 4 |]); ("C", [| 4; 5 |]) ]
      ()
  with
  | Error e -> Alcotest.fail e
  | Ok best ->
      (* i-only distribution keeps B and A local; only C (tiny) moves. *)
      Alcotest.(check bool) "i among distributed vars" true
        (List.mem "i" best.Auto.dist_vars);
      (match Api.validate best.Auto.plan with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_auto_beats_naive_gemm () =
  (* Any auto choice must beat the single-processor degenerate grid. *)
  match
    Auto.search ~machine_of ~procs:8 ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~shapes:(gemm_shapes 64) ()
  with
  | Error e -> Alcotest.fail e
  | Ok cs ->
      let best = List.hd cs in
      let degenerate =
        List.find_opt (fun c -> c.Auto.grid = [| 1 |]) cs
      in
      (match degenerate with
      | Some d ->
          Alcotest.(check bool) "parallel beats serial" true
            (best.Auto.stats.Stats.time < d.Auto.stats.Stats.time)
      | None -> ());
      Alcotest.(check bool) "describe mentions grid" true
        (Astring_contains.contains (Auto.describe best) "distribute")

let suites =
  [
    ( "auto scheduler",
      [
        Alcotest.test_case "gemm candidates" `Quick test_auto_gemm_finds_candidates;
        Alcotest.test_case "best validates" `Quick test_auto_best_validates;
        Alcotest.test_case "ttv zero comm" `Quick test_auto_ttv_no_communication;
        Alcotest.test_case "ttm keeps B local" `Quick test_auto_ttm_distributes_i;
        Alcotest.test_case "beats serial" `Quick test_auto_beats_naive_gemm;
      ] );
  ]
