module Api = Distal.Api
module Machine = Api.Machine
module Dense = Api.Dense
module Exec = Api.Exec
module Stats = Api.Stats
module Rng = Distal_support.Rng

let gemm_problem ?(n = 8) ?(machine = Machine.grid [| 2; 2 |]) () =
  Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
    ~tensors:
      [
        Api.tensor "A" [| n; n |] ~dist:"[x,y] -> [x,y]";
        Api.tensor "B" [| n; n |] ~dist:"[x,y] -> [x,y]";
        Api.tensor "C" [| n; n |] ~dist:"[x,y] -> [x,y]";
      ] ()

let summa_script =
  "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, 4);\n\
   reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko);\n\
   substitute({ii,ji,ki}, gemm)"

let test_serial_reference_gemm () =
  let rng = Rng.create 11 in
  let shapes = [ ("A", [| 4; 5 |]); ("B", [| 4; 3 |]); ("C", [| 3; 5 |]) ] in
  let b = Dense.random rng [| 4; 3 |] and c = Dense.random rng [| 3; 5 |] in
  let stmt = Distal_ir.Einsum_parser.parse_exn "A(i,j) = B(i,k) * C(k,j)" in
  let got = Exec.serial_reference stmt ~shapes ~data:[ ("B", b); ("C", c) ] in
  let expected = Dense.create [| 4; 5 |] in
  Distal_tensor.Kernels.gemm ~a:expected ~b ~c;
  Alcotest.(check bool) "matches kernel" true (Dense.approx_equal got expected)

let test_serial_reference_accum () =
  let rng = Rng.create 12 in
  let shapes = [ ("A", [| 3 |]); ("B", [| 3 |]) ] in
  let a0 = Dense.random rng [| 3 |] and b = Dense.random rng [| 3 |] in
  let stmt = Distal_ir.Einsum_parser.parse_exn "A(i) += B(i)" in
  let got = Exec.serial_reference stmt ~shapes ~data:[ ("A", a0); ("B", b) ] in
  for i = 0 to 2 do
    Alcotest.(check (float 1e-12)) "sum" (Dense.get a0 [| i |] +. Dense.get b [| i |])
      (Dense.get got [| i |])
  done

let test_summa_validates () =
  let plan = Api.compile_script_exn (gemm_problem ()) ~schedule:summa_script in
  match Api.validate plan with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_model_mode_no_output () =
  let plan = Api.compile_script_exn (gemm_problem ()) ~schedule:summa_script in
  let r = Result.get_ok (Api.run ~mode:Exec.Model plan ~data:[]) in
  Alcotest.(check bool) "no output" true (r.Exec.output = None);
  Alcotest.(check bool) "time positive" true (r.Exec.stats.Stats.time > 0.0)

let test_model_matches_full_stats () =
  (* The event simulation must be identical whether or not data moves. *)
  let plan = Api.compile_script_exn (gemm_problem ()) ~schedule:summa_script in
  let full = (Api.run_exn plan ~data:(Api.random_inputs plan)).Exec.stats in
  let model = Api.estimate plan in
  Alcotest.(check (float 1e-12)) "same time" full.Stats.time model.Stats.time;
  Alcotest.(check int) "same messages" full.Stats.messages model.Stats.messages;
  Alcotest.(check (float 1e-6)) "same flops" full.Stats.flops model.Stats.flops

let test_stats_accounting () =
  let plan = Api.compile_script_exn (gemm_problem ~n:8 ()) ~schedule:summa_script in
  let stats = Api.estimate plan in
  (* 4 tasks; each needs remote chunks of B and C at each of 2 ko steps,
     minus the locally owned halves. *)
  Alcotest.(check int) "tasks" 4 stats.Stats.tasks;
  Alcotest.(check int) "steps" 2 stats.Stats.steps;
  Alcotest.(check (float 1.0)) "gemm flops" (2.0 *. 8.0 *. 8.0 *. 8.0) stats.Stats.flops;
  Alcotest.(check bool) "some communication" true
    (stats.Stats.bytes_intra +. stats.Stats.bytes_inter > 0.0);
  Alcotest.(check bool) "not everything moves" true
    (stats.Stats.bytes_intra +. stats.Stats.bytes_inter < 3.0 *. 8.0 *. 64.0)

let test_local_schedule_no_comm () =
  (* TTV distributed over i with matching row distributions and a
     replicated vector: zero communication (§7.2.2). *)
  let machine = Machine.grid [| 4 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,j,k) * c(k)"
      ~tensors:
        [
          Api.tensor "A" [| 8; 4 |] ~dist:"[x,y] -> [x]";
          Api.tensor "B" [| 8; 4; 4 |] ~dist:"[x,y,z] -> [x]";
          Api.tensor "c" [| 4 |] ~dist:"[x] -> [*]";
        ] ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "divide(i, io, ii, 4); distribute(io); communicate({A,B,c}, io);\n\
         substitute({ii,j,k}, ttv)"
  in
  (match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  let stats = Api.estimate plan in
  Alcotest.(check (float 0.0)) "no inter bytes" 0.0 stats.Stats.bytes_inter;
  Alcotest.(check (float 0.0)) "no intra bytes" 0.0 stats.Stats.bytes_intra

let test_broadcast_grouping () =
  (* One owner serving the same block to every processor in a row is a
     broadcast: message count reflects per-receiver copies. *)
  let machine = Machine.grid [| 1; 4 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| 4; 8 |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "B" [| 4; 4 |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "C" [| 4; 8 |] ~dist:"[x,y] -> [x,y]";
        ] ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "distribute_onto({i,j}, {io,jo}, {ii,ji}, [1,4]);\n\
         communicate(A, jo); communicate({B,C}, jo); substitute({ii,ji,k}, gemm)"
  in
  (match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  let stats = Api.estimate plan in
  (* B's single 4x4 tile lives on (0,0) and is broadcast to the other 3. *)
  Alcotest.(check bool) "broadcast messages counted" true (stats.Stats.messages >= 3)

let test_reduction_schedule () =
  (* Distribute the k loop: partial sums must be reduced into A. *)
  let machine = Machine.grid [| 4 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| 4; 4 |] ~dist:"[x,y] -> [0]";
          Api.tensor "B" [| 4; 8 |] ~dist:"[x,y] -> [y]";
          Api.tensor "C" [| 8; 4 |] ~dist:"[x,y] -> [x]";
        ] ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "divide(k, ko, ki, 4); reorder(ko, i, j, ki); distribute(ko);\n\
         communicate({A,B,C}, ko); substitute({i,j,ki}, gemm)"
  in
  match Api.validate plan with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_peak_memory_and_oom () =
  let tiny = Machine.grid ~mem_per_proc:100.0 [| 2; 2 |] in
  let plan =
    Api.compile_script_exn (gemm_problem ~machine:tiny ()) ~schedule:summa_script
  in
  let stats = Api.estimate plan in
  Alcotest.(check bool) "oom flagged" true stats.Stats.oom;
  let plan2 = Api.compile_script_exn (gemm_problem ()) ~schedule:summa_script in
  let stats2 = Api.estimate plan2 in
  Alcotest.(check bool) "no oom with room" false stats2.Stats.oom;
  Alcotest.(check bool) "peak includes tiles" true (stats2.Stats.peak_mem > 0.0)

let test_redistribute () =
  let machine = Machine.grid [| 4 |] in
  let rows = Api.Distnot.parse_exn "[x,y] -> [x]" in
  let cols = Api.Distnot.parse_exn "[x,y] -> [y]" in
  let st = Api.redistribute ~machine ~shape:[| 8; 8 |] ~src:rows ~dst:cols () in
  Alcotest.(check bool) "moves data" true (st.Stats.bytes_inter > 0.0);
  let same = Api.redistribute ~machine ~shape:[| 8; 8 |] ~src:rows ~dst:rows () in
  Alcotest.(check (float 0.0)) "same layout is free" 0.0
    (same.Stats.bytes_inter +. same.Stats.bytes_intra)

let test_describe () =
  let plan = Api.compile_script_exn (gemm_problem ()) ~schedule:summa_script in
  let s = Api.describe plan in
  Alcotest.(check bool) "shows cin and taskir" true
    (Astring_contains.contains s "concrete index notation"
    && Astring_contains.contains s "index_task_launch")

let test_missing_distribution_rejected () =
  let machine = Machine.grid [| 2 |] in
  match
    Api.problem ~machine ~stmt:"A(i) = B(i)"
      ~tensors:[ Api.tensor "A" [| 4 |] ~dist:"[x] -> [x]" ] ()
  with
  | Ok _ -> Alcotest.fail "undeclared tensor must be rejected"
  | Error _ -> ()

let test_scalar_output_innerprod () =
  let machine = Machine.grid [| 2 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"a = B(i,j,k) * C(i,j,k)"
      ~tensors:
        [
          Api.tensor "a" [||] ~dist:"[] -> [0]";
          Api.tensor "B" [| 4; 3; 3 |] ~dist:"[x,y,z] -> [x]";
          Api.tensor "C" [| 4; 3; 3 |] ~dist:"[x,y,z] -> [x]";
        ] ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "divide(i, io, ii, 2); distribute(io); communicate({a,B,C}, io);\n\
         substitute({ii,j,k}, innerprod)"
  in
  match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e

let suites =
  [
    ( "runtime",
      [
        Alcotest.test_case "serial reference gemm" `Quick test_serial_reference_gemm;
        Alcotest.test_case "serial reference accum" `Quick test_serial_reference_accum;
        Alcotest.test_case "summa validates" `Quick test_summa_validates;
        Alcotest.test_case "model mode" `Quick test_model_mode_no_output;
        Alcotest.test_case "model = full stats" `Quick test_model_matches_full_stats;
        Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
        Alcotest.test_case "local schedule no comm" `Quick test_local_schedule_no_comm;
        Alcotest.test_case "broadcast grouping" `Quick test_broadcast_grouping;
        Alcotest.test_case "distributed reduction" `Quick test_reduction_schedule;
        Alcotest.test_case "peak memory / oom" `Quick test_peak_memory_and_oom;
        Alcotest.test_case "redistribute" `Quick test_redistribute;
        Alcotest.test_case "describe" `Quick test_describe;
        Alcotest.test_case "missing declaration" `Quick test_missing_distribution_rejected;
        Alcotest.test_case "scalar innerprod" `Quick test_scalar_output_innerprod;
      ] );
  ]
