module P = Distal_ir.Einsum_parser
module Cin = Distal_ir.Cin
module S = Distal_ir.Schedule

let shapes = [ ("A", [| 8; 8 |]); ("B", [| 8; 8 |]); ("C", [| 8; 8 |]) ]

let gemm_cin () =
  Result.get_ok (Cin.of_stmt (P.parse_exn "A(i,j) = B(i,k) * C(k,j)") ~shapes)

let apply_all cin cmds = Result.get_ok (S.apply_all cin cmds)

let expect_error cin cmds =
  match S.apply_all cin cmds with
  | Ok _ -> Alcotest.fail "expected scheduling error"
  | Error _ -> ()

let loop_vars cin = Cin.loop_vars cin

let test_initial_loop_order () =
  Alcotest.(check (list string)) "left-to-right" [ "i"; "j"; "k" ] (loop_vars (gemm_cin ()))

let test_divide () =
  let cin = apply_all (gemm_cin ()) [ S.Divide ("i", "io", "ii", 2) ] in
  Alcotest.(check (list string)) "io ii in place" [ "io"; "ii"; "j"; "k" ] (loop_vars cin)

let test_reorder_in_slots () =
  let cin =
    apply_all (gemm_cin ())
      [ S.Divide ("i", "io", "ii", 2); S.Divide ("j", "jo", "ji", 2);
        S.Reorder [ "io"; "jo"; "ii"; "ji" ] ]
  in
  Alcotest.(check (list string)) "reordered" [ "io"; "jo"; "ii"; "ji"; "k" ] (loop_vars cin)

let test_reorder_partial () =
  (* Reordering a subset only permutes those slots (k stays innermost). *)
  let cin = apply_all (gemm_cin ()) [ S.Reorder [ "j"; "i" ] ] in
  Alcotest.(check (list string)) "swap" [ "j"; "i"; "k" ] (loop_vars cin)

let test_distribute_onto () =
  let cin =
    apply_all (gemm_cin ())
      [ S.Distribute_onto
          { targets = [ "i"; "j" ]; dist = [ "io"; "jo" ]; local = [ "ii"; "ji" ];
            grid = [| 2; 4 |] } ]
  in
  Alcotest.(check (list string)) "dist outermost" [ "io"; "jo"; "ii"; "ji"; "k" ]
    (loop_vars cin);
  Alcotest.(check (list string)) "distributed" [ "io"; "jo" ] (Cin.distributed_vars cin)

let test_collapse () =
  let cin = apply_all (gemm_cin ()) [ S.Collapse ("i", "j", "f") ] in
  Alcotest.(check (list string)) "fused" [ "f"; "k" ] (loop_vars cin)

let test_collapse_requires_adjacent () =
  expect_error (gemm_cin ()) [ S.Collapse ("i", "k", "f") ]

let test_rotate () =
  let cin =
    apply_all (gemm_cin ())
      [ S.Distribute_onto
          { targets = [ "i"; "j" ]; dist = [ "io"; "jo" ]; local = [ "ii"; "ji" ];
            grid = [| 2; 2 |] };
        S.Divide ("k", "ko", "ki", 2);
        S.Reorder [ "ko"; "ii"; "ji"; "ki" ];
        S.Rotate { target = "ko"; by = [ "io"; "jo" ]; result = "kos" } ]
  in
  Alcotest.(check (list string)) "rotated var replaces target"
    [ "io"; "jo"; "kos"; "ii"; "ji"; "ki" ] (loop_vars cin)

let test_rotate_requires_enclosing () =
  (* Rotating by variables that do not enclose the target is invalid. *)
  expect_error (gemm_cin ())
    [ S.Rotate { target = "i"; by = [ "k" ]; result = "is" } ]

let test_communicate_unknown_tensor () =
  expect_error (gemm_cin ()) [ S.Communicate ([ "Z" ], "i") ]

let test_unknown_loop () =
  expect_error (gemm_cin ()) [ S.Divide ("z", "zo", "zi", 2) ];
  expect_error (gemm_cin ()) [ S.Reorder [ "i"; "z" ] ]

let test_substitute_innermost_only () =
  let cin = apply_all (gemm_cin ()) [ S.Substitute ([ "i"; "j"; "k" ], "gemm") ] in
  (match cin.Cin.substituted with
  | Some (_, "gemm") -> ()
  | _ -> Alcotest.fail "expected substitution recorded");
  expect_error (gemm_cin ()) [ S.Substitute ([ "i"; "j" ], "gemm") ];
  expect_error (gemm_cin ()) [ S.Substitute ([ "j"; "k" ], "nosuchkernel") ]

let test_parallelize_annotation () =
  let cin = apply_all (gemm_cin ()) [ S.Parallelize "i" ] in
  let l = List.hd cin.Cin.loops in
  Alcotest.(check bool) "annotated" true (List.mem Cin.Parallelized l.Cin.annots)

let test_duplicate_divide_rejected () =
  expect_error (gemm_cin ())
    [ S.Divide ("i", "io", "ii", 2); S.Divide ("i", "x", "y", 2) ]

let test_script_parse () =
  let script =
    "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]);\n\
     split(k, ko, ki, 4); reorder(ko, ii, ji, ki);\n\
     # a comment\n\
     communicate(A, jo); communicate({B,C}, ko);\n\
     rotate(ko, {io,jo}, kos);\n\
     substitute({ii,ji,ki}, gemm)"
  in
  match S.parse script with
  | Error e -> Alcotest.failf "script parse failed: %s" e
  | Ok cmds ->
      Alcotest.(check int) "seven commands" 7 (List.length cmds);
      Alcotest.(check string) "first" "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2])"
        (S.to_string (List.hd cmds))

let test_script_fluent_dots () =
  (* The fluent ".divide(...).reorder(...)" style of Fig. 2 is accepted. *)
  match S.parse ".divide(i, io, ii, 2).reorder(io, ii)" with
  | Ok [ S.Divide _; S.Reorder _ ] -> ()
  | Ok _ -> Alcotest.fail "wrong commands"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_script_errors () =
  List.iter
    (fun s ->
      match S.parse s with
      | Ok _ -> Alcotest.failf "expected script error for %S" s
      | Error _ -> ())
    [ "frobnicate(i)"; "divide(i, io, ii)"; "divide(i io ii 2)"; "reorder(" ]

let test_cin_to_string () =
  let cin =
    apply_all (gemm_cin ())
      [ S.Distribute_onto
          { targets = [ "i"; "j" ]; dist = [ "io"; "jo" ]; local = [ "ii"; "ji" ];
            grid = [| 2; 2 |] };
        S.Communicate ([ "A" ], "jo") ]
  in
  let s = Cin.to_string cin in
  Alcotest.(check bool) "shows dist" true (Astring_contains.contains s "forall io[dist]");
  Alcotest.(check bool) "shows comm" true
    (Astring_contains.contains s "forall jo[dist; comm A]")

let suites =
  [
    ( "schedule",
      [
        Alcotest.test_case "initial order" `Quick test_initial_loop_order;
        Alcotest.test_case "divide" `Quick test_divide;
        Alcotest.test_case "reorder in slots" `Quick test_reorder_in_slots;
        Alcotest.test_case "reorder partial" `Quick test_reorder_partial;
        Alcotest.test_case "distribute_onto" `Quick test_distribute_onto;
        Alcotest.test_case "collapse" `Quick test_collapse;
        Alcotest.test_case "collapse adjacency" `Quick test_collapse_requires_adjacent;
        Alcotest.test_case "rotate" `Quick test_rotate;
        Alcotest.test_case "rotate enclosing" `Quick test_rotate_requires_enclosing;
        Alcotest.test_case "communicate unknown tensor" `Quick test_communicate_unknown_tensor;
        Alcotest.test_case "unknown loop" `Quick test_unknown_loop;
        Alcotest.test_case "substitute innermost" `Quick test_substitute_innermost_only;
        Alcotest.test_case "parallelize" `Quick test_parallelize_annotation;
        Alcotest.test_case "duplicate divide" `Quick test_duplicate_divide_rejected;
        Alcotest.test_case "script parse" `Quick test_script_parse;
        Alcotest.test_case "fluent dots" `Quick test_script_fluent_dots;
        Alcotest.test_case "script errors" `Quick test_script_errors;
        Alcotest.test_case "cin to_string" `Quick test_cin_to_string;
      ] );
  ]
