module Api = Distal.Api
module Machine = Api.Machine
module Stats = Api.Stats
module P = Distal_ir.Precompute
module Parser = Distal_ir.Einsum_parser
module Expr = Distal_ir.Expr

let test_precompute_split () =
  let stmt = Parser.parse_exn "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)" in
  match P.split stmt ~factors:[ "C"; "D" ] ~workspace:"W" with
  | Error e -> Alcotest.fail e
  | Ok (ws, rewritten) ->
      Alcotest.(check string) "workspace stmt" "W(j,l,k) = C(j,l) * D(k,l)"
        (Expr.to_string ws);
      Alcotest.(check string) "rewritten stmt" "A(i,l) = B(i,j,k) * W(j,l,k)"
        (Expr.to_string rewritten);
      let shapes =
        [ ("A", [| 4; 3 |]); ("B", [| 4; 5; 6 |]); ("C", [| 5; 3 |]); ("D", [| 6; 3 |]) ]
      in
      Alcotest.(check (array int)) "workspace shape" [| 5; 3; 6 |]
        (P.workspace_shape stmt ~shapes ~workspace_stmt:ws)

let test_precompute_errors () =
  let stmt = Parser.parse_exn "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)" in
  let expect_err factors workspace =
    match P.split stmt ~factors ~workspace with
    | Ok _ -> Alcotest.fail "expected precompute error"
    | Error _ -> ()
  in
  expect_err [ "B"; "C"; "D" ] "W" (* cannot hoist everything *);
  expect_err [ "Z" ] "W" (* unknown factor *);
  expect_err [ "C" ] "A" (* workspace name collision *);
  let sum = Parser.parse_exn "A(i) = B(i) + C(i)" in
  match P.split sum ~factors:[ "B" ] ~workspace:"W" with
  | Ok _ -> Alcotest.fail "sum statements cannot be split"
  | Error _ -> ()

(* The workspace split of MTTKRP (CTF's strategy, expressed inside DISTAL)
   must compute the same values as the fused kernel. *)
let mttkrp_pipeline () =
  let machine = Machine.grid [| 2; 2 |] in
  let i, j, k, l = 8, 6, 4, 3 in
  let stmt = Parser.parse_exn "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)" in
  let ws, rewritten = Result.get_ok (P.split stmt ~factors:[ "C"; "D" ] ~workspace:"W") in
  let shapes =
    [ ("A", [| i; l |]); ("B", [| i; j; k |]); ("C", [| j; l |]); ("D", [| k; l |]) ]
  in
  let wshape = P.workspace_shape stmt ~shapes ~workspace_stmt:ws in
  let tensors =
    [
      Api.tensor "A" [| i; l |] ~dist:"[x,y] -> [x,*]";
      Api.tensor "B" [| i; j; k |] ~dist:"[x,y,z] -> [x,y]";
      Api.tensor "C" [| j; l |] ~dist:"[x,y] -> [*,*]";
      Api.tensor "D" [| k; l |] ~dist:"[x,y] -> [*,*]";
      Api.tensor "W" wshape ~dist:"[x,y,z] -> [*,*]";
    ]
  in
  Result.get_ok
    (Api.pipeline_script ~machine ~tensors
       ~stages:
         [
           (Expr.to_string ws, "divide(j, jo, ji, 2); distribute(jo); communicate({W,C,D}, jo)");
           ( Expr.to_string rewritten,
             "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]);\n\
              communicate({A,B,W}, jo)" );
         ])

let test_pipeline_validates () =
  match Api.validate_pipeline (mttkrp_pipeline ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_pipeline_stats_accumulate () =
  let pl = mttkrp_pipeline () in
  let s = Api.estimate_pipeline pl in
  Alcotest.(check bool) "two stages of tasks" true (s.Stats.tasks >= 6);
  Alcotest.(check bool) "positive time" true (s.Stats.time > 0.0)

let test_pipeline_stage_feeds_next () =
  (* D = (B*C) * E as two gemms through an explicit intermediate. *)
  let machine = Machine.grid [| 2 |] in
  let n = 6 in
  let t name dist = Api.tensor name [| n; n |] ~dist in
  let pl =
    Result.get_ok
      (Api.pipeline_script ~machine
         ~tensors:
           [
             t "M" "[x,y] -> [x]"; t "B" "[x,y] -> [x]"; t "C" "[x,y] -> [*]";
             t "E" "[x,y] -> [*]"; t "D" "[x,y] -> [x]";
           ]
         ~stages:
           [
             ("M(i,j) = B(i,k) * C(k,j)",
              "divide(i, io, ii, 2); distribute(io); communicate({M,B,C}, io);\n\
               substitute({ii,j,k}, gemm)");
             ("D(i,j) = M(i,k) * E(k,j)",
              "divide(i, io, ii, 2); distribute(io); communicate({D,M,E}, io);\n\
               substitute({ii,j,k}, gemm)");
           ])
  in
  match Api.validate_pipeline pl with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_pipeline_bad_stage_rejected () =
  let machine = Machine.grid [| 2 |] in
  match
    Api.pipeline_script ~machine
      ~tensors:[ Api.tensor "A" [| 4 |] ~dist:"[x] -> [x]" ]
      ~stages:[ ("A(i) = Nope(i)", "") ]
  with
  | Ok _ -> Alcotest.fail "undeclared tensor in a stage must be rejected"
  | Error _ -> ()

let suites =
  [
    ( "precompute & pipelines",
      [
        Alcotest.test_case "precompute split" `Quick test_precompute_split;
        Alcotest.test_case "precompute errors" `Quick test_precompute_errors;
        Alcotest.test_case "mttkrp via workspace" `Quick test_pipeline_validates;
        Alcotest.test_case "pipeline stats" `Quick test_pipeline_stats_accumulate;
        Alcotest.test_case "two-gemm chain" `Quick test_pipeline_stage_feeds_next;
        Alcotest.test_case "bad stage" `Quick test_pipeline_bad_stage_rejected;
      ] );
  ]
