module Api = Distal.Api
module Machine = Api.Machine
module M = Distal_algorithms.Matmul
module H = Distal_algorithms.Higher_order
module Cs = Distal_algorithms.Cosma_scheduler
module Stats = Api.Stats

let validate name (r : (M.t, string) result) =
  match r with
  | Error e -> Alcotest.failf "%s construction failed: %s" name e
  | Ok alg -> (
      match Api.validate alg.M.plan with
      | Ok () -> alg
      | Error e -> Alcotest.failf "%s validation failed: %s" name e)

let test_summa () = ignore (validate "summa" (M.summa ~n:8 ~machine:(Machine.grid [| 2; 2 |]) ()))
let test_cannon () = ignore (validate "cannon" (M.cannon ~n:9 ~machine:(Machine.grid [| 3; 3 |])))
let test_pumma () = ignore (validate "pumma" (M.pumma ~n:8 ~machine:(Machine.grid [| 2; 2 |])))

let test_johnson_overdecomposed () =
  (* 8 virtual tasks folded onto 2 physical processors must still be
     correct. *)
  ignore
    (validate "johnson over-decomposed"
       (M.johnson ~virtual_cube:[| 2; 2; 2 |] ~n:8 ~machine:(Machine.grid [| 2 |]) ()))

let test_johnson () =
  ignore (validate "johnson" (M.johnson ~n:8 ~machine:(Machine.grid [| 2; 2; 2 |]) ()))

let test_solomonik () =
  ignore (validate "solomonik" (M.solomonik ~n:8 ~machine:(Machine.grid [| 2; 2; 2 |])))

let test_cosma () =
  ignore (validate "cosma" (M.cosma ~n:8 ~machine:(Machine.grid [| 2; 2; 2 |]) ()))

let test_cosma_degenerate_2d () =
  ignore (validate "cosma 2d" (M.cosma ~n:8 ~machine:(Machine.grid [| 2; 2; 1 |]) ()))

let test_rectangular_2d_algorithms () =
  List.iter
    (fun (name, f) ->
      ignore (validate (name ^ " 2x4") (f ~n:8 ~machine:(Machine.grid [| 2; 4 |]))))
    M.all_2d

let test_wrong_machine_rejected () =
  (match M.johnson ~n:8 ~machine:(Machine.grid [| 2; 2 |]) () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "johnson on a 2-D machine must be rejected");
  match M.summa ~n:8 ~machine:(Machine.grid [| 2; 2; 2 |]) () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "summa on a 3-D machine must be rejected"

let test_cannon_beats_summa_on_comm_pattern () =
  (* The systolic rotation must remove the broadcasts: Cannon's B and C
     tiles each have a single receiver per step, so at equal volume its
     modeled time is no worse than SUMMA's (§7.1.2). *)
  let machine = Machine.grid ~kind:Machine.Gpu ~mem_per_proc:16e9 [| 4; 4 |] in
  let summa = Result.get_ok (M.summa ~chunks_per_tile:1 ~n:64 ~machine ()) in
  let cannon = Result.get_ok (M.cannon ~n:64 ~machine) in
  let ts = (Api.estimate summa.M.plan).Stats.time in
  let tc = (Api.estimate cannon.M.plan).Stats.time in
  Alcotest.(check bool) "cannon <= summa" true (tc <= ts +. 1e-12)

let test_johnson_replication_uses_memory () =
  let m2d = Machine.grid [| 4; 4; 1 |] in
  let m3d = Machine.grid [| 2; 2; 4 |] in
  let flat = Result.get_ok (M.cosma ~n:32 ~machine:m2d ()) in
  let deep = Result.get_ok (M.cosma ~n:32 ~machine:m3d ()) in
  let pf = (Api.estimate flat.M.plan).Stats.peak_mem in
  let pd = (Api.estimate deep.M.plan).Stats.peak_mem in
  Alcotest.(check bool) "k-split uses more memory per proc" true (pd > pf)

(* {2 COSMA scheduler} *)

let test_cosma_scheduler_factor_pairs () =
  Alcotest.(check (list (pair int int))) "pairs of 12"
    [ (1, 12); (2, 6); (3, 4); (4, 3); (6, 2); (12, 1) ]
    (Cs.factor_pairs 12);
  Alcotest.(check (pair int int)) "best pair 12" (3, 4) (Cs.best_pair 12);
  Alcotest.(check (pair int int)) "best pair 16" (4, 4) (Cs.best_pair 16)

let test_cosma_scheduler_cube () =
  (* With plentiful memory and a cube-friendly processor count, the
     decomposition goes 3-D. *)
  let d = Cs.find ~procs:64 ~m:4096 ~n:4096 ~k:4096 ~mem_per_proc:256e9 in
  let g1, g2, g3 = d.Cs.grid in
  Alcotest.(check int) "uses all procs" 64 (g1 * g2 * g3);
  Alcotest.(check bool) "k-split chosen" true (g3 > 1)

let test_cosma_scheduler_memory_limited () =
  (* With tiny memory the k-replication no longer fits: it falls back to
     the balanced 2-D grid. *)
  let d = Cs.find ~procs:16 ~m:4096 ~n:4096 ~k:4096 ~mem_per_proc:26e6 in
  let g1, g2, g3 = d.Cs.grid in
  Alcotest.(check int) "g3 = 1" 1 g3;
  Alcotest.(check (pair int int)) "balanced" (4, 4) (g1, g2)

let test_cosma_scheduler_grid_products () =
  List.iter
    (fun p ->
      let d = Cs.find ~procs:p ~m:1024 ~n:1024 ~k:1024 ~mem_per_proc:256e9 in
      let g1, g2, g3 = d.Cs.grid in
      Alcotest.(check int) (Printf.sprintf "product %d" p) p (g1 * g2 * g3))
    [ 1; 2; 3; 4; 6; 8; 12; 16; 24; 32 ]

(* {2 Higher-order kernels} *)

let validate_h name (r : (H.t, string) result) =
  match r with
  | Error e -> Alcotest.failf "%s construction failed: %s" name e
  | Ok h -> (
      match Api.validate h.H.plan with
      | Ok () -> h
      | Error e -> Alcotest.failf "%s validation failed: %s" name e)

let test_ttv () =
  let h = validate_h "ttv" (H.ttv ~i:8 ~j:3 ~k:4 ~machine:(Machine.grid [| 4 |])) in
  let s = Api.estimate h.H.plan in
  Alcotest.(check (float 0.0)) "ttv communication-free" 0.0
    (s.Stats.bytes_inter +. s.Stats.bytes_intra)

let test_innerprod () =
  ignore (validate_h "innerprod" (H.innerprod ~i:8 ~j:3 ~k:4 ~machine:(Machine.grid [| 4 |])))

let test_ttm () =
  let h = validate_h "ttm" (H.ttm ~i:8 ~j:3 ~k:4 ~l:5 ~machine:(Machine.grid [| 4 |])) in
  let s = Api.estimate h.H.plan in
  Alcotest.(check (float 0.0)) "ttm communication-free" 0.0
    (s.Stats.bytes_inter +. s.Stats.bytes_intra)

let test_mttkrp () =
  ignore
    (validate_h "mttkrp" (H.mttkrp ~i:8 ~j:6 ~k:6 ~l:4 ~machine:(Machine.grid [| 2; 2 |])))

let qcheck_all_algorithms_validate =
  QCheck.Test.make ~name:"fig9 algorithms validate on random grids" ~count:15
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (gx, gy) ->
      let n = 2 * gx * gy in
      let m2 = Machine.grid [| gx; gy |] in
      List.for_all
        (fun (_, f) ->
          match f ~n ~machine:m2 with
          | Error _ -> false
          | Ok (alg : M.t) -> Result.is_ok (Api.validate alg.M.plan))
        M.all_2d)

let suites =
  [
    ( "fig9 algorithms",
      [
        Alcotest.test_case "summa" `Quick test_summa;
        Alcotest.test_case "cannon" `Quick test_cannon;
        Alcotest.test_case "pumma" `Quick test_pumma;
        Alcotest.test_case "johnson" `Quick test_johnson;
        Alcotest.test_case "johnson over-decomposed" `Quick test_johnson_overdecomposed;
        Alcotest.test_case "solomonik 2.5d" `Quick test_solomonik;
        Alcotest.test_case "cosma" `Quick test_cosma;
        Alcotest.test_case "cosma 2d degenerate" `Quick test_cosma_degenerate_2d;
        Alcotest.test_case "rectangular grids" `Quick test_rectangular_2d_algorithms;
        Alcotest.test_case "machine shape rejected" `Quick test_wrong_machine_rejected;
        Alcotest.test_case "cannon vs summa comm" `Quick test_cannon_beats_summa_on_comm_pattern;
        Alcotest.test_case "replication memory" `Quick test_johnson_replication_uses_memory;
        QCheck_alcotest.to_alcotest qcheck_all_algorithms_validate;
      ] );
    ( "cosma scheduler",
      [
        Alcotest.test_case "factor pairs" `Quick test_cosma_scheduler_factor_pairs;
        Alcotest.test_case "cube decomposition" `Quick test_cosma_scheduler_cube;
        Alcotest.test_case "memory limited" `Quick test_cosma_scheduler_memory_limited;
        Alcotest.test_case "grid products" `Quick test_cosma_scheduler_grid_products;
      ] );
    ( "higher order",
      [
        Alcotest.test_case "ttv" `Quick test_ttv;
        Alcotest.test_case "innerprod" `Quick test_innerprod;
        Alcotest.test_case "ttm" `Quick test_ttm;
        Alcotest.test_case "mttkrp" `Quick test_mttkrp;
      ] );
  ]
