(* Finer-grained executor behaviours: completion granularity (Fig. 7),
   over-decomposition accounting, combined reduction/accumulate semantics,
   and instance-cache behaviour. *)

module Api = Distal.Api
module Machine = Api.Machine
module Stats = Api.Stats
module Exec = Api.Exec

let running_example schedule =
  let machine = Machine.grid [| 3 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"a(i) = b(j)"
      ~tensors:
        [
          Api.tensor "a" [| 3 |] ~dist:"[x] -> [x]";
          Api.tensor "b" [| 3 |] ~dist:"[x] -> [x]";
        ]
      ()
  in
  Api.compile_script_exn p ~schedule

(* Fig. 7a: the naive completion communicates at every iteration-space
   point — communicate(b, j) puts one single-element copy per (i, j) pair
   where b(j) is remote. *)
let test_naive_completion_fig7a () =
  let plan = running_example "distribute(i); communicate(a, i); communicate(b, j)" in
  (match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  let s = Api.estimate plan in
  (* 3 processors x 2 remote elements each, one message per element. *)
  Alcotest.(check int) "per-point messages" 6 s.Stats.messages;
  Alcotest.(check int) "j is a pipeline step" 3 s.Stats.steps;
  Alcotest.(check (float 0.0)) "one element per message" (6.0 *. 8.0)
    (s.Stats.bytes_inter +. s.Stats.bytes_intra)

(* Fig. 7b: aggregating under i fetches each processor's remote data in one
   message per source. *)
let test_aggregated_completion_fig7b () =
  let plan = running_example "distribute(i); communicate({a,b}, i)" in
  (match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  let s = Api.estimate plan in
  (* Each processor needs b[0,3): two remote single-owner pieces. Same
     volume as 7a, fewer but larger... here pieces are per-owner, so the
     message count matches but each is fetched once rather than per j. *)
  Alcotest.(check int) "aggregated steps" 1 s.Stats.steps;
  Alcotest.(check (float 0.0)) "same volume" (6.0 *. 8.0)
    (s.Stats.bytes_inter +. s.Stats.bytes_intra)

let test_overdecomposition_doubles_work_per_proc () =
  (* The same statement on the same 2 processors, once with a matching
     launch grid and once over-decomposed 4-ways: same results, same
     flops, roughly double the per-step occupancy. *)
  let machine = Machine.grid [| 2 |] in
  let mk grid schedule =
    let p =
      Api.problem_exn ~virtual_grid:grid ~machine ~stmt:"A(i,j) = B(i,j) + C(i,j)"
        ~tensors:
          [
            Api.tensor "A" [| 8; 8 |] ~dist:"[x,y] -> [x]";
            Api.tensor "B" [| 8; 8 |] ~dist:"[x,y] -> [x]";
            Api.tensor "C" [| 8; 8 |] ~dist:"[x,y] -> [x]";
          ]
        ()
    in
    Api.compile_script_exn p ~schedule
  in
  let exact = mk [| 2 |] "divide(i, io, ii, 2); distribute(io); communicate({A,B,C}, io)" in
  let over = mk [| 4 |] "divide(i, io, ii, 4); distribute(io); communicate({A,B,C}, io)" in
  (match Api.validate over with Ok () -> () | Error e -> Alcotest.fail e);
  let se = Api.estimate exact and so = Api.estimate over in
  Alcotest.(check (float 1e-6)) "same flops" se.Stats.flops so.Stats.flops;
  Alcotest.(check int) "4 tasks over-decomposed" 4 so.Stats.tasks;
  Alcotest.(check bool) "no extra communication" true
    (so.Stats.bytes_inter +. so.Stats.bytes_intra <= 1e-9)

let test_accumulate_into_reduction () =
  (* '+=' with a distributed reduction variable: partials reduce on top of
     the existing output values. *)
  let machine = Machine.grid [| 3 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"a(i) += B(i,k) * c(k)"
      ~tensors:
        [
          Api.tensor "a" [| 4 |] ~dist:"[x] -> [0]";
          Api.tensor "B" [| 4; 9 |] ~dist:"[x,y] -> [y]";
          Api.tensor "c" [| 9 |] ~dist:"[x] -> [x]";
        ]
      ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:"divide(k, ko, ki, 3); reorder(ko, i, ki); distribute(ko);\n\
                 communicate({a,B,c}, ko)"
  in
  match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e

let test_instance_cache_avoids_recommunication () =
  (* communicate(C, ko) where C's footprint does not depend on ko: the
     instance is cached, so only the first iteration pays. *)
  let machine = Machine.grid [| 2 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| 4; 4 |] ~dist:"[x,y] -> [x]";
          Api.tensor "B" [| 4; 4 |] ~dist:"[x,y] -> [x]";
          Api.tensor "C" [| 4; 4 |] ~dist:"[x,y] -> [0]";
        ]
      ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "divide(i, io, ii, 2); distribute(io); split(j, jo, ji, 2);\n\
         reorder(io, jo, ii, ji, k); communicate({A,B}, io); communicate(C, jo)"
  in
  (match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  let s = Api.estimate plan in
  (* C lives on processor 0; processor 1 fetches the whole of C once,
     not once per jo step. *)
  Alcotest.(check (float 0.0)) "C fetched once" (4.0 *. 4.0 *. 8.0)
    (s.Stats.bytes_inter +. s.Stats.bytes_intra)

let test_trace_disabled_by_default () =
  let plan = running_example "distribute(i); communicate({a,b}, i)" in
  let r = Api.run_exn plan ~data:(Api.random_inputs plan) in
  Alcotest.(check bool) "runs without a trace sink" true (r.Exec.output <> None)

let suites =
  [
    ( "exec details",
      [
        Alcotest.test_case "fig7a naive completion" `Quick test_naive_completion_fig7a;
        Alcotest.test_case "fig7b aggregation" `Quick test_aggregated_completion_fig7b;
        Alcotest.test_case "over-decomposition" `Quick test_overdecomposition_doubles_work_per_proc;
        Alcotest.test_case "accumulate + reduction" `Quick test_accumulate_into_reduction;
        Alcotest.test_case "instance cache" `Quick test_instance_cache_avoids_recommunication;
        Alcotest.test_case "no trace by default" `Quick test_trace_disabled_by_default;
      ] );
  ]
