module Machine = Distal_machine.Machine
module Cost = Distal_machine.Cost_model

let test_grid () =
  let m = Machine.grid [| 3; 4 |] in
  Alcotest.(check int) "procs" 12 (Machine.num_procs m);
  Alcotest.(check int) "nodes" 12 (Machine.num_nodes m);
  Alcotest.(check int) "dim" 2 (Machine.dim m);
  Alcotest.(check int) "coords count" 12 (List.length (Machine.proc_coords m))

let test_hierarchical () =
  let m =
    Machine.hierarchical ~node_dims:[| 2; 2 |] ~proc_dims:[| 4 |] ~kind:Machine.Gpu
      ~mem_per_proc:16e9
  in
  Alcotest.(check int) "procs" 16 (Machine.num_procs m);
  Alcotest.(check int) "nodes" 4 (Machine.num_nodes m);
  Alcotest.(check bool) "same node" true
    (Machine.same_node m [| 1; 0; 2 |] [| 1; 0; 3 |]);
  Alcotest.(check bool) "different node" false
    (Machine.same_node m [| 1; 0; 2 |] [| 1; 1; 2 |]);
  Alcotest.(check (float 0.0)) "mem" 16e9 (Machine.mem_per_proc_bytes m)

let test_linearize_roundtrip () =
  let m = Machine.grid [| 2; 3; 2 |] in
  List.iter
    (fun c ->
      Alcotest.(check (array int)) "roundtrip" c
        (Machine.delinearize m (Machine.linearize m c)))
    (Machine.proc_coords m)

let test_flat_grid_single_node_per_proc () =
  let m = Machine.grid [| 4 |] in
  Alcotest.(check bool) "distinct nodes" false (Machine.same_node m [| 0 |] [| 1 |])

let test_copy_time () =
  let c = Cost.cpu_distal in
  let t1 = Cost.copy_time c Cost.Inter ~bytes:1e9 in
  let t2 = Cost.copy_time c Cost.Inter ~bytes:2e9 in
  Alcotest.(check bool) "monotone in bytes" true (t2 > t1);
  Alcotest.(check bool) "intra faster" true
    (Cost.copy_time c Cost.Intra ~bytes:1e9 < t1)

let test_collective_factor () =
  Alcotest.(check (float 0.0)) "k=1" 0.0 (Cost.collective_factor 1);
  Alcotest.(check (float 0.0)) "k=2" 1.0 (Cost.collective_factor 2);
  Alcotest.(check (float 0.0)) "k=8" 3.0 (Cost.collective_factor 8);
  Alcotest.(check (float 0.0)) "k=9" 4.0 (Cost.collective_factor 9)

let test_broadcast_bandwidth_optimal () =
  let c = Cost.gpu_distal in
  let bytes = 1e8 in
  let b2 = Cost.broadcast_time c Cost.Inter ~bytes ~receivers:2 in
  let b16 = Cost.broadcast_time c Cost.Inter ~bytes ~receivers:16 in
  let b256 = Cost.broadcast_time c Cost.Inter ~bytes ~receivers:256 in
  (* Scatter/allgather: the bandwidth term saturates at 2x point-to-point
     rather than growing with the fan-out. *)
  let p2p = Cost.copy_time c Cost.Inter ~bytes in
  Alcotest.(check bool) "grows with fan-out" true (b2 < b16 && b16 < b256);
  Alcotest.(check bool) "saturates near 2x p2p" true
    (b256 < 2.1 *. p2p && b16 > 1.7 *. p2p);
  Alcotest.(check bool) "k=1 equals p2p bandwidth" true
    (Cost.broadcast_time c Cost.Inter ~bytes ~receivers:1 < 1.05 *. p2p)

let test_step_time_overlap () =
  let full = { Cost.cpu_distal with overlap = 1.0 } in
  let none = { Cost.cpu_distal with overlap = 0.0 } in
  Alcotest.(check (float 1e-9)) "full overlap hides comm" 2.0
    (Cost.step_time full ~compute:2.0 ~comm:1.0);
  Alcotest.(check (float 1e-9)) "no overlap adds" 3.0
    (Cost.step_time none ~compute:2.0 ~comm:1.0);
  Alcotest.(check (float 1e-9)) "comm bound exposes residual" 5.0
    (Cost.step_time full ~compute:2.0 ~comm:5.0)

let test_compute_time () =
  let c = Cost.cpu_distal in
  let t = Cost.compute_time c ~flops:c.Cost.compute_rate ~bytes_touched:0.0 in
  Alcotest.(check (float 1e-9)) "one second of flops" 1.0 t;
  let t2 = Cost.compute_time c ~flops:1.0 ~bytes_touched:c.Cost.mem_bw in
  Alcotest.(check (float 1e-9)) "bandwidth bound" 1.0 t2

let test_presets_sane () =
  List.iter
    (fun (c : Cost.t) ->
      Alcotest.(check bool) (c.name ^ " rates positive") true
        (c.compute_rate > 0.0 && c.beta_inter > 0.0 && c.mem_bw > 0.0
        && c.overlap >= 0.0 && c.overlap <= 1.0))
    [
      Cost.cpu_distal; Cost.cpu_full_node; Cost.cpu_no_overlap; Cost.cpu_ctf;
      Cost.gpu_distal; Cost.gpu_cosma;
    ];
  Alcotest.(check bool) "gpu much faster than cpu" true
    (Cost.gpu_distal.compute_rate > 5.0 *. Cost.cpu_distal.compute_rate)

let test_with_ppn () =
  let m = Machine.with_ppn [| 32; 32 |] ~ppn:4 in
  (* The per-node processors are absorbed into the trailing dimension:
     rows of four GPUs per node. *)
  Alcotest.(check (array int)) "1x4 blocks" [| 1; 4 |] m.Machine.node_factors;
  Alcotest.(check int) "node count" 256 (Machine.num_nodes m);
  Alcotest.(check bool) "block-mates share a node" true
    (Machine.same_node m [| 4; 4 |] [| 4; 7 |]);
  Alcotest.(check bool) "across blocks" false (Machine.same_node m [| 4; 3 |] [| 4; 4 |]);
  let cube = Machine.with_ppn [| 4; 4; 4 |] ~ppn:4 in
  Alcotest.(check (array int)) "trailing dim absorbed" [| 1; 1; 4 |]
    cube.Machine.node_factors;
  (* No block decomposition of 4 into a [3] grid: falls back to one
     processor per node. *)
  let odd = Machine.with_ppn [| 3 |] ~ppn:4 in
  Alcotest.(check int) "fallback" 3 (Machine.num_nodes odd)

let test_fabric_time () =
  let c = Cost.gpu_distal in
  Alcotest.(check (float 0.0)) "single rack free" 0.0
    (Cost.fabric_time c ~cross_rack_bytes:1e9 ~racks:1);
  let t2 = Cost.fabric_time c ~cross_rack_bytes:1e9 ~racks:2 in
  let t4 = Cost.fabric_time c ~cross_rack_bytes:1e9 ~racks:4 in
  Alcotest.(check bool) "more racks, more aggregate uplink" true (t4 < t2);
  Alcotest.(check bool) "positive" true (t2 > 0.0)

let test_duplex_combination () =
  let full = { Cost.cpu_distal with duplex = Cost.Full } in
  let half = { Cost.cpu_distal with duplex = Cost.Half } in
  Alcotest.(check (float 1e-12)) "full overlaps" 3.0
    (Cost.combine_sr full ~send:3.0 ~recv:2.0);
  Alcotest.(check (float 1e-12)) "half serializes" 5.0
    (Cost.combine_sr half ~send:3.0 ~recv:2.0);
  Alcotest.(check bool) "gpu model is half duplex" true
    (Cost.gpu_distal.duplex = Cost.Half);
  Alcotest.(check bool) "cosma gpu is full duplex" true
    (Cost.gpu_cosma.duplex = Cost.Full)

let test_rank_presets () =
  Alcotest.(check bool) "rank rate is a quarter-ish of node rate" true
    (Cost.cpu_rank_no_overlap.compute_rate < 0.3 *. Cost.cpu_no_overlap.compute_rate);
  Alcotest.(check (float 0.0)) "no overlap" 0.0 Cost.cpu_rank_no_overlap.overlap;
  Alcotest.(check bool) "ctf rank partially overlaps" true
    (Cost.cpu_rank_ctf.overlap > 0.0 && Cost.cpu_rank_ctf.overlap < 1.0)

let test_participant_send () =
  let c = Cost.gpu_distal in
  Alcotest.(check (float 0.0)) "single receiver forwards nothing" 0.0
    (Cost.broadcast_participant_send c Cost.Inter ~bytes:1e6 ~receivers:1);
  let s8 = Cost.broadcast_participant_send c Cost.Inter ~bytes:1e6 ~receivers:8 in
  Alcotest.(check bool) "approaches one payload" true
    (s8 > 0.8 *. 1e6 /. c.Cost.beta_inter && s8 < 1e6 /. c.Cost.beta_inter)

let suites =
  [
    ( "machine",
      [
        Alcotest.test_case "grid" `Quick test_grid;
        Alcotest.test_case "hierarchical" `Quick test_hierarchical;
        Alcotest.test_case "linearize roundtrip" `Quick test_linearize_roundtrip;
        Alcotest.test_case "flat nodes" `Quick test_flat_grid_single_node_per_proc;
        Alcotest.test_case "with_ppn" `Quick test_with_ppn;
      ] );
    ( "cost model",
      [
        Alcotest.test_case "copy time" `Quick test_copy_time;
        Alcotest.test_case "collective factor" `Quick test_collective_factor;
        Alcotest.test_case "broadcast" `Quick test_broadcast_bandwidth_optimal;
        Alcotest.test_case "overlap" `Quick test_step_time_overlap;
        Alcotest.test_case "compute time" `Quick test_compute_time;
        Alcotest.test_case "presets" `Quick test_presets_sane;
        Alcotest.test_case "fabric" `Quick test_fabric_time;
        Alcotest.test_case "duplex" `Quick test_duplex_combination;
        Alcotest.test_case "rank presets" `Quick test_rank_presets;
        Alcotest.test_case "participant send" `Quick test_participant_send;
      ] );
  ]
