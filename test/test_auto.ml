module Api = Distal.Api
module Machine = Api.Machine
module Auto = Distal_algorithms.Auto
module Stats = Api.Stats

let machine_of grid = Machine.grid grid

let gemm_shapes n = [ ("A", [| n; n |]); ("B", [| n; n |]); ("C", [| n; n |]) ]

let test_auto_gemm_finds_candidates () =
  match
    Auto.search ~machine_of ~procs:4 ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~shapes:(gemm_shapes 16) ()
  with
  | Error e -> Alcotest.fail e
  | Ok cs ->
      Alcotest.(check bool) "several candidates" true (List.length cs > 5);
      let best = List.hd cs in
      Alcotest.(check bool) "best is not OOM" false best.Auto.stats.Stats.oom;
      (* The sort puts the cheapest first. *)
      List.iter
        (fun c ->
          Alcotest.(check bool) "sorted" true
            (best.Auto.stats.Stats.time <= c.Auto.stats.Stats.time
            || best.Auto.stats.Stats.oom = false))
        cs

let test_auto_best_validates () =
  match
    Auto.best ~machine_of ~procs:4 ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~shapes:(gemm_shapes 12) ()
  with
  | Error e -> Alcotest.fail e
  | Ok best -> (
      match Api.validate best.Auto.plan with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("auto-scheduled plan is wrong: " ^ e))

let test_auto_ttv_no_communication () =
  (* The search must discover the element-wise strategy of §7.2.2:
     distributing i with induced row formats moves nothing. *)
  match
    Auto.best ~machine_of ~procs:4 ~stmt:"A(i,j) = B(i,j,k) * c(k)"
      ~shapes:[ ("A", [| 16; 4 |]); ("B", [| 16; 4; 4 |]); ("c", [| 4 |]) ]
      ()
  with
  | Error e -> Alcotest.fail e
  | Ok best ->
      Alcotest.(check (float 0.0)) "no communication" 0.0
        (best.Auto.stats.Stats.bytes_inter +. best.Auto.stats.Stats.bytes_intra);
      Alcotest.(check bool) "distributes i" true (List.mem "i" best.Auto.dist_vars);
      (match Api.validate best.Auto.plan with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_auto_ttm_distributes_i () =
  match
    Auto.best ~machine_of ~procs:4 ~stmt:"A(i,j,l) = B(i,j,k) * C(k,l)"
      ~shapes:
        [ ("A", [| 16; 3; 5 |]); ("B", [| 16; 3; 4 |]); ("C", [| 4; 5 |]) ]
      ()
  with
  | Error e -> Alcotest.fail e
  | Ok best ->
      (* i-only distribution keeps B and A local; only C (tiny) moves. *)
      Alcotest.(check bool) "i among distributed vars" true
        (List.mem "i" best.Auto.dist_vars);
      (match Api.validate best.Auto.plan with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_auto_beats_naive_gemm () =
  (* Any auto choice must beat the single-processor degenerate grid. *)
  match
    Auto.search ~machine_of ~procs:8 ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~shapes:(gemm_shapes 64) ()
  with
  | Error e -> Alcotest.fail e
  | Ok cs ->
      let best = List.hd cs in
      let degenerate =
        List.find_opt (fun c -> c.Auto.grid = [| 1 |]) cs
      in
      (match degenerate with
      | Some d ->
          Alcotest.(check bool) "parallel beats serial" true
            (best.Auto.stats.Stats.time < d.Auto.stats.Stats.time)
      | None -> ());
      Alcotest.(check bool) "describe mentions grid" true
        (Astring_contains.contains (Auto.describe best) "distribute")

let test_auto_report_counters () =
  (* procs=8 factors as 8, 4x2, 2x4, 2x2x2, ... — several of those
     factorizations contain 1-sized grid dimensions whose canonical form
     collides with a smaller-subset candidate, so a non-trivial search
     must report deduplications, and the bounds must prune something once
     a feasible best exists. *)
  match
    Auto.search_report ~machine_of ~procs:8 ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~shapes:(gemm_shapes 64) ()
  with
  | Error e -> Alcotest.fail e
  | Ok (cs, r) ->
      Alcotest.(check bool) "deduped > 0" true (r.Auto.deduped > 0);
      Alcotest.(check bool) "pruned > 0" true (r.Auto.pruned > 0);
      Alcotest.(check bool) "probed covers results" true
        (r.Auto.probed >= List.length cs);
      Alcotest.(check int) "accounting adds up" r.Auto.enumerated
        (r.Auto.deduped + r.Auto.pruned + r.Auto.probed);
      Alcotest.(check int) "nothing failed" 0 r.Auto.infeasible;
      Alcotest.(check bool) "no failure diagnostic" true (r.Auto.last_error = None);
      Alcotest.(check bool) "wall clock measured" true (r.Auto.wall_s >= 0.0)

let test_auto_failure_diagnostics () =
  (* A machine factory whose machines disagree with the requested grid
     rank fails every probe at compile time. The failure message must
     carry the search diagnostics — counts and the last probe error —
     instead of a bare "no feasible candidate" (the pre-fix behavior
     swallowed both). *)
  match
    Auto.search
      ~machine_of:(fun g -> Machine.grid (Array.append g [| 1 |]))
      ~procs:4 ~stmt:"A(i,j) = B(i,k) * C(k,j)" ~shapes:(gemm_shapes 8) ()
  with
  | Ok _ -> Alcotest.fail "rank-mismatched machines must fail every probe"
  | Error e ->
      let mentions what =
        Alcotest.(check bool)
          (Printf.sprintf "mentions %S (got %S)" what e)
          true
          (Astring_contains.contains e what)
      in
      mentions "enumerated";
      mentions "probed";
      mentions "infeasible";
      mentions "last error";
      mentions "machine"

let qcheck_auto_pool_identity =
  (* The determinism contract: the chosen candidate — and the whole
     ranking — must be byte-identical whatever the probe pool size,
     memo cache hot or cold. Randomize over the processor budget and
     problem size; compare domains=1 against domains=3. *)
  QCheck.Test.make ~name:"auto search identical at every pool size" ~count:8
    QCheck.(pair (int_range 0 3) (int_range 0 2))
    (fun (pi, ni) ->
      let procs = [| 2; 4; 6; 8 |].(pi) and n = [| 12; 16; 24 |].(ni) in
      let run domains =
        match
          Auto.search_report ~domains ~machine_of ~procs
            ~stmt:"A(i,j) = B(i,k) * C(k,j)" ~shapes:(gemm_shapes n) ()
        with
        | Error e -> QCheck.Test.fail_reportf "procs=%d n=%d: %s" procs n e
        | Ok (cs, r) ->
            ( List.map
                (fun c ->
                  (Auto.describe c, c.Auto.dist_vars, Array.to_list c.Auto.grid))
                cs,
              (r.Auto.enumerated, r.Auto.deduped, r.Auto.pruned, r.Auto.probed) )
      in
      let serial = run 1 and parallel = run 3 in
      if serial <> parallel then
        QCheck.Test.fail_reportf "procs=%d n=%d: pool size changed the search" procs n;
      true)

let suites =
  [
    ( "auto scheduler",
      [
        Alcotest.test_case "gemm candidates" `Quick test_auto_gemm_finds_candidates;
        Alcotest.test_case "best validates" `Quick test_auto_best_validates;
        Alcotest.test_case "ttv zero comm" `Quick test_auto_ttv_no_communication;
        Alcotest.test_case "ttm keeps B local" `Quick test_auto_ttm_distributes_i;
        Alcotest.test_case "beats serial" `Quick test_auto_beats_naive_gemm;
        Alcotest.test_case "report counters" `Quick test_auto_report_counters;
        Alcotest.test_case "failure diagnostics" `Quick test_auto_failure_diagnostics;
        QCheck_alcotest.to_alcotest qcheck_auto_pool_identity;
      ] );
  ]
