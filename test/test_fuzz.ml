(* Semantic fuzzing: random statements, random distributions, random legal
   schedules — every combination must compute exactly what the serial
   interpreter computes. This is the strongest form of the paper's §3.3
   guarantee that scheduling only affects performance. *)

module Api = Distal.Api
module Machine = Api.Machine
module S = Api.Schedule
module D = Api.Distnot
module Rng = Distal_support.Rng

(* {2 DISTAL_SEED: reproducible fuzzing}

   Every QCheck fuzz suite in the test tree registers through
   [to_alcotest]: DISTAL_SEED=N pins the generator's random state, so a
   run explores the same case sequence on every host, and [seeded]
   prefixes any property failure with the per-case seed it was given —
   the failure message names the exact case to replay. *)

let to_alcotest ?(long = true) test =
  match Distal_support.Env.int_var "DISTAL_SEED" with
  | Some s ->
      QCheck_alcotest.to_alcotest ~long ~rand:(Random.State.make [| s |]) test
  | None -> QCheck_alcotest.to_alcotest ~long test

let seeded seed f =
  try f ()
  with e -> QCheck.Test.fail_reportf "[seed %d] %s" seed (Printexc.to_string e)

let var_pool = [| "i"; "j"; "k"; "l" |]

(* A random statement over up to four index variables with fixed per-var
   extents; returns the statement string and the shapes it implies. *)
let gen_stmt rng =
  let extents = Array.map (fun v -> (v, 2 + Rng.int rng 3)) var_pool in
  let extent v = List.assoc v (Array.to_list extents) in
  let pick_vars k =
    (* k distinct variables *)
    let order = Array.copy var_pool in
    for i = Array.length order - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let t = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- t
    done;
    Array.to_list (Array.sub order 0 k)
  in
  let n_rhs = 1 + Rng.int rng 3 in
  let rhs_tensors =
    List.init n_rhs (fun idx ->
        let rank = 1 + Rng.int rng 3 in
        (Printf.sprintf "T%d" idx, pick_vars rank))
  in
  let rhs_vars =
    List.sort_uniq compare (List.concat_map snd rhs_tensors)
  in
  (* lhs: a (possibly empty) subset of the rhs variables. *)
  let lhs_vars = List.filter (fun _ -> Rng.int rng 2 = 0) rhs_vars in
  let op = if Rng.int rng 4 = 0 then " + " else " * " in
  let access (t, vs) =
    if vs = [] then t else Printf.sprintf "%s(%s)" t (String.concat "," vs)
  in
  let out_access = access ("Out", lhs_vars) in
  (* Sometimes make the statement self-referencing: the output also read on
     the right-hand side, as in [A(i,j) = A(i,j) + B(i,j)]. *)
  let self_ref = Rng.int rng 4 = 0 in
  let stmt =
    Printf.sprintf "%s = %s%s" out_access
      (String.concat op (List.map access rhs_tensors))
      (if self_ref then " + " ^ out_access else "")
  in
  let shapes =
    ("Out", Array.of_list (List.map extent lhs_vars))
    :: List.map (fun (t, vs) -> (t, Array.of_list (List.map extent vs))) rhs_tensors
  in
  (stmt, shapes, lhs_vars, rhs_vars)

(* A random valid distribution of a tensor onto the machine. *)
let gen_dist rng ~rank ~mdims =
  let tensor_axes = List.init rank (fun d -> Printf.sprintf "x%d" d) in
  (* Choose for each machine dim: partition a distinct unused tensor axis,
     fix to a coordinate, or broadcast. *)
  let available = ref tensor_axes in
  let machine_axes =
    List.init (Array.length mdims) (fun m ->
        match Rng.int rng 4 with
        | 0 when !available <> [] ->
            let ax = List.nth !available (Rng.int rng (List.length !available)) in
            available := List.filter (fun a -> a <> ax) !available;
            D.Part ax
        | 1 when !available <> [] ->
            (* Block-cyclic, block 1-3: block 1 produces the per-element
               tile sets whose transfers exercise the communication
               planner's strided-run path. *)
            let ax = List.nth !available (Rng.int rng (List.length !available)) in
            available := List.filter (fun a -> a <> ax) !available;
            D.Cyclic (ax, 1 + Rng.int rng 3)
        | 2 -> D.Fix (Rng.int rng mdims.(m))
        | _ -> D.Bcast)
  in
  [ { D.tensor_axes; machine_axes } ]

(* A random legal schedule over the statement's root variables. *)
let gen_schedule rng ~lhs_vars ~rhs_vars =
  let cmds = ref [] in
  let add c = cmds := c :: !cmds in
  (* Distribute a random subset (reduction variables allowed: that makes a
     distributed reduction). *)
  let dist_candidates = rhs_vars in
  let dist =
    List.filter (fun _ -> Rng.int rng 3 = 0) dist_candidates
    |> List.filteri (fun i _ -> i < 2)
  in
  ignore lhs_vars;
  if dist <> [] then begin
    let names = List.map (fun v -> (v, v ^ "o", v ^ "i")) dist in
    add
      (S.Distribute_onto
         {
           targets = dist;
           dist = List.map (fun (_, o, _) -> o) names;
           local = List.map (fun (_, _, i) -> i) names;
           grid = Array.of_list (List.map (fun _ -> 1 + Rng.int rng 3) names);
         })
  end;
  (* Maybe split one remaining variable. *)
  let rest = List.filter (fun v -> not (List.mem v dist)) rhs_vars in
  let split_var =
    match rest with
    | [] -> None
    | _ ->
        if Rng.int rng 2 = 0 then Some (List.nth rest (Rng.int rng (List.length rest)))
        else None
  in
  (match split_var with
  | Some v ->
      add (S.Split (v, v ^ "o", v ^ "i", 1 + Rng.int rng 3));
      (* Move the split-outer loop just below the distributed band and
         maybe rotate it by the distributed variables. *)
      add (S.Reorder [ v ^ "o" ]);
      if dist <> [] && Rng.int rng 2 = 0 then
        add
          (S.Rotate
             { target = v ^ "o"; by = List.map (fun d -> d ^ "o") dist; result = v ^ "s" })
  | None -> ());
  List.rev !cmds

let current_loop_vars plan = Distal_ir.Cin.loop_vars plan.Api.cin

module Stats = Api.Stats
module Exec = Api.Exec

(* The Model execution must predict exactly the stats of the Full
   execution — the simulator's event assembly is deterministic and
   data-independent. *)
let check_model_parity ~stmt plan =
  let data = Api.random_inputs plan in
  match Api.run ~mode:Exec.Full plan ~data with
  | Error e -> QCheck.Test.fail_reportf "full run failed for %s: %s" stmt e
  | Ok full -> (
      match Api.run ~mode:Exec.Model plan ~data:[] with
      | Error e -> QCheck.Test.fail_reportf "model run failed for %s: %s" stmt e
      | Ok model ->
          let f = Stats.to_string full.Exec.stats in
          let m = Stats.to_string model.Exec.stats in
          if String.equal f m then true
          else
            QCheck.Test.fail_reportf "Full/Model stats diverge for %s:\n%s\nvs\n%s"
              stmt f m)

let fuzz_once seed =
  let rng = Rng.create seed in
  let stmt, shapes, lhs_vars, rhs_vars = gen_stmt rng in
  let mdims = Array.init (1 + Rng.int rng 2) (fun _ -> 1 + Rng.int rng 3) in
  let machine = Machine.grid mdims in
  let tensors =
    List.map
      (fun (name, shape) ->
        Api.tensor_d name shape (gen_dist rng ~rank:(Array.length shape) ~mdims))
      shapes
  in
  match Api.problem ~machine ~stmt ~tensors () with
  | Error e -> QCheck.Test.fail_reportf "problem construction failed: %s" e
  | Ok problem -> (
      let schedule = gen_schedule rng ~lhs_vars ~rhs_vars in
      match Api.compile problem ~schedule with
      | Error e ->
          QCheck.Test.fail_reportf "compile failed for %s with [%s]: %s" stmt
            (String.concat "; " (List.map S.to_string schedule))
            e
      | Ok plan -> (
          (* Attach communicate points for a random subset of tensors at
             random loops, then re-lower. *)
          let loops = current_loop_vars plan in
          let extra =
            List.filter_map
              (fun (t : Api.tensor) ->
                if Rng.int rng 2 = 0 && loops <> [] then
                  Some
                    (S.Communicate
                       ([ t.Api.name ], List.nth loops (Rng.int rng (List.length loops))))
                else None)
              problem.Api.tensors
          in
          match Api.compile problem ~schedule:(schedule @ extra) with
          | Error e ->
              QCheck.Test.fail_reportf "re-compile failed for %s: %s" stmt e
          | Ok plan -> (
              match Api.validate ~seed plan with
              | Ok () -> check_model_parity ~stmt plan
              | Error e ->
                  QCheck.Test.fail_reportf "MISMATCH for %s scheduled [%s]: %s" stmt
                    (String.concat "; "
                       (List.map S.to_string (schedule @ extra)))
                    e)))

let qcheck_fuzz =
  QCheck.Test.make ~name:"random stmt x dist x schedule == serial" ~count:400
    QCheck.small_nat
    (fun seed -> seeded (succ seed) (fun () -> fuzz_once (succ seed)))

(* Same game on hierarchical machines (node blocks) with two-level
   distributions: level one over the first machine dimension, level two
   over the second. *)
let gen_dist2 rng ~rank ~mdims =
  assert (Array.length mdims = 2);
  let level sub_mdims suffix =
    let tensor_axes = List.init rank (fun d -> Printf.sprintf "%s%d" suffix d) in
    let available = ref tensor_axes in
    let machine_axes =
      List.init (Array.length sub_mdims) (fun m ->
          match Rng.int rng 4 with
          | 0 when !available <> [] ->
              let ax = List.nth !available (Rng.int rng (List.length !available)) in
              available := List.filter (fun a -> a <> ax) !available;
              D.Part ax
          | 1 when !available <> [] ->
              (* Multi-level block-cyclic ([Distnot.level_tiles] composes
                 the levels): cyclic fragments at node scope. *)
              let ax = List.nth !available (Rng.int rng (List.length !available)) in
              available := List.filter (fun a -> a <> ax) !available;
              D.Cyclic (ax, 1 + Rng.int rng 2)
          | 2 -> D.Fix (Rng.int rng sub_mdims.(m))
          | _ -> D.Bcast)
    in
    { D.tensor_axes; machine_axes }
  in
  [ level [| mdims.(0) |] "x"; level [| mdims.(1) |] "y" ]

let fuzz_hierarchical seed =
  let rng = Rng.create (seed * 7919) in
  let stmt, shapes, lhs_vars, rhs_vars = gen_stmt rng in
  let mdims = [| 1 + Rng.int rng 3; 1 + Rng.int rng 3 |] in
  let machine =
    Machine.grid ~node_factors:[| 1; mdims.(1) |] ~kind:Machine.Gpu
      ~mem_per_proc:16e9 mdims
  in
  let tensors =
    List.map
      (fun (name, shape) ->
        Api.tensor_d name shape (gen_dist2 rng ~rank:(Array.length shape) ~mdims))
      shapes
  in
  match Api.problem ~machine ~stmt ~tensors () with
  | Error e -> QCheck.Test.fail_reportf "problem failed: %s" e
  | Ok problem -> (
      let schedule = gen_schedule rng ~lhs_vars ~rhs_vars in
      match Api.compile problem ~schedule with
      | Error e -> QCheck.Test.fail_reportf "compile failed for %s: %s" stmt e
      | Ok plan -> (
          match Api.validate ~seed plan with
          | Ok () -> check_model_parity ~stmt plan
          | Error e ->
              QCheck.Test.fail_reportf "MISMATCH (hierarchical) for %s: %s" stmt e))

let qcheck_fuzz_hierarchical =
  QCheck.Test.make ~name:"hierarchical dists x schedules == serial" ~count:250
    QCheck.small_nat
    (fun seed -> seeded (succ seed) (fun () -> fuzz_hierarchical (succ seed)))

(* A 3-way virtual grid folded onto 2 physical processors: virtual owners
   0 and 2 collide on physical processor 0. A self-referencing statement
   must still match the reference, and Full/Model stats must agree, after
   the fold. *)
let test_virtual_grid_collision () =
  let machine = Machine.grid [| 2 |] in
  let p =
    Api.problem_exn ~machine ~virtual_grid:[| 3 |] ~stmt:"A(i) = A(i) + B(i)"
      ~tensors:
        [
          Api.tensor "A" [| 6 |] ~dist:"[x] -> [x]";
          Api.tensor "B" [| 6 |] ~dist:"[x] -> [x]";
        ]
      ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:"divide(i, io, ii, 3); distribute(io); communicate({A,B}, io)"
  in
  (match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  let full = Api.run_exn plan ~data:(Api.random_inputs plan) in
  let model = Api.run_exn ~mode:Exec.Model plan ~data:[] in
  Alcotest.(check string) "full/model stats"
    (Stats.to_string full.Exec.stats)
    (Stats.to_string model.Exec.stats)

let suites =
  [
    ( "fuzz",
      [
        to_alcotest qcheck_fuzz;
        to_alcotest qcheck_fuzz_hierarchical;
        Alcotest.test_case "virtual grid collision" `Quick test_virtual_grid_collision;
      ] );
  ]
