(* The compile-and-serve subsystem (lib/serve): the LRU substrate, the
   request fingerprint, the caching session's byte-identity contract
   (served results — cached or not, concurrent or not — are exactly what
   a direct Api run produces), the wire framing and protocol codecs, and
   the distald server end to end over a real Unix-domain socket: cache
   reuse, admission control, clients killed mid-request, a server killed
   mid-batch and restarted (checkpoint-free recovery), and fault-plan
   requests served with recovery-exact outputs. *)

module Api = Distal.Api
module Machine = Api.Machine
module Dense = Api.Dense
module Exec = Api.Exec
module Stats = Api.Stats
module Pool = Distal_support.Pool
module Lru = Distal_support.Lru
module Wire = Distal_support.Wire
module Env = Distal_support.Env
module Json = Distal_support.Json
module Session = Distal_serve.Session
module Protocol = Distal_serve.Protocol
module Client = Distal_serve.Client

(* {2 LRU} *)

let test_lru_eviction_order () =
  let t = Lru.create ~capacity:2 in
  Alcotest.(check (option (pair string int))) "no eviction" None (Lru.put t "a" 1);
  Alcotest.(check (option (pair string int))) "no eviction" None (Lru.put t "b" 2);
  (* Touching [a] promotes it, so the next overflow evicts [b]. *)
  Alcotest.(check (option int)) "a hits" (Some 1) (Lru.find t "a");
  Alcotest.(check (option (pair string int)))
    "LRU binding evicted" (Some ("b", 2)) (Lru.put t "c" 3);
  Alcotest.(check (list string)) "MRU order" [ "c"; "a" ] (Lru.keys_mru t);
  Alcotest.(check (option int)) "b is gone" None (Lru.find t "b");
  (* Overwrite keeps the key and promotes. *)
  Alcotest.(check (option (pair string int))) "overwrite" None (Lru.put t "a" 10);
  Alcotest.(check (list string)) "overwrite promotes" [ "a"; "c" ] (Lru.keys_mru t);
  Alcotest.(check int) "hits" 1 (Lru.hits t);
  Alcotest.(check int) "misses" 1 (Lru.misses t);
  Alcotest.(check int) "evictions" 1 (Lru.evictions t)

let test_lru_capacity_zero () =
  let t = Lru.create ~capacity:0 in
  Alcotest.(check (option (pair string int))) "put drops" None (Lru.put t "a" 1);
  Alcotest.(check (option int)) "always miss" None (Lru.find t "a");
  Alcotest.(check int) "empty" 0 (Lru.length t);
  (match Lru.find_or_add t "a" (fun () -> Ok 7) with
  | Ok (7, `Miss None) -> ()
  | _ -> Alcotest.fail "capacity-0 find_or_add must compute and evict nothing");
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.create: capacity must be >= 0") (fun () ->
      ignore (Lru.create ~capacity:(-1)))

let test_lru_find_or_add () =
  let t = Lru.create ~capacity:1 in
  let computes = ref 0 in
  let compute v () = incr computes; Ok v in
  (match Lru.find_or_add t "a" (compute 1) with
  | Ok (1, `Miss None) -> ()
  | _ -> Alcotest.fail "first lookup computes");
  (match Lru.find_or_add t "a" (compute 99) with
  | Ok (1, `Hit) -> ()
  | _ -> Alcotest.fail "second lookup hits the cached value");
  Alcotest.(check int) "computed once" 1 !computes;
  (match Lru.find_or_add t "b" (compute 2) with
  | Ok (2, `Miss (Some ("a", 1))) -> ()
  | _ -> Alcotest.fail "overflow reports the evicted binding");
  (* Error results are not cached. *)
  (match Lru.find_or_add t "c" (fun () -> Error "boom") with
  | Error "boom" -> ()
  | _ -> Alcotest.fail "compute errors propagate");
  Alcotest.(check bool) "error cached nothing" false (Lru.mem t "c")

(* Regression for the dead MRU fast path in [Lru.promote]: the guard
   compared [t.head] against a freshly allocated [Some n] with [!=],
   which is never physically equal, so every hit on the already-MRU
   entry paid a full unlink/re-push. The fix compares the node itself.
   The observable contract either way: hits on the head entry count and
   leave the recency order untouched, hits elsewhere reorder. *)
let test_lru_promote_mru () =
  let t = Lru.create ~capacity:3 in
  ignore (Lru.put t "a" 1);
  ignore (Lru.put t "b" 2);
  ignore (Lru.put t "c" 3);
  (* Repeated hits on the MRU entry: order stable, every hit counted. *)
  for i = 1 to 5 do
    Alcotest.(check (option int)) "mru hit" (Some 3) (Lru.find t "c");
    Alcotest.(check int) "hit counted" i (Lru.hits t);
    Alcotest.(check (list string)) "order stable" [ "c"; "b"; "a" ] (Lru.keys_mru t)
  done;
  (* A hit below the head still promotes... *)
  Alcotest.(check (option int)) "tail hit" (Some 1) (Lru.find t "a");
  Alcotest.(check (list string)) "tail promoted" [ "a"; "c"; "b" ] (Lru.keys_mru t);
  (* ...and the eviction order reflects the promotions, not insertion. *)
  Alcotest.(check (option (pair string int)))
    "lru evicted" (Some ("b", 2)) (Lru.put t "d" 4);
  (* Single-entry cache: the only entry is permanently MRU; hammering it
     must neither corrupt the list nor lose counter updates. *)
  let s = Lru.create ~capacity:1 in
  ignore (Lru.put s "x" 0);
  for _ = 1 to 100 do ignore (Lru.find s "x") done;
  Alcotest.(check int) "single-entry hits" 100 (Lru.hits s);
  Alcotest.(check (list string)) "single-entry order" [ "x" ] (Lru.keys_mru s)

(* {2 QCheck: the LRU against an association-list model}

   The reference is the obvious executable specification: an MRU-first
   association list capped at [capacity], where a find-hit or put moves
   the binding to the front and an overflowing put drops the last
   element. After every operation the cache must agree with the model on
   the returned value, the full recency order and all three counters. *)

type lru_op = Find of int | Put of int * int | Remove of int

let lru_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun k -> Find k) (int_range 0 7));
        (4, map2 (fun k v -> Put (k, v)) (int_range 0 7) (int_range 0 1000));
        (1, map (fun k -> Remove k) (int_range 0 7));
      ])

let lru_op_print = function
  | Find k -> Printf.sprintf "find %d" k
  | Put (k, v) -> Printf.sprintf "put %d %d" k v
  | Remove k -> Printf.sprintf "remove %d" k

let lru_model_once ~capacity ops =
  let t = Lru.create ~capacity in
  let model = ref [] (* MRU first, length <= capacity *) in
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
  List.iteri
    (fun step op ->
      let fail fmt =
        QCheck.Test.fail_reportf
          ("step %d (%s): " ^^ fmt) step (lru_op_print op)
      in
      (match op with
      | Find k -> (
          let got = Lru.find t k in
          match List.assoc_opt k !model with
          | Some v ->
              incr hits;
              model := (k, v) :: List.remove_assoc k !model;
              if got <> Some v then fail "expected hit %d" v
          | None ->
              incr misses;
              if got <> None then fail "expected miss")
      | Put (k, v) -> (
          let got = Lru.put t k v in
          let without = List.remove_assoc k !model in
          let expect_evicted =
            if capacity = 0 then None
            else if List.mem_assoc k !model || List.length without < capacity then begin
              model := (k, v) :: without;
              None
            end
            else begin
              let rec split_last = function
                | [ x ] -> ([], x)
                | x :: rest ->
                    let kept, last = split_last rest in
                    (x :: kept, last)
                | [] -> assert false
              in
              let kept, last = split_last without in
              incr evictions;
              model := (k, v) :: kept;
              Some last
            end
          in
          if got <> expect_evicted then fail "eviction mismatch")
      | Remove k ->
          let got = Lru.remove t k in
          let expect = List.mem_assoc k !model in
          model := List.remove_assoc k !model;
          if got <> expect then fail "remove returned %b" got);
      if Lru.keys_mru t <> List.map fst !model then fail "recency order diverged";
      if Lru.length t <> List.length !model then fail "length diverged";
      if (Lru.hits t, Lru.misses t, Lru.evictions t) <> (!hits, !misses, !evictions)
      then fail "counters diverged")
    ops;
  true

let qcheck_lru_model =
  QCheck.Test.make ~name:"lru agrees with association-list model" ~count:300
    QCheck.(
      pair (int_range 0 4)
        (list_of_size Gen.(int_range 1 40) (make ~print:lru_op_print lru_op_gen)))
    (fun (capacity, ops) -> lru_model_once ~capacity ops)

(* {2 Requests and fingerprints} *)

let gemm_schedule chunks =
  Printf.sprintf
    "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, %d);\n\
     reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko)"
    chunks

let gemm_request ?virtual_grid ?(n = 8) ?(chunks = 2) ?(dist = "[x,y] -> [x,y]") () =
  Api.request ?virtual_grid
    ~machine:(Machine.grid [| 2; 2 |])
    ~stmt:"A(i,j) = B(i,k) * C(k,j)"
    ~tensors:
      [
        Api.tensor "A" [| n; n |] ~dist:"[x,y] -> [x,y]";
        Api.tensor "B" [| n; n |] ~dist;
        Api.tensor "C" [| n; n |] ~dist;
      ]
    ~schedule:(gemm_schedule chunks) ()

let test_fingerprint () =
  let fp r = Api.request_fingerprint r in
  let base = gemm_request () in
  Alcotest.(check string) "deterministic" (fp base) (fp (gemm_request ()));
  let distinct =
    [
      ("shape", gemm_request ~n:16 ());
      ("schedule", gemm_request ~chunks:4 ());
      ("distribution", gemm_request ~dist:"[x,y] -> [x%1,y%1]" ());
      ("virtual grid", gemm_request ~virtual_grid:[| 4; 4 |] ());
    ]
  in
  List.iter
    (fun (what, r) ->
      if String.equal (fp base) (fp r) then
        Alcotest.failf "fingerprint ignores the %s" what)
    distinct;
  (* Fingerprints also separate requests whose concatenated fields agree:
     the encoding is length-delimited, not a join. *)
  let r1 =
    Api.request
      ~machine:(Machine.grid [| 2 |])
      ~stmt:"a() = b()" ~schedule:"x; y"
      ~tensors:[ Api.tensor "a" [||] ~dist:"[] -> [0]"; Api.tensor "b" [||] ~dist:"[] -> [0]" ]
      ()
  in
  let r2 =
    Api.request
      ~machine:(Machine.grid [| 2 |])
      ~stmt:"a() = b()" ~schedule:"x;"
      ~tensors:[ Api.tensor "a" [||] ~dist:"[] -> [0]"; Api.tensor "b" [||] ~dist:"[] -> [0]" ]
      ()
  in
  if String.equal (fp r1) (fp r2) then Alcotest.fail "schedule text not separated"

(* {2 The session's byte-identity contract} *)

let bits = function
  | None -> []
  | Some out ->
      List.init (Dense.size out) (fun i -> Int64.bits_of_float (Dense.get_lin out i))

let observe_direct ?faults ~seed req =
  let plan = Api.compile_request_exn req in
  let data = Api.random_inputs ~seed plan in
  let r = Api.run_exn ~mode:Exec.Full ~domains:1 ?faults plan ~data in
  (bits r.Exec.output, Stats.to_string r.Exec.stats)

let observe_outcome (o : Session.outcome) =
  (bits o.Session.result.Exec.output, Stats.to_string o.Session.result.Exec.stats)

let test_session_identity () =
  let session = Session.create ~domains:1 () in
  let req = gemm_request () in
  let expected = observe_direct ~seed:7 req in
  let o1 = Session.run_exn ~seed:7 session req in
  Alcotest.(check bool) "first request compiles" false o1.Session.plan_cached;
  Alcotest.(check bool) "first request executes" false o1.Session.result_cached;
  Alcotest.(check (pair (list int64) string)) "cold serve = direct run" expected
    (observe_outcome o1);
  let o2 = Session.run_exn ~seed:7 session req in
  Alcotest.(check bool) "second request hits the plan" true o2.Session.plan_cached;
  Alcotest.(check bool) "second request replays" true o2.Session.result_cached;
  Alcotest.(check (pair (list int64) string)) "hot serve = direct run" expected
    (observe_outcome o2);
  (* A different seed shares the plan but must re-run. *)
  let o3 = Session.run_exn ~seed:8 session req in
  Alcotest.(check bool) "new seed hits the plan" true o3.Session.plan_cached;
  Alcotest.(check bool) "new seed re-executes" false o3.Session.result_cached;
  Alcotest.(check (pair (list int64) string)) "other seed = direct run"
    (observe_direct ~seed:8 req) (observe_outcome o3);
  let c = Session.counters session in
  Alcotest.(check int) "requests" 3 c.Session.requests;
  Alcotest.(check int) "plan hits" 2 c.Session.plan_hits;
  Alcotest.(check int) "plan misses" 1 c.Session.plan_misses;
  Alcotest.(check int) "result hits" 1 c.Session.result_hits;
  Alcotest.(check int) "result misses" 2 c.Session.result_misses

let test_session_defensive_copies () =
  let session = Session.create ~domains:1 () in
  let req = gemm_request () in
  let expected = observe_direct ~seed:3 req in
  let o1 = Session.run_exn ~seed:3 session req in
  (* Corrupt everything the caller can reach; the cache must not see it. *)
  (match o1.Session.result.Exec.output with
  | Some out -> Dense.set_lin out 0 Float.nan
  | None -> Alcotest.fail "expected an output");
  o1.Session.result.Exec.stats.Stats.time <- 1234.5;
  let o2 = Session.run_exn ~seed:3 session req in
  Alcotest.(check bool) "replayed" true o2.Session.result_cached;
  Alcotest.(check (pair (list int64) string)) "cache unharmed by mutation" expected
    (observe_outcome o2)

let test_session_explicit_data_key () =
  let session = Session.create ~domains:1 () in
  let req = gemm_request () in
  let plan = Api.compile_request_exn req in
  let data = Api.random_inputs ~seed:11 plan in
  let o1 = Session.run_exn ~data session req in
  Alcotest.(check bool) "explicit data executes" false o1.Session.result_cached;
  let o2 = Session.run_exn ~data session req in
  Alcotest.(check bool) "bit-identical data replays" true o2.Session.result_cached;
  (* Flip one bit of one input: the digest must separate the runs. *)
  let data2 = List.map (fun (n, d) -> (n, Dense.copy d)) data in
  (match data2 with
  | (_, d) :: _ -> Dense.set_lin d 0 (Dense.get_lin d 0 +. 1.0)
  | [] -> Alcotest.fail "expected inputs");
  let o3 = Session.run_exn ~data:data2 session req in
  Alcotest.(check bool) "perturbed data re-executes" false o3.Session.result_cached

let test_session_eviction () =
  let session = Session.create ~plan_cache:1 ~domains:1 () in
  let a = gemm_request ~chunks:2 () in
  let b = gemm_request ~chunks:4 () in
  ignore (Session.run_exn ~seed:1 session a);
  ignore (Session.run_exn ~seed:1 session b);
  ignore (Session.run_exn ~seed:1 session a);
  let c = Session.counters session in
  Alcotest.(check int) "single slot always misses" 3 c.Session.plan_misses;
  Alcotest.(check int) "alternation evicts" 2 c.Session.plan_evictions;
  Alcotest.(check int) "one plan cached" 1 (Session.cached_plans session);
  Session.clear session;
  Alcotest.(check int) "clear drops plans" 0 (Session.cached_plans session);
  Alcotest.(check int) "clear drops results" 0 (Session.cached_results session)

(* Caching off: every request is compile + run, and the bytes still
   match. *)
let test_session_cache_off () =
  let session = Session.create ~plan_cache:0 ~domains:1 () in
  let req = gemm_request () in
  let expected = observe_direct ~seed:5 req in
  let o1 = Session.run_exn ~seed:5 session req in
  let o2 = Session.run_exn ~seed:5 session req in
  Alcotest.(check bool) "never plan-cached" false
    (o1.Session.plan_cached || o2.Session.plan_cached);
  Alcotest.(check bool) "never result-cached" false
    (o1.Session.result_cached || o2.Session.result_cached);
  Alcotest.(check (pair (list int64) string)) "uncached = direct" expected
    (observe_outcome o2)

(* One shared session driven concurrently from pool lanes (the session
   pins ~domains:1 — the pool is not reentrant): every lane must see
   exactly the bytes of a direct run, whatever interleaving of hits,
   misses and single-flight compiles the lanes produce. *)
let test_session_concurrent () =
  let session = Session.create ~domains:1 () in
  let reqs = [| gemm_request ~chunks:2 (); gemm_request ~chunks:4 (); gemm_request ~n:16 () |] in
  let expected = Array.map (observe_direct ~seed:9) reqs in
  let lanes = 3 and rounds = 5 in
  let failures = Array.make lanes "" in
  let pool = Pool.create lanes in
  Pool.run pool ~lanes (fun lane ->
      for round = 0 to rounds - 1 do
        let i = (lane + round) mod Array.length reqs in
        let o = Session.run_exn ~seed:9 session reqs.(i) in
        if observe_outcome o <> expected.(i) && failures.(lane) = "" then
          failures.(lane) <- Printf.sprintf "lane %d diverged on request %d" lane i
      done);
  Pool.shutdown pool;
  Array.iter (fun f -> if f <> "" then Alcotest.fail f) failures;
  let c = Session.counters session in
  Alcotest.(check int) "every request counted" (lanes * rounds) c.Session.requests;
  (* Single-flight: each distinct shape compiled exactly once. *)
  Alcotest.(check int) "one compile per shape" (Array.length reqs) c.Session.plan_misses

(* {2 QCheck: random request sequences, cache on/off x domains 1/3} *)

let serve_sequence_once seed =
  let rng = Random.State.make [| seed |] in
  let shapes =
    [| gemm_request ~chunks:2 (); gemm_request ~chunks:4 (); gemm_request ~n:16 ();
       gemm_request ~dist:"[x,y] -> [x%1,y%1]" () |]
  in
  let len = 2 + Random.State.int rng 5 in
  let sequence =
    List.init len (fun _ ->
        (Random.State.int rng (Array.length shapes), 1 + Random.State.int rng 2))
  in
  let expected =
    List.map (fun (i, seed) -> observe_direct ~seed shapes.(i)) sequence
  in
  List.iter
    (fun (cache, domains) ->
      let session = Session.create ~plan_cache:cache ~domains () in
      List.iter2
        (fun (i, seed) exp ->
          let o = Session.run_exn ~seed session shapes.(i) in
          if observe_outcome o <> exp then
            QCheck.Test.fail_reportf
              "served bytes diverge (cache=%d domains=%d request=%d seed=%d)" cache
              domains i seed)
        sequence expected)
    [ (128, 1); (0, 1); (128, 3); (0, 3) ];
  true

let qcheck_serve_identity =
  QCheck.Test.make ~name:"served sequences byte-identical to direct runs" ~count:20
    QCheck.small_nat
    (fun seed -> Test_fuzz.seeded (succ seed) (fun () -> serve_sequence_once (succ seed)))

(* {2 Wire framing} *)

let test_wire_roundtrip () =
  let payloads = [ ""; "x"; String.make 1000 'y'; "{\"a\": [1, 2, 3]}"; "nl\nin\npayload" ] in
  let stream = String.concat "" (List.map Wire.encode payloads) in
  (* Feed the byte stream in every chunk size: frame boundaries must not
     matter. *)
  List.iter
    (fun chunk ->
      let dec = Wire.decoder () in
      let got = ref [] in
      let i = ref 0 in
      while !i < String.length stream do
        let n = min chunk (String.length stream - !i) in
        Wire.feed dec (Bytes.of_string (String.sub stream !i n)) 0 n;
        i := !i + n;
        let rec drain () =
          match Wire.next dec with
          | Ok (Some p) ->
              got := p :: !got;
              drain ()
          | Ok None -> ()
          | Error e -> Alcotest.failf "decode error: %s" e
        in
        drain ()
      done;
      Alcotest.(check (list string))
        (Printf.sprintf "chunk size %d" chunk)
        payloads (List.rev !got);
      Alcotest.(check bool) "no partial frame left" false (Wire.pending dec))
    [ 1; 7; 9; 64; String.length stream ]

let test_wire_bad_header () =
  let dec = Wire.decoder () in
  let feed s = Wire.feed dec (Bytes.of_string s) 0 (String.length s) in
  feed "99999999\n";
  (match Wire.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame must be rejected");
  let dec2 = Wire.decoder () in
  let s2 = "not-num!\n" in
  Wire.feed dec2 (Bytes.of_string s2) 0 (String.length s2);
  match Wire.next dec2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed header must be rejected"

let test_wire_socketpair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Wire.send a "hello";
  Wire.send a "world";
  Alcotest.(check (result (option string) string)) "first" (Ok (Some "hello")) (Wire.recv b);
  Alcotest.(check (result (option string) string)) "second" (Ok (Some "world")) (Wire.recv b);
  (* Clean EOF on a boundary. *)
  Unix.close a;
  Alcotest.(check (result (option string) string)) "clean EOF" (Ok None) (Wire.recv b);
  Unix.close b;
  (* A peer dying mid-frame is an error, not a clean EOF. *)
  let c, d = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let frame = Wire.encode "truncated" in
  let half = String.length frame / 2 in
  ignore (Unix.write_substring c frame 0 half);
  Unix.close c;
  (match Wire.recv d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mid-frame EOF must be an error");
  Unix.close d

(* {2 Protocol codecs} *)

let tricky_floats =
  [| 0.0; -0.0; 0.1; -1.5; 1e-300; 4097.3; 1.7976931348623157e308;
     4.9e-324; 3.141592653589793 |]

let gemm_submit ?faults ?(mode = Exec.Full) ?(seed = 42) ~id ?(n = 8) ?(chunks = 2) () =
  Protocol.submit ~id ~mode ~seed ?faults ~machine_dims:[| 2; 2 |]
    ~tensors:
      [
        { Protocol.td_name = "A"; td_shape = [| n; n |]; td_dist = "[x,y] -> [x,y]" };
        { Protocol.td_name = "B"; td_shape = [| n; n |]; td_dist = "[x,y] -> [x,y]" };
        { Protocol.td_name = "C"; td_shape = [| n; n |]; td_dist = "[x,y] -> [x,y]" };
      ]
    ~stmt:"A(i,j) = B(i,k) * C(k,j)" ~schedule:(gemm_schedule chunks) ()

let test_protocol_client_roundtrip () =
  let msgs =
    [
      Protocol.Submit
        (Protocol.submit ~id:3 ~node_factors:[| 2; 1 |] ~gpu:true ~mem_per_proc:1e9
           ~virtual_grid:[| 8 |] ~mode:Exec.Model ~seed:7 ~faults:"checkpoint=2"
           ~machine_dims:[| 2; 2 |]
           ~tensors:[ { Protocol.td_name = "A"; td_shape = [||]; td_dist = "[] -> [0]" } ]
           ~stmt:"a() = b()" ~schedule:"sched \"quoted\"\nnewline" ());
      Protocol.Submit (gemm_submit ~id:0 ());
      Protocol.Stats;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun msg ->
      match Protocol.decode_client (Protocol.encode_client msg) with
      | Ok got when got = msg -> ()
      | Ok _ -> Alcotest.fail "client message round-trip changed the message"
      | Error e -> Alcotest.failf "client message round-trip failed: %s" e)
    msgs

let test_protocol_server_roundtrip () =
  let out = Dense.create [| 3; 3 |] in
  Array.iteri (fun i v -> Dense.set_lin out i v) tricky_floats;
  let stats = Stats.create () in
  stats.Stats.time <- 0.1;
  stats.Stats.flops <- 12.0;
  stats.Stats.bytes_inter <- 1e9;
  let msgs =
    [
      Protocol.Result
        { rid = 4; plan_cached = true; result_cached = false; batch = 3; stats;
          output = Some out };
      Protocol.Result
        { rid = 5; plan_cached = false; result_cached = false; batch = 1;
          stats = Stats.create (); output = None };
      Protocol.Rejected { rid = 6; retry_after_s = 0.25; reason = "queue full" };
      Protocol.Failed { rid = -1; reason = "bad \"json\"" };
      Protocol.StatsReply
        { queue_depth = 2; served = 9;
          metrics = Json.Obj [ ("serve.requests", Json.Float 9.0) ] };
      Protocol.ShutdownAck;
    ]
  in
  List.iter
    (fun msg ->
      match Protocol.decode_server (Protocol.encode_server msg) with
      | Error e -> Alcotest.failf "server message round-trip failed: %s" e
      | Ok got -> (
          match (msg, got) with
          | Protocol.Result r, Protocol.Result g ->
              Alcotest.(check (list int64)) "output bits survive the wire"
                (bits r.Protocol.output) (bits g.Protocol.output);
              Alcotest.(check string) "stats survive the wire"
                (Stats.to_string r.Protocol.stats) (Stats.to_string g.Protocol.stats);
              Alcotest.(check bool) "flags survive" true
                (r.Protocol.rid = g.Protocol.rid
                && r.Protocol.plan_cached = g.Protocol.plan_cached
                && r.Protocol.result_cached = g.Protocol.result_cached
                && r.Protocol.batch = g.Protocol.batch)
          | m, g when m = g -> ()
          | _ -> Alcotest.fail "server message round-trip changed the message"))
    msgs

(* {2 DISTAL_SERVE_* environment variables} *)

let with_env name value f =
  let old = Option.value (Sys.getenv_opt name) ~default:"" in
  Fun.protect ~finally:(fun () -> Unix.putenv name old) (fun () ->
      Unix.putenv name value;
      f ())

let test_env_vars () =
  with_env "DISTAL_SERVE_QUEUE" "17" (fun () ->
      Alcotest.(check (option int)) "queue parses" (Some 17) (Env.serve_queue ()));
  with_env "DISTAL_SERVE_QUEUE" "" (fun () ->
      Alcotest.(check (option int)) "blank is unset" None (Env.serve_queue ()));
  with_env "DISTAL_SERVE_BATCH_WINDOW" "0.25" (fun () ->
      Alcotest.(check (option (float 0.0))) "window parses" (Some 0.25)
        (Env.serve_batch_window ()));
  with_env "DISTAL_SERVE_BATCH_WINDOW" "0" (fun () ->
      Alcotest.(check (option (float 0.0))) "zero window is valid" (Some 0.0)
        (Env.serve_batch_window ()));
  with_env "DISTAL_SERVE_CACHE" "0" (fun () ->
      Alcotest.(check (option int)) "cache 0 (disabled) is valid" (Some 0)
        (Env.serve_cache ()));
  (* Malformed values raise, naming the variable. *)
  List.iter
    (fun (name, value, read) ->
      with_env name value (fun () ->
          match read () with
          | _ -> Alcotest.failf "%s=%S must raise" name value
          | exception Invalid_argument msg ->
              if not (Astring_contains.contains msg name) then
                Alcotest.failf "error for %s does not name the variable: %s" name msg))
    [
      ("DISTAL_SERVE_QUEUE", "zero", fun () -> ignore (Env.serve_queue ()));
      ("DISTAL_SERVE_QUEUE", "0", fun () -> ignore (Env.serve_queue ()));
      ("DISTAL_SERVE_QUEUE", "-3", fun () -> ignore (Env.serve_queue ()));
      ("DISTAL_SERVE_BATCH_WINDOW", "-0.1", fun () -> ignore (Env.serve_batch_window ()));
      ("DISTAL_SERVE_BATCH_WINDOW", "soon", fun () -> ignore (Env.serve_batch_window ()));
      ("DISTAL_SERVE_CACHE", "-1", fun () -> ignore (Env.serve_cache ()));
      ("DISTAL_SERVE_CACHE", "many", fun () -> ignore (Env.serve_cache ()));
    ]

(* {2 distald end to end}

   These tests drive the real server binary (built as a test dependency)
   over a real Unix-domain socket: Unix.create_process rather than fork,
   because the test runner may already have spawned pool domains. *)

let distald_exe = "../bin/distald.exe"

let socket_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "distald-test-%d-%d.sock" (Unix.getpid ()) !counter)

let spawn_server ?(args = []) socket =
  let argv = Array.of_list ([ distald_exe; "--socket"; socket; "--quiet" ] @ args) in
  Unix.create_process distald_exe argv Unix.stdin Unix.stdout Unix.stderr

let wait_server pid = ignore (Unix.waitpid [] pid)

let kill_server pid =
  Unix.kill pid Sys.sigkill;
  wait_server pid

let stop_server client pid =
  (match Client.shutdown client with
  | Ok () -> ()
  | Error e -> Alcotest.failf "shutdown failed: %s" e);
  wait_server pid

let with_server ?args f =
  let socket = socket_path () in
  let pid = spawn_server ?args socket in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid) with Unix.Unix_error _ -> ());
      if Sys.file_exists socket then try Sys.remove socket with Sys_error _ -> ())
    (fun () -> f socket pid)

let expect_result = function
  | Ok (Client.Ok_result r) -> r
  | Ok (Client.Rejected { reason; _ }) -> Alcotest.failf "rejected: %s" reason
  | Ok (Client.Failed reason) -> Alcotest.failf "failed: %s" reason
  | Error e -> Alcotest.failf "transport error: %s" e

let submit_expected (s : Protocol.submit) =
  let req =
    match Protocol.to_request s with
    | Ok r -> r
    | Error e -> Alcotest.failf "bad submit: %s" e
  in
  observe_direct ~seed:s.Protocol.seed req

let test_server_end_to_end () =
  with_server ~args:[ "--batch-window"; "0.001" ] (fun socket pid ->
      let c1 = Client.connect_exn socket in
      let c2 = Client.connect_exn socket in
      let s_small = gemm_submit ~id:(Client.fresh_id c1) () in
      let s_big = gemm_submit ~id:(Client.fresh_id c2) ~n:16 ~chunks:4 () in
      (* Two clients, different shapes: both served, both byte-identical
         to direct runs. *)
      let r1 = expect_result (Client.submit c1 s_small) in
      let r2 = expect_result (Client.submit c2 s_big) in
      Alcotest.(check (pair (list int64) string)) "client 1 bytes"
        (submit_expected s_small)
        (bits r1.Protocol.output, Stats.to_string r1.Protocol.stats);
      Alcotest.(check (pair (list int64) string)) "client 2 bytes"
        (submit_expected s_big)
        (bits r2.Protocol.output, Stats.to_string r2.Protocol.stats);
      Alcotest.(check bool) "first sight compiles" false r1.Protocol.plan_cached;
      (* The same shape from the other client: plan and result reuse
         across connections. *)
      let s_again = { s_small with Protocol.id = Client.fresh_id c2 } in
      let r3 = expect_result (Client.submit c2 s_again) in
      Alcotest.(check bool) "cross-client plan reuse" true r3.Protocol.plan_cached;
      Alcotest.(check bool) "cross-client result reuse" true r3.Protocol.result_cached;
      Alcotest.(check (pair (list int64) string)) "replayed bytes"
        (submit_expected s_small)
        (bits r3.Protocol.output, Stats.to_string r3.Protocol.stats);
      (* Model mode over the wire: stats only. *)
      let s_model = gemm_submit ~id:(Client.fresh_id c1) ~mode:Exec.Model () in
      let r4 = expect_result (Client.submit c1 s_model) in
      Alcotest.(check (list int64)) "model mode has no output" [] (bits r4.Protocol.output);
      (match Client.stats c1 with
      | Ok (depth, served, _) ->
          Alcotest.(check int) "no queue backlog" 0 depth;
          Alcotest.(check int) "served count" 4 served
      | Error e -> Alcotest.failf "stats failed: %s" e);
      Client.close c2;
      stop_server c1 pid;
      Client.close c1;
      Alcotest.(check bool) "socket removed on shutdown" false (Sys.file_exists socket))

(* Same-shape requests inside one window share a compile: with a wide
   window and two raw submits in flight before the flush, the second
   reply must report a batch of 2 and identical bytes. *)
let test_server_batching () =
  with_server ~args:[ "--batch-window"; "0.4" ] (fun socket pid ->
      let c1 = Client.connect_exn socket in
      let c2 = Client.connect_exn socket in
      let s1 = gemm_submit ~id:(Client.fresh_id c1) () in
      let s2 = { s1 with Protocol.id = 100 } in
      (match (Client.send c1 (Protocol.Submit s1), Client.send c2 (Protocol.Submit s2)) with
      | Ok (), Ok () -> ()
      | _ -> Alcotest.fail "send failed");
      let r1 =
        match Client.recv c1 with
        | Ok (Protocol.Result r) -> r
        | _ -> Alcotest.fail "expected a result for client 1"
      in
      let r2 =
        match Client.recv c2 with
        | Ok (Protocol.Result r) -> r
        | _ -> Alcotest.fail "expected a result for client 2"
      in
      Alcotest.(check int) "one batch of two" 2 r1.Protocol.batch;
      Alcotest.(check int) "both members counted" 2 r2.Protocol.batch;
      Alcotest.(check (list int64)) "batch-mates identical"
        (bits r1.Protocol.output) (bits r2.Protocol.output);
      Alcotest.(check bool) "second member replays the first's run" true
        r2.Protocol.result_cached;
      stop_server c1 pid;
      Client.close c1;
      Client.close c2)

let test_server_admission () =
  with_server ~args:[ "--queue"; "1"; "--batch-window"; "3" ] (fun socket pid ->
      let c1 = Client.connect_exn socket in
      let c2 = Client.connect_exn socket in
      let s1 = gemm_submit ~id:(Client.fresh_id c1) () in
      (match Client.send c1 (Protocol.Submit s1) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send failed: %s" e);
      (* Wait until the first submit occupies the queue slot. *)
      let rec wait_depth tries =
        match Client.stats c2 with
        | Ok (1, _, _) -> ()
        | Ok _ when tries > 0 ->
            ignore (Unix.select [] [] [] 0.02);
            wait_depth (tries - 1)
        | Ok (d, _, _) -> Alcotest.failf "queue depth stuck at %d" d
        | Error e -> Alcotest.failf "stats failed: %s" e
      in
      wait_depth 100;
      (* The bound is hit: the next submit is rejected, with a hint. *)
      (match Client.submit c2 (gemm_submit ~id:(Client.fresh_id c2) ()) with
      | Ok (Client.Rejected { retry_after_s; reason }) ->
          Alcotest.(check bool) "positive retry-after" true (retry_after_s > 0.0);
          Alcotest.(check bool) "reason mentions the queue" true
            (Astring_contains.contains reason "queue")
      | Ok _ -> Alcotest.fail "expected an admission rejection"
      | Error e -> Alcotest.failf "transport error: %s" e);
      (* Shutdown drains: the queued request is still answered. *)
      (match Client.shutdown c2 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "shutdown failed: %s" e);
      let r1 =
        match Client.recv c1 with
        | Ok (Protocol.Result r) -> r
        | _ -> Alcotest.fail "queued request must be served on shutdown"
      in
      Alcotest.(check (pair (list int64) string)) "drained result bytes"
        (submit_expected s1)
        (bits r1.Protocol.output, Stats.to_string r1.Protocol.stats);
      wait_server pid;
      Client.close c1;
      Client.close c2)

(* Clients killed mid-request leak nothing: a queued submit whose client
   vanishes is discarded (its admission slot freed), and a half-written
   frame followed by EOF just drops that client. *)
let test_server_client_killed () =
  with_server ~args:[ "--queue"; "1"; "--batch-window"; "0.25" ] (fun socket pid ->
      let c1 = Client.connect_exn socket in
      let s1 = gemm_submit ~id:(Client.fresh_id c1) () in
      (match Client.send c1 (Protocol.Submit s1) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send failed: %s" e);
      ignore (Unix.select [] [] [] 0.05);
      (* The client dies with its request still queued. *)
      Client.close c1;
      (* A second client dies mid-frame: header promised more bytes than
         were ever written. *)
      let c2 = Client.connect_exn socket in
      let frame = Wire.encode (Protocol.encode_client (Protocol.Submit s1)) in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      ignore (Unix.write_substring fd frame 0 (String.length frame / 2));
      ignore (Unix.select [] [] [] 0.05);
      Unix.close fd;
      (* The slot freed by the dead client admits new work; the server is
         alive and the queue empty once the dust settles. *)
      let rec wait_empty tries =
        match Client.stats c2 with
        | Ok (0, _, _) -> ()
        | Ok _ when tries > 0 ->
            ignore (Unix.select [] [] [] 0.02);
            wait_empty (tries - 1)
        | Ok (d, _, _) -> Alcotest.failf "dead client's slot leaked (depth %d)" d
        | Error e -> Alcotest.failf "stats failed: %s" e
      in
      wait_empty 100;
      let s2 = gemm_submit ~id:(Client.fresh_id c2) () in
      let r = expect_result (Client.submit_wait c2 s2) in
      Alcotest.(check (pair (list int64) string)) "served after client kills"
        (submit_expected s2)
        (bits r.Protocol.output, Stats.to_string r.Protocol.stats);
      stop_server c2 pid;
      Client.close c2)

(* SIGKILL mid-batch, restart on the same socket: the restarted server
   has cold caches and no state to recover, yet serves bit-identical
   results — recompile-on-miss is the whole recovery story. *)
let test_server_killed_and_restarted () =
  let socket = socket_path () in
  let pid = spawn_server ~args:[ "--batch-window"; "10" ] socket in
  let c1 = Client.connect_exn socket in
  let s1 = gemm_submit ~id:(Client.fresh_id c1) () in
  (match Client.send c1 (Protocol.Submit s1) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send failed: %s" e);
  (* Confirm the request is queued (mid-batch), then kill -9. *)
  let c2 = Client.connect_exn socket in
  let rec wait_depth tries =
    match Client.stats c2 with
    | Ok (1, _, _) -> ()
    | Ok _ when tries > 0 ->
        ignore (Unix.select [] [] [] 0.02);
        wait_depth (tries - 1)
    | Ok (d, _, _) -> Alcotest.failf "queue depth stuck at %d" d
    | Error e -> Alcotest.failf "stats failed: %s" e
  in
  wait_depth 100;
  kill_server pid;
  (* The killed server takes the in-flight request down with it. *)
  (match Client.recv c1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a SIGKILLed server cannot have answered");
  Client.close c1;
  Client.close c2;
  (* Restart on the same path; the stale socket file is replaced. *)
  let pid2 = spawn_server ~args:[ "--batch-window"; "0.001" ] socket in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid2 Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid2) with Unix.Unix_error _ -> ());
      if Sys.file_exists socket then try Sys.remove socket with Sys_error _ -> ())
    (fun () ->
      let c3 = Client.connect_exn socket in
      let s2 = { s1 with Protocol.id = 7 } in
      let r = expect_result (Client.submit_wait c3 s2) in
      Alcotest.(check bool) "restarted server recompiles" false r.Protocol.plan_cached;
      Alcotest.(check (pair (list int64) string)) "restart reproduces the bytes"
        (submit_expected s1)
        (bits r.Protocol.output, Stats.to_string r.Protocol.stats);
      stop_server c3 pid2;
      Client.close c3)

(* Fault plans over the wire (lib/fault tie-in): a served request run
   under kill + checkpoint recovery must produce exactly the fault-free
   bytes — recovery exactness survives serving. *)
let test_server_faulted_request () =
  with_server ~args:[ "--batch-window"; "0.001" ] (fun socket pid ->
      let c = Client.connect_exn socket in
      let clean = gemm_submit ~id:(Client.fresh_id c) () in
      let faulted =
        { clean with
          Protocol.id = Client.fresh_id c;
          faults = Some "checkpoint=1; kill(proc=1, step=1)" }
      in
      let r_clean = expect_result (Client.submit c clean) in
      let r_faulted = expect_result (Client.submit c faulted) in
      Alcotest.(check (list int64)) "recovery-exact output over the wire"
        (bits r_clean.Protocol.output) (bits r_faulted.Protocol.output);
      (* The faulted run is its own result-cache entry, not a replay of
         the clean one. *)
      Alcotest.(check bool) "faulted run not conflated with clean" false
        r_faulted.Protocol.result_cached;
      Alcotest.(check (list int64)) "clean bytes match direct run"
        (fst (submit_expected clean)) (bits r_clean.Protocol.output);
      stop_server c pid;
      Client.close c)

let suites =
  [
    ( "serve",
      [
        Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
        Alcotest.test_case "lru capacity zero" `Quick test_lru_capacity_zero;
        Alcotest.test_case "lru find_or_add" `Quick test_lru_find_or_add;
        Alcotest.test_case "lru promote keeps MRU hits cheap and ordered" `Quick
          test_lru_promote_mru;
        QCheck_alcotest.to_alcotest qcheck_lru_model;
        Alcotest.test_case "request fingerprint" `Quick test_fingerprint;
        Alcotest.test_case "session byte identity" `Quick test_session_identity;
        Alcotest.test_case "session defensive copies" `Quick test_session_defensive_copies;
        Alcotest.test_case "session explicit data keys" `Quick test_session_explicit_data_key;
        Alcotest.test_case "session eviction" `Quick test_session_eviction;
        Alcotest.test_case "session cache off" `Quick test_session_cache_off;
        Alcotest.test_case "session concurrent lanes" `Quick test_session_concurrent;
        Test_fuzz.to_alcotest qcheck_serve_identity;
        Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
        Alcotest.test_case "wire bad headers" `Quick test_wire_bad_header;
        Alcotest.test_case "wire over a socketpair" `Quick test_wire_socketpair;
        Alcotest.test_case "protocol client roundtrip" `Quick test_protocol_client_roundtrip;
        Alcotest.test_case "protocol server roundtrip" `Quick test_protocol_server_roundtrip;
        Alcotest.test_case "DISTAL_SERVE_* parsing" `Quick test_env_vars;
        Alcotest.test_case "distald end to end" `Quick test_server_end_to_end;
        Alcotest.test_case "distald batching" `Quick test_server_batching;
        Alcotest.test_case "distald admission control" `Quick test_server_admission;
        Alcotest.test_case "distald client killed mid-request" `Quick test_server_client_killed;
        Alcotest.test_case "distald killed mid-batch and restarted" `Quick
          test_server_killed_and_restarted;
        Alcotest.test_case "distald faulted request" `Quick test_server_faulted_request;
      ] );
  ]
