let () =
  let sock = "/tmp/distald_test.sock" in
  let pid = Unix.create_process "./_build/default/bin/distald.exe"
      [| "distald"; "--socket"; sock; "--quiet" |] Unix.stdin Unix.stdout Unix.stderr in
  Unix.sleepf 0.3;
  let c = Distal_serve.Client.connect_exn sock in
  let s = Distal_serve.Protocol.submit ~id:1 ~machine_dims:[|2;2|]
      ~tensors:[ { Distal_serve.Protocol.td_name = "A"; td_shape = [| -4; 4 |]; td_dist = "[x,y] -> [x,y]" };
                 { Distal_serve.Protocol.td_name = "B"; td_shape = [| -4; 4 |]; td_dist = "[x,y] -> [x,y]" } ]
      ~stmt:"A(i,j) += B(i,j)" ~schedule:"" () in
  (match Distal_serve.Client.submit c s with
   | Ok (Distal_serve.Client.Ok_result _) -> print_endline "got result"
   | Ok (Distal_serve.Client.Failed r) -> print_endline ("failed cleanly: " ^ r)
   | Ok (Distal_serve.Client.Rejected _) -> print_endline "rejected"
   | Error e -> print_endline ("transport error: " ^ e));
  Unix.sleepf 0.3;
  (match Unix.waitpid [ Unix.WNOHANG ] pid with
   | 0, _ -> print_endline "server still alive"; Unix.kill pid Sys.sigterm; ignore (Unix.waitpid [] pid)
   | _, st ->
       (match st with
        | Unix.WEXITED n -> Printf.printf "SERVER DIED exit %d\n" n
        | Unix.WSIGNALED n -> Printf.printf "SERVER DIED signal %d\n" n
        | Unix.WSTOPPED _ -> print_endline "stopped"))
