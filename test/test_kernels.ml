(* The leaf kernel registry (lib/tensor/kernel_registry): every
   implementation tier must compute the reference contraction, the tiled
   tier bit-identically to the evaluator's accumulation order, and the
   dispatch/diagnostic surfaces (mode parsing, shape errors, flops
   pricing, calibrated rates) must behave as documented. *)

module Kreg = Distal_tensor.Kernel_registry
module Dense = Distal_tensor.Dense
module Kernels = Distal_tensor.Kernels
module Cost = Distal_machine.Cost_model
module Calibrate = Distal_machine.Calibrate
module Env = Distal_support.Env
module Rng = Distal_support.Rng
module Api = Distal.Api
module Machine = Api.Machine

let entry_of name = List.find (fun (e : Kreg.entry) -> e.name = name) Kreg.entries
let letters s = List.init (String.length s) (String.get s)

(* {2 Reference evaluation}

   The evaluator's accumulation order, straight from the kernel table:
   per output element, initialize the accumulator from the current output
   value, apply one multiply-add per reduction point in ascending
   canonical order (products folded left-associated), store back. The
   Tiled tier documents bit-identity against exactly this order. *)

let eval_reference ~kernel ~dims out factors =
  let e = entry_of kernel in
  let canon = Kreg.canonical_letters e in
  let idx = Array.make 128 0 in
  let ext ch = dims.(String.index canon ch) in
  let coords s = Array.init (String.length s) (fun i -> idx.(Char.code s.[i])) in
  let red = List.filter (fun ch -> not (String.contains e.lhs ch)) (letters canon) in
  let rec out_loop = function
    | ch :: rest ->
        for v = 0 to ext ch - 1 do
          idx.(Char.code ch) <- v;
          out_loop rest
        done
    | [] ->
        let acc = ref (Dense.get out (coords e.lhs)) in
        let rec red_loop = function
          | ch :: rest ->
              for v = 0 to ext ch - 1 do
                idx.(Char.code ch) <- v;
                red_loop rest
              done
          | [] ->
              let p =
                List.fold_left2
                  (fun acc f fac ->
                    match acc with
                    | None -> Some (Dense.get fac (coords f))
                    | Some a -> Some (a *. Dense.get fac (coords f)))
                  None e.factors factors
                |> Option.get
              in
              acc := !acc +. p
        in
        red_loop red;
        Dense.set out (coords e.lhs) !acc
  in
  out_loop (letters e.lhs)

let row_major_strides shape =
  let d = Array.length shape in
  let st = Array.make d 1 in
  for i = d - 2 downto 0 do
    st.(i) <- st.(i + 1) * shape.(i + 1)
  done;
  st

let full_view t =
  { Kreg.buf = Dense.unsafe_data t; off = 0; st = row_major_strides (Dense.shape t) }

let shape_of ~dims ~canon access =
  Array.init (String.length access) (fun i -> dims.(String.index canon access.[i]))

(* Random operands for [kernel] over canonical extents [dims]: the
   initial output is random too, so accumulate ([+=]) semantics are part
   of every property. *)
let operands rng ~kernel ~dims =
  let e = entry_of kernel in
  let canon = Kreg.canonical_letters e in
  let out = Dense.random rng (shape_of ~dims ~canon e.lhs) in
  let factors = List.map (fun f -> Dense.random rng (shape_of ~dims ~canon f)) e.factors in
  (out, factors)

let exactly_equal a b = Dense.shape a = Dense.shape b && Dense.max_abs_diff a b = 0.0

(* {2 Registry vs reference: QCheck equivalence}

   Random kernels and random canonical extents — including degenerate 0
   and 1 extents and shapes large enough to cross into the register-tiled
   [`Micro] tier — run through [run_views] in both tiers and through
   [run_named], against the table-driven reference. *)

let gen_case =
  QCheck.make
    ~print:(fun (k, seed) -> Printf.sprintf "%s seed=%d" k seed)
    QCheck.Gen.(
      pair
        (oneofl Kreg.kernel_names)
        (int_range 0 1_000_000))

let random_dims rng ~kernel =
  let e = entry_of kernel in
  let rank = String.length (Kreg.canonical_letters e) in
  (* Mostly small non-square extents; occasional 0/1 degenerates and
     occasional large axes that clear the [`Micro] thresholds. *)
  Array.init rank (fun _ ->
      match Rng.int rng 8 with
      | 0 -> Rng.int rng 2 (* 0 or 1 *)
      | 1 | 2 -> 9 + Rng.int rng 16
      | _ -> 2 + Rng.int rng 6)

let qcheck_registry_matches_reference =
  QCheck.Test.make ~count:120 ~name:"run_views matches reference on random shapes"
    gen_case (fun (kernel, seed) ->
      let rng = Rng.create seed in
      let dims = random_dims rng ~kernel in
      let out, factors = operands rng ~kernel ~dims in
      let reference = Dense.copy out in
      eval_reference ~kernel ~dims reference factors;
      let run mode =
        let got = Dense.copy out in
        Kreg.run_views mode ~kernel ~dims
          (Array.of_list (full_view got :: List.map full_view factors));
        got
      in
      let tiled = run Kreg.Tiled in
      let naive = run Kreg.Naive in
      if not (exactly_equal tiled reference) then
        QCheck.Test.fail_reportf "tiled differs from evaluator order: %s dims=[%s] diff=%g"
          kernel
          (String.concat ";" (Array.to_list (Array.map string_of_int dims)))
          (Dense.max_abs_diff tiled reference);
      if not (Dense.approx_equal ~tol:1e-9 naive reference) then
        QCheck.Test.fail_reportf "naive diverged: %s diff=%g" kernel
          (Dense.max_abs_diff naive reference);
      true)

let qcheck_run_named_matches_views =
  QCheck.Test.make ~count:60 ~name:"run_named agrees with run_views on whole operands"
    gen_case (fun (kernel, seed) ->
      let rng = Rng.create seed in
      let dims =
        (* run_named requires nonempty operands for shape unification. *)
        Array.map (fun d -> max 1 d) (random_dims rng ~kernel)
      in
      let out, factors = operands rng ~kernel ~dims in
      let via_views = Dense.copy out in
      Kreg.run_views Kreg.Tiled ~kernel ~dims
        (Array.of_list (full_view via_views :: List.map full_view factors));
      let via_named = Dense.copy out in
      Kreg.run_named Kreg.Tiled ~kernel (via_named :: factors);
      if not (exactly_equal via_views via_named) then
        QCheck.Test.fail_reportf "run_named differs from run_views: %s" kernel;
      true)

(* Strided dispatch: operands embedded at an offset inside larger
   buffers must compute exactly what their contiguous extracts compute —
   the staged scalar path hands the registry exactly such windows. *)
let test_strided_views () =
  let rng = Rng.create 42 in
  let m, n, k = (13, 11, 17) in
  let big rows cols = Dense.random rng [| rows + 6; cols + 6 |] in
  let ba = big m n and bb = big m k and bc = big k n in
  let window t =
    let st = row_major_strides (Dense.shape t) in
    { Kreg.buf = Dense.unsafe_data t; off = (2 * st.(0)) + 3; st = [| st.(0); st.(1) |] }
  in
  let extract t rows cols =
    Dense.init [| rows; cols |] (fun ix ->
        Dense.get t [| ix.(0) + 2; ix.(1) + 3 |])
  in
  let a_ref = extract ba m n and b_ref = extract bb m k and c_ref = extract bc k n in
  Kreg.run_named Kreg.Tiled ~kernel:"gemm" [ a_ref; b_ref; c_ref ];
  Kreg.run_views Kreg.Tiled ~kernel:"gemm" ~dims:[| m; n; k |]
    [| window ba; window bb; window bc |];
  let a_got = extract ba m n in
  Alcotest.(check (float 0.0)) "strided gemm exact" 0.0 (Dense.max_abs_diff a_got a_ref)

(* {2 Dispatch surfaces} *)

let contains s sub = Astring_contains.contains s sub

let test_shape_class () =
  Alcotest.(check bool) "small gemm is simple" true
    (Kreg.shape_class ~kernel:"gemm" ~dims:[| 4; 4; 4 |] = `Simple);
  Alcotest.(check bool) "large gemm is micro" true
    (Kreg.shape_class ~kernel:"gemm" ~dims:[| 64; 64; 64 |] = `Micro);
  Alcotest.(check bool) "innerprod always simple" true
    (Kreg.shape_class ~kernel:"innerprod" ~dims:[| 64; 64; 64 |] = `Simple);
  try
    ignore (Kreg.shape_class ~kernel:"bogus" ~dims:[| 1 |]);
    Alcotest.fail "unknown kernel must raise"
  with Invalid_argument msg ->
    Alcotest.(check bool) ("names the kernel: " ^ msg) true (contains msg "bogus")

let test_off_never_runs () =
  let a = Dense.create [| 2; 2 |] in
  try
    Kreg.run_views Kreg.Off ~kernel:"gemm" ~dims:[| 2; 2; 2 |]
      [| full_view a; full_view a; full_view a |];
    Alcotest.fail "Off dispatch must raise"
  with Invalid_argument _ -> ()

let test_flops_table () =
  Alcotest.(check (float 0.0)) "gemm flops" (2.0 *. 24.0)
    (Kreg.flops ~kernel:"gemm" ~dims:[| 2; 3; 4 |]);
  Alcotest.(check (float 0.0)) "mttkrp flops" (3.0 *. 120.0)
    (Kreg.flops ~kernel:"mttkrp" ~dims:[| 2; 3; 4; 5 |]);
  (try
     ignore (Kreg.flops ~kernel:"bogus" ~dims:[| 1 |]);
     Alcotest.fail "unknown kernel must raise"
   with Invalid_argument _ -> ());
  try
    ignore (Kreg.flops ~kernel:"gemm" ~dims:[| 2; 3 |]);
    Alcotest.fail "wrong rank must raise"
  with Invalid_argument _ -> ()

(* Shape mismatches must carry the kernel name and the offending shapes —
   in both the reference kernels and the registry's named path. *)
let test_shape_diagnostics () =
  let m23 = Dense.create [| 2; 3 |] and m44 = Dense.create [| 4; 4 |] in
  (try
     Kernels.gemm ~a:m23 ~b:m44 ~c:m44;
     Alcotest.fail "Kernels.gemm mismatch must raise"
   with Invalid_argument msg ->
     Alcotest.(check bool) ("mentions gemm: " ^ msg) true (contains msg "gemm");
     Alcotest.(check bool) ("mentions shape: " ^ msg) true (contains msg "2x3"));
  (try
     Kreg.run_named Kreg.Tiled ~kernel:"gemm" [ m23; m44; m44 ];
     Alcotest.fail "run_named mismatch must raise"
   with Invalid_argument msg ->
     Alcotest.(check bool) ("mentions gemm: " ^ msg) true (contains msg "gemm"));
  try
    ignore (Kernels.flops "bogus" [| 1 |]);
    Alcotest.fail "Kernels.flops unknown must raise"
  with Invalid_argument msg ->
    Alcotest.(check bool) ("names the kernel: " ^ msg) true (contains msg "bogus")

let test_env_modes () =
  let set v = Unix.putenv "DISTAL_KERNELS" v in
  set "naive";
  Alcotest.(check bool) "naive parses" true (Env.kernels () = Some `Naive);
  Alcotest.(check bool) "default_mode follows env" true (Kreg.default_mode () = Kreg.Naive);
  set "TILED";
  Alcotest.(check bool) "case-insensitive" true (Env.kernels () = Some `Tiled);
  set "off";
  Alcotest.(check bool) "off parses" true (Env.kernels () = Some `Off);
  set "bogus";
  (try
     ignore (Env.kernels ());
     Alcotest.fail "malformed DISTAL_KERNELS must raise"
   with Invalid_argument _ -> ());
  set "";
  Alcotest.(check bool) "empty means default" true (Env.kernels () = None);
  Alcotest.(check bool) "default is tiled" true (Kreg.default_mode () = Kreg.Tiled)

(* {2 End-to-end: modes x domains}

   The scalar (unsubstituted) path must be bit-identical across every
   kernels mode and domain count — tiled dispatch replays the staged
   evaluator's accumulation order. The substituted path runs the
   reference loops under Off and Naive (bit-identical) and the blocked
   microkernels under Tiled (documented tolerance). *)

let gemm_problem ~machine ~n =
  Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
    ~tensors:
      [
        Api.tensor "A" [| n; n |] ~dist:"[x,y] -> [x,y]";
        Api.tensor "B" [| n; n |] ~dist:"[x,y] -> [x,y]";
        Api.tensor "C" [| n; n |] ~dist:"[x,y] -> [x,y]";
      ]
    ()

let summa_schedule ~substitute =
  "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]);\n\
   split(k, ko, ki, 4); reorder(ko, ii, ji, ki);\n\
   communicate(A, jo); communicate({B,C}, ko)"
  ^ if substitute then ";\nsubstitute({ii,ji,ki}, gemm)" else ""

let run_matrix plan ~data =
  List.map
    (fun (kernels, domains) ->
      let r = Api.run_exn ~mode:Api.Exec.Full ~kernels ~domains plan ~data in
      ((kernels, domains), Option.get r.Api.Exec.output))
    (List.concat_map
       (fun m -> [ (m, 1); (m, 3) ])
       [ Kreg.Off; Kreg.Naive; Kreg.Tiled ])

let test_modes_end_to_end () =
  let n = 12 in
  let machine = Machine.grid [| 2; 2 |] in
  let p = gemm_problem ~machine ~n in
  let scalar = Api.compile_script_exn p ~schedule:(summa_schedule ~substitute:false) in
  let named = Api.compile_script_exn p ~schedule:(summa_schedule ~substitute:true) in
  let data = Api.random_inputs scalar in
  let reference =
    Api.Exec.serial_reference scalar.Api.problem.Api.stmt
      ~shapes:[ ("A", [| n; n |]); ("B", [| n; n |]); ("C", [| n; n |]) ]
      ~data
  in
  (* Scalar path: one output bit pattern across all modes and domains. *)
  let scalar_runs = run_matrix scalar ~data in
  let (_, first) = List.hd scalar_runs in
  List.iter
    (fun ((kernels, domains), out) ->
      Alcotest.(check bool)
        (Printf.sprintf "scalar path identical (%s, %d domains)"
           (Kreg.mode_to_string kernels) domains)
        true (exactly_equal out first))
    scalar_runs;
  Alcotest.(check bool) "scalar path correct" true
    (Dense.approx_equal ~tol:1e-9 first reference);
  (* Named path: Off = Naive bitwise; Tiled within tolerance; every
     domain count bit-identical within a mode. *)
  let named_runs = run_matrix named ~data in
  let out_of kernels domains = List.assoc (kernels, domains) named_runs in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "named %s domain-independent" (Kreg.mode_to_string m))
        true
        (exactly_equal (out_of m 1) (out_of m 3)))
    [ Kreg.Off; Kreg.Naive; Kreg.Tiled ];
  Alcotest.(check bool) "named off = naive bitwise" true
    (exactly_equal (out_of Kreg.Off 1) (out_of Kreg.Naive 1));
  List.iter
    (fun ((kernels, domains), out) ->
      Alcotest.(check bool)
        (Printf.sprintf "named path correct (%s, %d domains)"
           (Kreg.mode_to_string kernels) domains)
        true
        (Dense.approx_equal ~tol:1e-9 out reference))
    named_runs

(* {2 Cost model and calibration} *)

let test_leaf_rates () =
  let c = { Cost.cpu_distal with Cost.kernel_rates = [ ("gemm", 5e9) ] } in
  Alcotest.(check (float 0.0)) "measured rate" 5e9 (Cost.leaf_rate c ~kernel:"gemm");
  Alcotest.(check (float 0.0)) "fallback rate" c.Cost.compute_rate
    (Cost.leaf_rate c ~kernel:"ttv");
  let t = Cost.leaf_compute_time c ~kernel:"gemm" ~flops:5e9 ~bytes_touched:0.0 in
  Alcotest.(check (float 1e-9)) "flop-bound leaf second" 1.0 t;
  let t' = Cost.leaf_compute_time c ~kernel:"gemm" ~flops:1.0 ~bytes_touched:c.Cost.mem_bw in
  Alcotest.(check (float 1e-9)) "memory-bound leaf second" 1.0 t';
  Alcotest.(check bool) "rates enter the digest" false
    (Cost.digest Cost.cpu_distal = Cost.digest c);
  Alcotest.(check bool) "distinct rates, distinct digests" false
    (Cost.digest { c with Cost.kernel_rates = [ ("gemm", 6e9) ] } = Cost.digest c)

let test_calibrated_rates () =
  List.iter
    (fun k ->
      let r = Calibrate.kernel_rate k in
      Alcotest.(check bool)
        (Printf.sprintf "%s rate clamped (%g)" k r)
        true
        (r >= 1e7 && r <= 1e13))
    Kreg.kernel_names;
  let c = Calibrate.calibrated Cost.cpu_distal in
  Alcotest.(check int) "calibrated carries every kernel"
    (List.length Kreg.kernel_names)
    (List.length c.Cost.kernel_rates);
  try
    ignore (Calibrate.kernel_rate "bogus");
    Alcotest.fail "unknown kernel must raise"
  with Invalid_argument _ -> ()

let to_alcotest test =
  match Distal_support.Env.int_var "DISTAL_SEED" with
  | Some s -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| s |]) test
  | None -> QCheck_alcotest.to_alcotest test

let suites =
  [
    ( "kernel registry",
      [
        to_alcotest qcheck_registry_matches_reference;
        to_alcotest qcheck_run_named_matches_views;
        Alcotest.test_case "strided views" `Quick test_strided_views;
        Alcotest.test_case "shape class" `Quick test_shape_class;
        Alcotest.test_case "off never dispatches" `Quick test_off_never_runs;
        Alcotest.test_case "flops table" `Quick test_flops_table;
        Alcotest.test_case "shape diagnostics" `Quick test_shape_diagnostics;
        Alcotest.test_case "DISTAL_KERNELS parsing" `Quick test_env_modes;
        Alcotest.test_case "modes x domains end to end" `Quick test_modes_end_to_end;
        Alcotest.test_case "leaf rates in the cost model" `Quick test_leaf_rates;
        Alcotest.test_case "calibrated kernel rates" `Quick test_calibrated_rates;
      ] );
  ]
