(* Communication planning must be invisible to semantics: a coalesced
   plan moves exactly the same multiset of (tensor, element, src, dst) as
   the raw fragments, Full-mode results are byte-identical with the pass
   on or off, and a redistribution prices exactly like the equivalent
   single-step execution. *)

module Rect = Distal_tensor.Rect
module Dense = Distal_tensor.Dense
module Comm_plan = Distal_runtime.Comm_plan
module Cost = Distal_machine.Cost_model
module Rng = Distal_support.Rng
module Api = Distal.Api
module Machine = Api.Machine
module D = Api.Distnot
module Exec = Api.Exec
module Profile = Distal_obs.Profile
module Metrics = Distal_obs.Metrics
module Cp = Distal_obs.Critical_path

let rect lo hi = Rect.make ~lo:(Array.of_list lo) ~hi:(Array.of_list hi)
let show = Comm_plan.describe

(* {2 Merge behaviour} *)

let test_merge_units () =
  (* A column of abutting unit rects collapses to one block. *)
  let column = List.init 6 (fun i -> rect [ i; 0 ] [ i + 1; 1 ]) in
  (match Comm_plan.merge_rects column with
  | [ r ] -> Alcotest.(check string) "column" "[0,6)x[0,1)" (Rect.to_string r)
  | rs -> Alcotest.failf "column merged to %s" (show rs));
  (* A full 2D block of unit rects collapses to one rect, whatever the
     input order. *)
  let grid =
    List.concat_map (fun i -> List.init 3 (fun j -> rect [ j; i ] [ j + 1; i + 1 ]))
      [ 2; 0; 1 ]
  in
  (match Comm_plan.merge_rects grid with
  | [ r ] -> Alcotest.(check string) "grid" "[0,3)x[0,3)" (Rect.to_string r)
  | rs -> Alcotest.failf "grid merged to %s" (show rs))

let test_merge_strided () =
  (* Stride-2 rows never abut: the cyclic pattern stays an explicit
     strided run of k fragments. *)
  let strided = List.init 4 (fun i -> rect [ 2 * i ] [ (2 * i) + 1 ]) in
  let merged = Comm_plan.merge_rects strided in
  Alcotest.(check int) "stride-2 keeps its fragments" 4 (List.length merged);
  (* ...and merging is idempotent on it. *)
  Alcotest.(check int) "idempotent" 0
    (Comm_plan.compare_rects merged (Comm_plan.merge_rects merged))

(* {2 The multiset property} *)

(* Every integer point of a rect, as (coordinate list). *)
let points (r : Rect.t) =
  let dims = Rect.dim r in
  let acc = ref [] in
  let coord = Array.copy r.lo in
  let rec go d =
    if d = dims then acc := Array.to_list coord :: !acc
    else
      for x = r.lo.(d) to r.hi.(d) - 1 do
        coord.(d) <- x;
        go (d + 1)
      done
  in
  go 0;
  !acc

(* The multiset a plan moves: one (tensor, point, src, dst) per element. *)
let elements xfers =
  List.concat_map
    (fun (x : Comm_plan.xfer) ->
      List.concat_map
        (fun r -> List.map (fun p -> (x.Comm_plan.tensor, p, x.Comm_plan.src, x.Comm_plan.dst)) (points r))
        x.Comm_plan.rects)
    xfers
  |> List.sort compare

(* Random batches: disjoint unit cells of a small box per batch, random
   (tensor, src, dst) per batch — collisions across batches exercise the
   multi-batch buckets of [coalesce]. *)
let gen_raws rng =
  let dims = 1 + Rng.int rng 3 in
  let extent = 2 + Rng.int rng 4 in
  let nbatches = 1 + Rng.int rng 4 in
  List.init nbatches (fun _ ->
      let cells = ref [] in
      let coord = Array.make dims 0 in
      let rec sweep d =
        if d = dims then begin
          if Rng.int rng 3 > 0 then
            cells :=
              Rect.make ~lo:(Array.copy coord)
                ~hi:(Array.map succ coord)
              :: !cells
        end
        else
          for x = 0 to extent - 1 do
            coord.(d) <- x;
            sweep (d + 1)
          done
      in
      sweep 0;
      let pieces = if !cells = [] then [ rect [ 0 ] [ 1 ] ] else !cells in
      let src = Rng.int rng 4 and dst = Rng.int rng 4 in
      Comm_plan.batch
        ~tensor:(if Rng.int rng 2 = 0 then "A" else "B")
        ~src ~dst
        ~link:(if src = dst then Cost.Intra else Cost.Inter)
        pieces)

let fuzz_multiset seed =
  let rng = Rng.create (seed * 257) in
  let raws = gen_raws rng in
  let planned = Comm_plan.coalesce raws in
  let raw = Comm_plan.uncoalesced raws in
  if elements planned <> elements raw then
    QCheck.Test.fail_reportf "coalesced plan moves a different element multiset";
  (* Internal consistency of every planned transfer. *)
  List.iter
    (fun (x : Comm_plan.xfer) ->
      if x.Comm_plan.fragments <> List.length x.Comm_plan.rects then
        QCheck.Test.fail_reportf "fragments /= |rects| in %s" (show x.Comm_plan.rects);
      let vol = List.fold_left (fun acc r -> acc + Rect.volume r) 0 x.Comm_plan.rects in
      if vol <> x.Comm_plan.volume then
        QCheck.Test.fail_reportf "volume %d /= payload volume %d" x.Comm_plan.volume vol)
    planned;
  let total p = List.fold_left (fun acc (x : Comm_plan.xfer) -> acc + x.Comm_plan.volume) 0 p in
  if total planned <> total raw then
    QCheck.Test.fail_reportf "coalescing changed total volume";
  List.length planned <= List.length raw
  || QCheck.Test.fail_reportf "more transfers after coalescing"

let qcheck_multiset =
  QCheck.Test.make ~name:"coalesced == raw element multiset" ~count:500
    QCheck.small_nat
    (fun seed -> fuzz_multiset (succ seed))

(* {2 Full-mode byte identity} *)

(* The cyclic SUMMA GEMM from the simperf suite, scaled down: the
   worst-case fragment producer. *)
let cyclic_gemm_plan () =
  let machine = Machine.grid [| 2; 2 |] in
  let n = 16 in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| n; n |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "B" [| n; n |] ~dist:"[x,y] -> [x%1,y%1]";
          Api.tensor "C" [| n; n |] ~dist:"[x,y] -> [x%1,y%1]";
        ]
      ()
  in
  Api.compile_script_exn p
    ~schedule:
      "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, 4);\n\
       reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko)"

let metric run name =
  match Metrics.value run.Profile.metrics name with
  | Some v -> v
  | None -> Alcotest.failf "metric %s missing" name

let test_full_identity () =
  let plan = cyclic_gemm_plan () in
  let data = Api.random_inputs plan in
  let run_with coalesce =
    let profile = Profile.create () in
    let trace = ref [] in
    let r = Api.run_exn ~mode:Exec.Full ~coalesce ~trace ~profile plan ~data in
    match r.Exec.output with
    | None -> Alcotest.fail "no Full-mode output"
    | Some out -> (out, !trace, List.hd (Profile.runs profile))
  in
  let out_on, trace_on, run_on = run_with true in
  let out_off, trace_off, run_off = run_with false in
  (* Byte-identical results: same shape, bitwise-equal payload. *)
  Alcotest.(check (array int)) "shape" (Dense.shape out_off) (Dense.shape out_on);
  for i = 0 to Dense.size out_on - 1 do
    if not (Int64.equal
              (Int64.bits_of_float (Dense.get_lin out_on i))
              (Int64.bits_of_float (Dense.get_lin out_off i)))
    then Alcotest.failf "outputs differ at linear index %d" i
  done;
  (* The trace (raw per-piece copies) and byte totals are pre-planning
     observations: identical with the pass on or off. *)
  Alcotest.(check int) "trace length" (List.length trace_off) (List.length trace_on);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "trace event" (Exec.trace_to_string a)
        (Exec.trace_to_string b))
    trace_off trace_on;
  List.iter
    (fun m ->
      Alcotest.(check (float 0.0)) m (metric run_off m) (metric run_on m))
    [ "exec.bytes_intra"; "exec.bytes_inter"; "exec.tasks"; "exec.bytes_by_tensor.B" ];
  (* ...while the planned message structure tightens. *)
  if metric run_on "exec.messages" >= metric run_off "exec.messages" then
    Alcotest.failf "coalescing did not reduce messages (%g vs %g)"
      (metric run_on "exec.messages") (metric run_off "exec.messages");
  if metric run_on "exec.coalesce_ratio" <= 1.0 then
    Alcotest.failf "coalesce ratio %g should exceed 1 on a cyclic workload"
      (metric run_on "exec.coalesce_ratio");
  Alcotest.(check (float 0.0)) "uncoalesced ratio is 1"
    1.0 (metric run_off "exec.coalesce_ratio")

(* {2 Redistribute prices like the equivalent execute step} *)

(* One owner scattering slices to every processor, on a half-duplex GPU
   cost model (so send+receive serialize and the combine rule matters):
   [redistribute] must produce exactly the per-processor communication
   occupancies, bytes and message count of the same exchange arising from
   a single-step execution. *)
let test_redistribute_parity () =
  let machine = Machine.grid ~kind:Machine.Gpu ~mem_per_proc:16e9 [| 4 |] in
  let cost = Cost.gpu_distal in
  let shape = [| 64 |] in
  let prof_r = Profile.create () in
  ignore
    (Exec.redistribute ~profile:prof_r machine cost ~shape
       ~src:(D.parse_exn "[x] -> [0]") ~dst:(D.parse_exn "[x] -> [x]"));
  let p =
    Api.problem_exn ~machine ~stmt:"A(i) = B(i)"
      ~tensors:
        [
          Api.tensor "A" shape ~dist:"[x] -> [x]";
          Api.tensor "B" shape ~dist:"[x] -> [0]";
        ]
      ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:"divide(i, io, ii, 4); distribute(io); communicate(B, io)"
  in
  let prof_e = Profile.create () in
  ignore (Api.run_exn ~mode:Exec.Model ~cost ~profile:prof_e plan ~data:[]);
  let timeline p =
    match (List.hd (Profile.runs p)).Profile.timeline with
    | Some tl -> tl
    | None -> Alcotest.fail "no timeline"
  in
  let rstep =
    match (timeline prof_r).Cp.steps with
    | [ s ] -> s
    | ss -> Alcotest.failf "redistribute emitted %d steps" (List.length ss)
  in
  let estep =
    match List.filter (fun (s : Cp.step) -> s.Cp.messages > 0) (timeline prof_e).Cp.steps with
    | [ s ] -> s
    | ss -> Alcotest.failf "execute emitted %d communicating steps" (List.length ss)
  in
  Alcotest.(check int) "messages" estep.Cp.messages rstep.Cp.messages;
  Alcotest.(check (float 0.0)) "bytes" estep.Cp.bytes rstep.Cp.bytes;
  Alcotest.(check (float 0.0)) "fabric" estep.Cp.fabric rstep.Cp.fabric;
  (* Same per-processor communication occupancy (execute's slots also
     carry compute; redistribute's are comm-only). *)
  let comms (s : Cp.step) =
    List.filter_map
      (fun (sl : Cp.slot) -> if sl.Cp.comm > 0.0 then Some (sl.Cp.proc, sl.Cp.comm) else None)
      s.Cp.slots
  in
  Alcotest.(check (list (pair int (float 0.0)))) "per-proc comm occupancy"
    (comms estep) (comms rstep)

let suites =
  [
    ( "comm plan",
      [
        Alcotest.test_case "adjacent rects merge" `Quick test_merge_units;
        Alcotest.test_case "cyclic stride stays a strided run" `Quick test_merge_strided;
        QCheck_alcotest.to_alcotest qcheck_multiset;
        Alcotest.test_case "Full output byte-identical on/off" `Quick test_full_identity;
        Alcotest.test_case "redistribute == single-step execute" `Quick
          test_redistribute_parity;
      ] );
  ]
