module Expr = Distal_ir.Expr
module P = Distal_ir.Einsum_parser
module Typecheck = Distal_ir.Typecheck
module Provenance = Distal_ir.Provenance
module Kernel_match = Distal_ir.Kernel_match
module Cin = Distal_ir.Cin
module Schedule = Distal_ir.Schedule
module Lower = Distal_ir.Lower
module Taskir = Distal_ir.Taskir

let roundtrip s = Expr.to_string (P.parse_exn s)

let test_parse_gemm () =
  Alcotest.(check string) "gemm" "A(i,j) = B(i,k) * C(k,j)"
    (roundtrip "A(i,j) = B(i,k) * C(k,j)");
  let stmt = P.parse_exn "A(i,j) = B(i,k) * C(k,j)" in
  Alcotest.(check (list string)) "tensors" [ "A"; "B"; "C" ] (Expr.tensors stmt);
  Alcotest.(check (list string)) "vars" [ "i"; "j"; "k" ] (Expr.index_vars stmt);
  Alcotest.(check (list string)) "reduction" [ "k" ] (Expr.reduction_vars stmt)

let test_parse_scalar () =
  let stmt = P.parse_exn "a = B(i,j,k) * C(i,j,k)" in
  Alcotest.(check (list string)) "lhs scalar" [] stmt.lhs.indices;
  Alcotest.(check (list string)) "reduction all" [ "i"; "j"; "k" ]
    (Expr.reduction_vars stmt)

let test_parse_accum_and_sum () =
  let stmt = P.parse_exn "A(i) += B(i) + 2 * C(i)" in
  Alcotest.(check bool) "accum" true stmt.accum;
  Alcotest.(check string) "pretty" "A(i) += B(i) + 2 * C(i)" (Expr.to_string stmt)

let test_parse_mttkrp () =
  Alcotest.(check string) "mttkrp" "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)"
    (roundtrip "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)")

let test_parse_parens_precedence () =
  let s = P.parse_exn "A(i) = (B(i) + C(i)) * D(i)" in
  (match s.rhs with
  | Expr.Mul (Expr.Add _, Expr.Access _) -> ()
  | _ -> Alcotest.fail "expected (B+C)*D structure");
  let s2 = P.parse_exn "A(i) = B(i) + C(i) * D(i)" in
  match s2.rhs with
  | Expr.Add (Expr.Access _, Expr.Mul _) -> ()
  | _ -> Alcotest.fail "expected B+(C*D) structure"

let expect_parse_error s =
  match P.parse s with
  | Ok _ -> Alcotest.failf "expected parse error for %S" s
  | Error _ -> ()

let test_parse_errors () =
  List.iter expect_parse_error
    [ "A(i,j)"; "A(i,) = B(i)"; "= B(i)"; "A(i) = "; "A(i) = B(i) C(i)"; "A(i) = B(i))" ]

let test_eval () =
  let stmt = P.parse_exn "A(i) = B(i) * C(i) + 1" in
  let lookup (a : Expr.access) _ = if a.tensor = "B" then 3.0 else 4.0 in
  Alcotest.(check (float 0.0)) "eval" 13.0
    (Expr.eval stmt ~lookup ~point:(fun _ -> 0))

let shapes = [ ("A", [| 4; 6 |]); ("B", [| 4; 5 |]); ("C", [| 5; 6 |]) ]

let test_typecheck_ok () =
  let stmt = P.parse_exn "A(i,j) = B(i,k) * C(k,j)" in
  let env = Typecheck.check_exn stmt ~shapes in
  Alcotest.(check (list (pair string int))) "extents"
    [ ("i", 4); ("j", 6); ("k", 5) ] env

let expect_tc_error stmt_s shapes =
  match Typecheck.check (P.parse_exn stmt_s) ~shapes with
  | Ok _ -> Alcotest.failf "expected typecheck error for %s" stmt_s
  | Error _ -> ()

let test_typecheck_errors () =
  expect_tc_error "A(i,j) = B(i,k) * C(k,j)" [ ("A", [| 4; 6 |]); ("B", [| 4; 5 |]); ("C", [| 9; 6 |]) ];
  (* conflicting extents for k *)
  expect_tc_error "A(i,j) = B(i,k) * C(k,j)" [ ("A", [| 4 |]); ("B", [| 4; 5 |]); ("C", [| 5; 6 |]) ];
  (* wrong arity *)
  expect_tc_error "A(i,i) = B(i,i)" [ ("A", [| 4; 4 |]); ("B", [| 4; 4 |]) ];
  (* diagonal access *)
  expect_tc_error "A(i) = B(i)" [ ("A", [| 4 |]) ];
  (* missing shape *)
  (* self-reference is legal: the output may be read on the rhs *)
  match
    Typecheck.check
      (P.parse_exn "A(i) = A(i) * B(i)")
      ~shapes:[ ("A", [| 4 |]); ("B", [| 4 |]) ]
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "self-reference must typecheck: %s" e

(* {2 Provenance} *)

let env_of lst v = List.assoc_opt v lst

let test_divide_intervals () =
  let p = Provenance.create [ ("i", 10) ] in
  Result.get_ok (Provenance.divide p "i" ~outer:"io" ~inner:"ii" ~parts:3);
  Alcotest.(check int) "io extent" 3 (Provenance.extent p "io");
  Alcotest.(check int) "ii extent" 4 (Provenance.extent p "ii");
  Alcotest.(check (pair int int)) "unbound" (0, 10) (Provenance.interval p ~env:(env_of []) "i");
  Alcotest.(check (pair int int)) "io=0" (0, 4)
    (Provenance.interval p ~env:(env_of [ ("io", 0) ]) "i");
  Alcotest.(check (pair int int)) "io=2 clipped" (8, 10)
    (Provenance.interval p ~env:(env_of [ ("io", 2) ]) "i");
  Alcotest.(check (pair int int)) "point" (9, 10)
    (Provenance.interval p ~env:(env_of [ ("io", 2); ("ii", 1) ]) "i")

let test_split_intervals () =
  let p = Provenance.create [ ("k", 10) ] in
  Result.get_ok (Provenance.split p "k" ~outer:"ko" ~inner:"ki" ~chunk:4);
  Alcotest.(check int) "ko extent" 3 (Provenance.extent p "ko");
  Alcotest.(check int) "ki extent" 4 (Provenance.extent p "ki");
  Alcotest.(check (pair int int)) "ko=2 clipped" (8, 10)
    (Provenance.interval p ~env:(env_of [ ("ko", 2) ]) "k")

let test_guards () =
  let p = Provenance.create [ ("i", 10) ] in
  Result.get_ok (Provenance.divide p "i" ~outer:"io" ~inner:"ii" ~parts:3);
  Alcotest.(check bool) "interior ok" true
    (Provenance.guards_ok p ~env:(env_of [ ("io", 2); ("ii", 1) ]));
  (* io=2, ii=3 reconstructs i = 11 >= 10: guard-excluded. *)
  Alcotest.(check bool) "boundary excluded" false
    (Provenance.guards_ok p ~env:(env_of [ ("io", 2); ("ii", 3) ]))

let test_rotate_value () =
  let p = Provenance.create [ ("i", 3); ("j", 3); ("k", 3) ] in
  Result.get_ok (Provenance.rotate p ~target:"k" ~by:[ "i"; "j" ] ~result:"ks");
  (* k = (ks + i + j) mod 3 *)
  Alcotest.(check (pair int int)) "rotated point" (1, 2)
    (Provenance.interval p ~env:(env_of [ ("ks", 2); ("i", 1); ("j", 1) ]) "k");
  Alcotest.(check (pair int int)) "unbound by" (0, 3)
    (Provenance.interval p ~env:(env_of [ ("ks", 2) ]) "k");
  Alcotest.(check (option int)) "raw point" (Some 1)
    (Provenance.raw_point p ~env:(env_of [ ("ks", 2); ("i", 1); ("j", 1) ]) "k")

let test_rotate_is_time_permutation () =
  (* For fixed i, the map ks -> k is a bijection on [0,e): every iteration
     of k still happens exactly once (rotate only affects performance). *)
  let p = Provenance.create [ ("i", 5); ("k", 5) ] in
  Result.get_ok (Provenance.rotate p ~target:"k" ~by:[ "i" ] ~result:"ks");
  for i = 0 to 4 do
    let seen = Array.make 5 false in
    for ks = 0 to 4 do
      match Provenance.raw_point p ~env:(env_of [ ("i", i); ("ks", ks) ]) "k" with
      | Some k -> seen.(k) <- true
      | None -> Alcotest.fail "rotate should reconstruct a point"
    done;
    Alcotest.(check bool) "bijection" true (Array.for_all Fun.id seen)
  done

let test_fuse_intervals () =
  let p = Provenance.create [ ("i", 3); ("j", 4) ] in
  Result.get_ok (Provenance.fuse p ~first:"i" ~second:"j" ~fused:"f");
  Alcotest.(check int) "fused extent" 12 (Provenance.extent p "f");
  Alcotest.(check (pair int int)) "i from f" (2, 3)
    (Provenance.interval p ~env:(env_of [ ("f", 11) ]) "i");
  Alcotest.(check (pair int int)) "j from f" (3, 4)
    (Provenance.interval p ~env:(env_of [ ("f", 11) ]) "j");
  Alcotest.(check (pair int int)) "j unbound range" (0, 4)
    (Provenance.interval p ~env:(env_of []) "j")

let test_nested_divide () =
  let p = Provenance.create [ ("i", 16) ] in
  Result.get_ok (Provenance.divide p "i" ~outer:"io" ~inner:"ii" ~parts:4);
  Result.get_ok (Provenance.divide p "ii" ~outer:"iio" ~inner:"iii" ~parts:2);
  Alcotest.(check (pair int int)) "two-level tile" (10, 12)
    (Provenance.interval p ~env:(env_of [ ("io", 2); ("iio", 1) ]) "i")

let test_derives_from () =
  let p = Provenance.create [ ("i", 8); ("k", 8) ] in
  Result.get_ok (Provenance.divide p "k" ~outer:"ko" ~inner:"ki" ~parts:2);
  Result.get_ok (Provenance.rotate p ~target:"ko" ~by:[ "i" ] ~result:"kos");
  Alcotest.(check bool) "kos from k" true (Provenance.derives_from p "kos" ~root:"k");
  Alcotest.(check bool) "kos not from i" false (Provenance.derives_from p "kos" ~root:"i");
  Alcotest.(check bool) "live" true (Provenance.is_live p "kos");
  Alcotest.(check bool) "consumed" false (Provenance.is_live p "ko")

let test_provenance_errors () =
  let p = Provenance.create [ ("i", 8) ] in
  (match Provenance.divide p "x" ~outer:"a" ~inner:"b" ~parts:2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown var should fail");
  Result.get_ok (Provenance.divide p "i" ~outer:"io" ~inner:"ii" ~parts:2);
  (match Provenance.divide p "i" ~outer:"x" ~inner:"y" ~parts:2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double consumption should fail");
  match Provenance.split p "ii" ~outer:"io" ~inner:"z" ~chunk:2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "name collision should fail"

(* {2 Kernel matching} *)

let test_kernel_match () =
  let check_ok s kernel expected =
    match Kernel_match.check (P.parse_exn s) ~kernel with
    | Ok order -> Alcotest.(check (list string)) (s ^ " order") expected order
    | Error e -> Alcotest.failf "expected %s to match %s: %s" s kernel e
  in
  check_ok "A(i,j) = B(i,k) * C(k,j)" "gemm" [ "A"; "B"; "C" ];
  check_ok "X(p,q) = Y(p,r) * Z(r,q)" "gemm" [ "X"; "Y"; "Z" ];
  check_ok "A(i,j) = B(i,j,k) * c(k)" "ttv" [ "A"; "B"; "c" ];
  check_ok "A(i,j,l) = B(i,j,k) * C(k,l)" "ttm" [ "A"; "B"; "C" ];
  check_ok "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)" "mttkrp" [ "A"; "B"; "C"; "D" ];
  check_ok "a = B(i,j,k) * C(i,j,k)" "innerprod" [ "a"; "B"; "C" ]

let test_kernel_match_rejects () =
  let check_err s kernel =
    match Kernel_match.check (P.parse_exn s) ~kernel with
    | Ok _ -> Alcotest.failf "expected %s to NOT match %s" s kernel
    | Error _ -> ()
  in
  check_err "A(i,j) = B(i,k) * C(j,k)" "gemm";
  (* transposed C *)
  check_err "A(i,j) = B(i,k) + C(k,j)" "gemm";
  (* addition *)
  check_err "A(i,j) = B(i,j,k) * c(k)" "gemm"

let test_kernel_infer () =
  Alcotest.(check (option string)) "infer gemm" (Some "gemm")
    (Kernel_match.infer (P.parse_exn "A(i,j) = B(i,k) * C(k,j)"));
  Alcotest.(check (option string)) "infer none" None
    (Kernel_match.infer (P.parse_exn "A(i) = B(i) + C(i)"))

(* {2 Lowering golden structure} *)

let summa_plan () =
  let stmt = P.parse_exn "A(i,j) = B(i,k) * C(k,j)" in
  let shapes = [ ("A", [| 8; 8 |]); ("B", [| 8; 8 |]); ("C", [| 8; 8 |]) ] in
  let cin = Result.get_ok (Cin.of_stmt stmt ~shapes) in
  let cin =
    Result.get_ok
      (Schedule.apply_all cin
         [
           Schedule.Distribute_onto
             {
               targets = [ "i"; "j" ];
               dist = [ "io"; "jo" ];
               local = [ "ii"; "ji" ];
               grid = [| 2; 2 |];
             };
           Schedule.Split ("k", "ko", "ki", 4);
           Schedule.Reorder [ "ko"; "ii"; "ji"; "ki" ];
           Schedule.Communicate ([ "A" ], "jo");
           Schedule.Communicate ([ "B"; "C" ], "ko");
         ])
  in
  Result.get_ok (Lower.lower cin ~shapes)

let test_lower_summa_structure () =
  let prog = summa_plan () in
  let vars, dims = Taskir.launch prog in
  Alcotest.(check (list string)) "launch vars" [ "io"; "jo" ] vars;
  Alcotest.(check (array int)) "launch dims" [| 2; 2 |] dims;
  let s = Taskir.to_string prog in
  Alcotest.(check bool) "mentions launch" true
    (Astring_contains.contains s "index_task_launch (io, jo)");
  Alcotest.(check bool) "A ensured" true (Astring_contains.contains s "ensure A");
  Alcotest.(check bool) "seq ko" true (Astring_contains.contains s "for ko in [0, 2)")

let test_lower_rejects_inner_distribute () =
  let stmt = P.parse_exn "A(i,j) = B(i,k) * C(k,j)" in
  let shapes = [ ("A", [| 8; 8 |]); ("B", [| 8; 8 |]); ("C", [| 8; 8 |]) ] in
  let cin = Result.get_ok (Cin.of_stmt stmt ~shapes) in
  let cin = Result.get_ok (Schedule.apply_all cin [ Schedule.Distribute [ "j" ] ]) in
  match Lower.lower cin ~shapes with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "distributed loop under sequential loop must be rejected"

let test_lower_default_communicate () =
  let stmt = P.parse_exn "A(i,j) = B(i,k) * C(k,j)" in
  let shapes = [ ("A", [| 4; 4 |]); ("B", [| 4; 4 |]); ("C", [| 4; 4 |]) ] in
  let cin = Result.get_ok (Cin.of_stmt stmt ~shapes) in
  let prog = Result.get_ok (Lower.lower cin ~shapes) in
  (* No schedule at all: a single task, ensures at the leaf. *)
  let vars, _ = Taskir.launch prog in
  Alcotest.(check (list string)) "no launch vars" [] vars;
  let s = Taskir.to_string prog in
  Alcotest.(check bool) "all tensors ensured" true
    (Astring_contains.contains s "ensure A"
    && Astring_contains.contains s "ensure B"
    && Astring_contains.contains s "ensure C")

let suites =
  [
    ( "einsum parser",
      [
        Alcotest.test_case "gemm" `Quick test_parse_gemm;
        Alcotest.test_case "scalar" `Quick test_parse_scalar;
        Alcotest.test_case "accum/sum" `Quick test_parse_accum_and_sum;
        Alcotest.test_case "mttkrp" `Quick test_parse_mttkrp;
        Alcotest.test_case "precedence" `Quick test_parse_parens_precedence;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "eval" `Quick test_eval;
      ] );
    ( "typecheck",
      [
        Alcotest.test_case "ok" `Quick test_typecheck_ok;
        Alcotest.test_case "errors" `Quick test_typecheck_errors;
      ] );
    ( "provenance",
      [
        Alcotest.test_case "divide" `Quick test_divide_intervals;
        Alcotest.test_case "split" `Quick test_split_intervals;
        Alcotest.test_case "guards" `Quick test_guards;
        Alcotest.test_case "rotate value" `Quick test_rotate_value;
        Alcotest.test_case "rotate bijection" `Quick test_rotate_is_time_permutation;
        Alcotest.test_case "fuse" `Quick test_fuse_intervals;
        Alcotest.test_case "nested divide" `Quick test_nested_divide;
        Alcotest.test_case "derives_from" `Quick test_derives_from;
        Alcotest.test_case "errors" `Quick test_provenance_errors;
      ] );
    ( "kernel match",
      [
        Alcotest.test_case "matches" `Quick test_kernel_match;
        Alcotest.test_case "rejects" `Quick test_kernel_match_rejects;
        Alcotest.test_case "infer" `Quick test_kernel_infer;
      ] );
    ( "lower",
      [
        Alcotest.test_case "summa structure" `Quick test_lower_summa_structure;
        Alcotest.test_case "rejects inner distribute" `Quick test_lower_rejects_inner_distribute;
        Alcotest.test_case "default communicate" `Quick test_lower_default_communicate;
      ] );
  ]
