(* Finer-grained executor behaviours: completion granularity (Fig. 7),
   over-decomposition accounting, combined reduction/accumulate semantics,
   and instance-cache behaviour. *)

module Api = Distal.Api
module Machine = Api.Machine
module Stats = Api.Stats
module Exec = Api.Exec

let running_example schedule =
  let machine = Machine.grid [| 3 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"a(i) = b(j)"
      ~tensors:
        [
          Api.tensor "a" [| 3 |] ~dist:"[x] -> [x]";
          Api.tensor "b" [| 3 |] ~dist:"[x] -> [x]";
        ]
      ()
  in
  Api.compile_script_exn p ~schedule

(* Fig. 7a: the naive completion communicates at every iteration-space
   point — communicate(b, j) puts one single-element copy per (i, j) pair
   where b(j) is remote. *)
let test_naive_completion_fig7a () =
  let plan = running_example "distribute(i); communicate(a, i); communicate(b, j)" in
  (match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  let s = Api.estimate plan in
  (* 3 processors x 2 remote elements each, one message per element. *)
  Alcotest.(check int) "per-point messages" 6 s.Stats.messages;
  Alcotest.(check int) "j is a pipeline step" 3 s.Stats.steps;
  Alcotest.(check (float 0.0)) "one element per message" (6.0 *. 8.0)
    (s.Stats.bytes_inter +. s.Stats.bytes_intra)

(* Fig. 7b: aggregating under i fetches each processor's remote data in one
   message per source. *)
let test_aggregated_completion_fig7b () =
  let plan = running_example "distribute(i); communicate({a,b}, i)" in
  (match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  let s = Api.estimate plan in
  (* Each processor needs b[0,3): two remote single-owner pieces. Same
     volume as 7a, fewer but larger... here pieces are per-owner, so the
     message count matches but each is fetched once rather than per j. *)
  Alcotest.(check int) "aggregated steps" 1 s.Stats.steps;
  Alcotest.(check (float 0.0)) "same volume" (6.0 *. 8.0)
    (s.Stats.bytes_inter +. s.Stats.bytes_intra)

let test_overdecomposition_doubles_work_per_proc () =
  (* The same statement on the same 2 processors, once with a matching
     launch grid and once over-decomposed 4-ways: same results, same
     flops, roughly double the per-step occupancy. *)
  let machine = Machine.grid [| 2 |] in
  let mk grid schedule =
    let p =
      Api.problem_exn ~virtual_grid:grid ~machine ~stmt:"A(i,j) = B(i,j) + C(i,j)"
        ~tensors:
          [
            Api.tensor "A" [| 8; 8 |] ~dist:"[x,y] -> [x]";
            Api.tensor "B" [| 8; 8 |] ~dist:"[x,y] -> [x]";
            Api.tensor "C" [| 8; 8 |] ~dist:"[x,y] -> [x]";
          ]
        ()
    in
    Api.compile_script_exn p ~schedule
  in
  let exact = mk [| 2 |] "divide(i, io, ii, 2); distribute(io); communicate({A,B,C}, io)" in
  let over = mk [| 4 |] "divide(i, io, ii, 4); distribute(io); communicate({A,B,C}, io)" in
  (match Api.validate over with Ok () -> () | Error e -> Alcotest.fail e);
  let se = Api.estimate exact and so = Api.estimate over in
  Alcotest.(check (float 1e-6)) "same flops" se.Stats.flops so.Stats.flops;
  Alcotest.(check int) "4 tasks over-decomposed" 4 so.Stats.tasks;
  Alcotest.(check bool) "no extra communication" true
    (so.Stats.bytes_inter +. so.Stats.bytes_intra <= 1e-9)

let test_accumulate_into_reduction () =
  (* '+=' with a distributed reduction variable: partials reduce on top of
     the existing output values. *)
  let machine = Machine.grid [| 3 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"a(i) += B(i,k) * c(k)"
      ~tensors:
        [
          Api.tensor "a" [| 4 |] ~dist:"[x] -> [0]";
          Api.tensor "B" [| 4; 9 |] ~dist:"[x,y] -> [y]";
          Api.tensor "c" [| 9 |] ~dist:"[x] -> [x]";
        ]
      ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:"divide(k, ko, ki, 3); reorder(ko, i, ki); distribute(ko);\n\
                 communicate({a,B,c}, ko)"
  in
  match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e

let test_instance_cache_avoids_recommunication () =
  (* communicate(C, ko) where C's footprint does not depend on ko: the
     instance is cached, so only the first iteration pays. *)
  let machine = Machine.grid [| 2 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| 4; 4 |] ~dist:"[x,y] -> [x]";
          Api.tensor "B" [| 4; 4 |] ~dist:"[x,y] -> [x]";
          Api.tensor "C" [| 4; 4 |] ~dist:"[x,y] -> [0]";
        ]
      ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:
        "divide(i, io, ii, 2); distribute(io); split(j, jo, ji, 2);\n\
         reorder(io, jo, ii, ji, k); communicate({A,B}, io); communicate(C, jo)"
  in
  (match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  let s = Api.estimate plan in
  (* C lives on processor 0; processor 1 fetches the whole of C once,
     not once per jo step. *)
  Alcotest.(check (float 0.0)) "C fetched once" (4.0 *. 4.0 *. 8.0)
    (s.Stats.bytes_inter +. s.Stats.bytes_intra)

(* A [=] statement whose output appears on the RHS reads the caller's
   value of the output, not the zero-seeded buffer it is writing. *)
let self_ref_plan machine =
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = A(i,j) + B(i,j)"
      ~tensors:
        [
          Api.tensor "A" [| 4; 4 |] ~dist:"[x,y] -> [x]";
          Api.tensor "B" [| 4; 4 |] ~dist:"[x,y] -> [x]";
        ]
      ()
  in
  Api.compile_script_exn p ~schedule:"distribute(i); communicate({A,B}, i)"

let test_self_reference_reads_input () =
  let plan = self_ref_plan (Machine.grid [| 2 |]) in
  (* Exact values: A = 1 everywhere, B = 2 everywhere, result must be 3. *)
  let ones = Distal_tensor.Dense.init [| 4; 4 |] (fun _ -> 1.0) in
  let twos = Distal_tensor.Dense.init [| 4; 4 |] (fun _ -> 2.0) in
  let r = Api.run_exn plan ~data:[ ("A", ones); ("B", twos) ] in
  (match r.Exec.output with
  | None -> Alcotest.fail "no output"
  | Some out ->
      Alcotest.(check (float 0.0)) "A + B with caller's A" 3.0
        (Distal_tensor.Dense.get out [| 1; 2 |]));
  (* And against the serial reference on random data (random_inputs must
     supply A even though the statement does not accumulate). *)
  match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e

let test_self_reference_remote_owner () =
  (* The output is owned elsewhere: the read instance travels, and the
     simulated result still matches the reference. *)
  let machine = Machine.grid [| 3 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"a(i) = a(i) * b(i) + a(i)"
      ~tensors:
        [
          Api.tensor "a" [| 6 |] ~dist:"[x] -> [0]";
          Api.tensor "b" [| 6 |] ~dist:"[x] -> [x]";
        ]
      ()
  in
  let plan =
    Api.compile_script_exn p ~schedule:"distribute(i); communicate({a,b}, i)"
  in
  (match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  let s = Api.estimate plan in
  Alcotest.(check bool) "self-ref reads are charged" true
    (s.Stats.bytes_inter +. s.Stats.bytes_intra > 0.0)

let test_redistribute_broadcast () =
  (* One source, a replicated destination: the exchange is priced as a
     single broadcast, not three independent point-to-point copies. *)
  let machine = Machine.grid [| 4 |] in
  let cost = Api.Cost_model.cpu_distal in
  let s =
    Api.redistribute ~machine ~cost ~shape:[| 8 |]
      ~src:(Api.Distnot.parse_exn "[x] -> [0]")
      ~dst:(Api.Distnot.parse_exn "[x] -> [*]")
      ()
  in
  let bytes = 8.0 *. 8.0 in
  let bcast =
    Api.Cost_model.broadcast_time cost Api.Cost_model.Inter ~bytes ~receivers:3
  in
  Alcotest.(check int) "three receivers" 3 s.Stats.messages;
  Alcotest.(check (float 1e-12)) "priced as one broadcast" bcast s.Stats.time;
  let p2p = Api.Cost_model.copy_time cost Api.Cost_model.Inter ~bytes in
  Alcotest.(check bool) "cheaper than serialized p2p" true
    (s.Stats.time < (3.0 *. p2p) -. 1e-15)

let test_full_vs_model_event_streams () =
  (* The Full and Model executions of one spec must emit byte-identical
     copy-event streams and identical aggregate stats. *)
  let plan = self_ref_plan (Machine.grid [| 2 |]) in
  let data = Api.random_inputs plan in
  let run mode =
    let log = ref [] in
    let r = Api.run_exn ~mode ~trace:log plan ~data:(if mode = Exec.Full then data else []) in
    (List.map Exec.trace_to_string !log, r.Exec.stats)
  in
  let full_events, full_stats = run Exec.Full in
  let model_events, model_stats = run Exec.Model in
  Alcotest.(check (list string)) "identical event streams" full_events model_events;
  Alcotest.(check string) "identical stats" (Stats.to_string full_stats)
    (Stats.to_string model_stats)

let test_trace_disabled_by_default () =
  let plan = running_example "distribute(i); communicate({a,b}, i)" in
  let r = Api.run_exn plan ~data:(Api.random_inputs plan) in
  Alcotest.(check bool) "runs without a trace sink" true (r.Exec.output <> None)

let suites =
  [
    ( "exec details",
      [
        Alcotest.test_case "fig7a naive completion" `Quick test_naive_completion_fig7a;
        Alcotest.test_case "fig7b aggregation" `Quick test_aggregated_completion_fig7b;
        Alcotest.test_case "over-decomposition" `Quick test_overdecomposition_doubles_work_per_proc;
        Alcotest.test_case "accumulate + reduction" `Quick test_accumulate_into_reduction;
        Alcotest.test_case "instance cache" `Quick test_instance_cache_avoids_recommunication;
        Alcotest.test_case "no trace by default" `Quick test_trace_disabled_by_default;
        Alcotest.test_case "self-reference reads input" `Quick
          test_self_reference_reads_input;
        Alcotest.test_case "self-reference remote owner" `Quick
          test_self_reference_remote_owner;
        Alcotest.test_case "redistribute broadcast" `Quick test_redistribute_broadcast;
        Alcotest.test_case "full vs model event streams" `Quick
          test_full_vs_model_event_streams;
      ] );
  ]
