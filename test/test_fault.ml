(* lib/fault end-to-end: the plan syntax, the injector's run-resolved
   queries, failover mapping, and the executor's recovery contract — an
   empty plan changes nothing (byte-identity), checkpointing alone costs
   no simulated time, a kill is recovered bit-identically with a priced
   recovery episode, message faults cost time but never bytes, and all of
   it holds across domain counts and the communication-planner switch. *)

module Api = Distal.Api
module Machine = Api.Machine
module Dense = Api.Dense
module Exec = Api.Exec
module Stats = Api.Stats
module Fault = Api.Fault
module Injector = Distal_fault.Injector
module Mapper = Distal_runtime.Mapper
module Profile = Distal_obs.Profile
module Metrics = Distal_obs.Metrics
module Cp = Distal_obs.Critical_path
module Chrome_trace = Distal_obs.Chrome_trace

(* {2 Plan syntax} *)

let roundtrip s =
  match Fault.parse s with
  | Error e -> Alcotest.failf "parse %S failed: %s" s e
  | Ok p -> (
      match Fault.parse (Fault.to_string p) with
      | Error e ->
          Alcotest.failf "re-parse of %S failed: %s" (Fault.to_string p) e
      | Ok p' ->
          if p <> p' then
            Alcotest.failf "%S does not round-trip through %S" s
              (Fault.to_string p);
          p)

let test_parse_roundtrip () =
  let p =
    roundtrip
      "checkpoint=2; kill(proc=1, step=3, revive=5); drop(tensor=A, src=0, \
       dst=1, step=2); delay(by=0.5, dst=3)"
  in
  Alcotest.(check bool) "checkpoint" true p.Fault.checkpoint;
  Alcotest.(check int) "interval" 2 p.Fault.interval;
  (match p.Fault.kills with
  | [ k ] ->
      Alcotest.(check int) "proc" 1 k.Fault.proc;
      Alcotest.(check int) "step" 3 k.Fault.at_step;
      Alcotest.(check (option int)) "revive" (Some 5) k.Fault.revive_at
  | ks -> Alcotest.failf "expected 1 kill, got %d" (List.length ks));
  (match p.Fault.messages with
  | [ (dp, Fault.Drop); (yp, Fault.Delay d) ] ->
      Alcotest.(check (option string)) "drop tensor" (Some "A") dp.Fault.tensor;
      Alcotest.(check (option int)) "drop src" (Some 0) dp.Fault.src;
      Alcotest.(check (option int)) "drop dst" (Some 1) dp.Fault.dst;
      Alcotest.(check (option int)) "drop step" (Some 2) dp.Fault.at_step;
      Alcotest.(check (float 0.0)) "delay by" 0.5 d;
      Alcotest.(check (option int)) "delay dst" (Some 3) yp.Fault.dst;
      Alcotest.(check (option string)) "delay tensor" None yp.Fault.tensor
  | _ -> Alcotest.fail "expected drop then delay");
  ignore (roundtrip "kill(proc=0, step=0)");
  ignore (roundtrip "checkpoint");
  ignore (roundtrip "delay(by=1e-3)")

let test_parse_errors () =
  List.iter
    (fun s ->
      match Fault.parse s with
      | Ok _ -> Alcotest.failf "parse %S should have failed" s
      | Error _ -> ())
    [
      ""; "   "; "explode(proc=1)"; "kill(proc=1)"; "kill(step=2)";
      "kill(proc=x, step=2)"; "checkpoint=0"; "checkpoint=two";
      "kill(proc=1, step=2, colour=red)"; "delay(tensor=A)"; "drop(by=2)";
      "kill(proc=1 step=2)";
    ];
  match Fault.plan ~interval:0 () with
  | _ -> Alcotest.fail "Fault.plan ~interval:0 should raise"
  | exception Invalid_argument _ -> ()

let test_validate () =
  let chk what plan ~nprocs ok =
    match Fault.validate plan ~nprocs with
    | Ok () -> if not ok then Alcotest.failf "%s: expected a validate error" what
    | Error e -> if ok then Alcotest.failf "%s: unexpected error: %s" what e
  in
  chk "in range" (Fault.plan ~kills:[ Fault.kill ~proc:3 ~step:0 () ] ())
    ~nprocs:4 true;
  chk "proc out of range"
    (Fault.plan ~kills:[ Fault.kill ~proc:4 ~step:0 () ] ())
    ~nprocs:4 false;
  chk "revive not after kill"
    (Fault.plan ~kills:[ Fault.kill ~revive_at:1 ~proc:0 ~step:1 () ] ())
    ~nprocs:2 false;
  chk "negative delay"
    (Fault.plan ~messages:[ Fault.delay (-1.0) () ] ())
    ~nprocs:2 false;
  chk "message src out of range"
    (Fault.plan ~messages:[ Fault.drop ~src:5 () ] ())
    ~nprocs:4 false

(* {2 Injector} *)

let test_injector () =
  let plan =
    Fault.plan ~checkpoint:true ~interval:2
      ~kills:[ Fault.kill ~revive_at:4 ~proc:1 ~step:2 () ]
      ()
  in
  (match Injector.create plan ~nprocs:4 ~nsteps:6 with
  | Error e -> Alcotest.fail e
  | Ok i ->
      Alcotest.(check bool) "checkpointing" true (Injector.checkpointing i);
      Alcotest.(check int) "interval" 2 (Injector.interval i);
      Alcotest.(check bool) "has kills" true (Injector.has_kills i);
      Alcotest.(check (list (pair int int))) "kills" [ (1, 2) ] (Injector.kills i);
      Alcotest.(check bool) "alive before" false (Injector.dead i ~step:1 ~proc:1);
      Alcotest.(check bool) "dead at strike" true (Injector.dead i ~step:2 ~proc:1);
      Alcotest.(check bool) "still dead" true (Injector.dead i ~step:3 ~proc:1);
      Alcotest.(check bool) "revived" false (Injector.dead i ~step:4 ~proc:1);
      Alcotest.(check bool) "others alive" false (Injector.dead i ~step:2 ~proc:0);
      Alcotest.(check bool) "ever dead" true (Injector.ever_dead i ~proc:1);
      Alcotest.(check bool) "never dead" false (Injector.ever_dead i ~proc:0);
      Alcotest.(check int) "boundary 5 -> 4" 4 (Injector.last_boundary i ~step:5);
      Alcotest.(check int) "boundary 3 -> 2" 2 (Injector.last_boundary i ~step:3);
      Alcotest.(check int) "boundary 1 -> 0" 0 (Injector.last_boundary i ~step:1));
  (* Without checkpointing, recovery replays from step 0. *)
  (match
     Injector.create
       (Fault.plan ~kills:[ Fault.kill ~proc:0 ~step:1 () ] ())
       ~nprocs:2 ~nsteps:4
   with
  | Error e -> Alcotest.fail e
  | Ok i ->
      Alcotest.(check int) "no checkpoint -> 0" 0 (Injector.last_boundary i ~step:3));
  (* A kill aimed past the run never strikes. *)
  (match
     Injector.create
       (Fault.plan ~kills:[ Fault.kill ~proc:0 ~step:9 () ] ())
       ~nprocs:2 ~nsteps:4
   with
  | Error e -> Alcotest.fail e
  | Ok i ->
      Alcotest.(check bool) "never strikes" false (Injector.has_kills i);
      Alcotest.(check bool) "never dead" false (Injector.dead i ~step:3 ~proc:0));
  (* Killing every processor leaves nowhere to fail over to. *)
  (match
     Injector.create
       (Fault.plan
          ~kills:[ Fault.kill ~proc:0 ~step:0 (); Fault.kill ~proc:1 ~step:0 () ]
          ())
       ~nprocs:2 ~nsteps:2
   with
  | Ok _ -> Alcotest.fail "all-dead plan should be rejected"
  | Error _ -> ());
  match
    Injector.create
      (Fault.plan ~kills:[ Fault.kill ~proc:7 ~step:0 () ] ())
      ~nprocs:4 ~nsteps:2
  with
  | Ok _ -> Alcotest.fail "out-of-range kill should be rejected"
  | Error _ -> ()

let test_msg_action () =
  let plan =
    Fault.plan
      ~messages:[ Fault.drop ~tensor:"A" ~step:1 (); Fault.delay 0.5 () ]
      ()
  in
  (match Injector.create plan ~nprocs:2 ~nsteps:4 with
  | Error e -> Alcotest.fail e
  | Ok i ->
      (match Injector.msg_action i ~step:1 ~tensor:"A" ~src:0 ~dst:1 with
      | Some Fault.Drop -> ()
      | _ -> Alcotest.fail "first matching fault should win");
      (match Injector.msg_action i ~step:0 ~tensor:"A" ~src:0 ~dst:1 with
      | Some (Fault.Delay d) -> Alcotest.(check (float 0.0)) "delay" 0.5 d
      | _ -> Alcotest.fail "catch-all delay should match"));
  match Injector.create (Fault.plan ~messages:[ Fault.drop ~src:1 () ] ()) ~nprocs:2 ~nsteps:2 with
  | Error e -> Alcotest.fail e
  | Ok i -> (
      match Injector.msg_action i ~step:0 ~tensor:"B" ~src:0 ~dst:1 with
      | None -> ()
      | Some _ -> Alcotest.fail "src filter should not match src=0")

let test_fallback () =
  let dead l p = List.mem p l in
  Alcotest.(check int) "alive stays" 2 (Mapper.fallback ~nprocs:4 ~dead:(dead [ 1 ]) 2);
  Alcotest.(check int) "next live" 2 (Mapper.fallback ~nprocs:4 ~dead:(dead [ 1 ]) 1);
  Alcotest.(check int) "skips a dead run" 3
    (Mapper.fallback ~nprocs:4 ~dead:(dead [ 1; 2 ]) 1);
  Alcotest.(check int) "wraps" 0 (Mapper.fallback ~nprocs:4 ~dead:(dead [ 3 ]) 3);
  match Mapper.fallback ~nprocs:2 ~dead:(fun _ -> true) 0 with
  | _ -> Alcotest.fail "expected Invalid_argument when every processor is dead"
  | exception Invalid_argument _ -> ()

let test_random_kill_deterministic () =
  let a = Fault.random_kill ~seed:11 ~nprocs:6 ~nsteps:5 in
  let b = Fault.random_kill ~seed:11 ~nprocs:6 ~nsteps:5 in
  Alcotest.(check bool) "equal seeds, equal plans" true (a = b);
  Alcotest.(check bool) "checkpointing on" true a.Fault.checkpoint;
  match a.Fault.kills with
  | [ k ] ->
      Alcotest.(check bool) "proc in range" true (k.Fault.proc >= 0 && k.Fault.proc < 6);
      Alcotest.(check bool) "step in range" true
        (k.Fault.at_step >= 0 && k.Fault.at_step < 5)
  | _ -> Alcotest.fail "expected exactly one kill"

(* {2 Executor contract} *)

(* Everything observable about a Full-mode run, as in Test_parallel. *)
let observe ?faults ?(coalesce = true) ?(domains = 1) plan ~data =
  let profile = Profile.create () in
  let trace = ref [] in
  let r =
    Api.run_exn ~mode:Exec.Full ~coalesce ~domains ~trace ~profile ?faults plan
      ~data
  in
  let bits =
    match r.Exec.output with
    | None -> []
    | Some out ->
        List.init (Dense.size out) (fun i ->
            Int64.bits_of_float (Dense.get_lin out i))
  in
  ( bits,
    List.map Exec.trace_to_string !trace,
    Stats.to_string r.Exec.stats,
    Chrome_trace.to_string (Profile.events profile) )

let metric ?faults plan name =
  let profile = Profile.create () in
  (match Api.run ~mode:Exec.Model ~profile ?faults plan ~data:[] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "model run failed: %s" e);
  match Profile.runs profile with
  | [ run ] -> Option.value (Metrics.value run.Profile.metrics name) ~default:0.0
  | runs -> Alcotest.failf "expected one run, got %d" (List.length runs)

(* An absent plan, the empty plan, and checkpointing with no faults must
   all be byte-identical in results, traces, stats and event streams —
   the fault machinery may not perturb fault-free execution. *)
let check_fault_free_identity plan ~what =
  let data = Api.random_inputs plan in
  let base = observe plan ~data in
  List.iter
    (fun (label, faults) ->
      if observe ~faults plan ~data <> base then
        Alcotest.failf "%s: %s changed a fault-free run" what label)
    [
      ("empty plan", Fault.empty);
      ("checkpointing only", Fault.plan ~checkpoint:true ());
      ("checkpointing every 2 steps", Fault.plan ~checkpoint:true ~interval:2 ());
      ("kill past the run", Fault.plan ~kills:[ Fault.kill ~proc:0 ~step:999 () ] ());
    ]

let test_fault_free_identity () =
  check_fault_free_identity (Test_parallel.grid_plan ()) ~what:"grid gemm";
  check_fault_free_identity (Test_parallel.reduction_plan ())
    ~what:"distributed reduction"

let kill_plan ?(checkpoint = true) () =
  Fault.plan ~checkpoint ~kills:[ Fault.kill ~proc:1 ~step:2 () ] ()

let test_kill_recovers_bit_identically () =
  List.iter
    (fun plan ->
      let data = Api.random_inputs plan in
      let clean_bits, _, _, _ = observe plan ~data in
      let faults = kill_plan () in
      let bits, _, _, _ = observe ~faults plan ~data in
      Alcotest.(check bool) "replayed output bit-identical" true (bits = clean_bits);
      (* And independently of the planner switch and the domain count. *)
      List.iter
        (fun (coalesce, domains) ->
          let b, _, _, _ = observe ~faults ~coalesce ~domains plan ~data in
          Alcotest.(check bool)
            (Printf.sprintf "coalesce=%b domains=%d" coalesce domains)
            true (b = clean_bits))
        [ (false, 1); (true, 3); (false, 3) ])
    [ Test_parallel.grid_plan (); Test_parallel.reduction_plan () ]

let test_kill_prices_recovery () =
  let plan = Test_parallel.grid_plan () in
  let t_clean = metric plan "exec.time" in
  let faults = kill_plan () in
  Alcotest.(check bool) "faulted run is slower" true
    (metric ~faults plan "exec.time" > t_clean);
  Alcotest.(check (float 0.0)) "one fault" 1.0 (metric ~faults plan "exec.faults_injected");
  Alcotest.(check bool) "recovery time priced" true
    (metric ~faults plan "exec.recovery_time" > 0.0);
  Alcotest.(check bool) "steps replayed" true
    (metric ~faults plan "exec.replayed_steps" >= 1.0);
  Alcotest.(check bool) "checkpoints written" true
    (metric ~faults plan "exec.checkpoint_bytes" > 0.0);
  (* Full and Model mode agree on the faulted stats, exactly. *)
  let data = Api.random_inputs plan in
  let full = Api.run_exn ~mode:Exec.Full ~faults plan ~data in
  let model = Api.run_exn ~mode:Exec.Model ~faults plan ~data:[] in
  Alcotest.(check string) "faulted Full/Model parity"
    (Stats.to_string full.Exec.stats)
    (Stats.to_string model.Exec.stats)

let test_checkpoint_shortens_replay () =
  let plan = Test_parallel.grid_plan () in
  let with_ck = metric ~faults:(kill_plan ()) plan "exec.replayed_steps" in
  let without = metric ~faults:(kill_plan ~checkpoint:false ()) plan "exec.replayed_steps" in
  (* The kill strikes step 2: with per-step boundaries only that step
     replays; without checkpointing the whole prefix does. *)
  Alcotest.(check (float 0.0)) "with checkpointing" 1.0 with_ck;
  Alcotest.(check (float 0.0)) "full restart" 3.0 without;
  Alcotest.(check bool) "restart costs more" true
    (metric ~faults:(kill_plan ~checkpoint:false ()) plan "exec.recovery_time"
    > metric ~faults:(kill_plan ()) plan "exec.recovery_time")

let test_message_faults_cost_time_not_bytes () =
  let plan = Test_parallel.grid_plan () in
  let t_clean = metric plan "exec.time" in
  let drop = Fault.plan ~messages:[ Fault.drop () ] () in
  let delay = Fault.plan ~messages:[ Fault.delay 1e-3 () ] () in
  Alcotest.(check bool) "drop costs a retransmit" true
    (metric ~faults:drop plan "exec.time" > t_clean);
  Alcotest.(check bool) "delay holds the receiver back" true
    (metric ~faults:delay plan "exec.time" > t_clean);
  (* Payload accounting is untouched: the same bytes and messages move. *)
  List.iter
    (fun name ->
      Alcotest.(check (float 0.0)) name (metric plan name) (metric ~faults:drop plan name))
    [ "exec.bytes_intra"; "exec.bytes_inter"; "exec.messages" ];
  (* Plan-driven faults keep Full/Model parity. *)
  let data = Api.random_inputs plan in
  let full = Api.run_exn ~mode:Exec.Full ~faults:drop plan ~data in
  let model = Api.run_exn ~mode:Exec.Model ~faults:drop plan ~data:[] in
  Alcotest.(check string) "dropped Full/Model parity"
    (Stats.to_string full.Exec.stats)
    (Stats.to_string model.Exec.stats)

let test_faulted_timeline_consistent () =
  let plan = Test_parallel.grid_plan () in
  let profile = Profile.create () in
  let faults = kill_plan () in
  let r = Api.run_exn ~mode:Exec.Model ~profile ~faults plan ~data:[] in
  match Profile.runs profile with
  | [ run ] -> (
      match run.Profile.timeline with
      | None -> Alcotest.fail "no timeline recorded"
      | Some tl ->
          Alcotest.(check (float 1e-12)) "timeline total = stats time"
            r.Exec.stats.Stats.time tl.Cp.total;
          let cp = Cp.analyse tl in
          Alcotest.(check (float 1e-12)) "critical path reproduces the total"
            tl.Cp.total cp.Cp.end_time;
          Alcotest.(check bool) "recovery on the path" true (cp.Cp.recovery > 0.0))
  | runs -> Alcotest.failf "expected one run, got %d" (List.length runs)

let test_resilience_report () =
  let plan = Test_parallel.grid_plan () in
  let clean, faulted, report = Api.resilience_exn ~faults:(kill_plan ()) plan in
  Alcotest.(check bool) "faulted slower" true (faulted.Stats.time > clean.Stats.time);
  let has sub = Astring_contains.contains report sub in
  Alcotest.(check bool) "report header" true (has "resilience report");
  Alcotest.(check bool) "report names runs" true (has "fault-free" && has "faulted");
  Alcotest.(check bool) "report counts faults" true (has "faults injected: 1")

(* {2 Property: any single kill is recovered bit-identically}

   Over the fuzzer's statement x distribution x schedule space: a
   seed-driven single-processor kill (checkpointing on) replays to the
   same output bits as the fault-free run, for coalescing on/off and
   domain pools of 1 and 3. *)

let bits_of (r : Exec.result) =
  match r.Exec.output with
  | None -> []
  | Some out ->
      List.init (Dense.size out) (fun i -> Int64.bits_of_float (Dense.get_lin out i))

let fault_identity_once seed =
  let stmt, plan = Test_parallel.gen_plan seed in
  let nprocs = Machine.num_procs plan.Api.problem.Api.machine in
  if nprocs < 2 then true (* a lone processor has no failover target *)
  else begin
    let data = Api.random_inputs ~seed plan in
    let clean = bits_of (Api.run_exn ~mode:Exec.Full plan ~data) in
    let faults = Fault.random_kill ~seed ~nprocs ~nsteps:4 in
    List.for_all
      (fun (coalesce, domains) ->
        match Api.run ~mode:Exec.Full ~coalesce ~domains ~faults plan ~data with
        | Error e -> QCheck.Test.fail_reportf "faulted run failed for %s: %s" stmt e
        | Ok r ->
            if bits_of r = clean then true
            else
              QCheck.Test.fail_reportf
                "kill+replay diverges for %s under [%s] (coalesce=%b domains=%d)"
                stmt (Fault.to_string faults) coalesce domains)
      [ (true, 1); (true, 3); (false, 1); (false, 3) ]
  end

let qcheck_kill_identity =
  QCheck.Test.make ~name:"single kill + replay is byte-identical" ~count:40
    QCheck.small_nat
    (fun seed ->
      Test_fuzz.seeded (succ seed) (fun () -> fault_identity_once (succ seed)))

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "plan syntax round-trips" `Quick test_parse_roundtrip;
        Alcotest.test_case "plan syntax errors" `Quick test_parse_errors;
        Alcotest.test_case "plan validation" `Quick test_validate;
        Alcotest.test_case "injector queries" `Quick test_injector;
        Alcotest.test_case "message fault matching" `Quick test_msg_action;
        Alcotest.test_case "failover mapping" `Quick test_fallback;
        Alcotest.test_case "random_kill deterministic" `Quick
          test_random_kill_deterministic;
        Alcotest.test_case "fault-free byte-identity" `Quick test_fault_free_identity;
        Alcotest.test_case "kill recovers bit-identically" `Quick
          test_kill_recovers_bit_identically;
        Alcotest.test_case "kill prices a recovery episode" `Quick
          test_kill_prices_recovery;
        Alcotest.test_case "checkpointing shortens replay" `Quick
          test_checkpoint_shortens_replay;
        Alcotest.test_case "message faults cost time, not bytes" `Quick
          test_message_faults_cost_time_not_bytes;
        Alcotest.test_case "faulted timeline stays consistent" `Quick
          test_faulted_timeline_consistent;
        Alcotest.test_case "resilience report" `Quick test_resilience_report;
        Test_fuzz.to_alcotest qcheck_kill_identity;
      ] );
  ]
