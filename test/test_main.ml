let () =
  Alcotest.run "distal"
    (Test_support.suites @ Test_tensor.suites @ Test_machine.suites
   @ Test_ir.suites @ Test_distnot.suites @ Test_schedule.suites
   @ Test_runtime.suites @ Test_semantics.suites @ Test_algorithms.suites @ Test_fuzz.suites @ Test_auto.suites @ Test_pipeline.suites @ Test_codegen.suites @ Test_trace.suites @ Test_bounds.suites @ Test_harness.suites @ Test_gantt.suites @ Test_errors.suites @ Test_volumes.suites @ Test_exec_details.suites @ Test_lexer.suites @ Test_misc.suites @ Test_cyclic.suites @ Test_obs.suites @ Test_rect_index.suites @ Test_comm_plan.suites @ Test_parallel.suites
   @ Test_fault.suites @ Test_serve.suites @ Test_kernels.suites
   @ Test_plan_reuse.suites)
