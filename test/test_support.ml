module Ints = Distal_support.Ints
module Rng = Distal_support.Rng

let check_int = Alcotest.(check int)

let test_prod () =
  check_int "prod empty" 1 (Ints.prod [||]);
  check_int "prod" 24 (Ints.prod [| 2; 3; 4 |])

let test_ceil_div () =
  check_int "exact" 4 (Ints.ceil_div 12 3);
  check_int "round up" 5 (Ints.ceil_div 13 3);
  check_int "one" 1 (Ints.ceil_div 1 100);
  check_int "zero" 0 (Ints.ceil_div 0 3)

let test_strides () =
  Alcotest.(check (array int)) "row major" [| 12; 4; 1 |]
    (Ints.row_major_strides [| 2; 3; 4 |])

let test_linearize_roundtrip () =
  let dims = [| 3; 4; 5 |] in
  for i = 0 to Ints.prod dims - 1 do
    check_int "roundtrip" i (Ints.linearize ~dims (Ints.delinearize ~dims i))
  done

let test_iter_box_order () =
  let seen = ref [] in
  Ints.iter_box [| 2; 2 |] (fun c -> seen := Array.to_list c :: !seen);
  Alcotest.(check (list (list int)))
    "row-major order"
    [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
    (List.rev !seen)

let test_take_drop () =
  Alcotest.(check (array int)) "take" [| 1; 2 |] (Ints.take 2 [| 1; 2; 3 |]);
  Alcotest.(check (array int)) "drop" [| 3 |] (Ints.drop 2 [| 1; 2; 3 |])

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 1.0 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 1.0)
  done

let test_rng_int_range () =
  let rng = Rng.create 5 in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    let x = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7);
    seen.(x) <- true
  done;
  Alcotest.(check bool) "all values reached" true (Array.for_all Fun.id seen)

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  Alcotest.(check bool) "streams differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_table () =
  let t = Distal_support.Table.create ~header:[ "x"; "yy" ] in
  Distal_support.Table.add_row t [ "1"; "2" ];
  let tmp = Filename.temp_file "table" ".txt" in
  let oc = open_out tmp in
  Distal_support.Table.print ~oc t;
  close_out oc;
  let ic = open_in tmp in
  let line1 = input_line ic in
  close_in ic;
  Sys.remove tmp;
  Alcotest.(check string) "header" "  x  yy" line1

let qcheck_linearize =
  QCheck.Test.make ~name:"linearize/delinearize roundtrip" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 4) (int_range 1 6)) small_nat)
    (fun (dims_l, seed) ->
      let dims = Array.of_list dims_l in
      let n = Ints.prod dims in
      let i = seed mod n in
      Ints.linearize ~dims (Ints.delinearize ~dims i) = i)

(* Env: every DISTAL_* knob goes through one parser that rejects
   malformed values loudly instead of silently falling back. *)
let test_env_parsing () =
  let module Env = Distal_support.Env in
  let v = "DISTAL_TEST_ENV_VAR" in
  let restore = Option.value (Sys.getenv_opt v) ~default:"" in
  Fun.protect
    ~finally:(fun () -> Unix.putenv v restore)
    (fun () ->
      Unix.putenv v "  42 ";
      Alcotest.(check (option int)) "int trims" (Some 42) (Env.int_var v);
      Alcotest.(check (option int)) "positive" (Some 42) (Env.positive_int_var v);
      Unix.putenv v "";
      Alcotest.(check (option int)) "empty means unset" None (Env.int_var v);
      Unix.putenv v "   ";
      Alcotest.(check (option string)) "blank means unset" None (Env.string_var v);
      Unix.putenv v "-3";
      Alcotest.(check (option int)) "negative int" (Some (-3)) (Env.int_var v);
      (match Env.positive_int_var v with
      | _ -> Alcotest.fail "positive_int_var accepted -3"
      | exception Invalid_argument _ -> ());
      Unix.putenv v "1.5e-3";
      Alcotest.(check (option (float 0.0))) "float" (Some 1.5e-3) (Env.float_var v);
      Unix.putenv v "nan";
      (match Env.float_var v with
      | _ -> Alcotest.fail "float_var accepted nan"
      | exception Invalid_argument _ -> ());
      Unix.putenv v "zero";
      (match Env.int_var v with
      | _ -> Alcotest.fail "int_var accepted a word"
      | exception Invalid_argument e ->
          if not (Astring_contains.contains e "DISTAL_TEST_ENV_VAR") then
            Alcotest.failf "error does not name the variable: %s" e);
      List.iter
        (fun (s, b) ->
          Unix.putenv v s;
          Alcotest.(check bool) s b (Env.bool_var ~default:(not b) v))
        [
          ("1", true); ("0", false); ("TRUE", true); ("no", false);
          ("On", true); ("off", false); ("Yes", true); ("false", false);
        ];
      Unix.putenv v "maybe";
      match Env.bool_var ~default:true v with
      | _ -> Alcotest.fail "bool_var accepted 'maybe'"
      | exception Invalid_argument _ -> ())

let suites =
  [
    ( "support",
      [
        Alcotest.test_case "prod" `Quick test_prod;
        Alcotest.test_case "ceil_div" `Quick test_ceil_div;
        Alcotest.test_case "strides" `Quick test_strides;
        Alcotest.test_case "linearize roundtrip" `Quick test_linearize_roundtrip;
        Alcotest.test_case "iter_box order" `Quick test_iter_box_order;
        Alcotest.test_case "take/drop" `Quick test_take_drop;
        Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "rng float range" `Quick test_rng_float_range;
        Alcotest.test_case "rng int range" `Quick test_rng_int_range;
        Alcotest.test_case "rng split" `Quick test_rng_split_independent;
        Alcotest.test_case "table" `Quick test_table;
        Alcotest.test_case "DISTAL_* env parsing" `Quick test_env_parsing;
        QCheck_alcotest.to_alcotest qcheck_linearize;
      ] );
  ]
