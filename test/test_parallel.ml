(* The parallel executor's determinism contract (see Exec.execute): for
   any domain count, and with the staged leaf evaluator on or off, a run
   produces byte-identical results, copy traces, stats and Full-mode
   event streams. The contract is what makes host parallelism invisible
   to the simulation — checked here both on fixed worst-case plans
   (distributed reductions, cyclic distributions) and property-style on
   the fuzzer's statement x distribution x schedule space. *)

module Api = Distal.Api
module Machine = Api.Machine
module Dense = Api.Dense
module Exec = Api.Exec
module Stats = Api.Stats
module Rng = Distal_support.Rng
module Pool = Distal_support.Pool
module Profile = Distal_obs.Profile
module Chrome_trace = Distal_obs.Chrome_trace

(* {2 Pool unit tests} *)

let test_pool_lanes () =
  let pool = Pool.create 4 in
  let hits = Array.make 4 0 in
  Pool.run pool ~lanes:4 (fun lane -> hits.(lane) <- hits.(lane) + 1);
  Alcotest.(check (array int)) "every lane ran once" [| 1; 1; 1; 1 |] hits;
  (* Lane counts beyond the pool size are clamped to the pool size. *)
  let hits2 = Array.make 4 0 in
  Pool.run pool ~lanes:10 (fun lane -> hits2.(lane) <- hits2.(lane) + 1);
  Alcotest.(check (array int)) "clamped to pool size" [| 1; 1; 1; 1 |] hits2;
  Pool.shutdown pool

let test_pool_exception () =
  let pool = Pool.create 3 in
  (match Pool.run pool ~lanes:3 (fun lane -> if lane = 1 then failwith "boom") with
  | () -> Alcotest.fail "expected the lane's exception to propagate"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  (* The pool survives a failed job, and survives an explicit shutdown
     (workers respawn on the next multi-lane run). *)
  let hits = Array.make 3 0 in
  Pool.run pool ~lanes:3 (fun lane -> hits.(lane) <- hits.(lane) + 1);
  Alcotest.(check (array int)) "reusable after failure" [| 1; 1; 1 |] hits;
  Pool.shutdown pool;
  Array.fill hits 0 3 0;
  Pool.run pool ~lanes:3 (fun lane -> hits.(lane) <- hits.(lane) + 1);
  Alcotest.(check (array int)) "reusable after shutdown" [| 1; 1; 1 |] hits;
  Pool.shutdown pool

let test_default_size () =
  let old = Option.value (Sys.getenv_opt "DISTAL_NUM_DOMAINS") ~default:"" in
  let restore () = Unix.putenv "DISTAL_NUM_DOMAINS" old in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "DISTAL_NUM_DOMAINS" "5";
      Alcotest.(check int) "env override" 5 (Pool.default_size ());
      Unix.putenv "DISTAL_NUM_DOMAINS" "500";
      Alcotest.(check int) "clamped to 64" 64 (Pool.default_size ());
      Unix.putenv "DISTAL_NUM_DOMAINS" "";
      if Pool.default_size () < 1 then Alcotest.fail "empty means unset";
      Unix.putenv "DISTAL_NUM_DOMAINS" "zero";
      match Pool.default_size () with
      | _ -> Alcotest.fail "expected Invalid_argument on a non-integer"
      | exception Invalid_argument _ -> ())

(* {2 Byte-identity across domain counts and leaf evaluators} *)

(* Everything observable about a Full-mode run: output element bits, the
   copy trace, the stats rendering, and the whole profile event stream
   (serialized as Chrome trace JSON, which covers name/cat/track/ts/attrs
   of every event in emission order). *)
let observe plan ~data ~domains ~staged =
  let profile = Profile.create () in
  let trace = ref [] in
  let r = Api.run_exn ~mode:Exec.Full ~domains ~staged ~trace ~profile plan ~data in
  let bits =
    match r.Exec.output with
    | None -> []
    | Some out ->
        List.init (Dense.size out) (fun i -> Int64.bits_of_float (Dense.get_lin out i))
  in
  ( bits,
    List.map Exec.trace_to_string !trace,
    Stats.to_string r.Exec.stats,
    Chrome_trace.to_string (Profile.events profile) )

let configs = [ (1, true); (2, true); (8, true); (1, false); (2, false) ]

let check_identical ~what plan ~data =
  let base = observe plan ~data ~domains:1 ~staged:true in
  List.iter
    (fun (domains, staged) ->
      let bits0, trace0, stats0, events0 = base in
      let bits, tr, stats, events = observe plan ~data ~domains ~staged in
      let ctx fmt =
        Printf.ksprintf
          (fun s ->
            Alcotest.failf "%s differs (domains=%d staged=%b): %s" what domains staged s)
          fmt
      in
      if bits <> bits0 then ctx "output bits";
      if tr <> trace0 then ctx "copy trace";
      if not (String.equal stats stats0) then ctx "stats\n%s\nvs\n%s" stats0 stats;
      if not (String.equal events events0) then ctx "event stream")
    configs

(* A distributed reduction with cyclic inputs: tasks contribute partial
   sums that the merge path must fold in launch-point order, and the
   staged evaluator sees strided leaf footprints. *)
let reduction_plan () =
  let machine = Machine.grid [| 4 |] in
  let n = 16 in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| n; n |] ~dist:"[x,y] -> [0]";
          Api.tensor "B" [| n; n |] ~dist:"[x,y] -> [x%2]";
          Api.tensor "C" [| n; n |] ~dist:"[x,y] -> [y%2]";
        ]
      ()
  in
  Api.compile_script_exn p
    ~schedule:
      "divide(k, ko, ki, 4); reorder(ko, i, j, ki); distribute(ko);\n\
       communicate({A,B,C}, ko)"

let test_reduction_identity () =
  let plan = reduction_plan () in
  let data = Api.random_inputs plan in
  check_identical ~what:"distributed reduction" plan ~data

(* An owner-computes GEMM over a 2-D grid: many independent points, no
   reduction epilogue — the pure parallel-probe path. *)
let grid_plan () =
  let machine = Machine.grid [| 2; 2 |] in
  let n = 12 in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| n; n |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "B" [| n; n |] ~dist:"[x,y] -> [x%1,y%1]";
          Api.tensor "C" [| n; n |] ~dist:"[x,y] -> [x%1,y%1]";
        ]
      ()
  in
  Api.compile_script_exn p
    ~schedule:
      "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, 3);\n\
       reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko)"

let test_grid_identity () =
  let plan = grid_plan () in
  let data = Api.random_inputs plan in
  check_identical ~what:"grid gemm" plan ~data

(* Staged-vs-oracle on its own: accumulating self-referencing statement,
   where a staging bug would double-count the output base. *)
let test_staged_accumulate () =
  let machine = Machine.grid [| 2 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i) += B(i,k) + A(i)"
      ~tensors:
        [
          Api.tensor "A" [| 10 |] ~dist:"[x] -> [x]";
          Api.tensor "B" [| 10; 6 |] ~dist:"[x,y] -> [x]";
        ]
      ()
  in
  let plan =
    Api.compile_script_exn p
      ~schedule:"divide(i, io, ii, 2); distribute(io); communicate({A,B}, io)"
  in
  (match Api.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  check_identical ~what:"self-referencing accumulation" plan
    ~data:(Api.random_inputs plan)

(* {2 Property: identity over the fuzzer's plan distribution}

   Reuses the fuzz generators (statements over up to 4 variables, block /
   block-cyclic / fixed / broadcast distributions, random distribute /
   split / rotate schedules), so block-cyclic fragment patterns and
   distributed reductions all flow through the parallel probe. *)

let gen_plan seed =
  let rng = Rng.create (seed * 31 + 7) in
  let stmt, shapes, lhs_vars, rhs_vars = Test_fuzz.gen_stmt rng in
  let mdims = Array.init (1 + Rng.int rng 2) (fun _ -> 1 + Rng.int rng 3) in
  let machine = Machine.grid mdims in
  let tensors =
    List.map
      (fun (name, shape) ->
        Api.tensor_d name shape (Test_fuzz.gen_dist rng ~rank:(Array.length shape) ~mdims))
      shapes
  in
  match Api.problem ~machine ~stmt ~tensors () with
  | Error e -> QCheck.Test.fail_reportf "problem construction failed: %s" e
  | Ok problem -> (
      let schedule = Test_fuzz.gen_schedule rng ~lhs_vars ~rhs_vars in
      match Api.compile problem ~schedule with
      | Error e -> QCheck.Test.fail_reportf "compile failed for %s: %s" stmt e
      | Ok plan -> (stmt, plan))

let identity_once seed =
  let stmt, plan = gen_plan seed in
  let data = Api.random_inputs ~seed plan in
  let base = observe plan ~data ~domains:1 ~staged:true in
  List.for_all
    (fun (domains, staged) ->
      if observe plan ~data ~domains ~staged = base then true
      else
        QCheck.Test.fail_reportf
          "parallel run diverges for %s (domains=%d staged=%b)" stmt domains staged)
    configs

let qcheck_identity =
  QCheck.Test.make ~name:"domains x staged leave runs byte-identical" ~count:60
    QCheck.small_nat
    (fun seed -> Test_fuzz.seeded (succ seed) (fun () -> identity_once (succ seed)))

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "pool runs every lane" `Quick test_pool_lanes;
        Alcotest.test_case "pool re-raises lane exceptions" `Quick test_pool_exception;
        Alcotest.test_case "DISTAL_NUM_DOMAINS parsing" `Quick test_default_size;
        Alcotest.test_case "reduction identity" `Quick test_reduction_identity;
        Alcotest.test_case "grid gemm identity" `Quick test_grid_identity;
        Alcotest.test_case "staged accumulation identity" `Quick test_staged_accumulate;
        Test_fuzz.to_alcotest qcheck_identity;
      ] );
  ]
