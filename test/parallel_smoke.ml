(* Domain-count independence smoke check, run by the runtest rules under
   both DISTAL_NUM_DOMAINS=1 and DISTAL_NUM_DOMAINS=3 (see test/dune):
   whatever pool size the environment selects, a run must produce exactly
   the bytes of an explicit single-domain run. The alcotest suite checks
   the same contract property-style; this binary checks it under the
   environment variable path, which the suite cannot vary per-process. *)

module Api = Distal.Api
module Machine = Api.Machine
module Dense = Api.Dense
module Exec = Api.Exec
module Stats = Api.Stats

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("parallel_smoke: " ^ s); exit 1) fmt

let gemm_plan () =
  let machine = Machine.grid [| 2; 2 |] in
  let n = 12 in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| n; n |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "B" [| n; n |] ~dist:"[x,y] -> [x%1,y%1]";
          Api.tensor "C" [| n; n |] ~dist:"[x,y] -> [x%1,y%1]";
        ]
      ()
  in
  Api.compile_script_exn p
    ~schedule:
      "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, 3);\n\
       reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko)"

let reduction_plan () =
  let machine = Machine.grid [| 4 |] in
  let n = 16 in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| n; n |] ~dist:"[x,y] -> [0]";
          Api.tensor "B" [| n; n |] ~dist:"[x,y] -> [x%2]";
          Api.tensor "C" [| n; n |] ~dist:"[x,y] -> [y%2]";
        ]
      ()
  in
  Api.compile_script_exn p
    ~schedule:
      "divide(k, ko, ki, 4); reorder(ko, i, j, ki); distribute(ko);\n\
       communicate({A,B,C}, ko)"

let observe ?domains plan ~data =
  let trace = ref [] in
  let r = Api.run_exn ~mode:Exec.Full ?domains ~trace plan ~data in
  let bits =
    match r.Exec.output with
    | None -> fail "run produced no output"
    | Some out ->
        List.init (Dense.size out) (fun i -> Int64.bits_of_float (Dense.get_lin out i))
  in
  (bits, List.map Exec.trace_to_string !trace, Stats.to_string r.Exec.stats)

let check name plan =
  let data = Api.random_inputs plan in
  let bits1, trace1, stats1 = observe ~domains:1 plan ~data in
  let bits, tr, stats = observe plan ~data in
  if bits <> bits1 then fail "%s: output differs from the single-domain run" name;
  if tr <> trace1 then fail "%s: copy trace differs from the single-domain run" name;
  if not (String.equal stats stats1) then
    fail "%s: stats differ from the single-domain run:\n%s\nvs\n%s" name stats1 stats

let () =
  check "grid gemm" (gemm_plan ());
  check "distributed reduction" (reduction_plan ());
  Printf.printf "parallel smoke ok (DISTAL_NUM_DOMAINS=%s, pool size %d)\n"
    (Option.value (Sys.getenv_opt "DISTAL_NUM_DOMAINS") ~default:"unset")
    (Distal_support.Pool.default_size ())
